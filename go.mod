module github.com/lix-go/lix

go 1.22
