// Package lix is a library of learned index structures for the one- and
// multi-dimensional spaces, reproducing the system landscape surveyed in
// "Learned Indexes From the One-dimensional to the Multi-dimensional
// Spaces: Challenges, Techniques, and Opportunities" (Al-Mamun, Wang,
// Aref — SIGMOD 2025 tutorial).
//
// The package exposes a uniform façade over the implementations in
// internal/: one-dimensional learned indexes (RMI, PGM, RadixSpline,
// Hist-Tree, ALEX, LIPP, FITing-tree, XIndex), their traditional baselines
// (B+-tree, skip list, sorted array), learned Bloom filters, and
// multi-dimensional indexes (ZM-index, ML-Index, Flood, LISA, Qd-tree,
// learned R-tree) with their baselines (R-tree, k-d tree, quadtree, grid).
//
// One-dimensional indexes map uint64 keys to uint64 values with map
// semantics (one value per key; inserts upsert). Multi-dimensional indexes
// store points with values and answer exact-point, axis-aligned-rectangle
// and k-nearest-neighbor queries.
package lix

import (
	"github.com/lix-go/lix/internal/alex"
	"github.com/lix-go/lix/internal/btree"
	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/fiting"
	"github.com/lix-go/lix/internal/histtree"
	"github.com/lix-go/lix/internal/lipp"
	"github.com/lix-go/lix/internal/lsm"
	"github.com/lix-go/lix/internal/pgm"
	"github.com/lix-go/lix/internal/radixspline"
	"github.com/lix-go/lix/internal/registry"
	"github.com/lix-go/lix/internal/rmi"
	"github.com/lix-go/lix/internal/skiplist"
	"github.com/lix-go/lix/internal/xindex"
)

// Core types, re-exported for the public API.
type (
	// Key is the one-dimensional key type (as in SOSD: unsigned 64-bit).
	Key = core.Key
	// Value is the payload type.
	Value = core.Value
	// KV is a key/value record.
	KV = core.KV
	// Stats reports index structure statistics.
	Stats = core.Stats
)

// Index is a read-only one-dimensional ordered index.
type Index interface {
	// Get returns the value stored for k.
	Get(k Key) (Value, bool)
	// Range calls fn for every record with lo <= key <= hi in ascending
	// order; fn returning false stops the scan. It returns the number of
	// records visited.
	Range(lo, hi Key, fn func(Key, Value) bool) int
	// Len returns the number of records.
	Len() int
	// Stats reports structure statistics.
	Stats() Stats
}

// MutableIndex is an Index supporting upserts and deletes.
type MutableIndex interface {
	Index
	// Insert upserts (k, v).
	Insert(k Key, v Value)
	// Delete removes k, reporting whether it was present.
	Delete(k Key) bool
}

// RMIConfig re-exports the RMI build configuration.
type RMIConfig = rmi.Config

// RMI root model kinds.
const (
	RMIRootLinear    = rmi.RootLinear
	RMIRootQuadratic = rmi.RootQuadratic
	RMIRootCubic     = rmi.RootCubic
	RMIRootMLP       = rmi.RootMLP
)

// ---------------------------------------------------------------------------
// Baselines
// ---------------------------------------------------------------------------

// sortedArray is the binary-search baseline.
type sortedArray struct {
	keys []Key
	recs []KV
}

// NewSortedArray returns the binary-search baseline over recs (sorted
// ascending by key). recs is retained.
func NewSortedArray(recs []KV) Index {
	keys := make([]Key, len(recs))
	for i := range recs {
		keys[i] = recs[i].Key
	}
	return &sortedArray{keys: keys, recs: recs}
}

func (s *sortedArray) Get(k Key) (Value, bool) {
	i := core.LowerBound(s.keys, k)
	if i < len(s.keys) && s.keys[i] == k {
		return s.recs[i].Value, true
	}
	return 0, false
}

func (s *sortedArray) Range(lo, hi Key, fn func(Key, Value) bool) int {
	i := core.LowerBound(s.keys, lo)
	count := 0
	for ; i < len(s.keys) && s.keys[i] <= hi; i++ {
		count++
		if !fn(s.keys[i], s.recs[i].Value) {
			break
		}
	}
	return count
}

func (s *sortedArray) Len() int { return len(s.keys) }

func (s *sortedArray) Stats() Stats {
	return Stats{Name: "binary-search", Count: len(s.keys), DataBytes: 16 * len(s.keys), Height: 1}
}

// btreeAdapter narrows *btree.Tree to MutableIndex.
type btreeAdapter struct{ *btree.Tree }

func (a btreeAdapter) Insert(k Key, v Value) { a.Tree.Insert(k, v) }

// NewBTree returns an empty B+-tree with the given order (0 selects the
// default).
func NewBTree(order int) MutableIndex {
	if order <= 0 {
		order = btree.DefaultOrder
	}
	return btreeAdapter{btree.New(order)}
}

// BulkBTree bulk-loads a B+-tree from sorted records.
func BulkBTree(order int, recs []KV) (MutableIndex, error) {
	if order <= 0 {
		order = btree.DefaultOrder
	}
	t, err := btree.Bulk(order, recs)
	if err != nil {
		return nil, err
	}
	return btreeAdapter{t}, nil
}

// skipAdapter narrows *skiplist.List to MutableIndex.
type skipAdapter struct{ *skiplist.List }

func (a skipAdapter) Insert(k Key, v Value) { a.List.Insert(k, v) }

// NewSkipList returns an empty skip list.
func NewSkipList(seed uint64) MutableIndex { return skipAdapter{skiplist.New(seed)} }

// learnedSkipAdapter narrows *skiplist.Learned to MutableIndex.
type learnedSkipAdapter struct{ *skiplist.Learned }

func (a learnedSkipAdapter) Insert(k Key, v Value) { a.Learned.Insert(k, v) }

// NewLearnedSkipList returns an S3-style skip list with a learned fast
// lane (stride 0 selects the default sampling interval).
func NewLearnedSkipList(seed uint64, stride int) MutableIndex {
	return learnedSkipAdapter{skiplist.NewLearned(seed, stride)}
}

// ---------------------------------------------------------------------------
// Learned one-dimensional indexes
// ---------------------------------------------------------------------------

// NewRMI builds a Recursive Model Index over sorted records.
func NewRMI(recs []KV, cfg RMIConfig) (Index, error) { return rmi.Build(recs, cfg) }

// HybridRMI is the RMI variant with B-tree fallbacks for badly-fitting
// partitions; it exposes the learned/fallback split.
type HybridRMI = rmi.Hybrid

// NewHybridRMI builds a Hybrid-RMI: stage-2 models whose error window
// exceeds maxErr become B-trees.
func NewHybridRMI(recs []KV, cfg RMIConfig, maxErr int) (*HybridRMI, error) {
	return rmi.BuildHybrid(recs, cfg, maxErr)
}

// NewPGM builds a static PGM-index over sorted records with error bound
// eps (0 selects the default).
func NewPGM(recs []KV, eps int) (Index, error) { return pgm.Build(recs, eps) }

// PGMIndex re-exports the static PGM type for access to Epsilon, Levels
// and SegmentCount.
type PGMIndex = pgm.Index

// dynPGMAdapter adds nothing; pgm.Dynamic already matches MutableIndex.
// NewDynamicPGM returns an empty dynamic PGM-index.
func NewDynamicPGM(eps, bufCap int) MutableIndex { return pgm.NewDynamic(eps, bufCap) }

// NewRadixSpline builds a RadixSpline over sorted records.
func NewRadixSpline(recs []KV, eps, radixBits int) (Index, error) {
	return radixspline.Build(recs, eps, radixBits)
}

// NewHistTree builds a Hist-Tree over sorted records.
func NewHistTree(recs []KV, fanout, leafSize int) (Index, error) {
	return histtree.Build(recs, fanout, leafSize)
}

// alexAdapter narrows *alex.Index to MutableIndex.
type alexAdapter struct{ *alex.Index }

func (a alexAdapter) Insert(k Key, v Value) { a.Index.Insert(k, v) }

// NewALEX returns an empty ALEX index.
func NewALEX() MutableIndex { return alexAdapter{alex.New()} }

// BulkALEX bulk-loads an ALEX index from sorted records.
func BulkALEX(recs []KV) (MutableIndex, error) {
	ix, err := alex.Bulk(recs)
	if err != nil {
		return nil, err
	}
	return alexAdapter{ix}, nil
}

// lippAdapter narrows *lipp.Index to MutableIndex.
type lippAdapter struct{ *lipp.Index }

func (a lippAdapter) Insert(k Key, v Value) { a.Index.Insert(k, v) }

// NewLIPP returns an empty LIPP index.
func NewLIPP() MutableIndex { return lippAdapter{lipp.New()} }

// BulkLIPP bulk-loads a LIPP index from sorted records.
func BulkLIPP(recs []KV) (MutableIndex, error) {
	ix, err := lipp.Bulk(recs)
	if err != nil {
		return nil, err
	}
	return lippAdapter{ix}, nil
}

// fitingAdapter narrows *fiting.Index to MutableIndex.
type fitingAdapter struct{ *fiting.Index }

func (a fitingAdapter) Insert(k Key, v Value) { a.Index.Insert(k, v) }

// NewFITingTree returns an empty FITing-tree.
func NewFITingTree(eps, bufCap int) MutableIndex { return fitingAdapter{fiting.New(eps, bufCap)} }

// BulkFITingTree builds a FITing-tree from sorted records.
func BulkFITingTree(recs []KV, eps, bufCap int) (MutableIndex, error) {
	ix, err := fiting.Build(recs, eps, bufCap)
	if err != nil {
		return nil, err
	}
	return fitingAdapter{ix}, nil
}

// LSMConfig re-exports the learned LSM-tree configuration.
type LSMConfig = lsm.Config

// lsmAdapter narrows *lsm.DB to MutableIndex.
type lsmAdapter struct{ *lsm.DB }

func (a lsmAdapter) Insert(k Key, v Value) { a.DB.Put(k, v) }

// NewLearnedLSM returns an empty BOURBON-style learned LSM-tree.
func NewLearnedLSM(cfg LSMConfig) MutableIndex { return lsmAdapter{lsm.New(cfg)} }

// XIndex is the concurrent learned index; all methods are safe for
// concurrent use.
type XIndex = xindex.Index

// NewXIndex returns an empty concurrent learned index.
func NewXIndex(groupSize, deltaCap int) *XIndex { return xindex.New(groupSize, deltaCap) }

// BulkXIndex builds a concurrent learned index from sorted records.
func BulkXIndex(recs []KV, groupSize, deltaCap int) (*XIndex, error) {
	return xindex.Bulk(recs, groupSize, deltaCap)
}

// ---------------------------------------------------------------------------
// Kind registry shims (see register.go and internal/registry)
// ---------------------------------------------------------------------------

// Static1DKinds lists the read-only 1-D index names accepted by Build1D.
func Static1DKinds() []string { return registry.StaticKinds() }

// Mutable1DKinds lists the updatable 1-D index names accepted by
// BuildMutable1D.
func Mutable1DKinds() []string { return registry.MutableKinds() }

// Build1D builds a read-only 1-D index of the named kind over sorted recs.
//
// Deprecated: thin shim over the kind registry; resolve kinds through
// NewStack or internal/registry instead.
func Build1D(kind string, recs []KV) (Index, error) {
	k, err := registry.Static(kind)
	if err != nil {
		return nil, err
	}
	return k.Static(recs)
}

// BuildMutable1D returns an empty updatable 1-D index of the named kind.
//
// Deprecated: thin shim over the kind registry; resolve kinds through
// NewStack or internal/registry instead.
func BuildMutable1D(kind string) (MutableIndex, error) {
	k, err := registry.Mutable(kind)
	if err != nil {
		return nil, err
	}
	return k.New()
}
