package lix

import (
	"github.com/lix-go/lix/internal/bloom"
	"github.com/lix-go/lix/internal/lbf"
)

// MembershipFilter is a no-false-negative approximate membership
// structure: Contains never returns false for an added/trained key.
type MembershipFilter interface {
	// Contains reports whether k may be in the set.
	Contains(k Key) bool
}

// Filter re-exports for direct access to diagnostics.
type (
	// BloomFilter is the standard Bloom filter baseline.
	BloomFilter = bloom.Filter
	// LearnedBloomFilter is the classifier+backup learned Bloom filter.
	LearnedBloomFilter = lbf.Filter
	// SandwichedBloomFilter adds an initial filter before the classifier.
	SandwichedBloomFilter = lbf.Sandwich
	// PartitionedBloomFilter uses per-score-region backup filters.
	PartitionedBloomFilter = lbf.Partitioned
)

// NewBloomFilter returns a standard Bloom filter sized for n keys at the
// target false-positive rate.
func NewBloomFilter(n int, fpr float64) *BloomFilter { return bloom.New(n, fpr) }

// NewBloomFilterBits returns a standard Bloom filter with a fixed bit
// budget.
func NewBloomFilterBits(bits uint64, n int) *BloomFilter { return bloom.NewBits(bits, n) }

// TrainLearnedBF trains a learned Bloom filter over keys with negative
// samples negs and a total space budget in bits.
func TrainLearnedBF(keys, negs []Key, totalBits uint64) (*LearnedBloomFilter, error) {
	return lbf.Train(keys, negs, totalBits, 0)
}

// TrainSandwichedBF trains a sandwiched learned Bloom filter.
func TrainSandwichedBF(keys, negs []Key, totalBits uint64) (*SandwichedBloomFilter, error) {
	return lbf.TrainSandwich(keys, negs, totalBits, 0)
}

// TrainPartitionedBF trains a partitioned learned Bloom filter with the
// given number of score regions (0 selects the default).
func TrainPartitionedBF(keys, negs []Key, totalBits uint64, regions int) (*PartitionedBloomFilter, error) {
	return lbf.TrainPartitioned(keys, negs, totalBits, regions)
}

// MeasureFPR returns the observed false-positive rate of f over probes
// that contain no true members.
func MeasureFPR(f MembershipFilter, probes []Key) float64 {
	return lbf.MeasureFPR(f, probes)
}
