package lix

import (
	"fmt"
	"io"
	"time"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/registry"
	"github.com/lix-go/lix/internal/trace"
)

// StackConfig configures NewStack, the one-call engine constructor. Zero
// values select the canonical defaults: a single unsharded, non-durable,
// unobserved "btree" backend.
type StackConfig struct {
	// Kind is the backend index kind, one of Mutable1DKinds ("" selects
	// "btree"). With Shards > 0 it is the per-shard backend (ShardRW) and
	// with Dir set it is the recovered kind.
	Kind string
	// Shards, when positive, inserts the sharded concurrent serving layer.
	// With Dir set this also gives the WAL one segment per shard (parallel
	// group commit and recovery).
	Shards int
	// Mode selects the shard concurrency scheme (default ShardRW; only
	// meaningful with Shards > 0). ShardRCU cannot be combined with Dir.
	Mode ShardMode
	// Snapshot is the per-shard read-optimized kind for ShardRCU mode
	// ("" selects "pgm").
	Snapshot string
	// DeltaCap is the RCU delta size that schedules a background snapshot
	// merge (0 selects the shard package default).
	DeltaCap int
	// DeltaBound is the hard RCU delta size at which writers block while a
	// merge is in flight (0 selects 4×DeltaCap).
	DeltaBound int
	// Dir, when non-empty, inserts the durable layer: the stack is opened
	// at (or created in) this directory with write-ahead logging and
	// snapshot checkpoints.
	Dir string
	// Fsync selects WAL durability (default FsyncAlways; Dir only).
	Fsync SyncPolicy
	// SyncInterval is the background flush cadence under FsyncInterval
	// (Dir only; 0 selects the store default).
	SyncInterval time.Duration
	// CheckpointEvery triggers a checkpoint after this many logged records
	// (Dir only; 0 selects the store default, negative disables).
	CheckpointEvery int
	// StorageEngine selects the durable checkpoint engine, EngineSnapshot
	// or EngineLSM (Dir only; "" selects EngineSnapshot; on reopen the
	// engine the directory already uses wins).
	StorageEngine string
	// Metrics, when set, wraps the stack in the observability layer: per-op
	// and per-batch latencies, counters, and (with Dir) fsync/checkpoint
	// events all record into this bundle.
	Metrics *Metrics
	// ShardMetricsPrefix, when non-empty, additionally attaches one metrics
	// bundle per shard (non-durable stacks only; retrieve them through
	// Sharded().ShardMetrics()).
	ShardMetricsPrefix string
	// Trace, when set, attaches a request tracer bound to Metrics:
	// sampled per-stage spans, the slow-request log, and (with TopK) the
	// hot-key sketch. Span sampling requires Metrics; hot-key telemetry
	// alone does not. Retrieve the tracer with Stack.Tracer().
	Trace *TraceOptions
}

// Stack is a fully assembled serving engine: backend → shard → durable →
// obs, composed in the one canonical order by NewStack. It satisfies
// MutableIndex plus every batch capability (LookupBatch, InsertBatch,
// DeleteBatch, SearchRange, io.Closer), each dispatching through the
// layers' own capabilities so batched and parallel fast paths survive the
// whole stack.
type Stack struct {
	top     MutableIndex
	durable *Durable
	sharded *Sharded
	metrics *Metrics
	tracer  *Tracer
}

// NewStack assembles a serving stack over recs (sorted ascending,
// distinct keys; may be nil to start empty) in the canonical wrapping
// order. With Dir set, a fresh directory is seeded with recs (and the
// seed checkpointed); a directory already holding a store recovers it —
// in that case recs must be nil and the stored kind/shard configuration
// wins, exactly as Open.
func NewStack(recs []KV, cfg StackConfig) (*Stack, error) {
	if cfg.Kind == "" {
		cfg.Kind = "btree"
	}
	if _, err := registry.Mutable(cfg.Kind); err != nil {
		return nil, err
	}
	s := &Stack{metrics: cfg.Metrics}

	var inner MutableIndex
	switch {
	case cfg.Dir != "":
		if cfg.Mode == ShardRCU {
			return nil, fmt.Errorf("lix: durable stack requires ShardRW shards (RCU snapshots are rebuilt, not logged)")
		}
		opts := DurableOptions{
			Kind:            cfg.Kind,
			Shards:          cfg.Shards,
			Fsync:           cfg.Fsync,
			SyncInterval:    cfg.SyncInterval,
			CheckpointEvery: cfg.CheckpointEvery,
			Engine:          cfg.StorageEngine,
			Metrics:         cfg.Metrics,
		}
		var (
			d   *Durable
			err error
		)
		if recs != nil {
			d, err = NewDurable(cfg.Dir, recs, opts)
		} else {
			d, err = Open(cfg.Dir, opts)
		}
		if err != nil {
			return nil, err
		}
		s.durable = d
		s.sharded, _ = d.Unwrap().(*Sharded)
		inner = d
	case cfg.Shards > 0:
		sh, err := NewSharded(recs, ShardedConfig{
			Shards:        cfg.Shards,
			Mode:          cfg.Mode,
			Backend:       cfg.Kind,
			Snapshot:      cfg.Snapshot,
			DeltaCap:      cfg.DeltaCap,
			DeltaBound:    cfg.DeltaBound,
			MetricsPrefix: cfg.ShardMetricsPrefix,
		})
		if err != nil {
			return nil, err
		}
		s.sharded = sh
		inner = sh
	default:
		ix, err := registry.BuildMutable(cfg.Kind, recs)
		if err != nil {
			return nil, err
		}
		inner = ix
	}

	if cfg.Metrics != nil {
		s.top = ObserveMutable(inner, cfg.Metrics)
	} else {
		s.top = inner
	}
	if t := cfg.Trace; t != nil {
		if t.SampleRate > 0 && cfg.Metrics == nil {
			return nil, fmt.Errorf("lix: StackConfig.Trace.SampleRate > 0 requires StackConfig.Metrics")
		}
		s.tracer = NewTracer(TraceConfig{
			SampleRate:    t.SampleRate,
			SlowThreshold: t.SlowThreshold,
			TopK:          t.TopK,
			Metrics:       cfg.Metrics,
		})
	}
	return s, nil
}

// Get returns the value stored for k.
func (s *Stack) Get(k Key) (Value, bool) { return s.top.Get(k) }

// Range calls fn for every record with lo <= key <= hi in ascending
// order; fn returning false stops the scan.
func (s *Stack) Range(lo, hi Key, fn func(Key, Value) bool) int {
	return s.top.Range(lo, hi, fn)
}

// Len returns the number of records.
func (s *Stack) Len() int { return s.top.Len() }

// Stats reports the stack's structure statistics.
func (s *Stack) Stats() Stats { return s.top.Stats() }

// Insert upserts (k, v).
func (s *Stack) Insert(k Key, v Value) { s.top.Insert(k, v) }

// Delete removes k, reporting whether it was present.
func (s *Stack) Delete(k Key) bool { return s.top.Delete(k) }

// LookupBatch resolves keys in one pass through the layers' batch
// capabilities. vals[i], oks[i] answer keys[i].
func (s *Stack) LookupBatch(keys []Key) ([]Value, []bool) {
	return core.LookupBatch(s.top, keys)
}

// LookupBatchInto is LookupBatch writing into caller-supplied vals and
// oks slices (len(keys) each): with a sharded layer below, the whole
// read path is allocation-free, so a serving loop can reuse its buffers
// across batches indefinitely.
func (s *Stack) LookupBatchInto(keys []Key, vals []Value, oks []bool) {
	core.LookupBatchInto(s.top, keys, vals, oks)
}

// InsertBatch upserts recs in one pass: one WAL frame group and one group
// commit per touched segment when the stack is durable, one lock
// acquisition per touched shard when it is sharded. Duplicate keys inside
// one batch resolve later-wins.
func (s *Stack) InsertBatch(recs []KV) { core.InsertBatch(s.top, recs) }

// DeleteBatch removes keys in one pass (same batching as InsertBatch).
// oks[i] reports whether keys[i] was present, with sequential semantics
// on duplicates.
func (s *Stack) DeleteBatch(keys []Key) []bool { return core.DeleteBatch(s.top, keys) }

// LookupBatchSpan is LookupBatch with per-stage span attribution,
// forwarded down through whichever layers can break their time out
// (durable: wal/fsync/apply; sharded: fan-out). Serving front-ends call
// it for sampled request groups; a nil span is exactly LookupBatch.
func (s *Stack) LookupBatchSpan(keys []Key, sp *Span) ([]Value, []bool) {
	return trace.LookupBatch(s.top, keys, sp)
}

// InsertBatchSpan is InsertBatch with per-stage span attribution; see
// LookupBatchSpan.
func (s *Stack) InsertBatchSpan(recs []KV, sp *Span) { trace.InsertBatch(s.top, recs, sp) }

// DeleteBatchSpan is DeleteBatch with per-stage span attribution; see
// LookupBatchSpan.
func (s *Stack) DeleteBatchSpan(keys []Key, sp *Span) []bool {
	return trace.DeleteBatch(s.top, keys, sp)
}

// SearchRange collects every record with lo <= key <= hi in ascending key
// order (a sharded stack fans the scan out across shards in parallel).
// The result is always non-nil.
func (s *Stack) SearchRange(lo, hi Key) []KV { return core.CollectRange(s.top, lo, hi) }

// Close flushes and closes the durable layer (when present) through the
// stack's io.Closer forwarding; a purely in-memory stack closes as a
// no-op.
func (s *Stack) Close() error {
	if c, ok := s.top.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// CheckInvariants runs the stack's structural self-checks.
func (s *Stack) CheckInvariants() error { return CheckInvariants(s.top) }

// Durable returns the durable layer, nil for in-memory stacks.
func (s *Stack) Durable() *Durable { return s.durable }

// Sharded returns the shard layer, nil for unsharded stacks.
func (s *Stack) Sharded() *Sharded { return s.sharded }

// Metrics returns the metrics bundle the stack records into, nil unless
// StackConfig.Metrics was set.
func (s *Stack) Metrics() *Metrics { return s.metrics }

// Tracer returns the request tracer, nil unless StackConfig.Trace was
// set (a nil Tracer is safe everywhere and means "tracing off").
func (s *Stack) Tracer() *Tracer { return s.tracer }

// Unwrap returns the outermost wrapped layer (the obs wrapper's target
// when metrics are attached, else the top layer itself).
func (s *Stack) Unwrap() MutableIndex { return s.top }
