package lix_test

import (
	"math/rand"
	"testing"

	lix "github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/core"
)

// hostile key patterns that have historically broken learned indexes:
// float64-colliding keys, extreme magnitudes, constant runs, and single
// outliers that wreck global models.
//
// The registry-driven conformance suite (internal/conform) applies these
// same shapes — plus differential op streams against a trivially-correct
// oracle — to every registered index; see internal/conform/corpus.go. The
// ad-hoc hostile-pattern and cross-index differential tests that used to
// live here were subsumed by it. Only the checks with no conform
// counterpart remain in this file.
func hostilePatterns() map[string][]lix.Key {
	out := map[string][]lix.Key{}

	// Keys above 2^53 spaced by 1: collide at float64 resolution.
	var floatCollide []lix.Key
	base := lix.Key(1) << 60
	for i := 0; i < 3000; i++ {
		floatCollide = append(floatCollide, base+lix.Key(i))
	}
	out["float-collide"] = floatCollide

	// Tiny then huge: one outlier dominates any linear fit.
	var outlier []lix.Key
	for i := 0; i < 3000; i++ {
		outlier = append(outlier, lix.Key(i))
	}
	outlier = append(outlier, lix.Key(1)<<62)
	out["outlier"] = outlier

	// Two dense clusters at opposite ends of the key space.
	var bimodal []lix.Key
	for i := 0; i < 1500; i++ {
		bimodal = append(bimodal, lix.Key(i)*3)
	}
	for i := 0; i < 1500; i++ {
		bimodal = append(bimodal, lix.Key(1)<<61+lix.Key(i)*3)
	}
	out["bimodal"] = bimodal

	// Exponentially growing gaps.
	var exponential []lix.Key
	k := lix.Key(1)
	for i := 0; i < 60; i++ {
		exponential = append(exponential, k)
		k *= 2
	}
	out["exponential"] = exponential

	// Min and max boundary keys present.
	out["boundaries"] = []lix.Key{0, 1, 2, ^lix.Key(0) - 2, ^lix.Key(0) - 1, ^lix.Key(0)}

	return out
}

// TestUnsortedRejected verifies every validating builder rejects unsorted
// input instead of silently building a broken index.
func TestUnsortedRejected(t *testing.T) {
	bad := []lix.KV{{Key: 5}, {Key: 3}, {Key: 9}}
	for _, kind := range lix.Static1DKinds() {
		if kind == "binary" {
			continue // documented: the plain array trusts its input
		}
		if _, err := lix.Build1D(kind, bad); err == nil {
			t.Fatalf("%s accepted unsorted input", kind)
		}
	}
}

// TestLowerBoundersAgree checks the three indexes that expose LowerBound
// directly against core.LowerBound on adversarial probes.
func TestLowerBoundersAgree(t *testing.T) {
	keys := hostilePatterns()["bimodal"]
	recs := make([]lix.KV, len(keys))
	rawKeys := make([]core.Key, len(keys))
	for i, k := range keys {
		recs[i] = lix.KV{Key: k, Value: lix.Value(i)}
		rawKeys[i] = k
	}
	pg, err := lix.NewPGM(recs, 16)
	if err != nil {
		t.Fatal(err)
	}
	pgc := pg.(*lix.PGMIndex)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		probe := core.Key(r.Uint64())
		if got, want := pgc.LowerBound(probe), core.LowerBound(rawKeys, probe); got != want {
			t.Fatalf("PGM LowerBound(%d) = %d, want %d", probe, got, want)
		}
	}
}
