package lix_test

import (
	"math/rand"
	"testing"

	lix "github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/core"
)

// hostile key patterns that have historically broken learned indexes:
// float64-colliding keys, extreme magnitudes, constant runs, and single
// outliers that wreck global models.
func hostilePatterns() map[string][]lix.Key {
	out := map[string][]lix.Key{}

	// Keys above 2^53 spaced by 1: collide at float64 resolution.
	var floatCollide []lix.Key
	base := lix.Key(1) << 60
	for i := 0; i < 3000; i++ {
		floatCollide = append(floatCollide, base+lix.Key(i))
	}
	out["float-collide"] = floatCollide

	// Tiny then huge: one outlier dominates any linear fit.
	var outlier []lix.Key
	for i := 0; i < 3000; i++ {
		outlier = append(outlier, lix.Key(i))
	}
	outlier = append(outlier, lix.Key(1)<<62)
	out["outlier"] = outlier

	// Two dense clusters at opposite ends of the key space.
	var bimodal []lix.Key
	for i := 0; i < 1500; i++ {
		bimodal = append(bimodal, lix.Key(i)*3)
	}
	for i := 0; i < 1500; i++ {
		bimodal = append(bimodal, lix.Key(1)<<61+lix.Key(i)*3)
	}
	out["bimodal"] = bimodal

	// Exponentially growing gaps.
	var exponential []lix.Key
	k := lix.Key(1)
	for i := 0; i < 60; i++ {
		exponential = append(exponential, k)
		k *= 2
	}
	out["exponential"] = exponential

	// Min and max boundary keys present.
	out["boundaries"] = []lix.Key{0, 1, 2, ^lix.Key(0) - 2, ^lix.Key(0) - 1, ^lix.Key(0)}

	return out
}

func TestStatic1DHostilePatterns(t *testing.T) {
	for patName, keys := range hostilePatterns() {
		recs := make([]lix.KV, len(keys))
		for i, k := range keys {
			recs[i] = lix.KV{Key: k, Value: lix.Value(i)}
		}
		ref := lix.NewSortedArray(recs)
		for _, kind := range lix.Static1DKinds() {
			ix, err := lix.Build1D(kind, recs)
			if err != nil {
				t.Fatalf("%s/%s: build: %v", patName, kind, err)
			}
			// Every stored key must resolve.
			for i, k := range keys {
				v, ok := ix.Get(k)
				if !ok || v != lix.Value(i) {
					t.Fatalf("%s/%s: Get(%d) = %d,%v want %d", patName, kind, k, v, ok, i)
				}
			}
			// Probes around every key agree with the reference.
			for _, k := range keys {
				for _, d := range []int64{-1, 1} {
					probe := lix.Key(int64(k) + d)
					v1, ok1 := ix.Get(probe)
					v2, ok2 := ref.Get(probe)
					if ok1 != ok2 || (ok1 && v1 != v2) {
						t.Fatalf("%s/%s: probe %d disagrees", patName, kind, probe)
					}
				}
			}
		}
	}
}

func TestMutable1DHostilePatterns(t *testing.T) {
	for patName, keys := range hostilePatterns() {
		for _, kind := range lix.Mutable1DKinds() {
			ix, err := lix.BuildMutable1D(kind)
			if err != nil {
				t.Fatal(err)
			}
			// Insert in a scrambled order.
			r := rand.New(rand.NewSource(1))
			perm := r.Perm(len(keys))
			for _, i := range perm {
				ix.Insert(keys[i], lix.Value(i))
			}
			if ix.Len() != len(keys) {
				t.Fatalf("%s/%s: len = %d want %d", patName, kind, ix.Len(), len(keys))
			}
			for i, k := range keys {
				v, ok := ix.Get(k)
				if !ok || v != lix.Value(i) {
					t.Fatalf("%s/%s: Get(%d) = %d,%v want %d", patName, kind, k, v, ok, i)
				}
			}
			// Delete every other key, re-check.
			for i := 0; i < len(keys); i += 2 {
				if !ix.Delete(keys[i]) {
					t.Fatalf("%s/%s: Delete(%d) missed", patName, kind, keys[i])
				}
			}
			for i, k := range keys {
				_, ok := ix.Get(k)
				if ok != (i%2 == 1) {
					t.Fatalf("%s/%s: Get(%d) after delete = %v", patName, kind, k, ok)
				}
			}
		}
	}
}

// TestUnsortedRejected verifies every validating builder rejects unsorted
// input instead of silently building a broken index.
func TestUnsortedRejected(t *testing.T) {
	bad := []lix.KV{{Key: 5}, {Key: 3}, {Key: 9}}
	for _, kind := range lix.Static1DKinds() {
		if kind == "binary" {
			continue // documented: the plain array trusts its input
		}
		if _, err := lix.Build1D(kind, bad); err == nil {
			t.Fatalf("%s accepted unsorted input", kind)
		}
	}
}

// TestCrossIndexDifferential drives every mutable index with one random
// operation stream and verifies they never disagree with each other.
func TestCrossIndexDifferential(t *testing.T) {
	kinds := lix.Mutable1DKinds()
	ixs := make([]lix.MutableIndex, len(kinds))
	for i, kind := range kinds {
		ix, err := lix.BuildMutable1D(kind)
		if err != nil {
			t.Fatal(err)
		}
		ixs[i] = ix
	}
	r := rand.New(rand.NewSource(99))
	for op := 0; op < 4000; op++ {
		k := lix.Key(r.Intn(1000)) * 1000003 // spread keys out
		switch r.Intn(4) {
		case 0, 1:
			v := lix.Value(r.Uint64())
			for _, ix := range ixs {
				ix.Insert(k, v)
			}
		case 2:
			first := ixs[0].Delete(k)
			for i, ix := range ixs[1:] {
				if got := ix.Delete(k); got != first {
					t.Fatalf("op %d: %s.Delete(%d) = %v, %s = %v",
						op, kinds[i+1], k, got, kinds[0], first)
				}
			}
		case 3:
			v0, ok0 := ixs[0].Get(k)
			for i, ix := range ixs[1:] {
				v, ok := ix.Get(k)
				if ok != ok0 || (ok && v != v0) {
					t.Fatalf("op %d: %s.Get(%d) = %d,%v, %s = %d,%v",
						op, kinds[i+1], k, v, ok, kinds[0], v0, ok0)
				}
			}
		}
	}
	// Final: all agree on Len and full ordered contents.
	for i := 1; i < len(ixs); i++ {
		if ixs[i].Len() != ixs[0].Len() {
			t.Fatalf("%s.Len=%d, %s.Len=%d", kinds[i], ixs[i].Len(), kinds[0], ixs[0].Len())
		}
	}
	var refKeys []lix.Key
	var refVals []lix.Value
	ixs[0].Range(0, ^lix.Key(0), func(k lix.Key, v lix.Value) bool {
		refKeys = append(refKeys, k)
		refVals = append(refVals, v)
		return true
	})
	for i := 1; i < len(ixs); i++ {
		j := 0
		ok := true
		ixs[i].Range(0, ^lix.Key(0), func(k lix.Key, v lix.Value) bool {
			if j >= len(refKeys) || refKeys[j] != k || refVals[j] != v {
				ok = false
				return false
			}
			j++
			return true
		})
		if !ok || j != len(refKeys) {
			t.Fatalf("%s full scan disagrees with %s", kinds[i], kinds[0])
		}
	}
}

// TestSpatialDifferentialAfterMutation drives the mutable spatial indexes
// with the same insert/delete stream and compares range results.
func TestSpatialDifferentialAfterMutation(t *testing.T) {
	kinds := []string{"rtree", "quadtree", "grid", "lisa"}
	r := rand.New(rand.NewSource(7))
	var initial []lix.PV
	for i := 0; i < 2000; i++ {
		initial = append(initial, lix.PV{
			Point: lix.Point{float64(r.Intn(1 << 20)), float64(r.Intn(1 << 20))},
			Value: lix.Value(i),
		})
	}
	ixs := make([]lix.MutableSpatialIndex, len(kinds))
	for i, kind := range kinds {
		ixAny, err := lix.BuildSpatial(kind, initial)
		if err != nil {
			t.Fatal(err)
		}
		ixs[i] = ixAny.(lix.MutableSpatialIndex)
	}
	// Mutate: insert 1000, delete 500 of the originals.
	for i := 0; i < 1000; i++ {
		p := lix.Point{float64(r.Intn(1 << 20)), float64(r.Intn(1 << 20))}
		v := lix.Value(10000 + i)
		for _, ix := range ixs {
			if err := ix.Insert(p, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 500; i++ {
		for j, ix := range ixs {
			if !ix.Delete(initial[i].Point, initial[i].Value) {
				t.Fatalf("%s: delete %d missed", kinds[j], i)
			}
		}
	}
	// Compare window queries.
	for q := 0; q < 30; q++ {
		x, y := float64(r.Intn(1<<20)), float64(r.Intn(1<<20))
		w := float64(r.Intn(1<<17) + 1000)
		rect, err := lix.NewRect(lix.Point{x - w, y - w}, lix.Point{x + w, y + w})
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, len(ixs))
		for i, ix := range ixs {
			counts[i], _ = ix.Search(rect, func(lix.PV) bool { return true })
		}
		for i := 1; i < len(counts); i++ {
			if counts[i] != counts[0] {
				t.Fatalf("query %d: %s=%d, %s=%d", q, kinds[i], counts[i], kinds[0], counts[0])
			}
		}
	}
}

// TestLowerBoundersAgree checks the three indexes that expose LowerBound
// directly against core.LowerBound on adversarial probes.
func TestLowerBoundersAgree(t *testing.T) {
	keys := hostilePatterns()["bimodal"]
	recs := make([]lix.KV, len(keys))
	rawKeys := make([]core.Key, len(keys))
	for i, k := range keys {
		recs[i] = lix.KV{Key: k, Value: lix.Value(i)}
		rawKeys[i] = k
	}
	pg, err := lix.NewPGM(recs, 16)
	if err != nil {
		t.Fatal(err)
	}
	pgc := pg.(*lix.PGMIndex)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		probe := core.Key(r.Uint64())
		if got, want := pgc.LowerBound(probe), core.LowerBound(rawKeys, probe); got != want {
			t.Fatalf("PGM LowerBound(%d) = %d, want %d", probe, got, want)
		}
	}
}
