package lix

import (
	"github.com/lix-go/lix/internal/btree"
	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
	"github.com/lix-go/lix/internal/registry"
	"github.com/lix-go/lix/internal/rtree"
)

// This file is the single source of truth for index kinds: every
// constructor of the public façade is registered with internal/registry
// at init, and everything that used to keep its own kind switch —
// Build1D/BuildMutable1D, the sharded serving layer's bulk builders, the
// durable storage planner, the conformance suite's factory enumeration,
// the benchmark CLI — resolves kinds from the registry instead. Adding
// an index kind is one Register call here.

func init() {
	register1DKinds()
	registerSpatialKinds()
}

// register1DKinds registers the one-dimensional kinds. Registration
// order is enumeration order (StaticKinds/MutableKinds and the benchmark
// tables render in it), so it mirrors the historical kind lists.
func register1DKinds() {
	registry.Register(registry.Kind{
		Name: "binary",
		Caps: registry.Caps{AllowsEmpty: true},
		Static: func(recs []core.KV) (registry.Index, error) {
			return NewSortedArray(recs), nil
		},
	})
	registry.Register(registry.Kind{
		Name:   "btree",
		Caps:   registry.Caps{Mutable: true, AllowsEmpty: true},
		Static: func(recs []core.KV) (registry.Index, error) { return BulkBTree(0, recs) },
		New:    func() (registry.MutableIndex, error) { return NewBTree(0), nil },
		Bulk:   func(recs []core.KV) (registry.MutableIndex, error) { return BulkBTree(0, recs) },
	})
	registry.Register(registry.Kind{
		Name: "btree-interp",
		Caps: registry.Caps{AllowsEmpty: true},
		Static: func(recs []core.KV) (registry.Index, error) {
			t, err := btree.Bulk(btree.DefaultOrder, recs)
			if err != nil {
				return nil, err
			}
			t.SetInterpolation(true)
			return btreeAdapter{t}, nil
		},
	})
	registry.Register(registry.Kind{
		Name:   "rmi",
		Caps:   registry.Caps{AllowsEmpty: true},
		Static: func(recs []core.KV) (registry.Index, error) { return NewRMI(recs, RMIConfig{}) },
	})
	registry.Register(registry.Kind{
		Name:   "pgm",
		Caps:   registry.Caps{AllowsEmpty: true},
		Static: func(recs []core.KV) (registry.Index, error) { return NewPGM(recs, 0) },
	})
	registry.Register(registry.Kind{
		Name:   "radixspline",
		Caps:   registry.Caps{AllowsEmpty: true},
		Static: func(recs []core.KV) (registry.Index, error) { return NewRadixSpline(recs, 0, 0) },
	})
	registry.Register(registry.Kind{
		Name:   "histtree",
		Caps:   registry.Caps{AllowsEmpty: true},
		Static: func(recs []core.KV) (registry.Index, error) { return NewHistTree(recs, 0, 0) },
	})
	registry.Register(registry.Kind{
		Name: "skiplist",
		Caps: registry.Caps{Mutable: true, AllowsEmpty: true},
		New:  func() (registry.MutableIndex, error) { return NewSkipList(1), nil },
	})
	registry.Register(registry.Kind{
		Name: "skiplist-learned",
		Caps: registry.Caps{Mutable: true, AllowsEmpty: true},
		New:  func() (registry.MutableIndex, error) { return NewLearnedSkipList(1, 0), nil },
	})
	registry.Register(registry.Kind{
		Name:   "alex",
		Caps:   registry.Caps{Mutable: true, AllowsEmpty: true},
		Static: func(recs []core.KV) (registry.Index, error) { return BulkALEX(recs) },
		New:    func() (registry.MutableIndex, error) { return NewALEX(), nil },
		Bulk:   func(recs []core.KV) (registry.MutableIndex, error) { return BulkALEX(recs) },
	})
	registry.Register(registry.Kind{
		Name:   "lipp",
		Caps:   registry.Caps{Mutable: true, AllowsEmpty: true},
		Static: func(recs []core.KV) (registry.Index, error) { return BulkLIPP(recs) },
		New:    func() (registry.MutableIndex, error) { return NewLIPP(), nil },
		Bulk:   func(recs []core.KV) (registry.MutableIndex, error) { return BulkLIPP(recs) },
	})
	registry.Register(registry.Kind{
		Name: "pgm-dynamic",
		Caps: registry.Caps{Mutable: true, AllowsEmpty: true},
		New:  func() (registry.MutableIndex, error) { return NewDynamicPGM(0, 0), nil },
	})
	registry.Register(registry.Kind{
		Name: "fiting",
		Caps: registry.Caps{Mutable: true, AllowsEmpty: true},
		New:  func() (registry.MutableIndex, error) { return NewFITingTree(0, 0), nil },
	})
	registry.Register(registry.Kind{
		Name: "learned-lsm",
		Caps: registry.Caps{Mutable: true, AllowsEmpty: true},
		New:  func() (registry.MutableIndex, error) { return NewLearnedLSM(LSMConfig{}), nil },
	})
	// The paged kinds are disk-resident: constructors back each instance
	// with a temporary page file removed on Close (the conformance suite
	// closes io.Closer indexes after every build).
	registry.Register(registry.Kind{
		Name: "paged-btree",
		Caps: registry.Caps{Mutable: true, AllowsEmpty: true},
		New: func() (registry.MutableIndex, error) {
			return NewTempPagedBTree(PagedOptions{})
		},
		Bulk: func(recs []core.KV) (registry.MutableIndex, error) {
			t, err := NewTempPagedBTree(PagedOptions{})
			if err != nil {
				return nil, err
			}
			if err := t.BulkLoad(recs); err != nil {
				t.Close()
				return nil, err
			}
			return t, nil
		},
	})
	registry.Register(registry.Kind{
		Name: "paged-pgm",
		Caps: registry.Caps{Mutable: true, AllowsEmpty: true},
		New: func() (registry.MutableIndex, error) {
			return NewTempPagedPGM(PagedOptions{})
		},
		Bulk: func(recs []core.KV) (registry.MutableIndex, error) {
			g, err := NewTempPagedPGM(PagedOptions{})
			if err != nil {
				return nil, err
			}
			if err := g.BulkLoad(recs); err != nil {
				g.Close()
				return nil, err
			}
			return g, nil
		},
	})
}

// spatialBounds is the dataset extent convention shared with the
// conformance suite's spatial workload generator.
func spatialBounds(dim int) core.Rect {
	min := make(core.Point, dim)
	max := make(core.Point, dim)
	for d := 0; d < dim; d++ {
		max[d] = dataset.Extent
	}
	return core.Rect{Min: min, Max: max}
}

// learnedRTreeAdapter adapts *rtree.Hybrid (Search/Stats only) to the
// full spatial surface.
type learnedRTreeAdapter struct {
	*rtree.Hybrid
	n int
}

func (h learnedRTreeAdapter) Len() int { return h.n }

func (h learnedRTreeAdapter) Lookup(p core.Point) (core.Value, bool) {
	var out core.Value
	found := false
	h.PointSearch(p, func(pv core.PV) bool {
		out, found = pv.Value, true
		return false
	})
	return out, found
}

// registerSpatialKinds registers the multi-dimensional kinds.
func registerSpatialKinds() {
	registry.Register(registry.Kind{
		Name: "rtree",
		Caps: registry.Caps{Mutable: true, Spatial: true, KNN: true, AllowsEmpty: true},
		SpatialNew: func() (registry.MutableSpatialIndex, error) {
			return NewRTree(0), nil
		},
	})
	registry.Register(registry.Kind{
		Name: "rtree-bulk",
		Caps: registry.Caps{Spatial: true, KNN: true},
		SpatialBulk: func(pvs []core.PV) (registry.SpatialIndex, error) {
			return BulkRTree(0, pvs)
		},
	})
	registry.Register(registry.Kind{
		Name: "kdtree",
		Caps: registry.Caps{Spatial: true, KNN: true},
		SpatialBulk: func(pvs []core.PV) (registry.SpatialIndex, error) {
			return BulkKDTree(pvs)
		},
	})
	registry.Register(registry.Kind{
		Name: "quadtree",
		Caps: registry.Caps{Mutable: true, Spatial: true, KNN: true, AllowsEmpty: true, Dims: 2},
		SpatialNew: func() (registry.MutableSpatialIndex, error) {
			return NewQuadtree(spatialBounds(2), 0)
		},
	})
	registry.Register(registry.Kind{
		Name: "grid",
		Caps: registry.Caps{Mutable: true, Spatial: true, KNN: true, AllowsEmpty: true, Dims: 2},
		SpatialNew: func() (registry.MutableSpatialIndex, error) {
			return NewUniformGrid(spatialBounds(2), 32)
		},
	})
	registry.Register(registry.Kind{
		Name: "zm",
		Caps: registry.Caps{Spatial: true, KNN: true},
		SpatialBulk: func(pvs []core.PV) (registry.SpatialIndex, error) {
			return NewZMIndex(pvs, ZMConfig{})
		},
	})
	registry.Register(registry.Kind{
		Name: "zm-hilbert",
		Caps: registry.Caps{Spatial: true, KNN: true, Dims: 2},
		SpatialBulk: func(pvs []core.PV) (registry.SpatialIndex, error) {
			return NewZMIndex(pvs, ZMConfig{Curve: CurveHilbert})
		},
	})
	registry.Register(registry.Kind{
		Name: "mlindex",
		Caps: registry.Caps{Spatial: true, KNN: true},
		SpatialBulk: func(pvs []core.PV) (registry.SpatialIndex, error) {
			return NewMLIndex(pvs, MLIndexConfig{})
		},
	})
	registry.Register(registry.Kind{
		Name: "flood",
		Caps: registry.Caps{Spatial: true},
		SpatialBulk: func(pvs []core.PV) (registry.SpatialIndex, error) {
			dim := 2
			if len(pvs) > 0 {
				dim = pvs[0].Point.Dim()
			}
			return NewFlood(pvs, FloodConfig{SortDim: dim - 1})
		},
	})
	registry.Register(registry.Kind{
		Name: "lisa",
		Caps: registry.Caps{Mutable: true, Spatial: true, KNN: true},
		SpatialBulk: func(pvs []core.PV) (registry.SpatialIndex, error) {
			return NewLISA(pvs, LISAConfig{})
		},
	})
	registry.Register(registry.Kind{
		Name: "qdtree",
		Caps: registry.Caps{Spatial: true},
		SpatialBulk: func(pvs []core.PV) (registry.SpatialIndex, error) {
			pts := make([]core.Point, len(pvs))
			for i := range pvs {
				pts[i] = pvs[i].Point
			}
			queries := dataset.RectQueries(pts, 32, 0.001, 7)
			return NewQdTree(pvs, queries, QdTreeConfig{})
		},
	})
	registry.Register(registry.Kind{
		Name: "rtree-learned",
		Caps: registry.Caps{Spatial: true},
		SpatialBulk: func(pvs []core.PV) (registry.SpatialIndex, error) {
			h, err := NewLearnedRTree(0, 0, pvs)
			if err != nil {
				return nil, err
			}
			return learnedRTreeAdapter{Hybrid: h, n: len(pvs)}, nil
		},
	})
}
