package lix

import (
	"time"

	"github.com/lix-go/lix/internal/trace"
)

// Request tracing, re-exported from internal/trace for the public API.
type (
	// Tracer samples serving request groups into per-stage spans, feeds
	// the slow-request event log, and (optionally) maintains the hot-key
	// sketch. All methods are nil-safe: a nil *Tracer is "tracing off".
	Tracer = trace.Tracer
	// Span is the per-stage timeline of one sampled request group.
	Span = trace.Span
	// TraceStage identifies one timed section of a request's path
	// (decode, dispatch, shard, wal, fsync).
	TraceStage = trace.Stage
	// TraceConfig tunes NewTracer.
	TraceConfig = trace.Config
	// KeyCount is one hot-key estimate from the SpaceSaving sketch:
	// Count-Err <= true frequency <= Count.
	KeyCount = trace.KeyCount
)

// Span stages, in pipeline order.
const (
	StageDecode   = trace.StageDecode
	StageDispatch = trace.StageDispatch
	StageShard    = trace.StageShard
	StageWAL      = trace.StageWAL
	StageFsync    = trace.StageFsync
)

// NewTracer returns a Tracer for cfg; see TraceConfig for the sampling,
// slow-threshold and hot-key knobs. It panics if cfg.SampleRate is
// positive without a Metrics bundle (prefer StackConfig.Trace, which
// returns an error instead).
func NewTracer(cfg TraceConfig) *Tracer { return trace.New(cfg) }

// TraceOptions is the StackConfig knob for request tracing. The tracer
// it builds is bound to the stack's Metrics bundle and returned by
// Stack.Tracer(), ready to hand to ServeConfig.Tracer and the admin
// plane.
type TraceOptions struct {
	// SampleRate is the fraction of request groups traced, in [0, 1]
	// (0 disables span sampling; the disabled cost is one atomic load
	// per group).
	SampleRate float64
	// SlowThreshold publishes an EvSlowRequest event with the full span
	// timeline for every sampled group at least this slow (0 disables).
	SlowThreshold time.Duration
	// TopK enables hot-key telemetry with a SpaceSaving sketch of this
	// per-shard capacity (0 disables).
	TopK int
}
