package lix

import (
	"bytes"
	"strings"
	"testing"
)

func obsTestRecs(n int) []KV {
	recs := make([]KV, n)
	for i := range recs {
		recs[i] = KV{Key: Key(i * 7), Value: Value(i)}
	}
	return recs
}

// TestObserveRecordsAcrossKinds drives the acceptance matrix: for RMI, PGM,
// ALEX, LIPP, XIndex and the learned LSM, an observed index must record
// per-op latency histograms, counters, and — with search metrics enabled —
// probe counts and error-window widths from the shared last-mile search.
func TestObserveRecordsAcrossKinds(t *testing.T) {
	recs := obsTestRecs(3000)

	builders := []struct {
		kind  string
		build func(t *testing.T) Index
	}{
		{"rmi", func(t *testing.T) Index {
			ix, err := NewRMI(recs, RMIConfig{})
			if err != nil {
				t.Fatal(err)
			}
			return ix
		}},
		{"pgm", func(t *testing.T) Index {
			ix, err := NewPGM(recs, 0)
			if err != nil {
				t.Fatal(err)
			}
			return ix
		}},
		{"alex", func(t *testing.T) Index {
			ix, err := BulkALEX(recs)
			if err != nil {
				t.Fatal(err)
			}
			return ix
		}},
		{"lipp", func(t *testing.T) Index {
			ix, err := BulkLIPP(recs)
			if err != nil {
				t.Fatal(err)
			}
			return ix
		}},
		{"xindex", func(t *testing.T) Index {
			ix, err := BulkXIndex(recs, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			return ix
		}},
		{"learned-lsm", func(t *testing.T) Index {
			db := NewLearnedLSM(LSMConfig{MemtableCap: 256})
			for _, r := range recs {
				db.Insert(r.Key, r.Value)
			}
			// Everything still in the memtable would bypass the learned
			// run indexes; the cap above forces flushed runs.
			return db
		}},
	}

	for _, b := range builders {
		t.Run(b.kind, func(t *testing.T) {
			m := NewMetrics(b.kind)
			o := Observe(b.build(t), m)
			EnableSearchMetrics(m)
			defer DisableSearchMetrics()

			hits := 0
			for _, r := range recs[:500] {
				v, ok := o.Get(r.Key)
				if !ok || v != r.Value {
					t.Fatalf("Get(%d) = (%d, %v), want (%d, true)", r.Key, v, ok, r.Value)
				}
				hits++
			}
			if _, ok := o.Get(recs[len(recs)-1].Key + 1); ok {
				t.Fatal("Get(absent) hit")
			}
			got := 0
			o.Range(recs[10].Key, recs[20].Key, func(Key, Value) bool { got++; return true })
			if got != 11 {
				t.Fatalf("Range visited %d, want 11", got)
			}
			DisableSearchMetrics()

			s := m.Snapshot()
			if s.Counters["lookups"] != 501 || s.Counters["hits"] != 500 {
				t.Fatalf("lookups=%d hits=%d, want 501/500", s.Counters["lookups"], s.Counters["hits"])
			}
			if s.Counters["ranges"] != 1 {
				t.Fatalf("ranges = %d, want 1", s.Counters["ranges"])
			}
			if c := s.Histograms["get_ns"].Count; c != 501 {
				t.Fatalf("get_ns count = %d, want 501", c)
			}
			if c := s.Histograms["range_ns"].Count; c != 1 {
				t.Fatalf("range_ns count = %d, want 1", c)
			}
			if s.Histograms["range_len"].Max != 11 {
				t.Fatalf("range_len max = %d, want 11", s.Histograms["range_len"].Max)
			}
			// Every surveyed kind must feed the correction-cost histograms:
			// the learned ones through core.SearchRange/ExponentialSearch,
			// LIPP through its recorded descent (probes = node hops).
			if c := s.Histograms["search_probes"].Count; c == 0 {
				t.Fatal("no probe counts recorded")
			}
			if c := s.Histograms["search_window"].Count; c == 0 {
				t.Fatal("no error-window widths recorded")
			}
			if b.kind == "lipp" {
				if p50 := s.Histograms["search_probes"].P50; p50 < 1 {
					t.Fatalf("lipp descent p50 = %d, want >= 1", p50)
				}
			}
		})
	}
}

// TestObserveMutableRecordsWritesAndEvents checks the write-side histograms
// and that structural events flow from inside the index into the bundle.
func TestObserveMutableRecordsWritesAndEvents(t *testing.T) {
	cases := []struct {
		kind      string
		wantEvent EventType
	}{
		{"alex", EvNodeSplit},
		{"lipp", EvNodeSplit},
		{"pgm-dynamic", EvBufferFlush},
		{"fiting", EvBufferMerge},
		{"learned-lsm", EvBufferFlush},
	}
	for _, c := range cases {
		t.Run(c.kind, func(t *testing.T) {
			idx, err := BuildMutable1D(c.kind)
			if err != nil {
				t.Fatal(err)
			}
			m := NewMetrics(c.kind)
			o := ObserveMutable(idx, m)
			// A scrambled insert order provokes structural adaptation.
			const n = 20000
			for i := 0; i < n; i++ {
				k := Key((i * 2654435761) % (8 * n))
				o.Insert(k, Value(i))
			}
			o.Delete(Key(0))
			s := m.Snapshot()
			if s.Counters["inserts"] != n || s.Counters["deletes"] != 1 {
				t.Fatalf("inserts=%d deletes=%d", s.Counters["inserts"], s.Counters["deletes"])
			}
			if c := s.Histograms["insert_ns"].Count; c != n {
				t.Fatalf("insert_ns count = %d, want %d", c, n)
			}
			if c := s.Histograms["delete_ns"].Count; c != 1 {
				t.Fatalf("delete_ns count = %d, want 1", c)
			}
			if got := m.Events.Count(c.wantEvent); got == 0 {
				t.Fatalf("no %v events recorded", c.wantEvent)
			}
		})
	}
}

// TestObserveXIndexEvents covers the concurrent index separately: its
// compactions retrain groups and swap the root RCU-style.
func TestObserveXIndexEvents(t *testing.T) {
	ix := NewXIndex(64, 16)
	m := NewMetrics("xindex")
	ix.SetObserver(m)
	for i := 0; i < 5000; i++ {
		ix.Insert(Key((i*2654435761)%100000), Value(i))
	}
	if m.Events.Count(EvCompaction) == 0 {
		t.Fatal("no compaction events")
	}
	if m.Events.Count(EvRetrain) == 0 {
		t.Fatal("no retrain events")
	}
	if m.Events.Count(EvRCUSwap) == 0 {
		t.Fatal("no RCU swap events")
	}
}

// TestObserveTransparency checks the non-recording forwards.
func TestObserveTransparency(t *testing.T) {
	recs := obsTestRecs(100)
	base := NewSortedArray(recs)
	m := NewMetrics("t")
	o := Observe(base, m)
	if o.Len() != base.Len() {
		t.Fatalf("Len = %d, want %d", o.Len(), base.Len())
	}
	if o.Stats() != base.Stats() {
		t.Fatalf("Stats = %v, want %v", o.Stats(), base.Stats())
	}
	if o.Unwrap() != base {
		t.Fatal("Unwrap lost the index")
	}
	if o.Metrics() != m {
		t.Fatal("Metrics lost the bundle")
	}
	// CheckInvariants must see through the wrapper to the sorted array's
	// own self-check.
	if err := CheckInvariants(o); err != nil {
		t.Fatalf("CheckInvariants through wrapper: %v", err)
	}
}

// TestDriftClosedLoop wires the live correction-cost stream into a drift
// detector and asserts the loop closes: wide error windows trip the
// detector, which fires the retrain callback and publishes EvDriftTrip.
func TestDriftClosedLoop(t *testing.T) {
	recs := obsTestRecs(4000)
	ix, err := NewPGM(recs, 64) // wide eps -> wide windows -> high cost
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics("pgm")
	det, err := NewDriftEWMA(1.0, 2.0, 0.5) // trips once smoothed cost > 2
	if err != nil {
		t.Fatal(err)
	}
	retrained := false
	m.SetDriftDetector(det, func() { retrained = true })
	o := Observe(ix, m)
	EnableSearchMetrics(m)
	defer DisableSearchMetrics()
	for _, r := range recs[:200] {
		o.Get(r.Key)
	}
	DisableSearchMetrics()
	if !retrained {
		t.Fatal("drift detector never tripped on wide-window lookups")
	}
	if !m.DriftTripped() {
		t.Fatal("DriftTripped not latched")
	}
	if m.Events.Count(EvDriftTrip) != 1 {
		t.Fatalf("EvDriftTrip count = %d, want 1 (latched)", m.Events.Count(EvDriftTrip))
	}
	// Re-arm (as a retrain would) and confirm the loop can trip again.
	m.ReArmDrift()
	det.Reset(1.0)
	EnableSearchMetrics(m)
	for _, r := range recs[:200] {
		o.Get(r.Key)
	}
	DisableSearchMetrics()
	if m.Events.Count(EvDriftTrip) != 2 {
		t.Fatalf("EvDriftTrip after re-arm = %d, want 2", m.Events.Count(EvDriftTrip))
	}
}

// TestWriteMetricsPrometheus smoke-tests the public text rendering.
func TestWriteMetricsPrometheus(t *testing.T) {
	m := NewMetrics("demo")
	o := Observe(NewSortedArray(obsTestRecs(10)), m)
	o.Get(7)
	var buf bytes.Buffer
	if err := WriteMetricsPrometheus(&buf, m); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lix_lookups_total{index="demo"} 1`,
		`lix_get_ns_count{index="demo"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Prometheus output missing %q:\n%s", want, out)
		}
	}
}
