package lix

import (
	"net/http"

	"github.com/lix-go/lix/internal/serve"
)

// This file re-exports the pipelined TCP serving front-end
// (internal/serve) and its wire protocol surface. The server speaks a
// length-prefixed binary protocol (DESIGN.md §7) and turns pipelined
// request bursts into single batch calls on the underlying stack, so a
// 256-key pipelined MGET costs one shard fan-out and a pipelined write
// burst commits as one WAL frame group.

// ServeStore is the minimal index surface the server needs. *Stack
// satisfies it, as does any MutableIndex.
type ServeStore = serve.Store

// ServeConfig configures a Server. The zero value listens on an
// ephemeral port with production defaults.
type ServeConfig = serve.Config

// Server is a pipelined TCP front-end over a ServeStore.
type Server = serve.Server

// NewServer returns an unstarted server over store. Call Start to begin
// accepting and Shutdown to drain.
//
//	stack, _ := lix.NewStack(recs, lix.StackConfig{Shards: 8})
//	srv := lix.NewServer(stack, lix.ServeConfig{Addr: ":7070", Metrics: m, CloseStore: true})
//	if err := srv.Start(); err != nil { ... }
//	defer srv.Shutdown()
func NewServer(store ServeStore, cfg ServeConfig) *Server {
	return serve.New(store, cfg)
}

// AdminConfig assembles the live admin HTTP plane: /metrics, /healthz,
// /readyz, /events, /topk and /debug/pprof/*.
type AdminConfig = serve.AdminConfig

// NewAdminHandler returns the admin-plane handler for cfg. Typical
// wiring alongside a Server:
//
//	h := lix.NewAdminHandler(lix.AdminConfig{
//		Metrics: []*lix.Metrics{m},
//		Tracer:  stack.Tracer(),
//		Ready:   func() bool { return !srv.Draining() },
//	})
//	go http.ListenAndServe(adminAddr, h)
func NewAdminHandler(cfg AdminConfig) http.Handler {
	return serve.NewAdminHandler(cfg)
}
