package lix

import (
	"reflect"
	"testing"
)

func stackRecs(n int) []KV {
	recs := make([]KV, n)
	for i := range recs {
		recs[i] = KV{Key: Key(i * 3), Value: Value(i)}
	}
	return recs
}

func TestStackPlain(t *testing.T) {
	s, err := NewStack(stackRecs(100), StackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Sharded() != nil || s.Durable() != nil || s.Metrics() != nil {
		t.Fatal("plain stack grew unexpected layers")
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	if v, ok := s.Get(30); !ok || v != 10 {
		t.Fatalf("Get(30) = (%d, %v), want (10, true)", v, ok)
	}
	s.InsertBatch([]KV{{Key: 1, Value: 100}, {Key: 1, Value: 101}})
	if v, ok := s.Get(1); !ok || v != 101 {
		t.Fatalf("later-wins InsertBatch: Get(1) = (%d, %v), want (101, true)", v, ok)
	}
	if oks := s.DeleteBatch([]Key{1, 1}); !reflect.DeepEqual(oks, []bool{true, false}) {
		t.Fatalf("DeleteBatch dups = %v, want [true false]", oks)
	}
	if out := s.SearchRange(10, 5); out == nil || len(out) != 0 {
		t.Fatalf("inverted SearchRange = %v, want non-nil empty", out)
	}
}

func TestStackShardedAndObserved(t *testing.T) {
	m := NewMetrics("stack")
	s, err := NewStack(stackRecs(1000), StackConfig{Kind: "btree", Shards: 4, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Sharded() == nil {
		t.Fatal("Sharded() = nil for a sharded stack")
	}
	if s.Metrics() != m {
		t.Fatal("Metrics() did not round-trip")
	}
	keys := make([]Key, 200)
	for i := range keys {
		keys[i] = Key(i * 3)
	}
	vals, oks := s.LookupBatch(keys)
	for i := range keys {
		if !oks[i] || vals[i] != Value(i) {
			t.Fatalf("LookupBatch[%d] = (%d, %v), want (%d, true)", i, vals[i], oks[i], i)
		}
	}
	got := s.SearchRange(0, 60)
	if len(got) != 21 {
		t.Fatalf("SearchRange(0, 60) returned %d records, want 21", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Key >= got[i].Key {
			t.Fatalf("SearchRange out of order at %d: %v", i, got)
		}
	}
	snap := m.Snapshot()
	if snap.Counters["batches"] == 0 {
		t.Fatal("obs layer did not count the batch")
	}
	if snap.Counters["lookups"] < 200 {
		t.Fatalf("lookups = %d, want >= 200", snap.Counters["lookups"])
	}
	if snap.Counters["ranges"] == 0 {
		t.Fatal("obs layer did not count SearchRange")
	}
}

func TestStackDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := NewMetrics("stack-durable")
	s, err := NewStack(stackRecs(500), StackConfig{
		Dir: dir, Shards: 2, Fsync: FsyncNever, Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Durable() == nil || s.Sharded() == nil {
		t.Fatal("durable sharded stack missing a layer accessor")
	}
	s.InsertBatch([]KV{{Key: 7, Value: 70}, {Key: 11, Value: 110}})
	if oks := s.DeleteBatch([]Key{7}); !oks[0] {
		t.Fatal("DeleteBatch(7) = false, want true")
	}
	// Close through the obs wrapper's io.Closer forwarding — no unwrapping.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewStack(nil, StackConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Sharded() == nil {
		t.Fatal("reopened stack lost its shard layer (meta shards not recovered)")
	}
	if _, ok := r.Get(7); ok {
		t.Fatal("deleted key 7 survived recovery")
	}
	if v, ok := r.Get(11); !ok || v != 110 {
		t.Fatalf("Get(11) after reopen = (%d, %v), want (110, true)", v, ok)
	}
	if r.Len() != 501 {
		t.Fatalf("Len after reopen = %d, want 501", r.Len())
	}
}

func TestStackConfigErrors(t *testing.T) {
	if _, err := NewStack(nil, StackConfig{Kind: "no-such-kind"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := NewStack(nil, StackConfig{Kind: "rmi"}); err == nil {
		t.Fatal("static-only kind accepted as stack backend")
	}
	if _, err := NewStack(nil, StackConfig{Dir: t.TempDir(), Mode: ShardRCU, Shards: 2}); err == nil {
		t.Fatal("durable RCU stack accepted")
	}
}

// TestSearchRangeThroughWrappers pins the satellite fix: SearchRange
// dispatches on the RangeSearcher capability, so a Sharded keeps its
// parallel fan-out behind the obs wrapper instead of degrading to a
// sequential scan — and the results stay identical either way.
func TestSearchRangeThroughWrappers(t *testing.T) {
	recs := stackRecs(800)
	sh, err := NewSharded(recs, ShardedConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := Observe(sh, NewMetrics("wrapped"))
	direct := sh.SearchRange(100, 2000)
	viaWrapper := SearchRange(wrapped, 100, 2000)
	if !reflect.DeepEqual(direct, viaWrapper) {
		t.Fatalf("SearchRange through obs wrapper diverged: %d vs %d records",
			len(direct), len(viaWrapper))
	}
	if len(direct) == 0 {
		t.Fatal("empty fan-out result")
	}
}
