package lix

import "github.com/lix-go/lix/internal/page"

// Paged indexes: the disk-resident storage tier. Both kinds store sorted
// records in fixed-size CRC-framed pages behind a buffer pool with CLOCK
// eviction, so the resident working set is bounded by
// PagedOptions.PoolFrames even when the indexed data is far larger than
// memory. `paged-btree` routes through disk-resident inner pages;
// `paged-pgm` replaces the routing tree with an in-memory learned model
// over the leaf fence keys, touching at most one page per point lookup.
// See DESIGN.md §9 for the page format and eviction rules.
type (
	// PagedOptions configure a paged index: page size and buffer-pool
	// frame budget.
	PagedOptions = page.Options
	// PagedBTree is a disk-backed B+-tree over fixed-size pages.
	PagedBTree = page.BTree
	// PagedPGM is a paged learned index: PGM-style segments over
	// page-resident leaves, with the model pinned in memory.
	PagedPGM = page.PGM
	// PagedPoolStats is a point-in-time view of a paged index's buffer
	// pool traffic (hits, misses, evictions, write-backs).
	PagedPoolStats = page.PoolStats
)

// CreatePagedBTree creates a fresh paged B+-tree file at path.
func CreatePagedBTree(path string, o PagedOptions) (*PagedBTree, error) {
	return page.CreateBTree(path, o)
}

// OpenPagedBTree reopens a paged B+-tree file created earlier.
func OpenPagedBTree(path string, o PagedOptions) (*PagedBTree, error) {
	return page.OpenBTree(path, o)
}

// NewTempPagedBTree creates a paged B+-tree backed by a temporary file
// removed on Close — a drop-in mutable index whose memory stays bounded.
func NewTempPagedBTree(o PagedOptions) (*PagedBTree, error) {
	return page.NewTempBTree(o)
}

// BulkPagedBTree creates a paged B+-tree file at path bulk-loaded with
// recs (sorted ascending, distinct keys).
func BulkPagedBTree(path string, recs []KV, o PagedOptions) (*PagedBTree, error) {
	return page.BulkBTree(path, recs, o)
}

// CreatePagedPGM creates a fresh paged learned index file at path.
func CreatePagedPGM(path string, o PagedOptions) (*PagedPGM, error) {
	return page.CreatePGM(path, o)
}

// OpenPagedPGM reopens a paged learned index, rebuilding the in-memory
// fence array and model from the on-disk leaf chain.
func OpenPagedPGM(path string, o PagedOptions) (*PagedPGM, error) {
	return page.OpenPGM(path, o)
}

// NewTempPagedPGM creates a paged learned index backed by a temporary
// file removed on Close.
func NewTempPagedPGM(o PagedOptions) (*PagedPGM, error) {
	return page.NewTempPGM(o)
}

// BulkPagedPGM creates a paged learned index file at path bulk-loaded
// with recs (sorted ascending, distinct keys).
func BulkPagedPGM(path string, recs []KV, o PagedOptions) (*PagedPGM, error) {
	return page.BulkPGM(path, recs, o)
}
