package registry_test

// The external test package imports the façade so its init populates the
// registry, then checks lookups, constructor dispatch and the Register
// panics against the live kind set.

import (
	"sort"
	"strings"
	"testing"

	lix "github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/registry"
)

func TestNamesSortedAndPopulated(t *testing.T) {
	names := registry.Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	for _, want := range []string{"btree", "pgm", "alex", "rtree", "flood"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("Names() missing %q: %v", want, names)
		}
	}
}

func TestKindListsMatchFacade(t *testing.T) {
	// The façade's public kind lists are registry views; enumeration order
	// is registration order and must stay byte-stable.
	if got, want := registry.StaticKinds(), lix.Static1DKinds(); !equal(got, want) {
		t.Fatalf("StaticKinds() = %v, façade %v", got, want)
	}
	if got, want := registry.MutableKinds(), lix.Mutable1DKinds(); !equal(got, want) {
		t.Fatalf("MutableKinds() = %v, façade %v", got, want)
	}
}

func TestLookupErrors(t *testing.T) {
	if _, err := registry.Lookup("no-such-kind"); err == nil || !strings.Contains(err.Error(), "unknown index kind") {
		t.Fatalf("Lookup(no-such-kind) err = %v", err)
	}
	// skiplist registers only an empty constructor: no static build.
	if _, err := registry.Static("skiplist"); err == nil {
		t.Fatal("Static(skiplist) should fail: kind has no static builder")
	}
	// rmi is read-only: no mutable constructor.
	if _, err := registry.Mutable("rmi"); err == nil {
		t.Fatal("Mutable(rmi) should fail: kind is read-only")
	}
}

func TestBuildMutablePreloads(t *testing.T) {
	recs := []core.KV{{Key: 1, Value: 10}, {Key: 5, Value: 50}, {Key: 9, Value: 90}}
	for _, kind := range []string{"btree", "skiplist"} { // with and without Bulk
		ix, err := registry.BuildMutable(kind, recs)
		if err != nil {
			t.Fatalf("BuildMutable(%s): %v", kind, err)
		}
		if ix.Len() != len(recs) {
			t.Fatalf("%s: Len = %d, want %d", kind, ix.Len(), len(recs))
		}
		if v, ok := ix.Get(5); !ok || v != 50 {
			t.Fatalf("%s: Get(5) = (%d, %v), want (50, true)", kind, v, ok)
		}
	}
}

func TestRegisterPanics(t *testing.T) {
	expectPanic := func(name string, k registry.Kind) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Register did not panic", name)
			}
		}()
		registry.Register(k)
	}
	stat := func(recs []core.KV) (registry.Index, error) { return nil, nil }
	expectPanic("duplicate", registry.Kind{Name: "btree", Static: stat})
	expectPanic("empty name", registry.Kind{Static: stat})
	expectPanic("no constructor", registry.Kind{Name: "t-none"})
	expectPanic("spatial caps mismatch", registry.Kind{
		Name: "t-spatial", Caps: registry.Caps{Spatial: true}, Static: stat,
	})
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
