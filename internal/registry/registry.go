// Package registry is the single kind registry of the lix library: one
// table mapping an index-kind name to its constructors and capability
// flags. The public façade registers every kind at init (see the
// façade's register.go); the façade's Build1D/BuildMutable1D shims, the
// sharded serving layer, the durable storage planner, the conformance
// suite and the benchmark CLI all resolve kinds here instead of keeping
// their own switch statements.
//
// The registry deliberately depends only on internal/core: it defines
// the index surfaces structurally (identical method sets to the façade
// and to internal/conform, internal/shard, internal/store), so interface
// values convert implicitly in both directions.
package registry

import (
	"fmt"
	"sort"

	"github.com/lix-go/lix/internal/core"
)

// Index is the read-only one-dimensional index surface.
type Index interface {
	Get(k core.Key) (core.Value, bool)
	Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int
	Len() int
	Stats() core.Stats
}

// MutableIndex is an Index supporting upserts and deletes.
type MutableIndex interface {
	Index
	Insert(k core.Key, v core.Value)
	Delete(k core.Key) bool
}

// SpatialIndex is the multi-dimensional read surface.
type SpatialIndex interface {
	Lookup(p core.Point) (core.Value, bool)
	Search(rect core.Rect, fn func(core.PV) bool) (visited, work int)
	Len() int
	Stats() core.Stats
}

// MutableSpatialIndex is a SpatialIndex supporting inserts and deletes.
type MutableSpatialIndex interface {
	SpatialIndex
	Insert(p core.Point, v core.Value) error
	Delete(p core.Point, v core.Value) bool
}

// Caps are a kind's capability flags, mirrored by the conformance suite.
type Caps struct {
	// Mutable kinds support Insert/Delete after construction.
	Mutable bool
	// Spatial kinds store points; non-spatial kinds store uint64 keys.
	Spatial bool
	// KNN spatial kinds answer k-nearest-neighbor queries.
	KNN bool
	// AllowsEmpty builders accept an empty record set.
	AllowsEmpty bool
	// Dims restricts a spatial kind to this dimensionality (0 = any).
	Dims int
}

// Kind is one registered index kind. Exactly the constructors the kind
// supports are non-nil: a kind with Static appears in StaticKinds, a
// kind with New appears in MutableKinds, Bulk is the optional
// bulk-loading fast path (the BulkBuilder capability — a property of
// the kind, not of an instance), and SpatialBulk/SpatialNew are the
// spatial equivalents.
type Kind struct {
	Name string
	Caps Caps
	// Static builds a read-only index over sorted records.
	Static func(recs []core.KV) (Index, error)
	// New returns an empty mutable index.
	New func() (MutableIndex, error)
	// Bulk builds a mutable index over sorted records faster than an
	// insert loop; nil when the kind has no bulk path.
	Bulk func(recs []core.KV) (MutableIndex, error)
	// SpatialBulk builds a spatial index over points.
	SpatialBulk func(pvs []core.PV) (SpatialIndex, error)
	// SpatialNew returns an empty mutable spatial index.
	SpatialNew func() (MutableSpatialIndex, error)
}

var kinds []Kind

// Register adds a kind to the registry. It panics on duplicate names,
// empty names, or a kind with no constructor — programmer errors caught
// at init time.
func Register(k Kind) {
	if k.Name == "" {
		panic("registry: kind with empty name")
	}
	if k.Static == nil && k.New == nil && k.Bulk == nil && k.SpatialBulk == nil && k.SpatialNew == nil {
		panic("registry: kind " + k.Name + " has no constructor")
	}
	if k.Caps.Spatial != (k.SpatialBulk != nil || k.SpatialNew != nil) {
		panic("registry: kind " + k.Name + " constructors do not match Caps.Spatial")
	}
	if k.Caps.Mutable && !k.Caps.Spatial && k.New == nil && k.Bulk == nil {
		panic("registry: mutable kind " + k.Name + " has no mutable constructor")
	}
	for _, g := range kinds {
		if g.Name == k.Name {
			panic("registry: duplicate kind " + k.Name)
		}
	}
	kinds = append(kinds, k)
}

// Lookup returns the named kind.
func Lookup(name string) (Kind, error) {
	for _, k := range kinds {
		if k.Name == name {
			return k, nil
		}
	}
	return Kind{}, fmt.Errorf("registry: unknown index kind %q (known: %v)", name, Names())
}

// Static resolves name to a kind with a read-only builder.
func Static(name string) (Kind, error) {
	k, err := Lookup(name)
	if err != nil {
		return Kind{}, err
	}
	if k.Static == nil {
		return Kind{}, fmt.Errorf("registry: kind %q has no static builder (want one of %v)", name, StaticKinds())
	}
	return k, nil
}

// Mutable resolves name to a kind with a mutable constructor.
func Mutable(name string) (Kind, error) {
	k, err := Lookup(name)
	if err != nil {
		return Kind{}, err
	}
	if k.New == nil {
		return Kind{}, fmt.Errorf("registry: kind %q is not mutable (want one of %v)", name, MutableKinds())
	}
	return k, nil
}

// Kinds returns every registered kind in registration order.
func Kinds() []Kind { return append([]Kind(nil), kinds...) }

// Names returns every registered kind name, sorted.
func Names() []string {
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = k.Name
	}
	sort.Strings(out)
	return out
}

// StaticKinds lists the kinds with a read-only builder, in registration
// order (the order benchmark tables render in).
func StaticKinds() []string {
	var out []string
	for _, k := range kinds {
		if k.Static != nil {
			out = append(out, k.Name)
		}
	}
	return out
}

// MutableKinds lists the kinds with a mutable constructor, in
// registration order.
func MutableKinds() []string {
	var out []string
	for _, k := range kinds {
		if k.New != nil {
			out = append(out, k.Name)
		}
	}
	return out
}

// SpatialKinds lists the spatial kinds, in registration order.
func SpatialKinds() []string {
	var out []string
	for _, k := range kinds {
		if k.Caps.Spatial {
			out = append(out, k.Name)
		}
	}
	return out
}

// BuildMutable builds a mutable index of the named kind preloaded with
// recs (sorted ascending, distinct keys), through the kind's bulk path
// when it has one, else an empty constructor plus an insert loop.
func BuildMutable(name string, recs []core.KV) (MutableIndex, error) {
	k, err := Mutable(name)
	if err != nil {
		return nil, err
	}
	if k.Bulk != nil {
		return k.Bulk(recs)
	}
	ix, err := k.New()
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		ix.Insert(r.Key, r.Value)
	}
	return ix, nil
}
