package wire

import (
	"bytes"
	"testing"

	"github.com/lix-go/lix/internal/core"
)

// TestReaderDecodeTiming pins the decode-timing accumulator the serving
// tracer leans on: off by default, accumulating across Reads when
// enabled, and reset by TakeDecodeNS so parse time can never leak from
// one pipelined group into the next group's span.
func TestReaderDecodeTiming(t *testing.T) {
	frame := func(m *Msg) []byte {
		b, err := AppendFrame(nil, m, 0)
		if err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
		return b
	}
	var stream []byte
	stream = append(stream, frame(&Msg{Op: OpSet, Key: 1, Val: 10})...)
	stream = append(stream, frame(&Msg{Op: OpMGet, Keys: []core.Key{1, 2, 3}})...)
	stream = append(stream, frame(&Msg{Op: OpGet, Key: 2})...)

	// Timing off (default): the accumulator stays zero.
	r := NewReader(bytes.NewReader(stream), 0)
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	if ns := r.TakeDecodeNS(); ns != 0 {
		t.Errorf("decode ns with timing off = %d, want 0", ns)
	}

	// Timing on: each Read adds to the accumulator.
	r.SetTiming(true)
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	first := r.decodeNS
	if first <= 0 {
		t.Fatalf("decode ns after one timed Read = %d, want > 0", first)
	}
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	if r.decodeNS < first {
		t.Errorf("decode ns did not accumulate: %d then %d", first, r.decodeNS)
	}

	// Take drains and resets.
	if ns := r.TakeDecodeNS(); ns < first {
		t.Errorf("TakeDecodeNS = %d, want >= %d", ns, first)
	}
	if ns := r.TakeDecodeNS(); ns != 0 {
		t.Errorf("second TakeDecodeNS = %d, want 0 (reset)", ns)
	}

	// Toggling timing back off stops accumulation.
	r.SetTiming(false)
	r2 := NewReader(bytes.NewReader(frame(&Msg{Op: OpGet, Key: 7})), 0)
	r2.SetTiming(true)
	r2.SetTiming(false)
	if _, err := r2.Read(); err != nil {
		t.Fatal(err)
	}
	if ns := r2.TakeDecodeNS(); ns != 0 {
		t.Errorf("decode ns after re-disabling = %d, want 0", ns)
	}
}
