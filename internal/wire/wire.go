// Package wire is the lixserve wire protocol: a length-prefixed binary
// frame codec shared by the server (internal/serve) and the client side
// (Client here, the lixbench load generator, tests).
//
// Frame layout:
//
//	+----------------+---------------------------+
//	| len uint32 BE  | payload (len bytes)       |
//	+----------------+---------------------------+
//	payload = opcode byte | op-specific body
//
// The length prefix counts the payload only (opcode included). All
// integers are big-endian; keys and values are the library's uint64 Key
// and Value. The codec is strict: Decode rejects unknown opcodes, short
// bodies, trailing bytes and element counts that disagree with the
// payload length, so Encode(Decode(p)) == p holds for every frame Decode
// accepts (FuzzWireDecode pins this).
//
// Requests and replies share the frame format; replies have the high bit
// of the opcode set. Pipelining is plain frame concatenation: a client
// may write any number of request frames before reading, and the server
// answers every request in request order. Every request draws exactly one
// logical reply; SCAN is the one op whose reply may span several frames —
// zero or more RKVsPart chunks closed by a final RKVs — so a result set
// larger than the frame guard streams instead of failing. Client
// reassembles the chunks transparently.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/lix-go/lix/internal/core"
)

// Op is a frame opcode. Requests have the high bit clear, replies have it
// set.
type Op uint8

// Request opcodes.
const (
	OpGet  Op = 0x01 // key(8) -> RValue | RNil
	OpSet  Op = 0x02 // key(8) val(8) -> ROK
	OpDel  Op = 0x03 // key(8) -> RBool
	OpMGet Op = 0x04 // n(4) keys(8n) -> RValues
	OpMSet Op = 0x05 // n(4) (key,val)(16n) -> ROK
	OpScan Op = 0x06 // lo(8) hi(8) limit(4) -> RKVsPart* RKVs
	OpPing Op = 0x07 // empty -> ROK
)

// Reply opcodes.
const (
	RValue  Op = 0x81 // val(8): point lookup hit
	RNil    Op = 0x82 // empty: point lookup miss
	ROK     Op = 0x83 // empty: write/ping acknowledged
	RBool   Op = 0x84 // b(1): delete outcome
	RValues Op = 0x85 // n(4) (ok(1) val(8))n: MGet answers, input order
	RKVs    Op = 0x86 // n(4) (key,val)(16n): Scan results, ascending
	RErr    Op = 0x87 // utf-8 message
	// RKVsPart is a non-final chunk of a Scan reply (same body as RKVs):
	// the records so far, continued by more RKVsPart frames or closed by
	// the final RKVs. Chunks concatenate in ascending key order.
	RKVsPart Op = 0x88
)

// String returns the protocol name of the opcode.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpSet:
		return "SET"
	case OpDel:
		return "DEL"
	case OpMGet:
		return "MGET"
	case OpMSet:
		return "MSET"
	case OpScan:
		return "SCAN"
	case OpPing:
		return "PING"
	case RValue:
		return "VALUE"
	case RNil:
		return "NIL"
	case ROK:
		return "OK"
	case RBool:
		return "BOOL"
	case RValues:
		return "VALUES"
	case RKVs:
		return "KVS"
	case RKVsPart:
		return "KVSPART"
	case RErr:
		return "ERR"
	}
	return fmt.Sprintf("Op(0x%02x)", uint8(o))
}

// IsReply reports whether o is a reply opcode.
func (o Op) IsReply() bool { return o&0x80 != 0 }

// HeaderLen is the frame header size: the uint32 payload length.
const HeaderLen = 4

// DefaultMaxFrame is the frame-size guard applied when a Reader or server
// is configured with zero: 1 MiB, comfortably above a 4096-record MSET
// and small enough that a hostile length prefix cannot balloon memory.
const DefaultMaxFrame = 1 << 20

// Protocol errors.
var (
	// ErrFrameTooLarge reports a length prefix exceeding the reader's
	// maximum. The oversized payload has NOT been consumed; the stream is
	// desynchronized and the connection must be closed.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	// ErrMalformed reports a payload that does not decode. The frame
	// itself was consumed, but a server must still close the connection:
	// request/reply pairing inside a pipelined group is no longer
	// trustworthy.
	ErrMalformed = errors.New("wire: malformed frame")
)

// Msg is the decoded form of one frame. Op selects which fields are
// meaningful; Decode leaves the rest at their zero values so that decoded
// messages compare equal to the canonical Msg that encodes to the same
// bytes.
type Msg struct {
	Op Op

	// Key is the OpGet/OpSet/OpDel subject.
	Key core.Key
	// Val is the OpSet payload and the RValue answer.
	Val core.Value
	// Ok is the RBool outcome.
	Ok bool
	// Lo, Hi bound an OpScan (inclusive).
	Lo, Hi core.Key
	// Limit caps OpScan results (0 = server default cap).
	Limit uint32
	// Keys are the OpMGet subjects.
	Keys []core.Key
	// Recs are the OpMSet payload and the RKVs answer.
	Recs []core.KV
	// Vals and Oks are the RValues answer: Vals[i], Oks[i] answer the
	// request's Keys[i].
	Vals []core.Value
	Oks  []bool
	// Err is the RErr message.
	Err string
}

// AppendFrame appends the encoded frame (header + payload) for m to dst
// and returns the extended slice. It fails if the message does not fit in
// maxFrame (0 selects DefaultMaxFrame), mirroring the decoder's guard.
func AppendFrame(dst []byte, m *Msg, maxFrame int) ([]byte, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	n := payloadLen(m)
	if n < 0 {
		return dst, fmt.Errorf("%w: cannot encode opcode %s", ErrMalformed, m.Op)
	}
	if n > maxFrame {
		return dst, fmt.Errorf("%w: %d byte payload, max %d", ErrFrameTooLarge, n, maxFrame)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, byte(m.Op))
	switch m.Op {
	case OpGet, OpDel:
		dst = binary.BigEndian.AppendUint64(dst, m.Key)
	case OpSet:
		dst = binary.BigEndian.AppendUint64(dst, m.Key)
		dst = binary.BigEndian.AppendUint64(dst, m.Val)
	case OpMGet:
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Keys)))
		for _, k := range m.Keys {
			dst = binary.BigEndian.AppendUint64(dst, k)
		}
	case OpMSet, RKVs, RKVsPart:
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Recs)))
		for _, r := range m.Recs {
			dst = binary.BigEndian.AppendUint64(dst, r.Key)
			dst = binary.BigEndian.AppendUint64(dst, r.Value)
		}
	case OpScan:
		dst = binary.BigEndian.AppendUint64(dst, m.Lo)
		dst = binary.BigEndian.AppendUint64(dst, m.Hi)
		dst = binary.BigEndian.AppendUint32(dst, m.Limit)
	case OpPing, RNil, ROK:
		// opcode only
	case RValue:
		dst = binary.BigEndian.AppendUint64(dst, m.Val)
	case RBool:
		b := byte(0)
		if m.Ok {
			b = 1
		}
		dst = append(dst, b)
	case RValues:
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Vals)))
		for i, v := range m.Vals {
			b := byte(0)
			if m.Oks[i] {
				b = 1
			}
			dst = append(dst, b)
			dst = binary.BigEndian.AppendUint64(dst, v)
		}
	case RErr:
		dst = append(dst, m.Err...)
	}
	return dst, nil
}

// payloadLen returns the encoded payload size of m, or -1 for an
// unencodable message (unknown opcode, RValues with mismatched slices).
func payloadLen(m *Msg) int {
	switch m.Op {
	case OpGet, OpDel:
		return 1 + 8
	case OpSet:
		return 1 + 16
	case OpMGet:
		return 1 + 4 + 8*len(m.Keys)
	case OpMSet, RKVs, RKVsPart:
		return 1 + 4 + 16*len(m.Recs)
	case OpScan:
		return 1 + 20
	case OpPing, RNil, ROK:
		return 1
	case RValue:
		return 1 + 8
	case RBool:
		return 1 + 1
	case RValues:
		if len(m.Vals) != len(m.Oks) {
			return -1
		}
		return 1 + 4 + 9*len(m.Vals)
	case RErr:
		return 1 + len(m.Err)
	}
	return -1
}

// Decode decodes one frame payload (the bytes after the length prefix).
// It is strict: every byte must be consumed and every element count must
// match the payload length exactly, so a malicious count can never drive
// an allocation past the payload the caller already bounded.
func Decode(payload []byte) (Msg, error) {
	if len(payload) == 0 {
		return Msg{}, fmt.Errorf("%w: empty payload", ErrMalformed)
	}
	m := Msg{Op: Op(payload[0])}
	body := payload[1:]
	fixed := func(n int) error {
		if len(body) != n {
			return fmt.Errorf("%w: %s wants %d body bytes, got %d", ErrMalformed, m.Op, n, len(body))
		}
		return nil
	}
	counted := func(entry int) (int, error) {
		if len(body) < 4 {
			return 0, fmt.Errorf("%w: %s body shorter than its count", ErrMalformed, m.Op)
		}
		n := int(binary.BigEndian.Uint32(body))
		body = body[4:]
		if entry*n != len(body) || n < 0 {
			return 0, fmt.Errorf("%w: %s count %d disagrees with %d body bytes",
				ErrMalformed, m.Op, n, len(body))
		}
		return n, nil
	}
	switch m.Op {
	case OpGet, OpDel:
		if err := fixed(8); err != nil {
			return Msg{}, err
		}
		m.Key = binary.BigEndian.Uint64(body)
	case OpSet:
		if err := fixed(16); err != nil {
			return Msg{}, err
		}
		m.Key = binary.BigEndian.Uint64(body)
		m.Val = binary.BigEndian.Uint64(body[8:])
	case OpMGet:
		n, err := counted(8)
		if err != nil {
			return Msg{}, err
		}
		m.Keys = make([]core.Key, n)
		for i := range m.Keys {
			m.Keys[i] = binary.BigEndian.Uint64(body[8*i:])
		}
	case OpMSet, RKVs, RKVsPart:
		n, err := counted(16)
		if err != nil {
			return Msg{}, err
		}
		m.Recs = make([]core.KV, n)
		for i := range m.Recs {
			m.Recs[i].Key = binary.BigEndian.Uint64(body[16*i:])
			m.Recs[i].Value = binary.BigEndian.Uint64(body[16*i+8:])
		}
	case OpScan:
		if err := fixed(20); err != nil {
			return Msg{}, err
		}
		m.Lo = binary.BigEndian.Uint64(body)
		m.Hi = binary.BigEndian.Uint64(body[8:])
		m.Limit = binary.BigEndian.Uint32(body[16:])
	case OpPing, RNil, ROK:
		if err := fixed(0); err != nil {
			return Msg{}, err
		}
	case RValue:
		if err := fixed(8); err != nil {
			return Msg{}, err
		}
		m.Val = binary.BigEndian.Uint64(body)
	case RBool:
		if err := fixed(1); err != nil {
			return Msg{}, err
		}
		if body[0] > 1 {
			return Msg{}, fmt.Errorf("%w: BOOL byte 0x%02x", ErrMalformed, body[0])
		}
		m.Ok = body[0] == 1
	case RValues:
		n, err := counted(9)
		if err != nil {
			return Msg{}, err
		}
		m.Vals = make([]core.Value, n)
		m.Oks = make([]bool, n)
		for i := range m.Vals {
			b := body[9*i]
			if b > 1 {
				return Msg{}, fmt.Errorf("%w: VALUES ok byte 0x%02x", ErrMalformed, b)
			}
			m.Oks[i] = b == 1
			m.Vals[i] = binary.BigEndian.Uint64(body[9*i+1:])
		}
	case RErr:
		m.Err = string(body)
	default:
		return Msg{}, fmt.Errorf("%w: unknown opcode 0x%02x", ErrMalformed, payload[0])
	}
	return m, nil
}

// Reader decodes frames from a stream, enforcing the max-frame guard
// before any payload allocation. It buffers the underlying stream; use
// FrameBuffered to drain already-received pipelined frames without
// blocking.
type Reader struct {
	br  *bufio.Reader
	max int
	buf []byte // reused payload buffer

	// Decode timing for request tracing: when enabled, Read accumulates
	// the time spent parsing payloads (io wait excluded — the tracer
	// wants CPU attribution, not how long the client took to send).
	timing   bool
	decodeNS int64
}

// SetTiming enables or disables decode timing. Off (the default) costs
// nothing; on, each Read adds one monotonic-clock pair around Decode.
func (r *Reader) SetTiming(on bool) { r.timing = on }

// TakeDecodeNS returns the decode nanoseconds accumulated since the last
// call and resets the accumulator. Serving loops call it once per
// pipelined group to attribute parse time to that group's span.
func (r *Reader) TakeDecodeNS() int64 {
	ns := r.decodeNS
	r.decodeNS = 0
	return ns
}

// NewReader returns a Reader over r with the given frame-size guard
// (0 selects DefaultMaxFrame).
func NewReader(r io.Reader, maxFrame int) *Reader {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &Reader{br: bufio.NewReaderSize(r, 64<<10), max: maxFrame}
}

// Read reads and decodes the next frame, blocking until one arrives. A
// length prefix past the guard returns ErrFrameTooLarge without reading
// (or allocating) the payload. The returned Msg's slices are freshly
// allocated and remain valid after the next Read; the scalar decode path
// is allocation-free.
func (r *Reader) Read() (Msg, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		return Msg{}, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > r.max {
		return Msg{}, fmt.Errorf("%w: %d bytes, max %d", ErrFrameTooLarge, n, r.max)
	}
	if cap(r.buf) < n {
		r.buf = make([]byte, n)
	}
	buf := r.buf[:n]
	if _, err := io.ReadFull(r.br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Msg{}, err
	}
	if r.timing {
		t0 := time.Now()
		m, err := Decode(buf)
		r.decodeNS += time.Since(t0).Nanoseconds()
		return m, err
	}
	return Decode(buf)
}

// FrameBuffered reports whether a complete frame is already buffered, so
// the next Read is guaranteed not to block. Pipelined servers use it to
// gather a request group: read one frame (blocking), then keep reading
// while FrameBuffered holds.
func (r *Reader) FrameBuffered() bool {
	if r.br.Buffered() < HeaderLen {
		return false
	}
	hdr, err := r.br.Peek(HeaderLen)
	if err != nil {
		return false
	}
	n := int(binary.BigEndian.Uint32(hdr))
	if n > r.max {
		// An oversized prefix is fully "available": Read will fail fast
		// without blocking, and the caller must see that error now rather
		// than leave poison for the next group.
		return true
	}
	return r.br.Buffered() >= HeaderLen+n
}

// Writer encodes frames onto a buffered stream. Frames accumulate in the
// buffer until Flush, which is what turns a batch of replies (or a
// pipelined group of requests) into one large write.
type Writer struct {
	bw  *bufio.Writer
	max int
	buf []byte // reused encode buffer
}

// NewWriter returns a Writer over w with the given frame-size guard
// (0 selects DefaultMaxFrame).
func NewWriter(w io.Writer, maxFrame int) *Writer {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &Writer{bw: bufio.NewWriterSize(w, 64<<10), max: maxFrame}
}

// Write encodes m into the buffer. The bytes reach the stream on Flush
// (or when the buffer fills).
func (w *Writer) Write(m *Msg) error {
	b, err := AppendFrame(w.buf[:0], m, w.max)
	w.buf = b[:0]
	if err != nil {
		return err
	}
	_, err = w.bw.Write(b)
	return err
}

// Flush writes the buffered frames to the underlying stream.
func (w *Writer) Flush() error { return w.bw.Flush() }
