package wire

import (
	"bytes"
	"testing"
)

// FuzzWireDecode throws arbitrary bytes at the frame payload decoder. The
// invariants, in order of importance:
//
//  1. Decode never panics and never over-allocates: every slice it builds
//     is sized from the actual payload length, not the attacker-supplied
//     count (the strict count==body check enforces this).
//  2. Accepted payloads are canonical: re-encoding the decoded message
//     reproduces the input bytes exactly (Encode(Decode(x)) == x), and the
//     re-encoded frame decodes to the same message again.
//
// Runs in the CI fuzz smoke step alongside the WAL/snapshot fuzzers.
func FuzzWireDecode(f *testing.F) {
	for _, m := range canonMsgs() {
		b, err := AppendFrame(nil, &m, 0)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b[HeaderLen:])
	}
	// Hostile seeds: oversized counts, truncations, unknown opcodes.
	f.Add([]byte{})
	f.Add([]byte{0x04, 0xff, 0xff, 0xff, 0xff})             // MGET count 4G, empty body
	f.Add([]byte{0x05, 0x00, 0x00, 0x01, 0x00, 0xaa})       // MSET count 256, 1 byte
	f.Add([]byte{0x85, 0x7f, 0xff, 0xff, 0xff, 0x01, 0x02}) // VALUES huge count
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0x00})

	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > DefaultMaxFrame {
			// The Reader's guard rejects these before Decode ever runs.
			return
		}
		m, err := Decode(payload)
		if err != nil {
			return
		}
		// Over-allocation guard: decoded element storage can never exceed
		// the bytes that backed it.
		if 8*len(m.Keys) > len(payload) || 16*len(m.Recs) > len(payload) ||
			9*len(m.Vals) > len(payload) || len(m.Err) > len(payload) {
			t.Fatalf("decoded slices larger than payload: %d bytes -> %d keys %d recs %d vals",
				len(payload), len(m.Keys), len(m.Recs), len(m.Vals))
		}
		re, err := AppendFrame(nil, &m, 0)
		if err != nil {
			t.Fatalf("accepted payload failed to re-encode: %v (msg %+v)", err, m)
		}
		if !bytes.Equal(re[HeaderLen:], payload) {
			t.Fatalf("Encode(Decode(x)) != x\n  x: %x\n  re: %x", payload, re[HeaderLen:])
		}
		m2, err := Decode(re[HeaderLen:])
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if m2.Op != m.Op {
			t.Fatalf("re-decode changed opcode: %v -> %v", m.Op, m2.Op)
		}
	})
}
