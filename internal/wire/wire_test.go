package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"os"
	"reflect"
	"testing"
	"time"

	"github.com/lix-go/lix/internal/core"
)

// canonMsgs is the table of canonical messages shared by the roundtrip,
// transport and fuzz-seed tests: one of every opcode, plus empty and
// multi-element batch shapes.
func canonMsgs() []Msg {
	return []Msg{
		{Op: OpGet, Key: 42},
		{Op: OpGet, Key: ^core.Key(0)},
		{Op: OpSet, Key: 7, Val: 9000},
		{Op: OpDel, Key: 0},
		{Op: OpMGet, Keys: []core.Key{}},
		{Op: OpMGet, Keys: []core.Key{1, 2, 3, ^core.Key(0)}},
		{Op: OpMSet, Recs: []core.KV{}},
		{Op: OpMSet, Recs: []core.KV{{Key: 1, Value: 10}, {Key: 2, Value: 20}}},
		{Op: OpScan, Lo: 5, Hi: 500, Limit: 128},
		{Op: OpScan, Lo: 0, Hi: ^core.Key(0), Limit: 0},
		{Op: OpPing},
		{Op: RValue, Val: 77},
		{Op: RNil},
		{Op: ROK},
		{Op: RBool, Ok: true},
		{Op: RBool, Ok: false},
		{Op: RValues, Vals: []core.Value{}, Oks: []bool{}},
		{Op: RValues, Vals: []core.Value{5, 0, 6}, Oks: []bool{true, false, true}},
		{Op: RKVs, Recs: []core.KV{}},
		{Op: RKVs, Recs: []core.KV{{Key: 3, Value: 30}}},
		{Op: RKVsPart, Recs: []core.KV{}},
		{Op: RKVsPart, Recs: []core.KV{{Key: 4, Value: 40}, {Key: 5, Value: 50}}},
		{Op: RErr, Err: "no such thing"},
		{Op: RErr, Err: ""},
	}
}

// frame encodes m or fails the test.
func frame(t *testing.T, m Msg) []byte {
	t.Helper()
	b, err := AppendFrame(nil, &m, 0)
	if err != nil {
		t.Fatalf("AppendFrame(%+v): %v", m, err)
	}
	return b
}

func TestCodecRoundtrip(t *testing.T) {
	for _, m := range canonMsgs() {
		b := frame(t, m)
		if got := int(binary.BigEndian.Uint32(b)); got != len(b)-HeaderLen {
			t.Fatalf("%s: header says %d payload bytes, frame has %d", m.Op, got, len(b)-HeaderLen)
		}
		dec, err := Decode(b[HeaderLen:])
		if err != nil {
			t.Fatalf("Decode(%s): %v", m.Op, err)
		}
		re, err := AppendFrame(nil, &dec, 0)
		if err != nil {
			t.Fatalf("re-encode %s: %v", m.Op, err)
		}
		if !bytes.Equal(b, re) {
			t.Fatalf("%s: Encode(Decode(x)) != x\n x: %x\n re: %x", m.Op, b, re)
		}
	}
}

func TestDecodeRejects(t *testing.T) {
	mget2 := frame(t, Msg{Op: OpMGet, Keys: []core.Key{1, 2}})[HeaderLen:]
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"unknown opcode", []byte{0x7f}},
		{"unknown reply opcode", []byte{0xff, 1, 2}},
		{"GET short body", []byte{byte(OpGet), 1, 2, 3}},
		{"GET trailing bytes", append(frame(t, Msg{Op: OpGet, Key: 1})[HeaderLen:], 0)},
		{"PING with body", []byte{byte(OpPing), 0}},
		{"MGET count too large", func() []byte {
			b := append([]byte(nil), mget2...)
			binary.BigEndian.PutUint32(b[1:], 3) // claims 3 keys, carries 2
			return b
		}()},
		{"MGET count too small", func() []byte {
			b := append([]byte(nil), mget2...)
			binary.BigEndian.PutUint32(b[1:], 1)
			return b
		}()},
		{"MGET huge count small body", func() []byte {
			b := append([]byte(nil), mget2...)
			binary.BigEndian.PutUint32(b[1:], 0xffffffff)
			return b
		}()},
		{"MGET truncated count", []byte{byte(OpMGet), 0, 0}},
		{"MSET ragged entry", append(frame(t, Msg{Op: OpMSet, Recs: []core.KV{{Key: 1, Value: 2}}})[HeaderLen:], 9)},
		{"SCAN short", []byte{byte(OpScan), 0, 0, 0}},
		{"BOOL bad byte", []byte{byte(RBool), 2}},
		{"VALUES bad ok byte", func() []byte {
			b := frame(t, Msg{Op: RValues, Vals: []core.Value{1}, Oks: []bool{true}})[HeaderLen:]
			b[5] = 7
			return b
		}()},
	}
	for _, c := range cases {
		if _, err := Decode(c.payload); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: Decode = %v, want ErrMalformed", c.name, err)
		}
	}
}

func TestEncodeRejects(t *testing.T) {
	if _, err := AppendFrame(nil, &Msg{Op: Op(0x55)}, 0); !errors.Is(err, ErrMalformed) {
		t.Errorf("unknown opcode: %v, want ErrMalformed", err)
	}
	if _, err := AppendFrame(nil, &Msg{Op: RValues, Vals: make([]core.Value, 2), Oks: make([]bool, 1)}, 0); !errors.Is(err, ErrMalformed) {
		t.Errorf("ragged RValues: %v, want ErrMalformed", err)
	}
	big := Msg{Op: OpMSet, Recs: make([]core.KV, 100)}
	if _, err := AppendFrame(nil, &big, 64); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized encode: %v, want ErrFrameTooLarge", err)
	}
}

// TestReaderPartialDelivery splits a pipelined two-frame stream at every
// byte boundary and checks the Reader reassembles both frames regardless
// of where the network fragmented them.
func TestReaderPartialDelivery(t *testing.T) {
	m1 := Msg{Op: OpMSet, Recs: []core.KV{{Key: 1, Value: 10}, {Key: 2, Value: 20}}}
	m2 := Msg{Op: OpGet, Key: 99}
	stream := append(frame(t, m1), frame(t, m2)...)
	for cut := 0; cut <= len(stream); cut++ {
		client, server := net.Pipe()
		go func() {
			client.Write(stream[:cut])
			client.Write(stream[cut:])
			client.Close()
		}()
		r := NewReader(server, 0)
		got1, err := r.Read()
		if err != nil {
			t.Fatalf("cut %d: first Read: %v", cut, err)
		}
		got2, err := r.Read()
		if err != nil {
			t.Fatalf("cut %d: second Read: %v", cut, err)
		}
		if !reflect.DeepEqual(got1, m1) || !reflect.DeepEqual(got2, m2) {
			t.Fatalf("cut %d: frames corrupted: %+v / %+v", cut, got1, got2)
		}
		if _, err := r.Read(); err != io.EOF {
			t.Fatalf("cut %d: trailing Read = %v, want EOF", cut, err)
		}
		server.Close()
	}
}

// TestReaderTruncatedStream cuts the stream for good at every boundary:
// every prefix must yield either clean EOF (cut between frames) or an
// unexpected-EOF-ish error, never a decoded frame from half the bytes.
func TestReaderTruncatedStream(t *testing.T) {
	full := frame(t, Msg{Op: OpSet, Key: 5, Val: 50})
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]), 0)
		_, err := r.Read()
		switch {
		case cut == 0 && err != io.EOF:
			t.Fatalf("cut 0: err = %v, want EOF", err)
		case cut > 0 && err == nil:
			t.Fatalf("cut %d: decoded a frame from a truncated stream", cut)
		}
	}
}

// TestReaderDeadlineMidFrame delivers half a frame and lets the read
// deadline expire: the Reader must surface a timeout, not hang and not
// fabricate a frame.
func TestReaderDeadlineMidFrame(t *testing.T) {
	full := frame(t, Msg{Op: OpSet, Key: 5, Val: 50})
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go client.Write(full[:len(full)-3])
	server.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	r := NewReader(server, 0)
	_, err := r.Read()
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("mid-frame deadline: err = %v, want a net timeout", err)
	}
}

// TestReaderMaxFrame checks the size guard fires from the header alone:
// the reader sees only 4 bytes, so a hostile length cannot make it block
// on (or allocate) a giant payload.
func TestReaderMaxFrame(t *testing.T) {
	var hdr [HeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<30)
	r := NewReader(bytes.NewReader(hdr[:]), 4096)
	if _, err := r.Read(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized header: err = %v, want ErrFrameTooLarge", err)
	}

	// Exactly at the limit passes.
	m := Msg{Op: RErr, Err: string(bytes.Repeat([]byte{'x'}, 100))}
	b := frame(t, m)
	r = NewReader(bytes.NewReader(b), 101)
	if got, err := r.Read(); err != nil || got.Err != m.Err {
		t.Fatalf("at-limit frame: %v %v", got, err)
	}
	// One byte over fails.
	r = NewReader(bytes.NewReader(b), 100)
	if _, err := r.Read(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("one-over frame: err = %v, want ErrFrameTooLarge", err)
	}
}

// TestFrameBuffered pins the non-blocking group-drain contract: complete
// already-received frames report true, partial ones false, and an
// oversized buffered header reports true so its error is taken with the
// current group instead of poisoning the next.
func TestFrameBuffered(t *testing.T) {
	f1 := frame(t, Msg{Op: OpGet, Key: 1})
	f2 := frame(t, Msg{Op: OpSet, Key: 2, Val: 3})
	f3 := frame(t, Msg{Op: OpDel, Key: 4})
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	r := NewReader(server, 0)
	if r.FrameBuffered() {
		t.Fatal("empty reader claims a buffered frame")
	}
	// One network delivery carrying frame 1, frame 2 and a sliver of
	// frame 3 — the canonical pipelined-arrival shape.
	go client.Write(append(append(append([]byte{}, f1...), f2...), f3[:5]...))
	if m, err := r.Read(); err != nil || m.Op != OpGet {
		t.Fatalf("first frame: %+v %v", m, err)
	}
	if !r.FrameBuffered() {
		t.Fatal("complete pipelined frame not reported as buffered")
	}
	if m, err := r.Read(); err != nil || m.Op != OpSet || m.Val != 3 {
		t.Fatalf("second frame: %+v %v", m, err)
	}
	// Frame 3 is only partially delivered: must not claim it (a blocking
	// Read inside a group drain would stall every reply behind a slow
	// sender).
	if r.FrameBuffered() {
		t.Fatal("partial frame reported as buffered")
	}
	go client.Write(f3[5:])
	if m, err := r.Read(); err != nil || m.Op != OpDel {
		t.Fatalf("third frame: %+v %v", m, err)
	}

	// An oversized header that is already buffered must report true: Read
	// will fail fast, and the caller needs to see that now.
	var hdr [HeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<30)
	stream := append(append([]byte{}, f1...), hdr[:]...)
	r = NewReader(bytes.NewReader(stream), 4096)
	if m, err := r.Read(); err != nil || m.Op != OpGet {
		t.Fatalf("frame before oversized header: %+v %v", m, err)
	}
	if !r.FrameBuffered() {
		t.Fatal("buffered oversized header not reported")
	}
	if _, err := r.Read(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized header Read = %v, want ErrFrameTooLarge", err)
	}
}

// TestWriterBatchesFlush checks frames accumulate until Flush.
func TestWriterBatchesFlush(t *testing.T) {
	var sink countingWriter
	w := NewWriter(&sink, 0)
	for i := 0; i < 10; i++ {
		if err := w.Write(&Msg{Op: OpGet, Key: core.Key(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if sink.writes != 0 {
		t.Fatalf("frames leaked before Flush: %d writes", sink.writes)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.writes != 1 {
		t.Fatalf("Flush used %d writes, want 1", sink.writes)
	}
	if sink.bytes != 10*(HeaderLen+9) {
		t.Fatalf("flushed %d bytes, want %d", sink.bytes, 10*(HeaderLen+9))
	}
}

type countingWriter struct {
	writes int
	bytes  int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	c.writes++
	c.bytes += len(p)
	return len(p), nil
}

func TestMain(m *testing.M) { os.Exit(m.Run()) }
