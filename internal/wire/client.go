package wire

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/lix-go/lix/internal/core"
)

// ServerError is an RErr reply surfaced as a Go error.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "lixserve: " + e.Msg }

// Client is a lixserve protocol client over one connection. All methods
// are safe for concurrent use, but calls are serialized on the single
// connection: use one Client per goroutine (or a pool) for parallel load,
// and Pipeline to amortize round-trips within one call.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	r       *Reader
	w       *Writer
	timeout time.Duration
}

// Dial connects to a lixserve at addr.
func Dial(addr string) (*Client, error) { return DialTimeout(addr, 0) }

// DialTimeout connects with the given dial timeout, which also becomes
// the per-call I/O deadline (0 = no deadline).
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return NewClient(conn, timeout), nil
}

// NewClient wraps an established connection (the net.Pipe-based tests use
// this directly). timeout is the per-call I/O deadline (0 = none).
func NewClient(conn net.Conn, timeout time.Duration) *Client {
	return &Client{conn: conn, r: NewReader(conn, 0), w: NewWriter(conn, 0), timeout: timeout}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one request and reads its reply.
func (c *Client) Do(req Msg) (Msg, error) {
	reps, err := c.do([]Msg{req}, nil)
	if err != nil {
		return Msg{}, err
	}
	return reps[0], nil
}

// Pipeline writes every request as one pipelined group (a single flush),
// then reads exactly one reply per request, in order. reps reuses the
// caller's slice when it has capacity. An RErr reply is returned in-band
// (callers inspect reply opcodes); transport failures return an error and
// leave the connection unusable.
func (c *Client) Pipeline(reqs []Msg, reps []Msg) ([]Msg, error) {
	return c.do(reqs, reps)
}

func (c *Client) do(reqs []Msg, reps []Msg) ([]Msg, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
	for i := range reqs {
		if err := c.w.Write(&reqs[i]); err != nil {
			return nil, err
		}
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	reps = reps[:0]
	for range reqs {
		m, err := c.readReply()
		if err != nil {
			return nil, err
		}
		reps = append(reps, m)
	}
	return reps, nil
}

// readReply reads one logical reply: a chunked SCAN answer (RKVsPart
// frames closed by a final RKVs) is reassembled into a single RKVs
// message, so Pipeline callers still see one reply per request.
func (c *Client) readReply() (Msg, error) {
	m, err := c.r.Read()
	if err != nil || m.Op != RKVsPart {
		return m, err
	}
	recs := m.Recs
	for {
		m, err = c.r.Read()
		if err != nil {
			return Msg{}, err
		}
		switch m.Op {
		case RKVsPart:
			recs = append(recs, m.Recs...)
		case RKVs:
			m.Recs = append(recs, m.Recs...)
			return m, nil
		default:
			// The stream is desynchronized: a chunk sequence must end in
			// RKVs before any other reply.
			return Msg{}, fmt.Errorf("%w: %s interrupts a chunked %s reply", ErrMalformed, m.Op, RKVs)
		}
	}
}

// expect returns an error unless the reply has one of the wanted opcodes;
// RErr becomes a *ServerError.
func expect(rep Msg, want ...Op) error {
	for _, w := range want {
		if rep.Op == w {
			return nil
		}
	}
	if rep.Op == RErr {
		return &ServerError{Msg: rep.Err}
	}
	return fmt.Errorf("wire: unexpected reply %s", rep.Op)
}

// Get returns the value stored for k.
func (c *Client) Get(k core.Key) (core.Value, bool, error) {
	rep, err := c.Do(Msg{Op: OpGet, Key: k})
	if err != nil {
		return 0, false, err
	}
	if err := expect(rep, RValue, RNil); err != nil {
		return 0, false, err
	}
	return rep.Val, rep.Op == RValue, nil
}

// Set upserts (k, v).
func (c *Client) Set(k core.Key, v core.Value) error {
	rep, err := c.Do(Msg{Op: OpSet, Key: k, Val: v})
	if err != nil {
		return err
	}
	return expect(rep, ROK)
}

// Del removes k, reporting whether it was present.
func (c *Client) Del(k core.Key) (bool, error) {
	rep, err := c.Do(Msg{Op: OpDel, Key: k})
	if err != nil {
		return false, err
	}
	if err := expect(rep, RBool); err != nil {
		return false, err
	}
	return rep.Ok, nil
}

// MGet resolves keys in one request; vals[i], oks[i] answer keys[i].
func (c *Client) MGet(keys []core.Key) ([]core.Value, []bool, error) {
	rep, err := c.Do(Msg{Op: OpMGet, Keys: keys})
	if err != nil {
		return nil, nil, err
	}
	if err := expect(rep, RValues); err != nil {
		return nil, nil, err
	}
	if len(rep.Vals) != len(keys) {
		return nil, nil, fmt.Errorf("wire: MGET of %d keys answered %d values", len(keys), len(rep.Vals))
	}
	return rep.Vals, rep.Oks, nil
}

// MSet upserts recs in one request (later-wins on duplicate keys).
func (c *Client) MSet(recs []core.KV) error {
	rep, err := c.Do(Msg{Op: OpMSet, Recs: recs})
	if err != nil {
		return err
	}
	return expect(rep, ROK)
}

// Scan returns up to limit records with lo <= key <= hi in ascending key
// order (limit 0 = the server's default cap).
func (c *Client) Scan(lo, hi core.Key, limit uint32) ([]core.KV, error) {
	rep, err := c.Do(Msg{Op: OpScan, Lo: lo, Hi: hi, Limit: limit})
	if err != nil {
		return nil, err
	}
	if err := expect(rep, RKVs); err != nil {
		return nil, err
	}
	if rep.Recs == nil {
		rep.Recs = []core.KV{}
	}
	return rep.Recs, nil
}

// Ping round-trips an empty frame.
func (c *Client) Ping() error {
	rep, err := c.Do(Msg{Op: OpPing})
	if err != nil {
		return err
	}
	return expect(rep, ROK)
}
