package wire

import (
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"github.com/lix-go/lix/internal/core"
)

// scriptedServer answers every frame read from conn with the scripted
// reply sequence, then flushes. It lets the client tests exercise chunked
// replies over net.Pipe without a real server.
func scriptedServer(t *testing.T, conn net.Conn, replies ...Msg) {
	t.Helper()
	go func() {
		r := NewReader(conn, 0)
		w := NewWriter(conn, 0)
		if _, err := r.Read(); err != nil {
			return
		}
		for i := range replies {
			if err := w.Write(&replies[i]); err != nil {
				return
			}
		}
		w.Flush()
	}()
}

// TestClientChunkedScanReassembly pins the client half of the chunked
// SCAN contract: RKVsPart frames followed by a final RKVs come back from
// Scan as one ordered record slice, exactly as if the server had sent a
// single frame.
func TestClientChunkedScanReassembly(t *testing.T) {
	recs := make([]core.KV, 25)
	for i := range recs {
		recs[i] = core.KV{Key: core.Key(i + 1), Value: core.Value(100 + i)}
	}
	cases := []struct {
		name    string
		replies []Msg
		want    []core.KV
	}{
		{"single frame", []Msg{{Op: RKVs, Recs: recs[:10]}}, recs[:10]},
		{"two chunks", []Msg{
			{Op: RKVsPart, Recs: recs[:10]},
			{Op: RKVs, Recs: recs[10:20]},
		}, recs[:20]},
		{"three chunks ragged tail", []Msg{
			{Op: RKVsPart, Recs: recs[:10]},
			{Op: RKVsPart, Recs: recs[10:20]},
			{Op: RKVs, Recs: recs[20:]},
		}, recs},
		{"empty final frame", []Msg{
			{Op: RKVsPart, Recs: recs[:10]},
			{Op: RKVs, Recs: []core.KV{}},
		}, recs[:10]},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cli, srv := net.Pipe()
			defer cli.Close()
			defer srv.Close()
			scriptedServer(t, srv, c.replies...)
			got, err := NewClient(cli, time.Second).Scan(0, ^core.Key(0), 0)
			if err != nil {
				t.Fatalf("Scan: %v", err)
			}
			if !reflect.DeepEqual(got, c.want) {
				t.Fatalf("Scan reassembled %d recs %v, want %d", len(got), got, len(c.want))
			}
		})
	}
}

// TestClientChunkedScanDesync checks a chunk sequence interrupted by any
// other reply opcode surfaces ErrMalformed: the stream is unrecoverably
// out of sync and must not be misread as two replies.
func TestClientChunkedScanDesync(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	scriptedServer(t, srv,
		Msg{Op: RKVsPart, Recs: []core.KV{{Key: 1, Value: 10}}},
		Msg{Op: ROK},
	)
	_, err := NewClient(cli, time.Second).Scan(0, ^core.Key(0), 0)
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("interrupted chunk sequence: err = %v, want ErrMalformed", err)
	}
}
