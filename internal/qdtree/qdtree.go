// Package qdtree implements the Qd-tree (Yang et al., "Qd-tree: Learning
// Data Layouts for Big Data Analytics", SIGMOD 2020) with the paper's
// greedy cut construction: a binary partition tree over the native space
// whose cuts are chosen from the *workload's* query boundaries to minimize
// the number of records scanned by the sample queries. Leaves are data
// blocks; a query scans exactly the blocks it intersects, so the metric
// that matters is records-scanned (block skipping).
//
// Taxonomy: immutable / hybrid (tree-based) / native space, with a
// learned (workload-driven) data layout.
package qdtree

import (
	"fmt"
	"math"
	"sort"

	"github.com/lix-go/lix/internal/core"
)

// DefaultMinBlock is the default minimum records per block.
const DefaultMinBlock = 256

// Config parameterizes a build.
type Config struct {
	// MinBlock is the smallest block worth splitting (0 -> 256).
	MinBlock int
	// MaxDepth bounds the tree depth (0 -> 24).
	MaxDepth int
}

type node struct {
	// Leaf payload.
	pts []core.PV
	// Interior cut: left gets p[dim] < val, right the rest.
	dim         int
	val         float64
	left, right *node
}

// Index is an immutable Qd-tree.
type Index struct {
	cfg    Config
	dim    int
	root   *node
	n      int
	blocks int
}

// Build constructs a Qd-tree over the points, choosing cuts greedily to
// minimize the records scanned by the sample workload.
func Build(pvs []core.PV, queries []core.Rect, cfg Config) (*Index, error) {
	if len(pvs) == 0 {
		return nil, fmt.Errorf("qdtree: empty input")
	}
	dim := pvs[0].Point.Dim()
	for i := range pvs {
		if pvs[i].Point.Dim() != dim {
			return nil, fmt.Errorf("qdtree: point %d dim %d, want %d", i, pvs[i].Point.Dim(), dim)
		}
	}
	for qi := range queries {
		if queries[qi].Dim() != dim {
			return nil, fmt.Errorf("qdtree: query %d dim %d, want %d", qi, queries[qi].Dim(), dim)
		}
	}
	if cfg.MinBlock <= 0 {
		cfg.MinBlock = DefaultMinBlock
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 24
	}
	ix := &Index{cfg: cfg, dim: dim, n: len(pvs)}
	pts := append([]core.PV(nil), pvs...)
	ix.root = ix.build(pts, queries, 0)
	return ix, nil
}

// build recursively chooses the best workload cut for the point set.
func (ix *Index) build(pts []core.PV, queries []core.Rect, depth int) *node {
	if len(pts) <= ix.cfg.MinBlock || depth >= ix.cfg.MaxDepth || len(queries) == 0 {
		ix.blocks++
		return &node{pts: pts}
	}
	// Current cost: every intersecting query scans the whole block.
	nPts := float64(len(pts))
	baseCost := nPts * float64(len(queries))
	bestCost := baseCost
	bestDim, bestVal := -1, 0.0
	// Candidate cuts: query boundary values per dimension.
	sorted := make([]float64, len(pts))
	for d := 0; d < ix.dim; d++ {
		for i, pv := range pts {
			sorted[i] = pv.Point[d]
		}
		sort.Float64s(sorted)
		lo, hi := sorted[0], sorted[len(sorted)-1]
		var cands []float64
		for _, q := range queries {
			// Left side is strictly-below, so a cut at q.Min puts the
			// query's records on the right; a cut just above q.Max puts
			// them on the left.
			if q.Min[d] > lo && q.Min[d] <= hi {
				cands = append(cands, q.Min[d])
			}
			if v := math.Nextafter(q.Max[d], math.Inf(1)); v > lo && v <= hi {
				cands = append(cands, v)
			}
		}
		for _, v := range cands {
			nLeft := float64(sort.SearchFloat64s(sorted, v))
			nRight := nPts - nLeft
			if nLeft == 0 || nRight == 0 {
				continue
			}
			var cost float64
			for _, q := range queries {
				if q.Min[d] < v {
					cost += nLeft
				}
				if q.Max[d] >= v {
					cost += nRight
				}
			}
			if cost < bestCost {
				bestCost, bestDim, bestVal = cost, d, v
			}
		}
	}
	if bestDim < 0 {
		ix.blocks++
		return &node{pts: pts}
	}
	var leftPts, rightPts []core.PV
	for _, pv := range pts {
		if pv.Point[bestDim] < bestVal {
			leftPts = append(leftPts, pv)
		} else {
			rightPts = append(rightPts, pv)
		}
	}
	var leftQ, rightQ []core.Rect
	for _, q := range queries {
		if q.Min[bestDim] < bestVal {
			leftQ = append(leftQ, q)
		}
		if q.Max[bestDim] >= bestVal {
			rightQ = append(rightQ, q)
		}
	}
	return &node{
		dim:   bestDim,
		val:   bestVal,
		left:  ix.build(leftPts, leftQ, depth+1),
		right: ix.build(rightPts, rightQ, depth+1),
	}
}

// Len returns the number of points.
func (ix *Index) Len() int { return ix.n }

// Blocks returns the number of leaf blocks.
func (ix *Index) Blocks() int { return ix.blocks }

// Search calls fn for every point in rect; fn returning false stops.
// Returns points visited, blocks touched, and records scanned (the
// block-skipping metric).
func (ix *Index) Search(rect core.Rect, fn func(core.PV) bool) (visited, blocks, scanned int) {
	if rect.Dim() != ix.dim {
		return 0, 0, 0
	}
	stop := false
	var rec func(nd *node)
	rec = func(nd *node) {
		if stop {
			return
		}
		if nd.left == nil {
			blocks++
			scanned += len(nd.pts)
			for _, pv := range nd.pts {
				if rect.Contains(pv.Point) {
					visited++
					if !fn(pv) {
						stop = true
						return
					}
				}
			}
			return
		}
		if rect.Min[nd.dim] < nd.val {
			rec(nd.left)
		}
		if rect.Max[nd.dim] >= nd.val {
			rec(nd.right)
		}
	}
	rec(ix.root)
	return visited, blocks, scanned
}

// Lookup returns the value of the point equal to p.
func (ix *Index) Lookup(p core.Point) (core.Value, bool) {
	if p.Dim() != ix.dim {
		return 0, false
	}
	nd := ix.root
	for nd.left != nil {
		if p[nd.dim] < nd.val {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	for _, pv := range nd.pts {
		if pv.Point.Equal(p) {
			return pv.Value, true
		}
	}
	return 0, false
}

// Height returns the tree height.
func (ix *Index) Height() int {
	var rec func(nd *node) int
	rec = func(nd *node) int {
		if nd.left == nil {
			return 1
		}
		l, r := rec(nd.left), rec(nd.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return rec(ix.root)
}

// Stats reports structure statistics.
func (ix *Index) Stats() core.Stats {
	return core.Stats{
		Name:       "qdtree",
		Count:      ix.n,
		IndexBytes: (2*ix.blocks - 1) * 48,
		DataBytes:  ix.n * (8*ix.dim + 8),
		Height:     ix.Height(),
		Models:     2*ix.blocks - 1,
	}
}
