package qdtree

import (
	"testing"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

func bruteCount(pvs []core.PV, rect core.Rect) int {
	n := 0
	for _, pv := range pvs {
		if rect.Contains(pv.Point) {
			n++
		}
	}
	return n
}

func TestSearchMatchesBrute(t *testing.T) {
	for _, kind := range dataset.SpatialKinds() {
		pts, _ := dataset.Points(kind, 6000, 2, 1401)
		pvs := dataset.PV(pts)
		queries := dataset.RectQueries(pts, 30, 0.005, 1402)
		ix, err := Build(pvs, queries, Config{MinBlock: 128})
		if err != nil {
			t.Fatal(err)
		}
		// Both training and fresh queries must be exact.
		fresh := dataset.RectQueries(pts, 20, 0.01, 1403)
		for qi, q := range append(queries, fresh...) {
			want := bruteCount(pvs, q)
			got, blocks, scanned := ix.Search(q, func(core.PV) bool { return true })
			if got != want {
				t.Fatalf("%s q%d: got %d, want %d", kind, qi, got, want)
			}
			if blocks <= 0 || scanned < got {
				t.Fatalf("%s q%d: blocks=%d scanned=%d", kind, qi, blocks, scanned)
			}
		}
	}
}

func TestWorkloadLayoutSkipsBlocks(t *testing.T) {
	// Workload-aware layout should scan far fewer records than one block.
	pts, _ := dataset.Points(dataset.SOSMLike, 20000, 2, 1404)
	pvs := dataset.PV(pts)
	queries := dataset.RectQueries(pts, 50, 0.001, 1405)
	ix, err := Build(pvs, queries, Config{MinBlock: 512})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Blocks() < 4 {
		t.Fatalf("only %d blocks", ix.Blocks())
	}
	var scannedTotal int
	for _, q := range queries {
		_, _, scanned := ix.Search(q, func(core.PV) bool { return true })
		scannedTotal += scanned
	}
	fullScan := len(queries) * len(pvs)
	if scannedTotal*4 > fullScan {
		t.Fatalf("layout skipped too little: scanned %d of %d", scannedTotal, fullScan)
	}
}

func TestLookup(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 3000, 3, 1406)
	pvs := dataset.PV(pts)
	queries := dataset.RectQueries(pts, 20, 0.01, 1407)
	ix, _ := Build(pvs, queries, Config{})
	for i, pv := range pvs {
		v, ok := ix.Lookup(pv.Point)
		if !ok {
			t.Fatalf("Lookup miss at %d", i)
		}
		if !pvs[v].Point.Equal(pv.Point) {
			t.Fatal("wrong value")
		}
	}
	if _, ok := ix.Lookup(core.Point{-1, -1, -1}); ok {
		t.Fatal("phantom")
	}
}

func TestNoQueriesSingleBlock(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 2000, 2, 1408)
	ix, err := Build(dataset.PV(pts), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Blocks() != 1 {
		t.Fatalf("blocks = %d without workload", ix.Blocks())
	}
	rect, _ := core.NewRect(core.Point{0, 0}, core.Point{dataset.Extent, dataset.Extent})
	n, _, _ := ix.Search(rect, func(core.PV) bool { return true })
	if n != 2000 {
		t.Fatalf("full scan = %d", n)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Build(nil, nil, Config{}); err == nil {
		t.Fatal("empty accepted")
	}
	pts, _ := dataset.Points(dataset.SUniform, 100, 2, 1)
	pvs := dataset.PV(pts)
	if _, err := Build([]core.PV{{Point: core.Point{1}}, {Point: core.Point{1, 2}}}, nil, Config{}); err == nil {
		t.Fatal("mixed dims accepted")
	}
	badQ := []core.Rect{{Min: core.Point{0}, Max: core.Point{1}}}
	if _, err := Build(pvs, badQ, Config{}); err == nil {
		t.Fatal("mismatched query dim accepted")
	}
}

func TestStatsAndEarlyStop(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 5000, 2, 1409)
	queries := dataset.RectQueries(pts, 30, 0.005, 1410)
	ix, _ := Build(dataset.PV(pts), queries, Config{MinBlock: 256})
	st := ix.Stats()
	if st.Count != 5000 || st.Models < 1 || st.Height < 2 {
		t.Fatalf("stats = %+v", st)
	}
	all, _ := core.NewRect(core.Point{0, 0}, core.Point{dataset.Extent, dataset.Extent})
	count := 0
	ix.Search(all, func(core.PV) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop = %d", count)
	}
}
