package bench

import (
	"strings"
	"testing"

	lix "github.com/lix-go/lix"
)

// TestRunDurableSmoke runs the durability benchmark at a tiny scale and
// checks the shape of the emitted table and regression results.
func TestRunDurableSmoke(t *testing.T) {
	cfg := DurableBenchConfig{
		N: 2000, Ops: 1000, Workers: 2, Shards: 2, Seed: 3,
		// Skip FsyncAlways in unit tests: per-op fsync latency is disk
		// dependent and slow on CI filesystems.
		Policies: []lix.SyncPolicy{lix.FsyncNever, lix.FsyncInterval},
	}
	tables, results, err := RunDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].ID != "DUR" {
		t.Fatalf("tables %v", tables)
	}
	if len(results) != 2*len(cfg.Policies) {
		t.Fatalf("results %d, want %d", len(results), 2*len(cfg.Policies))
	}
	for _, r := range results {
		if !strings.HasPrefix(r.Name, "durable/insert/") && !strings.HasPrefix(r.Name, "durable/recover/") {
			t.Fatalf("unexpected result name %q", r.Name)
		}
		if r.OpsPerSec <= 0 {
			t.Fatalf("%s measured %g ops/s", r.Name, r.OpsPerSec)
		}
	}
	// Results feed the same BENCH_<rev>.json comparison harness.
	old := BenchFile{Rev: "a", Results: results}
	regs, _ := CompareBenchFiles(old, BenchFile{Rev: "b", Results: results}, 0.15)
	if len(regs) != 0 {
		t.Fatalf("identical files flagged regressions: %v", regs)
	}
}
