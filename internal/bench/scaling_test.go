package bench

import (
	"os"
	"runtime"
	"strconv"
	"testing"

	"github.com/lix-go/lix/internal/dataset"
)

// TestShardedScaling is the multicore scaling smoke test: sharded-rw(8)
// must beat the single btree+mutex baseline on a 50/50 mixed workload at
// 8 workers by a configurable factor. The sharding design only pays off
// when workers actually run in parallel, so the test is skipped with
// -short and on hosts with fewer than 4 CPUs (where the two systems
// rightly converge and any ratio is noise, not signal).
//
// The factor defaults to 3 — the tentpole target — and is overridable
// through LIX_SCALING_MIN_RATIO so CI runners with fewer or noisier
// cores can gate on a trend-preserving floor instead of flaking.
func TestShardedScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling needs sustained multicore runs; skipped with -short")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("scaling needs >= 4 CPUs, have %d", runtime.NumCPU())
	}
	minRatio := 3.0
	if env := os.Getenv("LIX_SCALING_MIN_RATIO"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil || v <= 0 {
			t.Fatalf("LIX_SCALING_MIN_RATIO=%q: want a positive number", env)
		}
		minRatio = v
	}

	cfg := ServingConfig{N: 200_000, OpsPerWorker: 100_000, Workers: 8, Shards: 8, Seed: 1}
	keys := mustKeys(dataset.Uniform, cfg.N, cfg.Seed)
	recs := dataset.KV(keys)
	systems := servingSystems(cfg)

	// systems[0] is btree+mutex, systems[1] is sharded-rw; measure each
	// three times on a fresh instance and keep the best, so one unlucky
	// scheduling window cannot fail the gate.
	measure := func(sys servingSystem) float64 {
		best := 0.0
		for trial := 0; trial < 3; trial++ {
			get, put, err := sys.build(recs)
			if err != nil {
				t.Fatalf("build %s: %v", sys.name, err)
			}
			if mops := runMixed(keys, cfg, 0.50, get, put); mops > best {
				best = mops
			}
		}
		return best
	}
	baseline := measure(systems[0])
	sharded := measure(systems[1])

	ratio := sharded / baseline
	t.Logf("50/50 @ %d workers: %s %.2f Mops/s, %s %.2f Mops/s, ratio %.2f (floor %.2f)",
		cfg.Workers, systems[0].name, baseline, systems[1].name, sharded, ratio, minRatio)
	if ratio < minRatio {
		t.Errorf("%s is %.2fx %s at %d workers, want >= %.2fx",
			systems[1].name, ratio, systems[0].name, cfg.Workers, minRatio)
	}
}
