// Package bench is the experiment harness behind the lixbench CLI and the
// repository's top-level benchmarks: it generates workloads, drives every
// index through the experiment suite E4–E19 defined in DESIGN.md, and
// renders the result tables recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment result table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, formatting every cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

// Render writes an aligned text rendering of the table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}
