package bench

import (
	lix "github.com/lix-go/lix"
	"testing"
)

// TestRunLSMSmoke runs the storage-engine benchmark at a tiny scale and
// checks the contract the CI gate depends on: six results across the two
// engines, the absent-key filter probe passing (RunLSM errors if filters
// skip under 90%), and the LSM checkpoint result carrying the blocking
// >= 2x floor against the snapshot engine's checkpoint rate.
func TestRunLSMSmoke(t *testing.T) {
	cfg := LSMConfig{N: 20_000, Writes: 6_000, Checkpoints: 3, Reads: 8_000, Seed: 3}
	tables, results, err := RunLSM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 2 {
		t.Fatalf("want 1 table with 2 rows, got %+v", tables)
	}
	if len(results) != 6 {
		t.Fatalf("want 6 results, got %d", len(results))
	}
	byName := make(map[string]BenchResult, len(results))
	for _, r := range results {
		if r.OpsPerSec <= 0 {
			t.Errorf("%s: non-positive throughput %v", r.Name, r.OpsPerSec)
		}
		byName[r.Name] = r
	}
	for _, engine := range []string{lix.EngineSnapshot, lix.EngineLSM} {
		for _, phase := range []string{"write", "checkpoint", "recover"} {
			if _, ok := byName[LSMResultName(phase, engine)]; !ok {
				t.Fatalf("missing result %s", LSMResultName(phase, engine))
			}
		}
	}
	ckpt := byName[LSMResultName("checkpoint", lix.EngineLSM)]
	if want := LSMResultName("checkpoint", lix.EngineSnapshot); ckpt.MinRatioOf != want || ckpt.MinRatio != 2 {
		t.Errorf("LSM checkpoint gate = (%q, %v), want (%q, 2)", ckpt.MinRatioOf, ckpt.MinRatio, want)
	}
}
