package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	lix "github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/btree"
	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
	"github.com/lix-go/lix/internal/flood"
	"github.com/lix-go/lix/internal/lsm"
	"github.com/lix-go/lix/internal/pgm"
	"github.com/lix-go/lix/internal/qdtree"
	"github.com/lix-go/lix/internal/rmi"
	"github.com/lix-go/lix/internal/zm"
)

// Config controls experiment scale.
type Config struct {
	// N is the dataset size (records or points).
	N int
	// Q is the number of queries per measurement.
	Q int
	// Seed drives all generators.
	Seed int64
}

// DefaultConfig is the scale used for EXPERIMENTS.md.
func DefaultConfig() Config { return Config{N: 400000, Q: 50000, Seed: 7} }

// QuickConfig is a small scale for tests.
func QuickConfig() Config { return Config{N: 20000, Q: 4000, Seed: 7} }

// IDs lists the runnable experiments.
func IDs() []string {
	return []string{"E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19"}
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) ([]*Table, error) {
	switch id {
	case "E4":
		return E4Lookup1D(cfg), nil
	case "E5":
		return E5Build1D(cfg), nil
	case "E6":
		return E6Insert1D(cfg), nil
	case "E7":
		return E7Range1D(cfg), nil
	case "E8":
		return E8ModelChoice(cfg), nil
	case "E9":
		return E9LearnedBloom(cfg), nil
	case "E10":
		return E10PointMD(cfg), nil
	case "E11":
		return E11RangeMD(cfg), nil
	case "E12":
		return E12KNN(cfg), nil
	case "E13":
		return E13InsertMD(cfg), nil
	case "E14":
		return E14Concurrent(cfg), nil
	case "E15":
		return E15Adversarial(cfg), nil
	case "E16":
		return E16Layout(cfg), nil
	case "E17":
		return E17SFC(cfg), nil
	case "E18":
		return E18LearnedLSM(cfg), nil
	case "E19":
		return E19DimSweep(cfg), nil
	default:
		return nil, fmt.Errorf("bench: unknown experiment %q", id)
	}
}

// randSrc aliases the generator type used across experiments.
type randSrc = rand.Rand

// newRand returns a deterministic generator.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// nsPerOp times fn over n operations.
func nsPerOp(n int, fn func()) float64 {
	start := time.Now()
	fn()
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

func mustKeys(kind dataset.Kind, n int, seed int64) []core.Key {
	keys, err := dataset.Keys(kind, n, seed)
	if err != nil {
		panic(err)
	}
	return keys
}

func mustPoints(kind dataset.SpatialKind, n, dim int, seed int64) []core.Point {
	pts, err := dataset.Points(kind, n, dim, seed)
	if err != nil {
		panic(err)
	}
	return pts
}

var bench1DKinds = []dataset.Kind{dataset.Uniform, dataset.Lognormal, dataset.Clustered}

// E4Lookup1D — learned vs traditional 1-D lookup latency and index size.
func E4Lookup1D(cfg Config) []*Table {
	t := &Table{
		ID:      "E4",
		Title:   "1-D point lookup: latency and index size (learned vs traditional)",
		Columns: []string{"dataset", "index", "ns/lookup", "index_KiB", "data_KiB", "models", "height"},
	}
	for _, kind := range bench1DKinds {
		keys := mustKeys(kind, cfg.N, cfg.Seed)
		recs := dataset.KV(keys)
		probes := dataset.LookupMix(keys, cfg.Q, 0.9, cfg.Seed+1)
		for _, name := range lix.Static1DKinds() {
			ix, err := lix.Build1D(name, recs)
			if err != nil {
				panic(err)
			}
			var sink core.Value
			ns := nsPerOp(len(probes), func() {
				for _, p := range probes {
					v, _ := ix.Get(p)
					sink += v
				}
			})
			_ = sink
			st := ix.Stats()
			t.AddRow(string(kind), name, ns, st.IndexBytes/1024, st.DataBytes/1024, st.Models, st.Height)
		}
	}
	return []*Table{t}
}

// E5Build1D — construction time.
func E5Build1D(cfg Config) []*Table {
	t := &Table{
		ID:      "E5",
		Title:   "1-D index construction time",
		Columns: []string{"dataset", "index", "build_ms", "MiB"},
	}
	for _, kind := range bench1DKinds {
		keys := mustKeys(kind, cfg.N, cfg.Seed)
		recs := dataset.KV(keys)
		for _, name := range lix.Static1DKinds() {
			start := time.Now()
			ix, err := lix.Build1D(name, recs)
			if err != nil {
				panic(err)
			}
			ms := float64(time.Since(start).Microseconds()) / 1000
			st := ix.Stats()
			t.AddRow(string(kind), name, ms, float64(st.IndexBytes+st.DataBytes)/(1<<20))
		}
	}
	return []*Table{t}
}

// E6Insert1D — in-place vs delta-buffer updatable indexes.
func E6Insert1D(cfg Config) []*Table {
	t := &Table{
		ID:      "E6",
		Title:   "1-D updatable indexes: insert-only and mixed workloads (Mops/s)",
		Columns: []string{"index", "insert_only", "read95_write5", "read50_write50"},
	}
	keys := mustKeys(dataset.Lognormal, cfg.N, cfg.Seed)
	r := newRand(cfg.Seed + 2)
	perm := r.Perm(len(keys))
	for _, name := range lix.Mutable1DKinds() {
		// Insert-only, random order.
		ix, err := lix.BuildMutable1D(name)
		if err != nil {
			panic(err)
		}
		insNs := nsPerOp(len(perm), func() {
			for _, i := range perm {
				ix.Insert(keys[i], core.Value(i))
			}
		})
		mixed := func(readFrac float64) float64 {
			ix2, _ := lix.BuildMutable1D(name)
			// Preload half.
			for _, i := range perm[:len(perm)/2] {
				ix2.Insert(keys[i], core.Value(i))
			}
			rr := newRand(cfg.Seed + 3)
			next := len(perm) / 2
			ops := cfg.Q
			return nsPerOp(ops, func() {
				for o := 0; o < ops; o++ {
					if rr.Float64() < readFrac {
						ix2.Get(keys[rr.Intn(len(keys))])
					} else {
						i := perm[next%len(perm)]
						next++
						ix2.Insert(keys[i], core.Value(i))
					}
				}
			})
		}
		r95 := mixed(0.95)
		r50 := mixed(0.50)
		t.AddRow(name, 1000/insNs, 1000/r95, 1000/r50)
	}
	return []*Table{t}
}

// E7Range1D — range scans across selectivities.
func E7Range1D(cfg Config) []*Table {
	t := &Table{
		ID:      "E7",
		Title:   "1-D range queries: microseconds per query by selectivity",
		Columns: []string{"index", "sel=1e-5", "sel=1e-4", "sel=1e-3", "sel=1e-2"},
	}
	keys := mustKeys(dataset.Clustered, cfg.N, cfg.Seed)
	recs := dataset.KV(keys)
	sels := []float64{1e-5, 1e-4, 1e-3, 1e-2}
	for _, name := range lix.Static1DKinds() {
		ix, err := lix.Build1D(name, recs)
		if err != nil {
			panic(err)
		}
		row := []interface{}{name}
		for _, sel := range sels {
			qs := dataset.Ranges(keys, 200, sel, cfg.Seed+4)
			var sink int
			ns := nsPerOp(len(qs), func() {
				for _, q := range qs {
					sink += ix.Range(q.Lo, q.Hi, func(core.Key, core.Value) bool { return true })
				}
			})
			_ = sink
			row = append(row, ns/1000)
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

// E8ModelChoice — PGM ε sweep and RMI fanout sweep (§6.2: choice of model).
func E8ModelChoice(cfg Config) []*Table {
	keys := mustKeys(dataset.Lognormal, cfg.N, cfg.Seed)
	recs := dataset.KV(keys)
	probes := dataset.LookupMix(keys, cfg.Q, 1.0, cfg.Seed+5)

	pgmT := &Table{
		ID:      "E8a",
		Title:   "PGM ε sweep: model size vs lookup latency",
		Columns: []string{"epsilon", "segments", "levels", "model_KiB", "ns/lookup"},
	}
	for _, eps := range []int{8, 16, 32, 64, 128, 256, 512} {
		ix, err := pgm.Build(recs, eps)
		if err != nil {
			panic(err)
		}
		var sink core.Value
		ns := nsPerOp(len(probes), func() {
			for _, p := range probes {
				v, _ := ix.Get(p)
				sink += v
			}
		})
		_ = sink
		pgmT.AddRow(eps, ix.SegmentCount(), ix.Levels(), ix.ModelBytes()/1024, ns)
	}

	rmiT := &Table{
		ID:      "E8b",
		Title:   "RMI stage-2 fanout sweep: window vs latency",
		Columns: []string{"stage2", "avg_window", "max_err", "index_KiB", "ns/lookup"},
	}
	for _, fanout := range []int{64, 256, 1024, 4096, 16384} {
		ix, err := rmi.Build(recs, rmi.Config{Stage2: fanout})
		if err != nil {
			panic(err)
		}
		var sink core.Value
		ns := nsPerOp(len(probes), func() {
			for _, p := range probes {
				v, _ := ix.Get(p)
				sink += v
			}
		})
		_ = sink
		rmiT.AddRow(fanout, ix.AvgWindow(), ix.MaxAbsError(), ix.Stats().IndexBytes/1024, ns)
	}
	return []*Table{pgmT, rmiT}
}

// E9LearnedBloom — learned Bloom filter FPR vs space (§6.6).
func E9LearnedBloom(cfg Config) []*Table {
	t := &Table{
		ID:      "E9",
		Title:   "Membership filters: observed FPR by bits/key (learnable key set)",
		Columns: []string{"filter", "6 bits/key", "8 bits/key", "10 bits/key", "14 bits/key"},
	}
	n := cfg.N / 4
	keys, trainNegs, testNegs := learnableFilterSet(n, cfg.Seed)
	build := map[string]func(bits uint64) lix.MembershipFilter{
		"bloom": func(bits uint64) lix.MembershipFilter {
			f := lix.NewBloomFilterBits(bits, len(keys))
			for _, k := range keys {
				f.Add(k)
			}
			return f
		},
		"learned": func(bits uint64) lix.MembershipFilter {
			f, err := lix.TrainLearnedBF(keys, trainNegs, bits)
			if err != nil {
				panic(err)
			}
			return f
		},
		"sandwiched": func(bits uint64) lix.MembershipFilter {
			f, err := lix.TrainSandwichedBF(keys, trainNegs, bits)
			if err != nil {
				panic(err)
			}
			return f
		},
		"partitioned": func(bits uint64) lix.MembershipFilter {
			f, err := lix.TrainPartitionedBF(keys, trainNegs, bits, 0)
			if err != nil {
				panic(err)
			}
			return f
		},
	}
	for _, name := range []string{"bloom", "learned", "sandwiched", "partitioned"} {
		row := []interface{}{name}
		for _, bpk := range []int{6, 8, 10, 14} {
			f := build[name](uint64(bpk * len(keys)))
			row = append(row, lix.MeasureFPR(f, testNegs))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

// learnableFilterSet mirrors the structured key sets used in the learned
// Bloom filter papers: keys live in a dense band, negatives outside it.
func learnableFilterSet(n int, seed int64) (keys, trainNeg, testNeg []core.Key) {
	r := newRand(seed)
	seen := map[core.Key]bool{}
	for len(keys) < n {
		k := core.Key(1<<40 + r.Int63n(1<<30))
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	gen := func(m int, rr *randSrc) []core.Key {
		var out []core.Key
		for len(out) < m {
			var k core.Key
			if rr.Intn(2) == 0 {
				k = core.Key(rr.Int63n(1 << 40))
			} else {
				k = core.Key(1<<41 + rr.Int63n(1<<45))
			}
			if !seen[k] {
				out = append(out, k)
			}
		}
		return out
	}
	return keys, gen(n, newRand(seed+1)), gen(n, newRand(seed+2))
}

var benchSpatialKinds = []dataset.SpatialKind{dataset.SUniform, dataset.SOSMLike, dataset.SSkewed}

// E10PointMD — multi-dimensional exact-point queries.
func E10PointMD(cfg Config) []*Table {
	t := &Table{
		ID:      "E10",
		Title:   "Multi-dimensional exact-point queries (2-D): ns/query",
		Columns: []string{"dataset", "index", "ns/lookup", "index_KiB"},
	}
	n := cfg.N / 2
	for _, kind := range benchSpatialKinds {
		pts := mustPoints(kind, n, 2, cfg.Seed)
		pvs := dataset.PV(pts)
		queries := dataset.KNNQueries(pts, cfg.Q/10, cfg.Seed+6)
		for _, name := range lix.SpatialKinds() {
			ix, err := lix.BuildSpatial(name, pvs)
			if err != nil {
				panic(err)
			}
			// Half the probes are existing points (hits), half perturbed.
			var sink int
			ns := nsPerOp(len(queries)+len(pvs)/10, func() {
				for i := 0; i < len(pvs); i += 10 {
					if _, ok := ix.Lookup(pvs[i].Point); ok {
						sink++
					}
				}
				for _, q := range queries {
					if _, ok := ix.Lookup(q); ok {
						sink++
					}
				}
			})
			_ = sink
			t.AddRow(string(kind), name, ns, ix.Stats().IndexBytes/1024)
		}
	}
	return []*Table{t}
}

// E11RangeMD — multi-dimensional range queries across selectivities.
func E11RangeMD(cfg Config) []*Table {
	t := &Table{
		ID:      "E11",
		Title:   "Multi-dimensional range queries (2-D, osm-like): µs/query (work units)",
		Columns: []string{"index", "sel=1e-4", "sel=1e-3", "sel=1e-2", "sel=1e-1"},
	}
	n := cfg.N / 2
	pts := mustPoints(dataset.SOSMLike, n, 2, cfg.Seed)
	pvs := dataset.PV(pts)
	for _, name := range lix.SpatialKinds() {
		ix, err := lix.BuildSpatial(name, pvs)
		if err != nil {
			panic(err)
		}
		row := []interface{}{name}
		for _, sel := range []float64{1e-4, 1e-3, 1e-2, 1e-1} {
			qs := dataset.RectQueries(pts, 100, sel, cfg.Seed+7)
			var visited, work int
			ns := nsPerOp(len(qs), func() {
				for _, q := range qs {
					v, w := ix.Search(q, func(core.PV) bool { return true })
					visited += v
					work += w
				}
			})
			row = append(row, fmt.Sprintf("%s (%d)", formatFloat(ns/1000), work/len(qs)))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

// E12KNN — k-nearest-neighbor queries.
func E12KNN(cfg Config) []*Table {
	t := &Table{
		ID:      "E12",
		Title:   "k-nearest-neighbor queries (2-D, osm-like): µs/query",
		Columns: []string{"index", "k=1", "k=10", "k=100"},
	}
	n := cfg.N / 2
	pts := mustPoints(dataset.SOSMLike, n, 2, cfg.Seed)
	pvs := dataset.PV(pts)
	queries := dataset.KNNQueries(pts, 200, cfg.Seed+8)
	for _, name := range []string{"rtree", "kdtree", "quadtree", "grid", "zm", "mlindex", "lisa"} {
		ixAny, err := lix.BuildSpatial(name, pvs)
		if err != nil {
			panic(err)
		}
		ix := ixAny.(lix.KNNIndex)
		row := []interface{}{name}
		for _, k := range []int{1, 10, 100} {
			var sink int
			ns := nsPerOp(len(queries), func() {
				for _, q := range queries {
					sink += len(ix.KNN(q, k))
				}
			})
			_ = sink
			row = append(row, ns/1000)
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

// E13InsertMD — multi-dimensional updates (LISA delta vs R-tree).
func E13InsertMD(cfg Config) []*Table {
	t := &Table{
		ID:      "E13",
		Title:   "Multi-dimensional inserts into a pre-built index (2-D): Mops/s",
		Columns: []string{"index", "insert_Mops", "query_after_us"},
	}
	n := cfg.N / 2
	pts := mustPoints(dataset.SOSMLike, n, 2, cfg.Seed)
	extra := mustPoints(dataset.SOSMLike, n/2, 2, cfg.Seed+9)
	queries := dataset.RectQueries(pts, 100, 1e-3, cfg.Seed+10)
	for _, name := range []string{"rtree", "quadtree", "grid", "lisa"} {
		ixAny, err := lix.BuildSpatial(name, dataset.PV(pts))
		if err != nil {
			panic(err)
		}
		ix := ixAny.(lix.MutableSpatialIndex)
		insNs := nsPerOp(len(extra), func() {
			for i, p := range extra {
				if err := ix.Insert(p, core.Value(1<<40+i)); err != nil {
					panic(err)
				}
			}
		})
		var sink int
		qNs := nsPerOp(len(queries), func() {
			for _, q := range queries {
				v, _ := ix.Search(q, func(core.PV) bool { return true })
				sink += v
			}
		})
		_ = sink
		t.AddRow(name, 1000/insNs, qNs/1000)
	}
	return []*Table{t}
}

// E14Concurrent — XIndex scaling vs a globally-locked B-tree (§6.5).
func E14Concurrent(cfg Config) []*Table {
	t := &Table{
		ID:      "E14",
		Title:   "Concurrent throughput, 95% reads / 5% writes (Mops/s total)",
		Columns: []string{"index", "1 goroutine", "2", "4", fmt.Sprintf("%d (NumCPU)", runtime.NumCPU())},
	}
	keys := mustKeys(dataset.Uniform, cfg.N, cfg.Seed)
	recs := dataset.KV(keys)
	gs := []int{1, 2, 4, runtime.NumCPU()}

	runWorkload := func(get func(core.Key), put func(core.Key, core.Value), workers int) float64 {
		opsPer := cfg.Q / workers
		if opsPer < 1 {
			opsPer = 1
		}
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				r := newRand(cfg.Seed + int64(id))
				for o := 0; o < opsPer; o++ {
					k := keys[r.Intn(len(keys))]
					if r.Float64() < 0.95 {
						get(k)
					} else {
						put(k, core.Value(o))
					}
				}
			}(w)
		}
		wg.Wait()
		total := float64(opsPer * workers)
		return total / float64(time.Since(start).Nanoseconds()) * 1000 // Mops/s
	}

	// XIndex.
	x, err := lix.BulkXIndex(recs, 0, 0)
	if err != nil {
		panic(err)
	}
	rowX := []interface{}{"xindex"}
	for _, g := range gs {
		rowX = append(rowX, runWorkload(func(k core.Key) { x.Get(k) }, func(k core.Key, v core.Value) { x.Insert(k, v) }, g))
	}
	t.AddRow(rowX...)

	// Globally-locked B-tree.
	bt, err := btree.Bulk(btree.DefaultOrder, recs)
	if err != nil {
		panic(err)
	}
	var mu sync.RWMutex
	rowB := []interface{}{"btree+RWMutex"}
	for _, g := range gs {
		rowB = append(rowB, runWorkload(
			func(k core.Key) { mu.RLock(); bt.Get(k); mu.RUnlock() },
			func(k core.Key, v core.Value) { mu.Lock(); bt.Insert(k, v); mu.Unlock() },
			g))
	}
	t.AddRow(rowB...)
	return []*Table{t}
}

// E15Adversarial — worst-case guarantees under adversarial keys (§6.7).
func E15Adversarial(cfg Config) []*Table {
	t := &Table{
		ID:      "E15",
		Title:   "Adversarial key distribution: average and tail lookup cost",
		Columns: []string{"index", "avg_ns", "p99_ns", "max_search_window"},
	}
	keys := mustKeys(dataset.Adversarial, cfg.N, cfg.Seed)
	recs := dataset.KV(keys)
	probes := dataset.LookupMix(keys, cfg.Q, 1.0, cfg.Seed+11)
	type entry struct {
		name   string
		ix     lix.Index
		window int
	}
	pg, _ := pgm.Build(recs, 32)
	rm, _ := rmi.Build(recs, rmi.Config{})
	bt, _ := lix.BulkBTree(0, recs)
	entries := []entry{
		{"pgm(eps=32)", pg, 2*pg.Epsilon() + 3},
		{"rmi", rm, rm.MaxAbsError()*2 + 1},
		{"btree", bt, 0},
	}
	for _, e := range entries {
		lat := make([]float64, 0, len(probes))
		var sink core.Value
		for _, p := range probes {
			s := time.Now()
			v, _ := e.ix.Get(p)
			lat = append(lat, float64(time.Since(s).Nanoseconds()))
			sink += v
		}
		_ = sink
		sort.Float64s(lat)
		var sum float64
		for _, l := range lat {
			sum += l
		}
		t.AddRow(e.name, sum/float64(len(lat)), lat[len(lat)*99/100], e.window)
	}
	return []*Table{t}
}

// E16Layout — Flood's learned layout vs fixed layouts (§5.4 ablation).
func E16Layout(cfg Config) []*Table {
	t := &Table{
		ID:      "E16",
		Title:   "Layout learning ablation (2-D, correlated data, skewed queries): µs/query",
		Columns: []string{"layout", "us/query", "avg_work_units"},
	}
	n := cfg.N / 2
	pts := mustPoints(dataset.SDiagonal, n, 2, cfg.Seed)
	pvs := dataset.PV(pts)
	train := dataset.RectQueries(pts, 100, 1e-3, cfg.Seed+12)
	test := dataset.RectQueries(pts, 200, 1e-3, cfg.Seed+13)

	type layout struct {
		name string
		run  func(q core.Rect) (int, int)
	}
	tuned, _, err := flood.BuildTuned(pvs, train, 0)
	if err != nil {
		panic(err)
	}
	uniformCols := []int{64, 1}
	uniformIx, err := flood.Build(pvs, flood.Config{SortDim: 1, Cols: uniformCols})
	if err != nil {
		panic(err)
	}
	qd, err := qdtree.Build(pvs, train, qdtree.Config{})
	if err != nil {
		panic(err)
	}
	layouts := []layout{
		{"flood-tuned", func(q core.Rect) (int, int) {
			v, c := tuned.Search(q, func(core.PV) bool { return true })
			return v, c
		}},
		{"flood-fixed64", func(q core.Rect) (int, int) {
			v, c := uniformIx.Search(q, func(core.PV) bool { return true })
			return v, c
		}},
		{"qdtree", func(q core.Rect) (int, int) {
			v, _, scanned := qd.Search(q, func(core.PV) bool { return true })
			return v, scanned
		}},
	}
	for _, l := range layouts {
		var work int
		ns := nsPerOp(len(test), func() {
			for _, q := range test {
				_, w := l.run(q)
				work += w
			}
		})
		t.AddRow(l.name, ns/1000, work/len(test))
	}
	return []*Table{t}
}

// E17SFC — space-filling-curve ablation: Z-order vs Hilbert interval
// counts and range-query latency, and the interval-budget sweep for the
// ZM-index (the projection machinery behind Approach 2).
func E17SFC(cfg Config) []*Table {
	n := cfg.N / 2
	pts := mustPoints(dataset.SOSMLike, n, 2, cfg.Seed)
	pvs := dataset.PV(pts)

	curveT := &Table{
		ID:      "E17a",
		Title:   "ZM-index curve ablation (2-D, osm-like): Z-order vs Hilbert",
		Columns: []string{"curve", "sel", "us/query", "avg_intervals"},
	}
	for _, curve := range []zm.CurveKind{zm.CurveZ, zm.CurveHilbert} {
		ix, err := zm.Build(pvs, zm.Config{Curve: curve, MaxRanges: 1 << 20})
		if err != nil {
			panic(err)
		}
		for _, sel := range []float64{1e-4, 1e-2} {
			qs := dataset.RectQueries(pts, 100, sel, cfg.Seed+20)
			var ivs int
			ns := nsPerOp(len(qs), func() {
				for _, q := range qs {
					_, w := ix.Search(q, func(core.PV) bool { return true })
					ivs += w
				}
			})
			curveT.AddRow(string(curve), sel, ns/1000, ivs/len(qs))
		}
	}

	budgetT := &Table{
		ID:      "E17b",
		Title:   "ZM-index interval-budget sweep (sel=1e-3): precision vs scan cost",
		Columns: []string{"max_ranges", "us/query", "avg_intervals"},
	}
	qs := dataset.RectQueries(pts, 100, 1e-3, cfg.Seed+21)
	for _, budget := range []int{2, 8, 32, 128, 1024} {
		ix, err := zm.Build(pvs, zm.Config{MaxRanges: budget})
		if err != nil {
			panic(err)
		}
		var ivs int
		ns := nsPerOp(len(qs), func() {
			for _, q := range qs {
				_, w := ix.Search(q, func(core.PV) bool { return true })
				ivs += w
			}
		})
		budgetT.AddRow(budget, ns/1000, ivs/len(qs))
	}
	return []*Table{curveT, budgetT}
}

// E18LearnedLSM — the Bourbon comparison: per-run learned indexes vs
// binary search inside an LSM-tree.
func E18LearnedLSM(cfg Config) []*Table {
	t := &Table{
		ID:      "E18",
		Title:   "Learned LSM-tree (Bourbon): per-run learned index vs binary search",
		Columns: []string{"variant", "ns/get", "model_KiB", "runs", "segments"},
	}
	keys := mustKeys(dataset.Lognormal, cfg.N, cfg.Seed)
	probes := dataset.LookupMix(keys, cfg.Q, 0.9, cfg.Seed+22)
	r := newRand(cfg.Seed + 23)
	perm := r.Perm(len(keys))
	for _, variant := range []struct {
		name    string
		disable bool
	}{{"learned (radixspline runs)", false}, {"baseline (binary search)", true}} {
		db := lsm.New(lsm.Config{MemtableCap: 8192, DisableLearnedIndex: variant.disable})
		for _, i := range perm {
			db.Put(keys[i], core.Value(i))
		}
		db.Flush()
		var sink core.Value
		ns := nsPerOp(len(probes), func() {
			for _, p := range probes {
				v, _ := db.Get(p)
				sink += v
			}
		})
		_ = sink
		runs, segs, modelBytes := db.ModelStats()
		t.AddRow(variant.name, ns, modelBytes/1024, runs, segs)
	}
	return []*Table{t}
}

// E19DimSweep — the curse of dimensionality (paper §5.1 motivation): how
// point and range query cost grows with dimensionality for traditional vs
// learned multi-dimensional indexes.
func E19DimSweep(cfg Config) []*Table {
	t := &Table{
		ID:      "E19",
		Title:   "Dimensionality sweep (uniform, sel=1e-3 ranges): µs/query",
		Columns: []string{"index", "op", "d=2", "d=3", "d=4", "d=5"},
	}
	n := cfg.N / 4
	dims := []int{2, 3, 4, 5}
	kinds := []string{"rtree", "kdtree", "grid", "zm", "flood", "lisa", "mlindex"}
	point := map[string][]interface{}{}
	rng := map[string][]interface{}{}
	for _, d := range dims {
		pts := mustPoints(dataset.SUniform, n, d, cfg.Seed)
		pvs := dataset.PV(pts)
		queries := dataset.RectQueries(pts, 100, 1e-3, cfg.Seed+30)
		for _, kind := range kinds {
			ix, err := lix.BuildSpatial(kind, pvs)
			if err != nil {
				panic(err)
			}
			var sink int
			pNs := nsPerOp(n/10, func() {
				for i := 0; i < n; i += 10 {
					if _, ok := ix.Lookup(pvs[i].Point); ok {
						sink++
					}
				}
			})
			rNs := nsPerOp(len(queries), func() {
				for _, q := range queries {
					v, _ := ix.Search(q, func(core.PV) bool { return true })
					sink += v
				}
			})
			_ = sink
			point[kind] = append(point[kind], pNs/1000)
			rng[kind] = append(rng[kind], rNs/1000)
		}
	}
	for _, kind := range kinds {
		t.AddRow(append([]interface{}{kind, "point"}, point[kind]...)...)
	}
	for _, kind := range kinds {
		t.AddRow(append([]interface{}{kind, "range"}, rng[kind]...)...)
	}
	return []*Table{t}
}
