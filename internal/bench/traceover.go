package bench

import (
	"fmt"
	"io"
	"time"

	lix "github.com/lix-go/lix"
)

// TraceOverheadConfig sizes the trace-overhead benchmark (lixbench
// -trace-overhead): the same wire workload driven against in-process
// servers whose stacks differ only in tracing configuration, so the
// ratio between variants isolates the instrumentation cost from machine
// speed.
type TraceOverheadConfig struct {
	// N is the preload size.
	N int `json:"n"`
	// Shards is the stack's shard count.
	Shards int `json:"shards"`
	// Conns / Pipeline / Duration size each variant's loadgen run.
	Conns    int           `json:"conns"`
	Pipeline int           `json:"pipeline"`
	Duration time.Duration `json:"duration"`
	// Seed drives preload and workload key choice.
	Seed int64 `json:"seed"`
}

// DefaultTraceOverheadConfig is the scale used by the CI bench job.
func DefaultTraceOverheadConfig() TraceOverheadConfig {
	return TraceOverheadConfig{
		N:        200_000,
		Shards:   4,
		Conns:    4,
		Pipeline: 32,
		Duration: 2 * time.Second,
		Seed:     7,
	}
}

// traceVariant is one tracing configuration measured by RunTraceOverhead.
type traceVariant struct {
	name  string
	trace *lix.TraceOptions // nil = no tracer attached at all
}

// RunTraceOverhead measures wire-serving throughput across tracing
// configurations — no tracer, tracer attached but sampling disabled, 1%
// sampling, 100% sampling — and reports:
//
//   - informational trace/<variant> results with the measured ops/s
//     (no baseline gating: absolute throughput varies with the machine);
//   - one gating trace_overhead/off result whose OpsPerSec is the
//     off/none throughput RATIO with MaxDrop 0.02, pinning the
//     acceptance criterion that disabled tracing costs under 2%:
//     against a baseline ratio of 1.0, a run where the disabled-tracer
//     stack is more than 2% slower than the tracer-free stack fails
//     -compare.
func RunTraceOverhead(cfg TraceOverheadConfig) ([]*Table, []BenchResult, error) {
	if cfg.N <= 0 {
		cfg = DefaultTraceOverheadConfig()
	}

	variants := []traceVariant{
		{name: "none", trace: nil},
		{name: "off", trace: &lix.TraceOptions{SampleRate: 0}},
		{name: "1pct", trace: &lix.TraceOptions{SampleRate: 0.01, SlowThreshold: time.Second, TopK: 64}},
		{name: "100pct", trace: &lix.TraceOptions{SampleRate: 1, SlowThreshold: time.Second, TopK: 64}},
	}

	recs := make([]lix.KV, cfg.N)
	for i := range recs {
		recs[i] = lix.KV{Key: lix.Key(i * 16), Value: lix.Value(i)}
	}

	t := &Table{
		ID:      "T1",
		Title:   fmt.Sprintf("Trace overhead: %d conns, pipeline %d, %v per variant", cfg.Conns, cfg.Pipeline, cfg.Duration),
		Columns: []string{"variant", "ops", "Kops/s", "vs none", "p99"},
	}
	var (
		results []BenchResult
		noneOps float64
	)
	for _, v := range variants {
		ops, res, err := runTraceVariant(recs, cfg, v)
		if err != nil {
			return nil, nil, fmt.Errorf("trace overhead %s: %w", v.name, err)
		}
		ratio := 1.0
		if v.name == "none" {
			noneOps = ops
		} else if noneOps > 0 {
			ratio = ops / noneOps
		}
		t.AddRow(v.name, res.Ops, fmt.Sprintf("%.1f", ops/1e3),
			fmt.Sprintf("%.3f", ratio), res.P99.String())
		results = append(results, BenchResult{
			Name:      "trace/" + v.name,
			OpsPerSec: ops,
			P50NS:     uint64(res.P50),
			P99NS:     uint64(res.P99),
			P999NS:    uint64(res.P999),
		})
		if v.name == "off" {
			results = append(results, BenchResult{
				Name:      "trace_overhead/off",
				OpsPerSec: ratio,
				MaxDrop:   0.02,
			})
		}
	}
	return []*Table{t}, results, nil
}

// runTraceVariant boots one in-process server with the variant's tracing
// configuration and drives it with the shared loadgen workload.
func runTraceVariant(recs []lix.KV, cfg TraceOverheadConfig, v traceVariant) (float64, LoadgenResult, error) {
	m := lix.NewMetrics("trace-overhead-" + v.name)
	stack, err := lix.NewStack(recs, lix.StackConfig{
		Shards:  cfg.Shards,
		Metrics: m,
		Trace:   v.trace,
	})
	if err != nil {
		return 0, LoadgenResult{}, err
	}
	srv := lix.NewServer(stack, lix.ServeConfig{
		Metrics:    m,
		Tracer:     stack.Tracer(),
		ErrorLog:   io.Discard,
		CloseStore: true,
	})
	if err := srv.Start(); err != nil {
		return 0, LoadgenResult{}, err
	}
	defer srv.Shutdown()

	_, res, _, err := RunLoadgen(LoadgenConfig{
		Addr:     srv.Addr().String(),
		Conns:    cfg.Conns,
		Pipeline: cfg.Pipeline,
		Duration: cfg.Duration,
		ReadFrac: 0.95,
		Keys:     len(recs),
		Seed:     cfg.Seed,
	})
	if err != nil {
		return 0, LoadgenResult{}, err
	}
	return res.OpsPerSec, res, nil
}
