package bench

import (
	"io"
	"testing"
	"time"

	lix "github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/serve"
)

// TestRunLoadgenSmoke drives the load generator against an in-process
// server for a moment and checks the plumbing: ops flow, no protocol
// errors, latency percentiles are populated and ordered, and the
// BenchResult carries them for BENCH_<rev>.json.
func TestRunLoadgenSmoke(t *testing.T) {
	stack, err := lix.NewStack(nil, lix.StackConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(stack, serve.Config{ErrorLog: io.Discard, CloseStore: true})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	cfg := DefaultLoadgenConfig()
	cfg.Addr = srv.Addr().String()
	cfg.Conns = 2
	cfg.Pipeline = 8
	cfg.Duration = 250 * time.Millisecond
	cfg.Keys = 10_000

	tables, res, results, err := RunLoadgen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 1 {
		t.Fatalf("tables = %+v, want one single-row table", tables)
	}
	if res.Ops == 0 || res.OpsPerSec <= 0 {
		t.Fatalf("no throughput measured: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("%d protocol errors during smoke run", res.Errors)
	}
	if res.P50 == 0 || res.P50 > res.P99 || res.P99 > res.P999 {
		t.Fatalf("percentiles unordered: p50=%v p99=%v p999=%v", res.P50, res.P99, res.P999)
	}
	if len(results) != 1 || results[0].Name != "serve/95-5/pipeline=8" {
		t.Fatalf("bench results = %+v", results)
	}
	if results[0].P99NS == 0 || results[0].OpsPerSec != res.OpsPerSec {
		t.Fatalf("bench result missing latency/throughput: %+v", results[0])
	}

	// Open-loop pacing holds the aggregate rate near the target.
	cfg.TargetQPS = 4000
	cfg.Duration = 500 * time.Millisecond
	_, res, _, err = RunLoadgen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OpsPerSec > 2*cfg.TargetQPS {
		t.Fatalf("open loop ran at %.0f ops/s, target %.0f", res.OpsPerSec, cfg.TargetQPS)
	}
}
