package bench

import "testing"

// TestRunPagedSmoke runs the paged benchmark at a tiny scale and checks
// the contract the CI gate depends on: four results, cold runs actually
// evicting (RunPaged errors otherwise), and every warm result carrying
// the blocking >= 3x floor against its own kind's cold result.
func TestRunPagedSmoke(t *testing.T) {
	cfg := PagedConfig{N: 20_000, Lookups: 4_000, ColdFrames: 8, Seed: 3}
	tables, results, err := RunPaged(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 2 {
		t.Fatalf("want 1 table with 2 rows, got %d tables", len(tables))
	}
	if len(results) != 4 {
		t.Fatalf("want 4 results, got %d", len(results))
	}
	byName := make(map[string]BenchResult, len(results))
	for _, r := range results {
		if r.OpsPerSec <= 0 {
			t.Errorf("%s: non-positive throughput %v", r.Name, r.OpsPerSec)
		}
		byName[r.Name] = r
	}
	for _, kind := range []string{"paged-btree", "paged-pgm"} {
		coldName := PagedResultName(kind, "cold")
		if _, ok := byName[coldName]; !ok {
			t.Fatalf("missing result %s", coldName)
		}
		warm, ok := byName[PagedResultName(kind, "warm")]
		if !ok {
			t.Fatalf("missing result %s", PagedResultName(kind, "warm"))
		}
		if warm.MinRatioOf != coldName || warm.MinRatio != 3 {
			t.Errorf("%s: ratio gate = (%q, %v), want (%q, 3)",
				warm.Name, warm.MinRatioOf, warm.MinRatio, coldName)
		}
	}
}
