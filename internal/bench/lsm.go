package bench

import (
	"fmt"
	"os"
	"sort"
	"time"

	lix "github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/core"
)

// LSMConfig sizes the storage-engine benchmark (lixbench -lsm): a
// write-heavy workload with periodic explicit checkpoints under both
// checkpoint engines, then cold-start recovery and an absent-key probe
// phase over the LSM run set.
type LSMConfig struct {
	// N is the preloaded dataset size (the seed checkpoint both engines
	// pay once, outside the measured window).
	N int `json:"n"`
	// Writes is the measured insert count, spread evenly across the
	// checkpoint cycles.
	Writes int `json:"writes"`
	// Checkpoints is how many explicit checkpoints the write phase takes.
	// Each snapshot-engine checkpoint rewrites the full record set; each
	// LSM checkpoint flushes only the accumulated delta.
	Checkpoints int `json:"checkpoints"`
	// Reads is the number of point lookups per read phase.
	Reads int `json:"reads"`
	// Seed drives key generation.
	Seed int64 `json:"seed"`
}

// DefaultLSMConfig is the scale used for the committed baseline. The
// delta-to-dataset ratio matters: each LSM checkpoint pays O(delta) —
// dominated by training the new run's learned filter — while the
// snapshot engine pays O(N) to rewrite the record set, so the structural
// gap only shows when checkpoints are frequent relative to dataset size
// (the regime checkpointing exists for).
func DefaultLSMConfig() LSMConfig {
	return LSMConfig{N: 1_000_000, Writes: 18_000, Checkpoints: 6, Reads: 100_000, Seed: 7}
}

// LSMResultName returns the BenchResult name for one (phase, engine)
// cell, e.g. "lsm/checkpoint/lsm".
func LSMResultName(phase, engine string) string {
	return fmt.Sprintf("lsm/%s/%s", phase, engine)
}

// lsmRow is one engine's measured cells.
type lsmRow struct {
	engine     string
	writeRate  float64 // sustained inserts/s including checkpoint stalls
	ckptPerSec float64 // checkpoints/s over checkpoint wall time alone
	ckptAvgMs  float64
	recoverMs  float64
	recRecSec  float64
	runs       int     // LSM only
	skipPct    float64 // LSM only: absent-key filter skip rate
}

// RunLSM measures the checkpoint cost of the two storage engines under
// the same write-heavy workload: cfg.Writes inserts into a preloaded
// store of cfg.N records, checkpointing every Writes/Checkpoints ops.
// The LSM checkpoint result carries a blocking intra-run floor — LSM
// checkpoints must run at least 2x the snapshot engine's rate — which
// pins the structural promise of the engine: flushing the memtable delta
// must beat rewriting the full record set, on every machine, or tiering
// is buying nothing. The LSM run additionally drives absent-key lookups
// through the run set and fails outright if the per-run learned filters
// skip fewer than 90% of the probes that reach them.
func RunLSM(cfg LSMConfig) ([]*Table, []BenchResult, error) {
	if cfg.Checkpoints <= 0 {
		cfg.Checkpoints = 1
	}
	recs := evenKV(cfg.N, cfg.Seed)

	t := &Table{
		ID: "LSM",
		Title: fmt.Sprintf("Checkpoint engines under write load, n=%d, %d writes, %d checkpoints",
			cfg.N, cfg.Writes, cfg.Checkpoints),
		Columns: []string{"engine", "write Kops/s", "ckpt/s", "avg ckpt ms", "recover ms", "runs", "skip%"},
	}
	var results []BenchResult
	for _, engine := range []string{lix.EngineSnapshot, lix.EngineLSM} {
		row, err := runLSMEngine(cfg, engine, recs)
		if err != nil {
			return nil, nil, err
		}
		t.AddRow(row.engine, row.writeRate/1e3, row.ckptPerSec, row.ckptAvgMs, row.recoverMs, row.runs, row.skipPct)
		ckpt := BenchResult{Name: LSMResultName("checkpoint", engine), OpsPerSec: row.ckptPerSec}
		if engine == lix.EngineLSM {
			ckpt.MinRatioOf = LSMResultName("checkpoint", lix.EngineSnapshot)
			ckpt.MinRatio = 2
		}
		results = append(results,
			BenchResult{Name: LSMResultName("write", engine), OpsPerSec: row.writeRate},
			ckpt,
			BenchResult{Name: LSMResultName("recover", engine), OpsPerSec: row.recRecSec},
		)
	}
	return []*Table{t}, results, nil
}

// evenKV builds n sorted distinct even keys: everything the benchmark
// ever inserts is even, so any odd key is absent by construction and the
// filter probe phase needs no bookkeeping.
func evenKV(n int, seed int64) []core.KV {
	r := newRand(seed)
	seen := make(map[core.Key]struct{}, n)
	keys := make([]core.Key, 0, n)
	for len(keys) < n {
		k := core.Key(r.Uint64()) >> 2 &^ 1
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	recs := make([]core.KV, n)
	for i, k := range keys {
		recs[i] = core.KV{Key: k, Value: core.Value(i)}
	}
	return recs
}

func runLSMEngine(cfg LSMConfig, engine string, recs []core.KV) (lsmRow, error) {
	dir, err := os.MkdirTemp("", "lixbench-lsm-*")
	if err != nil {
		return lsmRow{}, err
	}
	defer os.RemoveAll(dir)

	opts := lix.DurableOptions{
		Engine:          engine,
		Fsync:           lix.FsyncNever, // measure checkpoint I/O, not WAL sync policy
		CheckpointEvery: -1,             // checkpoints are explicit, so both engines pay at the same points
	}
	d, err := lix.NewDurable(dir, recs, opts)
	if err != nil {
		return lsmRow{}, err
	}
	row := lsmRow{engine: engine}

	// Write phase: fresh even keys with a checkpoint per cycle.
	perCkpt := cfg.Writes / cfg.Checkpoints
	if perCkpt == 0 {
		perCkpt = 1
	}
	r := newRand(cfg.Seed + 57)
	var ckptTime time.Duration
	start := time.Now()
	for c := 0; c < cfg.Checkpoints; c++ {
		for i := 0; i < perCkpt; i++ {
			if err := d.Put(core.Key(r.Uint64())>>2&^1, core.Value(i)); err != nil {
				d.Close()
				return lsmRow{}, err
			}
		}
		cs := time.Now()
		if err := d.Checkpoint(); err != nil {
			d.Close()
			return lsmRow{}, err
		}
		ckptTime += time.Since(cs)
	}
	elapsed := time.Since(start)
	row.writeRate = float64(perCkpt*cfg.Checkpoints) / elapsed.Seconds()
	row.ckptPerSec = float64(cfg.Checkpoints) / ckptTime.Seconds()
	row.ckptAvgMs = ckptTime.Seconds() * 1e3 / float64(cfg.Checkpoints)

	if engine == lix.EngineLSM {
		if err := probeLSMFilters(cfg, d, &row); err != nil {
			d.Close()
			return lsmRow{}, err
		}
	}

	// Cold-start recovery: a WAL tail on top of the last checkpoint, then
	// kill and reopen.
	for i := 0; i < perCkpt; i++ {
		if err := d.Put(core.Key(r.Uint64())>>2&^1, core.Value(i)); err != nil {
			d.Close()
			return lsmRow{}, err
		}
	}
	if err := d.Crash(); err != nil {
		return lsmRow{}, err
	}
	re, err := lix.Open(dir, opts)
	if err != nil {
		return lsmRow{}, err
	}
	defer re.Close()
	info := re.RecoveryInfo()
	row.recoverMs = float64(info.Elapsed.Microseconds()) / 1e3
	if s := info.Elapsed.Seconds(); s > 0 {
		row.recRecSec = float64(info.SnapshotRecs+info.WALRecs) / s
	}
	return row, nil
}

// probeLSMFilters drives absent (odd) keys through the run set and
// fails unless the learned filters skip at least 90% of the run probes
// that reach them — the engine's structural read-path promise.
func probeLSMFilters(cfg LSMConfig, d *lix.Durable, row *lsmRow) error {
	tiers := d.Tiers()
	before := d.LSMStats().Counters
	row.runs = d.LSMStats().Runs
	r := newRand(cfg.Seed + 131)
	probes := cfg.Reads
	if probes > 50_000 {
		probes = 50_000 // plenty for a stable rate; keeps the phase short
	}
	for i := 0; i < probes; i++ {
		k := core.Key(r.Uint64())>>2 | 1
		if _, ok, err := tiers.Get(k); err != nil {
			return err
		} else if ok {
			return fmt.Errorf("bench: absent key %d found in the run set", k)
		}
	}
	after := d.LSMStats().Counters
	consulted := (after.Probes - after.RangeSkips) - (before.Probes - before.RangeSkips)
	if consulted == 0 {
		return fmt.Errorf("bench: no absent-key probe consulted a filter — run set not exercised")
	}
	skips := after.FilterSkips - before.FilterSkips
	row.skipPct = 100 * float64(skips) / float64(consulted)
	if row.skipPct < 90 {
		return fmt.Errorf("bench: learned filters skipped %.1f%% of absent-key run probes, want >= 90%%", row.skipPct)
	}
	return nil
}
