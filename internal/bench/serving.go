package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	lix "github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

// ServingConfig sizes the sharded-serving throughput benchmark (lixbench
// -shards/-concurrency).
type ServingConfig struct {
	// N is the preloaded dataset size.
	N int `json:"n"`
	// OpsPerWorker is the operation count each worker goroutine issues.
	OpsPerWorker int `json:"ops_per_worker"`
	// Workers is the concurrent goroutine count.
	Workers int `json:"workers"`
	// Shards is the shard count of the sharded systems.
	Shards int `json:"shards"`
	// Seed drives key generation and op mixing.
	Seed int64 `json:"seed"`
}

// DefaultServingConfig is the scale used for the DESIGN.md scaling table.
func DefaultServingConfig() ServingConfig {
	return ServingConfig{N: 1_000_000, OpsPerWorker: 200_000, Workers: 8, Shards: 8, Seed: 7}
}

// ServingRow is one measured (system, workload) cell, the unit the
// regression harness compares across revisions.
type ServingRow struct {
	System   string  `json:"system"`
	Workload string  `json:"workload"` // read/write mix, e.g. "95/5"
	Workers  int     `json:"workers"`
	Shards   int     `json:"shards"`
	Mops     float64 `json:"mops"` // aggregate throughput, million ops/s
}

// servingSystem is one system under test: a display name plus a builder
// returning the get/put closures the workload drives.
type servingSystem struct {
	name  string
	build func(recs []core.KV) (get func(core.Key) (core.Value, bool), put func(core.Key, core.Value), err error)
}

func servingSystems(cfg ServingConfig) []servingSystem {
	return []servingSystem{
		{
			// The single-mutex baseline every sharded number is judged
			// against: one B+-tree behind one RWMutex.
			name: "btree+mutex",
			build: func(recs []core.KV) (func(core.Key) (core.Value, bool), func(core.Key, core.Value), error) {
				ix, err := lix.BulkBTree(0, recs)
				if err != nil {
					return nil, nil, err
				}
				var mu sync.RWMutex
				get := func(k core.Key) (core.Value, bool) {
					mu.RLock()
					v, ok := ix.Get(k)
					mu.RUnlock()
					return v, ok
				}
				put := func(k core.Key, v core.Value) {
					mu.Lock()
					ix.Insert(k, v)
					mu.Unlock()
				}
				return get, put, nil
			},
		},
		{
			// Assembled through the one-call stack constructor — the serving
			// path the façade documents.
			name: fmt.Sprintf("sharded-rw(%d)", cfg.Shards),
			build: func(recs []core.KV) (func(core.Key) (core.Value, bool), func(core.Key, core.Value), error) {
				s, err := lix.NewStack(recs, lix.StackConfig{Shards: cfg.Shards})
				if err != nil {
					return nil, nil, err
				}
				return s.Get, s.Insert, nil
			},
		},
		{
			name: fmt.Sprintf("sharded-rcu(%d)", cfg.Shards),
			build: func(recs []core.KV) (func(core.Key) (core.Value, bool), func(core.Key, core.Value), error) {
				s, err := lix.NewStack(recs, lix.StackConfig{Shards: cfg.Shards, Mode: lix.ShardRCU, DeltaCap: 8192})
				if err != nil {
					return nil, nil, err
				}
				return s.Get, s.Insert, nil
			},
		},
		{
			name: "xindex",
			build: func(recs []core.KV) (func(core.Key) (core.Value, bool), func(core.Key, core.Value), error) {
				x, err := lix.BulkXIndex(recs, 0, 0)
				if err != nil {
					return nil, nil, err
				}
				return x.Get, x.Insert, nil
			},
		},
	}
}

// RunServing measures aggregate mixed-workload throughput (95/5 and 50/50
// read/write) for the single-mutex baseline, both sharded modes and
// XIndex, at the configured worker count. It returns the rendered table
// plus the raw rows for the regression harness.
func RunServing(cfg ServingConfig) ([]*Table, []ServingRow, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	keys := mustKeys(dataset.Uniform, cfg.N, cfg.Seed)
	recs := dataset.KV(keys)
	mixes := []struct {
		name    string
		readPct float64
	}{{"95/5", 0.95}, {"50/50", 0.50}}

	t := &Table{
		ID:      "SERVE",
		Title:   fmt.Sprintf("Sharded serving throughput, %d workers, %d shards, n=%d (Mops/s aggregate)", cfg.Workers, cfg.Shards, cfg.N),
		Columns: []string{"system", "95/5 Mops", "50/50 Mops"},
	}
	var rows []ServingRow
	for _, sys := range servingSystems(cfg) {
		cells := []interface{}{sys.name}
		for _, mix := range mixes {
			// A fresh instance per mix: writes mutate the structure and a
			// 50/50 run must not inherit a 95/5 run's growth.
			get, put, err := sys.build(recs)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: build %s: %w", sys.name, err)
			}
			mops := runMixed(keys, cfg, mix.readPct, get, put)
			cells = append(cells, mops)
			rows = append(rows, ServingRow{
				System: sys.name, Workload: mix.name,
				Workers: cfg.Workers, Shards: cfg.Shards, Mops: mops,
			})
		}
		t.AddRow(cells...)
	}
	return []*Table{t}, rows, nil
}

// runMixed drives cfg.Workers goroutines of the given read/write mix and
// returns aggregate Mops/s.
func runMixed(keys []core.Key, cfg ServingConfig, readPct float64, get func(core.Key) (core.Value, bool), put func(core.Key, core.Value)) float64 {
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := newRand(cfg.Seed + 31*int64(id))
			for o := 0; o < cfg.OpsPerWorker; o++ {
				k := keys[r.Intn(len(keys))]
				if r.Float64() < readPct {
					get(k)
				} else {
					put(k, core.Value(o))
				}
			}
		}(w)
	}
	wg.Wait()
	total := float64(cfg.OpsPerWorker * cfg.Workers)
	return total / float64(time.Since(start).Nanoseconds()) * 1000
}

// ---------------------------------------------------------------------------
// Regression harness
// ---------------------------------------------------------------------------

// BenchResult is one named throughput measurement inside a BenchFile.
type BenchResult struct {
	Name      string  `json:"name"` // "serving/<workload>/<system>"
	OpsPerSec float64 `json:"ops_per_sec"`

	// Per-request latency percentiles in nanoseconds, recorded by modes
	// that measure individual round-trips (the wire load generator).
	// Zero on compute-bound modes; CompareBenchFiles gates on throughput
	// only, so these ride along informationally.
	P50NS  uint64 `json:"p50_ns,omitempty"`
	P99NS  uint64 `json:"p99_ns,omitempty"`
	P999NS uint64 `json:"p999_ns,omitempty"`

	// MaxDrop, when positive, overrides the comparison-wide regression
	// threshold for this result (a fraction: 0.02 fails on a >2% drop).
	// Ratio-valued results (trace_overhead/off) use it to pin much
	// tighter bounds than the raw-throughput default. The new run's
	// value wins over the baseline's.
	MaxDrop float64 `json:"max_drop,omitempty"`

	// MinRatioOf and MinRatio, when set, declare a blocking intra-run
	// ratio gate: this result's throughput divided by the named sibling
	// result's (same file) must be at least MinRatio. Unlike the
	// old-vs-new drop check, the gate binds within a single run, so it
	// pins structural promises — batch ≥ looped, sharded ≥ single-mutex —
	// that must hold on every machine, not just relative to history.
	// The new run's constraint wins over the baseline's.
	MinRatioOf string  `json:"min_ratio_of,omitempty"`
	MinRatio   float64 `json:"min_ratio,omitempty"`
}

// BenchFile is the BENCH_<rev>.json document lixbench emits and compares.
type BenchFile struct {
	Rev     string        `json:"rev"`
	Config  ServingConfig `json:"config"`
	Results []BenchResult `json:"results"`
}

// MergeResults folds results into f, replacing any existing entry with
// the same name (a re-run of one lixbench mode supersedes that mode's
// earlier numbers) and appending the rest in order. Without replacement
// a repeated mode would accumulate duplicate names, and CompareBenchFiles
// — which resolves ratio references and baselines by name — would pair
// entries arbitrarily.
func (f *BenchFile) MergeResults(results []BenchResult) {
	byName := make(map[string]int, len(f.Results))
	for i, r := range f.Results {
		byName[r.Name] = i
	}
	for _, r := range results {
		if i, ok := byName[r.Name]; ok {
			f.Results[i] = r
			continue
		}
		byName[r.Name] = len(f.Results)
		f.Results = append(f.Results, r)
	}
}

// ServingBenchFile packages serving rows as a regression-comparable
// file. The sharded 50/50 rows carry blocking intra-run floors against
// the btree+mutex baseline, sized as collapse backstops rather than
// performance targets: on a single-core runner the systems legitimately
// converge with heavy scheduler noise (observed swings of +/-25%), so
// the floors only catch the failure class the old baseline actually
// exhibited — sharded-rcu at 0.03x the mutex when every publish
// re-merged the snapshot. The tight ratios live elsewhere: >= 3x
// multicore is the scaling test's gate, and absolute throughput is
// pinned by the old-vs-new drop threshold.
func ServingBenchFile(rev string, cfg ServingConfig, rows []ServingRow) BenchFile {
	f := BenchFile{Rev: rev, Config: cfg}
	for _, r := range rows {
		br := BenchResult{
			Name:      fmt.Sprintf("serving/%s/%s", r.Workload, r.System),
			OpsPerSec: r.Mops * 1e6,
		}
		if r.Workload == "50/50" {
			switch r.System {
			case fmt.Sprintf("sharded-rw(%d)", cfg.Shards):
				br.MinRatioOf, br.MinRatio = "serving/50/50/btree+mutex", 0.6
			case fmt.Sprintf("sharded-rcu(%d)", cfg.Shards):
				br.MinRatioOf, br.MinRatio = "serving/50/50/btree+mutex", 0.25
			}
		}
		f.Results = append(f.Results, br)
	}
	return f
}

// CompareBenchFiles flags results whose throughput dropped by more than
// threshold (a fraction, e.g. 0.15 for 15%) between old and new. A
// result carrying its own MaxDrop (on either side; the new run wins)
// is gated at that tighter bound instead. Results present on only one
// side are reported informationally, not as regressions.
//
// Results carrying a MinRatioOf/MinRatio constraint are additionally
// checked against their named sibling *within the new run*: a batch
// result pinned to its looped counterpart fails the comparison if the
// new run measured it below MinRatio times the sibling, regardless of
// how it moved against the baseline. The returned slices are
// human-readable report lines.
func CompareBenchFiles(old, new BenchFile, threshold float64) (regressions, notes []string) {
	oldByName := make(map[string]BenchResult, len(old.Results))
	for _, r := range old.Results {
		oldByName[r.Name] = r
	}
	newByName := make(map[string]BenchResult, len(new.Results))
	for _, r := range new.Results {
		newByName[r.Name] = r
	}
	seen := make(map[string]bool, len(new.Results))
	for _, nr := range new.Results {
		seen[nr.Name] = true
		or, hasOld := oldByName[nr.Name]

		// Intra-run ratio gate: binds on the new run alone, so it applies
		// even to results with no baseline. The new run's constraint wins;
		// a baseline-only constraint still binds so a new run cannot
		// silently shed a gate by omitting the fields.
		refName, minRatio := nr.MinRatioOf, nr.MinRatio
		if refName == "" && hasOld {
			refName, minRatio = or.MinRatioOf, or.MinRatio
		}
		if refName != "" && minRatio > 0 {
			ref, ok := newByName[refName]
			switch {
			case !ok:
				regressions = append(regressions,
					fmt.Sprintf("%s: ratio gate references %s, missing from new run", nr.Name, refName))
			case ref.OpsPerSec <= 0:
				regressions = append(regressions,
					fmt.Sprintf("%s: ratio gate references %s, which measured zero", nr.Name, refName))
			default:
				ratio := nr.OpsPerSec / ref.OpsPerSec
				line := fmt.Sprintf("%s: %.3fx of %s [floor %.2fx]", nr.Name, ratio, refName, minRatio)
				if ratio < minRatio {
					regressions = append(regressions, line)
				} else {
					notes = append(notes, line)
				}
			}
		}

		if !hasOld {
			notes = append(notes, fmt.Sprintf("new result %s (%.3g ops/s), no baseline", nr.Name, nr.OpsPerSec))
			continue
		}
		if or.OpsPerSec <= 0 {
			notes = append(notes, fmt.Sprintf("%s: baseline is zero, skipping", nr.Name))
			continue
		}
		thr := threshold
		if nr.MaxDrop > 0 {
			thr = nr.MaxDrop
		} else if or.MaxDrop > 0 {
			thr = or.MaxDrop
		}
		change := nr.OpsPerSec/or.OpsPerSec - 1
		line := fmt.Sprintf("%s: %.3g -> %.3g ops/s (%+.1f%%)", nr.Name, or.OpsPerSec, nr.OpsPerSec, 100*change)
		if thr != threshold {
			line += fmt.Sprintf(" [max drop %.1f%%]", 100*thr)
		}
		if change < -thr {
			regressions = append(regressions, line)
		} else {
			notes = append(notes, line)
		}
	}
	for name := range oldByName {
		if !seen[name] {
			notes = append(notes, fmt.Sprintf("baseline result %s missing from new run", name))
		}
	}
	sort.Strings(regressions)
	sort.Strings(notes)
	return regressions, notes
}
