package bench

import (
	"strings"
	"testing"
)

func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := QuickConfig()
	for _, id := range IDs() {
		tables, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s: no tables", id)
		}
		for _, tb := range tables {
			if len(tb.Rows) == 0 || len(tb.Columns) == 0 {
				t.Fatalf("%s: empty table %q", id, tb.Title)
			}
			for _, r := range tb.Rows {
				if len(r) != len(tb.Columns) {
					t.Fatalf("%s: row width %d != %d columns", id, len(r), len(tb.Columns))
				}
			}
			s := tb.String()
			if !strings.Contains(s, tb.ID) {
				t.Fatalf("%s: render missing ID", id)
			}
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("E99", QuickConfig()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{ID: "T", Title: "test", Columns: []string{"a", "bb"}}
	tb.AddRow(1, 2.5)
	tb.AddRow("x", 0.00001)
	s := tb.String()
	for _, want := range []string{"T — test", "a", "bb", "1", "2.500", "1.00e-05"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q in:\n%s", want, s)
		}
	}
}
