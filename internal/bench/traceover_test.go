package bench

import (
	"strings"
	"testing"
	"time"
)

// TestCompareMaxDrop pins the per-result threshold override: a result
// carrying MaxDrop is gated at that bound instead of the comparison-wide
// threshold, with the new run's value winning over the baseline's.
func TestCompareMaxDrop(t *testing.T) {
	base := BenchFile{Rev: "old", Results: []BenchResult{
		{Name: "trace_overhead/off", OpsPerSec: 1.0, MaxDrop: 0.02},
		{Name: "serving/95/x", OpsPerSec: 100},
	}}
	cases := []struct {
		name    string
		results []BenchResult
		wantReg int
	}{
		{"within tight bound", []BenchResult{
			{Name: "trace_overhead/off", OpsPerSec: 0.99, MaxDrop: 0.02}}, 0},
		{"past tight bound but under default", []BenchResult{
			{Name: "trace_overhead/off", OpsPerSec: 0.97, MaxDrop: 0.02}}, 1},
		{"baseline MaxDrop applies when new run omits it", []BenchResult{
			{Name: "trace_overhead/off", OpsPerSec: 0.97}}, 1},
		{"new run loosens the bound", []BenchResult{
			{Name: "trace_overhead/off", OpsPerSec: 0.90, MaxDrop: 0.5}}, 0},
		{"default threshold untouched for plain results", []BenchResult{
			{Name: "serving/95/x", OpsPerSec: 90}}, 0},
		{"plain result still gated at default", []BenchResult{
			{Name: "serving/95/x", OpsPerSec: 80}}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cur := BenchFile{Rev: "new", Results: c.results}
			regs, notes := CompareBenchFiles(base, cur, 0.15)
			if len(regs) != c.wantReg {
				t.Fatalf("regressions = %v, want %d (notes: %v)", regs, c.wantReg, notes)
			}
			if c.wantReg == 0 && len(c.results) > 0 && c.results[0].MaxDrop > 0 {
				// The custom bound is surfaced in the report line.
				found := false
				for _, n := range notes {
					if strings.Contains(n, "max drop") {
						found = true
					}
				}
				if !found {
					t.Errorf("notes missing the max-drop annotation: %v", notes)
				}
			}
		})
	}
}

// TestRunTraceOverheadSmoke runs the variant harness at a tiny scale:
// every variant must produce throughput, and the gating ratio entry must
// be present with its 2% bound. The ratio value itself is not asserted
// here — short runs are noisy; CI's bench job gates it via -compare at
// real scale.
func TestRunTraceOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trace overhead smoke skipped in -short")
	}
	tables, results, err := RunTraceOverhead(TraceOverheadConfig{
		N:        20_000,
		Shards:   2,
		Conns:    2,
		Pipeline: 16,
		Duration: 300 * time.Millisecond,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("tables = %d, want 1", len(tables))
	}
	byName := map[string]BenchResult{}
	for _, r := range results {
		byName[r.Name] = r
	}
	for _, name := range []string{"trace/none", "trace/off", "trace/1pct", "trace/100pct"} {
		r, ok := byName[name]
		if !ok || r.OpsPerSec <= 0 {
			t.Errorf("%s = %+v, want positive throughput", name, r)
		}
	}
	gate, ok := byName["trace_overhead/off"]
	if !ok {
		t.Fatal("gating trace_overhead/off result missing")
	}
	if gate.MaxDrop != 0.02 {
		t.Errorf("gate MaxDrop = %g, want 0.02", gate.MaxDrop)
	}
	if gate.OpsPerSec <= 0 {
		t.Errorf("gate ratio = %g, want positive", gate.OpsPerSec)
	}
}
