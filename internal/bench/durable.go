package bench

import (
	"fmt"
	"os"
	"sync"
	"time"

	lix "github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

// DurableBenchConfig sizes the durability benchmark (lixbench -durable).
type DurableBenchConfig struct {
	// N is the preloaded dataset size (checkpointed before measuring).
	N int `json:"n"`
	// Ops is the measured insert count under FsyncNever/FsyncInterval;
	// FsyncAlways runs Ops/50 (min 200) since each op pays a real fsync.
	Ops int `json:"ops"`
	// Workers is the concurrent writer count (group commit batches their
	// fsyncs).
	Workers int `json:"workers"`
	// Shards is the shard count of the durable index (0 = unsharded).
	Shards int `json:"shards"`
	// Policies lists the fsync policies to measure (empty = all three).
	Policies []lix.SyncPolicy `json:"-"`
	// Seed drives key generation.
	Seed int64 `json:"seed"`
}

// DefaultDurableBenchConfig is the scale used for the DESIGN.md table.
func DefaultDurableBenchConfig() DurableBenchConfig {
	return DurableBenchConfig{N: 500_000, Ops: 100_000, Workers: 8, Shards: 8, Seed: 7}
}

// DurableRow is one measured fsync-policy cell.
type DurableRow struct {
	Policy       string  `json:"policy"`
	InsertOpsSec float64 `json:"insert_ops_per_sec"`
	Fsyncs       uint64  `json:"fsyncs"`
	RecoverMs    float64 `json:"recover_ms"`
	RecoverRec   int     `json:"recover_records"`
	RecRecSec    float64 `json:"recover_records_per_sec"`
}

// RunDurable measures, for each fsync policy: durable insert throughput
// under Workers concurrent writers (every insert traverses the WAL; under
// FsyncAlways each also waits for a group-committed fsync), then kills
// the store without a checkpoint and measures cold-start recovery —
// snapshot load plus WAL replay plus index rebuild. It returns the
// rendered table and regression-harness results named
// durable/insert/<policy> and durable/recover/<policy>.
func RunDurable(cfg DurableBenchConfig) ([]*Table, []BenchResult, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	policies := cfg.Policies
	if len(policies) == 0 {
		policies = []lix.SyncPolicy{lix.FsyncNever, lix.FsyncInterval, lix.FsyncAlways}
	}
	keys := mustKeys(dataset.Uniform, cfg.N, cfg.Seed)
	recs := dataset.KV(keys)

	t := &Table{
		ID: "DUR",
		Title: fmt.Sprintf("Durable insert throughput and cold-start recovery, %d workers, %d shards, n=%d",
			cfg.Workers, cfg.Shards, cfg.N),
		Columns: []string{"fsync", "insert Kops/s", "fsyncs", "recover ms", "recover Mrec/s"},
	}
	var results []BenchResult
	for _, policy := range policies {
		row, err := runDurablePolicy(cfg, policy, recs)
		if err != nil {
			return nil, nil, err
		}
		t.AddRow(row.Policy, row.InsertOpsSec/1e3, row.Fsyncs, row.RecoverMs, row.RecRecSec/1e6)
		results = append(results,
			BenchResult{Name: "durable/insert/" + row.Policy, OpsPerSec: row.InsertOpsSec},
			BenchResult{Name: "durable/recover/" + row.Policy, OpsPerSec: row.RecRecSec},
		)
	}
	return []*Table{t}, results, nil
}

func runDurablePolicy(cfg DurableBenchConfig, policy lix.SyncPolicy, recs []core.KV) (DurableRow, error) {
	dir, err := os.MkdirTemp("", "lixbench-durable-*")
	if err != nil {
		return DurableRow{}, err
	}
	defer os.RemoveAll(dir)

	ops := cfg.Ops
	if policy == lix.FsyncAlways {
		// Every op waits on an fsync (amortized by group commit); run
		// fewer so the benchmark stays bounded on slow disks.
		if ops = ops / 50; ops < 200 {
			ops = 200
		}
	}
	opts := lix.DurableOptions{
		Shards:          cfg.Shards,
		Fsync:           policy,
		CheckpointEvery: -1, // measure the WAL path, not checkpoint scheduling
	}
	d, err := lix.NewDurable(dir, recs, opts)
	if err != nil {
		return DurableRow{}, err
	}

	// Concurrent durable inserts of fresh keys (above the preload range).
	var wg sync.WaitGroup
	perWorker := ops / cfg.Workers
	if perWorker == 0 {
		perWorker = 1
	}
	base := ^core.Key(0) / 2
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := newRand(cfg.Seed + 17*int64(w))
			for o := 0; o < perWorker; o++ {
				k := base + core.Key(r.Int63())
				if err := d.Put(k, core.Value(o)); err != nil {
					return // sticky error surfaces via d.Err below
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := d.Err(); err != nil {
		d.Close()
		return DurableRow{}, err
	}
	row := DurableRow{
		Policy:       policy.String(),
		InsertOpsSec: float64(perWorker*cfg.Workers) / elapsed.Seconds(),
		Fsyncs:       d.Fsyncs(),
	}

	// Kill without a checkpoint, then measure cold-start recovery: the
	// WAL suffix replays over the seed snapshot and the index rebuilds.
	if err := d.Crash(); err != nil {
		return DurableRow{}, err
	}
	r, err := lix.Open(dir, lix.DurableOptions{Fsync: policy, CheckpointEvery: -1})
	if err != nil {
		return DurableRow{}, err
	}
	defer r.Close()
	info := r.RecoveryInfo()
	row.RecoverMs = float64(info.Elapsed.Microseconds()) / 1e3
	row.RecoverRec = info.SnapshotRecs + info.WALRecs
	if s := info.Elapsed.Seconds(); s > 0 {
		row.RecRecSec = float64(row.RecoverRec) / s
	}
	return row, nil
}
