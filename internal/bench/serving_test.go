package bench

import (
	"strings"
	"testing"
)

// TestRunServingSmoke runs the serving benchmark at toy scale: every
// system must produce a positive throughput for both workloads.
func TestRunServingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("serving smoke benchmark skipped in -short mode")
	}
	cfg := ServingConfig{N: 2000, OpsPerWorker: 500, Workers: 2, Shards: 4, Seed: 3}
	tables, rows, err := RunServing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("tables = %d, want 1", len(tables))
	}
	if want := 4 * 2; len(rows) != want { // 4 systems x 2 workloads
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Mops <= 0 {
			t.Fatalf("%s/%s: Mops = %v, want > 0", r.System, r.Workload, r.Mops)
		}
	}
	f := ServingBenchFile("test", cfg, rows)
	if len(f.Results) != len(rows) {
		t.Fatalf("bench file results = %d, want %d", len(f.Results), len(rows))
	}
}

func TestCompareBenchFiles(t *testing.T) {
	old := BenchFile{Rev: "a", Results: []BenchResult{
		{Name: "serving/95/x", OpsPerSec: 100},
		{Name: "serving/95/y", OpsPerSec: 100},
		{Name: "serving/95/gone", OpsPerSec: 50},
		{Name: "serving/95/zero", OpsPerSec: 0},
	}}
	cur := BenchFile{Rev: "b", Results: []BenchResult{
		{Name: "serving/95/x", OpsPerSec: 80},   // -20%: regression at 15%
		{Name: "serving/95/y", OpsPerSec: 90},   // -10%: within threshold
		{Name: "serving/95/new", OpsPerSec: 10}, // no baseline
		{Name: "serving/95/zero", OpsPerSec: 10},
	}}
	regs, notes := CompareBenchFiles(old, cur, 0.15)
	if len(regs) != 1 || !strings.Contains(regs[0], "serving/95/x") {
		t.Fatalf("regressions = %v, want exactly serving/95/x", regs)
	}
	joined := strings.Join(notes, "\n")
	for _, want := range []string{"serving/95/y", "no baseline", "missing from new run", "baseline is zero"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("notes missing %q:\n%s", want, joined)
		}
	}
	// At a looser threshold the -20% drop is acceptable.
	regs, _ = CompareBenchFiles(old, cur, 0.25)
	if len(regs) != 0 {
		t.Fatalf("regressions at 25%% threshold = %v, want none", regs)
	}
}

// TestCompareThresholdBoundary pins the gate arithmetic the now-blocking
// CI job relies on: the comparison is strict (change < -threshold), so a
// drop landing exactly on the threshold is tolerated, anything past it
// fails, and improvements never trip it. The boundary case uses a
// binary-exact threshold (0.25) so it pins semantics, not float rounding.
func TestCompareThresholdBoundary(t *testing.T) {
	base := BenchFile{Rev: "a", Results: []BenchResult{{Name: "x", OpsPerSec: 1024}}}
	cases := []struct {
		newOps float64
		reg    bool
	}{
		{768, false}, // exactly -25%: change == -threshold, not < — passes
		{769, false},
		{767, true}, // one tick past the line
		{512, true},
		{1024, false},
		{2048, false}, // improvement
	}
	for _, c := range cases {
		cur := BenchFile{Rev: "b", Results: []BenchResult{{Name: "x", OpsPerSec: c.newOps}}}
		regs, _ := CompareBenchFiles(base, cur, 0.25)
		if got := len(regs) > 0; got != c.reg {
			t.Errorf("1024 -> %g ops/s: regression=%v, want %v (%v)", c.newOps, got, c.reg, regs)
		}
	}
}

// TestMergeResultsReplacesByName pins the bench-file merge semantics a
// repeated lixbench mode relies on: same-named results are replaced in
// place (latest run wins, constraints included), new names append, and
// no duplicates survive — CompareBenchFiles resolves names by map, so a
// duplicate would pair old-vs-new and ratio references arbitrarily.
func TestMergeResultsReplacesByName(t *testing.T) {
	f := BenchFile{Results: []BenchResult{
		{Name: "a", OpsPerSec: 1},
		{Name: "b", OpsPerSec: 2},
	}}
	f.MergeResults([]BenchResult{
		{Name: "b", OpsPerSec: 20, MinRatioOf: "a", MinRatio: 0.5},
		{Name: "c", OpsPerSec: 3},
	})
	if len(f.Results) != 3 {
		t.Fatalf("got %d results, want 3: %+v", len(f.Results), f.Results)
	}
	if r := f.Results[1]; r.Name != "b" || r.OpsPerSec != 20 || r.MinRatioOf != "a" {
		t.Fatalf("replaced entry = %+v, want updated b in place", r)
	}
	if r := f.Results[2]; r.Name != "c" || r.OpsPerSec != 3 {
		t.Fatalf("appended entry = %+v, want c", r)
	}
}

// TestCompareRatioGate pins the blocking intra-run ratio constraint: a
// result declaring MinRatioOf/MinRatio fails the comparison whenever the
// new run measures it below the floor times its sibling — even when it
// improved against the baseline — and passes at or above the floor.
func TestCompareRatioGate(t *testing.T) {
	gated := func(batched, looped, floor float64) BenchFile {
		return BenchFile{Rev: "b", Results: []BenchResult{
			{Name: "batch/s/lookup/looped", OpsPerSec: looped},
			{Name: "batch/s/lookup/b16", OpsPerSec: batched,
				MinRatioOf: "batch/s/lookup/looped", MinRatio: floor},
		}}
	}
	old := gated(100, 100, 0.9)

	cases := []struct {
		name    string
		batched float64
		reg     bool
	}{
		{"above floor", 95, false},
		{"exactly at floor", 90, false},
		{"below floor", 89, true},
		{"well below floor", 42, true},
	}
	for _, c := range cases {
		regs, _ := CompareBenchFiles(old, gated(c.batched, 100, 0.9), 0.5)
		if got := len(regs) > 0; got != c.reg {
			t.Errorf("%s (%g vs 100): regression=%v, want %v (%v)", c.name, c.batched, got, c.reg, regs)
		}
	}

	// Improvement over baseline does not excuse a floor violation: the
	// batched side doubles its own history but still trails looped.
	regs, _ := CompareBenchFiles(old, gated(200, 300, 0.9), 0.5)
	if len(regs) != 1 || !strings.Contains(regs[0], "floor") {
		t.Fatalf("floor violation with improved absolute throughput: regs = %v", regs)
	}

	// A dangling reference is itself a blocking failure, not a silent skip.
	dangling := BenchFile{Rev: "b", Results: []BenchResult{
		{Name: "batch/s/lookup/b16", OpsPerSec: 100,
			MinRatioOf: "batch/s/lookup/looped", MinRatio: 0.9},
	}}
	regs, _ = CompareBenchFiles(BenchFile{}, dangling, 0.5)
	if len(regs) != 1 || !strings.Contains(regs[0], "missing from new run") {
		t.Fatalf("dangling ratio reference: regs = %v", regs)
	}

	// A baseline-side constraint still binds when the new run omits it.
	oldOnly := BenchFile{Rev: "a", Results: []BenchResult{
		{Name: "batch/s/lookup/looped", OpsPerSec: 100},
		{Name: "batch/s/lookup/b16", OpsPerSec: 100,
			MinRatioOf: "batch/s/lookup/looped", MinRatio: 0.9},
	}}
	shed := BenchFile{Rev: "b", Results: []BenchResult{
		{Name: "batch/s/lookup/looped", OpsPerSec: 100},
		{Name: "batch/s/lookup/b16", OpsPerSec: 50},
	}}
	regs, _ = CompareBenchFiles(oldOnly, shed, 0.9)
	if len(regs) != 1 || !strings.Contains(regs[0], "floor") {
		t.Fatalf("inherited baseline constraint: regs = %v", regs)
	}
}
