package bench

import (
	"strings"
	"testing"
)

// TestRunServingSmoke runs the serving benchmark at toy scale: every
// system must produce a positive throughput for both workloads.
func TestRunServingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("serving smoke benchmark skipped in -short mode")
	}
	cfg := ServingConfig{N: 2000, OpsPerWorker: 500, Workers: 2, Shards: 4, Seed: 3}
	tables, rows, err := RunServing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("tables = %d, want 1", len(tables))
	}
	if want := 4 * 2; len(rows) != want { // 4 systems x 2 workloads
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Mops <= 0 {
			t.Fatalf("%s/%s: Mops = %v, want > 0", r.System, r.Workload, r.Mops)
		}
	}
	f := ServingBenchFile("test", cfg, rows)
	if len(f.Results) != len(rows) {
		t.Fatalf("bench file results = %d, want %d", len(f.Results), len(rows))
	}
}

func TestCompareBenchFiles(t *testing.T) {
	old := BenchFile{Rev: "a", Results: []BenchResult{
		{Name: "serving/95/x", OpsPerSec: 100},
		{Name: "serving/95/y", OpsPerSec: 100},
		{Name: "serving/95/gone", OpsPerSec: 50},
		{Name: "serving/95/zero", OpsPerSec: 0},
	}}
	cur := BenchFile{Rev: "b", Results: []BenchResult{
		{Name: "serving/95/x", OpsPerSec: 80},   // -20%: regression at 15%
		{Name: "serving/95/y", OpsPerSec: 90},   // -10%: within threshold
		{Name: "serving/95/new", OpsPerSec: 10}, // no baseline
		{Name: "serving/95/zero", OpsPerSec: 10},
	}}
	regs, notes := CompareBenchFiles(old, cur, 0.15)
	if len(regs) != 1 || !strings.Contains(regs[0], "serving/95/x") {
		t.Fatalf("regressions = %v, want exactly serving/95/x", regs)
	}
	joined := strings.Join(notes, "\n")
	for _, want := range []string{"serving/95/y", "no baseline", "missing from new run", "baseline is zero"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("notes missing %q:\n%s", want, joined)
		}
	}
	// At a looser threshold the -20% drop is acceptable.
	regs, _ = CompareBenchFiles(old, cur, 0.25)
	if len(regs) != 0 {
		t.Fatalf("regressions at 25%% threshold = %v, want none", regs)
	}
}

// TestCompareThresholdBoundary pins the gate arithmetic the now-blocking
// CI job relies on: the comparison is strict (change < -threshold), so a
// drop landing exactly on the threshold is tolerated, anything past it
// fails, and improvements never trip it. The boundary case uses a
// binary-exact threshold (0.25) so it pins semantics, not float rounding.
func TestCompareThresholdBoundary(t *testing.T) {
	base := BenchFile{Rev: "a", Results: []BenchResult{{Name: "x", OpsPerSec: 1024}}}
	cases := []struct {
		newOps float64
		reg    bool
	}{
		{768, false}, // exactly -25%: change == -threshold, not < — passes
		{769, false},
		{767, true}, // one tick past the line
		{512, true},
		{1024, false},
		{2048, false}, // improvement
	}
	for _, c := range cases {
		cur := BenchFile{Rev: "b", Results: []BenchResult{{Name: "x", OpsPerSec: c.newOps}}}
		regs, _ := CompareBenchFiles(base, cur, 0.25)
		if got := len(regs) > 0; got != c.reg {
			t.Errorf("1024 -> %g ops/s: regression=%v, want %v (%v)", c.newOps, got, c.reg, regs)
		}
	}
}
