package bench

import (
	"fmt"
	"os"
	"time"

	lix "github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

// BatchConfig sizes the batched-vs-looped throughput benchmark (lixbench
// -batch).
type BatchConfig struct {
	// N is the preloaded dataset size.
	N int `json:"n"`
	// Ops is the operation count per measurement.
	Ops int `json:"ops"`
	// Sizes are the batch sizes measured (records per batch).
	Sizes []int `json:"sizes"`
	// Shards is the shard count of the layered systems.
	Shards int `json:"shards"`
	// Seed drives key generation.
	Seed int64 `json:"seed"`
}

// batchSystem is one system under test. build returns the assembled stack
// plus a cleanup func; durable reports whether mutations pay fsyncs
// (which caps the looped-insert op count).
type batchSystem struct {
	name    string
	durable bool
	build   func(recs []core.KV) (*lix.Stack, func(), error)
}

func batchSystems(cfg BatchConfig) []batchSystem {
	return []batchSystem{
		{
			name: fmt.Sprintf("sharded(%d)", cfg.Shards),
			build: func(recs []core.KV) (*lix.Stack, func(), error) {
				s, err := lix.NewStack(recs, lix.StackConfig{Shards: cfg.Shards})
				if err != nil {
					return nil, nil, err
				}
				return s, func() { s.Close() }, nil
			},
		},
		{
			// The headline case: under FsyncAlways a batch is one WAL frame
			// group and one group commit per touched segment, so throughput
			// should scale roughly linearly with batch size.
			name:    "durable-fsync",
			durable: true,
			build: func(recs []core.KV) (*lix.Stack, func(), error) {
				dir, err := os.MkdirTemp("", "lixbench-batch-*")
				if err != nil {
					return nil, nil, err
				}
				s, err := lix.NewStack(recs, lix.StackConfig{
					Dir: dir, Shards: cfg.Shards,
					Fsync: lix.FsyncAlways, CheckpointEvery: -1,
				})
				if err != nil {
					os.RemoveAll(dir)
					return nil, nil, err
				}
				return s, func() { s.Close(); os.RemoveAll(dir) }, nil
			},
		},
	}
}

// loopedInsertCap bounds the looped durable-insert measurement: every
// looped insert under FsyncAlways pays a full fsync, so the loop is
// sampled rather than run at full op count.
const loopedInsertCap = 1000

// lookupTrials is the best-of count for read measurements. Lookups are
// idempotent, so repeating the trial and keeping the fastest filters out
// scheduler noise that would otherwise trip the 15% regression gate.
const lookupTrials = 3

// insertTrials is the best-of count for write measurements; each trial
// rebuilds the stack, so this is kept lower than lookupTrials.
const insertTrials = 3

// minMeasure is the floor on a single read trial: at quick CI scale one
// pass over the op count finishes in ~1ms, far too short to average out
// scheduler noise, so trials repeat the pass until this much time passed.
const minMeasure = 50 * time.Millisecond

func bestOf(n int, trial func() float64) float64 {
	best := 0.0
	for i := 0; i < n; i++ {
		if v := trial(); v > best {
			best = v
		}
	}
	return best
}

// timed repeats one pass of opsPerPass operations until minMeasure has
// elapsed and returns the aggregate ops/s.
func timed(opsPerPass int, pass func()) float64 {
	start := time.Now()
	total := 0
	for {
		pass()
		total += opsPerPass
		if el := time.Since(start); el >= minMeasure {
			return opsPerSec(total, el)
		}
	}
}

// RunBatch measures batched vs looped insert and lookup throughput for
// each configured batch size, on an in-memory sharded stack and on a
// durable FsyncAlways stack. It returns rendered tables plus regression
// results named batch/<system>/<op>/{looped,b<size>}.
func RunBatch(cfg BatchConfig) ([]*Table, []BenchResult, error) {
	if cfg.N <= 0 {
		cfg.N = 1_000_000
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 100_000
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []int{16, 256, 1024}
	}
	keys := mustKeys(dataset.Uniform, cfg.N, cfg.Seed)
	recs := dataset.KV(keys)
	// Fresh keys (absent from the preload) feed the insert measurements.
	freshKeys := mustKeys(dataset.Uniform, cfg.Ops, cfg.Seed+1)
	fresh := make([]core.KV, len(freshKeys))
	for i, k := range freshKeys {
		fresh[i] = core.KV{Key: k + 1, Value: core.Value(i)}
	}

	var tables []*Table
	var results []BenchResult
	for _, sys := range batchSystems(cfg) {
		t := &Table{
			ID: "BATCH",
			Title: fmt.Sprintf("Batched vs looped ops, %s, n=%d, %d ops (Kops/s)",
				sys.name, cfg.N, cfg.Ops),
			Columns: []string{"op", "looped Kops", "batch size", "batched Kops", "speedup", "fsyncs looped/batched"},
		}

		// Insert measurements mutate, so every trial gets a fresh stack and
		// the fastest trial is kept. measureInsert returns (ops/s, fsyncs
		// issued during one trial).
		measureInsert := func(nOps int, run func(s *lix.Stack)) (float64, uint64, error) {
			best, fs := 0.0, uint64(0)
			for trial := 0; trial < insertTrials; trial++ {
				s, cleanup, err := sys.build(recs)
				if err != nil {
					return 0, 0, fmt.Errorf("bench: build %s: %w", sys.name, err)
				}
				base := fsyncs(s)
				start := time.Now()
				run(s)
				v := opsPerSec(nOps, time.Since(start))
				fs = fsyncs(s) - base
				cleanup()
				if v > best {
					best = v
				}
			}
			return best, fs, nil
		}

		insOps := cfg.Ops
		if sys.durable && insOps > loopedInsertCap {
			insOps = loopedInsertCap
		}
		loopedIns, loopInsFsyncs, err := measureInsert(insOps, func(s *lix.Stack) {
			for _, r := range fresh[:insOps] {
				s.Insert(r.Key, r.Value)
			}
		})
		if err != nil {
			return nil, nil, err
		}

		// All read measurements share one preloaded stack: lookups never
		// mutate, and the preload (not the insert history) is what they hit.
		rs, rcleanup, err := sys.build(recs)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: build %s: %w", sys.name, err)
		}
		loopedGet := bestOf(lookupTrials, func() float64 {
			return timed(cfg.Ops, func() {
				for i := 0; i < cfg.Ops; i++ {
					rs.Get(keys[i%len(keys)])
				}
			})
		})
		results = append(results,
			BenchResult{Name: fmt.Sprintf("batch/%s/insert/looped", sys.name), OpsPerSec: loopedIns},
			BenchResult{Name: fmt.Sprintf("batch/%s/lookup/looped", sys.name), OpsPerSec: loopedGet},
		)

		for _, size := range cfg.Sizes {
			size := size
			batchedIns, batchInsFsyncs, err := measureInsert(len(fresh), func(s *lix.Stack) {
				for off := 0; off < len(fresh); off += size {
					end := off + size
					if end > len(fresh) {
						end = len(fresh)
					}
					s.InsertBatch(fresh[off:end])
				}
			})
			if err != nil {
				return nil, nil, err
			}

			// The batched side measures the allocation-free LookupBatchInto
			// with reused buffers — the looped side's Get returns results on
			// the stack, so comparing against allocating LookupBatch would
			// charge the batch path for an API artifact, not batching cost.
			lookupKeys := make([]core.Key, size)
			lookupVals := make([]core.Value, size)
			lookupOks := make([]bool, size)
			batchedGet := bestOf(lookupTrials, func() float64 {
				return timed(cfg.Ops, func() {
					for off := 0; off < cfg.Ops; off += size {
						for i := range lookupKeys {
							lookupKeys[i] = keys[(off+i)%len(keys)]
						}
						rs.LookupBatchInto(lookupKeys, lookupVals, lookupOks)
					}
				})
			})

			// Every batched result carries a blocking intra-run floor
			// against its looped sibling — the "batch >= looped" promise
			// with headroom for single-threaded runner noise. Lookups
			// measure ~1.0-1.1x with small jitter (floor 0.9, vs the 0.42x
			// the old grouping path regressed to). In-memory inserts churn
			// the allocator as the trees grow, which widens their jitter to
			// +/-15% around ~1.0, so their floor is 0.8 (the regression
			// class it guards was 0.52-0.76x). Durable batched inserts
			// amortize fsyncs 10-100x, so their floor is a hard 2x.
			insFloor := 0.8
			if sys.durable {
				insFloor = 2.0
			}
			results = append(results,
				BenchResult{
					Name: fmt.Sprintf("batch/%s/insert/b%d", sys.name, size), OpsPerSec: batchedIns,
					MinRatioOf: fmt.Sprintf("batch/%s/insert/looped", sys.name), MinRatio: insFloor,
				},
				BenchResult{
					Name: fmt.Sprintf("batch/%s/lookup/b%d", sys.name, size), OpsPerSec: batchedGet,
					MinRatioOf: fmt.Sprintf("batch/%s/lookup/looped", sys.name), MinRatio: 0.9,
				},
			)
			fsyncCell := "-"
			if sys.durable {
				fsyncCell = fmt.Sprintf("%d/%d (per %d/%d ops)", loopInsFsyncs, batchInsFsyncs, insOps, len(fresh))
			}
			t.AddRow("insert", loopedIns/1e3, size, batchedIns/1e3, batchedIns/loopedIns, fsyncCell)
			t.AddRow("lookup", loopedGet/1e3, size, batchedGet/1e3, batchedGet/loopedGet, "-")
		}
		rcleanup()
		tables = append(tables, t)
	}
	return tables, results, nil
}

func fsyncs(s *lix.Stack) uint64 {
	if d := s.Durable(); d != nil {
		return d.Fsyncs()
	}
	return 0
}

func opsPerSec(n int, d time.Duration) float64 {
	if d <= 0 {
		d = time.Nanosecond
	}
	return float64(n) / d.Seconds()
}
