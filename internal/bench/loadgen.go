package bench

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
	"github.com/lix-go/lix/internal/wire"
)

// LoadgenConfig sizes the wire-protocol load generator (lixbench
// -serve-addr): a client-side benchmark that drives a running lixserve
// over TCP with pipelined request groups and measures end-to-end
// throughput and per-request latency percentiles.
type LoadgenConfig struct {
	// Addr is the server address ("host:port").
	Addr string `json:"addr"`
	// Conns is the parallel connection count.
	Conns int `json:"conns"`
	// Pipeline is the number of requests sent per pipelined group; 1
	// degenerates to one round-trip per request.
	Pipeline int `json:"pipeline"`
	// TargetQPS paces the senders to this aggregate request rate
	// (open-loop: senders keep pace even while replies are outstanding).
	// 0 runs closed-loop at maximum throughput.
	TargetQPS float64 `json:"target_qps"`
	// Duration is the measured send window.
	Duration time.Duration `json:"duration"`
	// ReadFrac is the GET fraction of the workload; the rest are SETs.
	ReadFrac float64 `json:"read_frac"`
	// Keys is the key-space size; keys are drawn uniformly from
	// [0, 16*Keys) with the generator stride, matching lixserve -n preload.
	Keys int `json:"keys"`
	// Seed drives key choice and op mixing.
	Seed int64 `json:"seed"`
}

// DefaultLoadgenConfig is the scale used by the CI smoke run.
func DefaultLoadgenConfig() LoadgenConfig {
	return LoadgenConfig{
		Conns:    4,
		Pipeline: 32,
		Duration: 5 * time.Second,
		ReadFrac: 0.95,
		Keys:     1_000_000,
		Seed:     7,
	}
}

func (c LoadgenConfig) withDefaults() LoadgenConfig {
	d := DefaultLoadgenConfig()
	if c.Conns <= 0 {
		c.Conns = d.Conns
	}
	if c.Pipeline <= 0 {
		c.Pipeline = d.Pipeline
	}
	if c.Duration <= 0 {
		c.Duration = d.Duration
	}
	if c.ReadFrac <= 0 || c.ReadFrac > 1 {
		c.ReadFrac = d.ReadFrac
	}
	if c.Keys <= 0 {
		c.Keys = d.Keys
	}
	return c
}

// LoadgenResult is one measured load-generation run.
type LoadgenResult struct {
	Ops       uint64        `json:"ops"`
	Errors    uint64        `json:"errors"`
	Elapsed   time.Duration `json:"elapsed"`
	OpsPerSec float64       `json:"ops_per_sec"`
	P50       time.Duration `json:"p50"`
	P99       time.Duration `json:"p99"`
	P999      time.Duration `json:"p999"`
}

// inflight is one pipelined group in flight: its send timestamp and size,
// passed from the sender to the receiver goroutine of a connection.
type inflight struct {
	sent time.Time
	n    int
}

// RunLoadgen drives the server at cfg.Addr with cfg.Conns connections,
// each running a decoupled sender/receiver pair: the sender paces
// pipelined groups (open-loop under TargetQPS — it does not wait for
// replies), the receiver drains replies and records one latency sample
// per request into a shared obs histogram, from which the percentile
// columns are read. The workload is ReadFrac GETs / (1-ReadFrac) SETs
// over a uniform key space.
func RunLoadgen(cfg LoadgenConfig) ([]*Table, LoadgenResult, []BenchResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Addr == "" {
		return nil, LoadgenResult{}, nil, fmt.Errorf("loadgen: no server address")
	}

	lat := &obs.Histogram{} // per-request round-trip latencies, all conns
	var ops, errs atomic.Uint64
	var wg sync.WaitGroup
	connErrs := make(chan error, cfg.Conns)

	// Per-sender group interval under TargetQPS pacing.
	var interval time.Duration
	if cfg.TargetQPS > 0 {
		perConn := cfg.TargetQPS / float64(cfg.Conns)
		interval = time.Duration(float64(cfg.Pipeline) / perConn * float64(time.Second))
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for id := 0; id < cfg.Conns; id++ {
		conn, err := net.DialTimeout("tcp", cfg.Addr, 5*time.Second)
		if err != nil {
			return nil, LoadgenResult{}, nil, fmt.Errorf("loadgen: dial %s: %w", cfg.Addr, err)
		}
		wg.Add(1)
		go func(id int, conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			if err := driveConn(conn, cfg, id, deadline, interval, lat, &ops, &errs); err != nil {
				connErrs <- fmt.Errorf("conn %d: %w", id, err)
			}
		}(id, conn)
	}
	wg.Wait()
	close(connErrs)
	for err := range connErrs {
		return nil, LoadgenResult{}, nil, err
	}
	elapsed := time.Since(start)

	res := LoadgenResult{
		Ops:       ops.Load(),
		Errors:    errs.Load(),
		Elapsed:   elapsed,
		OpsPerSec: float64(ops.Load()) / elapsed.Seconds(),
		P50:       time.Duration(lat.Quantile(0.5)),
		P99:       time.Duration(lat.Quantile(0.99)),
		P999:      time.Duration(lat.Quantile(0.999)),
	}

	workload := fmt.Sprintf("%.0f-%.0f", cfg.ReadFrac*100, (1-cfg.ReadFrac)*100)
	t := &Table{
		ID:      "L1",
		Title:   fmt.Sprintf("Wire serving: %s over %d conns, pipeline depth %d", workload, cfg.Conns, cfg.Pipeline),
		Columns: []string{"mode", "ops", "errors", "Kops/s", "p50", "p99", "p999"},
	}
	mode := "closed-loop"
	if cfg.TargetQPS > 0 {
		mode = fmt.Sprintf("open-loop %.0f qps", cfg.TargetQPS)
	}
	t.AddRow(mode, res.Ops, res.Errors, fmt.Sprintf("%.1f", res.OpsPerSec/1e3),
		res.P50.Round(time.Microsecond), res.P99.Round(time.Microsecond), res.P999.Round(time.Microsecond))

	name := fmt.Sprintf("serve/%s/pipeline=%d", workload, cfg.Pipeline)
	bres := []BenchResult{{
		Name:      name,
		OpsPerSec: res.OpsPerSec,
		P50NS:     uint64(res.P50),
		P99NS:     uint64(res.P99),
		P999NS:    uint64(res.P999),
	}}
	return []*Table{t}, res, bres, nil
}

// driveConn runs one connection's sender/receiver pair until deadline.
func driveConn(conn net.Conn, cfg LoadgenConfig, id int, deadline time.Time,
	interval time.Duration, lat *obs.Histogram, ops, errs *atomic.Uint64) error {

	// The sender never blocks on replies; up to cap(pending) groups ride
	// the connection at once. The channel doubles as the handoff of send
	// timestamps to the receiver.
	pending := make(chan inflight, 64)
	sendErr := make(chan error, 1)

	go func() {
		defer close(pending)
		w := wire.NewWriter(conn, 0)
		r := rand.New(rand.NewSource(cfg.Seed + int64(id)*101))
		key := func() core.Key { return core.Key(r.Intn(cfg.Keys * 16)) }
		next := time.Now()
		var m wire.Msg
		for time.Now().Before(deadline) {
			if interval > 0 {
				// Open loop: each group has a schedule slot; a slow server
				// does not slow the schedule down, it just queues.
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				next = next.Add(interval)
			}
			sent := time.Now()
			for i := 0; i < cfg.Pipeline; i++ {
				if r.Float64() < cfg.ReadFrac {
					m = wire.Msg{Op: wire.OpGet, Key: key()}
				} else {
					m = wire.Msg{Op: wire.OpSet, Key: key(), Val: core.Value(i)}
				}
				if err := w.Write(&m); err != nil {
					sendErr <- err
					return
				}
			}
			if err := w.Flush(); err != nil {
				sendErr <- err
				return
			}
			select {
			case pending <- inflight{sent: sent, n: cfg.Pipeline}:
			case <-time.After(time.Until(deadline)):
				return // receiver wedged past the deadline; stop sending
			}
		}
	}()

	rd := wire.NewReader(conn, 0)
	conn.SetReadDeadline(deadline.Add(10 * time.Second))
	for g := range pending {
		for i := 0; i < g.n; i++ {
			rep, err := rd.Read()
			if err != nil {
				return err
			}
			if rep.Op == wire.RErr {
				errs.Add(1)
			}
			lat.Observe(uint64(time.Since(g.sent)))
			ops.Add(1)
		}
	}
	select {
	case err := <-sendErr:
		return err
	default:
	}
	return nil
}
