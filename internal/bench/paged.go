package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
	"github.com/lix-go/lix/internal/page"
)

// PagedConfig sizes the paged-storage benchmark (lixbench -paged): random
// point lookups against the disk-backed indexes, once through a buffer
// pool far smaller than the dataset (cold, every probe faults pages in
// from disk) and once through a pool big enough to hold every page (warm,
// the steady state after the working set is resident).
type PagedConfig struct {
	// N is the bulk-loaded dataset size.
	N int `json:"n"`
	// Lookups is the number of random point lookups per measurement.
	Lookups int `json:"lookups"`
	// ColdFrames is the cold run's buffer-pool frame budget. The default
	// holds well under 1% of the dataset's pages, so the cold run is
	// dominated by page faults and CLOCK evictions.
	ColdFrames int `json:"cold_frames"`
	// Seed drives key generation and probe sampling.
	Seed int64 `json:"seed"`
}

// DefaultPagedConfig is the scale used for the committed baseline.
func DefaultPagedConfig() PagedConfig {
	return PagedConfig{N: 200_000, Lookups: 100_000, ColdFrames: 16, Seed: 7}
}

// pagedBenchIndex is the slice of the paged index API the benchmark
// drives; both *page.BTree and *page.PGM satisfy it.
type pagedBenchIndex interface {
	Get(core.Key) (core.Value, bool)
	PoolStats() page.PoolStats
	Close() error
}

// PagedResultName returns the BenchResult name for one (kind, phase)
// cell, e.g. "paged/paged-btree/lookup/cold".
func PagedResultName(kind, phase string) string {
	return fmt.Sprintf("paged/%s/lookup/%s", kind, phase)
}

// RunPaged measures cold-pool vs warm-pool random-lookup throughput for
// both paged kinds. The warm results carry a blocking intra-run floor —
// warm must be at least 3x cold — which pins the structural promise of
// the buffer pool: serving from resident frames must be far cheaper than
// faulting pages in, on every machine, or caching is buying nothing.
func RunPaged(cfg PagedConfig) ([]*Table, []BenchResult, error) {
	if cfg.ColdFrames <= 0 {
		cfg.ColdFrames = DefaultPagedConfig().ColdFrames
	}
	keys := mustKeys(dataset.Uniform, cfg.N, cfg.Seed)
	recs := dataset.KV(keys)
	r := newRand(cfg.Seed + 101)
	probes := make([]core.Key, cfg.Lookups)
	for i := range probes {
		probes[i] = keys[r.Intn(len(keys))]
	}

	kinds := []struct {
		name string
		bulk func(path string, recs []core.KV, o page.Options) (pagedBenchIndex, error)
		open func(path string, o page.Options) (pagedBenchIndex, error)
	}{
		{
			name: page.KindBTree,
			bulk: func(p string, r []core.KV, o page.Options) (pagedBenchIndex, error) { return page.BulkBTree(p, r, o) },
			open: func(p string, o page.Options) (pagedBenchIndex, error) { return page.OpenBTree(p, o) },
		},
		{
			name: page.KindPGM,
			bulk: func(p string, r []core.KV, o page.Options) (pagedBenchIndex, error) { return page.BulkPGM(p, r, o) },
			open: func(p string, o page.Options) (pagedBenchIndex, error) { return page.OpenPGM(p, o) },
		},
	}

	dir, err := os.MkdirTemp("", "lixbench-paged")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)

	t := &Table{
		ID: "PAGED",
		Title: fmt.Sprintf("Paged lookup throughput, n=%d, cold pool %d frames vs all-resident (Kops/s)",
			cfg.N, cfg.ColdFrames),
		Columns: []string{"kind", "cold Kops", "warm Kops", "warm/cold", "cold miss%", "evictions"},
	}
	var results []BenchResult
	for _, kind := range kinds {
		path := filepath.Join(dir, kind.name+".lpx")
		b, err := kind.bulk(path, recs, page.Options{})
		if err != nil {
			return nil, nil, fmt.Errorf("bench: bulk %s: %w", kind.name, err)
		}
		if err := b.Close(); err != nil {
			return nil, nil, err
		}
		st, err := os.Stat(path)
		if err != nil {
			return nil, nil, err
		}
		// Enough frames for every page in the file plus slack for pages
		// that splits would add (there are none here: lookups only).
		warmFrames := int(st.Size())/page.DefaultPageSize + 16

		cold, err := kind.open(path, page.Options{PoolFrames: cfg.ColdFrames})
		if err != nil {
			return nil, nil, fmt.Errorf("bench: open cold %s: %w", kind.name, err)
		}
		coldRate := pagedLookupRate(cold, probes)
		cs := cold.PoolStats()
		if err := cold.Close(); err != nil {
			return nil, nil, err
		}
		if cs.Evictions == 0 {
			return nil, nil, fmt.Errorf("bench: cold %s run evicted nothing — pool not smaller than dataset", kind.name)
		}

		warm, err := kind.open(path, page.Options{PoolFrames: warmFrames})
		if err != nil {
			return nil, nil, fmt.Errorf("bench: open warm %s: %w", kind.name, err)
		}
		// Unmeasured pass over the exact probe workload: everything the
		// measured loop touches is resident afterwards.
		pagedLookupRate(warm, probes)
		warmRate := pagedLookupRate(warm, probes)
		ws := warm.PoolStats()
		if err := warm.Close(); err != nil {
			return nil, nil, err
		}
		if ws.Evictions > 0 {
			return nil, nil, fmt.Errorf("bench: warm %s run evicted %d pages — pool sized too small", kind.name, ws.Evictions)
		}

		missPct := 100 * float64(cs.Misses) / float64(cs.Hits+cs.Misses)
		t.AddRow(kind.name, coldRate/1e3, warmRate/1e3, warmRate/coldRate, missPct, cs.Evictions)

		coldName := PagedResultName(kind.name, "cold")
		results = append(results,
			BenchResult{Name: coldName, OpsPerSec: coldRate},
			BenchResult{
				Name:       PagedResultName(kind.name, "warm"),
				OpsPerSec:  warmRate,
				MinRatioOf: coldName,
				MinRatio:   3,
			})
	}
	return []*Table{t}, results, nil
}

// pagedLookupRate drives the probe sequence through ix and returns
// lookups per second.
func pagedLookupRate(ix pagedBenchIndex, probes []core.Key) float64 {
	start := time.Now()
	for _, k := range probes {
		ix.Get(k)
	}
	return float64(len(probes)) / time.Since(start).Seconds()
}
