// Package radixspline implements RadixSpline (Kipf et al., aiDM 2020): a
// single-pass learned index consisting of an ε-bounded linear spline over
// the key→position CDF plus a radix table over key prefixes that narrows
// the spline-segment search to a handful of candidates.
//
// Taxonomy: immutable / pure / fixed layout. Compared with the RMI it
// builds in one pass with a hard error bound; compared with the PGM it
// replaces the recursive model hierarchy with a flat radix lookup.
package radixspline

import (
	"fmt"
	"math"
	"math/bits"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/segment"
)

// DefaultEpsilon is the default spline error bound.
const DefaultEpsilon = 32

// DefaultRadixBits is the default radix table width.
const DefaultRadixBits = 18

// Index is an immutable RadixSpline over a sorted record array.
type Index struct {
	recs []core.KV
	keys []core.Key

	// distinct/firstPos are only materialized when duplicate keys or
	// float64 collisions exist (see pgm for the same technique).
	distinct []float64
	firstPos []int32
	nd       int

	segs      []segment.Segment
	firstKeys []float64

	eps   int
	shift uint
	minK  core.Key
	table []int32 // table[p] = first segment with radix(FirstKey) >= p
	n     int
}

// Build constructs a RadixSpline over recs (sorted ascending) with the
// given error bound and radix width (0 selects the defaults). recs is
// retained.
func Build(recs []core.KV, eps, radixBits int) (*Index, error) {
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	if radixBits <= 0 {
		// Scale the table with the data: ~one slot per record, capped.
		radixBits = bits.Len(uint(len(recs)))
		if radixBits > DefaultRadixBits {
			radixBits = DefaultRadixBits
		}
		if radixBits < 8 {
			radixBits = 8
		}
	}
	if radixBits > 28 {
		radixBits = 28
	}
	n := len(recs)
	for i := 1; i < n; i++ {
		if recs[i].Key < recs[i-1].Key {
			return nil, fmt.Errorf("radixspline: input not sorted at %d", i)
		}
	}
	ix := &Index{recs: recs, eps: eps, n: n}
	ix.keys = make([]core.Key, n)
	for i := range recs {
		ix.keys[i] = recs[i].Key
	}
	if n == 0 {
		return ix, nil
	}
	// Dedup at float64 resolution (duplicates collapse to first position).
	distinct := make([]float64, 0, n)
	firstPos := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		x := float64(ix.keys[i])
		if len(distinct) > 0 && x == distinct[len(distinct)-1] {
			continue
		}
		distinct = append(distinct, x)
		firstPos = append(firstPos, int32(i))
	}
	ix.nd = len(distinct)
	if ix.nd < n {
		ix.distinct = distinct
		ix.firstPos = firstPos
	}
	// Single-pass ε-bounded spline (shrinking cone anchored at knots).
	ix.segs = segment.BuildAnchored(distinct, segment.Positions(len(distinct)), float64(eps))
	ix.firstKeys = make([]float64, len(ix.segs))
	for i := range ix.segs {
		ix.firstKeys[i] = ix.segs[i].FirstKey
	}
	// Radix table over (key - minKey) prefixes.
	ix.minK = ix.keys[0]
	span := ix.keys[n-1] - ix.minK
	useful := 64 - bits.LeadingZeros64(span|1)
	shift := useful - radixBits
	if shift < 0 {
		shift = 0
	}
	ix.shift = uint(shift)
	slots := int(span>>ix.shift) + 2
	ix.table = make([]int32, slots+1)
	// Fill: table[p] = first segment index whose radix prefix >= p.
	si := 0
	for p := 0; p <= slots; p++ {
		for si < len(ix.segs) && ix.radix(core.Key(ix.segs[si].FirstKey)) < uint64(p) {
			si++
		}
		ix.table[p] = int32(si)
	}
	return ix, nil
}

func (ix *Index) radix(k core.Key) uint64 {
	if k < ix.minK {
		return 0
	}
	return uint64(k-ix.minK) >> ix.shift
}

// locate returns the spline segment covering key x.
func (ix *Index) locate(k core.Key, x float64) int {
	p := ix.radix(k)
	if p >= uint64(len(ix.table)-1) {
		p = uint64(len(ix.table) - 2)
	}
	lo := int(ix.table[p])
	hi := int(ix.table[p+1])
	if hi < len(ix.segs) {
		hi++ // the covering segment may start before this radix slot
	}
	// Binary search for the last segment with FirstKey <= x in [lo, hi).
	if lo > 0 {
		lo--
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ix.firstKeys[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// LowerBound returns the smallest position i with keys[i] >= k.
func (ix *Index) LowerBound(k core.Key) int {
	if ix.n == 0 {
		return 0
	}
	x := float64(k)
	s := &ix.segs[ix.locate(k, x)]
	var d int
	if x > s.LastKey {
		d = s.EndIdx
	} else {
		pred := int(math.Round(s.Predict(x)))
		lo := core.Clamp(pred-ix.eps-1, s.StartIdx, s.EndIdx)
		hi := core.Clamp(pred+ix.eps+2, lo, s.EndIdx)
		// Count probes of the ε-bounded correction search; the counter only
		// escapes into the recorder when one is installed.
		d = lo
		probes := 0
		for l, h := lo, hi; l < h; {
			probes++
			mid := int(uint(l+h) >> 1)
			if ix.distinctAt(mid) < x {
				l = mid + 1
				d = l
			} else {
				h = mid
				d = h
			}
		}
		if r := core.ActiveSearchRecorder(); r != nil {
			r.RecordSearch(probes, hi-lo)
		}
	}
	if d >= ix.nd {
		return ix.n
	}
	if ix.distinct == nil {
		// Collision-free: one exact comparison resolves float ties between
		// the probe and a stored key.
		if ix.keys[d] < k {
			return d + 1
		}
		return d
	}
	pos := int(ix.firstPos[d])
	end := ix.n
	if d+1 < ix.nd {
		end = int(ix.firstPos[d+1])
	}
	return core.SearchRange(ix.keys, k, pos, end)
}

// distinctAt returns the i-th distinct float key.
func (ix *Index) distinctAt(i int) float64 {
	if ix.distinct == nil {
		return float64(ix.keys[i])
	}
	return ix.distinct[i]
}

// Get returns the value stored for k.
func (ix *Index) Get(k core.Key) (core.Value, bool) {
	i := ix.LowerBound(k)
	if i < ix.n && ix.keys[i] == k {
		return ix.recs[i].Value, true
	}
	return 0, false
}

// Range calls fn for records with lo <= key <= hi ascending; fn returning
// false stops. Returns records visited.
func (ix *Index) Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	i := ix.LowerBound(lo)
	count := 0
	for ; i < ix.n && ix.keys[i] <= hi; i++ {
		count++
		if !fn(ix.keys[i], ix.recs[i].Value) {
			break
		}
	}
	return count
}

// Len returns the number of records.
func (ix *Index) Len() int { return ix.n }

// SegmentCount returns the number of spline segments.
func (ix *Index) SegmentCount() int { return len(ix.segs) }

// Stats reports structure statistics.
func (ix *Index) Stats() core.Stats {
	return core.Stats{
		Name:       "radixspline",
		Count:      ix.n,
		IndexBytes: len(ix.segs)*(segment.SegmentBytes+8) + 4*len(ix.table) + 12*len(ix.distinct),
		DataBytes:  16 * ix.n,
		Height:     2,
		Models:     len(ix.segs),
	}
}
