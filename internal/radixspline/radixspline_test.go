package radixspline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

func TestAllDistributions(t *testing.T) {
	for _, kind := range dataset.Kinds() {
		for _, eps := range []int{8, 64} {
			keys, err := dataset.Keys(kind, 5000, 301)
			if err != nil {
				t.Fatal(err)
			}
			ix, err := Build(dataset.KV(keys), eps, 12)
			if err != nil {
				t.Fatal(err)
			}
			for i, k := range keys {
				v, ok := ix.Get(k)
				if !ok || v != dataset.PayloadFor(k) {
					t.Fatalf("%s eps=%d: Get(%d) failed at %d", kind, eps, k, i)
				}
				if lb := ix.LowerBound(k); lb != i {
					t.Fatalf("%s eps=%d: LowerBound(%d) = %d, want %d", kind, eps, k, lb, i)
				}
			}
		}
	}
}

func TestLowerBoundProperty(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Adversarial, 7000, 302)
	ix, err := Build(dataset.KV(keys), 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := func(probe core.Key) bool {
		return ix.LowerBound(probe) == core.LowerBound(keys, probe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(303))
	for i := 0; i < 3000; i++ {
		probe := keys[r.Intn(len(keys))] + core.Key(r.Intn(5)) - 2
		if ix.LowerBound(probe) != core.LowerBound(keys, probe) {
			t.Fatalf("probe %d mismatch", probe)
		}
	}
}

func TestRangeAndMisc(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Clustered, 6000, 304)
	ix, _ := Build(dataset.KV(keys), 0, 0)
	for _, q := range dataset.Ranges(keys, 30, 0.01, 305) {
		want := core.UpperBound(keys, q.Hi) - core.LowerBound(keys, q.Lo)
		if got := ix.Range(q.Lo, q.Hi, func(core.Key, core.Value) bool { return true }); got != want {
			t.Fatalf("Range = %d, want %d", got, want)
		}
	}
	if ix.SegmentCount() < 1 || ix.Len() != 6000 {
		t.Fatal("accessors")
	}
	st := ix.Stats()
	if st.IndexBytes <= 0 || st.Models != ix.SegmentCount() {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDegenerate(t *testing.T) {
	ix, err := Build(nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ix.LowerBound(5) != 0 {
		t.Fatal("empty")
	}
	if _, err := Build([]core.KV{{Key: 3}, {Key: 1}}, 8, 8); err == nil {
		t.Fatal("unsorted accepted")
	}
	ix, _ = Build([]core.KV{{Key: 7, Value: 9}}, 8, 8)
	if v, ok := ix.Get(7); !ok || v != 9 {
		t.Fatal("single record")
	}
	if ix.LowerBound(6) != 0 || ix.LowerBound(8) != 1 {
		t.Fatal("single record bounds")
	}
	// Dense consecutive keys (radix table stress: span == n).
	var recs []core.KV
	for i := 0; i < 4000; i++ {
		recs = append(recs, core.KV{Key: core.Key(i + 1000), Value: core.Value(i)})
	}
	ix, _ = Build(recs, 4, 20)
	for i := range recs {
		if lb := ix.LowerBound(recs[i].Key); lb != i {
			t.Fatalf("dense LowerBound(%d) = %d", recs[i].Key, lb)
		}
	}
	// Duplicates.
	recs = recs[:0]
	for i := 0; i < 1000; i++ {
		recs = append(recs, core.KV{Key: core.Key(i / 4), Value: core.Value(i)})
	}
	ix, _ = Build(recs, 8, 8)
	for i := 0; i < 250; i++ {
		if lb := ix.LowerBound(core.Key(i)); lb != i*4 {
			t.Fatalf("dup LowerBound(%d) = %d", i, lb)
		}
	}
}

func TestEpsilonControlsSegments(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Lognormal, 30000, 306)
	recs := dataset.KV(keys)
	tight, _ := Build(recs, 4, 16)
	loose, _ := Build(recs, 256, 16)
	if tight.SegmentCount() <= loose.SegmentCount() {
		t.Fatalf("eps=4 segs %d <= eps=256 segs %d", tight.SegmentCount(), loose.SegmentCount())
	}
}
