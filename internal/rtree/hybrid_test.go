package rtree

import (
	"testing"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

func TestHybridPointSearch(t *testing.T) {
	pts, _ := dataset.Points(dataset.SOSMLike, 8000, 2, 2001)
	pvs := dataset.PV(pts)
	tr, err := BulkSTR(32, pvs)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHybrid(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, pv := range pvs {
		found := 0
		n, leaves := h.PointSearch(pv.Point, func(got core.PV) bool {
			if got.Point.Equal(pv.Point) {
				found++
			}
			return true
		})
		if n < 1 || found < 1 {
			t.Fatalf("point %d not found (n=%d leaves=%d)", i, n, leaves)
		}
	}
	if h.LearnedHits == 0 {
		t.Fatal("learned path never used")
	}
	// Misses.
	if n, _ := h.PointSearch(core.Point{-50, -50}, func(core.PV) bool { return true }); n != 0 {
		t.Fatalf("phantom point found: %d", n)
	}
}

func TestHybridFewerLeavesThanTraditional(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 10000, 2, 2002)
	pvs := dataset.PV(pts)
	tr, _ := BulkSTR(32, pvs)
	h, _ := NewHybrid(tr, 64)
	var learned, traditional int
	for i := 0; i < len(pvs); i += 7 {
		_, l := h.PointSearch(pvs[i].Point, func(core.PV) bool { return true })
		_, n := tr.Search(core.RectOf(pvs[i].Point), func(core.PV) bool { return true })
		learned += l
		traditional += n
	}
	if learned >= traditional {
		t.Fatalf("learned path touched %d leaves vs traditional %d nodes", learned, traditional)
	}
}

func TestHybridRangeDelegates(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 3000, 2, 2003)
	pvs := dataset.PV(pts)
	tr, _ := BulkSTR(16, pvs)
	h, _ := NewHybrid(tr, 16)
	for _, q := range dataset.RectQueries(pts, 20, 0.01, 2004) {
		want := 0
		for _, pv := range pvs {
			if q.Contains(pv.Point) {
				want++
			}
		}
		got, _ := h.Search(q, func(core.PV) bool { return true })
		if got != want {
			t.Fatalf("hybrid range: got %d, want %d", got, want)
		}
	}
}

func TestHybridErrors(t *testing.T) {
	if _, err := NewHybrid(New(8), 16); err == nil {
		t.Fatal("empty tree accepted")
	}
	pts, _ := dataset.Points(dataset.SUniform, 100, 4, 2005)
	tr, _ := BulkSTR(16, dataset.PV(pts))
	if _, err := NewHybrid(tr, 1000); err == nil {
		t.Fatal("oversized grid accepted")
	}
	h, err := NewHybrid(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := h.PointSearch(core.Point{1, 2}, func(core.PV) bool { return true }); n != 0 {
		t.Fatal("dim mismatch point search")
	}
	st := h.Stats()
	if st.Name != "learned-rtree" || st.IndexBytes <= tr.Stats().IndexBytes {
		t.Fatalf("stats = %+v", st)
	}
}
