package rtree

import (
	"fmt"

	"github.com/lix-go/lix/internal/core"
)

// CheckInvariants verifies the R-tree's structural invariants: every inner
// entry's rectangle is exactly the MBR of its child (so pruning during
// search and kNN is sound), every leaf point lies inside its enclosing
// entry rectangle, all leaves sit at uniform depth, node entry counts
// respect the capacity bound, and size matches the leaf entry count. It is
// O(n) and intended for tests.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		return fmt.Errorf("rtree: nil root")
	}
	leafDepth := -1
	total := 0
	var walk func(n *node, depth int) error
	walk = func(n *node, depth int) error {
		if len(n.entries) > t.maxEntries {
			return fmt.Errorf("rtree: node holds %d entries > max %d", len(n.entries), t.maxEntries)
		}
		if depth > 0 && len(n.entries) == 0 {
			return fmt.Errorf("rtree: empty non-root node at depth %d", depth)
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				return fmt.Errorf("rtree: leaf at depth %d, expected %d", depth, leafDepth)
			}
			for i := range n.entries {
				e := &n.entries[i]
				if e.child != nil {
					return fmt.Errorf("rtree: leaf entry %d has a child node", i)
				}
				if t.dim > 0 && e.pv.Point.Dim() != t.dim {
					return fmt.Errorf("rtree: leaf point dim %d, tree dim %d", e.pv.Point.Dim(), t.dim)
				}
				if !e.rect.Contains(e.pv.Point) {
					return fmt.Errorf("rtree: leaf entry %d rect does not contain its point", i)
				}
				total++
			}
			return nil
		}
		for i := range n.entries {
			e := &n.entries[i]
			if e.child == nil {
				return fmt.Errorf("rtree: inner entry %d has no child", i)
			}
			if len(e.child.entries) == 0 {
				return fmt.Errorf("rtree: inner entry %d points at an empty node", i)
			}
			mbr := e.child.mbr()
			if !rectEqual(e.rect, mbr) {
				return fmt.Errorf("rtree: inner entry %d rect %v is not its child's MBR %v", i, e.rect, mbr)
			}
			if err := walk(e.child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return err
	}
	if total != t.size {
		return fmt.Errorf("rtree: size=%d but leaves hold %d points", t.size, total)
	}
	return nil
}

func rectEqual(a, b core.Rect) bool {
	return a.Min.Equal(b.Min) && a.Max.Equal(b.Max)
}
