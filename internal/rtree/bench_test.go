package rtree

import (
	"testing"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

func BenchmarkSearch(b *testing.B) {
	pts, _ := dataset.Points(dataset.SOSMLike, 1<<17, 2, 1)
	t, err := BulkSTR(DefaultMaxEntries, dataset.PV(pts))
	if err != nil {
		b.Fatal(err)
	}
	queries := dataset.RectQueries(pts, 1024, 1e-3, 2)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		v, _ := t.Search(queries[i&1023], func(core.PV) bool { return true })
		sink += v
	}
	_ = sink
}

func BenchmarkKNN(b *testing.B) {
	pts, _ := dataset.Points(dataset.SOSMLike, 1<<17, 2, 1)
	t, _ := BulkSTR(DefaultMaxEntries, dataset.PV(pts))
	queries := dataset.KNNQueries(pts, 1024, 3)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(t.KNN(queries[i&1023], 10))
	}
	_ = sink
}

func BenchmarkHybridPointSearch(b *testing.B) {
	pts, _ := dataset.Points(dataset.SOSMLike, 1<<17, 2, 1)
	pvs := dataset.PV(pts)
	t, _ := BulkSTR(DefaultMaxEntries, pvs)
	h, err := NewHybrid(t, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		n, _ := h.PointSearch(pvs[(i*40503)&(1<<17-1)].Point, func(core.PV) bool { return true })
		sink += n
	}
	_ = sink
}
