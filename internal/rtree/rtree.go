// Package rtree implements an in-memory R-tree over d-dimensional points
// (Guttman, 1984): quadratic-split inserts, deletion with re-insertion, and
// Sort-Tile-Recursive (STR) bulk loading. It is the traditional
// multi-dimensional baseline of the benchmark suite and the traditional
// component of the hybrid learned spatial indexes.
package rtree

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"github.com/lix-go/lix/internal/core"
)

// DefaultMaxEntries is the default node capacity.
const DefaultMaxEntries = 32

// Tree is an R-tree over points. The zero value is not usable; call New or
// BulkSTR.
type Tree struct {
	maxEntries int
	minEntries int
	root       *node
	size       int
	dim        int // 0 until the first point fixes dimensionality
}

type entry struct {
	rect  core.Rect
	child *node   // non-nil for inner entries
	pv    core.PV // payload for leaf entries
}

type node struct {
	leaf    bool
	entries []entry
}

// New returns an empty tree with the given node capacity (clamped to >= 4).
func New(maxEntries int) *Tree {
	if maxEntries < 4 {
		maxEntries = 4
	}
	return &Tree{
		maxEntries: maxEntries,
		minEntries: maxEntries * 2 / 5, // 40% fill, Guttman's recommendation
		root:       &node{leaf: true},
	}
}

// BulkSTR builds a tree from points using Sort-Tile-Recursive packing,
// producing near-100% full nodes. O(n log n).
func BulkSTR(maxEntries int, pvs []core.PV) (*Tree, error) {
	t := New(maxEntries)
	if len(pvs) == 0 {
		return t, nil
	}
	dim := pvs[0].Point.Dim()
	for i := range pvs {
		if pvs[i].Point.Dim() != dim {
			return nil, fmt.Errorf("rtree: point %d has dim %d, want %d", i, pvs[i].Point.Dim(), dim)
		}
	}
	t.dim = dim
	entries := make([]entry, len(pvs))
	for i, pv := range pvs {
		entries[i] = entry{rect: core.RectOf(pv.Point), pv: pv}
	}
	level := t.strPack(entries, true)
	for len(level) > 1 {
		level = t.strPack(level, false)
	}
	t.root = level[0].child
	t.size = len(pvs)
	return t, nil
}

// strPack tiles entries into nodes along each dimension recursively and
// returns the parent entries for the next level.
func (t *Tree) strPack(entries []entry, leaf bool) []entry {
	cap := t.maxEntries
	n := len(entries)
	nodesNeeded := (n + cap - 1) / cap
	// Recursively sort-tile: slabs along dim 0, then sub-slabs, etc.
	var tile func(es []entry, d int, slabs int)
	tile = func(es []entry, d int, slabs int) {
		if d >= t.dim || slabs <= 1 || len(es) <= cap {
			return
		}
		sort.Slice(es, func(i, j int) bool {
			return es[i].rect.Center()[d] < es[j].rect.Center()[d]
		})
		// Number of slabs along this dimension: ceil(slabs^(1/(dim-d))).
		s := int(math.Ceil(math.Pow(float64(slabs), 1/float64(t.dim-d))))
		if s < 1 {
			s = 1
		}
		// Round the slab size up to a multiple of the node capacity so that
		// the final sequential cap-sized chunking never crosses a slab
		// boundary.
		per := (len(es) + s - 1) / s
		per = (per + cap - 1) / cap * cap
		for i := 0; i < len(es); i += per {
			end := i + per
			if end > len(es) {
				end = len(es)
			}
			tile(es[i:end], d+1, (slabs+s-1)/s)
		}
	}
	tile(entries, 0, nodesNeeded)
	var out []entry
	for i := 0; i < n; i += cap {
		end := i + cap
		if end > n {
			end = n
		}
		nd := &node{leaf: leaf, entries: append([]entry(nil), entries[i:end]...)}
		out = append(out, entry{rect: nd.mbr(), child: nd})
	}
	return out
}

func (n *node) mbr() core.Rect {
	r := n.entries[0].rect.Clone()
	for _, e := range n.entries[1:] {
		r = r.Expand(e.rect)
	}
	return r
}

// Len returns the number of points.
func (t *Tree) Len() int { return t.size }

// Dim returns the dimensionality (0 if empty and never inserted).
func (t *Tree) Dim() int { return t.dim }

// Insert adds a point.
func (t *Tree) Insert(p core.Point, v core.Value) error {
	if t.dim == 0 {
		t.dim = p.Dim()
	}
	if p.Dim() != t.dim {
		return fmt.Errorf("rtree: point dim %d, tree dim %d", p.Dim(), t.dim)
	}
	e := entry{rect: core.RectOf(p), pv: core.PV{Point: p.Clone(), Value: v}}
	split := t.insert(t.root, e)
	if split != nil {
		old := t.root
		t.root = &node{
			leaf: false,
			entries: []entry{
				{rect: old.mbr(), child: old},
				{rect: split.mbr(), child: split},
			},
		}
	}
	t.size++
	return nil
}

// insert places e into the subtree at n, returning a new sibling if n split.
func (t *Tree) insert(n *node, e entry) *node {
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.maxEntries {
			return t.splitNode(n)
		}
		return nil
	}
	// Choose subtree: least enlargement, ties by smallest area.
	best := 0
	bestEnl := math.Inf(1)
	bestArea := math.Inf(1)
	for i := range n.entries {
		enl := n.entries[i].rect.EnlargementArea(e.rect)
		area := n.entries[i].rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	child := n.entries[best].child
	split := t.insert(child, e)
	n.entries[best].rect = child.mbr()
	if split != nil {
		n.entries = append(n.entries, entry{rect: split.mbr(), child: split})
		if len(n.entries) > t.maxEntries {
			return t.splitNode(n)
		}
	}
	return nil
}

// splitNode performs Guttman's quadratic split, mutating n and returning
// the new sibling.
func (t *Tree) splitNode(n *node) *node {
	es := n.entries
	// Pick seeds: pair with maximal dead area.
	seedA, seedB := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(es); i++ {
		for j := i + 1; j < len(es); j++ {
			d := es[i].rect.Clone().Expand(es[j].rect).Area() - es[i].rect.Area() - es[j].rect.Area()
			if d > worst {
				worst, seedA, seedB = d, i, j
			}
		}
	}
	groupA := []entry{es[seedA]}
	groupB := []entry{es[seedB]}
	rectA := es[seedA].rect.Clone()
	rectB := es[seedB].rect.Clone()
	var rest []entry
	for i := range es {
		if i != seedA && i != seedB {
			rest = append(rest, es[i])
		}
	}
	for len(rest) > 0 {
		// Force assignment if one group must take all remaining to reach min.
		if len(groupA)+len(rest) == t.minEntries {
			groupA = append(groupA, rest...)
			for _, e := range rest {
				rectA = rectA.Expand(e.rect)
			}
			break
		}
		if len(groupB)+len(rest) == t.minEntries {
			groupB = append(groupB, rest...)
			for _, e := range rest {
				rectB = rectB.Expand(e.rect)
			}
			break
		}
		// Pick the entry with the greatest preference difference.
		bestIdx, bestDiff := 0, -1.0
		var bestToA bool
		for i, e := range rest {
			dA := rectA.EnlargementArea(e.rect)
			dB := rectB.EnlargementArea(e.rect)
			diff := math.Abs(dA - dB)
			if diff > bestDiff {
				bestDiff, bestIdx = diff, i
				bestToA = dA < dB || (dA == dB && rectA.Area() < rectB.Area())
			}
		}
		e := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		if bestToA {
			groupA = append(groupA, e)
			rectA = rectA.Expand(e.rect)
		} else {
			groupB = append(groupB, e)
			rectB = rectB.Expand(e.rect)
		}
	}
	n.entries = groupA
	return &node{leaf: n.leaf, entries: groupB}
}

// Delete removes one point equal to p (with matching value), returning true
// if found. Underflowing nodes are dissolved and their entries re-inserted
// (Guttman's CondenseTree).
func (t *Tree) Delete(p core.Point, v core.Value) bool {
	if t.size == 0 || p.Dim() != t.dim {
		return false
	}
	var orphans []entry
	found := t.deleteRec(t.root, p, v, &orphans)
	if !found {
		return false
	}
	t.size--
	// Collapse root.
	if !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &node{leaf: true}
	}
	// Re-insert orphaned points.
	for _, e := range orphans {
		t.size--
		if err := t.Insert(e.pv.Point, e.pv.Value); err != nil {
			// Cannot happen: orphan dims match the tree.
			panic(err)
		}
	}
	return true
}

func (t *Tree) deleteRec(n *node, p core.Point, v core.Value, orphans *[]entry) bool {
	if n.leaf {
		for i := range n.entries {
			if n.entries[i].pv.Value == v && n.entries[i].pv.Point.Equal(p) {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				return true
			}
		}
		return false
	}
	target := core.RectOf(p)
	for i := range n.entries {
		if !n.entries[i].rect.Intersects(target) {
			continue
		}
		child := n.entries[i].child
		if !t.deleteRec(child, p, v, orphans) {
			continue
		}
		if len(child.entries) < t.minEntries {
			// Dissolve the child; collect its points (or descend for inner).
			collectLeafEntries(child, orphans)
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
		} else {
			n.entries[i].rect = child.mbr()
		}
		return true
	}
	return false
}

func collectLeafEntries(n *node, out *[]entry) {
	if n.leaf {
		*out = append(*out, n.entries...)
		return
	}
	for i := range n.entries {
		collectLeafEntries(n.entries[i].child, out)
	}
}

// Search calls fn for every point inside rect (inclusive); fn returning
// false stops the search. It returns the number of points visited and the
// number of nodes touched (the I/O proxy reported by the benchmarks).
func (t *Tree) Search(rect core.Rect, fn func(core.PV) bool) (visited, nodes int) {
	stop := false
	var rec func(n *node)
	rec = func(n *node) {
		nodes++
		for i := range n.entries {
			if stop {
				return
			}
			e := &n.entries[i]
			if !e.rect.Intersects(rect) {
				continue
			}
			if n.leaf {
				if rect.Contains(e.pv.Point) {
					visited++
					if !fn(e.pv) {
						stop = true
						return
					}
				}
			} else {
				rec(e.child)
			}
		}
	}
	if t.size > 0 {
		rec(t.root)
	}
	return visited, nodes
}

// knnItem is a priority-queue element for best-first kNN.
type knnItem struct {
	distSq float64
	node   *node // nil for a point item
	pv     core.PV
}

type knnHeap []knnItem

func (h knnHeap) Len() int            { return len(h) }
func (h knnHeap) Less(i, j int) bool  { return h[i].distSq < h[j].distSq }
func (h knnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *knnHeap) Push(x interface{}) { *h = append(*h, x.(knnItem)) }
func (h *knnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// KNN returns the k nearest points to q in ascending distance order using
// best-first search.
func (t *Tree) KNN(q core.Point, k int) []core.PV {
	if t.size == 0 || k <= 0 {
		return nil
	}
	h := &knnHeap{{distSq: 0, node: t.root}}
	var out []core.PV
	for h.Len() > 0 && len(out) < k {
		it := heap.Pop(h).(knnItem)
		if it.node == nil {
			out = append(out, it.pv)
			continue
		}
		for i := range it.node.entries {
			e := &it.node.entries[i]
			if it.node.leaf {
				heap.Push(h, knnItem{distSq: q.DistSq(e.pv.Point), pv: e.pv})
			} else {
				heap.Push(h, knnItem{distSq: e.rect.MinDistSq(q), node: e.child})
			}
		}
	}
	return out
}

// Height returns the number of levels.
func (t *Tree) Height() int {
	h := 1
	n := t.root
	for !n.leaf {
		h++
		n = n.entries[0].child
	}
	return h
}

// Stats reports structure statistics.
func (t *Tree) Stats() core.Stats {
	var nodes, idxBytes, dataBytes int
	var rec func(n *node)
	rec = func(n *node) {
		nodes++
		idxBytes += 16 * t.dim * len(n.entries) // two corners per rect
		if n.leaf {
			dataBytes += (8*t.dim + 8) * len(n.entries)
		} else {
			idxBytes += 8 * len(n.entries) // child pointers
			for i := range n.entries {
				rec(n.entries[i].child)
			}
		}
	}
	rec(t.root)
	return core.Stats{
		Name:       "rtree",
		Count:      t.size,
		IndexBytes: idxBytes,
		DataBytes:  dataBytes,
		Height:     t.Height(),
		Models:     nodes,
	}
}
