package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

// bruteRange is the reference implementation for range queries.
func bruteRange(pvs []core.PV, rect core.Rect) map[core.Value]bool {
	out := map[core.Value]bool{}
	for _, pv := range pvs {
		if rect.Contains(pv.Point) {
			out[pv.Value] = true
		}
	}
	return out
}

// bruteKNN is the reference implementation for kNN.
func bruteKNN(pvs []core.PV, q core.Point, k int) []float64 {
	ds := make([]float64, len(pvs))
	for i, pv := range pvs {
		ds[i] = q.DistSq(pv.Point)
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}

func buildBoth(t *testing.T, pts []core.Point) (*Tree, *Tree, []core.PV) {
	t.Helper()
	pvs := dataset.PV(pts)
	bulk, err := BulkSTR(16, pvs)
	if err != nil {
		t.Fatal(err)
	}
	inc := New(16)
	for _, pv := range pvs {
		if err := inc.Insert(pv.Point, pv.Value); err != nil {
			t.Fatal(err)
		}
	}
	return bulk, inc, pvs
}

func TestRangeMatchesBrute(t *testing.T) {
	for _, kind := range []dataset.SpatialKind{dataset.SUniform, dataset.SOSMLike} {
		pts, _ := dataset.Points(kind, 4000, 2, 21)
		bulk, inc, pvs := buildBoth(t, pts)
		queries := dataset.RectQueries(pts, 40, 0.01, 22)
		for qi, q := range queries {
			want := bruteRange(pvs, q)
			for name, tr := range map[string]*Tree{"bulk": bulk, "incremental": inc} {
				got := map[core.Value]bool{}
				n, nodes := tr.Search(q, func(pv core.PV) bool {
					got[pv.Value] = true
					return true
				})
				if n != len(want) || len(got) != len(want) {
					t.Fatalf("%s/%s q%d: got %d, want %d", kind, name, qi, n, len(want))
				}
				for v := range want {
					if !got[v] {
						t.Fatalf("%s/%s q%d: missing value %d", kind, name, qi, v)
					}
				}
				if nodes <= 0 {
					t.Fatalf("nodes = %d", nodes)
				}
			}
		}
	}
}

func TestKNNMatchesBrute(t *testing.T) {
	pts, _ := dataset.Points(dataset.SOSMLike, 3000, 2, 23)
	bulk, inc, pvs := buildBoth(t, pts)
	queries := dataset.KNNQueries(pts, 25, 24)
	for _, k := range []int{1, 5, 50} {
		for qi, q := range queries {
			want := bruteKNN(pvs, q, k)
			for name, tr := range map[string]*Tree{"bulk": bulk, "incremental": inc} {
				got := tr.KNN(q, k)
				if len(got) != len(want) {
					t.Fatalf("%s q%d k=%d: len %d, want %d", name, qi, k, len(got), len(want))
				}
				prev := -1.0
				for i, pv := range got {
					d := q.DistSq(pv.Point)
					if d < prev {
						t.Fatalf("%s: kNN results out of order", name)
					}
					prev = d
					if d != want[i] {
						t.Fatalf("%s q%d k=%d: dist[%d] = %g, want %g", name, qi, k, i, d, want[i])
					}
				}
			}
		}
	}
}

func TestKNNMoreThanSize(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 10, 2, 1)
	bulk, _, _ := buildBoth(t, pts)
	got := bulk.KNN(core.Point{0, 0}, 50)
	if len(got) != 10 {
		t.Fatalf("kNN beyond size = %d", len(got))
	}
}

func TestEmptyAndErrors(t *testing.T) {
	tr := New(8)
	if tr.Len() != 0 {
		t.Fatal("empty len")
	}
	if got := tr.KNN(core.Point{1, 2}, 3); got != nil {
		t.Fatal("kNN on empty")
	}
	rect, _ := core.NewRect(core.Point{0, 0}, core.Point{1, 1})
	if n, _ := tr.Search(rect, func(core.PV) bool { return true }); n != 0 {
		t.Fatal("search on empty")
	}
	if err := tr.Insert(core.Point{1, 2}, 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(core.Point{1, 2, 3}, 0); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := BulkSTR(8, []core.PV{{Point: core.Point{1}}, {Point: core.Point{1, 2}}}); err == nil {
		t.Fatal("mixed-dim bulk accepted")
	}
	empty, err := BulkSTR(8, nil)
	if err != nil || empty.Len() != 0 {
		t.Fatal("empty bulk failed")
	}
}

func TestDelete(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 2000, 2, 31)
	_, tr, pvs := buildBoth(t, pts)
	r := rand.New(rand.NewSource(32))
	perm := r.Perm(len(pvs))
	removed := map[core.Value]bool{}
	for _, i := range perm[:1000] {
		if !tr.Delete(pvs[i].Point, pvs[i].Value) {
			t.Fatalf("Delete(%v) missed", pvs[i].Point)
		}
		removed[pvs[i].Value] = true
	}
	if tr.Len() != 1000 {
		t.Fatalf("len after deletes = %d", tr.Len())
	}
	// Deleted points gone, others remain.
	all, _ := core.NewRect(core.Point{0, 0}, core.Point{dataset.Extent, dataset.Extent})
	seen := map[core.Value]bool{}
	tr.Search(all, func(pv core.PV) bool {
		seen[pv.Value] = true
		return true
	})
	if len(seen) != 1000 {
		t.Fatalf("full scan found %d", len(seen))
	}
	for v := range seen {
		if removed[v] {
			t.Fatalf("deleted value %d still present", v)
		}
	}
	// Delete a non-existent point.
	if tr.Delete(core.Point{-1, -1}, 999999) {
		t.Fatal("deleted phantom")
	}
	// Drain completely.
	for _, pv := range pvs {
		if !removed[pv.Value] {
			if !tr.Delete(pv.Point, pv.Value) {
				t.Fatalf("drain delete missed %v", pv.Point)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("len after drain = %d", tr.Len())
	}
}

func TestBulkQualityVsIncremental(t *testing.T) {
	// STR packing should touch fewer nodes than incremental inserts for the
	// same queries (the reason bulk loading exists).
	pts, _ := dataset.Points(dataset.SUniform, 5000, 2, 41)
	bulk, inc, _ := buildBoth(t, pts)
	queries := dataset.RectQueries(pts, 60, 0.005, 42)
	bulkNodes, incNodes := 0, 0
	for _, q := range queries {
		_, n1 := bulk.Search(q, func(core.PV) bool { return true })
		_, n2 := inc.Search(q, func(core.PV) bool { return true })
		bulkNodes += n1
		incNodes += n2
	}
	if bulkNodes > incNodes {
		t.Fatalf("bulk touched %d nodes, incremental %d", bulkNodes, incNodes)
	}
}

func TestStatsAndHeight(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 3000, 3, 43)
	bulk, _, _ := buildBoth(t, pts)
	st := bulk.Stats()
	if st.Count != 3000 || st.IndexBytes <= 0 || st.Height < 2 || bulk.Dim() != 3 {
		t.Fatalf("stats = %+v dim=%d", st, bulk.Dim())
	}
}

func TestSearchEarlyStop(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 1000, 2, 44)
	bulk, _, _ := buildBoth(t, pts)
	all, _ := core.NewRect(core.Point{0, 0}, core.Point{dataset.Extent, dataset.Extent})
	count := 0
	bulk.Search(all, func(core.PV) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop visited %d", count)
	}
}
