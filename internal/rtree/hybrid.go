package rtree

import (
	"fmt"

	"github.com/lix-go/lix/internal/core"
)

// Hybrid is an ML-enhanced R-tree in the spirit of the "AI+R"-tree
// (Al-Mamun et al., MDM 2022): a learned model — here a grid over leaf
// MBRs, the simplest instance-optimized predictor — maps a point query
// directly to its candidate leaf nodes, skipping the root-to-leaf
// traversal. Queries whose candidate set is too large (the model predicts
// badly there) fall back to the traditional R-tree search, mirroring the
// paper's query classifier that routes "hard" queries down the traditional
// path.
//
// Taxonomy: hybrid (R-tree branch), Approach 1 — a traditional index
// augmented with an ML model.
type Hybrid struct {
	tree  *Tree
	cells int
	min   core.Point
	max   core.Point
	grid  [][]*node // cell -> candidate leaves
	// MaxCandidates bounds the learned path; larger candidate sets fall
	// back to the traditional search.
	MaxCandidates int
	// Diagnostics.
	LearnedHits int
	Fallbacks   int
}

// NewHybrid wraps a bulk-loaded tree with a leaf-prediction grid of
// cells^dim buckets (cells 0 selects 32 for 2-D, 16 for 3-D+).
func NewHybrid(t *Tree, cells int) (*Hybrid, error) {
	if t.size == 0 {
		return nil, fmt.Errorf("rtree: hybrid over empty tree")
	}
	if cells <= 0 {
		if t.dim <= 2 {
			cells = 32
		} else {
			cells = 16
		}
	}
	total := 1
	for d := 0; d < t.dim; d++ {
		if total > (1<<24)/cells {
			return nil, fmt.Errorf("rtree: hybrid grid too large")
		}
		total *= cells
	}
	h := &Hybrid{tree: t, cells: cells, MaxCandidates: 8}
	world := t.root.mbr()
	h.min = world.Min
	h.max = world.Max
	for d := 0; d < t.dim; d++ {
		if !(h.max[d] > h.min[d]) {
			h.max[d] = h.min[d] + 1
		}
	}
	h.grid = make([][]*node, total)
	h.indexLeaves(t.root)
	return h, nil
}

// indexLeaves registers every leaf in all grid cells its MBR overlaps.
func (h *Hybrid) indexLeaves(n *node) {
	if n.leaf {
		r := n.mbr()
		lo := make([]int, h.tree.dim)
		hi := make([]int, h.tree.dim)
		for d := 0; d < h.tree.dim; d++ {
			lo[d] = h.cell(d, r.Min[d])
			hi[d] = h.cell(d, r.Max[d])
		}
		idx := make([]int, h.tree.dim)
		copy(idx, lo)
		for {
			flat := 0
			for d := 0; d < h.tree.dim; d++ {
				flat = flat*h.cells + idx[d]
			}
			h.grid[flat] = append(h.grid[flat], n)
			d := h.tree.dim - 1
			for d >= 0 {
				idx[d]++
				if idx[d] <= hi[d] {
					break
				}
				idx[d] = lo[d]
				d--
			}
			if d < 0 {
				break
			}
		}
		return
	}
	for i := range n.entries {
		h.indexLeaves(n.entries[i].child)
	}
}

func (h *Hybrid) cell(d int, v float64) int {
	c := int((v - h.min[d]) / (h.max[d] - h.min[d]) * float64(h.cells))
	if c < 0 {
		c = 0
	}
	if c >= h.cells {
		c = h.cells - 1
	}
	return c
}

// PointSearch finds all stored points equal to p, calling fn for each. It
// returns points found and leaves inspected. The learned path inspects the
// predicted candidate leaves directly; oversized candidate sets fall back
// to the traditional R-tree search.
func (h *Hybrid) PointSearch(p core.Point, fn func(core.PV) bool) (found, leaves int) {
	if p.Dim() != h.tree.dim {
		return 0, 0
	}
	flat := 0
	for d := 0; d < h.tree.dim; d++ {
		flat = flat*h.cells + h.cell(d, p[d])
	}
	cands := h.grid[flat]
	if len(cands) == 0 || len(cands) > h.MaxCandidates {
		// Model is uninformative here: traditional path.
		h.Fallbacks++
		v, nodes := h.tree.Search(core.RectOf(p), fn)
		return v, nodes
	}
	h.LearnedHits++
	target := core.RectOf(p)
	for _, leaf := range cands {
		if !leaf.mbr().Intersects(target) {
			continue
		}
		leaves++
		for i := range leaf.entries {
			if leaf.entries[i].pv.Point.Equal(p) {
				found++
				if !fn(leaf.entries[i].pv) {
					return found, leaves
				}
			}
		}
	}
	return found, leaves
}

// Search delegates range queries to the traditional R-tree (as in the
// AI+R-tree, whose learned path targets point-style queries).
func (h *Hybrid) Search(rect core.Rect, fn func(core.PV) bool) (visited, nodes int) {
	return h.tree.Search(rect, fn)
}

// Stats reports structure statistics including the prediction grid.
func (h *Hybrid) Stats() core.Stats {
	st := h.tree.Stats()
	st.Name = "learned-rtree"
	ptrs := 0
	for _, c := range h.grid {
		ptrs += len(c)
	}
	st.IndexBytes += len(h.grid)*24 + ptrs*8
	return st
}
