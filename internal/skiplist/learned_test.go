package skiplist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

func TestLearnedMatchesPlain(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Lognormal, 20000, 21)
	plain := New(1)
	learned := NewLearned(1, 16)
	r := rand.New(rand.NewSource(22))
	perm := r.Perm(len(keys))
	for _, i := range perm {
		plain.Insert(keys[i], core.Value(i))
		learned.Insert(keys[i], core.Value(i))
	}
	if learned.Len() != plain.Len() {
		t.Fatalf("len %d vs %d", learned.Len(), plain.Len())
	}
	if learned.LaneRebuilds == 0 {
		t.Fatal("fast lane never built")
	}
	probes := dataset.LookupMix(keys, 10000, 0.8, 23)
	for _, p := range probes {
		v1, ok1 := plain.Get(p)
		v2, ok2 := learned.Get(p)
		if ok1 != ok2 || (ok1 && v1 != v2) {
			t.Fatalf("Get(%d) = %d,%v vs plain %d,%v", p, v2, ok2, v1, ok1)
		}
	}
	for _, q := range dataset.Ranges(keys, 30, 0.005, 24) {
		n1 := plain.Range(q.Lo, q.Hi, func(core.Key, core.Value) bool { return true })
		n2 := learned.Range(q.Lo, q.Hi, func(core.Key, core.Value) bool { return true })
		if n1 != n2 {
			t.Fatalf("Range(%d,%d) = %d vs plain %d", q.Lo, q.Hi, n2, n1)
		}
	}
}

func TestLearnedDeletedLaneNodes(t *testing.T) {
	// Force lane entries to die between rebuilds and verify lookups stay
	// exact (the frozen-pointer hazard).
	l := NewLearned(3, 8)
	const n = 4000
	for i := 0; i < n; i++ {
		l.Insert(core.Key(i*10), core.Value(i))
	}
	l.rebuildLane() // fresh lane referencing current nodes
	// Delete exactly the sampled keys.
	for _, k := range append([]core.Key(nil), l.keys...) {
		l.list.Delete(k) // bypass the wrapper: no rebuild bookkeeping
	}
	for i := 0; i < n; i++ {
		k := core.Key(i * 10)
		_, ok := l.Get(k)
		wantOK := true
		for _, dk := range l.keys {
			if dk == k {
				wantOK = false
			}
		}
		if ok != wantOK {
			t.Fatalf("Get(%d) = %v, want %v after sampled deletions", k, ok, wantOK)
		}
	}
	// Inserts between lane entries are found without a rebuild.
	l.Insert(15, 999)
	if v, ok := l.Get(15); !ok || v != 999 {
		t.Fatal("insert between lane entries lost")
	}
}

func TestLearnedMixedMatchesMapProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(25))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := NewLearned(uint64(seed)|1, 4+r.Intn(12))
		ref := map[core.Key]core.Value{}
		for op := 0; op < 3000; op++ {
			k := core.Key(r.Intn(600))
			switch r.Intn(4) {
			case 0, 1:
				v := core.Value(r.Uint64())
				l.Insert(k, v)
				ref[k] = v
			case 2:
				got := l.Delete(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			case 3:
				v, ok := l.Get(k)
				wv, wok := ref[k]
				if ok != wok || (ok && v != wv) {
					return false
				}
			}
			if l.Len() != len(ref) {
				return false
			}
		}
		seen := 0
		okAll := true
		l.Range(0, ^core.Key(0), func(k core.Key, v core.Value) bool {
			wv, wok := ref[k]
			if !wok || wv != v {
				okAll = false
				return false
			}
			seen++
			return true
		})
		return okAll && seen == len(ref)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLearnedEmptyAndStats(t *testing.T) {
	l := NewLearned(0, 0)
	if _, ok := l.Get(1); ok {
		t.Fatal("empty get")
	}
	if l.Delete(1) {
		t.Fatal("empty delete")
	}
	for i := 0; i < 5000; i++ {
		l.Insert(core.Key(i), core.Value(i))
	}
	st := l.Stats()
	if st.Name != "learned-skiplist" || st.Models == 0 || st.Count != 5000 {
		t.Fatalf("stats = %+v", st)
	}
	// Upsert does not grow.
	l.Insert(0, 7)
	if l.Len() != 5000 {
		t.Fatal("upsert grew the list")
	}
	if v, _ := l.Get(0); v != 7 {
		t.Fatal("upsert lost")
	}
}
