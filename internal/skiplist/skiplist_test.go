package skiplist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lix-go/lix/internal/core"
)

func TestEmpty(t *testing.T) {
	l := New(0)
	if l.Len() != 0 {
		t.Fatal("empty len")
	}
	if _, ok := l.Get(1); ok {
		t.Fatal("Get on empty")
	}
	if l.Delete(1) {
		t.Fatal("Delete on empty")
	}
}

func TestInsertGetDelete(t *testing.T) {
	l := New(1)
	const n = 5000
	perm := rand.New(rand.NewSource(2)).Perm(n)
	for _, i := range perm {
		if !l.Insert(core.Key(i*3), core.Value(i)) {
			t.Fatal("insert reported existing")
		}
	}
	if l.Len() != n {
		t.Fatalf("len = %d", l.Len())
	}
	for i := 0; i < n; i++ {
		v, ok := l.Get(core.Key(i * 3))
		if !ok || v != core.Value(i) {
			t.Fatalf("Get(%d) = %d,%v", i*3, v, ok)
		}
		if _, ok := l.Get(core.Key(i*3 + 1)); ok {
			t.Fatal("phantom key")
		}
	}
	// Upsert.
	if l.Insert(0, 99) {
		t.Fatal("upsert reported new")
	}
	if v, _ := l.Get(0); v != 99 {
		t.Fatal("upsert did not overwrite")
	}
	// Delete half.
	for i := 0; i < n; i += 2 {
		if !l.Delete(core.Key(i * 3)) {
			t.Fatalf("Delete(%d) missed", i*3)
		}
	}
	if l.Len() != n/2 {
		t.Fatalf("len after deletes = %d", l.Len())
	}
	for i := 0; i < n; i++ {
		_, ok := l.Get(core.Key(i * 3))
		if ok != (i%2 == 1) {
			t.Fatalf("Get(%d) after delete = %v", i*3, ok)
		}
	}
}

func TestRange(t *testing.T) {
	l := New(7)
	for i := 0; i < 100; i++ {
		l.Insert(core.Key(i*10), core.Value(i))
	}
	var got []core.Key
	n := l.Range(25, 85, func(k core.Key, v core.Value) bool {
		got = append(got, k)
		return true
	})
	want := []core.Key{30, 40, 50, 60, 70, 80}
	if n != len(want) {
		t.Fatalf("range count = %d, got %v", n, got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range[%d] = %d", i, got[i])
		}
	}
	count := 0
	l.Range(0, 1000, func(core.Key, core.Value) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestMatchesMapProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(5))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := New(uint64(seed) | 1)
		ref := map[core.Key]core.Value{}
		for op := 0; op < 2000; op++ {
			k := core.Key(r.Intn(300))
			switch r.Intn(3) {
			case 0:
				v := core.Value(r.Uint64())
				l.Insert(k, v)
				ref[k] = v
			case 1:
				got := l.Delete(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			case 2:
				v, ok := l.Get(k)
				wv, wok := ref[k]
				if ok != wok || (ok && v != wv) {
					return false
				}
			}
		}
		return l.Len() == len(ref)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	l := New(3)
	for i := 0; i < 1000; i++ {
		l.Insert(core.Key(i), 0)
	}
	st := l.Stats()
	if st.Count != 1000 || st.IndexBytes <= 0 || st.Height < 2 {
		t.Fatalf("stats = %+v", st)
	}
}
