package skiplist

import (
	"github.com/lix-go/lix/internal/core"
)

// Learned is an S3-style learned skip list (Zhang et al., "S3: A Scalable
// In-memory Skip-list Index", PVLDB 2019): the probabilistic towers are
// kept for maintenance, but lookups go through a periodically rebuilt
// *learned fast lane* — a sampled array of bottom-lane nodes with a linear
// model over their keys — and finish with a short bottom-lane walk.
//
// Taxonomy: mutable / hybrid (skip-list branch). Between rebuilds the fast
// lane tolerates inserts (walks get slightly longer) and deletions (lane
// entries whose nodes died are skipped); a mutation budget triggers the
// next rebuild.
type Learned struct {
	list   *List
	stride int
	// fast lane: keys[i] is the key of nodes[i], a sampled bottom node.
	keys  []core.Key
	nodes []*node
	// router: predict lane slot as slope*(key-base), corrected by a walk.
	slope, base float64
	mutations   int
	// LaneRebuilds counts fast-lane rebuilds (diagnostics).
	LaneRebuilds int
}

// DefaultStride is the default sampling interval of the fast lane.
const DefaultStride = 16

// NewLearned returns an empty learned skip list. stride is the fast-lane
// sampling interval (0 selects DefaultStride).
func NewLearned(seed uint64, stride int) *Learned {
	if stride <= 0 {
		stride = DefaultStride
	}
	return &Learned{list: New(seed), stride: stride}
}

// Len returns the number of records.
func (l *Learned) Len() int { return l.list.Len() }

// rebuildLane resamples every stride-th bottom node and refits the router.
func (l *Learned) rebuildLane() {
	l.keys = l.keys[:0]
	l.nodes = l.nodes[:0]
	i := 0
	for x := l.list.head.next[0]; x != nil; x = x.next[0] {
		if i%l.stride == 0 {
			l.keys = append(l.keys, x.key)
			l.nodes = append(l.nodes, x)
		}
		i++
	}
	n := len(l.keys)
	if n >= 2 {
		lo, hi := float64(l.keys[0]), float64(l.keys[n-1])
		l.base = lo
		if hi > lo {
			l.slope = float64(n-1) / (hi - lo)
		} else {
			l.slope = 0
		}
	} else {
		l.slope, l.base = 0, 0
	}
	l.mutations = 0
	l.LaneRebuilds++
}

// laneStart returns a live bottom node with key <= k to start walking
// from, or nil when the lane cannot help (empty, stale, or k precedes it).
func (l *Learned) laneStart(k core.Key) *node {
	n := len(l.keys)
	if n == 0 || k < l.keys[0] {
		return nil
	}
	// Model prediction corrected by exponential search: robust to skewed
	// key distributions where the linear router is far off.
	pred := core.Clamp(int(l.slope*(float64(k)-l.base)), 0, n-1)
	i := core.ExponentialSearch(l.keys, k, pred) // first lane key >= k
	if i >= n || l.keys[i] > k {
		i--
	}
	// Skip lane entries whose nodes were deleted since the last rebuild
	// (their forward pointers are frozen and must not be walked).
	for i >= 0 && l.nodes[i].deleted {
		i--
	}
	if i < 0 || l.keys[i] > k {
		return nil
	}
	return l.nodes[i]
}

// maybeRebuild triggers a lane rebuild after enough mutations.
func (l *Learned) maybeRebuild() {
	l.mutations++
	budget := l.list.Len() / 4
	if budget < 4*l.stride {
		budget = 4 * l.stride
	}
	if l.mutations >= budget {
		l.rebuildLane()
	}
}

// Get returns the value stored for k.
func (l *Learned) Get(k core.Key) (core.Value, bool) {
	start := l.laneStart(k)
	if start == nil {
		return l.list.Get(k)
	}
	for x := start; x != nil && x.key <= k; x = x.next[0] {
		if x.key == k {
			return x.val, true
		}
	}
	return 0, false
}

// Insert upserts (k, v), returning true if the key was new.
func (l *Learned) Insert(k core.Key, v core.Value) bool {
	added := l.list.Insert(k, v)
	if added {
		l.maybeRebuild()
	}
	return added
}

// Delete removes k, returning true if present.
func (l *Learned) Delete(k core.Key) bool {
	ok := l.list.Delete(k)
	if ok {
		l.maybeRebuild()
	}
	return ok
}

// Range calls fn for records with lo <= key <= hi ascending; fn returning
// false stops. Returns records visited.
func (l *Learned) Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	start := l.laneStart(lo)
	if start == nil {
		return l.list.Range(lo, hi, fn)
	}
	count := 0
	for x := start; x != nil && x.key <= hi; x = x.next[0] {
		if x.key < lo {
			continue
		}
		count++
		if !fn(x.key, x.val) {
			break
		}
	}
	return count
}

// Stats reports structure statistics including the fast lane.
func (l *Learned) Stats() core.Stats {
	st := l.list.Stats()
	st.Name = "learned-skiplist"
	st.IndexBytes += 16 * len(l.keys)
	st.Models = len(l.keys)
	return st
}
