// Package skiplist implements a classic probabilistic skip list over uint64
// keys (Pugh, 1990). In the taxonomy it is the traditional component of the
// S3-style hybrid learned indexes; in the benchmark suite it is a secondary
// ordered baseline next to the B+-tree.
package skiplist

import (
	"github.com/lix-go/lix/internal/core"
)

const maxLevel = 24

// List is a skip list. The zero value is not usable; call New.
type List struct {
	head  *node
	level int
	size  int
	rng   uint64
}

type node struct {
	key  core.Key
	val  core.Value
	next []*node
	// deleted marks nodes unlinked from the list; the learned fast lane
	// (learned.go) may still reference them and must not walk from them.
	deleted bool
}

// New returns an empty skip list with a deterministic level generator seed.
func New(seed uint64) *List {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &List{
		head:  &node{next: make([]*node, maxLevel)},
		level: 1,
		rng:   seed,
	}
}

// Len returns the number of records.
func (l *List) Len() int { return l.size }

func (l *List) randLevel() int {
	// xorshift64 with p=1/4 promotion.
	lvl := 1
	for lvl < maxLevel {
		l.rng ^= l.rng << 13
		l.rng ^= l.rng >> 7
		l.rng ^= l.rng << 17
		if l.rng&3 != 0 {
			break
		}
		lvl++
	}
	return lvl
}

// findPrevs fills prevs with the rightmost node before k on every level.
func (l *List) findPrevs(k core.Key, prevs *[maxLevel]*node) *node {
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < k {
			x = x.next[i]
		}
		prevs[i] = x
	}
	return x.next[0]
}

// Get returns the value for key k.
func (l *List) Get(k core.Key) (core.Value, bool) {
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < k {
			x = x.next[i]
		}
	}
	n := x.next[0]
	if n != nil && n.key == k {
		return n.val, true
	}
	return 0, false
}

// Insert upserts (k, v), returning true if the key was new.
func (l *List) Insert(k core.Key, v core.Value) bool {
	var prevs [maxLevel]*node
	n := l.findPrevs(k, &prevs)
	if n != nil && n.key == k {
		n.val = v
		return false
	}
	lvl := l.randLevel()
	if lvl > l.level {
		for i := l.level; i < lvl; i++ {
			prevs[i] = l.head
		}
		l.level = lvl
	}
	nn := &node{key: k, val: v, next: make([]*node, lvl)}
	for i := 0; i < lvl; i++ {
		nn.next[i] = prevs[i].next[i]
		prevs[i].next[i] = nn
	}
	l.size++
	return true
}

// Delete removes key k, returning true if present.
func (l *List) Delete(k core.Key) bool {
	var prevs [maxLevel]*node
	n := l.findPrevs(k, &prevs)
	if n == nil || n.key != k {
		return false
	}
	for i := 0; i < len(n.next); i++ {
		if prevs[i].next[i] == n {
			prevs[i].next[i] = n.next[i]
		}
	}
	n.deleted = true
	for l.level > 1 && l.head.next[l.level-1] == nil {
		l.level--
	}
	l.size--
	return true
}

// Range calls fn for every record with lo <= key <= hi ascending; fn
// returning false stops the scan. Returns records visited.
func (l *List) Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	var prevs [maxLevel]*node
	n := l.findPrevs(lo, &prevs)
	count := 0
	for n != nil && n.key <= hi {
		count++
		if !fn(n.key, n.val) {
			return count
		}
		n = n.next[0]
	}
	return count
}

// Stats reports structure statistics.
func (l *List) Stats() core.Stats {
	ptrs := 0
	for x := l.head.next[0]; x != nil; x = x.next[0] {
		ptrs += len(x.next)
	}
	return core.Stats{
		Name:       "skiplist",
		Count:      l.size,
		IndexBytes: 8 * ptrs,
		DataBytes:  16 * l.size,
		Height:     l.level,
		Models:     l.size,
	}
}
