package conform

import (
	"sort"

	"github.com/lix-go/lix/internal/core"
)

// oracle1D is the trivially-correct reference for the one-dimensional
// indexes: a sorted slice with map semantics (one value per key, inserts
// upsert). Every operation is implemented by the most obvious O(n) or
// O(log n) code so that a divergence always indicts the index under test.
type oracle1D struct {
	recs []core.KV // sorted ascending by key, distinct
}

func newOracle1D(recs []core.KV) *oracle1D {
	o := &oracle1D{recs: append([]core.KV(nil), recs...)}
	return o
}

func (o *oracle1D) find(k core.Key) (int, bool) {
	i := sort.Search(len(o.recs), func(i int) bool { return o.recs[i].Key >= k })
	return i, i < len(o.recs) && o.recs[i].Key == k
}

func (o *oracle1D) Insert(k core.Key, v core.Value) {
	i, ok := o.find(k)
	if ok {
		o.recs[i].Value = v
		return
	}
	o.recs = append(o.recs, core.KV{})
	copy(o.recs[i+1:], o.recs[i:])
	o.recs[i] = core.KV{Key: k, Value: v}
}

func (o *oracle1D) Delete(k core.Key) bool {
	i, ok := o.find(k)
	if !ok {
		return false
	}
	o.recs = append(o.recs[:i], o.recs[i+1:]...)
	return true
}

func (o *oracle1D) Get(k core.Key) (core.Value, bool) {
	i, ok := o.find(k)
	if !ok {
		return 0, false
	}
	return o.recs[i].Value, true
}

func (o *oracle1D) Len() int { return len(o.recs) }

// Range visits records with lo <= key <= hi ascending; fn returning false
// stops the scan. The record on which fn stops counts as visited — the
// contract every lix.Index implementation must share.
func (o *oracle1D) Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	i, _ := o.find(lo)
	count := 0
	for ; i < len(o.recs) && o.recs[i].Key <= hi; i++ {
		count++
		if !fn(o.recs[i].Key, o.recs[i].Value) {
			break
		}
	}
	return count
}

// ---------------------------------------------------------------------------
// Spatial oracle
// ---------------------------------------------------------------------------

// spatialOracle is the brute-force reference for spatial indexes: an
// unordered multiset of point/value records scanned in full for every
// query.
type spatialOracle struct {
	pvs []core.PV
}

func newSpatialOracle(pvs []core.PV) *spatialOracle {
	o := &spatialOracle{pvs: make([]core.PV, len(pvs))}
	for i, pv := range pvs {
		o.pvs[i] = core.PV{Point: pv.Point.Clone(), Value: pv.Value}
	}
	return o
}

func (o *spatialOracle) Insert(p core.Point, v core.Value) {
	o.pvs = append(o.pvs, core.PV{Point: p.Clone(), Value: v})
}

// Delete removes one stored record with point equal to p and matching
// value, reporting whether one existed.
func (o *spatialOracle) Delete(p core.Point, v core.Value) bool {
	for i := range o.pvs {
		if o.pvs[i].Value == v && o.pvs[i].Point.Equal(p) {
			o.pvs = append(o.pvs[:i], o.pvs[i+1:]...)
			return true
		}
	}
	return false
}

func (o *spatialOracle) Len() int { return len(o.pvs) }

// LookupValues returns every value stored under a point equal to p.
// Implementations may return any one of them from Lookup, so the checker
// compares membership, not a single value.
func (o *spatialOracle) LookupValues(p core.Point) []core.Value {
	var out []core.Value
	for i := range o.pvs {
		if o.pvs[i].Point.Equal(p) {
			out = append(out, o.pvs[i].Value)
		}
	}
	return out
}

// SearchValues returns the values of every record inside rect (a multiset:
// duplicate values appear as often as they are stored).
func (o *spatialOracle) SearchValues(rect core.Rect) []core.Value {
	var out []core.Value
	for i := range o.pvs {
		if rect.Contains(o.pvs[i].Point) {
			out = append(out, o.pvs[i].Value)
		}
	}
	return out
}

// KNNDistSq returns the squared distances of the k nearest stored points to
// q, ascending. Ties make the identity of the k-th neighbor ambiguous, so
// conformance is checked on the distance multiset, which is unique.
func (o *spatialOracle) KNNDistSq(q core.Point, k int) []float64 {
	ds := make([]float64, len(o.pvs))
	for i := range o.pvs {
		ds[i] = q.DistSq(o.pvs[i].Point)
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}
