package conform

import (
	lix "github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
	"github.com/lix-go/lix/internal/rtree"
)

// This file registers every index constructor of the public façade with
// the conformance registry. A new index opts in by adding one Register
// call with its capability flags; the differential suite, the edge-case
// corpus and the invariant sweep then cover it automatically.

// mutable1D registers a mutable 1-D factory whose builder starts empty and
// is preloaded by per-record inserts (the path a live system exercises).
func mutable1D(name string, mk func() lix.MutableIndex) {
	Register(Factory{
		Name: name,
		Caps: Caps{Mutable: true, AllowsEmpty: true},
		Build1D: func(recs []core.KV) (Index, error) {
			ix := mk()
			for _, r := range recs {
				ix.Insert(r.Key, r.Value)
			}
			return ix, nil
		},
	})
}

// static1D registers a read-only 1-D factory built over sorted records.
func static1D(name string, allowsEmpty bool, build func(recs []core.KV) (lix.Index, error)) {
	Register(Factory{
		Name: name,
		Caps: Caps{AllowsEmpty: allowsEmpty},
		Build1D: func(recs []core.KV) (Index, error) {
			ix, err := build(recs)
			if err != nil {
				return nil, err
			}
			return ix, nil
		},
	})
}

func init() {
	// Baselines.
	static1D("sorted-array", true, func(recs []core.KV) (lix.Index, error) {
		return lix.NewSortedArray(recs), nil
	})
	mutable1D("btree", func() lix.MutableIndex { return lix.NewBTree(0) })
	mutable1D("skiplist", func() lix.MutableIndex { return lix.NewSkipList(42) })
	mutable1D("skiplist-learned", func() lix.MutableIndex { return lix.NewLearnedSkipList(42, 0) })

	// Learned 1-D, static builders.
	static1D("rmi", true, func(recs []core.KV) (lix.Index, error) {
		return lix.NewRMI(recs, lix.RMIConfig{})
	})
	static1D("rmi-hybrid", true, func(recs []core.KV) (lix.Index, error) {
		return lix.NewHybridRMI(recs, lix.RMIConfig{}, 64)
	})
	static1D("pgm", true, func(recs []core.KV) (lix.Index, error) {
		return lix.NewPGM(recs, 0)
	})
	static1D("radixspline", true, func(recs []core.KV) (lix.Index, error) {
		return lix.NewRadixSpline(recs, 0, 0)
	})
	static1D("histtree", true, func(recs []core.KV) (lix.Index, error) {
		return lix.NewHistTree(recs, 0, 0)
	})

	// Learned 1-D, updatable.
	mutable1D("alex", func() lix.MutableIndex { return lix.NewALEX() })
	mutable1D("lipp", func() lix.MutableIndex { return lix.NewLIPP() })
	mutable1D("pgm-dynamic", func() lix.MutableIndex { return lix.NewDynamicPGM(0, 64) })
	mutable1D("fiting", func() lix.MutableIndex { return lix.NewFITingTree(0, 0) })
	mutable1D("learned-lsm", func() lix.MutableIndex { return lix.NewLearnedLSM(lix.LSMConfig{}) })
	mutable1D("xindex", func() lix.MutableIndex {
		// Small groups/deltas so 5k-op workloads exercise compaction and
		// splits, not just the delta buffer.
		return lix.NewXIndex(512, 64)
	})

	// The sharded serving layer, registered with a bulk-building factory so
	// the router splits at the workload's key quantiles and every replay
	// crosses shard boundaries. Shard counts and delta caps are small so
	// 5k-op workloads force cross-shard ranges and RCU snapshot swaps.
	Register(Factory{
		Name: "sharded-rw",
		Caps: Caps{Mutable: true, AllowsEmpty: true},
		Build1D: func(recs []core.KV) (Index, error) {
			return lix.NewSharded(recs, lix.ShardedConfig{Shards: 4})
		},
	})
	Register(Factory{
		Name: "sharded-rcu",
		Caps: Caps{Mutable: true, AllowsEmpty: true},
		Build1D: func(recs []core.KV) (Index, error) {
			return lix.NewSharded(recs, lix.ShardedConfig{Shards: 4, Mode: lix.ShardRCU, DeltaCap: 32})
		},
	})
}

// mutableSpatial registers a mutable spatial factory preloaded by inserts.
func mutableSpatial(name string, dims int, mk func() (lix.MutableSpatialIndex, error)) {
	Register(Factory{
		Name: name,
		Caps: Caps{Mutable: true, Spatial: true, KNN: true, AllowsEmpty: true, Dims: dims},
		BuildSpatial: func(pvs []core.PV) (SpatialIndex, error) {
			ix, err := mk()
			if err != nil {
				return nil, err
			}
			for _, pv := range pvs {
				if err := ix.Insert(pv.Point, pv.Value); err != nil {
					return nil, err
				}
			}
			return ix, nil
		},
	})
}

// staticSpatial registers a read-only spatial factory built over points.
func staticSpatial(name string, knn bool, dims int, build func(pvs []core.PV) (lix.SpatialIndex, error)) {
	Register(Factory{
		Name: name,
		Caps: Caps{Spatial: true, KNN: knn, Dims: dims},
		BuildSpatial: func(pvs []core.PV) (SpatialIndex, error) {
			ix, err := build(pvs)
			if err != nil {
				return nil, err
			}
			return ix, nil
		},
	})
}

// spatialBounds is the dataset extent convention shared with BuildSpatial.
func spatialBounds(dim int) core.Rect {
	min := make(core.Point, dim)
	max := make(core.Point, dim)
	for d := 0; d < dim; d++ {
		max[d] = dataset.Extent
	}
	return core.Rect{Min: min, Max: max}
}

// learnedRTree adapts *rtree.Hybrid (Search/Stats only) to SpatialIndex.
type learnedRTree struct {
	*rtree.Hybrid
	n int
}

func (h learnedRTree) Len() int { return h.n }

func (h learnedRTree) Lookup(p core.Point) (core.Value, bool) {
	var out core.Value
	found := false
	h.PointSearch(p, func(pv core.PV) bool {
		out, found = pv.Value, true
		return false
	})
	return out, found
}

func init() {
	// Spatial baselines.
	Register(Factory{
		Name: "rtree",
		Caps: Caps{Mutable: true, Spatial: true, KNN: true, AllowsEmpty: true},
		BuildSpatial: func(pvs []core.PV) (SpatialIndex, error) {
			ix := lix.NewRTree(0)
			for _, pv := range pvs {
				if err := ix.Insert(pv.Point, pv.Value); err != nil {
					return nil, err
				}
			}
			return ix, nil
		},
	})
	staticSpatial("rtree-bulk", true, 0, func(pvs []core.PV) (lix.SpatialIndex, error) {
		return lix.BulkRTree(0, pvs)
	})
	staticSpatial("kdtree", true, 0, func(pvs []core.PV) (lix.SpatialIndex, error) {
		return lix.BulkKDTree(pvs)
	})
	mutableSpatial("quadtree", 2, func() (lix.MutableSpatialIndex, error) {
		return lix.NewQuadtree(spatialBounds(2), 0)
	})
	mutableSpatial("grid", 2, func() (lix.MutableSpatialIndex, error) {
		return lix.NewUniformGrid(spatialBounds(2), 32)
	})

	// Learned spatial.
	staticSpatial("zm", true, 0, func(pvs []core.PV) (lix.SpatialIndex, error) {
		return lix.NewZMIndex(pvs, lix.ZMConfig{})
	})
	staticSpatial("zm-hilbert", true, 2, func(pvs []core.PV) (lix.SpatialIndex, error) {
		return lix.NewZMIndex(pvs, lix.ZMConfig{Curve: lix.CurveHilbert})
	})
	staticSpatial("mlindex", true, 0, func(pvs []core.PV) (lix.SpatialIndex, error) {
		return lix.NewMLIndex(pvs, lix.MLIndexConfig{})
	})
	staticSpatial("flood", false, 0, func(pvs []core.PV) (lix.SpatialIndex, error) {
		dim := 2
		if len(pvs) > 0 {
			dim = pvs[0].Point.Dim()
		}
		return lix.NewFlood(pvs, lix.FloodConfig{SortDim: dim - 1})
	})
	Register(Factory{
		Name: "lisa",
		Caps: Caps{Mutable: true, Spatial: true, KNN: true},
		BuildSpatial: func(pvs []core.PV) (SpatialIndex, error) {
			return lix.NewLISA(pvs, lix.LISAConfig{})
		},
	})
	staticSpatial("qdtree", false, 0, func(pvs []core.PV) (lix.SpatialIndex, error) {
		queries := dataset.RectQueries(points(pvs), 32, 0.001, 7)
		return lix.NewQdTree(pvs, queries, lix.QdTreeConfig{})
	})
	staticSpatial("rtree-learned", false, 0, func(pvs []core.PV) (lix.SpatialIndex, error) {
		h, err := lix.NewLearnedRTree(0, 0, pvs)
		if err != nil {
			return nil, err
		}
		return learnedRTree{Hybrid: h, n: len(pvs)}, nil
	})
}

func points(pvs []core.PV) []core.Point {
	out := make([]core.Point, len(pvs))
	for i := range pvs {
		out[i] = pvs[i].Point
	}
	return out
}
