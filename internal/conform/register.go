package conform

import (
	lix "github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/registry"
)

// This file derives the conformance factory set from the kind registry:
// every kind registered by the façade (see the façade's register.go) is
// enumerated and wrapped into a conformance factory with the matching
// capability flags, so a new index opts into the differential suite, the
// edge-case corpus and the invariant sweep by registering once with
// internal/registry. A handful of façade constructors that are not
// serving kinds (test-scale variants, the layered sharded
// configurations) are registered explicitly at the bottom.

// mutable1D registers a mutable 1-D factory whose builder starts empty and
// is preloaded by per-record inserts (the path a live system exercises).
func mutable1D(name string, mk func() lix.MutableIndex) {
	Register(Factory{
		Name: name,
		Caps: Caps{Mutable: true, AllowsEmpty: true},
		Build1D: func(recs []core.KV) (Index, error) {
			ix := mk()
			for _, r := range recs {
				ix.Insert(r.Key, r.Value)
			}
			return ix, nil
		},
	})
}

// static1D registers a read-only 1-D factory built over sorted records.
func static1D(name string, allowsEmpty bool, build func(recs []core.KV) (lix.Index, error)) {
	Register(Factory{
		Name: name,
		Caps: Caps{AllowsEmpty: allowsEmpty},
		Build1D: func(recs []core.KV) (Index, error) {
			ix, err := build(recs)
			if err != nil {
				return nil, err
			}
			return ix, nil
		},
	})
}

// conformNames maps registry kind names to historical conformance factory
// names where they differ.
var conformNames = map[string]string{"binary": "sorted-array"}

// conformOverrides replaces a registry kind's empty constructor with
// conformance-tuned parameters: seeds and capacities small enough that
// 5k-op workloads exercise structural maintenance (retrains, merges,
// buffer spills), not just the fast path.
var conformOverrides = map[string]func() lix.MutableIndex{
	"skiplist":         func() lix.MutableIndex { return lix.NewSkipList(42) },
	"skiplist-learned": func() lix.MutableIndex { return lix.NewLearnedSkipList(42, 0) },
	"pgm-dynamic":      func() lix.MutableIndex { return lix.NewDynamicPGM(0, 64) },
	// Paged kinds run with a frame budget far below the working set, so
	// every conformance replay crosses CLOCK evictions and write-backs.
	"paged-btree": func() lix.MutableIndex {
		ix, err := lix.NewTempPagedBTree(lix.PagedOptions{PoolFrames: 8})
		if err != nil {
			panic("conform: paged-btree: " + err.Error())
		}
		return ix
	},
	"paged-pgm": func() lix.MutableIndex {
		ix, err := lix.NewTempPagedPGM(lix.PagedOptions{PoolFrames: 8})
		if err != nil {
			panic("conform: paged-pgm: " + err.Error())
		}
		return ix
	},
}

func register1DFromRegistry(k registry.Kind) {
	name := k.Name
	if rn, ok := conformNames[name]; ok {
		name = rn
	}
	if k.New != nil {
		mk := func() lix.MutableIndex {
			ix, err := k.New()
			if err != nil {
				// Empty constructors of registered kinds do not fail; a kind
				// whose constructor can fail must register explicitly.
				panic("conform: kind " + k.Name + ": " + err.Error())
			}
			return ix
		}
		if ov, ok := conformOverrides[k.Name]; ok {
			mk = ov
		}
		mutable1D(name, mk)
		return
	}
	static1D(name, k.Caps.AllowsEmpty, func(recs []core.KV) (lix.Index, error) {
		return k.Static(recs)
	})
}

func registerSpatialFromRegistry(k registry.Kind) {
	caps := Caps{
		Mutable:     k.Caps.Mutable,
		Spatial:     true,
		KNN:         k.Caps.KNN,
		AllowsEmpty: k.Caps.AllowsEmpty,
		Dims:        k.Caps.Dims,
	}
	if k.SpatialNew != nil {
		Register(Factory{
			Name: k.Name,
			Caps: caps,
			BuildSpatial: func(pvs []core.PV) (SpatialIndex, error) {
				ix, err := k.SpatialNew()
				if err != nil {
					return nil, err
				}
				for _, pv := range pvs {
					if err := ix.Insert(pv.Point, pv.Value); err != nil {
						return nil, err
					}
				}
				return ix, nil
			},
		})
		return
	}
	Register(Factory{
		Name: k.Name,
		Caps: caps,
		BuildSpatial: func(pvs []core.PV) (SpatialIndex, error) {
			return k.SpatialBulk(pvs)
		},
	})
}

func init() {
	for _, k := range registry.Kinds() {
		k := k
		if k.Caps.Spatial {
			registerSpatialFromRegistry(k)
		} else {
			register1DFromRegistry(k)
		}
	}

	// Façade constructors that are not registry kinds.
	static1D("rmi-hybrid", true, func(recs []core.KV) (lix.Index, error) {
		return lix.NewHybridRMI(recs, lix.RMIConfig{}, 64)
	})
	mutable1D("xindex", func() lix.MutableIndex {
		// Small groups/deltas so 5k-op workloads exercise compaction and
		// splits, not just the delta buffer.
		return lix.NewXIndex(512, 64)
	})

	// The sharded serving layer, registered with a bulk-building factory so
	// the router splits at the workload's key quantiles and every replay
	// crosses shard boundaries. Shard counts and delta caps are small so
	// 5k-op workloads force cross-shard ranges and RCU snapshot swaps.
	Register(Factory{
		Name: "sharded-rw",
		Caps: Caps{Mutable: true, AllowsEmpty: true},
		Build1D: func(recs []core.KV) (Index, error) {
			return lix.NewSharded(recs, lix.ShardedConfig{Shards: 4})
		},
	})
	Register(Factory{
		Name: "sharded-rcu",
		Caps: Caps{Mutable: true, AllowsEmpty: true},
		Build1D: func(recs []core.KV) (Index, error) {
			return lix.NewSharded(recs, lix.ShardedConfig{Shards: 4, Mode: lix.ShardRCU, DeltaCap: 32})
		},
	})
}
