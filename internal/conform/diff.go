package conform

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/lix-go/lix/internal/core"
)

// closeIndex releases resources held by indexes that own files or
// goroutines (the durable factories); purely in-memory indexes do not
// implement io.Closer and are untouched. Replays build hundreds of
// instances while shrinking, so leaking file handles here would exhaust
// the process fd limit.
func closeIndex(ix any) {
	if c, ok := ix.(io.Closer); ok {
		c.Close()
	}
}

// DefaultCheckEvery is how many operations the engine replays between
// invariant-hook calls.
const DefaultCheckEvery = 500

// Divergence describes a disagreement between an index and the oracle: the
// factory and workload it occurred under, the first diverging operation,
// and a minimized initial record set + op sequence that still reproduces
// it (the output of greedy sequence shrinking).
type Divergence struct {
	Factory  string
	Workload string
	OpIndex  int    // index of the diverging op in the minimized sequence
	Detail   string // what disagreed
	// Exactly one of the following pairs is set.
	Init1D      []core.KV
	Ops1D       []Op
	InitSpatial []core.PV
	OpsSpatial  []SpatialOp
}

// String renders the divergence with its full reproduction recipe.
func (d *Divergence) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conform: %s diverged on workload %s at op %d: %s\n",
		d.Factory, d.Workload, d.OpIndex, d.Detail)
	if d.Ops1D != nil || d.Init1D != nil {
		fmt.Fprintf(&b, "minimized repro: %d initial records, %d ops\n", len(d.Init1D), len(d.Ops1D))
		for i, r := range d.Init1D {
			fmt.Fprintf(&b, "  init[%d] = {%d, %d}\n", i, r.Key, r.Value)
		}
		for i, op := range d.Ops1D {
			fmt.Fprintf(&b, "  op[%d] = %s\n", i, op)
		}
	} else {
		fmt.Fprintf(&b, "minimized repro: %d initial points, %d ops\n", len(d.InitSpatial), len(d.OpsSpatial))
		for i, pv := range d.InitSpatial {
			fmt.Fprintf(&b, "  init[%d] = {%v, %d}\n", i, pv.Point, pv.Value)
		}
		for i, op := range d.OpsSpatial {
			fmt.Fprintf(&b, "  op[%d] = %s\n", i, op)
		}
	}
	return b.String()
}

// Run1D replays w against a fresh instance of f and the sorted-slice
// oracle. On divergence it returns a report with a shrunk reproduction;
// nil means full agreement (including invariant checks every checkEvery
// ops, 0 selecting DefaultCheckEvery).
func Run1D(f Factory, w Workload1D, checkEvery int) *Divergence {
	if checkEvery <= 0 {
		checkEvery = DefaultCheckEvery
	}
	idx, detail := replay1D(f, w.Init, w.Ops, checkEvery)
	if idx == replayOK {
		return nil
	}
	init, ops := shrink1D(f, w.Init, w.Ops, checkEvery)
	idx2, detail2 := replay1D(f, init, ops, checkEvery)
	if idx2 == replayOK {
		// Shrinking lost the failure (flaky divergence would itself be a
		// finding); fall back to the unshrunk sequence.
		init, ops, idx2, detail2 = w.Init, w.Ops, idx, detail
	}
	return &Divergence{
		Factory: f.Name, Workload: w.Name,
		OpIndex: idx2, Detail: detail2,
		Init1D: init, Ops1D: ops,
	}
}

// replay outcomes: replayOK means no divergence; replayBuild means the
// builder itself failed (reported at op -1).
const (
	replayOK    = -1
	replayBuild = -2
)

// replay1D builds f over init and replays ops against index and oracle,
// returning the first diverging op index and a description (replayOK if
// none).
func replay1D(f Factory, init []core.KV, ops []Op, checkEvery int) (int, string) {
	ix, err := f.Build1D(init)
	if err != nil {
		return replayBuild, fmt.Sprintf("build failed: %v", err)
	}
	defer closeIndex(ix)
	o := newOracle1D(init)
	var mix MutableIndex
	if f.Caps.Mutable {
		m, ok := ix.(MutableIndex)
		if !ok {
			return replayBuild, "factory declares Mutable but index lacks Insert/Delete"
		}
		mix = m
	}
	if err := CheckInvariants(ix); err != nil {
		return replayBuild, fmt.Sprintf("invariants after build: %v", err)
	}
	for i, op := range ops {
		if d := apply1D(ix, mix, o, op); d != "" {
			return i, d
		}
		if (i+1)%checkEvery == 0 {
			if err := CheckInvariants(ix); err != nil {
				return i, fmt.Sprintf("invariants: %v", err)
			}
		}
	}
	if err := CheckInvariants(ix); err != nil {
		return len(ops) - 1, fmt.Sprintf("invariants at end: %v", err)
	}
	return replayOK, ""
}

// apply1D runs one op on both sides and returns a non-empty description on
// disagreement.
func apply1D(ix Index, mix MutableIndex, o *oracle1D, op Op) string {
	switch op.Kind {
	case OpInsert:
		if mix == nil {
			return "Insert on immutable index"
		}
		mix.Insert(op.Key, op.Val)
		o.Insert(op.Key, op.Val)
	case OpDelete:
		if mix == nil {
			return "Delete on immutable index"
		}
		got := mix.Delete(op.Key)
		want := o.Delete(op.Key)
		if got != want {
			return fmt.Sprintf("%s = %v, oracle %v", op, got, want)
		}
	case OpGet:
		gv, gok := ix.Get(op.Key)
		wv, wok := o.Get(op.Key)
		if gok != wok || (gok && gv != wv) {
			return fmt.Sprintf("%s = (%d, %v), oracle (%d, %v)", op, gv, gok, wv, wok)
		}
	case OpRange:
		type kv struct {
			k core.Key
			v core.Value
		}
		var got, want []kv
		scan := func(target interface {
			Range(core.Key, core.Key, func(core.Key, core.Value) bool) int
		}, out *[]kv) int {
			return target.Range(op.Key, op.Hi, func(k core.Key, v core.Value) bool {
				*out = append(*out, kv{k, v})
				return op.Stop == 0 || len(*out) < op.Stop
			})
		}
		gn := scan(ix, &got)
		wn := scan(o, &want)
		if gn != wn {
			return fmt.Sprintf("%s visited %d, oracle %d", op, gn, wn)
		}
		if len(got) != len(want) {
			return fmt.Sprintf("%s yielded %d records, oracle %d", op, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Sprintf("%s record %d = (%d, %d), oracle (%d, %d)",
					op, i, got[i].k, got[i].v, want[i].k, want[i].v)
			}
		}
	case OpLen:
		if g, w := ix.Len(), o.Len(); g != w {
			return fmt.Sprintf("Len() = %d, oracle %d", g, w)
		}
	}
	return ""
}

// shrink1D minimizes (init, ops) while replay still diverges: first the op
// sequence is truncated at the failure and greedily chunk-reduced (ddmin
// style, halving chunk sizes), then the initial record set is reduced the
// same way. The budget bounds total replays so shrinking stays fast even
// for slow builders.
func shrink1D(f Factory, init []core.KV, ops []Op, checkEvery int) ([]core.KV, []Op) {
	budget := 400
	origIdx, _ := replay1D(f, init, ops, checkEvery)
	fails := func(init []core.KV, ops []Op) bool {
		if budget <= 0 {
			return false
		}
		budget--
		idx, _ := replay1D(f, init, ops, checkEvery)
		// A candidate must fail the same way: if the original divergence was
		// semantic (an op disagreed), a candidate that merely fails to build
		// (e.g. init shrunk to empty against a builder that rejects empty
		// input) would mask the real bug.
		if origIdx != replayBuild && idx == replayBuild {
			return false
		}
		return idx != replayOK
	}
	// Truncate after the first failure.
	if origIdx >= 0 {
		ops = ops[:origIdx+1]
	}
	ops = shrinkSlice(ops, func(o []Op) bool { return fails(init, o) })
	init = shrinkSlice(init, func(in []core.KV) bool { return fails(in, ops) })
	return init, ops
}

// shrinkSlice greedily removes chunks of s (sizes n/2, n/4, ..., 1) while
// keep(s') stays true, returning the reduced slice.
func shrinkSlice[T any](s []T, keep func([]T) bool) []T {
	for chunk := (len(s) + 1) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start < len(s); {
			end := start + chunk
			if end > len(s) {
				end = len(s)
			}
			cand := make([]T, 0, len(s)-(end-start))
			cand = append(cand, s[:start]...)
			cand = append(cand, s[end:]...)
			if keep(cand) {
				s = cand
				// Do not advance: the next chunk shifted into place.
			} else {
				start += chunk
			}
		}
	}
	return s
}

// ---------------------------------------------------------------------------
// Spatial runner
// ---------------------------------------------------------------------------

// RunSpatial replays w against a fresh instance of f and the brute-force
// oracle; semantics mirror Run1D.
func RunSpatial(f Factory, w SpatialWorkload, checkEvery int) *Divergence {
	if checkEvery <= 0 {
		checkEvery = DefaultCheckEvery
	}
	idx, detail := replaySpatial(f, w.Init, w.Ops, checkEvery)
	if idx == replayOK {
		return nil
	}
	init, ops := shrinkSpatial(f, w.Init, w.Ops, checkEvery)
	idx2, detail2 := replaySpatial(f, init, ops, checkEvery)
	if idx2 == replayOK {
		init, ops, idx2, detail2 = w.Init, w.Ops, idx, detail
	}
	return &Divergence{
		Factory: f.Name, Workload: w.Name,
		OpIndex: idx2, Detail: detail2,
		InitSpatial: init, OpsSpatial: ops,
	}
}

func replaySpatial(f Factory, init []core.PV, ops []SpatialOp, checkEvery int) (int, string) {
	ix, err := f.BuildSpatial(init)
	if err != nil {
		return replayBuild, fmt.Sprintf("build failed: %v", err)
	}
	defer closeIndex(ix)
	o := newSpatialOracle(init)
	var mix MutableSpatialIndex
	if f.Caps.Mutable {
		m, ok := ix.(MutableSpatialIndex)
		if !ok {
			return replayBuild, "factory declares Mutable but index lacks Insert/Delete"
		}
		mix = m
	}
	var kix KNNIndex
	if f.Caps.KNN {
		k, ok := ix.(KNNIndex)
		if !ok {
			return replayBuild, "factory declares KNN but index lacks KNN"
		}
		kix = k
	}
	if err := CheckInvariants(ix); err != nil {
		return replayBuild, fmt.Sprintf("invariants after build: %v", err)
	}
	for i, op := range ops {
		if d := applySpatial(ix, mix, kix, o, op); d != "" {
			return i, d
		}
		if (i+1)%checkEvery == 0 {
			if err := CheckInvariants(ix); err != nil {
				return i, fmt.Sprintf("invariants: %v", err)
			}
		}
	}
	if err := CheckInvariants(ix); err != nil {
		return len(ops) - 1, fmt.Sprintf("invariants at end: %v", err)
	}
	return replayOK, ""
}

func applySpatial(ix SpatialIndex, mix MutableSpatialIndex, kix KNNIndex, o *spatialOracle, op SpatialOp) string {
	switch op.Kind {
	case SOpInsert:
		if mix == nil {
			return "Insert on immutable spatial index"
		}
		if err := mix.Insert(op.P, op.Val); err != nil {
			return fmt.Sprintf("%s: %v", op, err)
		}
		o.Insert(op.P, op.Val)
	case SOpDelete:
		if mix == nil {
			return "Delete on immutable spatial index"
		}
		got := mix.Delete(op.P, op.Val)
		want := o.Delete(op.P, op.Val)
		if got != want {
			return fmt.Sprintf("%s = %v, oracle %v", op, got, want)
		}
	case SOpLookup:
		gv, gok := ix.Lookup(op.P)
		cands := o.LookupValues(op.P)
		if gok != (len(cands) > 0) {
			return fmt.Sprintf("%s found=%v, oracle has %d candidates", op, gok, len(cands))
		}
		if gok {
			found := false
			for _, c := range cands {
				if c == gv {
					found = true
					break
				}
			}
			if !found {
				return fmt.Sprintf("%s = %d, not among the oracle's stored values %v", op, gv, cands)
			}
		}
	case SOpSearch:
		want := o.SearchValues(op.Rect)
		var got []core.Value
		outOfRect := ""
		visited, _ := ix.Search(op.Rect, func(pv core.PV) bool {
			if !op.Rect.Contains(pv.Point) {
				outOfRect = fmt.Sprintf("%s visited point %v outside the rectangle", op, pv.Point)
				return false
			}
			got = append(got, pv.Value)
			return op.Stop == 0 || len(got) < op.Stop
		})
		if outOfRect != "" {
			return outOfRect
		}
		if visited != len(got) {
			return fmt.Sprintf("%s returned visited=%d but called fn %d times", op, visited, len(got))
		}
		if op.Stop == 0 {
			if !sameValueMultiset(got, want) {
				return fmt.Sprintf("%s visited %d values %v, oracle %d values %v",
					op, len(got), got, len(want), want)
			}
		} else {
			// Early stop: the visited records must be a sub-multiset of the
			// oracle's answer (traversal order is implementation-specific).
			if len(got) > len(want) || !subValueMultiset(got, want) {
				return fmt.Sprintf("%s early-stop visited %v, not contained in oracle %v", op, got, want)
			}
		}
	case SOpKNN:
		if kix == nil {
			return "KNN on non-KNN index"
		}
		res := kix.KNN(op.P, op.K)
		want := o.KNNDistSq(op.P, op.K)
		if len(res) != len(want) {
			return fmt.Sprintf("%s returned %d results, oracle %d", op, len(res), len(want))
		}
		got := make([]float64, len(res))
		for i, pv := range res {
			got[i] = op.P.DistSq(pv.Point)
			if i > 0 && got[i] < got[i-1] {
				return fmt.Sprintf("%s results not in ascending distance order at %d", op, i)
			}
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Sprintf("%s distSq[%d] = %g, oracle %g", op, i, got[i], want[i])
			}
		}
	case SOpLen:
		if g, w := ix.Len(), o.Len(); g != w {
			return fmt.Sprintf("Len() = %d, oracle %d", g, w)
		}
	}
	return ""
}

// sameValueMultiset reports whether a and b hold the same values with the
// same multiplicities.
func sameValueMultiset(a, b []core.Value) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]core.Value(nil), a...)
	bs := append([]core.Value(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// subValueMultiset reports whether a is a sub-multiset of b.
func subValueMultiset(a, b []core.Value) bool {
	counts := make(map[core.Value]int, len(b))
	for _, v := range b {
		counts[v]++
	}
	for _, v := range a {
		if counts[v] == 0 {
			return false
		}
		counts[v]--
	}
	return true
}

func shrinkSpatial(f Factory, init []core.PV, ops []SpatialOp, checkEvery int) ([]core.PV, []SpatialOp) {
	budget := 400
	origIdx, _ := replaySpatial(f, init, ops, checkEvery)
	fails := func(init []core.PV, ops []SpatialOp) bool {
		if budget <= 0 {
			return false
		}
		budget--
		idx, _ := replaySpatial(f, init, ops, checkEvery)
		if origIdx != replayBuild && idx == replayBuild {
			return false // see shrink1D: don't morph into a build failure
		}
		return idx != replayOK
	}
	if origIdx >= 0 {
		ops = ops[:origIdx+1]
	}
	ops = shrinkSlice(ops, func(o []SpatialOp) bool { return fails(init, o) })
	init = shrinkSlice(init, func(in []core.PV) bool { return fails(in, ops) })
	return init, ops
}
