package conform

import (
	"os"
	"testing"

	lix "github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/core"
)

// TestDurableReopenEquivalence replays every workload shape against each
// durable configuration, closes, reopens from disk, and requires the
// recovered index to match the oracle exactly.
func TestDurableReopenEquivalence(t *testing.T) {
	nInit, nOps := 1500, 2500
	if testing.Short() {
		nInit, nOps = 400, 600
	}
	for _, f := range DurableFactories() {
		for _, kind := range Shapes1D() {
			f, kind := f, kind
			t.Run(f.Name+"/"+string(kind), func(t *testing.T) {
				t.Parallel()
				w, err := NewWorkload1D(kind, nInit, nOps, true, 0xd0e+int64(len(f.Name)))
				if err != nil {
					t.Fatalf("workload: %v", err)
				}
				if err := CheckReopen(f, w, t.TempDir()); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestDurableStress runs the concurrent differential stress tier through
// the persistence path: every mutation traverses the WAL before the
// in-memory index, under concurrent readers, and the quiesced state must
// match the sequential oracle.
func TestDurableStress(t *testing.T) {
	cases := []struct {
		name   string
		shards int
		engine string
	}{
		{"durable-sharded", 4, ""},
		{"durable-btree", 0, ""},
		{"durable-lsm", 0, lix.EngineLSM},
		{"durable-lsm-sharded", 4, lix.EngineLSM},
	}
	for i, c := range cases {
		c, i := c, i
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			// Each build (shrinking reruns several) gets a fresh directory;
			// the engine's io.Closer hook removes it again.
			err := CheckStress(func(init []core.KV) (MutableIndex, error) {
				dir, err := os.MkdirTemp(t.TempDir(), "stress-*")
				if err != nil {
					return nil, err
				}
				d, err := lix.NewDurable(dir, init, durableOpts(c.shards, c.engine))
				if err != nil {
					return nil, err
				}
				return durableIndex{Durable: d, dir: dir}, nil
			}, stressCfg(t, int64(i+77)))
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDurableFactoriesRegistered pins the persistence path into the
// differential registry alongside the in-memory factories.
func TestDurableFactoriesRegistered(t *testing.T) {
	for _, name := range []string{"durable-btree", "durable-sharded", "durable-lsm", "durable-lsm-sharded"} {
		f, err := Lookup(name)
		if err != nil {
			t.Fatalf("factory %q not registered: %v", name, err)
		}
		if !f.Caps.Mutable || !f.Caps.AllowsEmpty {
			t.Fatalf("factory %q caps %+v", name, f.Caps)
		}
	}
}
