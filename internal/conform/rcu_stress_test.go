package conform

import (
	"sync"
	"sync/atomic"
	"testing"

	lix "github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/core"
)

// Sustained-write stress for the RCU shard mode: a saturating writer
// outruns the background merge so the delta-bound backpressure engages,
// while readers spin through the whole run. The tier asserts the three
// properties the paced-merge design promises:
//
//   - reader liveness: no preloaded key ever reads as missing, and the
//     values a reader observes for one key never go backwards;
//   - bounded deltas: DeltaLen never exceeds twice DeltaCeiling, and the
//     writer actually stalled (RCUStalls > 0) — i.e. the bound engaged
//     rather than the delta growing without limit;
//   - reclamation progress: retired snapshots were recycled
//     (EpochReclaims > 0) instead of accumulating in limbo.
//
// Run under -race this also checks the epoch scheme end-to-end: a
// snapshot freed while a reader still held it would be recycled into a
// merge's write buffer and the detector would flag the write/read pair.

func rcuStressPreload(n int) []core.KV {
	recs := make([]core.KV, n)
	for i := range recs {
		recs[i] = core.KV{Key: core.Key(2*i + 1), Value: 0}
	}
	return recs
}

func TestRCUSustainedWriteBackpressure(t *testing.T) {
	n, writes := 20_000, 10_000
	if testing.Short() {
		n, writes = 4_000, 3_000
	}
	recs := rcuStressPreload(n)
	// A large preload with a small cap and bound: each merge rebuilds the
	// whole snapshot, so the writer reaches the bound while one is still
	// in flight and must stall.
	s, err := lix.NewSharded(recs, lix.ShardedConfig{
		Shards: 2, Mode: lix.ShardRCU, DeltaCap: 128, DeltaBound: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	stop := make(chan struct{})
	var fail atomic.Bool
	var wg sync.WaitGroup

	// Readers: liveness plus per-key monotonicity over a sampled window.
	for r := 0; r < 2; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := make(map[core.Key]core.Value, 64)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := recs[(i*131+r*17)%len(recs)].Key
				v, ok := s.Get(k)
				if !ok {
					t.Errorf("reader %d: preloaded key %d missing", r, k)
					fail.Store(true)
					return
				}
				if i%131 < 64 {
					if prev, seen := last[k]; seen && v < prev {
						t.Errorf("reader %d: key %d went backwards: %d then %d", r, k, prev, v)
						fail.Store(true)
						return
					}
					last[k] = v
				}
			}
		}()
	}

	// Sampler: the delta bound must actually bound.
	ceiling := s.DeltaCeiling()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < 2; i++ {
				if dl := s.DeltaLen(i); dl > 2*ceiling {
					t.Errorf("shard %d delta grew to %d, ceiling %d", i, dl, ceiling)
					fail.Store(true)
					return
				}
			}
		}
	}()

	// The saturating writer: monotone upserts over the preloaded keys.
	for i := 1; i <= writes && !fail.Load(); i++ {
		s.Insert(recs[i%len(recs)].Key, core.Value(i))
	}
	s.WaitMerges()
	close(stop)
	wg.Wait()
	if fail.Load() {
		t.FailNow()
	}

	if s.RCUStalls() == 0 {
		t.Error("writer never stalled: delta-bound backpressure did not engage")
	}
	if s.RCUSwaps() == 0 {
		t.Error("no background merges completed")
	}
	if s.EpochReclaims() == 0 {
		t.Error("no retired buffers reclaimed")
	}
	// The surviving state must be exactly the last write per key: within
	// any window of len(recs) consecutive write indexes each key appears
	// once, so every i in the final window is its key's last write.
	start := writes - len(recs) + 1
	if start < 1 {
		start = 1
	}
	for i := start; i <= writes; i++ {
		k := recs[i%len(recs)].Key
		v, ok := s.Get(k)
		if !ok || v != core.Value(i) {
			t.Fatalf("key %d = (%d, %v) after drain, want (%d, true)", k, v, ok, i)
		}
	}
}

// TestRCUScanDuringMergeChurn holds an epoch pin across long range scans
// (the scan pins once for its whole traversal) while a writer churns
// snapshot merges underneath. If a retired snapshot were recycled while
// a scan still referenced it, the scan would observe unsorted or
// duplicated keys — and under -race, the merge goroutine's writes into
// the recycled buffer would race with the scan's reads.
func TestRCUScanDuringMergeChurn(t *testing.T) {
	n := 20_000
	if testing.Short() {
		n = 5_000
	}
	recs := rcuStressPreload(n)
	s, err := lix.NewSharded(recs, lix.ShardedConfig{
		Shards: 2, Mode: lix.ShardRCU, DeltaCap: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	lo, hi := recs[0].Key, recs[len(recs)-1].Key
	stop := make(chan struct{})
	var fail atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				out := s.SearchRange(lo, hi)
				if len(out) < n {
					t.Errorf("scan returned %d records, preload was %d", len(out), n)
					fail.Store(true)
					return
				}
				for i := 1; i < len(out); i++ {
					if out[i].Key <= out[i-1].Key {
						t.Errorf("scan out of order at %d: %d after %d", i, out[i].Key, out[i-1].Key)
						fail.Store(true)
						return
					}
				}
			}
		}()
	}
	// Churn: interleave fresh even keys (growing the snapshot) with
	// upserts so merges retire both snapshot arrays and delta runs.
	for i := 0; i < 8_000 && !fail.Load(); i++ {
		if i%2 == 0 {
			s.Insert(core.Key(2*(i%n)+2), core.Value(i))
		} else {
			s.Insert(recs[i%n].Key, core.Value(i))
		}
	}
	s.WaitMerges()
	close(stop)
	wg.Wait()
	if fail.Load() {
		t.FailNow()
	}
	if s.RCUSwaps() == 0 {
		t.Error("no background merges completed during churn")
	}
}
