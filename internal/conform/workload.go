package conform

import (
	"fmt"
	"math/rand"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

// OpKind enumerates the one-dimensional operations the engine replays.
type OpKind uint8

// The one-dimensional operation kinds.
const (
	OpInsert OpKind = iota
	OpDelete
	OpGet
	OpRange
	OpLen
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "Insert"
	case OpDelete:
		return "Delete"
	case OpGet:
		return "Get"
	case OpRange:
		return "Range"
	case OpLen:
		return "Len"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one one-dimensional operation.
type Op struct {
	Kind OpKind
	Key  core.Key   // Insert/Delete/Get key; Range lower bound
	Hi   core.Key   // Range upper bound
	Val  core.Value // Insert value
	Stop int        // Range: stop the scan after Stop visits (0 = scan all)
}

func (op Op) String() string {
	switch op.Kind {
	case OpInsert:
		return fmt.Sprintf("Insert(%d, %d)", op.Key, op.Val)
	case OpDelete:
		return fmt.Sprintf("Delete(%d)", op.Key)
	case OpGet:
		return fmt.Sprintf("Get(%d)", op.Key)
	case OpRange:
		return fmt.Sprintf("Range(%d, %d, stop=%d)", op.Key, op.Hi, op.Stop)
	case OpLen:
		return "Len()"
	}
	return op.Kind.String()
}

// Workload1D is a deterministic one-dimensional workload: an initial
// record set the index is built over, plus an operation sequence replayed
// against index and oracle.
type Workload1D struct {
	Name string
	Init []core.KV
	Ops  []Op
}

// Shapes1D lists the key-distribution shapes every 1-D factory is
// conformance-tested under: the easy near-linear CDF, heavy skew, high
// local density variance, and the CDF-poisoning worst case.
func Shapes1D() []dataset.Kind {
	return []dataset.Kind{dataset.Uniform, dataset.Lognormal, dataset.Clustered, dataset.Adversarial}
}

// NewWorkload1D generates a deterministic workload of nOps operations over
// keys of the given distribution shape. For mutable targets the op stream
// interleaves Insert/Delete/Get/Range/Len; read-only targets get the same
// key traffic with mutations replaced by reads. nInit keys are preloaded;
// a disjoint pool of the same shape feeds later inserts.
func NewWorkload1D(kind dataset.Kind, nInit, nOps int, mutable bool, seed int64) (Workload1D, error) {
	keys, err := dataset.Keys(kind, nInit*2, seed)
	if err != nil {
		return Workload1D{}, err
	}
	if len(keys) < 2 {
		return Workload1D{}, fmt.Errorf("conform: shape %s yielded %d keys", kind, len(keys))
	}
	// Even positions are preloaded, odd positions feed later inserts, so
	// both sets follow the shape's distribution.
	var init []core.KV
	var fresh []core.Key
	for i, k := range keys {
		if i%2 == 0 {
			init = append(init, core.KV{Key: k, Value: core.Value(k*2654435761 + 7)})
		} else {
			fresh = append(fresh, k)
		}
	}
	r := rand.New(rand.NewSource(seed ^ 0x5eed))
	pool := append([]core.Key(nil), keys...) // all keys ever eligible
	ops := make([]Op, 0, nOps)
	nextFresh := 0
	pick := func() core.Key { return pool[r.Intn(len(pool))] }
	// probe returns a key that is usually a miss: one past a pool key.
	probe := func() core.Key {
		if r.Intn(4) == 0 {
			return pick() + 1
		}
		return pick()
	}
	for len(ops) < nOps {
		roll := r.Intn(100)
		switch {
		case mutable && roll < 25:
			var k core.Key
			if nextFresh < len(fresh) && r.Intn(3) > 0 {
				k = fresh[nextFresh]
				nextFresh++
			} else {
				k = pick() // overwrite or reinsert
			}
			ops = append(ops, Op{Kind: OpInsert, Key: k, Val: core.Value(r.Uint64())})
		case mutable && roll < 40:
			ops = append(ops, Op{Kind: OpDelete, Key: probe()})
		case roll < 75:
			ops = append(ops, Op{Kind: OpGet, Key: probe()})
		case roll < 95:
			lo := pick()
			span := core.Key(r.Intn(1 << uint(4+r.Intn(16))))
			hi := lo + span
			if hi < lo {
				hi = ^core.Key(0)
			}
			stop := 0
			if r.Intn(3) == 0 {
				stop = 1 + r.Intn(8)
			}
			ops = append(ops, Op{Kind: OpRange, Key: lo, Hi: hi, Stop: stop})
		default:
			ops = append(ops, Op{Kind: OpLen})
		}
	}
	name := fmt.Sprintf("%s/n%d/ops%d", kind, nInit, nOps)
	return Workload1D{Name: name, Init: init, Ops: ops}, nil
}

// ---------------------------------------------------------------------------
// Spatial workloads
// ---------------------------------------------------------------------------

// SpatialOpKind enumerates the spatial operations the engine replays.
type SpatialOpKind uint8

// The spatial operation kinds.
const (
	SOpInsert SpatialOpKind = iota
	SOpDelete
	SOpLookup
	SOpSearch
	SOpKNN
	SOpLen
)

func (k SpatialOpKind) String() string {
	switch k {
	case SOpInsert:
		return "Insert"
	case SOpDelete:
		return "Delete"
	case SOpLookup:
		return "Lookup"
	case SOpSearch:
		return "Search"
	case SOpKNN:
		return "KNN"
	case SOpLen:
		return "Len"
	}
	return fmt.Sprintf("SpatialOpKind(%d)", uint8(k))
}

// SpatialOp is one spatial operation.
type SpatialOp struct {
	Kind SpatialOpKind
	P    core.Point // Insert/Delete/Lookup point; KNN query point
	Val  core.Value // Insert/Delete value
	Rect core.Rect  // Search rectangle
	K    int        // KNN k
	Stop int        // Search: stop after Stop visits (0 = scan all)
}

func (op SpatialOp) String() string {
	switch op.Kind {
	case SOpInsert:
		return fmt.Sprintf("Insert(%v, %d)", op.P, op.Val)
	case SOpDelete:
		return fmt.Sprintf("Delete(%v, %d)", op.P, op.Val)
	case SOpLookup:
		return fmt.Sprintf("Lookup(%v)", op.P)
	case SOpSearch:
		return fmt.Sprintf("Search(%v..%v, stop=%d)", op.Rect.Min, op.Rect.Max, op.Stop)
	case SOpKNN:
		return fmt.Sprintf("KNN(%v, %d)", op.P, op.K)
	case SOpLen:
		return "Len()"
	}
	return op.Kind.String()
}

// SpatialWorkload is a deterministic spatial workload.
type SpatialWorkload struct {
	Name string
	Init []core.PV
	Ops  []SpatialOp
}

// ShapesSpatial lists the point-distribution shapes every spatial factory
// is conformance-tested under.
func ShapesSpatial() []dataset.SpatialKind {
	return dataset.SpatialKinds()
}

// NewSpatialWorkload generates a deterministic spatial workload of nOps
// operations over dim-dimensional points of the given shape. valBase
// offsets the values of inserted points so preloaded and inserted records
// are distinguishable.
func NewSpatialWorkload(kind dataset.SpatialKind, nInit, nOps, dim int, mutable, knn bool, seed int64) (SpatialWorkload, error) {
	pts, err := dataset.Points(kind, nInit*2, dim, seed)
	if err != nil {
		return SpatialWorkload{}, err
	}
	var init []core.PV
	var fresh []core.Point
	for i, p := range pts {
		if i%2 == 0 {
			init = append(init, core.PV{Point: p, Value: core.Value(1000 + i)})
		} else {
			fresh = append(fresh, p)
		}
	}
	// A handful of exact duplicates of preloaded points with new values
	// exercise the multiple-equal-points path.
	r := rand.New(rand.NewSource(seed ^ 0x0bef))
	live := append([]core.PV(nil), init...) // tracks the oracle state for op targeting
	ops := make([]SpatialOp, 0, nOps)
	nextFresh := 0
	nextVal := core.Value(1 << 20)
	pickPt := func() core.Point {
		if len(live) == 0 {
			return fresh[r.Intn(len(fresh))]
		}
		return live[r.Intn(len(live))].Point
	}
	for len(ops) < nOps {
		roll := r.Intn(100)
		switch {
		case mutable && roll < 20:
			var p core.Point
			if nextFresh < len(fresh) && r.Intn(4) > 0 {
				p = fresh[nextFresh]
				nextFresh++
			} else {
				p = pickPt() // equal point, distinct value
			}
			v := nextVal
			nextVal++
			ops = append(ops, SpatialOp{Kind: SOpInsert, P: p, Val: v})
			live = append(live, core.PV{Point: p, Value: v})
		case mutable && roll < 35:
			if len(live) == 0 {
				continue
			}
			i := r.Intn(len(live))
			pv := live[i]
			if r.Intn(8) == 0 {
				pv.Value += 1 << 30 // deliberate miss: value not stored
			} else {
				live = append(live[:i], live[i+1:]...)
			}
			ops = append(ops, SpatialOp{Kind: SOpDelete, P: pv.Point, Val: pv.Value})
		case roll < 55:
			p := pickPt()
			if r.Intn(4) == 0 && len(p) > 0 {
				p = p.Clone()
				p[0] += 0.5 // miss
			}
			ops = append(ops, SpatialOp{Kind: SOpLookup, P: p})
		case roll < 80:
			c := pickPt()
			side := float64(uint64(1) << uint(6+r.Intn(11)))
			min := make(core.Point, dim)
			max := make(core.Point, dim)
			for d := 0; d < dim; d++ {
				min[d] = c[d] - side/2
				max[d] = c[d] + side/2
			}
			stop := 0
			if r.Intn(4) == 0 {
				stop = 1 + r.Intn(8)
			}
			ops = append(ops, SpatialOp{Kind: SOpSearch, Rect: core.Rect{Min: min, Max: max}, Stop: stop})
		case knn && roll < 92:
			q := pickPt().Clone()
			for d := range q {
				q[d] += r.NormFloat64() * 50
			}
			ops = append(ops, SpatialOp{Kind: SOpKNN, P: q, K: 1 + r.Intn(16)})
		default:
			ops = append(ops, SpatialOp{Kind: SOpLen})
		}
	}
	name := fmt.Sprintf("%s/d%d/n%d/ops%d", kind, dim, nInit, nOps)
	return SpatialWorkload{Name: name, Init: init, Ops: ops}, nil
}
