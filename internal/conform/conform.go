// Package conform is the differential-testing and invariant-checking
// subsystem of the lix library. Every index implementation registers a
// factory here (see register.go) with capability flags; the conformance
// suite then replays deterministic workloads simultaneously against each
// registered index and a trivially-correct oracle (a sorted slice for the
// one-dimensional indexes, a brute-force scan for the spatial ones) and
// reports any divergence as a minimized operation sequence.
//
// The methodology follows the SOSD benchmark (Marcus et al., "Benchmarking
// Learned Indexes", VLDB 2020): all implementations must agree on the same
// workload, not merely pass their own unit tests. The ALEX evaluation
// showed this property is easy to violate silently under mixed
// insert/delete workloads, which is why the op mix here interleaves
// upserts, deletes, point reads, early-stopping range scans and length
// queries.
//
// Structures that expose a CheckInvariants() error hook (PGM ε-bounds,
// ALEX gapped-array ordering, LIPP precise positions, B+-tree occupancy,
// R-tree MBR containment, ...) additionally have their internal invariants
// verified at fixed points during every replay.
package conform

import (
	"fmt"
	"sort"

	"github.com/lix-go/lix/internal/core"
)

// Index mirrors the public one-dimensional read interface structurally, so
// the registry does not depend on the façade package's named types.
type Index interface {
	Get(k core.Key) (core.Value, bool)
	Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int
	Len() int
	Stats() core.Stats
}

// MutableIndex is an Index supporting upserts and deletes.
type MutableIndex interface {
	Index
	Insert(k core.Key, v core.Value)
	Delete(k core.Key) bool
}

// SpatialIndex mirrors the public multi-dimensional read interface.
type SpatialIndex interface {
	Lookup(p core.Point) (core.Value, bool)
	Search(rect core.Rect, fn func(core.PV) bool) (visited, work int)
	Len() int
	Stats() core.Stats
}

// KNNIndex is a SpatialIndex that answers k-nearest-neighbor queries.
type KNNIndex interface {
	SpatialIndex
	KNN(q core.Point, k int) []core.PV
}

// MutableSpatialIndex is a SpatialIndex supporting inserts and deletes.
type MutableSpatialIndex interface {
	SpatialIndex
	Insert(p core.Point, v core.Value) error
	Delete(p core.Point, v core.Value) bool
}

// InvariantChecker is the optional per-structure hook: implementations
// verify their internal invariants (model error bounds, node occupancy,
// ordering, containment) and return the first violation found.
type InvariantChecker interface {
	CheckInvariants() error
}

// CheckInvariants runs ix's invariant hook if it has one; indexes without
// the hook trivially conform.
func CheckInvariants(ix any) error {
	if c, ok := ix.(InvariantChecker); ok {
		return c.CheckInvariants()
	}
	return nil
}

// Caps are the capability flags a factory registers with. They tell the
// workload engine which operations the index supports.
type Caps struct {
	// Mutable indexes support Insert/Delete after construction.
	Mutable bool
	// Spatial indexes store points; non-spatial indexes store uint64 keys.
	Spatial bool
	// KNN spatial indexes answer k-nearest-neighbor queries.
	KNN bool
	// AllowsEmpty builders accept an empty record set.
	AllowsEmpty bool
	// Dims restricts a spatial index to this dimensionality (0 = any).
	Dims int
}

// Factory builds one index implementation for conformance testing. Exactly
// one of Build1D / BuildSpatial is set, matching Caps.Spatial.
type Factory struct {
	Name string
	Caps Caps
	// Build1D returns an index holding recs (sorted ascending, distinct
	// keys). Factories with Caps.Mutable must return a MutableIndex.
	Build1D func(recs []core.KV) (Index, error)
	// BuildSpatial returns a spatial index holding pvs. Factories with
	// Caps.Mutable must return a MutableSpatialIndex.
	BuildSpatial func(pvs []core.PV) (SpatialIndex, error)
}

var factories []Factory

// Register adds a factory to the registry. It panics on duplicate names or
// inconsistent capability flags — both are programmer errors caught at
// init time.
func Register(f Factory) {
	if f.Name == "" {
		panic("conform: factory with empty name")
	}
	for _, g := range factories {
		if g.Name == f.Name {
			panic("conform: duplicate factory " + f.Name)
		}
	}
	if f.Caps.Spatial && f.BuildSpatial == nil || !f.Caps.Spatial && f.Build1D == nil {
		panic("conform: factory " + f.Name + " builder does not match Caps.Spatial")
	}
	factories = append(factories, f)
}

// Factories returns all registered factories sorted by name.
func Factories() []Factory {
	out := append([]Factory(nil), factories...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Factories1D returns the registered one-dimensional factories.
func Factories1D() []Factory {
	var out []Factory
	for _, f := range Factories() {
		if !f.Caps.Spatial {
			out = append(out, f)
		}
	}
	return out
}

// FactoriesSpatial returns the registered spatial factories.
func FactoriesSpatial() []Factory {
	var out []Factory
	for _, f := range Factories() {
		if f.Caps.Spatial {
			out = append(out, f)
		}
	}
	return out
}

// Lookup returns the named factory.
func Lookup(name string) (Factory, error) {
	for _, f := range factories {
		if f.Name == name {
			return f, nil
		}
	}
	return Factory{}, fmt.Errorf("conform: unknown factory %q", name)
}
