package conform

import (
	"math"

	"github.com/lix-go/lix/internal/core"
)

// CorpusCase1D is one edge-case record set applied to every registered 1-D
// factory. These are the inputs that have historically broken learned
// indexes: boundary keys, float64-colliding keys, constant-value runs, and
// single outliers that wreck global CDF models. The corpus replaces the
// ad-hoc per-package duplicates of these sets.
type CorpusCase1D struct {
	Name string
	Recs []core.KV // sorted ascending, distinct keys
}

// Corpus1D returns the shared 1-D edge-case corpus.
func Corpus1D() []CorpusCase1D {
	mk := func(keys ...core.Key) []core.KV {
		recs := make([]core.KV, len(keys))
		for i, k := range keys {
			recs[i] = core.KV{Key: k, Value: core.Value(i + 1)}
		}
		return recs
	}
	var cases []CorpusCase1D
	cases = append(cases,
		CorpusCase1D{Name: "empty", Recs: nil},
		CorpusCase1D{Name: "single", Recs: mk(12345)},
		CorpusCase1D{Name: "boundaries", Recs: mk(0, 1, 2, math.MaxUint64-2, math.MaxUint64-1, math.MaxUint64)},
	)
	// All records share one value: Range/Get must still distinguish by key.
	dup := make([]core.KV, 512)
	for i := range dup {
		dup[i] = core.KV{Key: core.Key(i) * 977, Value: 7}
	}
	cases = append(cases, CorpusCase1D{Name: "all-duplicate-values", Recs: dup})
	// Keys above 2^53 spaced by 1: collide at float64 resolution.
	fc := make([]core.Key, 3000)
	for i := range fc {
		fc[i] = core.Key(1)<<60 + core.Key(i)
	}
	cases = append(cases, CorpusCase1D{Name: "float-collide", Recs: kvFor(fc)})
	// Tiny then huge: one outlier dominates any linear fit.
	out := make([]core.Key, 0, 3001)
	for i := 0; i < 3000; i++ {
		out = append(out, core.Key(i))
	}
	out = append(out, core.Key(1)<<62)
	cases = append(cases, CorpusCase1D{Name: "outlier", Recs: kvFor(out)})
	// Two dense clusters at opposite ends of the key space.
	bi := make([]core.Key, 0, 3000)
	for i := 0; i < 1500; i++ {
		bi = append(bi, core.Key(i)*3)
	}
	for i := 0; i < 1500; i++ {
		bi = append(bi, core.Key(1)<<61+core.Key(i)*3)
	}
	cases = append(cases, CorpusCase1D{Name: "bimodal", Recs: kvFor(bi)})
	// Exponentially growing gaps.
	exp := make([]core.Key, 0, 60)
	k := core.Key(1)
	for i := 0; i < 60; i++ {
		exp = append(exp, k)
		k *= 2
	}
	cases = append(cases, CorpusCase1D{Name: "exponential", Recs: kvFor(exp)})
	return cases
}

func kvFor(keys []core.Key) []core.KV {
	recs := make([]core.KV, len(keys))
	for i, k := range keys {
		recs[i] = core.KV{Key: k, Value: core.Value(k*2654435761 + 1)}
	}
	return recs
}

// CorpusOps1D derives a deterministic read-heavy probe sequence for a
// corpus case: Get on every key and its ±1 neighbors, boundary-spanning
// ranges (with and without early stop), and Len.
func CorpusOps1D(recs []core.KV, mutable bool) []Op {
	var ops []Op
	for _, r := range recs {
		ops = append(ops, Op{Kind: OpGet, Key: r.Key})
		if r.Key > 0 {
			ops = append(ops, Op{Kind: OpGet, Key: r.Key - 1})
		}
		if r.Key < math.MaxUint64 {
			ops = append(ops, Op{Kind: OpGet, Key: r.Key + 1})
		}
	}
	ops = append(ops,
		Op{Kind: OpLen},
		Op{Kind: OpRange, Key: 0, Hi: math.MaxUint64},
		Op{Kind: OpRange, Key: 0, Hi: math.MaxUint64, Stop: 3},
	)
	if len(recs) > 0 {
		mid := recs[len(recs)/2].Key
		ops = append(ops,
			Op{Kind: OpRange, Key: recs[0].Key, Hi: mid},
			Op{Kind: OpRange, Key: mid, Hi: recs[len(recs)-1].Key, Stop: 5},
		)
	}
	if mutable {
		// Delete-then-reinsert over a prefix, the delta-buffer stress case.
		n := len(recs)
		if n > 64 {
			n = 64
		}
		for i := 0; i < n; i++ {
			ops = append(ops, Op{Kind: OpDelete, Key: recs[i].Key})
		}
		ops = append(ops, Op{Kind: OpLen})
		for i := 0; i < n; i++ {
			ops = append(ops, Op{Kind: OpInsert, Key: recs[i].Key, Val: core.Value(i) + 9000})
			ops = append(ops, Op{Kind: OpGet, Key: recs[i].Key})
		}
		ops = append(ops, Op{Kind: OpLen}, Op{Kind: OpRange, Key: 0, Hi: math.MaxUint64})
	}
	return ops
}

// CorpusCaseSpatial is one edge-case point set applied to every registered
// spatial factory (2-D, the dimensionality every implementation supports).
type CorpusCaseSpatial struct {
	Name string
	Pts  []core.PV
}

// CorpusSpatial returns the shared spatial edge-case corpus.
func CorpusSpatial() []CorpusCaseSpatial {
	var cases []CorpusCaseSpatial
	cases = append(cases,
		CorpusCaseSpatial{Name: "empty", Pts: nil},
		CorpusCaseSpatial{Name: "single", Pts: []core.PV{{Point: core.Point{100, 100}, Value: 1}}},
	)
	// Sorted along the diagonal, then the same points reversed: insertion
	// order must not matter.
	var sorted, reversed []core.PV
	for i := 0; i < 400; i++ {
		p := core.Point{float64(i) * 7, float64(i) * 7}
		sorted = append(sorted, core.PV{Point: p, Value: core.Value(i)})
	}
	for i := len(sorted) - 1; i >= 0; i-- {
		reversed = append(reversed, sorted[i])
	}
	cases = append(cases,
		CorpusCaseSpatial{Name: "sorted-diagonal", Pts: sorted},
		CorpusCaseSpatial{Name: "reversed-diagonal", Pts: reversed},
	)
	// Every point identical: degenerate MBRs, zero-extent quantization.
	eq := make([]core.PV, 200)
	for i := range eq {
		eq[i] = core.PV{Point: core.Point{512, 512}, Value: core.Value(i)}
	}
	cases = append(cases, CorpusCaseSpatial{Name: "equal-points", Pts: eq})
	// One axis constant: zero extent in dimension 1.
	line := make([]core.PV, 300)
	for i := range line {
		line[i] = core.PV{Point: core.Point{float64(i) * 11, 777}, Value: core.Value(i)}
	}
	cases = append(cases, CorpusCaseSpatial{Name: "axis-line", Pts: line})
	return cases
}

// CorpusOpsSpatial derives a deterministic probe sequence for a spatial
// corpus case: Lookup on every point (and a shifted miss), containing and
// splitting rectangles, kNN at several k, and Len.
func CorpusOpsSpatial(pts []core.PV, mutable, knn bool) []SpatialOp {
	var ops []SpatialOp
	n := len(pts)
	probeCap := n
	if probeCap > 256 {
		probeCap = 256
	}
	for i := 0; i < probeCap; i++ {
		ops = append(ops, SpatialOp{Kind: SOpLookup, P: pts[i].Point})
		miss := pts[i].Point.Clone()
		miss[0] += 0.25
		ops = append(ops, SpatialOp{Kind: SOpLookup, P: miss})
	}
	world := core.Rect{Min: core.Point{-1e9, -1e9}, Max: core.Point{1e9, 1e9}}
	ops = append(ops,
		SpatialOp{Kind: SOpLen},
		SpatialOp{Kind: SOpSearch, Rect: world},
		SpatialOp{Kind: SOpSearch, Rect: world, Stop: 3},
		SpatialOp{Kind: SOpSearch, Rect: core.Rect{Min: core.Point{0, 0}, Max: core.Point{1000, 1000}}},
	)
	if knn {
		for _, k := range []int{1, 3, 17} {
			ops = append(ops, SpatialOp{Kind: SOpKNN, P: core.Point{500, 500}, K: k})
		}
	}
	if mutable && n > 0 {
		m := n
		if m > 48 {
			m = 48
		}
		for i := 0; i < m; i++ {
			ops = append(ops, SpatialOp{Kind: SOpDelete, P: pts[i].Point, Val: pts[i].Value})
		}
		ops = append(ops, SpatialOp{Kind: SOpLen}, SpatialOp{Kind: SOpSearch, Rect: world})
		for i := 0; i < m; i++ {
			ops = append(ops, SpatialOp{Kind: SOpInsert, P: pts[i].Point, Val: pts[i].Value + 5000})
		}
		ops = append(ops, SpatialOp{Kind: SOpLen}, SpatialOp{Kind: SOpSearch, Rect: world})
	}
	return ops
}
