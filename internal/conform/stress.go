package conform

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/lix-go/lix/internal/core"
)

// This file is the concurrent differential stress tier. CheckConcurrent
// (concurrency.go) proves per-read linearizability-lite bounds for one
// upsert-only schedule; CheckStress generates randomized concurrent
// histories of Insert/Delete (plus batched variants), runs them against
// the index under concurrent readers, and then compares the quiesced final
// state against a sequential oracle replay. Writers own disjoint key sets,
// so every concurrent interleaving must quiesce to the same final state —
// any divergence is a real atomicity or lost-update bug. Failing histories
// are greedily shrunk (re-running each candidate a few times, since
// concurrent failures are probabilistic) before being reported.

// StressConfig sizes a CheckStress run.
type StressConfig struct {
	Writers       int   // concurrent writer goroutines (disjoint key sets)
	Readers       int   // concurrent point/batch readers
	RangeReaders  int   // concurrent range scanners
	KeysPerWriter int   // keys owned by each writer
	OpsPerWriter  int   // mutation ops generated per writer
	Batch         bool  // exercise LookupBatch/InsertBatch when supported
	Seed          int64 // history generation seed
	ShrinkRetries int   // reruns per shrink candidate (failures are probabilistic)
	ShrinkBudget  int   // max candidate evaluations during shrinking
}

// DefaultStressConfig returns a configuration sized so a -race run
// finishes in a few seconds while still forcing delta merges, splits and
// RCU swaps in the structures under test.
func DefaultStressConfig() StressConfig {
	return StressConfig{
		Writers:       4,
		Readers:       3,
		RangeReaders:  2,
		KeysPerWriter: 128,
		OpsPerWriter:  400,
		Batch:         true,
		Seed:          1,
		ShrinkRetries: 3,
		ShrinkBudget:  80,
	}
}

// BatchIndex is the batched-operation surface of the sharded serving
// layer. Stress runs exercise it when the index under test provides it.
type BatchIndex interface {
	LookupBatch(keys []core.Key) ([]core.Value, []bool)
	InsertBatch(recs []core.KV)
}

// stressHistory is one generated concurrent history: the records the
// index is built over plus each writer's private mutation sequence.
type stressHistory struct {
	init    []core.KV
	writers [][]Op // OpInsert/OpDelete only; writer w touches only its own keys
}

func (h stressHistory) ops() int {
	n := 0
	for _, w := range h.writers {
		n += len(w)
	}
	return n
}

// Key/value scheme shared with CheckConcurrent: keys are scattered but
// monotone in their global index, values encode (index, seq) so a read can
// prove which key a value was written to.
func stressKey(idx int) core.Key            { return core.Key(idx+1) * 7919 }
func stressEnc(idx, seq int) core.Value     { return core.Value(idx)<<32 | core.Value(seq) }
func stressDec(v core.Value) (idx, seq int) { return int(v >> 32), int(v & 0xffffffff) }

// genStressHistory builds a deterministic history: half the keys are
// preloaded through the builder, then each writer gets a randomized
// Insert/Delete sequence over its own keys with values carrying their
// generation order.
func genStressHistory(cfg StressConfig) stressHistory {
	r := rand.New(rand.NewSource(cfg.Seed))
	total := cfg.Writers * cfg.KeysPerWriter
	var init []core.KV
	for idx := 0; idx < total; idx += 2 {
		init = append(init, core.KV{Key: stressKey(idx), Value: stressEnc(idx, 0)})
	}
	writers := make([][]Op, cfg.Writers)
	for w := range writers {
		base := w * cfg.KeysPerWriter
		ops := make([]Op, 0, cfg.OpsPerWriter)
		for seq := 1; len(ops) < cfg.OpsPerWriter; seq++ {
			idx := base + r.Intn(cfg.KeysPerWriter)
			if r.Intn(10) < 7 {
				ops = append(ops, Op{Kind: OpInsert, Key: stressKey(idx), Val: stressEnc(idx, seq)})
			} else {
				ops = append(ops, Op{Kind: OpDelete, Key: stressKey(idx)})
			}
		}
		writers[w] = ops
	}
	return stressHistory{init: init, writers: writers}
}

// stressOracle replays the history sequentially. Writers own disjoint
// keys, so any concurrent interleaving must quiesce to this state.
func stressOracle(h stressHistory) map[core.Key]core.Value {
	m := make(map[core.Key]core.Value, len(h.init))
	for _, r := range h.init {
		m[r.Key] = r.Value
	}
	for _, ops := range h.writers {
		for _, op := range ops {
			switch op.Kind {
			case OpInsert:
				m[op.Key] = op.Val
			case OpDelete:
				delete(m, op.Key)
			}
		}
	}
	return m
}

// runStress executes one concurrent run of h and verifies the quiesced
// final state differentially. seed varies reader scheduling between
// retries of the same history.
func runStress(build func(init []core.KV) (MutableIndex, error), h stressHistory, cfg StressConfig, seed int64) error {
	ix, err := build(h.init)
	if err != nil {
		return fmt.Errorf("conform: stress build failed: %v", err)
	}
	defer closeIndex(ix)
	batch, _ := ix.(BatchIndex)
	if !cfg.Batch {
		batch = nil
	}
	total := cfg.Writers * cfg.KeysPerWriter

	var mu sync.Mutex
	var firstErr error
	var done atomic.Bool
	var writersLeft atomic.Int64
	fail := func(format string, args ...any) {
		mu.Lock()
		if firstErr == nil {
			firstErr = fmt.Errorf(format, args...)
		}
		mu.Unlock()
		done.Store(true)
	}

	var wg sync.WaitGroup
	writersLeft.Store(int64(len(h.writers)))
	for w, ops := range h.writers {
		wg.Add(1)
		go func(w int, ops []Op) {
			defer wg.Done()
			defer func() {
				if writersLeft.Add(-1) == 0 {
					done.Store(true)
				}
			}()
			// Writers run to completion even after a reader failed so the
			// quiesced state stays the oracle state.
			for i := 0; i < len(ops); {
				// Group a run of consecutive inserts into one batch when the
				// index supports it (and the run length exceeds 1), to drive
				// the batched write path under contention.
				if batch != nil && ops[i].Kind == OpInsert {
					j := i
					for j < len(ops) && ops[j].Kind == OpInsert && j-i < 16 {
						j++
					}
					if j-i > 1 {
						recs := make([]core.KV, 0, j-i)
						for _, op := range ops[i:j] {
							recs = append(recs, core.KV{Key: op.Key, Value: op.Val})
						}
						batch.InsertBatch(recs)
						i = j
						continue
					}
				}
				switch ops[i].Kind {
				case OpInsert:
					ix.Insert(ops[i].Key, ops[i].Val)
				case OpDelete:
					ix.Delete(ops[i].Key)
				}
				i++
			}
		}(w, ops)
	}

	checkVal := func(op string, k core.Key, v core.Value) bool {
		idx, seq := stressDec(v)
		if stressKey(idx) != k {
			fail("conform: stress %s(%d) observed a value written to key %d", op, k, stressKey(idx))
			return false
		}
		if seq < 0 || seq > cfg.OpsPerWriter {
			fail("conform: stress %s(%d) observed out-of-range seq %d", op, k, seq)
			return false
		}
		return true
	}

	for rd := 0; rd < cfg.Readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed + 100 + int64(rd)))
			for !done.Load() {
				if batch != nil && r.Intn(4) == 0 {
					keys := make([]core.Key, 1+r.Intn(32))
					for i := range keys {
						keys[i] = stressKey(r.Intn(total))
					}
					vals, oks := batch.LookupBatch(keys)
					if len(vals) != len(keys) || len(oks) != len(keys) {
						fail("conform: stress LookupBatch(%d keys) returned %d vals, %d oks",
							len(keys), len(vals), len(oks))
						return
					}
					for i, k := range keys {
						if oks[i] && !checkVal("LookupBatch", k, vals[i]) {
							return
						}
					}
					continue
				}
				k := stressKey(r.Intn(total))
				if v, ok := ix.Get(k); ok && !checkVal("Get", k, v) {
					return
				}
			}
		}(rd)
	}

	for rr := 0; rr < cfg.RangeReaders; rr++ {
		wg.Add(1)
		go func(rr int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed + 200 + int64(rr)))
			for !done.Load() {
				loIdx := r.Intn(total)
				hiIdx := loIdx + 1 + r.Intn(96)
				if hiIdx >= total {
					hiIdx = total - 1
				}
				prev, seen := core.Key(0), false
				bad := ""
				ix.Range(stressKey(loIdx), stressKey(hiIdx), func(k core.Key, v core.Value) bool {
					if seen && k <= prev {
						bad = fmt.Sprintf("conform: stress Range keys not ascending: %d after %d", k, prev)
						return false
					}
					seen, prev = true, k
					idx, seq := stressDec(v)
					if stressKey(idx) != k || seq < 0 || seq > cfg.OpsPerWriter {
						bad = fmt.Sprintf("conform: stress Range saw key %d with foreign value (idx %d, seq %d)", k, idx, seq)
						return false
					}
					return true
				})
				if bad != "" {
					fail("%s", bad)
					return
				}
			}
		}(rr)
	}

	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	// Quiesced differential comparison against the sequential oracle.
	want := stressOracle(h)
	if got := ix.Len(); got != len(want) {
		return fmt.Errorf("conform: stress quiesced Len() = %d, oracle %d", got, len(want))
	}
	for idx := 0; idx < total; idx++ {
		k := stressKey(idx)
		gv, gok := ix.Get(k)
		wv, wok := want[k]
		if gok != wok || (gok && gv != wv) {
			return fmt.Errorf("conform: stress quiesced Get(%d) = (%d, %v), oracle (%d, %v)", k, gv, gok, wv, wok)
		}
	}
	n, prev, seen := 0, core.Key(0), false
	var rangeErr error
	ix.Range(0, ^core.Key(0), func(k core.Key, v core.Value) bool {
		if seen && k <= prev {
			rangeErr = fmt.Errorf("conform: stress quiesced Range not ascending: %d after %d", k, prev)
			return false
		}
		seen, prev = true, k
		if wv, ok := want[k]; !ok || wv != v {
			rangeErr = fmt.Errorf("conform: stress quiesced Range saw (%d, %d), oracle (%d, %v)", k, v, wv, ok)
			return false
		}
		n++
		return true
	})
	if rangeErr != nil {
		return rangeErr
	}
	if n != len(want) {
		return fmt.Errorf("conform: stress quiesced Range visited %d records, oracle %d", n, len(want))
	}
	return CheckInvariants(ix)
}

// CheckStress generates a randomized concurrent history, runs it against a
// fresh index from build, and differentially verifies the quiesced state.
// On failure the history is greedily shrunk — each candidate re-run
// ShrinkRetries times, since concurrent failures reproduce probabilistically
// — and the minimized history is included in the returned error. nil means
// the run was clean. Run under -race to also catch data races.
func CheckStress(build func(init []core.KV) (MutableIndex, error), cfg StressConfig) error {
	if cfg.Writers <= 0 || cfg.KeysPerWriter <= 0 || cfg.OpsPerWriter <= 0 {
		return fmt.Errorf("conform: invalid stress config %+v", cfg)
	}
	if cfg.ShrinkRetries <= 0 {
		cfg.ShrinkRetries = 3
	}
	if cfg.ShrinkBudget <= 0 {
		cfg.ShrinkBudget = 80
	}
	h := genStressHistory(cfg)
	err := runStress(build, h, cfg, cfg.Seed)
	if err == nil {
		return nil
	}
	h, err = shrinkStress(build, h, cfg, err)
	return &StressFailure{Err: err, History: h}
}

// shrinkStress greedily minimizes a failing history: first each writer's
// op sequence (ddmin-style chunk removal), then the initial record set. A
// candidate is kept only if it fails at least once across ShrinkRetries
// runs; the budget bounds total concurrent executions.
func shrinkStress(build func(init []core.KV) (MutableIndex, error), h stressHistory, cfg StressConfig, firstErr error) (stressHistory, error) {
	budget := cfg.ShrinkBudget
	lastErr := firstErr
	failsOnce := func(cand stressHistory) bool {
		if budget <= 0 {
			return false
		}
		for r := 0; r < cfg.ShrinkRetries && budget > 0; r++ {
			budget--
			if err := runStress(build, cand, cfg, cfg.Seed+int64(1000*r)); err != nil {
				lastErr = err
				return true
			}
		}
		return false
	}
	for w := range h.writers {
		h.writers[w] = shrinkSlice(h.writers[w], func(ops []Op) bool {
			cand := h
			cand.writers = append([][]Op(nil), h.writers...)
			cand.writers[w] = ops
			return failsOnce(cand)
		})
	}
	h.init = shrinkSlice(h.init, func(init []core.KV) bool {
		cand := h
		cand.init = init
		return failsOnce(cand)
	})
	return h, lastErr
}

// StressFailure is a stress-tier failure with its minimized history.
type StressFailure struct {
	Err     error
	History stressHistory
}

func (f *StressFailure) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v\nminimized history: %d initial records, %d writers, %d ops",
		f.Err, len(f.History.init), len(f.History.writers), f.History.ops())
	if f.History.ops() <= 48 {
		for w, ops := range f.History.writers {
			for i, op := range ops {
				fmt.Fprintf(&b, "\n  writer[%d] op[%d] = %s", w, i, op)
			}
		}
	}
	return b.String()
}

func (f *StressFailure) Unwrap() error { return f.Err }
