package conform

import (
	"math"
	"testing"

	lix "github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/core"
)

// TestSearchRangeEmptyNormalization pins the façade-wide empty-result
// contract: lix.SearchRange returns an empty non-nil slice — never nil —
// for an empty index, an empty interval, a gap query, and (through the
// sharded fan-out) empty shards. Before the helper existed, collecting a
// range from an empty index yielded nil from some implementations and
// []KV{} from others, and callers using reflect.DeepEqual or JSON
// round-trips diverged on which they got.
func TestSearchRangeEmptyNormalization(t *testing.T) {
	check := func(t *testing.T, name string, got []core.KV) {
		t.Helper()
		if got == nil {
			t.Fatalf("%s: SearchRange returned nil, want empty slice", name)
		}
		if len(got) != 0 {
			t.Fatalf("%s: SearchRange returned %d records, want 0", name, len(got))
		}
	}
	for _, f := range Factories1D() {
		if !f.Caps.AllowsEmpty {
			continue
		}
		f := f
		t.Run(f.Name, func(t *testing.T) {
			ix, err := f.Build1D(nil)
			if err != nil {
				t.Fatal(err)
			}
			check(t, "empty index", lix.SearchRange(ix, 0, math.MaxUint64))
			check(t, "inverted interval", lix.SearchRange(ix, 10, 5))

			// Rebuild with two extreme records: a gap query between them
			// must still normalize, and a spanning query must see both.
			ix2, err := f.Build1D([]core.KV{{Key: 1, Value: 10}, {Key: math.MaxUint64, Value: 20}})
			if err != nil {
				t.Fatal(err)
			}
			check(t, "gap query", lix.SearchRange(ix2, 100, 1000))
			got := lix.SearchRange(ix2, 0, math.MaxUint64)
			if len(got) != 2 || got[0].Key != 1 || got[1].Key != math.MaxUint64 {
				t.Fatalf("spanning query = %v", got)
			}
		})
	}
}
