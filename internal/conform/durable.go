package conform

import (
	"fmt"
	"os"

	lix "github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/core"
)

// This file folds the durable storage layer into the conformance
// machinery: the persistence path registers ordinary differential
// factories (so every workload shape and the stress tier replay through
// the WAL), and CheckReopen adds the durability-specific property the
// in-memory suite cannot express — close, reopen from disk, and the
// recovered index must equal the oracle.

// durableIndex wraps a store built in a scratch directory; Close tears
// the store down and removes its files, which the replay engine invokes
// through the io.Closer hook after every build.
type durableIndex struct {
	*lix.Durable
	dir string
}

func (d durableIndex) Close() error {
	err := d.Durable.Close()
	os.RemoveAll(d.dir)
	return err
}

// durableOpts are the conformance-suite store settings: no per-op fsync
// (the suite checks logical equivalence, not power-loss durability, and
// replays thousands of ops per workload) and a checkpoint interval small
// enough that replays cross generation rotations.
func durableOpts(shards int, engine string) lix.DurableOptions {
	return lix.DurableOptions{
		Shards:          shards,
		Fsync:           lix.FsyncNever,
		CheckpointEvery: 2000,
		Engine:          engine,
	}
}

func durable1D(name string, shards int, engine string) {
	Register(Factory{
		Name: name,
		Caps: Caps{Mutable: true, AllowsEmpty: true},
		Build1D: func(recs []core.KV) (Index, error) {
			dir, err := os.MkdirTemp("", "lix-conform-"+name+"-*")
			if err != nil {
				return nil, err
			}
			d, err := lix.NewDurable(dir, recs, durableOpts(shards, engine))
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			return durableIndex{Durable: d, dir: dir}, nil
		},
	})
}

func init() {
	durable1D("durable-btree", 0, "")
	durable1D("durable-sharded", 4, "")
	durable1D("durable-lsm", 0, lix.EngineLSM)
	durable1D("durable-lsm-sharded", 4, lix.EngineLSM)
}

// DurableFactory builds and reopens a durable store for CheckReopen.
type DurableFactory struct {
	Name string
	// Create initializes a fresh store at dir seeded with init.
	Create func(dir string, init []core.KV) (*lix.Durable, error)
	// Reopen opens the store at dir after a clean Close.
	Reopen func(dir string) (*lix.Durable, error)
}

// DurableFactories lists the reopen-checked configurations, mirroring
// the registered differential factories.
func DurableFactories() []DurableFactory {
	mk := func(name string, shards int, engine string) DurableFactory {
		return DurableFactory{
			Name: name,
			Create: func(dir string, init []core.KV) (*lix.Durable, error) {
				return lix.NewDurable(dir, init, durableOpts(shards, engine))
			},
			Reopen: func(dir string) (*lix.Durable, error) {
				// A bare reconfiguration-free open: kind, shard count and
				// storage engine must come back from the persisted state.
				return lix.Open(dir, lix.DurableOptions{
					Fsync:           lix.FsyncNever,
					CheckpointEvery: 2000,
				})
			},
		}
	}
	return []DurableFactory{
		mk("durable-btree", 0, ""),
		mk("durable-sharded", 4, ""),
		mk("durable-lsm", 0, lix.EngineLSM),
		mk("durable-lsm-sharded", 4, lix.EngineLSM),
	}
}

// CheckReopen is the reopen-after-quiesce equivalence check: it replays
// w's mutations against a fresh store and the sorted-slice oracle,
// closes the store cleanly, reopens it from disk, and verifies the
// recovered index matches the oracle on Len, every oracle key, probes
// around the key space, and a full ascending Range. nil means the
// persisted state is equivalent.
func CheckReopen(f DurableFactory, w Workload1D, dir string) error {
	d, err := f.Create(dir, w.Init)
	if err != nil {
		return fmt.Errorf("conform: %s create: %v", f.Name, err)
	}
	o := newOracle1D(w.Init)
	for i, op := range w.Ops {
		switch op.Kind {
		case OpInsert:
			if err := d.Put(op.Key, op.Val); err != nil {
				d.Close()
				return fmt.Errorf("conform: %s op %d %s: %v", f.Name, i, op, err)
			}
			o.Insert(op.Key, op.Val)
		case OpDelete:
			got, err := d.Del(op.Key)
			if err != nil {
				d.Close()
				return fmt.Errorf("conform: %s op %d %s: %v", f.Name, i, op, err)
			}
			if want := o.Delete(op.Key); got != want {
				d.Close()
				return fmt.Errorf("conform: %s op %d %s = %v, oracle %v", f.Name, i, op, got, want)
			}
		}
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("conform: %s close: %v", f.Name, err)
	}

	r, err := f.Reopen(dir)
	if err != nil {
		return fmt.Errorf("conform: %s reopen: %v", f.Name, err)
	}
	defer r.Close()
	if got, want := r.Len(), o.Len(); got != want {
		return fmt.Errorf("conform: %s reopened Len() = %d, oracle %d", f.Name, got, want)
	}
	// Every oracle record must come back; probes one past each key catch
	// phantom records on the miss path.
	missErr := error(nil)
	o.Range(0, ^core.Key(0), func(k core.Key, v core.Value) bool {
		if gv, ok := r.Get(k); !ok || gv != v {
			missErr = fmt.Errorf("conform: %s reopened Get(%d) = (%d, %v), oracle (%d, true)", f.Name, k, gv, ok, v)
			return false
		}
		if gv, ok := r.Get(k + 1); ok {
			if wv, wok := o.Get(k + 1); !wok || wv != gv {
				missErr = fmt.Errorf("conform: %s reopened Get(%d) phantom (%d)", f.Name, k+1, gv)
				return false
			}
		}
		return true
	})
	if missErr != nil {
		return missErr
	}
	// Full scans must agree record-for-record, in order.
	var got, want []core.KV
	r.Range(0, ^core.Key(0), func(k core.Key, v core.Value) bool {
		got = append(got, core.KV{Key: k, Value: v})
		return true
	})
	o.Range(0, ^core.Key(0), func(k core.Key, v core.Value) bool {
		want = append(want, core.KV{Key: k, Value: v})
		return true
	})
	if len(got) != len(want) {
		return fmt.Errorf("conform: %s reopened Range yielded %d records, oracle %d", f.Name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("conform: %s reopened Range record %d = %v, oracle %v", f.Name, i, got[i], want[i])
		}
	}
	return nil
}
