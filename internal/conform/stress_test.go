package conform

import (
	"strings"
	"sync"
	"testing"

	lix "github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/core"
)

func stressCfg(t *testing.T, seed int64) StressConfig {
	cfg := DefaultStressConfig()
	cfg.Seed = seed
	if testing.Short() {
		// The race detector multiplies per-op cost ~10x; shrink the
		// schedule, not the concurrency.
		cfg.KeysPerWriter = 64
		cfg.OpsPerWriter = 120
	}
	return cfg
}

// TestShardedStress runs the concurrent differential stress tier against
// the sharded serving layer in both lock modes, with shard and delta sizes
// small enough that every run crosses shard boundaries and forces RCU
// snapshot swaps while readers are in flight.
func TestShardedStress(t *testing.T) {
	cases := []struct {
		name string
		cfg  lix.ShardedConfig
	}{
		{"rw-btree", lix.ShardedConfig{Shards: 4}},
		{"rw-skiplist", lix.ShardedConfig{Shards: 3, Backend: "skiplist"}},
		{"rcu-pgm", lix.ShardedConfig{Shards: 4, Mode: lix.ShardRCU, DeltaCap: 32}},
		{"rcu-binary", lix.ShardedConfig{Shards: 2, Mode: lix.ShardRCU, Snapshot: "binary", DeltaCap: 16}},
	}
	for i, c := range cases {
		c, i := c, i
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			err := CheckStress(func(init []core.KV) (MutableIndex, error) {
				return lix.NewSharded(init, c.cfg)
			}, stressCfg(t, int64(i+1)))
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestXIndexStress runs the same tier against XIndex, whose fine-grained
// concurrency predates the sharding layer.
func TestXIndexStress(t *testing.T) {
	err := CheckStress(func(init []core.KV) (MutableIndex, error) {
		ix := lix.NewXIndex(256, 32)
		for _, r := range init {
			ix.Insert(r.Key, r.Value)
		}
		return ix, nil
	}, stressCfg(t, 42))
	if err != nil {
		t.Fatal(err)
	}
}

// lossyIndex is a deliberately buggy concurrent index: a mutex-guarded
// B+-tree that silently drops every 17th insert. It exists to prove the
// stress tier detects lost updates and shrinks the failing history.
type lossyIndex struct {
	mu sync.Mutex
	ix lix.MutableIndex
	n  int
}

func (l *lossyIndex) Get(k core.Key) (core.Value, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ix.Get(k)
}

func (l *lossyIndex) Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ix.Range(lo, hi, fn)
}

func (l *lossyIndex) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ix.Len()
}

func (l *lossyIndex) Stats() core.Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ix.Stats()
}

func (l *lossyIndex) Insert(k core.Key, v core.Value) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.n++
	if l.n%17 == 0 {
		return // lost update
	}
	l.ix.Insert(k, v)
}

func (l *lossyIndex) Delete(k core.Key) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ix.Delete(k)
}

// TestStressDetectsLostUpdates pins that the tier catches a buggy index
// and that the reported history is smaller than the generated one.
func TestStressDetectsLostUpdates(t *testing.T) {
	cfg := DefaultStressConfig()
	cfg.Seed = 5
	cfg.Batch = false
	cfg.KeysPerWriter = 32
	cfg.OpsPerWriter = 120
	err := CheckStress(func(init []core.KV) (MutableIndex, error) {
		l := &lossyIndex{ix: lix.NewBTree(0)}
		for _, r := range init {
			l.ix.Insert(r.Key, r.Value) // preload without counting drops
		}
		return l, nil
	}, cfg)
	if err == nil {
		t.Fatal("stress tier missed a lossy index")
	}
	sf, ok := err.(*StressFailure)
	if !ok {
		t.Fatalf("error type %T, want *StressFailure", err)
	}
	if full := cfg.Writers * cfg.OpsPerWriter; sf.History.ops() >= full {
		t.Fatalf("history not shrunk: %d ops of %d", sf.History.ops(), full)
	}
	if !strings.Contains(err.Error(), "minimized history") {
		t.Fatalf("failure lacks minimized history: %v", err)
	}
}

// TestStressConfigValidation pins that a zero-valued configuration is
// rejected instead of vacuously passing.
func TestStressConfigValidation(t *testing.T) {
	err := CheckStress(func(init []core.KV) (MutableIndex, error) {
		return lix.NewBTree(0), nil
	}, StressConfig{})
	if err == nil {
		t.Fatal("zero config accepted")
	}
}
