package conform

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"github.com/lix-go/lix/internal/core"
)

// ConcurrencyConfig sizes a CheckConcurrent run.
type ConcurrencyConfig struct {
	Writers       int   // concurrent writer goroutines (each owns a disjoint key set)
	Readers       int   // concurrent point-read goroutines
	RangeReaders  int   // concurrent range-scan goroutines
	KeysPerWriter int   // keys owned by each writer
	Iters         int   // upsert rounds per writer over its key set
	Seed          int64 // deterministic scheduling of reader key picks
}

// DefaultConcurrencyConfig returns a configuration sized so that a -race
// run finishes in a few seconds while still forcing group compactions and
// splits in XIndex-style structures.
func DefaultConcurrencyConfig() ConcurrencyConfig {
	return ConcurrencyConfig{
		Writers:       4,
		Readers:       4,
		RangeReaders:  2,
		KeysPerWriter: 256,
		Iters:         40,
		Seed:          1,
	}
}

// CheckConcurrent is a linearizability-lite checker for concurrent mutable
// indexes (XIndex). Each key has exactly one writer, which upserts
// monotonically increasing sequence numbers and publishes a happens-before
// window around every write:
//
//	started[k] = seq   (before Insert)
//	Insert(k, enc(k, seq))
//	completed[k] = seq (after Insert)
//
// A reader samples lo = completed[k] before Get and hi = started[k] after
// Get; linearizability of Get requires the observed sequence to lie in
// [lo, hi], and reads of the same key by the same goroutine to be
// monotonic. Values encode their key, so a read can also never observe a
// value written to a different key. Range scans assert strictly ascending
// keys and key/value consistency. After the writers quiesce, the final
// state is compared against the oracle (every key at its last sequence
// number) and the index's invariant hook is run.
//
// The returned error is the first violation observed, nil if the run is
// clean. Run under -race to also catch data races in the implementation.
func CheckConcurrent(mk func() MutableIndex, cfg ConcurrencyConfig) error {
	if cfg.Writers <= 0 || cfg.KeysPerWriter <= 0 || cfg.Iters <= 0 {
		return fmt.Errorf("conform: invalid concurrency config %+v", cfg)
	}
	ix := mk()
	total := cfg.Writers * cfg.KeysPerWriter
	keyOf := func(idx int) core.Key {
		// Scattered but monotone in idx, so range scans can map keys back.
		return core.Key(idx+1) * 7919
	}
	idxOf := func(k core.Key) (int, bool) {
		if k == 0 || k%7919 != 0 {
			return 0, false
		}
		i := int(k/7919) - 1
		return i, i >= 0 && i < total
	}
	enc := func(idx, seq int) core.Value { return core.Value(idx)<<32 | core.Value(seq) }
	dec := func(v core.Value) (idx, seq int) { return int(v >> 32), int(v & 0xffffffff) }

	started := make([]atomic.Int64, total)
	completed := make([]atomic.Int64, total)

	var mu sync.Mutex
	var firstErr error
	var done atomic.Bool
	fail := func(format string, args ...any) {
		mu.Lock()
		if firstErr == nil {
			firstErr = fmt.Errorf(format, args...)
		}
		mu.Unlock()
		done.Store(true)
	}

	var wg sync.WaitGroup
	var writersLeft atomic.Int64
	writersLeft.Store(int64(cfg.Writers))
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if writersLeft.Add(-1) == 0 {
					done.Store(true)
				}
			}()
			r := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			base := w * cfg.KeysPerWriter
			order := make([]int, cfg.KeysPerWriter)
			for j := range order {
				order[j] = base + j
			}
			for seq := 1; seq <= cfg.Iters; seq++ {
				r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
				// Writers run to completion even if a reader already failed,
				// so the quiesced final state stays well-defined.
				for _, idx := range order {
					started[idx].Store(int64(seq))
					ix.Insert(keyOf(idx), enc(idx, seq))
					completed[idx].Store(int64(seq))
				}
			}
		}(w)
	}

	for rd := 0; rd < cfg.Readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + 1000 + int64(rd)))
			lastSeen := make([]int, total)
			for !done.Load() {
				idx := r.Intn(total)
				k := keyOf(idx)
				lo := completed[idx].Load()
				v, ok := ix.Get(k)
				hi := started[idx].Load()
				if !ok {
					if lo > 0 {
						fail("conform: Get(%d) missed after write %d completed", k, lo)
						return
					}
					continue
				}
				vIdx, seq := dec(v)
				if vIdx != idx {
					fail("conform: Get(%d) returned a value written to key %d", k, keyOf(vIdx))
					return
				}
				if int64(seq) < lo || int64(seq) > hi {
					fail("conform: Get(%d) observed seq %d outside happens-before window [%d,%d]", k, seq, lo, hi)
					return
				}
				if seq < lastSeen[idx] {
					fail("conform: Get(%d) went backwards: seq %d after %d", k, seq, lastSeen[idx])
					return
				}
				lastSeen[idx] = seq
			}
		}(rd)
	}

	for rr := 0; rr < cfg.RangeReaders; rr++ {
		wg.Add(1)
		go func(rr int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + 2000 + int64(rr)))
			for !done.Load() {
				loIdx := r.Intn(total)
				span := 1 + r.Intn(64)
				lo, hi := keyOf(loIdx), keyOf(min(loIdx+span, total-1))
				prev := core.Key(0)
				seen := false
				bad := ""
				ix.Range(lo, hi, func(k core.Key, v core.Value) bool {
					if seen && k <= prev {
						bad = fmt.Sprintf("conform: Range keys not strictly ascending: %d after %d", k, prev)
						return false
					}
					seen, prev = true, k
					vIdx, seq := dec(v)
					wantIdx, ok := idxOf(k)
					if !ok || vIdx != wantIdx {
						bad = fmt.Sprintf("conform: Range saw key %d carrying value for key index %d", k, vIdx)
						return false
					}
					if seq < 1 || seq > cfg.Iters {
						bad = fmt.Sprintf("conform: Range saw key %d with out-of-range seq %d", k, seq)
						return false
					}
					return true
				})
				if bad != "" {
					fail("%s", bad)
					return
				}
			}
		}(rr)
	}

	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	// Quiesced final-state verification.
	if got := ix.Len(); got != total {
		return fmt.Errorf("conform: quiesced Len() = %d, want %d", got, total)
	}
	for idx := 0; idx < total; idx++ {
		v, ok := ix.Get(keyOf(idx))
		if !ok {
			return fmt.Errorf("conform: quiesced Get(%d) missed", keyOf(idx))
		}
		vIdx, seq := dec(v)
		if vIdx != idx || seq != cfg.Iters {
			return fmt.Errorf("conform: quiesced Get(%d) = (idx %d, seq %d), want (idx %d, seq %d)",
				keyOf(idx), vIdx, seq, idx, cfg.Iters)
		}
	}
	n := 0
	ix.Range(0, ^core.Key(0), func(core.Key, core.Value) bool { n++; return true })
	if n != total {
		return fmt.Errorf("conform: quiesced full Range visited %d records, want %d", n, total)
	}
	return CheckInvariants(ix)
}
