package conform

import (
	"testing"

	lix "github.com/lix-go/lix"
)

// TestXIndexLinearizable runs the happens-before checker against XIndex
// with group sizes small enough to force compactions and RCU root swaps
// while readers are in flight. Run with -race to also catch data races.
func TestXIndexLinearizable(t *testing.T) {
	cfgs := []struct {
		name                string
		groupSize, deltaCap int
	}{
		{"small-groups", 128, 32}, // many splits and root swaps
		{"default-ish", 1024, 64},
	}
	for _, c := range cfgs {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConcurrencyConfig()
			cfg.Seed = int64(c.groupSize)
			err := CheckConcurrent(func() MutableIndex {
				return lix.NewXIndex(c.groupSize, c.deltaCap)
			}, cfg)
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrencyConfigValidation pins that a zero-valued configuration is
// rejected instead of silently running an empty (vacuously passing) check.
func TestConcurrencyConfigValidation(t *testing.T) {
	if err := CheckConcurrent(func() MutableIndex { return lix.NewXIndex(0, 0) },
		ConcurrencyConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}
