package conform

import (
	"fmt"
	"testing"

	lix "github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/core"
)

// TestObserveTransparency1D re-runs the differential suite for every
// registered 1-D factory with its product wrapped by the public
// observability layer (lix.Observe / lix.ObserveMutable), each instance
// with its own metrics bundle. The unwrapped factories already pass
// TestDifferential1D, so any failure here isolates a behavior change
// introduced by the wrapper: results, invariant checks and oracle agreement
// must be indistinguishable from the bare index.
func TestObserveTransparency1D(t *testing.T) {
	for _, f := range Factories1D() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			wf := f
			wf.Build1D = func(recs []core.KV) (Index, error) {
				ix, err := f.Build1D(recs)
				if err != nil {
					return nil, err
				}
				m := lix.NewMetrics("conform-" + f.Name)
				if f.Caps.Mutable {
					mi, ok := ix.(MutableIndex)
					if !ok {
						return nil, fmt.Errorf("factory %s declares Mutable but product lacks Insert/Delete", f.Name)
					}
					return lix.ObserveMutable(mi, m), nil
				}
				return lix.Observe(ix, m), nil
			}
			nInit, nOps := diffSizes1D(t)
			w, err := NewWorkload1D(Shapes1D()[0], nInit, nOps, f.Caps.Mutable, 0x0b5e+int64(len(f.Name)))
			if err != nil {
				t.Fatalf("workload: %v", err)
			}
			if d := Run1D(wf, w, 0); d != nil {
				t.Fatalf("observed wrapper diverged:\n%s", d)
			}
		})
	}
}
