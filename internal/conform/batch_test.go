package conform

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	lix "github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/core"
)

// TestBatchEquivalence drives every registered 1-D factory — including
// the layered durable-* and sharded-* configurations — through the
// batched dispatch surface and demands state equivalence with the
// sequentially-replayed oracle, over every workload shape.
func TestBatchEquivalence(t *testing.T) {
	nInit, nOps := diffSizes1D(t)
	for _, f := range Factories1D() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			for _, shape := range Shapes1D() {
				w, err := NewWorkload1D(shape, nInit, nOps, f.Caps.Mutable, 0xBA7C4)
				if err != nil {
					t.Fatal(err)
				}
				if err := CheckBatchEquivalence(f, w, 64); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestBatchLaterWinsPin pins the duplicate-key contract inside one batch
// for every mutable factory: InsertBatch resolves duplicates later-wins,
// DeleteBatch reports liveness first-wins — exactly what the equivalent
// sequential loop would do.
func TestBatchLaterWinsPin(t *testing.T) {
	for _, f := range Factories1D() {
		if !f.Caps.Mutable {
			continue
		}
		f := f
		t.Run(f.Name, func(t *testing.T) {
			ix, err := f.Build1D([]core.KV{{Key: 10, Value: 1}})
			if err != nil {
				t.Fatal(err)
			}
			defer closeIndex(ix)
			mix := ix.(MutableIndex)
			core.InsertBatch(mix, []core.KV{
				{Key: 42, Value: 1}, {Key: 7, Value: 3}, {Key: 42, Value: 2},
			})
			if v, ok := mix.Get(42); !ok || v != 2 {
				t.Fatalf("Get(42) = (%d, %v), want later-wins (2, true)", v, ok)
			}
			if v, ok := mix.Get(7); !ok || v != 3 {
				t.Fatalf("Get(7) = (%d, %v), want (3, true)", v, ok)
			}
			if oks := core.DeleteBatch(mix, []core.Key{42, 42, 99}); !oks[0] || oks[1] || oks[2] {
				t.Fatalf("DeleteBatch(42, 42, 99) = %v, want [true false false]", oks)
			}
			if mix.Len() != 2 {
				t.Fatalf("Len = %d, want 2 (keys 7, 10)", mix.Len())
			}
		})
	}
}

// copyDir copies a flat store directory (no subdirectories).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDurableBatchCrashAtomicity asserts the all-or-prefix property of a
// batched durable insert: the whole batch is one contiguous WAL frame
// group, so truncating the log at any byte offset (the crash model)
// recovers exactly a prefix of the batch in submission order — never a
// subset with holes, never reordered.
func TestDurableBatchCrashAtomicity(t *testing.T) {
	const (
		walHeader   = 24 // WAL file header bytes
		insertFrame = 33 // u32 len + u32 crc + (op u8, seq u64, key u64, val u64)
		batchLen    = 50
	)
	dir := t.TempDir()
	d, err := lix.NewDurable(dir, nil, lix.DurableOptions{
		Fsync: lix.FsyncNever, CheckpointEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Keys deliberately not in sorted order: the recovered prefix must
	// follow batch submission order, not key order.
	batch := make([]core.KV, batchLen)
	for i := range batch {
		batch[i] = core.KV{Key: core.Key((i*7919 + 13) % 1000), Value: core.Value(i + 1)}
	}
	d.InsertBatch(batch)
	if err := d.Crash(); err != nil {
		t.Fatal(err)
	}
	wals, err := filepath.Glob(filepath.Join(dir, "wal-*-000.lix"))
	if err != nil || len(wals) == 0 {
		t.Fatalf("no WAL segment found: %v (%v)", wals, err)
	}
	wal := wals[len(wals)-1] // lexicographically largest generation
	walData, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if want := walHeader + batchLen*insertFrame; len(walData) != want {
		t.Fatalf("WAL size %d, want %d (batch not one contiguous frame group?)", len(walData), want)
	}

	for _, cut := range []int{
		walHeader,                       // everything torn
		walHeader + insertFrame,         // exactly one frame
		walHeader + 10*insertFrame + 17, // torn mid-frame after 10
		walHeader + 49*insertFrame,      // one frame short
		walHeader + 50*insertFrame,      // intact
	} {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			cdir := t.TempDir()
			copyDir(t, dir, cdir)
			if err := os.Truncate(filepath.Join(cdir, filepath.Base(wal)), int64(cut)); err != nil {
				t.Fatal(err)
			}
			r, err := lix.Open(cdir, lix.DurableOptions{Fsync: lix.FsyncNever, CheckpointEvery: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			wantFrames := (cut - walHeader) / insertFrame
			// The recovered state must be exactly the batch prefix replayed
			// sequentially (later-wins on duplicate keys within the prefix).
			o := newOracle1D(nil)
			for _, r := range batch[:wantFrames] {
				o.Insert(r.Key, r.Value)
			}
			if r.Len() != o.Len() {
				t.Fatalf("recovered Len = %d, want %d (prefix of %d frames)", r.Len(), o.Len(), wantFrames)
			}
			for _, rec := range o.recs {
				v, ok := r.Get(rec.Key)
				if !ok || v != rec.Value {
					t.Fatalf("recovered Get(%d) = (%d, %v), want (%d, true)", rec.Key, v, ok, rec.Value)
				}
			}
		})
	}
}

// TestDurableBatchFsyncAmortization is the issue's measurable claim:
// under FsyncAlways, inserting N records through one InsertBatch issues
// at least 10x fewer fsyncs than N single Puts (group commit collapses
// the whole batch into one fsync per touched segment).
func TestDurableBatchFsyncAmortization(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 200
	}
	recs := make([]core.KV, n)
	for i := range recs {
		recs[i] = core.KV{Key: core.Key(i), Value: core.Value(i)}
	}

	run := func(batched bool) uint64 {
		dir := t.TempDir()
		d, err := lix.NewDurable(dir, nil, lix.DurableOptions{
			Fsync: lix.FsyncAlways, CheckpointEvery: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		base := d.Fsyncs()
		if batched {
			d.InsertBatch(recs)
		} else {
			for _, r := range recs {
				if err := d.Put(r.Key, r.Value); err != nil {
					t.Fatal(err)
				}
			}
		}
		fsyncs := d.Fsyncs() - base
		if d.Len() != n {
			t.Fatalf("Len = %d, want %d", d.Len(), n)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		return fsyncs
	}

	looped := run(false)
	batched := run(true)
	t.Logf("fsyncs: %d looped vs %d batched for %d records (%.0fx)",
		looped, batched, n, float64(looped)/float64(max(batched, 1)))
	if batched == 0 {
		t.Fatal("batched insert issued no fsync under FsyncAlways")
	}
	if looped < 10*batched {
		t.Fatalf("fsync amortization too weak: %d looped vs %d batched (want >= 10x)", looped, batched)
	}
}
