package conform

import (
	"fmt"
	"sort"
	"testing"

	"github.com/lix-go/lix/internal/core"
)

// Sizing of the differential runs: every factory is replayed through
// diffOps operations per workload shape (the issue's floor is 5,000).
// -short (used by the CI -race tier, where every op costs ~10x) scales the
// runs down; the full-size suite still runs race-free in the same CI job.
const (
	diffInit1D      = 4000
	diffOps1D       = 5000
	diffInitSpatial = 1500
	diffOpsSpatial  = 5000
)

func diffSizes1D(t *testing.T) (nInit, nOps int) {
	if testing.Short() {
		return diffInit1D / 10, diffOps1D / 10
	}
	return diffInit1D, diffOps1D
}

func diffSizesSpatial(t *testing.T) (nInit, nOps int) {
	if testing.Short() {
		return diffInitSpatial / 5, diffOpsSpatial / 10
	}
	return diffInitSpatial, diffOpsSpatial
}

func TestRegistryCoverage(t *testing.T) {
	fs := Factories()
	if len(fs) < 20 {
		t.Fatalf("registry holds %d factories, want >= 20", len(fs))
	}
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.Name
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Factories() not sorted: %v", names)
	}
	for _, must := range []string{
		"sorted-array", "btree", "skiplist", "skiplist-learned", "rmi", "rmi-hybrid",
		"pgm", "pgm-dynamic", "radixspline", "histtree", "alex", "lipp", "fiting",
		"learned-lsm", "xindex",
		"rtree", "rtree-bulk", "kdtree", "quadtree", "grid",
		"zm", "zm-hilbert", "mlindex", "flood", "lisa", "qdtree", "rtree-learned",
	} {
		if _, err := Lookup(must); err != nil {
			t.Errorf("expected factory %q registered: %v", must, err)
		}
	}
}

// TestDifferential1D replays every 1-D factory through every workload shape
// against the sorted-slice oracle.
func TestDifferential1D(t *testing.T) {
	for _, f := range Factories1D() {
		for _, kind := range Shapes1D() {
			f, kind := f, kind
			t.Run(fmt.Sprintf("%s/%s", f.Name, kind), func(t *testing.T) {
				t.Parallel()
				nInit, nOps := diffSizes1D(t)
				w, err := NewWorkload1D(kind, nInit, nOps, f.Caps.Mutable, 0x11ce+int64(len(f.Name)))
				if err != nil {
					t.Fatalf("workload: %v", err)
				}
				if d := Run1D(f, w, 0); d != nil {
					t.Fatalf("%s", d)
				}
			})
		}
	}
}

// TestDifferentialSpatial replays every spatial factory through every point
// distribution against the brute-force oracle.
func TestDifferentialSpatial(t *testing.T) {
	for _, f := range FactoriesSpatial() {
		for _, kind := range ShapesSpatial() {
			f, kind := f, kind
			t.Run(fmt.Sprintf("%s/%s", f.Name, kind), func(t *testing.T) {
				t.Parallel()
				nInit, nOps := diffSizesSpatial(t)
				w, err := NewSpatialWorkload(kind, nInit, nOps, 2,
					f.Caps.Mutable, f.Caps.KNN, 0x2dce+int64(len(f.Name)))
				if err != nil {
					t.Fatalf("workload: %v", err)
				}
				if d := RunSpatial(f, w, 0); d != nil {
					t.Fatalf("%s", d)
				}
			})
		}
	}
}

// TestCorpus1D applies the shared edge-case corpus to every 1-D factory.
func TestCorpus1D(t *testing.T) {
	for _, f := range Factories1D() {
		for _, c := range Corpus1D() {
			if len(c.Recs) == 0 && !f.Caps.AllowsEmpty {
				continue
			}
			f, c := f, c
			t.Run(fmt.Sprintf("%s/%s", f.Name, c.Name), func(t *testing.T) {
				t.Parallel()
				w := Workload1D{
					Name: "corpus/" + c.Name,
					Init: c.Recs,
					Ops:  CorpusOps1D(c.Recs, f.Caps.Mutable),
				}
				if d := Run1D(f, w, 0); d != nil {
					t.Fatalf("%s", d)
				}
			})
		}
	}
}

// TestCorpusSpatial applies the shared spatial edge-case corpus to every
// spatial factory.
func TestCorpusSpatial(t *testing.T) {
	for _, f := range FactoriesSpatial() {
		for _, c := range CorpusSpatial() {
			if len(c.Pts) == 0 && !f.Caps.AllowsEmpty {
				continue
			}
			if f.Caps.Dims != 0 && f.Caps.Dims != 2 {
				continue // corpus cases are 2-D
			}
			f, c := f, c
			t.Run(fmt.Sprintf("%s/%s", f.Name, c.Name), func(t *testing.T) {
				t.Parallel()
				w := SpatialWorkload{
					Name: "corpus/" + c.Name,
					Init: c.Pts,
					Ops:  CorpusOpsSpatial(c.Pts, f.Caps.Mutable, f.Caps.KNN),
				}
				if d := RunSpatial(f, w, 0); d != nil {
					t.Fatalf("%s", d)
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Shrinker self-test: a deliberately broken index must be caught and the
// reproduction minimized to a handful of operations.
// ---------------------------------------------------------------------------

// brokenIndex wraps the oracle but lies about one key.
type brokenIndex struct {
	o      *oracle1D
	badKey core.Key
}

func (b *brokenIndex) Get(k core.Key) (core.Value, bool) {
	if k == b.badKey {
		return 0, false // the planted bug
	}
	return b.o.Get(k)
}
func (b *brokenIndex) Insert(k core.Key, v core.Value) { b.o.Insert(k, v) }
func (b *brokenIndex) Delete(k core.Key) bool          { return b.o.Delete(k) }
func (b *brokenIndex) Len() int                        { return b.o.Len() }
func (b *brokenIndex) Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	return b.o.Range(lo, hi, fn)
}
func (b *brokenIndex) Stats() core.Stats { return core.Stats{Name: "broken"} }

func TestShrinkerMinimizesRepro(t *testing.T) {
	const bad = core.Key(777_777)
	f := Factory{
		Name: "broken-for-test",
		Caps: Caps{Mutable: true, AllowsEmpty: true},
		Build1D: func(recs []core.KV) (Index, error) {
			return &brokenIndex{o: newOracle1D(recs), badKey: bad}, nil
		},
	}
	// A big workload in which exactly one op trips the bug.
	w, err := NewWorkload1D(Shapes1D()[0], 2000, 3000, true, 99)
	if err != nil {
		t.Fatal(err)
	}
	w.Init = append([]core.KV{{Key: bad, Value: 5}}, w.Init...)
	sort.Slice(w.Init, func(i, j int) bool { return w.Init[i].Key < w.Init[j].Key })
	w.Ops = append(w.Ops[:2000:2000], append([]Op{{Kind: OpGet, Key: bad}}, w.Ops[2000:]...)...)

	d := Run1D(f, w, 0)
	if d == nil {
		t.Fatal("broken index passed the differential run")
	}
	if len(d.Ops1D) > 3 {
		t.Errorf("shrunk op sequence has %d ops, want <= 3:\n%s", len(d.Ops1D), d)
	}
	if len(d.Init1D) > 2 {
		t.Errorf("shrunk init has %d records, want <= 2:\n%s", len(d.Init1D), d)
	}
	// The minimized recipe must still reproduce the divergence.
	if idx, _ := replay1D(f, d.Init1D, d.Ops1D, 0); idx == replayOK {
		t.Errorf("minimized repro no longer fails:\n%s", d)
	}
}

// invariantLiar conforms behaviorally but reports a broken invariant.
type invariantLiar struct{ *oracle1D }

func (invariantLiar) Stats() core.Stats      { return core.Stats{Name: "liar"} }
func (invariantLiar) CheckInvariants() error { return fmt.Errorf("planted invariant violation") }

func TestInvariantHookSurfacesViolations(t *testing.T) {
	f := Factory{
		Name: "invariant-liar",
		Caps: Caps{AllowsEmpty: true},
		Build1D: func(recs []core.KV) (Index, error) {
			return invariantLiar{newOracle1D(recs)}, nil
		},
	}
	w := Workload1D{Name: "liar", Init: nil, Ops: []Op{{Kind: OpLen}}}
	d := Run1D(f, w, 0)
	if d == nil {
		t.Fatal("invariant violation was not reported")
	}
}

// TestOracleSelfCheck pins the oracle's Range semantics: the record on
// which fn returns false counts as visited.
func TestOracleSelfCheck(t *testing.T) {
	o := newOracle1D([]core.KV{{Key: 1, Value: 10}, {Key: 2, Value: 20}, {Key: 3, Value: 30}})
	visits := 0
	n := o.Range(0, 100, func(core.Key, core.Value) bool {
		visits++
		return visits < 2
	})
	if n != 2 || visits != 2 {
		t.Fatalf("oracle early-stop Range visited %d (fn calls %d), want 2", n, visits)
	}
	if !o.Delete(2) || o.Delete(2) {
		t.Fatal("oracle Delete semantics broken")
	}
	if v, ok := o.Get(3); !ok || v != 30 {
		t.Fatalf("oracle Get(3) = (%d, %v)", v, ok)
	}
}
