package conform

import (
	"fmt"
	"reflect"

	"github.com/lix-go/lix/internal/core"
)

// CheckBatchEquivalence replays w against a fresh instance of f, driving
// maximal same-kind runs of operations through the batched dispatch
// helpers (core.LookupBatch / InsertBatch / DeleteBatch, capped at
// batchSize records per batch) while the sorted-slice oracle replays the
// same operations strictly sequentially. Any state or result divergence
// is an error: batching must be semantically invisible. Range operations
// go through core.CollectRange, which pins the RangeSearcher capability
// to the sequential scan. The duplicate-key contract inside one batch is
// sequential-loop semantics — later-wins for inserts, first-wins for
// delete liveness — which TestBatchLaterWinsPin asserts explicitly.
func CheckBatchEquivalence(f Factory, w Workload1D, batchSize int) error {
	if batchSize <= 0 {
		batchSize = 64
	}
	ix, err := f.Build1D(w.Init)
	if err != nil {
		return fmt.Errorf("%s/%s: build failed: %v", f.Name, w.Name, err)
	}
	defer closeIndex(ix)
	o := newOracle1D(w.Init)
	var mix MutableIndex
	if f.Caps.Mutable {
		m, ok := ix.(MutableIndex)
		if !ok {
			return fmt.Errorf("%s: factory declares Mutable but index lacks Insert/Delete", f.Name)
		}
		mix = m
	}

	fail := func(i int, format string, args ...any) error {
		return fmt.Errorf("%s/%s: op[%d]: %s", f.Name, w.Name, i, fmt.Sprintf(format, args...))
	}

	ops := w.Ops
	for i := 0; i < len(ops); {
		kind := ops[i].Kind
		// A maximal run of same-kind ops, capped at batchSize.
		j := i + 1
		for j < len(ops) && ops[j].Kind == kind && j-i < batchSize {
			j++
		}
		run := ops[i:j]
		switch kind {
		case OpInsert:
			recs := make([]core.KV, len(run))
			for n, op := range run {
				recs[n] = core.KV{Key: op.Key, Value: op.Val}
				o.Insert(op.Key, op.Val)
			}
			core.InsertBatch(mix, recs)
		case OpDelete:
			keys := make([]core.Key, len(run))
			want := make([]bool, len(run))
			for n, op := range run {
				keys[n] = op.Key
				want[n] = o.Delete(op.Key)
			}
			got := core.DeleteBatch(mix, keys)
			if !reflect.DeepEqual(got, want) {
				return fail(i, "DeleteBatch(%d keys) = %v, oracle %v", len(keys), got, want)
			}
		case OpGet:
			keys := make([]core.Key, len(run))
			for n, op := range run {
				keys[n] = op.Key
			}
			vals, oks := core.LookupBatch(ix, keys)
			for n, k := range keys {
				wv, wok := o.Get(k)
				if oks[n] != wok || (wok && vals[n] != wv) {
					return fail(i+n, "LookupBatch key %d = (%d, %v), oracle (%d, %v)",
						k, vals[n], oks[n], wv, wok)
				}
			}
		case OpRange:
			// Ranges are checked one per op (there is no multi-interval
			// batch surface), exercising the RangeSearcher capability.
			for n, op := range run {
				got := core.CollectRange(ix, op.Key, op.Hi)
				want := []core.KV{}
				o.Range(op.Key, op.Hi, func(k core.Key, v core.Value) bool {
					want = append(want, core.KV{Key: k, Value: v})
					return true
				})
				if !reflect.DeepEqual(got, want) {
					return fail(i+n, "CollectRange(%d, %d) returned %d records, oracle %d",
						op.Key, op.Hi, len(got), len(want))
				}
			}
		case OpLen:
			if got, want := ix.Len(), o.Len(); got != want {
				return fail(i, "Len() = %d, oracle %d", got, want)
			}
		}
		i = j
	}

	// Final state sweep: the whole key space, then cardinality.
	got := core.CollectRange(ix, 0, ^core.Key(0))
	if !reflect.DeepEqual(got, append([]core.KV{}, o.recs...)) {
		return fmt.Errorf("%s/%s: final sweep diverged: %d records vs oracle %d",
			f.Name, w.Name, len(got), o.Len())
	}
	if ix.Len() != o.Len() {
		return fmt.Errorf("%s/%s: final Len() = %d, oracle %d", f.Name, w.Name, ix.Len(), o.Len())
	}
	if err := CheckInvariants(ix); err != nil {
		return fmt.Errorf("%s/%s: invariants after batched replay: %v", f.Name, w.Name, err)
	}
	return nil
}
