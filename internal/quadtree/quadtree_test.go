package quadtree

import (
	"sort"
	"testing"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

func worldBounds() core.Rect {
	return core.Rect{Min: core.Point{0, 0}, Max: core.Point{dataset.Extent, dataset.Extent}}
}

func buildTree(t *testing.T, pts []core.Point, cap int) (*Tree, []core.PV) {
	t.Helper()
	tr, err := New(worldBounds(), cap)
	if err != nil {
		t.Fatal(err)
	}
	pvs := dataset.PV(pts)
	for _, pv := range pvs {
		if err := tr.Insert(pv.Point, pv.Value); err != nil {
			t.Fatal(err)
		}
	}
	return tr, pvs
}

func TestSearchMatchesBrute(t *testing.T) {
	pts, _ := dataset.Points(dataset.SOSMLike, 4000, 2, 61)
	tr, pvs := buildTree(t, pts, 16)
	if tr.Len() != 4000 {
		t.Fatalf("len = %d", tr.Len())
	}
	for qi, q := range dataset.RectQueries(pts, 40, 0.01, 62) {
		want := 0
		for _, pv := range pvs {
			if q.Contains(pv.Point) {
				want++
			}
		}
		n, nodes := tr.Search(q, func(core.PV) bool { return true })
		if n != want {
			t.Fatalf("q%d: got %d, want %d", qi, n, want)
		}
		if nodes <= 0 {
			t.Fatal("no nodes")
		}
	}
}

func TestKNNMatchesBrute(t *testing.T) {
	pts, _ := dataset.Points(dataset.SSkewed, 2000, 2, 63)
	tr, pvs := buildTree(t, pts, 8)
	for _, k := range []int{1, 7, 64} {
		for qi, q := range dataset.KNNQueries(pts, 15, 64) {
			ds := make([]float64, len(pvs))
			for i, pv := range pvs {
				ds[i] = q.DistSq(pv.Point)
			}
			sort.Float64s(ds)
			got := tr.KNN(q, k)
			if len(got) != k {
				t.Fatalf("q%d k=%d: len %d", qi, k, len(got))
			}
			for i, pv := range got {
				if d := q.DistSq(pv.Point); d != ds[i] {
					t.Fatalf("q%d k=%d i=%d: %g want %g", qi, k, i, d, ds[i])
				}
			}
		}
	}
}

func TestDelete(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 1000, 2, 65)
	tr, pvs := buildTree(t, pts, 8)
	for i := 0; i < 500; i++ {
		if !tr.Delete(pvs[i].Point, pvs[i].Value) {
			t.Fatalf("Delete %d missed", i)
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("len = %d", tr.Len())
	}
	if tr.Delete(pvs[0].Point, pvs[0].Value) {
		t.Fatal("double delete succeeded")
	}
	n, _ := tr.Search(worldBounds(), func(core.PV) bool { return true })
	if n != 500 {
		t.Fatalf("scan found %d", n)
	}
}

func TestErrors(t *testing.T) {
	if _, err := New(core.Rect{Min: core.Point{0}, Max: core.Point{1}}, 4); err == nil {
		t.Fatal("1-D bounds accepted")
	}
	tr, _ := New(worldBounds(), 0) // capacity clamped to default
	if err := tr.Insert(core.Point{-5, 0}, 0); err == nil {
		t.Fatal("out-of-bounds point accepted")
	}
	if err := tr.Insert(core.Point{1, 2, 3}, 0); err == nil {
		t.Fatal("3-D point accepted")
	}
	if tr.Delete(core.Point{-5, 0}, 0) {
		t.Fatal("out-of-bounds delete succeeded")
	}
	if got := tr.KNN(core.Point{1, 1}, 3); got != nil {
		t.Fatal("kNN on empty")
	}
}

func TestDegenerateAllSamePoint(t *testing.T) {
	tr, _ := New(worldBounds(), 4)
	for i := 0; i < 200; i++ {
		if err := tr.Insert(core.Point{100, 100}, core.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 200 {
		t.Fatalf("len = %d", tr.Len())
	}
	rect, _ := core.NewRect(core.Point{99, 99}, core.Point{101, 101})
	n, _ := tr.Search(rect, func(core.PV) bool { return true })
	if n != 200 {
		t.Fatalf("found %d of 200 identical points", n)
	}
	if h := tr.Height(); h > 33 {
		t.Fatalf("depth cap failed: height %d", h)
	}
}

func TestStats(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 1000, 2, 67)
	tr, _ := buildTree(t, pts, 16)
	st := tr.Stats()
	if st.Count != 1000 || st.Height < 2 || st.Models < 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEarlyStop(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 300, 2, 68)
	tr, _ := buildTree(t, pts, 16)
	count := 0
	tr.Search(worldBounds(), func(core.PV) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}
