// Package quadtree implements a point-region (PR) quadtree over
// two-dimensional points (Samet, 1984): capacity-based splitting, range
// search and best-first kNN. It is a traditional 2-D baseline and the
// namesake contrast for the learned Qd-tree layout.
package quadtree

import (
	"container/heap"
	"fmt"

	"github.com/lix-go/lix/internal/core"
)

// DefaultCapacity is the default number of points a leaf holds before
// splitting.
const DefaultCapacity = 32

// Tree is a PR quadtree covering a fixed bounding box; points outside the
// box are rejected.
type Tree struct {
	bounds   core.Rect
	capacity int
	root     *node
	size     int
	maxDepth int
}

type node struct {
	bounds   core.Rect
	pts      []core.PV // leaf payload (nil children)
	children *[4]*node // nil for leaves
	depth    int
}

// New returns an empty quadtree over bounds with the given leaf capacity.
func New(bounds core.Rect, capacity int) (*Tree, error) {
	if bounds.Dim() != 2 {
		return nil, fmt.Errorf("quadtree: bounds dim %d, want 2", bounds.Dim())
	}
	if capacity < 1 {
		capacity = DefaultCapacity
	}
	return &Tree{
		bounds:   bounds,
		capacity: capacity,
		root:     &node{bounds: bounds},
		maxDepth: 32,
	}, nil
}

// Len returns the number of points.
func (t *Tree) Len() int { return t.size }

// Insert adds a point; it fails if the point lies outside the tree bounds.
func (t *Tree) Insert(p core.Point, v core.Value) error {
	if p.Dim() != 2 {
		return fmt.Errorf("quadtree: point dim %d, want 2", p.Dim())
	}
	if !t.bounds.Contains(p) {
		return fmt.Errorf("quadtree: point %v outside bounds", p)
	}
	t.insert(t.root, core.PV{Point: p.Clone(), Value: v})
	t.size++
	return nil
}

func (t *Tree) insert(n *node, pv core.PV) {
	for {
		if n.children == nil {
			n.pts = append(n.pts, pv)
			if len(n.pts) > t.capacity && n.depth < t.maxDepth {
				t.split(n)
			}
			return
		}
		n = n.children[n.quadrant(pv.Point)]
	}
}

// quadrant returns the child index for p: bit0 = east, bit1 = north.
func (n *node) quadrant(p core.Point) int {
	c := n.bounds.Center()
	q := 0
	if p[0] >= c[0] {
		q |= 1
	}
	if p[1] >= c[1] {
		q |= 2
	}
	return q
}

func (t *Tree) split(n *node) {
	c := n.bounds.Center()
	b := n.bounds
	var kids [4]*node
	quads := [4]core.Rect{
		{Min: core.Point{b.Min[0], b.Min[1]}, Max: core.Point{c[0], c[1]}},
		{Min: core.Point{c[0], b.Min[1]}, Max: core.Point{b.Max[0], c[1]}},
		{Min: core.Point{b.Min[0], c[1]}, Max: core.Point{c[0], b.Max[1]}},
		{Min: core.Point{c[0], c[1]}, Max: core.Point{b.Max[0], b.Max[1]}},
	}
	for i := range kids {
		kids[i] = &node{bounds: quads[i], depth: n.depth + 1}
	}
	pts := n.pts
	n.pts = nil
	n.children = &kids
	for _, pv := range pts {
		kids[n.quadrant(pv.Point)].pts = append(kids[n.quadrant(pv.Point)].pts, pv)
	}
	// A pathological all-equal batch could overflow one child; allow it
	// (depth cap prevents infinite splitting).
	for i := range kids {
		if len(kids[i].pts) > t.capacity && kids[i].depth < t.maxDepth {
			t.split(kids[i])
		}
	}
}

// Delete removes one point equal to p with matching value.
func (t *Tree) Delete(p core.Point, v core.Value) bool {
	if p.Dim() != 2 || !t.bounds.Contains(p) {
		return false
	}
	n := t.root
	for n.children != nil {
		n = n.children[n.quadrant(p)]
	}
	for i := range n.pts {
		if n.pts[i].Value == v && n.pts[i].Point.Equal(p) {
			n.pts = append(n.pts[:i], n.pts[i+1:]...)
			t.size--
			return true
		}
	}
	return false
}

// Search calls fn for every point in rect; fn returning false stops.
// Returns points visited and nodes touched.
func (t *Tree) Search(rect core.Rect, fn func(core.PV) bool) (visited, nodes int) {
	stop := false
	var rec func(n *node)
	rec = func(n *node) {
		if stop || !n.bounds.Intersects(rect) {
			return
		}
		nodes++
		if n.children == nil {
			for _, pv := range n.pts {
				if rect.Contains(pv.Point) {
					visited++
					if !fn(pv) {
						stop = true
						return
					}
				}
			}
			return
		}
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(t.root)
	return visited, nodes
}

type item struct {
	distSq float64
	n      *node
	pv     core.PV
	point  bool
}

type pq []item

func (h pq) Len() int            { return len(h) }
func (h pq) Less(i, j int) bool  { return h[i].distSq < h[j].distSq }
func (h pq) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pq) Push(x interface{}) { *h = append(*h, x.(item)) }
func (h *pq) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// KNN returns the k nearest points to q in ascending distance order.
func (t *Tree) KNN(q core.Point, k int) []core.PV {
	if t.size == 0 || k <= 0 || q.Dim() != 2 {
		return nil
	}
	h := &pq{{distSq: t.root.bounds.MinDistSq(q), n: t.root}}
	var out []core.PV
	for h.Len() > 0 && len(out) < k {
		it := heap.Pop(h).(item)
		if it.point {
			out = append(out, it.pv)
			continue
		}
		n := it.n
		if n.children == nil {
			for _, pv := range n.pts {
				heap.Push(h, item{distSq: q.DistSq(pv.Point), pv: pv, point: true})
			}
			continue
		}
		for _, c := range n.children {
			heap.Push(h, item{distSq: c.bounds.MinDistSq(q), n: c})
		}
	}
	return out
}

// Height returns the maximum node depth + 1.
func (t *Tree) Height() int {
	var rec func(n *node) int
	rec = func(n *node) int {
		if n.children == nil {
			return 1
		}
		m := 0
		for _, c := range n.children {
			if h := rec(c); h > m {
				m = h
			}
		}
		return m + 1
	}
	return rec(t.root)
}

// Stats reports structure statistics.
func (t *Tree) Stats() core.Stats {
	var nodes, dataBytes int
	var rec func(n *node)
	rec = func(n *node) {
		nodes++
		dataBytes += 24 * len(n.pts)
		if n.children != nil {
			for _, c := range n.children {
				rec(c)
			}
		}
	}
	rec(t.root)
	return core.Stats{
		Name:       "quadtree",
		Count:      t.size,
		IndexBytes: nodes * 72, // bounds + child pointers
		DataBytes:  dataBytes,
		Height:     t.Height(),
		Models:     nodes,
	}
}
