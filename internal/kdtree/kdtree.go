// Package kdtree implements an in-memory k-d tree over d-dimensional
// points: median-split bulk build, point inserts, rectangular range search
// and best-first kNN. It is a secondary traditional baseline in the
// multi-dimensional benchmarks.
package kdtree

import (
	"container/heap"
	"fmt"
	"sort"

	"github.com/lix-go/lix/internal/core"
)

// Tree is a k-d tree. The zero value is not usable; call Build or New.
type Tree struct {
	root *node
	size int
	dim  int
}

type node struct {
	pv          core.PV
	axis        int
	left, right *node
}

// New returns an empty tree for points of the given dimensionality.
func New(dim int) (*Tree, error) {
	if dim < 1 {
		return nil, fmt.Errorf("kdtree: dim %d", dim)
	}
	return &Tree{dim: dim}, nil
}

// Build constructs a balanced tree from the given points (median split).
func Build(pvs []core.PV) (*Tree, error) {
	if len(pvs) == 0 {
		return nil, fmt.Errorf("kdtree: empty build; use New for an empty tree")
	}
	dim := pvs[0].Point.Dim()
	for i := range pvs {
		if pvs[i].Point.Dim() != dim {
			return nil, fmt.Errorf("kdtree: point %d has dim %d, want %d", i, pvs[i].Point.Dim(), dim)
		}
	}
	t := &Tree{dim: dim, size: len(pvs)}
	items := append([]core.PV(nil), pvs...)
	t.root = build(items, 0, dim)
	return t, nil
}

func build(items []core.PV, depth, dim int) *node {
	if len(items) == 0 {
		return nil
	}
	axis := depth % dim
	sort.Slice(items, func(i, j int) bool {
		return items[i].Point[axis] < items[j].Point[axis]
	})
	mid := len(items) / 2
	// Keep equal coordinates on the right of the split point.
	for mid > 0 && items[mid-1].Point[axis] == items[mid].Point[axis] {
		mid--
	}
	n := &node{pv: items[mid], axis: axis}
	n.left = build(items[:mid], depth+1, dim)
	n.right = build(items[mid+1:], depth+1, dim)
	return n
}

// Len returns the number of points.
func (t *Tree) Len() int { return t.size }

// Insert adds a point (no rebalancing).
func (t *Tree) Insert(p core.Point, v core.Value) error {
	if p.Dim() != t.dim {
		return fmt.Errorf("kdtree: point dim %d, tree dim %d", p.Dim(), t.dim)
	}
	nn := &node{pv: core.PV{Point: p.Clone(), Value: v}}
	t.size++
	if t.root == nil {
		nn.axis = 0
		t.root = nn
		return nil
	}
	cur := t.root
	depth := 0
	for {
		axis := depth % t.dim
		if p[axis] < cur.pv.Point[axis] {
			if cur.left == nil {
				nn.axis = (depth + 1) % t.dim
				cur.left = nn
				return nil
			}
			cur = cur.left
		} else {
			if cur.right == nil {
				nn.axis = (depth + 1) % t.dim
				cur.right = nn
				return nil
			}
			cur = cur.right
		}
		depth++
	}
}

// Search calls fn for every point inside rect; fn returning false stops.
// It returns points visited and nodes touched.
func (t *Tree) Search(rect core.Rect, fn func(core.PV) bool) (visited, nodes int) {
	stop := false
	var rec func(n *node)
	rec = func(n *node) {
		if n == nil || stop {
			return
		}
		nodes++
		if rect.Contains(n.pv.Point) {
			visited++
			if !fn(n.pv) {
				stop = true
				return
			}
		}
		axis := n.axis
		if rect.Min[axis] < n.pv.Point[axis] {
			rec(n.left)
		}
		if rect.Max[axis] >= n.pv.Point[axis] {
			rec(n.right)
		}
	}
	rec(t.root)
	return visited, nodes
}

type item struct {
	distSq float64
	n      *node
	pv     core.PV
	point  bool
}

type pq []item

func (h pq) Len() int            { return len(h) }
func (h pq) Less(i, j int) bool  { return h[i].distSq < h[j].distSq }
func (h pq) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pq) Push(x interface{}) { *h = append(*h, x.(item)) }
func (h *pq) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// KNN returns the k nearest points to q in ascending distance order.
// Best-first search over subtrees using bounding-box distance.
func (t *Tree) KNN(q core.Point, k int) []core.PV {
	if t.root == nil || k <= 0 || q.Dim() != t.dim {
		return nil
	}
	// Each queue entry for a subtree carries the bounding rect implied by
	// the ancestor splits.
	type boxed struct {
		n    *node
		rect core.Rect
	}
	all := core.Rect{Min: make(core.Point, t.dim), Max: make(core.Point, t.dim)}
	for d := 0; d < t.dim; d++ {
		all.Min[d] = -1e308
		all.Max[d] = 1e308
	}
	h := &pq{}
	boxes := map[*node]core.Rect{t.root: all}
	heap.Push(h, item{distSq: 0, n: t.root})
	var out []core.PV
	for h.Len() > 0 && len(out) < k {
		it := heap.Pop(h).(item)
		if it.point {
			out = append(out, it.pv)
			continue
		}
		n := it.n
		rect := boxes[n]
		delete(boxes, n)
		heap.Push(h, item{distSq: q.DistSq(n.pv.Point), pv: n.pv, point: true})
		if n.left != nil {
			lr := rect.Clone()
			lr.Max[n.axis] = n.pv.Point[n.axis]
			boxes[n.left] = lr
			heap.Push(h, item{distSq: lr.MinDistSq(q), n: n.left})
		}
		if n.right != nil {
			rr := rect.Clone()
			rr.Min[n.axis] = n.pv.Point[n.axis]
			boxes[n.right] = rr
			heap.Push(h, item{distSq: rr.MinDistSq(q), n: n.right})
		}
	}
	return out
}

// Height returns the tree height (0 for empty).
func (t *Tree) Height() int {
	var rec func(n *node) int
	rec = func(n *node) int {
		if n == nil {
			return 0
		}
		l, r := rec(n.left), rec(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return rec(t.root)
}

// Stats reports structure statistics.
func (t *Tree) Stats() core.Stats {
	return core.Stats{
		Name:       "kdtree",
		Count:      t.size,
		IndexBytes: t.size * 24, // two child pointers + axis per node
		DataBytes:  t.size * (8*t.dim + 8),
		Height:     t.Height(),
		Models:     t.size,
	}
}
