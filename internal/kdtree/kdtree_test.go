package kdtree

import (
	"sort"
	"testing"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

func bruteRange(pvs []core.PV, rect core.Rect) map[core.Value]bool {
	out := map[core.Value]bool{}
	for _, pv := range pvs {
		if rect.Contains(pv.Point) {
			out[pv.Value] = true
		}
	}
	return out
}

func bruteKNN(pvs []core.PV, q core.Point, k int) []float64 {
	ds := make([]float64, len(pvs))
	for i, pv := range pvs {
		ds[i] = q.DistSq(pv.Point)
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}

func TestBuildAndSearch(t *testing.T) {
	for _, dim := range []int{2, 3} {
		pts, _ := dataset.Points(dataset.SOSMLike, 3000, dim, 51)
		pvs := dataset.PV(pts)
		tr, err := Build(pvs)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() != 3000 {
			t.Fatalf("len = %d", tr.Len())
		}
		for qi, q := range dataset.RectQueries(pts, 30, 0.01, 52) {
			want := bruteRange(pvs, q)
			got := map[core.Value]bool{}
			n, nodes := tr.Search(q, func(pv core.PV) bool {
				got[pv.Value] = true
				return true
			})
			if n != len(want) {
				t.Fatalf("dim=%d q%d: got %d, want %d", dim, qi, n, len(want))
			}
			for v := range want {
				if !got[v] {
					t.Fatalf("dim=%d q%d: missing %d", dim, qi, v)
				}
			}
			if nodes <= 0 {
				t.Fatal("no nodes touched")
			}
		}
	}
}

func TestInsertThenSearch(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 2000, 2, 53)
	pvs := dataset.PV(pts)
	tr, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, pv := range pvs {
		if err := tr.Insert(pv.Point, pv.Value); err != nil {
			t.Fatal(err)
		}
	}
	for qi, q := range dataset.RectQueries(pts, 20, 0.02, 54) {
		want := bruteRange(pvs, q)
		n, _ := tr.Search(q, func(core.PV) bool { return true })
		if n != len(want) {
			t.Fatalf("q%d: got %d, want %d", qi, n, len(want))
		}
	}
}

func TestKNNMatchesBrute(t *testing.T) {
	pts, _ := dataset.Points(dataset.SSkewed, 2500, 2, 55)
	pvs := dataset.PV(pts)
	tr, _ := Build(pvs)
	for _, k := range []int{1, 10, 100} {
		for qi, q := range dataset.KNNQueries(pts, 20, 56) {
			want := bruteKNN(pvs, q, k)
			got := tr.KNN(q, k)
			if len(got) != len(want) {
				t.Fatalf("q%d k=%d: len %d", qi, k, len(got))
			}
			for i, pv := range got {
				if d := q.DistSq(pv.Point); d != want[i] {
					t.Fatalf("q%d k=%d i=%d: %g want %g", qi, k, i, d, want[i])
				}
			}
		}
	}
}

func TestDuplicateCoordinates(t *testing.T) {
	// Many points sharing coordinates must all be findable.
	var pvs []core.PV
	for i := 0; i < 300; i++ {
		pvs = append(pvs, core.PV{Point: core.Point{float64(i % 10), float64(i % 3)}, Value: core.Value(i)})
	}
	tr, err := Build(pvs)
	if err != nil {
		t.Fatal(err)
	}
	rect, _ := core.NewRect(core.Point{0, 0}, core.Point{9, 2})
	n, _ := tr.Search(rect, func(core.PV) bool { return true })
	if n != 300 {
		t.Fatalf("found %d of 300 duplicate-coordinate points", n)
	}
}

func TestErrorsAndEmpty(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Fatal("empty build accepted")
	}
	if _, err := New(0); err == nil {
		t.Fatal("dim 0 accepted")
	}
	if _, err := Build([]core.PV{{Point: core.Point{1}}, {Point: core.Point{1, 2}}}); err == nil {
		t.Fatal("mixed dims accepted")
	}
	tr, _ := New(2)
	if got := tr.KNN(core.Point{0, 0}, 5); got != nil {
		t.Fatal("kNN on empty")
	}
	if err := tr.Insert(core.Point{1}, 0); err == nil {
		t.Fatal("dim mismatch insert accepted")
	}
	if tr.Height() != 0 {
		t.Fatal("empty height")
	}
	tr.Insert(core.Point{1, 1}, 0)
	if tr.Height() != 1 || tr.Len() != 1 {
		t.Fatal("single insert")
	}
	st := tr.Stats()
	if st.Count != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBalancedBuildIsShallow(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 1<<12, 2, 57)
	tr, _ := Build(dataset.PV(pts))
	if h := tr.Height(); h > 16 {
		t.Fatalf("median-split height %d for 4096 points", h)
	}
}

func TestEarlyStop(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 500, 2, 58)
	tr, _ := Build(dataset.PV(pts))
	rect, _ := core.NewRect(core.Point{0, 0}, core.Point{dataset.Extent, dataset.Extent})
	count := 0
	tr.Search(rect, func(core.PV) bool { count++; return count < 4 })
	if count != 4 {
		t.Fatalf("early stop visited %d", count)
	}
}
