package page

import (
	"bytes"
	"testing"

	"github.com/lix-go/lix/internal/core"
)

// FuzzPageDecode throws arbitrary byte strings at the page decoder and
// pins three properties:
//
//  1. no panic and no over-allocation — the decoded record slices never
//     exceed the page's structural capacity, whatever the header claims;
//  2. every accepted page re-encodes byte-exactly (Encode(Decode(p)) == p),
//     which is what makes the zero-padded encoding canonical;
//  3. the decoded keys are strictly ascending, so a page that passed
//     validation can be binary-searched safely.
//
// Run with: go test -fuzz=FuzzPageDecode -fuzztime=30s -run '^$' ./internal/page
func FuzzPageDecode(f *testing.F) {
	// Seed corpus: canonical pages of both sizes and both types, an empty
	// leaf, a full leaf, and assorted near-misses.
	leaf := Buf(make([]byte, Size4K))
	leaf.Reset(TypeLeaf, 3)
	leaf.SetLink(4)
	for i := 0; i < 12; i++ {
		leaf.LeafInsertAt(i, core.Key(i*100), core.Value(i))
	}
	leaf.Seal()
	f.Add([]byte(leaf))

	empty := Buf(make([]byte, Size4K))
	empty.Reset(TypeLeaf, 1)
	empty.Seal()
	f.Add([]byte(empty))

	full := Buf(make([]byte, Size8K))
	full.Reset(TypeLeaf, 9)
	for i := 0; i < LeafCap(Size8K); i++ {
		full.SetLeafRecord(i, core.Key(i), core.Value(i))
	}
	full.SetCount(LeafCap(Size8K))
	full.Seal()
	f.Add([]byte(full))

	inner := Buf(make([]byte, Size4K))
	inner.Reset(TypeInner, 5)
	inner.InnerInsertAt(0, 500, 2)
	inner.InnerInsertAt(1, 900, 3)
	inner.SetLink(4)
	inner.Seal()
	f.Add([]byte(inner))

	unsealed := append([]byte(nil), leaf...)
	unsealed[0] ^= 0xFF
	f.Add(unsealed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xA5}, Size4K))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(data)
		if err != nil {
			return
		}
		if d.Size != len(data) {
			t.Fatalf("decoded size %d from %d bytes", d.Size, len(data))
		}
		if len(d.Keys) != len(d.Vals) {
			t.Fatalf("%d keys vs %d vals", len(d.Keys), len(d.Vals))
		}
		if len(d.Keys) > LeafCap(d.Size) {
			t.Fatalf("over-allocation: %d records from a %d-byte page (cap %d)",
				len(d.Keys), d.Size, LeafCap(d.Size))
		}
		for i := 1; i < len(d.Keys); i++ {
			if d.Keys[i-1] >= d.Keys[i] {
				t.Fatalf("accepted non-ascending keys at %d", i)
			}
		}
		out := Encode(d)
		if !bytes.Equal(out, data) {
			t.Fatalf("Encode(Decode(p)) differs from p")
		}
	})
}
