package page

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
)

// Meta page layout (page 0, TypeMeta). After the standard header:
//
//	[24:32] magic "LIXPAGE1"
//	[32:36] format version, little-endian u32 (currently 1)
//	[36:40] page size, little-endian u32
//	[40:48] allocated page count (including the meta page)
//	[48:56] free-list head page id (0 = empty; page 0 is the meta page,
//	        so 0 can never be a real free page)
//	[56:64] root page id (B+-tree root / PGM head leaf; 0 = none)
//	[64:68] tree height, little-endian u32 (inner levels above leaves)
//	[68:76] record count
//	[76:78] kind-name length, little-endian u16
//	[78:..] kind name bytes (e.g. "paged-btree")
//
// The meta page carries the same CRC framing as every other page, so a
// torn meta write is detected at open.
const (
	metaMagic   = "LIXPAGE1"
	metaVersion = 1

	// MaxKindName bounds the kind string stored in the meta page.
	MaxKindName = 64
)

// Meta is the index-level state persisted in the meta page: everything an
// index needs to reopen a file, beyond the allocator state the File itself
// manages.
type Meta struct {
	// Kind names the index layout that owns the file ("paged-btree",
	// "paged-pgm"). Opens verify it, so a B+-tree never misreads a PGM
	// file's pages as routing nodes.
	Kind string
	// Root is the entry page: the B+-tree root, or the PGM head leaf.
	Root uint64
	// Height is the number of inner levels above the leaves.
	Height int
	// Count is the number of live records.
	Count int
}

// File is a paged file: fixed-size pages addressed by id, with atomic
// allocation from a free list or the file tail. Reads verify the CRC and
// the page's self-id; writes seal the CRC. Methods are safe for concurrent
// use; the callers above (pool, indexes) serialize logically conflicting
// accesses themselves.
type File struct {
	f        *os.File
	path     string
	pageSize int

	mu       sync.Mutex
	numPages uint64
	freeHead uint64
	meta     Meta
}

// Create creates a fresh page file at path (truncating any existing file)
// with the given page size (0 selects DefaultPageSize) and kind name.
func Create(path string, pageSize int, kind string) (*File, error) {
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	if pageSize != Size4K && pageSize != Size8K {
		return nil, fmt.Errorf("page: unsupported page size %d (want %d or %d)", pageSize, Size4K, Size8K)
	}
	if len(kind) == 0 || len(kind) > MaxKindName {
		return nil, fmt.Errorf("page: kind name %q must be 1..%d bytes", kind, MaxKindName)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	pf := &File{f: f, path: path, pageSize: pageSize, numPages: 1, meta: Meta{Kind: kind}}
	if err := pf.writeMeta(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return pf, nil
}

// Open opens an existing page file, validating the meta page.
func Open(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	// The page size is self-described; probe with the larger size first —
	// a 4K meta page is a prefix of an 8K read only if the file is 4K
	// paged, and the declared size disambiguates.
	buf := make([]byte, Size8K)
	n, err := f.ReadAt(buf, 0)
	if n < Size4K {
		f.Close()
		return nil, fmt.Errorf("page: %s: meta page truncated (%d bytes): %v", path, n, err)
	}
	declared := int(binary.LittleEndian.Uint32(buf[36:40]))
	if declared != Size4K && declared != Size8K {
		f.Close()
		return nil, fmt.Errorf("page: %s: meta page declares unsupported page size %d", path, declared)
	}
	if declared > n {
		f.Close()
		return nil, fmt.Errorf("page: %s: meta page truncated (%d of %d bytes)", path, n, declared)
	}
	p := Buf(buf[:declared])
	if !p.VerifyCRC() {
		f.Close()
		return nil, fmt.Errorf("page: %s: meta page CRC mismatch", path)
	}
	if p.Type() != TypeMeta || p.ID() != 0 {
		f.Close()
		return nil, fmt.Errorf("page: %s: page 0 is not a meta page", path)
	}
	if string(p[24:32]) != metaMagic {
		f.Close()
		return nil, fmt.Errorf("page: %s: bad magic %q", path, p[24:32])
	}
	if v := binary.LittleEndian.Uint32(p[32:36]); v != metaVersion {
		f.Close()
		return nil, fmt.Errorf("page: %s: unsupported format version %d", path, v)
	}
	pf := &File{f: f, path: path, pageSize: declared}
	pf.numPages = binary.LittleEndian.Uint64(p[40:48])
	pf.freeHead = binary.LittleEndian.Uint64(p[48:56])
	pf.meta.Root = binary.LittleEndian.Uint64(p[56:64])
	pf.meta.Height = int(binary.LittleEndian.Uint32(p[64:68]))
	pf.meta.Count = int(binary.LittleEndian.Uint64(p[68:76]))
	klen := int(binary.LittleEndian.Uint16(p[76:78]))
	if klen > MaxKindName || 78+klen > declared {
		f.Close()
		return nil, fmt.Errorf("page: %s: bad kind length %d", path, klen)
	}
	pf.meta.Kind = string(p[78 : 78+klen])
	// A crash can leave allocated pages beyond the recorded count (pages
	// are extended before the meta is rewritten); trust the longer of the
	// two so allocation never hands out an id that already holds data.
	if st, err := f.Stat(); err == nil {
		if byLen := uint64(st.Size()) / uint64(declared); byLen > pf.numPages {
			pf.numPages = byLen
		}
	}
	return pf, nil
}

// PageSize returns the file's page size in bytes.
func (pf *File) PageSize() int { return pf.pageSize }

// Path returns the file's path.
func (pf *File) Path() string { return pf.path }

// NumPages returns the number of allocated pages, including the meta page
// and free-list members.
func (pf *File) NumPages() uint64 {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.numPages
}

// Meta returns the persisted index-level state.
func (pf *File) Meta() Meta {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.meta
}

// SetMeta stages m; it is persisted by the next WriteMeta/Sync/Close.
func (pf *File) SetMeta(m Meta) {
	pf.mu.Lock()
	pf.meta = m
	pf.mu.Unlock()
}

// writeMeta renders and writes the meta page. Caller must not hold mu.
func (pf *File) writeMeta() error {
	pf.mu.Lock()
	p := Buf(make([]byte, pf.pageSize))
	p.Reset(TypeMeta, 0)
	copy(p[24:32], metaMagic)
	binary.LittleEndian.PutUint32(p[32:36], metaVersion)
	binary.LittleEndian.PutUint32(p[36:40], uint32(pf.pageSize))
	binary.LittleEndian.PutUint64(p[40:48], pf.numPages)
	binary.LittleEndian.PutUint64(p[48:56], pf.freeHead)
	binary.LittleEndian.PutUint64(p[56:64], pf.meta.Root)
	binary.LittleEndian.PutUint32(p[64:68], uint32(pf.meta.Height))
	binary.LittleEndian.PutUint64(p[68:76], uint64(pf.meta.Count))
	binary.LittleEndian.PutUint16(p[76:78], uint16(len(pf.meta.Kind)))
	copy(p[78:], pf.meta.Kind)
	p.Seal()
	pf.mu.Unlock()
	_, err := pf.f.WriteAt(p, 0)
	return err
}

// WriteMeta persists the staged meta and allocator state.
func (pf *File) WriteMeta() error { return pf.writeMeta() }

// Read fills p with page id's content, verifying the CRC and the stored
// self-id. p must be PageSize bytes.
func (pf *File) Read(id uint64, p Buf) error {
	if len(p) != pf.pageSize {
		return fmt.Errorf("page: read buffer is %d bytes, page size %d", len(p), pf.pageSize)
	}
	n, err := pf.f.ReadAt(p, int64(id)*int64(pf.pageSize))
	if n != pf.pageSize {
		return fmt.Errorf("page: %s: short read of page %d (%d bytes): %v", pf.path, id, n, err)
	}
	if !p.VerifyCRC() {
		return fmt.Errorf("page: %s: page %d CRC mismatch (torn or corrupted write)", pf.path, id)
	}
	if p.ID() != id {
		return fmt.Errorf("page: %s: page %d stores id %d (misdirected write)", pf.path, id, p.ID())
	}
	return nil
}

// Write seals p's CRC and writes it at page id's offset.
func (pf *File) Write(id uint64, p Buf) error {
	if len(p) != pf.pageSize {
		return fmt.Errorf("page: write buffer is %d bytes, page size %d", len(p), pf.pageSize)
	}
	if p.ID() != id {
		return fmt.Errorf("page: writing page %d with stored id %d", id, p.ID())
	}
	p.Seal()
	_, err := pf.f.WriteAt(p, int64(id)*int64(pf.pageSize))
	return err
}

// Allocate returns a fresh page id: the free-list head when one exists,
// else a page extending the file. The caller owns the page content; the
// file does not write it.
func (pf *File) Allocate() (uint64, error) {
	pf.mu.Lock()
	if pf.freeHead != 0 {
		id := pf.freeHead
		pf.mu.Unlock()
		// Pop: the free page's link is the next free page.
		p := Buf(make([]byte, pf.pageSize))
		if err := pf.Read(id, p); err != nil {
			return 0, fmt.Errorf("page: free-list pop: %w", err)
		}
		if p.Type() != TypeFree {
			return 0, fmt.Errorf("page: free-list head %d has type %d, not free", id, p.Type())
		}
		pf.mu.Lock()
		pf.freeHead = p.Link()
		pf.mu.Unlock()
		return id, nil
	}
	id := pf.numPages
	pf.numPages++
	pf.mu.Unlock()
	return id, nil
}

// Free returns page id to the free list by writing a free-list page over
// it linking to the previous head.
func (pf *File) Free(id uint64) error {
	if id == 0 {
		return fmt.Errorf("page: cannot free the meta page")
	}
	pf.mu.Lock()
	head := pf.freeHead
	pf.mu.Unlock()
	p := Buf(make([]byte, pf.pageSize))
	p.Reset(TypeFree, id)
	p.SetLink(head)
	if err := pf.Write(id, p); err != nil {
		return err
	}
	pf.mu.Lock()
	pf.freeHead = id
	pf.mu.Unlock()
	return nil
}

// Sync persists the meta page and fsyncs the file.
func (pf *File) Sync() error {
	if err := pf.writeMeta(); err != nil {
		return err
	}
	return pf.f.Sync()
}

// Close persists the meta page and closes the file.
func (pf *File) Close() error {
	if err := pf.writeMeta(); err != nil {
		pf.f.Close()
		return err
	}
	return pf.f.Close()
}
