package page

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/lix-go/lix/internal/obs"
)

// DefaultPoolFrames is the frame budget when Options.PoolFrames is 0:
// 256 frames × 4 KiB = 1 MiB of resident pages per index.
const DefaultPoolFrames = 256

// Frame is one buffer-pool slot: a page-sized buffer plus its residency
// state. Callers receive pinned frames from Get/Alloc and must Unpin them
// when done; a pinned frame is never evicted, so its Buf stays valid.
type Frame struct {
	id    uint64
	idx   int // position in the pool's frame array (fixed at construction)
	buf   Buf
	pins  int32
	ref   bool // CLOCK reference bit
	dirty bool
}

// ID returns the page id resident in the frame.
func (fr *Frame) ID() uint64 { return fr.id }

// Page returns the frame's page buffer. Valid only while pinned.
func (fr *Frame) Page() Buf { return fr.buf }

// PoolStats is a point-in-time view of buffer-pool traffic.
type PoolStats struct {
	// Frames is the configured frame budget; Resident counts frames
	// currently holding a page, Pinned those with a nonzero pin count.
	Frames, Resident, Pinned int
	// Hits and Misses count Get calls served from memory vs from disk.
	Hits, Misses uint64
	// Evictions counts pages displaced by CLOCK; Flushes counts dirty
	// write-backs (evictions of dirty pages plus FlushAll writes).
	Evictions, Flushes uint64
}

// Pool is a buffer pool over one page file: a fixed budget of page frames
// with pin/unpin refcounts and CLOCK (second-chance) eviction. Dirty pages
// are written back when evicted or on FlushAll. The pool is safe for
// concurrent use, but the page *contents* of a pinned frame are the
// caller's to synchronize — the indexes above serialize their own
// structural mutations.
type Pool struct {
	file   *File
	frames []Frame

	mu    sync.Mutex
	table map[uint64]int // resident page id -> frame index
	hand  int

	hits, misses, evictions, flushes atomic.Uint64
	hook                             obs.Hook
}

// NewPool returns a pool of the given frame budget (0 selects
// DefaultPoolFrames, minimum 4 — a B+-tree descent pins at most two
// frames, a split three).
func NewPool(f *File, frames int) *Pool {
	if frames <= 0 {
		frames = DefaultPoolFrames
	}
	if frames < 4 {
		frames = 4
	}
	p := &Pool{
		file:   f,
		frames: make([]Frame, frames),
		table:  make(map[uint64]int, frames),
	}
	for i := range p.frames {
		p.frames[i].buf = make(Buf, f.PageSize())
		p.frames[i].idx = i
	}
	return p
}

// SetObserver attaches r to receive structural events: EvPageEvict per
// CLOCK displacement and EvPageFlush per dirty write-back. When r is an
// obs.PageRecorder (as *obs.Metrics is), per-access hit/miss counts are
// recorded too. nil detaches.
func (p *Pool) SetObserver(r obs.Recorder) { p.hook.SetRecorder(r) }

// Stats returns the pool's traffic counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	resident, pinned := len(p.table), 0
	for i := range p.frames {
		if p.frames[i].pins > 0 {
			pinned++
		}
	}
	p.mu.Unlock()
	return PoolStats{
		Frames:    len(p.frames),
		Resident:  resident,
		Pinned:    pinned,
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		Evictions: p.evictions.Load(),
		Flushes:   p.flushes.Load(),
	}
}

// recordAccess forwards one hit/miss to the attached recorder when it
// implements the page extension.
func (p *Pool) recordAccess(hit bool) {
	if r := p.hook.Recorder(); r != nil {
		if pr, ok := r.(obs.PageRecorder); ok {
			pr.RecordPageAccess(hit)
		}
	}
}

// Get returns a pinned frame holding page id, reading it from disk on a
// miss. The caller must Unpin it exactly once.
//
// The table entry for a missed page is published only after the disk read
// completes, so a concurrent Get never observes a half-loaded frame. Two
// concurrent readers missing on the same page may both load it into
// separate frames; both copies are clean and identical, the later publish
// wins the table slot, and the loser is reclaimed by the eviction sweep
// (which only touches the table when it still maps to the victim frame).
func (p *Pool) Get(id uint64) (*Frame, error) {
	p.mu.Lock()
	if fi, ok := p.table[id]; ok {
		fr := &p.frames[fi]
		fr.pins++
		fr.ref = true
		p.mu.Unlock()
		p.hits.Add(1)
		p.recordAccess(true)
		return fr, nil
	}
	fr, err := p.victimLocked(id, false)
	p.mu.Unlock()
	if err != nil {
		return nil, err
	}
	p.misses.Add(1)
	p.recordAccess(false)
	if err := p.file.Read(id, fr.buf); err != nil {
		// The read failed; release the frame so the pool is not poisoned.
		// The table was never published for it, so only the frame's own
		// state needs clearing.
		p.mu.Lock()
		fr.id = 0
		fr.pins = 0
		fr.ref = false
		p.mu.Unlock()
		return nil, err
	}
	p.mu.Lock()
	p.table[id] = fr.idx
	p.mu.Unlock()
	return fr, nil
}

// Alloc allocates a fresh page and returns it as a pinned, dirty frame
// initialized to the given type. No disk read happens; the page reaches
// disk on eviction or flush.
func (p *Pool) Alloc(typ byte) (*Frame, error) {
	id, err := p.file.Allocate()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	fr, verr := p.victimLocked(id, true)
	p.mu.Unlock()
	if verr != nil {
		return nil, verr
	}
	fr.buf.Reset(typ, id)
	fr.dirty = true
	return fr, nil
}

// victimLocked claims a frame for page id: evicting via CLOCK when every
// frame is occupied. The returned frame is pinned once, with stale state
// cleared; publish controls whether the table entry is registered now
// (freshly allocated pages, content valid immediately) or deferred by the
// caller until the frame's buffer is actually loaded. Caller holds p.mu.
func (p *Pool) victimLocked(id uint64, publish bool) (*Frame, error) {
	n := len(p.frames)
	// Two full sweeps: the first clears reference bits, the second takes
	// the first unpinned frame. More than 2n steps means every frame is
	// pinned — the budget is too small for the access pattern.
	for step := 0; step < 2*n; step++ {
		fr := &p.frames[p.hand]
		p.hand = (p.hand + 1) % n
		if fr.pins > 0 {
			continue
		}
		if fr.ref {
			fr.ref = false
			continue
		}
		if fi, resident := p.table[fr.id]; resident && fi == fr.idx {
			// Evicting a resident page: write back if dirty.
			if fr.dirty {
				if err := p.file.Write(fr.id, fr.buf); err != nil {
					return nil, fmt.Errorf("page: write-back of page %d: %w", fr.id, err)
				}
				fr.dirty = false
				p.flushes.Add(1)
				p.hook.Emit(obs.EvPageFlush, 1, "evict")
			}
			delete(p.table, fr.id)
			p.evictions.Add(1)
			p.hook.Emit(obs.EvPageEvict, 1, "")
		}
		fr.id = id
		fr.pins = 1
		fr.ref = true
		fr.dirty = false
		if publish {
			p.table[id] = fr.idx
		}
		return fr, nil
	}
	return nil, fmt.Errorf("page: all %d pool frames pinned (frame budget too small)", n)
}

// Unpin releases one pin on fr; dirty marks the page as modified so it is
// written back before eviction.
func (p *Pool) Unpin(fr *Frame, dirty bool) {
	p.mu.Lock()
	if fr.pins <= 0 {
		p.mu.Unlock()
		panic("page: Unpin of unpinned frame")
	}
	fr.pins--
	if dirty {
		fr.dirty = true
	}
	p.mu.Unlock()
}

// Free removes page id from the pool (discarding any dirty state — the
// page is being deleted) and returns it to the file's free list. The page
// must be unpinned.
func (p *Pool) Free(id uint64) error {
	p.mu.Lock()
	if fi, ok := p.table[id]; ok {
		fr := &p.frames[fi]
		if fr.pins > 0 {
			p.mu.Unlock()
			return fmt.Errorf("page: freeing pinned page %d", id)
		}
		fr.dirty = false
		fr.id = 0
		fr.ref = false
		delete(p.table, id)
	}
	p.mu.Unlock()
	return p.file.Free(id)
}

// FlushAll writes every dirty resident page back to the file, leaving the
// pages resident and clean. It does not fsync; Sync on the file does.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, fi := range p.table {
		fr := &p.frames[fi]
		if !fr.dirty {
			continue
		}
		if err := p.file.Write(id, fr.buf); err != nil {
			return fmt.Errorf("page: flush of page %d: %w", id, err)
		}
		fr.dirty = false
		p.flushes.Add(1)
		p.hook.Emit(obs.EvPageFlush, 1, "flush_all")
	}
	return nil
}
