// Package page is the disk-resident storage tier of the lix library: a
// paged file format, a buffer pool with pin/unpin refcounts and CLOCK
// eviction, and two index kinds built on top of them — a disk-backed
// B+-tree (`paged-btree`) and a paged learned index (`paged-pgm`, PGM-style
// segments over page-resident sorted leaves with the model array pinned in
// memory).
//
// The design follows the central observation of "Updatable Learned Indexes
// Meet Disk-Resident DBMS" (PAPERS.md): once data no longer fits in RAM,
// page layout and buffer management dominate learned-index performance, not
// model accuracy. Everything in this package therefore revolves around
// fixed-size pages: models predict a *leaf page*, the last-mile search runs
// inside a single pinned page, and the buffer pool decides what stays hot.
//
// On-disk format. A page file is a sequence of fixed-size pages (4 KiB or
// 8 KiB). Every page carries a 24-byte header:
//
//	[0:4]   CRC32C over bytes [4:pageSize] (header remainder + payload)
//	[4]     page type (meta, free, leaf, inner)
//	[5]     flags (reserved, zero)
//	[6:8]   entry count, little-endian u16
//	[8:16]  page id, little-endian u64 — self reference, catches
//	        misdirected reads and writes
//	[16:24] link, little-endian u64 — type-specific: next leaf in the
//	        chain (leaves), rightmost child (inner nodes), next free page
//	        (free-list pages)
//
// Leaf payloads are sorted (u64 key, u64 value) pairs; inner payloads are
// (separator key, child id) pairs routing keys below the separator, with
// the rightmost child in the header link. Unused payload bytes are zero —
// the CRC covers them, so torn or bit-flipped writes anywhere in the page
// are detected on read. Page 0 is the meta page (format below in file.go).
package page

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"github.com/lix-go/lix/internal/core"
)

// Page sizes. Both are multiples of common sector sizes, so a page write
// is as close to atomic as the device allows; the CRC catches the cases
// where it is not.
const (
	Size4K = 4096
	Size8K = 8192

	// DefaultPageSize is used when an Options.PageSize of 0 is given.
	DefaultPageSize = Size4K
)

// HeaderSize is the per-page header length in bytes.
const HeaderSize = 24

// Page types.
const (
	TypeMeta  byte = 1 // page 0: file metadata
	TypeFree  byte = 2 // free-list member
	TypeLeaf  byte = 3 // sorted (key, value) records
	TypeInner byte = 4 // B+-tree routing node
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Buf is one page-sized byte buffer. All accessors assume len(p) is the
// file's page size and ≥ HeaderSize.
type Buf []byte

// Type returns the page type byte.
func (p Buf) Type() byte { return p[4] }

// SetType stores the page type byte.
func (p Buf) SetType(t byte) { p[4] = t }

// Count returns the entry count.
func (p Buf) Count() int { return int(binary.LittleEndian.Uint16(p[6:8])) }

// SetCount stores the entry count.
func (p Buf) SetCount(n int) { binary.LittleEndian.PutUint16(p[6:8], uint16(n)) }

// ID returns the page's self-reference id.
func (p Buf) ID() uint64 { return binary.LittleEndian.Uint64(p[8:16]) }

// SetID stores the page's self-reference id.
func (p Buf) SetID(id uint64) { binary.LittleEndian.PutUint64(p[8:16], id) }

// Link returns the type-specific link field (next leaf / rightmost child /
// next free page).
func (p Buf) Link() uint64 { return binary.LittleEndian.Uint64(p[16:24]) }

// SetLink stores the link field.
func (p Buf) SetLink(id uint64) { binary.LittleEndian.PutUint64(p[16:24], id) }

// Seal computes and stores the CRC. Call after every mutation, before the
// page is written to disk.
func (p Buf) Seal() {
	binary.LittleEndian.PutUint32(p[0:4], crc32.Checksum(p[4:], castagnoli))
}

// VerifyCRC reports whether the stored CRC matches the page content.
func (p Buf) VerifyCRC() bool {
	return binary.LittleEndian.Uint32(p[0:4]) == crc32.Checksum(p[4:], castagnoli)
}

// Reset zeroes the page and stamps type and id. Zeroing matters: unused
// payload bytes are part of the CRC and of the canonical encoding.
func (p Buf) Reset(typ byte, id uint64) {
	for i := range p {
		p[i] = 0
	}
	p.SetType(typ)
	p.SetID(id)
}

// LeafCap returns how many (key, value) records fit in a leaf page of the
// given size.
func LeafCap(pageSize int) int { return (pageSize - HeaderSize) / 16 }

// InnerCap returns how many (separator, child) pairs fit in an inner page
// of the given size. The rightmost child lives in the header link, so an
// inner page at capacity routes InnerCap+1 children.
func InnerCap(pageSize int) int { return (pageSize - HeaderSize) / 16 }

// LeafKey returns record i's key.
func (p Buf) LeafKey(i int) core.Key {
	return binary.LittleEndian.Uint64(p[HeaderSize+16*i:])
}

// LeafVal returns record i's value.
func (p Buf) LeafVal(i int) core.Value {
	return binary.LittleEndian.Uint64(p[HeaderSize+16*i+8:])
}

// SetLeafRecord stores record i.
func (p Buf) SetLeafRecord(i int, k core.Key, v core.Value) {
	binary.LittleEndian.PutUint64(p[HeaderSize+16*i:], k)
	binary.LittleEndian.PutUint64(p[HeaderSize+16*i+8:], v)
}

// LeafSearch returns the smallest index i with LeafKey(i) >= k, and whether
// that record's key equals k — the in-page last-mile search.
func (p Buf) LeafSearch(k core.Key) (int, bool) {
	lo, hi := 0, p.Count()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.LeafKey(mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < p.Count() && p.LeafKey(lo) == k
}

// LeafInsertAt shifts records [i:count) right and stores (k, v) at i.
// The caller must ensure count < LeafCap.
func (p Buf) LeafInsertAt(i int, k core.Key, v core.Value) {
	n := p.Count()
	copy(p[HeaderSize+16*(i+1):HeaderSize+16*(n+1)], p[HeaderSize+16*i:HeaderSize+16*n])
	p.SetLeafRecord(i, k, v)
	p.SetCount(n + 1)
}

// LeafDeleteAt removes record i, shifting the tail left and zeroing the
// vacated slot (the canonical form keeps unused bytes zero).
func (p Buf) LeafDeleteAt(i int) {
	n := p.Count()
	copy(p[HeaderSize+16*i:HeaderSize+16*(n-1)], p[HeaderSize+16*(i+1):HeaderSize+16*n])
	for b := HeaderSize + 16*(n-1); b < HeaderSize+16*n; b++ {
		p[b] = 0
	}
	p.SetCount(n - 1)
}

// InnerKey returns separator i.
func (p Buf) InnerKey(i int) core.Key {
	return binary.LittleEndian.Uint64(p[HeaderSize+16*i:])
}

// InnerChild returns the child id paired with separator i (routing keys
// < InnerKey(i)).
func (p Buf) InnerChild(i int) uint64 {
	return binary.LittleEndian.Uint64(p[HeaderSize+16*i+8:])
}

// SetInnerEntry stores (separator, child) pair i.
func (p Buf) SetInnerEntry(i int, k core.Key, child uint64) {
	binary.LittleEndian.PutUint64(p[HeaderSize+16*i:], k)
	binary.LittleEndian.PutUint64(p[HeaderSize+16*i+8:], child)
}

// InnerDeleteAt removes (separator, child) pair i, shifting the tail left
// and zeroing the vacated slot. Inner entries share the leaf record byte
// layout, so the same moves apply.
func (p Buf) InnerDeleteAt(i int) { p.LeafDeleteAt(i) }

// InnerRoute returns the child page to descend into for key k: the child
// of the first separator greater than k, or the rightmost child (the
// header link) when no separator is greater.
func (p Buf) InnerRoute(k core.Key) uint64 {
	lo, hi := 0, p.Count()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.InnerKey(mid) <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == p.Count() {
		return p.Link()
	}
	return p.InnerChild(lo)
}

// InnerInsertAt shifts entries [i:count) right and stores (k, child) at i.
func (p Buf) InnerInsertAt(i int, k core.Key, child uint64) {
	n := p.Count()
	copy(p[HeaderSize+16*(i+1):HeaderSize+16*(n+1)], p[HeaderSize+16*i:HeaderSize+16*n])
	p.SetInnerEntry(i, k, child)
	p.SetCount(n + 1)
}

// ---------------------------------------------------------------------------
// Canonical decode / encode (the fuzz surface)
// ---------------------------------------------------------------------------

// Decoded is the logical content of one validated leaf or inner page.
type Decoded struct {
	Type  byte
	ID    uint64
	Link  uint64
	Keys  []core.Key
	Vals  []uint64 // record values (leaf) or child ids (inner)
	Size  int      // page size the buffer was validated at
}

// Decode validates p as a canonical leaf or inner page — CRC intact,
// known type, count within capacity, keys sorted (strictly ascending),
// flags zero, and all unused payload bytes zero — and returns its logical
// content. The zero-padding requirement makes the encoding canonical:
// Encode(Decode(p)) reproduces p byte-exactly for every accepted p, which
// is what FuzzPageDecode pins.
func Decode(p []byte) (*Decoded, error) {
	ps := len(p)
	if ps != Size4K && ps != Size8K {
		return nil, fmt.Errorf("page: bad page size %d", ps)
	}
	b := Buf(p)
	if !b.VerifyCRC() {
		return nil, fmt.Errorf("page: CRC mismatch")
	}
	if b[5] != 0 {
		return nil, fmt.Errorf("page: nonzero flags byte %#x", b[5])
	}
	typ := b.Type()
	if typ != TypeLeaf && typ != TypeInner {
		return nil, fmt.Errorf("page: not a leaf or inner page (type %d)", typ)
	}
	n := b.Count()
	if n > LeafCap(ps) {
		return nil, fmt.Errorf("page: count %d exceeds capacity %d", n, LeafCap(ps))
	}
	for i := 1; i < n; i++ {
		if b.LeafKey(i-1) >= b.LeafKey(i) {
			return nil, fmt.Errorf("page: keys not strictly ascending at %d", i)
		}
	}
	for i := HeaderSize + 16*n; i < ps; i++ {
		if p[i] != 0 {
			return nil, fmt.Errorf("page: nonzero padding at byte %d", i)
		}
	}
	d := &Decoded{Type: typ, ID: b.ID(), Link: b.Link(), Size: ps}
	d.Keys = make([]core.Key, n)
	d.Vals = make([]uint64, n)
	for i := 0; i < n; i++ {
		d.Keys[i] = b.LeafKey(i)
		d.Vals[i] = b.LeafVal(i)
	}
	return d, nil
}

// Encode renders d back into a sealed page buffer of d.Size bytes.
func Encode(d *Decoded) []byte {
	p := Buf(make([]byte, d.Size))
	p.Reset(d.Type, d.ID)
	p.SetLink(d.Link)
	p.SetCount(len(d.Keys))
	for i := range d.Keys {
		p.SetLeafRecord(i, d.Keys[i], d.Vals[i])
	}
	p.Seal()
	return p
}
