package page

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/lix-go/lix/internal/core"
)

// Crash-injection suite for the page layer: every test builds an index
// file, damages it the way a real crash or failing device can (torn page
// write, flipped bit, truncated tail), reopens, and checks the one
// property the CRC framing must deliver: a damaged page is DETECTED — a
// lookup either returns the correct committed value or an error, never a
// silently wrong answer.

const crashRecords = 3000

// buildCrashFile builds a paged index of the given kind at path and
// returns the committed records.
func buildCrashFile(t *testing.T, kind, path string) []core.KV {
	t.Helper()
	recs := make([]core.KV, crashRecords)
	for i := range recs {
		recs[i] = core.KV{Key: core.Key(i * 7), Value: core.Value(i + 1)}
	}
	var ix pagedIndex
	var err error
	switch kind {
	case KindBTree:
		ix, err = BulkBTree(path, recs, Options{})
	case KindPGM:
		ix, err = BulkPGM(path, recs, Options{})
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	return recs
}

// checkDetected reopens the damaged file and sweeps every committed
// record plus a band of absent keys: each probe must yield the committed
// answer or an error — never a wrong value and never a panic. Returns how
// many probes surfaced errors (so callers can assert the damage was
// actually seen when it must be).
func checkDetected(t *testing.T, kind, path string, recs []core.KV) int {
	t.Helper()
	var bt *BTree
	var pg *PGM
	var err error
	// A small pool forces the sweep to read every page from disk rather
	// than serving damage-masking cached frames.
	switch kind {
	case KindBTree:
		bt, err = OpenBTree(path, Options{PoolFrames: 8})
	case KindPGM:
		pg, err = OpenPGM(path, Options{PoolFrames: 8})
	}
	if err != nil {
		// Damage in the meta page (or, for the PGM, anywhere in the leaf
		// chain walked at open) is detected at open time: that is also a
		// correct outcome.
		return 1
	}
	lookup := func(k core.Key) (core.Value, bool, error) {
		if bt != nil {
			return bt.Lookup(k)
		}
		return pg.Lookup(k)
	}
	defer func() {
		if bt != nil {
			bt.Close()
		} else {
			pg.Close()
		}
	}()
	errs := 0
	for _, r := range recs {
		v, ok, err := lookup(r.Key)
		if err != nil {
			errs++
			continue
		}
		if !ok || v != r.Value {
			t.Fatalf("%s: Get(%d) silently returned (%d,%v), want (%d,true)", kind, r.Key, v, ok, r.Value)
		}
	}
	for i := 0; i < crashRecords; i += 17 {
		k := core.Key(i*7 + 3)
		v, ok, err := lookup(k)
		if err != nil {
			errs++
			continue
		}
		if ok {
			t.Fatalf("%s: absent key %d silently resurrected as %d", kind, k, v)
		}
	}
	return errs
}

// TestCrashBitFlipDetected flips one random bit anywhere in the file per
// trial. Every read of the damaged page must error; undamaged pages keep
// serving exact committed data.
func TestCrashBitFlipDetected(t *testing.T) {
	for _, kind := range []string{KindBTree, KindPGM} {
		t.Run(kind, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			path := filepath.Join(t.TempDir(), "crash.lpx")
			recs := buildCrashFile(t, kind, path)
			pristine, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 25; trial++ {
				data := append([]byte(nil), pristine...)
				pos := rng.Intn(len(data))
				data[pos] ^= 1 << uint(rng.Intn(8))
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
				if errs := checkDetected(t, kind, path, recs); errs == 0 {
					t.Fatalf("trial %d: bit flip at byte %d never detected", trial, pos)
				}
			}
		})
	}
}

// TestCrashTornPageDetected simulates a torn page write: a random page's
// second half reverts to zeros (the write only partially reached the
// platter). The CRC covers the whole page, so the tear must be detected.
func TestCrashTornPageDetected(t *testing.T) {
	for _, kind := range []string{KindBTree, KindPGM} {
		t.Run(kind, func(t *testing.T) {
			rng := rand.New(rand.NewSource(13))
			path := filepath.Join(t.TempDir(), "crash.lpx")
			recs := buildCrashFile(t, kind, path)
			pristine, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			numPages := len(pristine) / DefaultPageSize
			for trial := 0; trial < 10; trial++ {
				data := append([]byte(nil), pristine...)
				pg := rng.Intn(numPages)
				tearAt := pg*DefaultPageSize + DefaultPageSize/2
				changed := false
				for i := tearAt; i < (pg+1)*DefaultPageSize; i++ {
					changed = changed || data[i] != 0
					data[i] = 0
				}
				if !changed {
					// The page's tail was already zero (e.g. the sparsely
					// filled meta page): the tear lost nothing, so there is
					// nothing to detect.
					continue
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
				if errs := checkDetected(t, kind, path, recs); errs == 0 {
					t.Fatalf("trial %d: torn write of page %d never detected", trial, pg)
				}
			}
		})
	}
}

// TestCrashTruncatedTailDetected cuts the file at a random offset. Pages
// beyond the cut read short and must error; pages before it stay exact.
func TestCrashTruncatedTailDetected(t *testing.T) {
	for _, kind := range []string{KindBTree, KindPGM} {
		t.Run(kind, func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			path := filepath.Join(t.TempDir(), "crash.lpx")
			recs := buildCrashFile(t, kind, path)
			pristine, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 10; trial++ {
				// Cut somewhere after the meta page so Open can at least start.
				cut := DefaultPageSize + rng.Intn(len(pristine)-DefaultPageSize)
				if err := os.WriteFile(path, pristine[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				if errs := checkDetected(t, kind, path, recs); errs == 0 {
					t.Fatalf("trial %d: truncation at byte %d never detected", trial, cut)
				}
			}
		})
	}
}

// TestCrashCleanFileSurvivesSweep is the control: the undamaged file must
// produce zero detection errors under the same sweep.
func TestCrashCleanFileSurvivesSweep(t *testing.T) {
	for _, kind := range []string{KindBTree, KindPGM} {
		path := filepath.Join(t.TempDir(), kind+".lpx")
		recs := buildCrashFile(t, kind, path)
		if errs := checkDetected(t, kind, path, recs); errs != 0 {
			t.Fatalf("%s: clean file produced %d errors", kind, errs)
		}
	}
}
