package page

import (
	"fmt"
	"os"
	"sync"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
	"github.com/lix-go/lix/internal/segment"
)

// KindPGM is the kind name stored in the meta page of paged-PGM files.
const KindPGM = "paged-pgm"

// pgmEps is the PLA error bound (in fence-array positions) the leaf model
// is trained to.
const pgmEps = 8

// pgmMinModelFences is the fence count below which the model is skipped
// entirely: a binary search over a handful of fences beats evaluating a
// PLA.
const pgmMinModelFences = 64

// PGM is a paged learned index: sorted records live in the same chained
// leaf pages the B+-tree uses, but routing replaces the inner-node tree
// with an in-memory learned model. A fence array (the first key of each
// leaf, pinned in memory) is approximated by a PLA of ε-bounded segments
// (the PGM-index construction); a lookup predicts the fence position,
// corrects it with a windowed binary search over the fences, then runs the
// last-mile search inside a single pinned leaf page. Disk I/O per point
// lookup is therefore at most one page read — the property that makes
// learned indexes attractive on storage (see the package comment).
//
// The model is advisory, never load-bearing: after the windowed search the
// result is verified against the neighboring fences with exact integer
// compares, and on any violation (model drift, float64 collapse of nearby
// huge keys) the lookup falls back to a full binary search over the fence
// array. Correctness never depends on the model; only speed does.
//
// Inserts go to the leaf owning the key; a full leaf splits, growing the
// fence array. The model is retrained (EvRetrain) once the fence count has
// drifted enough that the widened search window erodes the model's
// advantage. Deletions leave leaves underfull, but a leaf emptied by a
// deletion is unlinked, dropped from the fence array, and returned to the
// file's free list for reuse.
type PGM struct {
	mu   sync.RWMutex
	file *File
	pool *Pool

	head   uint64 // first leaf id (0 = empty)
	count  int
	fences []core.Key // fences[i] = lower-bound key of leaf i
	leaves []uint64   // leaves[i] = page id of leaf i

	segs          []segment.Segment
	fencesAtTrain int // fence count when segs were last trained

	hook          obs.Hook
	removeOnClose bool
}

// CreatePGM creates a fresh paged-PGM file at path.
func CreatePGM(path string, o Options) (*PGM, error) {
	f, err := Create(path, o.PageSize, KindPGM)
	if err != nil {
		return nil, err
	}
	return &PGM{file: f, pool: NewPool(f, o.PoolFrames)}, nil
}

// OpenPGM opens an existing paged-PGM file, rebuilding the in-memory fence
// array and model by walking the leaf chain.
func OpenPGM(path string, o Options) (*PGM, error) {
	f, err := Open(path)
	if err != nil {
		return nil, err
	}
	m := f.Meta()
	if m.Kind != KindPGM {
		f.Close()
		return nil, fmt.Errorf("page: %s holds a %q index, not %q", path, m.Kind, KindPGM)
	}
	g := &PGM{file: f, pool: NewPool(f, o.PoolFrames), head: m.Root, count: m.Count}
	if err := g.rebuildFences(); err != nil {
		f.Close()
		return nil, err
	}
	g.retrain()
	return g, nil
}

// NewTempPGM creates a paged PGM backed by a temporary file that is
// removed on Close.
func NewTempPGM(o Options) (*PGM, error) {
	path, err := tempPath("lix-paged-pgm-*.lpx")
	if err != nil {
		return nil, err
	}
	g, err := CreatePGM(path, o)
	if err != nil {
		return nil, err
	}
	g.removeOnClose = true
	return g, nil
}

// BulkPGM creates a paged-PGM file at path bulk-loaded with recs (sorted
// ascending, distinct keys).
func BulkPGM(path string, recs []core.KV, o Options) (*PGM, error) {
	g, err := CreatePGM(path, o)
	if err != nil {
		return nil, err
	}
	if err := g.BulkLoad(recs); err != nil {
		g.Close()
		os.Remove(path)
		return nil, err
	}
	return g, nil
}

// rebuildFences reconstructs fences and leaves from the on-disk leaf
// chain. An empty leaf (all records deleted) inherits the previous fence:
// its lower bound is unknown but routing only needs monotone fences.
func (g *PGM) rebuildFences() error {
	g.fences = g.fences[:0]
	g.leaves = g.leaves[:0]
	for id := g.head; id != 0; {
		fr, err := g.pool.Get(id)
		if err != nil {
			return err
		}
		p := fr.Page()
		if p.Type() != TypeLeaf {
			g.pool.Unpin(fr, false)
			return fmt.Errorf("page: %s: leaf chain reaches page %d of type %d", g.file.Path(), id, p.Type())
		}
		fence := core.Key(0)
		if len(g.fences) == 0 {
			// Slot 0's fence stays 0 (conceptually -inf; see InsertErr).
		} else if p.Count() > 0 {
			fence = p.LeafKey(0)
		} else {
			// An emptied leaf inherits the previous fence: its lower bound
			// is unknown but routing only needs monotone fences.
			fence = g.fences[len(g.fences)-1]
		}
		g.fences = append(g.fences, fence)
		g.leaves = append(g.leaves, id)
		id = p.Link()
		g.pool.Unpin(fr, false)
	}
	return nil
}

// retrain rebuilds the PLA over the fence array and emits EvRetrain.
func (g *PGM) retrain() {
	g.fencesAtTrain = len(g.fences)
	if len(g.fences) < pgmMinModelFences {
		g.segs = nil
		return
	}
	xs := make([]float64, len(g.fences))
	for i, f := range g.fences {
		xs[i] = float64(f)
	}
	g.segs = segment.BuildOptimal(xs, segment.Positions(len(xs)), pgmEps)
	g.hook.Emit(obs.EvRetrain, len(g.segs), "fences")
}

// maybeRetrain retrains once the fence array has grown or shrunk past
// the point where drift widens the verified search window beyond ~2ε.
func (g *PGM) maybeRetrain() {
	drift := len(g.fences) - g.fencesAtTrain
	if drift < 0 {
		drift = -drift
	}
	if drift > pgmEps || (len(g.fences) >= pgmMinModelFences && g.segs == nil) {
		g.retrain()
	}
}

// locate returns the index of the leaf owning k: the last fence <= k
// (clamped to 0 — keys below every fence route to the first leaf).
func (g *PGM) locate(k core.Key) int {
	n := len(g.fences)
	if n == 0 {
		return -1
	}
	var i int
	if g.segs == nil {
		i = core.LowerBound(g.fences, k)
	} else {
		// Predict, correct within the drift-widened window, then verify
		// with exact compares; fall back to a full search if the model is
		// off (float64 key collapse or unexpected drift).
		s := &g.segs[segment.Locate(g.segs, float64(k))]
		pos := int(s.Predict(float64(k)))
		drift := n - g.fencesAtTrain
		if drift < 0 {
			drift = -drift
		}
		w := pgmEps + drift + 1
		i = core.SearchRange(g.fences, k, pos-w, pos+w)
		if (i > 0 && g.fences[i-1] >= k) || (i < n && g.fences[i] < k) {
			i = core.LowerBound(g.fences, k)
		}
	}
	// i is the lower bound: first fence >= k. The owning leaf is i when
	// its fence equals k, else the one before.
	if i < n && g.fences[i] == k {
		return i
	}
	if i == 0 {
		return 0
	}
	return i - 1
}

// SetObserver attaches r to receive model retrains, leaf splits, and the
// buffer pool's page traffic. nil detaches.
func (g *PGM) SetObserver(r obs.Recorder) {
	g.hook.SetRecorder(r)
	g.pool.SetObserver(r)
}

// PoolStats returns the buffer pool's traffic counters.
func (g *PGM) PoolStats() PoolStats { return g.pool.Stats() }

// Path returns the backing file's path.
func (g *PGM) Path() string { return g.file.Path() }

// Sync flushes all dirty pages, persists the meta page, and fsyncs.
func (g *PGM) Sync() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.pool.FlushAll(); err != nil {
		return err
	}
	g.file.SetMeta(Meta{Kind: KindPGM, Root: g.head, Count: g.count})
	return g.file.Sync()
}

// Close flushes, persists the meta page, and closes the file (removing it
// when created by NewTempPGM).
func (g *PGM) Close() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	ferr := g.pool.FlushAll()
	g.file.SetMeta(Meta{Kind: KindPGM, Root: g.head, Count: g.count})
	if err := g.file.Close(); err != nil && ferr == nil {
		ferr = err
	}
	if g.removeOnClose {
		os.Remove(g.file.Path())
	}
	return ferr
}

// Len returns the number of records.
func (g *PGM) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.count
}

// Stats reports structural statistics. IndexBytes covers the resident
// state: pool frames plus the pinned fence array and model.
func (g *PGM) Stats() core.Stats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	pages := int(g.file.NumPages())
	h := 0
	if g.head != 0 {
		h = 2 // model level + leaf level
	}
	return core.Stats{
		Name:  KindPGM,
		Count: g.count,
		IndexBytes: len(g.pool.frames)*g.file.PageSize() +
			16*len(g.fences) + segment.SegmentBytes*len(g.segs),
		DataBytes: pages * g.file.PageSize(),
		Height:    h,
		Models:    len(g.segs),
	}
}

// Lookup returns the value for k, reporting I/O or corruption errors.
func (g *PGM) Lookup(k core.Key) (core.Value, bool, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	d := g.locate(k)
	if d < 0 {
		return 0, false, nil
	}
	fr, err := g.pool.Get(g.leaves[d])
	if err != nil {
		return 0, false, err
	}
	p := fr.Page()
	i, found := p.LeafSearch(k)
	var v core.Value
	if found {
		v = p.LeafVal(i)
	}
	g.pool.Unpin(fr, false)
	return v, found, nil
}

// Get returns the value for k, panicking on I/O or corruption errors.
func (g *PGM) Get(k core.Key) (core.Value, bool) {
	v, ok, err := g.Lookup(k)
	if err != nil {
		panic("page: paged-pgm Get: " + err.Error())
	}
	return v, ok
}

// InsertErr upserts (k, v), reporting I/O or corruption errors.
func (g *PGM) InsertErr(k core.Key, v core.Value) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.head == 0 {
		fr, err := g.pool.Alloc(TypeLeaf)
		if err != nil {
			return err
		}
		fr.Page().LeafInsertAt(0, k, v)
		g.head = fr.ID()
		// Slot 0's fence is pinned to 0 (conceptually -inf): keys below
		// every later fence route there, and a split of slot 0 must never
		// produce a separator below its own fence.
		g.fences = append(g.fences, 0)
		g.leaves = append(g.leaves, fr.ID())
		g.pool.Unpin(fr, true)
		g.count = 1
		return nil
	}
	d := g.locate(k)
	fr, err := g.pool.Get(g.leaves[d])
	if err != nil {
		return err
	}
	p := fr.Page()
	i, found := p.LeafSearch(k)
	if found {
		p.SetLeafRecord(i, k, v)
		g.pool.Unpin(fr, true)
		return nil
	}
	n := p.Count()
	if n < LeafCap(len(p)) {
		p.LeafInsertAt(i, k, v)
		g.pool.Unpin(fr, true)
		g.count++
		return nil
	}

	// Split the leaf and grow the fence array; the model keeps predicting
	// against the new array within its drift-widened window until the next
	// retrain.
	rfr, err := g.pool.Alloc(TypeLeaf)
	if err != nil {
		g.pool.Unpin(fr, false)
		return err
	}
	rp := rfr.Page()
	mid := n / 2
	for j := mid; j < n; j++ {
		rp.SetLeafRecord(j-mid, p.LeafKey(j), p.LeafVal(j))
	}
	rp.SetCount(n - mid)
	rp.SetLink(p.Link())
	p.SetLink(rfr.ID())
	zeroRange(p, HeaderSize+16*mid, HeaderSize+16*n)
	p.SetCount(mid)

	sep := rp.LeafKey(0)
	if k < sep {
		p.LeafInsertAt(i, k, v)
	} else {
		j, _ := rp.LeafSearch(k)
		rp.LeafInsertAt(j, k, v)
	}
	right := rfr.ID()
	g.pool.Unpin(fr, true)
	g.pool.Unpin(rfr, true)

	g.fences = append(g.fences, 0)
	copy(g.fences[d+2:], g.fences[d+1:])
	g.fences[d+1] = sep
	g.leaves = append(g.leaves, 0)
	copy(g.leaves[d+2:], g.leaves[d+1:])
	g.leaves[d+1] = right

	g.count++
	g.hook.Emit(obs.EvNodeSplit, n+1, "leaf")
	g.maybeRetrain()
	return nil
}

// Insert upserts (k, v), panicking on I/O or corruption errors.
func (g *PGM) Insert(k core.Key, v core.Value) {
	if err := g.InsertErr(k, v); err != nil {
		panic("page: paged-pgm Insert: " + err.Error())
	}
}

// DeleteErr removes k, reporting whether it was present. A leaf the
// deletion empties is stitched out of the chain, dropped from the fence
// array, and returned to the file's free list; the model retrains when
// enough fences have disappeared that its drift window erodes.
func (g *PGM) DeleteErr(k core.Key) (bool, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	d := g.locate(k)
	if d < 0 {
		return false, nil
	}
	fr, err := g.pool.Get(g.leaves[d])
	if err != nil {
		return false, err
	}
	p := fr.Page()
	i, found := p.LeafSearch(k)
	if !found {
		g.pool.Unpin(fr, false)
		return false, nil
	}
	p.LeafDeleteAt(i)
	g.count--
	if p.Count() > 0 {
		g.pool.Unpin(fr, true)
		return true, nil
	}
	next := p.Link()
	g.pool.Unpin(fr, true)
	return true, g.reclaimLeaf(d, next)
}

// reclaimLeaf removes the emptied, unpinned leaf at slot d from the chain
// and the fence array and returns its page to the free list.
func (g *PGM) reclaimLeaf(d int, next uint64) error {
	id := g.leaves[d]
	if d == 0 {
		g.head = next
	} else {
		fr, err := g.pool.Get(g.leaves[d-1])
		if err != nil {
			return err
		}
		fr.Page().SetLink(next)
		g.pool.Unpin(fr, true)
	}
	g.fences = append(g.fences[:d], g.fences[d+1:]...)
	g.leaves = append(g.leaves[:d], g.leaves[d+1:]...)
	if len(g.fences) > 0 {
		// Slot 0's fence stays pinned to 0 (conceptually -inf).
		g.fences[0] = 0
	}
	if err := g.pool.Free(id); err != nil {
		return err
	}
	g.maybeRetrain()
	return nil
}

// Delete removes k, panicking on I/O or corruption errors.
func (g *PGM) Delete(k core.Key) bool {
	ok, err := g.DeleteErr(k)
	if err != nil {
		panic("page: paged-pgm Delete: " + err.Error())
	}
	return ok
}

// RangeErr calls fn for every record with lo <= key <= hi in ascending
// order, walking the leaf chain from the leaf owning lo.
func (g *PGM) RangeErr(lo, hi core.Key, fn func(core.Key, core.Value) bool) (int, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	d := g.locate(lo)
	if d < 0 || lo > hi {
		return 0, nil
	}
	return scanChain(g.pool, g.leaves[d], lo, hi, fn)
}

// Range calls fn for records in [lo, hi], panicking on I/O or corruption
// errors.
func (g *PGM) Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	n, err := g.RangeErr(lo, hi, fn)
	if err != nil {
		panic("page: paged-pgm Range: " + err.Error())
	}
	return n
}

// BulkLoad packs recs (sorted ascending, distinct keys) into a fresh leaf
// chain and trains the model once over the final fence array.
func (g *PGM) BulkLoad(recs []core.KV) error {
	if g.head != 0 || g.count != 0 {
		return fmt.Errorf("page: bulk load into non-empty index")
	}
	if len(recs) == 0 {
		return nil
	}
	cap := LeafCap(g.file.PageSize())
	var prev *Frame
	for off := 0; off < len(recs); off += cap {
		end := off + cap
		if end > len(recs) {
			end = len(recs)
		}
		fr, err := g.pool.Alloc(TypeLeaf)
		if err != nil {
			if prev != nil {
				g.pool.Unpin(prev, true)
			}
			return err
		}
		p := fr.Page()
		for j := off; j < end; j++ {
			p.SetLeafRecord(j-off, recs[j].Key, recs[j].Value)
		}
		p.SetCount(end - off)
		if prev != nil {
			prev.Page().SetLink(fr.ID())
			g.pool.Unpin(prev, true)
		} else {
			g.head = fr.ID()
		}
		prev = fr
		fence := recs[off].Key
		if off == 0 {
			fence = 0 // slot 0's fence is conceptually -inf; see InsertErr
		}
		g.fences = append(g.fences, fence)
		g.leaves = append(g.leaves, fr.ID())
	}
	g.pool.Unpin(prev, true)
	g.count = len(recs)
	g.retrain()
	return nil
}

// CheckInvariants verifies the paged PGM: the in-memory fence/leaf arrays
// mirror the on-disk chain, fences are monotone lower bounds for their
// leaves, leaf keys ascend across the whole chain, and the record count
// matches.
func (g *PGM) CheckInvariants() error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if len(g.fences) != len(g.leaves) {
		return fmt.Errorf("paged-pgm: %d fences vs %d leaves", len(g.fences), len(g.leaves))
	}
	if g.head == 0 {
		if g.count != 0 || len(g.fences) != 0 {
			return fmt.Errorf("paged-pgm: empty chain with count=%d fences=%d", g.count, len(g.fences))
		}
		return nil
	}
	total := 0
	var last core.Key
	haveLast := false
	id := g.head
	for i := 0; id != 0; i++ {
		if i >= len(g.leaves) || g.leaves[i] != id {
			return fmt.Errorf("paged-pgm: chain page %d not mirrored at slot %d", id, i)
		}
		if i > 0 && g.fences[i-1] > g.fences[i] {
			return fmt.Errorf("paged-pgm: fences not monotone at %d", i)
		}
		fr, err := g.pool.Get(id)
		if err != nil {
			return err
		}
		p := fr.Page()
		for j := 0; j < p.Count(); j++ {
			k := p.LeafKey(j)
			// Slot 0 is exempt from the fence lower bound: keys below every
			// fence route there, so its fence is only the chain's start hint.
			if i > 0 && k < g.fences[i] {
				g.pool.Unpin(fr, false)
				return fmt.Errorf("paged-pgm: leaf %d (slot %d) key %d below fence %d", id, i, k, g.fences[i])
			}
			if haveLast && k <= last {
				g.pool.Unpin(fr, false)
				return fmt.Errorf("paged-pgm: chain keys not ascending at leaf %d", id)
			}
			last, haveLast = k, true
			total++
		}
		id = p.Link()
		g.pool.Unpin(fr, false)
	}
	if total != g.count {
		return fmt.Errorf("paged-pgm: counted %d records, count says %d", total, g.count)
	}
	return nil
}
