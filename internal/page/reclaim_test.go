package page

import (
	"math/rand"
	"testing"

	"github.com/lix-go/lix/internal/core"
)

// bulkIndex is pagedIndex plus the bulk loader both kinds expose; the
// reclaim sweep rebuilds into the emptied file to prove page reuse.
type bulkIndex interface {
	pagedIndex
	BulkLoad([]core.KV) error
}

// TestDeleteReclaimsPages is the acceptance gate for free-list reclaim:
// deleting records must return emptied leaf pages (and, for the B+-tree,
// childless inner pages) to the file's free list, so a rebuild into the
// same file allocates every page from the free list and the on-disk
// footprint does not grow.
func TestDeleteReclaimsPages(t *testing.T) {
	// Enough records that the B+-tree has two inner levels (LeafCap 254,
	// fanout 255 ⇒ >255 leaves), exercising multi-level unlink propagation
	// and root collapse.
	const n = 70000
	recs := make([]core.KV, n)
	for i := range recs {
		recs[i] = core.KV{Key: core.Key(i*2 + 1), Value: core.Value(i)}
	}
	bt, err := NewTempBTree(Options{})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := NewTempPGM(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, ix := range map[string]bulkIndex{KindBTree: bt, KindPGM: pg} {
		t.Run(name, func(t *testing.T) {
			defer ix.Close()
			if err := ix.BulkLoad(recs); err != nil {
				t.Fatal(err)
			}
			footprint := ix.Stats().DataBytes

			// Delete a scattered half in random order: interior leaves empty
			// one by one, hitting the leftmost-leaf, rightmost-link, and
			// predecessor-relink cases.
			rng := rand.New(rand.NewSource(41))
			perm := rng.Perm(n)
			for _, i := range perm[:n/2] {
				if !ix.Delete(recs[i].Key) {
					t.Fatalf("delete(%d) = false", recs[i].Key)
				}
			}
			if err := ix.CheckInvariants(); err != nil {
				t.Fatalf("after half delete: %v", err)
			}
			if got := ix.Stats().DataBytes; got != footprint {
				t.Fatalf("footprint grew during deletes: %d -> %d", footprint, got)
			}
			deleted := make(map[core.Key]bool, n/2)
			for _, i := range perm[:n/2] {
				deleted[recs[i].Key] = true
			}
			for _, r := range recs {
				v, ok := ix.Get(r.Key)
				if deleted[r.Key] {
					if ok {
						t.Fatalf("deleted key %d still present", r.Key)
					}
				} else if !ok || v != r.Value {
					t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", r.Key, v, ok, r.Value)
				}
			}

			// Delete the rest: the structure must collapse to empty.
			for _, i := range perm[n/2:] {
				if !ix.Delete(recs[i].Key) {
					t.Fatalf("delete(%d) = false", recs[i].Key)
				}
			}
			if ix.Len() != 0 {
				t.Fatalf("Len = %d after deleting everything", ix.Len())
			}
			if got := ix.Range(0, ^core.Key(0), func(core.Key, core.Value) bool { return true }); got != 0 {
				t.Fatalf("empty index Range visited %d records", got)
			}
			if err := ix.CheckInvariants(); err != nil {
				t.Fatalf("after full delete: %v", err)
			}

			// Rebuild into the emptied file: every page must come off the
			// free list, so the footprint is exactly what the first load used.
			if err := ix.BulkLoad(recs); err != nil {
				t.Fatalf("reload: %v", err)
			}
			if got := ix.Stats().DataBytes; got != footprint {
				t.Fatalf("reload footprint %d, want %d (pages not reclaimed)", got, footprint)
			}
			if err := ix.CheckInvariants(); err != nil {
				t.Fatalf("after reload: %v", err)
			}
			for i := 0; i < n; i += 97 {
				r := recs[i]
				if v, ok := ix.Get(r.Key); !ok || v != r.Value {
					t.Fatalf("reloaded Get(%d) = (%d,%v)", r.Key, v, ok)
				}
			}
		})
	}
}

// TestDeleteReclaimSurvivesReopen pins that a file with reclaimed pages
// reopens cleanly and keeps serving: the free list persists through the
// meta page and the next insert reuses a freed page instead of growing
// the file.
func TestDeleteReclaimSurvivesReopen(t *testing.T) {
	const n = 1200 // a handful of leaves per kind
	recs := make([]core.KV, n)
	for i := range recs {
		recs[i] = core.KV{Key: core.Key(i*3 + 2), Value: core.Value(i)}
	}
	dir := t.TempDir()
	for _, kind := range []string{KindBTree, KindPGM} {
		t.Run(kind, func(t *testing.T) {
			path := dir + "/" + kind + ".lpx"
			var ix bulkIndex
			var err error
			if kind == KindBTree {
				ix, err = CreateBTree(path, Options{})
			} else {
				ix, err = CreatePGM(path, Options{})
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := ix.BulkLoad(recs); err != nil {
				t.Fatal(err)
			}
			// Empty the middle leaves.
			for _, r := range recs[n/4 : 3*n/4] {
				if !ix.Delete(r.Key) {
					t.Fatalf("delete(%d) = false", r.Key)
				}
			}
			footprint := ix.Stats().DataBytes
			if err := ix.Close(); err != nil {
				t.Fatal(err)
			}

			if kind == KindBTree {
				ix, err = OpenBTree(path, Options{})
			} else {
				ix, err = OpenPGM(path, Options{})
			}
			if err != nil {
				t.Fatal(err)
			}
			defer ix.Close()
			if err := ix.CheckInvariants(); err != nil {
				t.Fatalf("reopened: %v", err)
			}
			if ix.Len() != n/2 {
				t.Fatalf("reopened Len = %d, want %d", ix.Len(), n/2)
			}
			// Empty the index, then rebuild all n records into it: a bulk
			// load packs exactly the original page count, so equality holds
			// only if the reopened free list still hands the pages back.
			for _, r := range recs[:n/4] {
				if !ix.Delete(r.Key) {
					t.Fatalf("delete(%d) = false", r.Key)
				}
			}
			for _, r := range recs[3*n/4:] {
				if !ix.Delete(r.Key) {
					t.Fatalf("delete(%d) = false", r.Key)
				}
			}
			if err := ix.BulkLoad(recs); err != nil {
				t.Fatalf("reload: %v", err)
			}
			if got := ix.Stats().DataBytes; got != footprint {
				t.Fatalf("reload footprint %d, want %d (free list lost on reopen)", got, footprint)
			}
			for i := 0; i < n; i += 53 {
				r := recs[i]
				if v, ok := ix.Get(r.Key); !ok || v != r.Value {
					t.Fatalf("reloaded Get(%d) = (%d,%v)", r.Key, v, ok)
				}
			}
			if err := ix.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
