package page

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
)

// pagedIndex is the common surface of both paged kinds, letting the
// correctness sweeps run against either.
type pagedIndex interface {
	Insert(core.Key, core.Value)
	Delete(core.Key) bool
	Get(core.Key) (core.Value, bool)
	Range(core.Key, core.Key, func(core.Key, core.Value) bool) int
	Len() int
	Stats() core.Stats
	PoolStats() PoolStats
	CheckInvariants() error
	Close() error
}

func newPagedIndexes(t *testing.T, o Options) map[string]pagedIndex {
	t.Helper()
	bt, err := NewTempBTree(o)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := NewTempPGM(o)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]pagedIndex{KindBTree: bt, KindPGM: pg}
}

// TestEvictionCorrectness is the acceptance gate for the buffer pool: both
// paged kinds run a mixed workload with a frame budget far below the data
// size, evictions must actually happen, and every result must still match
// an in-memory oracle.
func TestEvictionCorrectness(t *testing.T) {
	const n = 6000
	for name, ix := range newPagedIndexes(t, Options{PoolFrames: 8}) {
		t.Run(name, func(t *testing.T) {
			defer ix.Close()
			rng := rand.New(rand.NewSource(7))
			oracle := make(map[core.Key]core.Value, n)
			perm := rng.Perm(n)
			for _, i := range perm {
				k := core.Key(i * 3)
				v := core.Value(i)
				ix.Insert(k, v)
				oracle[k] = v
			}
			// Delete a scattered third, overwrite another scattered third.
			for i := 0; i < n; i += 3 {
				k := core.Key(i * 3)
				if ix.Delete(k) != true {
					t.Fatalf("delete(%d) = false", k)
				}
				delete(oracle, k)
			}
			for i := 1; i < n; i += 3 {
				k := core.Key(i * 3)
				ix.Insert(k, core.Value(i)+1000000)
				oracle[k] = core.Value(i) + 1000000
			}

			st := ix.PoolStats()
			if st.Evictions == 0 {
				t.Fatalf("no evictions with %d frames over %d records (pool stats %+v)", st.Frames, n, st)
			}
			if ix.Len() != len(oracle) {
				t.Fatalf("Len = %d, oracle %d", ix.Len(), len(oracle))
			}
			// Every present key reads back; deleted and absent keys miss.
			for i := 0; i < n; i++ {
				k := core.Key(i * 3)
				v, ok := ix.Get(k)
				want, wantOK := oracle[k]
				if ok != wantOK || (ok && v != want) {
					t.Fatalf("Get(%d) = (%d,%v), oracle (%d,%v)", k, v, ok, want, wantOK)
				}
				if _, ok := ix.Get(k + 1); ok {
					t.Fatalf("Get(%d) found a never-inserted key", k+1)
				}
			}
			// A full range scan returns the oracle in order.
			var got int
			var last core.Key
			ix.Range(0, ^core.Key(0), func(k core.Key, v core.Value) bool {
				if got > 0 && k <= last {
					t.Fatalf("range out of order: %d after %d", k, last)
				}
				if want, ok := oracle[k]; !ok || v != want {
					t.Fatalf("range visited (%d,%d), oracle (%d,%v)", k, v, want, ok)
				}
				last = k
				got++
				return true
			})
			if got != len(oracle) {
				t.Fatalf("range visited %d records, oracle %d", got, len(oracle))
			}
			if err := ix.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBulkMatchesInsertLoop pins the bulk path against the insert path.
func TestBulkMatchesInsertLoop(t *testing.T) {
	const n = 3000
	recs := make([]core.KV, n)
	for i := range recs {
		recs[i] = core.KV{Key: core.Key(i*7 + 1), Value: core.Value(i)}
	}
	dir := t.TempDir()
	bt, err := BulkBTree(filepath.Join(dir, "bt.lpx"), recs, Options{PoolFrames: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	pg, err := BulkPGM(filepath.Join(dir, "pg.lpx"), recs, Options{PoolFrames: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer pg.Close()
	for name, ix := range map[string]pagedIndex{KindBTree: bt, KindPGM: pg} {
		if ix.Len() != n {
			t.Fatalf("%s: Len = %d", name, ix.Len())
		}
		for _, r := range recs {
			if v, ok := ix.Get(r.Key); !ok || v != r.Value {
				t.Fatalf("%s: Get(%d) = (%d,%v)", name, r.Key, v, ok)
			}
		}
		if err := ix.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Bulk over an eviction-sized pool still had to spill pages.
		if st := ix.PoolStats(); st.Evictions == 0 {
			t.Fatalf("%s: bulk load of %d records evicted nothing: %+v", name, n, st)
		}
	}
}

// TestReopen round-trips both kinds through Close/Open and verifies the
// reopened index serves identical content from a cold pool.
func TestReopen(t *testing.T) {
	const n = 2500
	dir := t.TempDir()
	recs := make([]core.KV, n)
	for i := range recs {
		recs[i] = core.KV{Key: core.Key(i * 5), Value: core.Value(i)}
	}
	build := map[string]func(path string) (pagedIndex, error){
		KindBTree: func(path string) (pagedIndex, error) { return BulkBTree(path, recs, Options{}) },
		KindPGM:   func(path string) (pagedIndex, error) { return BulkPGM(path, recs, Options{}) },
	}
	open := map[string]func(path string) (pagedIndex, error){
		KindBTree: func(path string) (pagedIndex, error) { return OpenBTree(path, Options{PoolFrames: 8}) },
		KindPGM:   func(path string) (pagedIndex, error) { return OpenPGM(path, Options{PoolFrames: 8}) },
	}
	for name := range build {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name+".lpx")
			ix, err := build[name](path)
			if err != nil {
				t.Fatal(err)
			}
			// Mutate after the bulk so the reopened state covers splits and
			// deletes, not just the packed load.
			for i := 0; i < 500; i++ {
				ix.Insert(core.Key(i*5+1), core.Value(i)+7)
			}
			for i := 0; i < 300; i++ {
				ix.Delete(core.Key(i * 5))
			}
			wantLen := ix.Len()
			if err := ix.Close(); err != nil {
				t.Fatal(err)
			}

			re, err := open[name](path)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if re.Len() != wantLen {
				t.Fatalf("reopened Len = %d, want %d", re.Len(), wantLen)
			}
			for i := 0; i < n; i++ {
				k := core.Key(i * 5)
				v, ok := re.Get(k)
				if i < 300 {
					if ok {
						t.Fatalf("deleted key %d resurrected as %d", k, v)
					}
				} else if !ok || v != core.Value(i) {
					t.Fatalf("Get(%d) = (%d,%v) after reopen", k, v, ok)
				}
			}
			for i := 0; i < 500; i++ {
				if v, ok := re.Get(core.Key(i*5 + 1)); !ok || v != core.Value(i)+7 {
					t.Fatalf("post-bulk insert %d lost after reopen (%d,%v)", i*5+1, v, ok)
				}
			}
			if err := re.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPoolAllPinnedFails(t *testing.T) {
	f, err := Create(filepath.Join(t.TempDir(), "x.lpx"), 0, "t")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pool := NewPool(f, 4)
	var frames []*Frame
	for i := 0; i < 4; i++ {
		fr, err := pool.Alloc(TypeLeaf)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, fr)
	}
	if _, err := pool.Alloc(TypeLeaf); err == nil {
		t.Fatal("Alloc succeeded with every frame pinned")
	}
	pool.Unpin(frames[0], false)
	if _, err := pool.Alloc(TypeLeaf); err != nil {
		t.Fatalf("Alloc failed after an unpin: %v", err)
	}
}

// TestObserverWiring checks the obs plumbing end to end: hit/miss counters
// through the PageRecorder extension, evictions and write-backs as events.
func TestObserverWiring(t *testing.T) {
	m := obs.NewMetrics("paged")
	bt, err := NewTempBTree(Options{PoolFrames: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	bt.SetObserver(m)
	for i := 0; i < 4000; i++ {
		bt.Insert(core.Key(i), core.Value(i))
	}
	for i := 0; i < 4000; i += 100 {
		bt.Get(core.Key(i))
	}
	if m.PageHits.Load() == 0 || m.PageMisses.Load() == 0 {
		t.Fatalf("page counters not recorded: hits=%d misses=%d", m.PageHits.Load(), m.PageMisses.Load())
	}
	if m.Events.Count(obs.EvPageEvict) == 0 {
		t.Fatal("no page_evict events")
	}
	if m.Events.Count(obs.EvPageFlush) == 0 {
		t.Fatal("no page_flush events")
	}
	if m.Events.Count(obs.EvNodeSplit) == 0 {
		t.Fatal("no node_split events")
	}
	st := bt.PoolStats()
	if st.Hits != m.PageHits.Load() || st.Misses != m.PageMisses.Load() {
		t.Fatalf("pool stats diverge from metrics: %+v vs hits=%d misses=%d",
			st, m.PageHits.Load(), m.PageMisses.Load())
	}
}

// TestConcurrentReaders hammers a tiny pool with parallel lookups so the
// race detector sees the miss path's deferred table publish: a concurrent
// Get must never observe a half-loaded frame.
func TestConcurrentReaders(t *testing.T) {
	const n = 4000
	recs := make([]core.KV, n)
	for i := range recs {
		recs[i] = core.KV{Key: core.Key(i * 3), Value: core.Value(i)}
	}
	for name, mk := range map[string]func(string) (pagedIndex, error){
		KindBTree: func(p string) (pagedIndex, error) { return BulkBTree(p, recs, Options{PoolFrames: 8}) },
		KindPGM:   func(p string) (pagedIndex, error) { return BulkPGM(p, recs, Options{PoolFrames: 8}) },
	} {
		t.Run(name, func(t *testing.T) {
			ix, err := mk(filepath.Join(t.TempDir(), "c.lpx"))
			if err != nil {
				t.Fatal(err)
			}
			defer ix.Close()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for op := 0; op < 2000; op++ {
						i := rng.Intn(n)
						if v, ok := ix.Get(core.Key(i * 3)); !ok || v != core.Value(i) {
							t.Errorf("Get(%d) = (%d,%v), want (%d,true)", i*3, v, ok, i)
							return
						}
					}
				}(int64(g))
			}
			wg.Wait()
		})
	}
}

// TestPGMRetrains checks that the learned layer actually retrains as the
// fence array grows, and that huge keys (float64-adjacent) stay correct.
func TestPGMRetrains(t *testing.T) {
	m := obs.NewMetrics("pgm")
	pg, err := NewTempPGM(Options{PoolFrames: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer pg.Close()
	pg.SetObserver(m)
	const n = 60000
	for i := 0; i < n; i++ {
		pg.Insert(core.Key(i)*2, core.Value(i))
	}
	if m.Events.Count(obs.EvRetrain) == 0 {
		t.Fatal("PGM never retrained over 60k inserts")
	}
	if st := pg.Stats(); st.Models == 0 {
		t.Fatalf("no segments after %d inserts: %+v", n, st)
	}
	for i := 0; i < n; i += 37 {
		if v, ok := pg.Get(core.Key(i) * 2); !ok || v != core.Value(i) {
			t.Fatalf("Get(%d) = (%d,%v)", i*2, v, ok)
		}
	}

	// Keys near 2^64 collapse to equal float64s; the verified fallback
	// must keep exact-integer correctness regardless of the model.
	huge, err := NewTempPGM(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer huge.Close()
	base := ^core.Key(0) - 200000
	for i := 0; i < 100000; i++ {
		huge.Insert(base+core.Key(i), core.Value(i))
	}
	for i := 0; i < 100000; i += 53 {
		if v, ok := huge.Get(base + core.Key(i)); !ok || v != core.Value(i) {
			t.Fatalf("huge-key Get(%d) = (%d,%v), want %d", base+core.Key(i), v, ok, i)
		}
	}
	if err := huge.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
