package page

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/lix-go/lix/internal/core"
)

func TestHeaderAccessors(t *testing.T) {
	p := Buf(make([]byte, Size4K))
	p.Reset(TypeLeaf, 42)
	p.SetCount(7)
	p.SetLink(99)
	if p.Type() != TypeLeaf || p.ID() != 42 || p.Count() != 7 || p.Link() != 99 {
		t.Fatalf("header round-trip: type=%d id=%d count=%d link=%d", p.Type(), p.ID(), p.Count(), p.Link())
	}
	p.Seal()
	if !p.VerifyCRC() {
		t.Fatal("sealed page fails CRC")
	}
	p[HeaderSize] ^= 1
	if p.VerifyCRC() {
		t.Fatal("CRC missed a payload flip")
	}
}

func TestLeafInsertSearchDelete(t *testing.T) {
	p := Buf(make([]byte, Size4K))
	p.Reset(TypeLeaf, 1)
	keys := []core.Key{50, 10, 30, 20, 40}
	for _, k := range keys {
		i, found := p.LeafSearch(k)
		if found {
			t.Fatalf("key %d found before insert", k)
		}
		p.LeafInsertAt(i, k, core.Value(k*2))
	}
	for i := 1; i < p.Count(); i++ {
		if p.LeafKey(i-1) >= p.LeafKey(i) {
			t.Fatalf("leaf not sorted at %d", i)
		}
	}
	for _, k := range keys {
		i, found := p.LeafSearch(k)
		if !found || p.LeafVal(i) != core.Value(k*2) {
			t.Fatalf("key %d: found=%v val=%d", k, found, p.LeafVal(i))
		}
	}
	i, _ := p.LeafSearch(30)
	p.LeafDeleteAt(i)
	if _, found := p.LeafSearch(30); found {
		t.Fatal("deleted key still found")
	}
	if p.Count() != 4 {
		t.Fatalf("count = %d after delete", p.Count())
	}
	// The vacated slot must be zeroed (canonical form).
	if d, err := Decode(Encode(mustDecodeRaw(t, p))); err != nil || len(d.Keys) != 4 {
		t.Fatalf("post-delete page not canonical: %v", err)
	}
}

// mustDecodeRaw seals a copy of p and decodes it.
func mustDecodeRaw(t *testing.T, p Buf) *Decoded {
	t.Helper()
	q := append(Buf(nil), p...)
	q.Seal()
	d, err := Decode(q)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return d
}

func TestInnerRoute(t *testing.T) {
	p := Buf(make([]byte, Size4K))
	p.Reset(TypeInner, 1)
	// Separators 10, 20, 30 with children 100, 200, 300 and link 400:
	// keys < 10 -> 100, [10,20) -> 200, [20,30) -> 300, >= 30 -> 400.
	p.InnerInsertAt(0, 10, 100)
	p.InnerInsertAt(1, 20, 200)
	p.InnerInsertAt(2, 30, 300)
	p.SetLink(400)
	cases := []struct {
		k    core.Key
		want uint64
	}{{0, 100}, {9, 100}, {10, 200}, {19, 200}, {20, 300}, {29, 300}, {30, 400}, {1000, 400}}
	for _, c := range cases {
		if got := p.InnerRoute(c.k); got != c.want {
			t.Errorf("route(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestDecodeEncodeRoundTrip(t *testing.T) {
	for _, ps := range []int{Size4K, Size8K} {
		p := Buf(make([]byte, ps))
		p.Reset(TypeLeaf, 7)
		p.SetLink(8)
		for i := 0; i < 10; i++ {
			p.LeafInsertAt(i, core.Key(i*i+1), core.Value(i))
		}
		p.Seal()
		d, err := Decode(p)
		if err != nil {
			t.Fatalf("size %d: decode: %v", ps, err)
		}
		if d.Type != TypeLeaf || d.ID != 7 || d.Link != 8 || len(d.Keys) != 10 {
			t.Fatalf("size %d: decoded %+v", ps, d)
		}
		if !bytes.Equal(Encode(d), p) {
			t.Fatalf("size %d: Encode(Decode(p)) != p", ps)
		}
	}
}

func TestDecodeRejects(t *testing.T) {
	mk := func() Buf {
		p := Buf(make([]byte, Size4K))
		p.Reset(TypeLeaf, 1)
		p.LeafInsertAt(0, 5, 50)
		p.Seal()
		return p
	}
	if _, err := Decode(mk()[:100]); err == nil {
		t.Error("accepted truncated page")
	}
	p := mk()
	p[HeaderSize+3] ^= 0x80
	if _, err := Decode(p); err == nil {
		t.Error("accepted corrupt CRC")
	}
	p = mk()
	p.SetType(TypeMeta)
	p.Seal()
	if _, err := Decode(p); err == nil {
		t.Error("accepted meta page type")
	}
	p = mk()
	p.SetCount(LeafCap(Size4K) + 1)
	p.Seal()
	if _, err := Decode(p); err == nil {
		t.Error("accepted overflowing count")
	}
	p = mk()
	p[5] = 1 // flags
	p.Seal()
	if _, err := Decode(p); err == nil {
		t.Error("accepted nonzero flags")
	}
	p = mk()
	p[Size4K-1] = 1 // padding
	p.Seal()
	if _, err := Decode(p); err == nil {
		t.Error("accepted nonzero padding")
	}
	p = mk()
	p.LeafInsertAt(1, 5, 51) // duplicate key
	p.Seal()
	if _, err := Decode(p); err == nil {
		t.Error("accepted non-ascending keys")
	}
}

func TestFileCreateOpenMeta(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.lpx")
	f, err := Create(path, Size8K, "paged-btree")
	if err != nil {
		t.Fatal(err)
	}
	id, err := f.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	p := Buf(make([]byte, Size8K))
	p.Reset(TypeLeaf, id)
	p.LeafInsertAt(0, 1, 2)
	if err := f.Write(id, p); err != nil {
		t.Fatal(err)
	}
	f.SetMeta(Meta{Kind: "paged-btree", Root: id, Height: 0, Count: 1})
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.PageSize() != Size8K {
		t.Fatalf("page size %d", f2.PageSize())
	}
	m := f2.Meta()
	if m.Kind != "paged-btree" || m.Root != id || m.Count != 1 {
		t.Fatalf("meta %+v", m)
	}
	q := Buf(make([]byte, Size8K))
	if err := f2.Read(id, q); err != nil {
		t.Fatal(err)
	}
	if q.LeafKey(0) != 1 || q.LeafVal(0) != 2 {
		t.Fatalf("record lost: %d/%d", q.LeafKey(0), q.LeafVal(0))
	}
}

func TestFileFreeListReuse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.lpx")
	f, err := Create(path, 0, "t")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, _ := f.Allocate()
	b, _ := f.Allocate()
	// Freed pages must be written (they carry the free-list link).
	for _, id := range []uint64{a, b} {
		p := Buf(make([]byte, f.PageSize()))
		p.Reset(TypeLeaf, id)
		if err := f.Write(id, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := f.Free(b); err != nil {
		t.Fatal(err)
	}
	n := f.NumPages()
	// LIFO reuse: b then a, with no file growth.
	if id, _ := f.Allocate(); id != b {
		t.Fatalf("first realloc = %d, want %d", id, b)
	}
	if id, _ := f.Allocate(); id != a {
		t.Fatalf("second realloc = %d, want %d", id, a)
	}
	if f.NumPages() != n {
		t.Fatalf("file grew during free-list reuse: %d -> %d", n, f.NumPages())
	}
	if err := f.Free(0); err == nil {
		t.Fatal("freed the meta page")
	}
}

func TestFileDetectsMisdirectedWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.lpx")
	f, err := Create(path, 0, "t")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, _ := f.Allocate()
	b, _ := f.Allocate()
	p := Buf(make([]byte, f.PageSize()))
	p.Reset(TypeLeaf, a)
	if err := f.Write(a, p); err != nil {
		t.Fatal(err)
	}
	if err := f.Write(b, p); err == nil {
		t.Fatal("Write accepted a page whose stored id differs from the target")
	}
	// Simulate a misdirected write at the OS layer: page a's sealed bytes
	// land at b's offset. The self-id check must catch the read.
	raw, _ := os.ReadFile(path)
	ps := f.PageSize()
	copy(raw[int(b)*ps:], raw[int(a)*ps:int(a+1)*ps])
	os.WriteFile(path, raw, 0o644)
	if err := f.Read(b, p); err == nil {
		t.Fatal("Read accepted a misdirected page")
	}
}

func TestOpenRejectsDamage(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string) string {
		path := filepath.Join(dir, name)
		f, err := Create(path, 0, "t")
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
		return path
	}
	// Truncated meta.
	p1 := mk("a.lpx")
	os.Truncate(p1, 100)
	if _, err := Open(p1); err == nil {
		t.Error("opened truncated meta")
	}
	// Bit flip in meta.
	p2 := mk("b.lpx")
	raw, _ := os.ReadFile(p2)
	raw[60] ^= 0x10
	os.WriteFile(p2, raw, 0o644)
	if _, err := Open(p2); err == nil {
		t.Error("opened corrupted meta")
	}
	// Wrong kind at the index layer.
	p3 := mk("c.lpx")
	if _, err := OpenBTree(p3, Options{}); err == nil {
		t.Error("OpenBTree accepted a file of kind \"t\"")
	}
}
