package page

import (
	"fmt"
	"os"
	"sync"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
)

// KindBTree is the kind name stored in the meta page of B+-tree files.
const KindBTree = "paged-btree"

// Options configure a paged index: the on-disk page size and the buffer
// pool's frame budget. The zero value selects DefaultPageSize and
// DefaultPoolFrames.
type Options struct {
	// PageSize is the page size in bytes: Size4K or Size8K (0 = default).
	PageSize int
	// PoolFrames is the buffer-pool frame budget (0 = default). It must be
	// at least the tree height plus two — an insert pins the root-to-leaf
	// path plus one freshly split page; NewPool enforces a floor of 4.
	PoolFrames int
}

// BTree is a disk-resident B+-tree over fixed-size pages: inner pages route
// by separator keys, leaf pages hold sorted records and chain left-to-right
// through their header links for range scans. All page access goes through
// a buffer pool, so the working set is bounded by Options.PoolFrames
// regardless of data size.
//
// Deletions do not rebalance: leaves may go underfull, and records move
// between pages only on splits. A leaf a deletion empties, though, is
// stitched out of the chain and returned to the file's free list (as are
// inner nodes left childless by the unlink), so the next allocation reuses
// the space. This mirrors the common practice in disk B+-trees (and keeps
// the crash surface small: no merge writes).
//
// Error handling is fail-stop: the error-returning methods (Lookup,
// InsertErr, DeleteErr, RangeErr) surface I/O and corruption errors; the
// interface methods (Get, Insert, Delete, Range) panic on them. A CRC
// mismatch means the file is damaged — continuing would serve wrong
// answers, which is the one thing a verified page format must never do.
type BTree struct {
	mu   sync.RWMutex
	file *File
	pool *Pool

	root   uint64 // 0 = empty tree
	height int    // inner levels above the leaves
	count  int

	hook          obs.Hook
	removeOnClose bool
}

// CreateBTree creates a fresh B+-tree file at path.
func CreateBTree(path string, o Options) (*BTree, error) {
	f, err := Create(path, o.PageSize, KindBTree)
	if err != nil {
		return nil, err
	}
	return &BTree{file: f, pool: NewPool(f, o.PoolFrames)}, nil
}

// OpenBTree opens an existing B+-tree file, verifying the stored kind.
func OpenBTree(path string, o Options) (*BTree, error) {
	f, err := Open(path)
	if err != nil {
		return nil, err
	}
	m := f.Meta()
	if m.Kind != KindBTree {
		f.Close()
		return nil, fmt.Errorf("page: %s holds a %q index, not %q", path, m.Kind, KindBTree)
	}
	return &BTree{
		file:   f,
		pool:   NewPool(f, o.PoolFrames),
		root:   m.Root,
		height: m.Height,
		count:  m.Count,
	}, nil
}

// NewTempBTree creates a B+-tree backed by a temporary file that is
// removed on Close. It is the in-memory-API compatibility constructor used
// by the registry.
func NewTempBTree(o Options) (*BTree, error) {
	path, err := tempPath("lix-paged-btree-*.lpx")
	if err != nil {
		return nil, err
	}
	t, err := CreateBTree(path, o)
	if err != nil {
		return nil, err
	}
	t.removeOnClose = true
	return t, nil
}

// BulkBTree creates a B+-tree file at path bulk-loaded with recs (sorted
// ascending, distinct keys).
func BulkBTree(path string, recs []core.KV, o Options) (*BTree, error) {
	t, err := CreateBTree(path, o)
	if err != nil {
		return nil, err
	}
	if err := t.BulkLoad(recs); err != nil {
		t.Close()
		os.Remove(path)
		return nil, err
	}
	return t, nil
}

// tempPath reserves a temp-file name for a paged index.
func tempPath(pattern string) (string, error) {
	tf, err := os.CreateTemp("", pattern)
	if err != nil {
		return "", err
	}
	path := tf.Name()
	tf.Close()
	return path, nil
}

// SetObserver attaches r to receive the tree's structural events (node
// splits) and the buffer pool's page traffic (evictions, flushes,
// hit/miss counts). nil detaches.
func (t *BTree) SetObserver(r obs.Recorder) {
	t.hook.SetRecorder(r)
	t.pool.SetObserver(r)
}

// PoolStats returns the buffer pool's traffic counters.
func (t *BTree) PoolStats() PoolStats { return t.pool.Stats() }

// Path returns the backing file's path.
func (t *BTree) Path() string { return t.file.Path() }

// Sync flushes all dirty pages, persists the meta page, and fsyncs.
func (t *BTree) Sync() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.pool.FlushAll(); err != nil {
		return err
	}
	t.file.SetMeta(Meta{Kind: KindBTree, Root: t.root, Height: t.height, Count: t.count})
	return t.file.Sync()
}

// Close flushes, persists the meta page, and closes the file (removing it
// when the tree was created by NewTempBTree).
func (t *BTree) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	ferr := t.pool.FlushAll()
	t.file.SetMeta(Meta{Kind: KindBTree, Root: t.root, Height: t.height, Count: t.count})
	if err := t.file.Close(); err != nil && ferr == nil {
		ferr = err
	}
	if t.removeOnClose {
		os.Remove(t.file.Path())
	}
	return ferr
}

// Len returns the number of records.
func (t *BTree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// Stats reports structural statistics. IndexBytes is the resident memory
// bound (the pool's frame budget); DataBytes is the on-disk footprint.
func (t *BTree) Stats() core.Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	pages := int(t.file.NumPages())
	h := 0
	if t.root != 0 {
		h = t.height + 1
	}
	return core.Stats{
		Name:       KindBTree,
		Count:      t.count,
		IndexBytes: len(t.pool.frames) * t.file.PageSize(),
		DataBytes:  pages * t.file.PageSize(),
		Height:     h,
		Models:     pages - 1, // tree pages (meta excluded)
	}
}

// Lookup returns the value for k, reporting I/O or corruption errors.
func (t *BTree) Lookup(k core.Key) (core.Value, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.root == 0 {
		return 0, false, nil
	}
	id, err := t.descend(k)
	if err != nil {
		return 0, false, err
	}
	fr, err := t.pool.Get(id)
	if err != nil {
		return 0, false, err
	}
	p := fr.Page()
	i, found := p.LeafSearch(k)
	var v core.Value
	if found {
		v = p.LeafVal(i)
	}
	t.pool.Unpin(fr, false)
	return v, found, nil
}

// descend routes from the root to the leaf owning k, returning the leaf's
// page id. Caller holds at least a read lock and t.root != 0.
func (t *BTree) descend(k core.Key) (uint64, error) {
	id := t.root
	for lvl := t.height; lvl > 0; lvl-- {
		fr, err := t.pool.Get(id)
		if err != nil {
			return 0, err
		}
		id = fr.Page().InnerRoute(k)
		t.pool.Unpin(fr, false)
	}
	return id, nil
}

// Get returns the value for k. It panics on I/O or corruption errors; use
// Lookup to handle them.
func (t *BTree) Get(k core.Key) (core.Value, bool) {
	v, ok, err := t.Lookup(k)
	if err != nil {
		panic("page: paged-btree Get: " + err.Error())
	}
	return v, ok
}

// split describes a completed page split to the parent level: right is the
// new sibling, holding keys >= sep.
type split struct {
	sep   core.Key
	right uint64
}

// InsertErr upserts (k, v), reporting I/O or corruption errors.
func (t *BTree) InsertErr(k core.Key, v core.Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root == 0 {
		fr, err := t.pool.Alloc(TypeLeaf)
		if err != nil {
			return err
		}
		fr.Page().LeafInsertAt(0, k, v)
		t.root = fr.ID()
		t.pool.Unpin(fr, true)
		t.count = 1
		return nil
	}
	sp, added, err := t.insert(t.root, t.height, k, v)
	if err != nil {
		return err
	}
	if added {
		t.count++
	}
	if sp != nil {
		// The root split: grow the tree by one level.
		fr, err := t.pool.Alloc(TypeInner)
		if err != nil {
			return err
		}
		p := fr.Page()
		p.InnerInsertAt(0, sp.sep, t.root)
		p.SetLink(sp.right)
		t.root = fr.ID()
		t.height++
		t.pool.Unpin(fr, true)
	}
	return nil
}

// Insert upserts (k, v), panicking on I/O or corruption errors.
func (t *BTree) Insert(k core.Key, v core.Value) {
	if err := t.InsertErr(k, v); err != nil {
		panic("page: paged-btree Insert: " + err.Error())
	}
}

// insert recursively upserts (k, v) under page id at the given level,
// returning the split to propagate (nil if none) and whether a new record
// was added (false for an overwrite).
func (t *BTree) insert(id uint64, level int, k core.Key, v core.Value) (*split, bool, error) {
	fr, err := t.pool.Get(id)
	if err != nil {
		return nil, false, err
	}
	p := fr.Page()
	if level == 0 {
		return t.leafInsert(fr, p, k, v)
	}

	// Route to the child covering k; remember its slot so a child split can
	// be stitched in.
	ci := innerRouteIndex(p, k)
	var child uint64
	if ci == p.Count() {
		child = p.Link()
	} else {
		child = p.InnerChild(ci)
	}
	sp, added, err := t.insert(child, level-1, k, v)
	if err != nil || sp == nil {
		t.pool.Unpin(fr, false)
		return nil, added, err
	}

	if n := p.Count(); n < InnerCap(len(p)) {
		if ci == n {
			// The split child was the rightmost link.
			p.InnerInsertAt(n, sp.sep, child)
			p.SetLink(sp.right)
		} else {
			oldSep := p.InnerKey(ci)
			p.InnerInsertAt(ci, sp.sep, child)
			p.SetInnerEntry(ci+1, oldSep, sp.right)
		}
		t.pool.Unpin(fr, true)
		return nil, added, nil
	}
	up, err := t.innerSplit(fr, p, ci, child, sp)
	return up, added, err
}

// leafInsert upserts into the pinned leaf fr, splitting when full. It
// consumes the pin.
func (t *BTree) leafInsert(fr *Frame, p Buf, k core.Key, v core.Value) (*split, bool, error) {
	i, found := p.LeafSearch(k)
	if found {
		p.SetLeafRecord(i, k, v)
		t.pool.Unpin(fr, true)
		return nil, false, nil
	}
	n := p.Count()
	if n < LeafCap(len(p)) {
		p.LeafInsertAt(i, k, v)
		t.pool.Unpin(fr, true)
		return nil, true, nil
	}

	// Split: upper half moves to a new right sibling spliced into the leaf
	// chain; the new record lands on whichever side owns it.
	rfr, err := t.pool.Alloc(TypeLeaf)
	if err != nil {
		t.pool.Unpin(fr, false)
		return nil, false, err
	}
	rp := rfr.Page()
	mid := n / 2
	for j := mid; j < n; j++ {
		rp.SetLeafRecord(j-mid, p.LeafKey(j), p.LeafVal(j))
	}
	rp.SetCount(n - mid)
	rp.SetLink(p.Link())
	p.SetLink(rfr.ID())
	zeroRange(p, HeaderSize+16*mid, HeaderSize+16*n)
	p.SetCount(mid)

	sep := rp.LeafKey(0)
	if k < sep {
		p.LeafInsertAt(i, k, v)
	} else {
		j, _ := rp.LeafSearch(k)
		rp.LeafInsertAt(j, k, v)
	}
	right := rfr.ID()
	t.pool.Unpin(fr, true)
	t.pool.Unpin(rfr, true)
	t.hook.Emit(obs.EvNodeSplit, n+1, "leaf")
	return &split{sep: sep, right: right}, true, nil
}

// innerSplit splits the full pinned inner page fr while inserting the
// child split sp at slot ci. It consumes the pin and returns the split to
// propagate upward.
func (t *BTree) innerSplit(fr *Frame, p Buf, ci int, child uint64, sp *split) (*split, error) {
	// Materialize separators and children, apply the pending insertion,
	// then redistribute. Inner pages hold a few hundred entries at most,
	// so the copies are cheap and the code stays obviously correct.
	n := p.Count()
	keys := make([]core.Key, 0, n+1)
	childs := make([]uint64, 0, n+2)
	for j := 0; j < n; j++ {
		keys = append(keys, p.InnerKey(j))
		childs = append(childs, p.InnerChild(j))
	}
	childs = append(childs, p.Link())
	keys = append(keys, 0)
	copy(keys[ci+1:], keys[ci:])
	keys[ci] = sp.sep
	childs = append(childs, 0)
	copy(childs[ci+2:], childs[ci+1:])
	childs[ci] = child
	childs[ci+1] = sp.right

	mid := len(keys) / 2
	promo := keys[mid]

	rfr, err := t.pool.Alloc(TypeInner)
	if err != nil {
		t.pool.Unpin(fr, false)
		return nil, err
	}
	rp := rfr.Page()
	for j := mid + 1; j < len(keys); j++ {
		rp.SetInnerEntry(j-mid-1, keys[j], childs[j])
	}
	rp.SetCount(len(keys) - mid - 1)
	rp.SetLink(childs[len(childs)-1])

	id := p.ID()
	p.Reset(TypeInner, id)
	for j := 0; j < mid; j++ {
		p.SetInnerEntry(j, keys[j], childs[j])
	}
	p.SetCount(mid)
	p.SetLink(childs[mid])

	right := rfr.ID()
	t.pool.Unpin(fr, true)
	t.pool.Unpin(rfr, true)
	t.hook.Emit(obs.EvNodeSplit, n+1, "inner")
	return &split{sep: promo, right: right}, nil
}

// innerRouteIndex returns the child slot InnerRoute would take for k:
// the index of the first separator greater than k (count = the rightmost
// link).
func innerRouteIndex(p Buf, k core.Key) int {
	lo, hi := 0, p.Count()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.InnerKey(mid) <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// zeroRange zeroes p[lo:hi], restoring the canonical zero padding after
// records move out of a page.
func zeroRange(p Buf, lo, hi int) {
	for i := lo; i < hi; i++ {
		p[i] = 0
	}
}

// routeStep records one inner node visited on a root-to-leaf descent and
// the child slot taken there (slot == Count() means the rightmost link).
type routeStep struct {
	id   uint64
	slot int
}

// DeleteErr removes k, reporting whether it was present and any I/O or
// corruption error. No rebalancing happens (see the type comment), but a
// leaf the deletion empties is stitched out of the leaf chain, dropped
// from its parent, and returned to the file's free list; inner nodes left
// childless on the way up (and root nodes left with a single child) are
// reclaimed too.
func (t *BTree) DeleteErr(k core.Key) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root == 0 {
		return false, nil
	}
	// Descend recording the route so an emptied leaf can be stitched out.
	path := make([]routeStep, 0, t.height)
	id := t.root
	for lvl := t.height; lvl > 0; lvl-- {
		fr, err := t.pool.Get(id)
		if err != nil {
			return false, err
		}
		p := fr.Page()
		ci := innerRouteIndex(p, k)
		path = append(path, routeStep{id: id, slot: ci})
		if ci == p.Count() {
			id = p.Link()
		} else {
			id = p.InnerChild(ci)
		}
		t.pool.Unpin(fr, false)
	}
	fr, err := t.pool.Get(id)
	if err != nil {
		return false, err
	}
	p := fr.Page()
	i, found := p.LeafSearch(k)
	if !found {
		t.pool.Unpin(fr, false)
		return false, nil
	}
	p.LeafDeleteAt(i)
	t.count--
	if p.Count() > 0 {
		t.pool.Unpin(fr, true)
		return true, nil
	}
	next := p.Link()
	t.pool.Unpin(fr, true)
	return true, t.reclaimLeaf(path, id, next)
}

// reclaimLeaf removes the emptied, unpinned leaf id from the tree: the
// chain predecessor's link skips ahead to next, the parent drops its
// routing entry (an inner emptied of its last child is freed and the
// removal propagates upward), and the pages return to the free list.
func (t *BTree) reclaimLeaf(path []routeStep, id, next uint64) error {
	if len(path) == 0 {
		// The root was the leaf: the tree is now empty.
		t.root, t.height = 0, 0
		return t.pool.Free(id)
	}
	if err := t.relinkPredecessor(path, next); err != nil {
		return err
	}
	victim := id
	for d := len(path) - 1; d >= 0; d-- {
		fr, err := t.pool.Get(path[d].id)
		if err != nil {
			return err
		}
		p := fr.Page()
		n, ci := p.Count(), path[d].slot
		if n == 0 {
			// The victim was this node's only (link) child: free the node
			// too and keep removing one level up.
			t.pool.Unpin(fr, false)
			if err := t.pool.Free(victim); err != nil {
				return err
			}
			victim = path[d].id
			continue
		}
		if ci == n {
			// The rightmost link: its left neighbor takes over as the link.
			p.SetLink(p.InnerChild(n - 1))
			p.InnerDeleteAt(n - 1)
		} else {
			// Dropping (separator, child) ci widens the next child's range
			// leftward; fine, the vacated range holds no records.
			p.InnerDeleteAt(ci)
		}
		t.pool.Unpin(fr, true)
		if err := t.pool.Free(victim); err != nil {
			return err
		}
		return t.collapseRoot()
	}
	// Every ancestor up to the root lost its last child: empty tree.
	t.root, t.height = 0, 0
	return t.pool.Free(victim)
}

// relinkPredecessor points the freed leaf's chain predecessor at next.
// The predecessor is the rightmost leaf of the nearest left-sibling
// subtree along the descent path; the leftmost leaf has none.
func (t *BTree) relinkPredecessor(path []routeStep, next uint64) error {
	d := len(path) - 1
	for ; d >= 0; d-- {
		if path[d].slot > 0 {
			break
		}
	}
	if d < 0 {
		return nil // leftmost leaf: nothing chains into it
	}
	fr, err := t.pool.Get(path[d].id)
	if err != nil {
		return err
	}
	id := fr.Page().InnerChild(path[d].slot - 1)
	t.pool.Unpin(fr, false)
	// Descend rightmost (always the link) down to that subtree's leaf.
	for lvl := t.height - d - 1; lvl > 0; lvl-- {
		fr, err := t.pool.Get(id)
		if err != nil {
			return err
		}
		id = fr.Page().Link()
		t.pool.Unpin(fr, false)
	}
	fr, err = t.pool.Get(id)
	if err != nil {
		return err
	}
	fr.Page().SetLink(next)
	t.pool.Unpin(fr, true)
	return nil
}

// collapseRoot frees root nodes left with only their link child, keeping
// the recorded height equal to the tree's real depth.
func (t *BTree) collapseRoot() error {
	for t.height > 0 {
		fr, err := t.pool.Get(t.root)
		if err != nil {
			return err
		}
		p := fr.Page()
		if p.Count() > 0 {
			t.pool.Unpin(fr, false)
			return nil
		}
		child := p.Link()
		old := t.root
		t.pool.Unpin(fr, false)
		if err := t.pool.Free(old); err != nil {
			return err
		}
		t.root = child
		t.height--
	}
	return nil
}

// Delete removes k, panicking on I/O or corruption errors.
func (t *BTree) Delete(k core.Key) bool {
	ok, err := t.DeleteErr(k)
	if err != nil {
		panic("page: paged-btree Delete: " + err.Error())
	}
	return ok
}

// RangeErr calls fn for every record with lo <= key <= hi in ascending
// order; fn returning false stops the scan. It returns the number of
// records visited.
func (t *BTree) RangeErr(lo, hi core.Key, fn func(core.Key, core.Value) bool) (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.root == 0 || lo > hi {
		return 0, nil
	}
	id, err := t.descend(lo)
	if err != nil {
		return 0, err
	}
	return scanChain(t.pool, id, lo, hi, fn)
}

// scanChain walks the leaf chain starting at page id, visiting records in
// [lo, hi]. Shared by the B+-tree and the paged PGM (identical leaf
// format).
func scanChain(pool *Pool, id uint64, lo, hi core.Key, fn func(core.Key, core.Value) bool) (int, error) {
	count := 0
	for id != 0 {
		fr, err := pool.Get(id)
		if err != nil {
			return count, err
		}
		p := fr.Page()
		i, _ := p.LeafSearch(lo)
		for ; i < p.Count(); i++ {
			k := p.LeafKey(i)
			if k > hi {
				t := count
				pool.Unpin(fr, false)
				return t, nil
			}
			count++
			if !fn(k, p.LeafVal(i)) {
				t := count
				pool.Unpin(fr, false)
				return t, nil
			}
		}
		id = p.Link()
		pool.Unpin(fr, false)
	}
	return count, nil
}

// Range calls fn for records in [lo, hi], panicking on I/O or corruption
// errors.
func (t *BTree) Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	n, err := t.RangeErr(lo, hi, fn)
	if err != nil {
		panic("page: paged-btree Range: " + err.Error())
	}
	return n
}

// BulkLoad builds the tree bottom-up from recs (sorted ascending, distinct
// keys): leaves packed to capacity and chained, then inner levels over
// them. The tree must be empty.
func (t *BTree) BulkLoad(recs []core.KV) error {
	if t.root != 0 || t.count != 0 {
		return fmt.Errorf("page: bulk load into non-empty tree")
	}
	if len(recs) == 0 {
		return nil
	}
	ps := t.file.PageSize()
	cap := LeafCap(ps)

	// Level 0: packed leaves.
	type node struct {
		first core.Key
		id    uint64
	}
	var level []node
	var prev *Frame
	for off := 0; off < len(recs); off += cap {
		end := off + cap
		if end > len(recs) {
			end = len(recs)
		}
		fr, err := t.pool.Alloc(TypeLeaf)
		if err != nil {
			if prev != nil {
				t.pool.Unpin(prev, true)
			}
			return err
		}
		p := fr.Page()
		for j := off; j < end; j++ {
			p.SetLeafRecord(j-off, recs[j].Key, recs[j].Value)
		}
		p.SetCount(end - off)
		if prev != nil {
			prev.Page().SetLink(fr.ID())
			t.pool.Unpin(prev, true)
		}
		prev = fr
		level = append(level, node{first: recs[off].Key, id: fr.ID()})
	}
	t.pool.Unpin(prev, true)

	// Inner levels: group up to InnerCap+1 children per node; entry j is
	// (first key of child j+1, child j), rightmost child in the link.
	fan := InnerCap(ps) + 1
	height := 0
	for len(level) > 1 {
		var up []node
		for off := 0; off < len(level); off += fan {
			end := off + fan
			if end > len(level) {
				end = len(level)
			}
			fr, err := t.pool.Alloc(TypeInner)
			if err != nil {
				return err
			}
			p := fr.Page()
			for j := off; j < end-1; j++ {
				p.SetInnerEntry(j-off, level[j+1].first, level[j].id)
			}
			p.SetCount(end - off - 1)
			p.SetLink(level[end-1].id)
			up = append(up, node{first: level[off].first, id: fr.ID()})
			t.pool.Unpin(fr, true)
		}
		level = up
		height++
	}
	t.root = level[0].id
	t.height = height
	t.count = len(recs)
	return nil
}

// CheckInvariants verifies the on-disk structure: every reachable page
// decodes canonically, separators order subtrees, the leaf chain is sorted
// ascending overall, and the record count matches.
func (t *BTree) CheckInvariants() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.root == 0 {
		if t.count != 0 {
			return fmt.Errorf("paged-btree: empty tree with count %d", t.count)
		}
		return nil
	}
	n, _, err := t.checkSubtree(t.root, t.height, 0, ^core.Key(0), true)
	if err != nil {
		return err
	}
	if n != t.count {
		return fmt.Errorf("paged-btree: counted %d records, count says %d", n, t.count)
	}
	return nil
}

// checkSubtree validates the subtree under id at the given level, whose
// keys must lie in [lo, hi] (hi inclusive; loose when loose lo). It
// returns the subtree's record count and its leftmost leaf id.
func (t *BTree) checkSubtree(id uint64, level int, lo, hi core.Key, loose bool) (int, uint64, error) {
	fr, err := t.pool.Get(id)
	if err != nil {
		return 0, 0, err
	}
	p := fr.Page()
	// Decode validates CRC-independent structural canon (the pool may hold
	// a dirty page whose CRC is stale, so check shape directly).
	n := p.Count()
	if level == 0 {
		if p.Type() != TypeLeaf {
			t.pool.Unpin(fr, false)
			return 0, 0, fmt.Errorf("paged-btree: page %d at leaf level has type %d", id, p.Type())
		}
		for i := 0; i < n; i++ {
			k := p.LeafKey(i)
			if i > 0 && p.LeafKey(i-1) >= k {
				t.pool.Unpin(fr, false)
				return 0, 0, fmt.Errorf("paged-btree: leaf %d keys not ascending at %d", id, i)
			}
			if (!loose && k < lo) || k > hi {
				t.pool.Unpin(fr, false)
				return 0, 0, fmt.Errorf("paged-btree: leaf %d key %d outside [%d, %d]", id, k, lo, hi)
			}
		}
		t.pool.Unpin(fr, false)
		return n, id, nil
	}
	if p.Type() != TypeInner {
		t.pool.Unpin(fr, false)
		return 0, 0, fmt.Errorf("paged-btree: page %d at level %d has type %d", id, level, p.Type())
	}
	seps := make([]core.Key, n)
	childs := make([]uint64, n+1)
	for i := 0; i < n; i++ {
		seps[i] = p.InnerKey(i)
		childs[i] = p.InnerChild(i)
		if i > 0 && seps[i-1] >= seps[i] {
			t.pool.Unpin(fr, false)
			return 0, 0, fmt.Errorf("paged-btree: inner %d separators not ascending at %d", id, i)
		}
	}
	childs[n] = p.Link()
	t.pool.Unpin(fr, false)

	total := 0
	var leftmost uint64
	for i := 0; i <= n; i++ {
		clo, chi, cloose := lo, hi, loose
		if i > 0 {
			clo, cloose = seps[i-1], false
		}
		if i < n {
			chi = seps[i] - 1 // children before separator s hold keys < s
		}
		cn, cleft, err := t.checkSubtree(childs[i], level-1, clo, chi, cloose)
		if err != nil {
			return 0, 0, err
		}
		if i == 0 {
			leftmost = cleft
		}
		total += cn
	}
	return total, leftmost, nil
}
