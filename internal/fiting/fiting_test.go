package fiting

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

func TestBuildAllDistributions(t *testing.T) {
	for _, kind := range dataset.Kinds() {
		keys, err := dataset.Keys(kind, 8000, 701)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := Build(dataset.KV(keys), 16, 32)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			v, ok := ix.Get(k)
			if !ok || v != dataset.PayloadFor(k) {
				t.Fatalf("%s: Get(%d) = %d,%v", kind, k, v, ok)
			}
		}
		r := rand.New(rand.NewSource(702))
		for i := 0; i+1 < len(keys); i += 31 {
			if keys[i]+1 >= keys[i+1] {
				continue
			}
			probe := keys[i] + 1 + core.Key(r.Int63n(int64(keys[i+1]-keys[i]-1)))
			if _, ok := ix.Get(probe); ok {
				t.Fatalf("%s: phantom %d", kind, probe)
			}
		}
	}
}

func TestInsertFromEmpty(t *testing.T) {
	ix := New(16, 32)
	const n = 15000
	r := rand.New(rand.NewSource(703))
	perm := r.Perm(n)
	for _, i := range perm {
		if !ix.Insert(core.Key(i*4), core.Value(i)) {
			t.Fatalf("Insert(%d) reported existing", i*4)
		}
	}
	if ix.Len() != n {
		t.Fatalf("len = %d", ix.Len())
	}
	if ix.Merges == 0 {
		t.Fatal("expected buffer merges")
	}
	for i := 0; i < n; i++ {
		v, ok := ix.Get(core.Key(i * 4))
		if !ok || v != core.Value(i) {
			t.Fatalf("Get(%d) = %d,%v", i*4, v, ok)
		}
	}
	if ix.SegmentCount() < 2 {
		t.Fatal("expected multiple segments")
	}
}

func TestUpsertBaseAndBuffer(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Uniform, 1000, 704)
	ix, _ := Build(dataset.KV(keys), 16, 64)
	// Upsert base.
	if ix.Insert(keys[10], 777) {
		t.Fatal("base upsert reported new")
	}
	if v, _ := ix.Get(keys[10]); v != 777 {
		t.Fatal("base upsert lost")
	}
	// Insert fresh key twice.
	fresh := keys[10] + 1
	if fresh == keys[11] {
		t.Skip("no gap")
	}
	if !ix.Insert(fresh, 1) {
		t.Fatal("fresh insert reported existing")
	}
	if ix.Insert(fresh, 2) {
		t.Fatal("buffer upsert reported new")
	}
	if v, _ := ix.Get(fresh); v != 2 {
		t.Fatal("buffer upsert lost")
	}
}

func TestDelete(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Clustered, 4000, 705)
	ix, _ := Build(dataset.KV(keys), 32, 32)
	for i := 0; i < len(keys); i += 2 {
		if !ix.Delete(keys[i]) {
			t.Fatalf("Delete(%d) missed", keys[i])
		}
	}
	if ix.Delete(keys[0]) {
		t.Fatal("double delete")
	}
	if ix.Len() != len(keys)/2 {
		t.Fatalf("len = %d", ix.Len())
	}
	for i, k := range keys {
		_, ok := ix.Get(k)
		if ok != (i%2 == 1) {
			t.Fatalf("Get(%d) = %v", k, ok)
		}
	}
}

func TestRange(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Lognormal, 10000, 706)
	ix, _ := Build(dataset.KV(keys), 32, 32)
	// Mix in buffered inserts.
	r := rand.New(rand.NewSource(707))
	extra := map[core.Key]bool{}
	for len(extra) < 2000 {
		i := r.Intn(len(keys) - 1)
		if keys[i]+1 >= keys[i+1] {
			continue
		}
		k := keys[i] + 1 + core.Key(r.Int63n(int64(keys[i+1]-keys[i]-1)))
		if !extra[k] {
			ix.Insert(k, 9)
			extra[k] = true
		}
	}
	all := make([]core.Key, 0, len(keys)+len(extra))
	all = append(all, keys...)
	for k := range extra {
		all = append(all, k)
	}
	sortKeys(all)
	for _, q := range dataset.Ranges(all, 30, 0.01, 708) {
		want := core.UpperBound(all, q.Hi) - core.LowerBound(all, q.Lo)
		var got []core.Key
		n := ix.Range(q.Lo, q.Hi, func(k core.Key, v core.Value) bool {
			got = append(got, k)
			return true
		})
		if n != want {
			t.Fatalf("Range(%d,%d) = %d, want %d", q.Lo, q.Hi, n, want)
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatal("range out of order")
			}
		}
	}
}

func sortKeys(ks []core.Key) {
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && ks[j] < ks[j-1]; j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
}

func TestMixedWorkloadMatchesMap(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(709))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ix := New(8, 16)
		ref := map[core.Key]core.Value{}
		for op := 0; op < 4000; op++ {
			k := core.Key(r.Intn(1200))
			switch r.Intn(4) {
			case 0, 1:
				v := core.Value(r.Uint64())
				ix.Insert(k, v)
				ref[k] = v
			case 2:
				got := ix.Delete(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			case 3:
				v, ok := ix.Get(k)
				wv, wok := ref[k]
				if ok != wok || (ok && v != wv) {
					return false
				}
			}
			if ix.Len() != len(ref) {
				return false
			}
		}
		seen := 0
		okAll := true
		prev := core.Key(0)
		first := true
		ix.Range(0, ^core.Key(0), func(k core.Key, v core.Value) bool {
			if !first && k <= prev {
				okAll = false
				return false
			}
			prev, first = k, false
			wv, wok := ref[k]
			if !wok || wv != v {
				okAll = false
				return false
			}
			seen++
			return true
		})
		return okAll && seen == len(ref)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestErrorsAndStats(t *testing.T) {
	if _, err := Build([]core.KV{{Key: 4}, {Key: 2}}, 8, 8); err == nil {
		t.Fatal("unsorted accepted")
	}
	ix, err := Build(nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Get(5); ok || ix.Delete(5) {
		t.Fatal("empty index")
	}
	if n := ix.Range(0, 100, func(core.Key, core.Value) bool { return true }); n != 0 {
		t.Fatal("empty range")
	}
	ix.Insert(7, 1)
	if v, ok := ix.Get(7); !ok || v != 1 {
		t.Fatal("first insert")
	}
	keys, _ := dataset.Keys(dataset.Uniform, 20000, 710)
	big, _ := Build(dataset.KV(keys), 64, 64)
	st := big.Stats()
	if st.Count != 20000 || st.Models != big.SegmentCount() || st.IndexBytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Tighter eps → more segments.
	tight, _ := Build(dataset.KV(keys), 4, 64)
	if tight.SegmentCount() <= big.SegmentCount() {
		t.Fatal("eps does not control segments")
	}
}

func TestEarlyStopRange(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Uniform, 2000, 711)
	ix, _ := Build(dataset.KV(keys), 16, 16)
	count := 0
	ix.Range(0, ^core.Key(0), func(core.Key, core.Value) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop = %d", count)
	}
}
