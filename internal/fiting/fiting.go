// Package fiting implements the FITing-tree (Galakatos et al., "FITing-Tree:
// A Data-aware Index Structure", SIGMOD 2019): the key space is segmented
// with the shrinking-cone algorithm into ε-bounded linear segments, each
// owning its sorted data run plus a small sorted insert buffer; buffers
// that overflow are merged into their segment, which is then re-segmented.
//
// Taxonomy: mutable / pure / delta-buffer insert / fixed data layout. The
// paper places a B+-tree over segment boundaries; this implementation uses
// a sorted segment directory with binary search, which is the same access
// path with the tree flattened (documented simplification).
package fiting

import (
	"fmt"
	"math"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
	"github.com/lix-go/lix/internal/segment"
)

// DefaultEpsilon is the default segment error bound.
const DefaultEpsilon = 32

// DefaultBufferCap is the default per-segment insert buffer capacity.
const DefaultBufferCap = 64

type seg struct {
	firstKey core.Key
	keys     []core.Key
	vals     []core.Value
	buf      []core.KV // sorted delta buffer
	slope    float64
	base     float64 // prediction: slope*(float(k)-base) + 0, then err window
	errLo    int     // measured min/max signed error over keys
	errHi    int
}

// Index is a FITing-tree. The zero value is not usable; call Build or New.
type Index struct {
	segs   []*seg
	eps    int
	bufCap int
	size   int
	// Merges counts buffer merges (diagnostics).
	Merges int

	hook obs.Hook
}

// SetObserver installs r to receive structural events (per-segment buffer
// merges: EvBufferMerge with N = records in the re-segmented result); nil
// detaches.
func (ix *Index) SetObserver(r obs.Recorder) { ix.hook.SetRecorder(r) }

// New returns an empty index with the given error bound and buffer
// capacity (0 selects the defaults).
func New(eps, bufCap int) *Index {
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	if bufCap <= 0 {
		bufCap = DefaultBufferCap
	}
	return &Index{eps: eps, bufCap: bufCap}
}

// Build constructs an index over recs (sorted ascending by key, duplicate
// keys: last wins).
func Build(recs []core.KV, eps, bufCap int) (*Index, error) {
	for i := 1; i < len(recs); i++ {
		if recs[i].Key < recs[i-1].Key {
			return nil, fmt.Errorf("fiting: input not sorted at %d", i)
		}
	}
	ix := New(eps, bufCap)
	keys := make([]core.Key, 0, len(recs))
	vals := make([]core.Value, 0, len(recs))
	for i := range recs {
		if len(keys) > 0 && keys[len(keys)-1] == recs[i].Key {
			vals[len(vals)-1] = recs[i].Value
			continue
		}
		keys = append(keys, recs[i].Key)
		vals = append(vals, recs[i].Value)
	}
	ix.segs = ix.segmentize(keys, vals)
	ix.size = len(keys)
	return ix, nil
}

// segmentize runs the shrinking-cone PLA over sorted distinct keys and
// materializes per-segment runs with measured error bounds.
func (ix *Index) segmentize(keys []core.Key, vals []core.Value) []*seg {
	if len(keys) == 0 {
		return nil
	}
	xs := make([]float64, len(keys))
	for i, k := range keys {
		xs[i] = float64(k)
	}
	plas := segment.BuildAnchored(xs, segment.Positions(len(keys)), float64(ix.eps))
	out := make([]*seg, 0, len(plas))
	for _, p := range plas {
		s := &seg{
			firstKey: keys[p.StartIdx],
			keys:     append([]core.Key(nil), keys[p.StartIdx:p.EndIdx]...),
			vals:     append([]core.Value(nil), vals[p.StartIdx:p.EndIdx]...),
			slope:    p.Slope,
			base:     p.FirstKey,
		}
		s.measureError()
		out = append(out, s)
	}
	return out
}

// measureError records the min/max signed prediction error over the run.
func (s *seg) measureError() {
	s.errLo, s.errHi = 0, 0
	for i, k := range s.keys {
		e := i - s.predict(k)
		if e < s.errLo {
			s.errLo = e
		}
		if e > s.errHi {
			s.errHi = e
		}
	}
}

// predict returns the model's (unclamped) local position for k.
func (s *seg) predict(k core.Key) int {
	return int(math.Round(s.slope * (float64(k) - s.base)))
}

// lowerIdx returns the first index i in s.keys with keys[i] >= k using the
// error-bounded window.
func (s *seg) lowerIdx(k core.Key) int {
	if len(s.keys) == 0 {
		return 0
	}
	if k > s.keys[len(s.keys)-1] {
		return len(s.keys)
	}
	p := s.predict(k)
	lo := core.Clamp(p+s.errLo-1, 0, len(s.keys))
	hi := core.Clamp(p+s.errHi+2, lo, len(s.keys))
	// The measured bounds hold for stored keys; for probes between stored
	// keys monotonicity (slope >= 0 by cone construction on ranks) keeps
	// the window valid. Guard against pathological negative slopes anyway.
	if s.slope < 0 {
		lo, hi = 0, len(s.keys)
	}
	return core.SearchRange(s.keys, k, lo, hi)
}

// locate returns the index of the segment owning k (last firstKey <= k).
func (ix *Index) locate(k core.Key) int {
	lo, hi := 0, len(ix.segs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ix.segs[mid].firstKey <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// Len returns the number of records.
func (ix *Index) Len() int { return ix.size }

// SegmentCount returns the number of segments.
func (ix *Index) SegmentCount() int { return len(ix.segs) }

// Get returns the value stored for k.
func (ix *Index) Get(k core.Key) (core.Value, bool) {
	if len(ix.segs) == 0 {
		return 0, false
	}
	s := ix.segs[ix.locate(k)]
	// Buffer first: it holds the newest version.
	if i := core.LowerBoundKV(s.buf, k); i < len(s.buf) && s.buf[i].Key == k {
		return s.buf[i].Value, true
	}
	if i := s.lowerIdx(k); i < len(s.keys) && s.keys[i] == k {
		return s.vals[i], true
	}
	return 0, false
}

// Insert upserts (k, v); returns true if the key was new.
func (ix *Index) Insert(k core.Key, v core.Value) bool {
	if len(ix.segs) == 0 {
		ix.segs = []*seg{{firstKey: k, keys: []core.Key{k}, vals: []core.Value{v}}}
		ix.size = 1
		return true
	}
	s := ix.segs[ix.locate(k)]
	// Upsert in base run.
	if i := s.lowerIdx(k); i < len(s.keys) && s.keys[i] == k {
		// Buffer may shadow; check it first.
		if j := core.LowerBoundKV(s.buf, k); j < len(s.buf) && s.buf[j].Key == k {
			s.buf[j].Value = v
			return false
		}
		s.vals[i] = v
		return false
	}
	// Upsert in buffer.
	j := core.LowerBoundKV(s.buf, k)
	if j < len(s.buf) && s.buf[j].Key == k {
		s.buf[j].Value = v
		return false
	}
	s.buf = append(s.buf, core.KV{})
	copy(s.buf[j+1:], s.buf[j:])
	s.buf[j] = core.KV{Key: k, Value: v}
	ix.size++
	if len(s.buf) > ix.bufCap {
		ix.merge(s)
	}
	return true
}

// merge folds a segment's buffer into its run and re-segments the result.
func (ix *Index) merge(s *seg) {
	keys := make([]core.Key, 0, len(s.keys)+len(s.buf))
	vals := make([]core.Value, 0, len(s.keys)+len(s.buf))
	i, j := 0, 0
	for i < len(s.keys) || j < len(s.buf) {
		switch {
		case i >= len(s.keys):
			keys = append(keys, s.buf[j].Key)
			vals = append(vals, s.buf[j].Value)
			j++
		case j >= len(s.buf):
			keys = append(keys, s.keys[i])
			vals = append(vals, s.vals[i])
			i++
		case s.keys[i] < s.buf[j].Key:
			keys = append(keys, s.keys[i])
			vals = append(vals, s.vals[i])
			i++
		case s.keys[i] > s.buf[j].Key:
			keys = append(keys, s.buf[j].Key)
			vals = append(vals, s.buf[j].Value)
			j++
		default: // equal: buffer wins
			keys = append(keys, s.buf[j].Key)
			vals = append(vals, s.buf[j].Value)
			i++
			j++
		}
	}
	repl := ix.segmentize(keys, vals)
	// Splice repl in place of s.
	pos := ix.locate(s.firstKey)
	out := make([]*seg, 0, len(ix.segs)-1+len(repl))
	out = append(out, ix.segs[:pos]...)
	out = append(out, repl...)
	out = append(out, ix.segs[pos+1:]...)
	ix.segs = out
	ix.Merges++
	ix.hook.Emit(obs.EvBufferMerge, len(keys), "segment")
}

// Delete removes k, returning true if present.
func (ix *Index) Delete(k core.Key) bool {
	if len(ix.segs) == 0 {
		return false
	}
	s := ix.segs[ix.locate(k)]
	if j := core.LowerBoundKV(s.buf, k); j < len(s.buf) && s.buf[j].Key == k {
		s.buf = append(s.buf[:j], s.buf[j+1:]...)
		ix.size--
		return true
	}
	if i := s.lowerIdx(k); i < len(s.keys) && s.keys[i] == k {
		s.keys = append(s.keys[:i], s.keys[i+1:]...)
		s.vals = append(s.vals[:i], s.vals[i+1:]...)
		ix.size--
		if len(s.keys) == 0 && len(s.buf) == 0 && len(ix.segs) > 1 {
			pos := ix.locate(s.firstKey)
			ix.segs = append(ix.segs[:pos], ix.segs[pos+1:]...)
			return true
		}
		// Positions shifted: re-measure the model's error bounds.
		s.measureError()
		return true
	}
	return false
}

// Range calls fn for records with lo <= key <= hi ascending; fn returning
// false stops. Returns records visited.
func (ix *Index) Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	if len(ix.segs) == 0 {
		return 0
	}
	count := 0
	for si := ix.locate(lo); si < len(ix.segs); si++ {
		s := ix.segs[si]
		if len(s.keys) > 0 && s.keys[0] > hi && (len(s.buf) == 0 || s.buf[0].Key > hi) {
			break
		}
		i := s.lowerIdx(lo)
		j := core.LowerBoundKV(s.buf, lo)
		for i < len(s.keys) || j < len(s.buf) {
			var k core.Key
			var v core.Value
			switch {
			case i >= len(s.keys):
				k, v = s.buf[j].Key, s.buf[j].Value
				j++
			case j >= len(s.buf):
				k, v = s.keys[i], s.vals[i]
				i++
			case s.keys[i] < s.buf[j].Key:
				k, v = s.keys[i], s.vals[i]
				i++
			default:
				k, v = s.buf[j].Key, s.buf[j].Value
				if s.keys[i] == s.buf[j].Key {
					i++
				}
				j++
			}
			if k > hi {
				return count
			}
			count++
			if !fn(k, v) {
				return count
			}
		}
	}
	return count
}

// Stats reports structure statistics.
func (ix *Index) Stats() core.Stats {
	var bufRecs int
	for _, s := range ix.segs {
		bufRecs += len(s.buf)
	}
	return core.Stats{
		Name:       "fiting",
		Count:      ix.size,
		IndexBytes: len(ix.segs)*(8*4+24*3) + bufRecs*16,
		DataBytes:  16 * ix.size,
		Height:     2,
		Models:     len(ix.segs),
	}
}
