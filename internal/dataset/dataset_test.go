package dataset

import (
	"testing"

	"github.com/lix-go/lix/internal/core"
)

func TestKeysSortedDistinctDeterministic(t *testing.T) {
	for _, kind := range Kinds() {
		a, err := Keys(kind, 5000, 42)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(a) != 5000 {
			t.Fatalf("%s: len = %d", kind, len(a))
		}
		for i := 1; i < len(a); i++ {
			if a[i] <= a[i-1] {
				t.Fatalf("%s: not strictly sorted at %d: %d <= %d", kind, i, a[i], a[i-1])
			}
		}
		b, err := Keys(kind, 5000, 42)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: not deterministic at %d", kind, i)
			}
		}
		c, err := Keys(kind, 5000, 43)
		if err != nil {
			t.Fatal(err)
		}
		same := 0
		for i := range a {
			if a[i] == c[i] {
				same++
			}
		}
		if same == len(a) {
			t.Fatalf("%s: different seeds produced identical data", kind)
		}
	}
}

func TestKeysErrors(t *testing.T) {
	if _, err := Keys("nope", 10, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Keys(Uniform, -1, 1); err == nil {
		t.Fatal("negative n accepted")
	}
	ks, err := Keys(Uniform, 0, 1)
	if err != nil || len(ks) != 0 {
		t.Fatalf("zero n: %v %v", ks, err)
	}
}

func TestKVAndFloats(t *testing.T) {
	keys, _ := Keys(Uniform, 100, 7)
	recs := KV(keys)
	for i, rec := range recs {
		if rec.Key != keys[i] || rec.Value != PayloadFor(keys[i]) {
			t.Fatalf("KV[%d] = %+v", i, rec)
		}
	}
	xs := Floats(keys)
	for i := range xs {
		if xs[i] != float64(keys[i]) {
			t.Fatal("Floats mismatch")
		}
	}
}

func TestLookupMix(t *testing.T) {
	keys, _ := Keys(Clustered, 10000, 3)
	qs := LookupMix(keys, 2000, 0.5, 9)
	if len(qs) != 2000 {
		t.Fatalf("len = %d", len(qs))
	}
	present := make(map[core.Key]bool, len(keys))
	for _, k := range keys {
		present[k] = true
	}
	hits := 0
	for _, q := range qs {
		if present[q] {
			hits++
		}
	}
	if hits < 800 || hits > 1400 {
		t.Fatalf("hit count %d far from expected ~1000", hits)
	}
}

func TestZipfKeys(t *testing.T) {
	keys, _ := Keys(Uniform, 1000, 3)
	qs := ZipfKeys(keys, 5000, 4)
	counts := map[core.Key]int{}
	for _, q := range qs {
		counts[q]++
	}
	// Zipf should concentrate: the most popular key appears far more often
	// than the average rate of 5.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 50 {
		t.Fatalf("zipf max frequency = %d, want skewed", max)
	}
}

func TestRanges(t *testing.T) {
	keys, _ := Keys(Uniform, 10000, 5)
	rs := Ranges(keys, 100, 0.01, 6)
	for _, q := range rs {
		if q.Hi < q.Lo {
			t.Fatalf("inverted range %+v", q)
		}
		lo := core.LowerBound(keys, q.Lo)
		hi := core.UpperBound(keys, q.Hi)
		got := hi - lo
		if got < 1 || got > 300 {
			t.Fatalf("selectivity off: %d records for sel 0.01 of 10000", got)
		}
	}
}

func TestPoints(t *testing.T) {
	for _, kind := range SpatialKinds() {
		pts, err := Points(kind, 3000, 2, 11)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(pts) != 3000 {
			t.Fatalf("%s: len %d", kind, len(pts))
		}
		for _, p := range pts {
			if p.Dim() != 2 {
				t.Fatalf("%s: dim %d", kind, p.Dim())
			}
			for d := range p {
				if p[d] < 0 || p[d] >= Extent {
					t.Fatalf("%s: coord out of range: %v", kind, p)
				}
			}
		}
		// Determinism.
		pts2, _ := Points(kind, 3000, 2, 11)
		for i := range pts {
			if !pts[i].Equal(pts2[i]) {
				t.Fatalf("%s: not deterministic", kind)
			}
		}
	}
	if _, err := Points("bogus", 10, 2, 1); err == nil {
		t.Fatal("unknown spatial kind accepted")
	}
	if _, err := Points(SUniform, 10, 0, 1); err == nil {
		t.Fatal("zero dim accepted")
	}
}

func TestDiagonalIsCorrelated(t *testing.T) {
	pts, _ := Points(SDiagonal, 2000, 2, 13)
	// Pearson correlation between dims should be near 1.
	var sx, sy, sxx, syy, sxy float64
	n := float64(len(pts))
	for _, p := range pts {
		sx += p[0]
		sy += p[1]
		sxx += p[0] * p[0]
		syy += p[1] * p[1]
		sxy += p[0] * p[1]
	}
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	if r := cov / (sqrt(vx) * sqrt(vy)); r < 0.95 {
		t.Fatalf("diagonal correlation = %g, want > 0.95", r)
	}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton is fine for a test helper.
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func TestRectQueriesAndKNN(t *testing.T) {
	pts, _ := Points(SUniform, 5000, 3, 17)
	qs := RectQueries(pts, 50, 0.001, 18)
	if len(qs) != 50 {
		t.Fatalf("len = %d", len(qs))
	}
	for _, q := range qs {
		if q.Dim() != 3 {
			t.Fatalf("rect dim %d", q.Dim())
		}
		for d := 0; d < 3; d++ {
			if q.Min[d] > q.Max[d] {
				t.Fatalf("inverted rect %+v", q)
			}
		}
	}
	if RectQueries(nil, 5, 0.1, 1) != nil {
		t.Fatal("RectQueries(nil) should be nil")
	}
	knn := KNNQueries(pts, 20, 19)
	if len(knn) != 20 {
		t.Fatalf("knn len = %d", len(knn))
	}
	if KNNQueries(nil, 5, 1) != nil {
		t.Fatal("KNNQueries(nil) should be nil")
	}
}

func TestPV(t *testing.T) {
	pts, _ := Points(SUniform, 10, 2, 1)
	pv := PV(pts)
	for i := range pv {
		if pv[i].Value != core.Value(i) || !pv[i].Point.Equal(pts[i]) {
			t.Fatalf("PV[%d] = %+v", i, pv[i])
		}
	}
}
