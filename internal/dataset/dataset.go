// Package dataset generates the synthetic workloads used throughout the lix
// benchmark suite. The generators stand in for the SOSD traces (books, fb,
// osm_cellids, wiki) and the spatial datasets (OSM points, Tiger) used by
// the surveyed learned-index papers: what matters for learned-index
// behaviour is the shape of the key CDF — smoothness, local density
// variance, skew, duplicates — and each generator below reproduces one such
// regime. All generators are deterministic given a seed.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/lix-go/lix/internal/core"
)

// Kind names a one-dimensional key distribution.
type Kind string

// The supported 1-D distributions.
const (
	// Uniform keys over the full uint64 range scaled down to 2^60: the
	// easiest case for learned indexes (near-linear CDF).
	Uniform Kind = "uniform"
	// Normal is a single Gaussian: smooth but curved CDF.
	Normal Kind = "normal"
	// Lognormal reproduces the heavy skew of the SOSD "books" trace.
	Lognormal Kind = "lognormal"
	// Clustered is a mixture of tight Gaussian clusters with empty gaps,
	// similar to osm_cellids: high local density variance.
	Clustered Kind = "clustered"
	// Sequential is an append-like pattern: mostly consecutive with
	// occasional jumps (timestamps, auto-increment ids).
	Sequential Kind = "sequential"
	// Adversarial interleaves near-duplicate bursts with exponential
	// jumps, the poisoning-style worst case for CDF models (paper §6.7).
	Adversarial Kind = "adversarial"
)

// Kinds lists all supported 1-D distributions.
func Kinds() []Kind {
	return []Kind{Uniform, Normal, Lognormal, Clustered, Sequential, Adversarial}
}

// Keys generates n sorted, distinct keys of the given distribution.
func Keys(kind Kind, n int, seed int64) ([]core.Key, error) {
	if n < 0 {
		return nil, fmt.Errorf("dataset: negative n %d", n)
	}
	r := rand.New(rand.NewSource(seed))
	keys := make([]core.Key, 0, n)
	switch kind {
	case Uniform:
		for len(keys) < n {
			keys = append(keys, core.Key(r.Uint64()>>4))
		}
	case Normal:
		const mean, sd = float64(1) * (1 << 60), float64(1) * (1 << 55)
		for len(keys) < n {
			v := mean + r.NormFloat64()*sd
			if v < 1 {
				continue
			}
			keys = append(keys, core.Key(v))
		}
	case Lognormal:
		for len(keys) < n {
			v := math.Exp(r.NormFloat64()*2 + 20)
			if v >= float64(math.MaxUint64)/2 {
				continue
			}
			keys = append(keys, core.Key(v))
		}
	case Clustered:
		nClusters := 1 + n/2048
		centers := make([]float64, nClusters)
		for i := range centers {
			centers[i] = r.Float64() * float64(uint64(1)<<60)
		}
		for len(keys) < n {
			c := centers[r.Intn(nClusters)]
			v := c + r.NormFloat64()*1e6
			if v < 1 {
				continue
			}
			keys = append(keys, core.Key(v))
		}
	case Sequential:
		cur := uint64(1) << 20
		for len(keys) < n {
			if r.Float64() < 0.001 {
				cur += uint64(r.Intn(1 << 30)) // rare large jump
			}
			cur += 1 + uint64(r.Intn(4))
			keys = append(keys, core.Key(cur))
		}
	case Adversarial:
		// Exponentially spaced anchors, each followed by a burst of keys
		// packed at minimal spacing: maximizes CDF curvature everywhere.
		cur := uint64(1) << 8
		for len(keys) < n {
			burst := 16 + r.Intn(64)
			for b := 0; b < burst && len(keys) < n; b++ {
				cur += 1
				keys = append(keys, core.Key(cur))
			}
			// Exponential gap, capped so cumulative keys stay far below
			// 2^53 at benchmark sizes (learned models take float64 inputs).
			gap := uint64(1) << (7 + uint(r.Intn(20)))
			cur += gap
		}
	default:
		return nil, fmt.Errorf("dataset: unknown kind %q", kind)
	}
	sortDedup(&keys)
	for len(keys) > n {
		keys = keys[:n]
	}
	return keys, nil
}

// sortDedup sorts keys and nudges duplicates up by one to make the set
// strictly increasing.
func sortDedup(keys *[]core.Key) {
	ks := *keys
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			ks[i] = ks[i-1] + 1
		}
	}
	*keys = ks
}

// KV pairs each key with a payload derived from it so tests can verify that
// lookups return the right record.
func KV(keys []core.Key) []core.KV {
	recs := make([]core.KV, len(keys))
	for i, k := range keys {
		recs[i] = core.KV{Key: k, Value: PayloadFor(k)}
	}
	return recs
}

// PayloadFor derives the test payload for key k.
func PayloadFor(k core.Key) core.Value { return core.Value(k*2654435761 + 1) }

// Floats converts keys to float64 model inputs.
func Floats(keys []core.Key) []float64 {
	xs := make([]float64, len(keys))
	for i, k := range keys {
		xs[i] = float64(k)
	}
	return xs
}

// ---------------------------------------------------------------------------
// Query workloads
// ---------------------------------------------------------------------------

// LookupMix generates nq lookup keys: a hitFrac fraction samples existing
// keys uniformly, the rest are fresh keys drawn between existing ones
// (misses). Deterministic given seed.
func LookupMix(keys []core.Key, nq int, hitFrac float64, seed int64) []core.Key {
	r := rand.New(rand.NewSource(seed))
	out := make([]core.Key, nq)
	n := len(keys)
	for i := range out {
		if n > 0 && r.Float64() < hitFrac {
			out[i] = keys[r.Intn(n)]
		} else if n > 1 {
			j := r.Intn(n - 1)
			lo, hi := keys[j], keys[j+1]
			if hi > lo+1 {
				out[i] = lo + 1 + core.Key(r.Int63n(int64(hi-lo-1)%math.MaxInt64))
			} else {
				out[i] = lo
			}
		} else {
			out[i] = core.Key(r.Uint64())
		}
	}
	return out
}

// ZipfKeys generates nq lookup keys sampled from the existing key set with
// Zipfian popularity (s=1.2), modelling a skewed read workload.
func ZipfKeys(keys []core.Key, nq int, seed int64) []core.Key {
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, 1.2, 1, uint64(len(keys)-1))
	out := make([]core.Key, nq)
	for i := range out {
		out[i] = keys[z.Uint64()]
	}
	return out
}

// RangeQuery is a 1-D range [Lo, Hi].
type RangeQuery struct {
	Lo, Hi core.Key
}

// Ranges generates nq range queries whose expected selectivity is sel
// (fraction of n records), anchored at random existing keys.
func Ranges(keys []core.Key, nq int, sel float64, seed int64) []RangeQuery {
	r := rand.New(rand.NewSource(seed))
	n := len(keys)
	span := int(sel * float64(n))
	if span < 1 {
		span = 1
	}
	out := make([]RangeQuery, nq)
	for i := range out {
		j := r.Intn(n)
		k := j + span
		if k >= n {
			k = n - 1
		}
		out[i] = RangeQuery{Lo: keys[j], Hi: keys[k]}
	}
	return out
}

// ---------------------------------------------------------------------------
// Spatial datasets
// ---------------------------------------------------------------------------

// SpatialKind names a point distribution over the unit hypercube scaled to
// [0, Extent)^d.
type SpatialKind string

// The supported spatial distributions.
const (
	// SUniform scatters points uniformly: the R-tree-friendly case.
	SUniform SpatialKind = "s-uniform"
	// SOSMLike is a mixture of dense Gaussian "cities" over a sparse
	// background, reproducing OpenStreetMap-style skew.
	SOSMLike SpatialKind = "s-osm"
	// SSkewed concentrates mass near the origin with power-law tails per
	// dimension: strong inter-dimension correlation.
	SSkewed SpatialKind = "s-skewed"
	// SDiagonal places points near the main diagonal: maximal correlation,
	// the motivating case for Flood/Tsunami-style layouts.
	SDiagonal SpatialKind = "s-diagonal"
)

// SpatialKinds lists all supported spatial distributions.
func SpatialKinds() []SpatialKind {
	return []SpatialKind{SUniform, SOSMLike, SSkewed, SDiagonal}
}

// Extent is the coordinate range of generated spatial data: [0, Extent) in
// every dimension.
const Extent = 1 << 20

// Points generates n points of dim dimensions with the given distribution.
func Points(kind SpatialKind, n, dim int, seed int64) ([]core.Point, error) {
	if n < 0 || dim < 1 {
		return nil, fmt.Errorf("dataset: bad shape n=%d dim=%d", n, dim)
	}
	r := rand.New(rand.NewSource(seed))
	pts := make([]core.Point, n)
	switch kind {
	case SUniform:
		for i := range pts {
			p := make(core.Point, dim)
			for d := range p {
				p[d] = r.Float64() * Extent
			}
			pts[i] = p
		}
	case SOSMLike:
		nCities := 1 + n/4096
		centers := make([]core.Point, nCities)
		radii := make([]float64, nCities)
		for i := range centers {
			c := make(core.Point, dim)
			for d := range c {
				c[d] = r.Float64() * Extent
			}
			centers[i] = c
			radii[i] = Extent * (0.002 + 0.01*r.Float64())
		}
		for i := range pts {
			p := make(core.Point, dim)
			if r.Float64() < 0.85 { // city point
				c := r.Intn(nCities)
				for d := range p {
					p[d] = clampf(centers[c][d]+r.NormFloat64()*radii[c], 0, Extent-1)
				}
			} else { // rural background
				for d := range p {
					p[d] = r.Float64() * Extent
				}
			}
			pts[i] = p
		}
	case SSkewed:
		for i := range pts {
			p := make(core.Point, dim)
			for d := range p {
				u := r.Float64()
				p[d] = u * u * u * Extent
			}
			pts[i] = p
		}
	case SDiagonal:
		for i := range pts {
			p := make(core.Point, dim)
			base := r.Float64() * Extent
			for d := range p {
				p[d] = clampf(base+r.NormFloat64()*Extent*0.01, 0, Extent-1)
			}
			pts[i] = p
		}
	default:
		return nil, fmt.Errorf("dataset: unknown spatial kind %q", kind)
	}
	return pts, nil
}

func clampf(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// PV pairs points with payloads derived from their index.
func PV(pts []core.Point) []core.PV {
	out := make([]core.PV, len(pts))
	for i, p := range pts {
		out[i] = core.PV{Point: p, Value: core.Value(i)}
	}
	return out
}

// RectQueries generates nq axis-aligned query rectangles whose side length
// is a sel^(1/dim) fraction of the extent (so a uniform dataset yields
// roughly sel selectivity), centered at data points to follow the data
// distribution, as in the Flood evaluation.
func RectQueries(pts []core.Point, nq int, sel float64, seed int64) []core.Rect {
	if len(pts) == 0 || nq <= 0 {
		return nil
	}
	dim := len(pts[0])
	r := rand.New(rand.NewSource(seed))
	side := math.Pow(sel, 1/float64(dim)) * Extent
	out := make([]core.Rect, nq)
	for i := range out {
		c := pts[r.Intn(len(pts))]
		min := make(core.Point, dim)
		max := make(core.Point, dim)
		for d := 0; d < dim; d++ {
			min[d] = clampf(c[d]-side/2, 0, Extent)
			max[d] = clampf(c[d]+side/2, 0, Extent)
		}
		out[i] = core.Rect{Min: min, Max: max}
	}
	return out
}

// KNNQueries generates nq query points following the data distribution
// (sampled data points perturbed slightly).
func KNNQueries(pts []core.Point, nq int, seed int64) []core.Point {
	if len(pts) == 0 || nq <= 0 {
		return nil
	}
	dim := len(pts[0])
	r := rand.New(rand.NewSource(seed))
	out := make([]core.Point, nq)
	for i := range out {
		c := pts[r.Intn(len(pts))]
		q := make(core.Point, dim)
		for d := range q {
			q[d] = clampf(c[d]+r.NormFloat64()*Extent*0.001, 0, Extent-1)
		}
		out[i] = q
	}
	return out
}
