// Package rmi implements the Recursive Model Index of Kraska et al. ("The
// Case for Learned Index Structures", SIGMOD 2018), the first learned index:
// a two-stage hierarchy of models that learns the key→position CDF of a
// sorted array, plus the paper's Hybrid-RMI variant that replaces
// poorly-fitting stage-2 models with B-trees.
//
// The index is immutable (taxonomy: immutable / pure / fixed layout). A
// lookup evaluates the root model to pick a stage-2 model, evaluates that
// model to predict a position, and corrects the prediction with a bounded
// binary search using the model's recorded min/max error.
//
// Correctness does not depend on model quality: stage-2 assignment is
// monotonized during the build, per-model key boundaries are kept, and the
// last-mile search window is clamped to the model's position range, so Get
// and LowerBound are exact for any key.
package rmi

import (
	"fmt"
	"math"

	"github.com/lix-go/lix/internal/btree"
	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/mlmodel"
)

// RootKind selects the stage-1 model family.
type RootKind string

// Supported root model kinds.
const (
	RootLinear    RootKind = "linear"
	RootQuadratic RootKind = "quadratic"
	RootCubic     RootKind = "cubic"
	RootMLP       RootKind = "mlp"
)

// Config parameterizes an RMI build.
type Config struct {
	// Stage2 is the number of second-stage models (the paper's fanout).
	// Zero selects sqrt(n) capped to [16, 1<<18].
	Stage2 int
	// Root selects the stage-1 model. Empty selects RootLinear.
	Root RootKind
	// MLPHidden is the hidden width when Root is RootMLP (default 16).
	MLPHidden int
}

type leafModel struct {
	slope, intercept float64
	errLo, errHi     int // min/max signed prediction error over assigned keys
	startIdx, endIdx int // covered position range [startIdx, endIdx)
	firstKey         core.Key
}

// Index is an immutable RMI over a sorted record array.
type Index struct {
	recs   []core.KV
	keys   []core.Key // parallel key array for cache-friendly search
	root   mlmodel.Model
	leaves []leafModel
	n      int
	cfg    Config
}

// Build constructs an RMI over recs, which must be sorted ascending by key.
// recs is retained (not copied).
func Build(recs []core.KV, cfg Config) (*Index, error) {
	n := len(recs)
	for i := 1; i < n; i++ {
		if recs[i].Key < recs[i-1].Key {
			return nil, fmt.Errorf("rmi: input not sorted at %d", i)
		}
	}
	if cfg.Stage2 <= 0 {
		cfg.Stage2 = int(math.Sqrt(float64(n)))
		if cfg.Stage2 < 16 {
			cfg.Stage2 = 16
		}
		if cfg.Stage2 > 1<<18 {
			cfg.Stage2 = 1 << 18
		}
	}
	if cfg.Root == "" {
		cfg.Root = RootLinear
	}
	ix := &Index{recs: recs, n: n, cfg: cfg}
	ix.keys = make([]core.Key, n)
	for i := range recs {
		ix.keys[i] = recs[i].Key
	}
	if n == 0 {
		ix.root = &mlmodel.Linear{}
		ix.leaves = make([]leafModel, cfg.Stage2)
		return ix, nil
	}

	// Stage 1: fit root on (key, position scaled to stage2 index).
	xs := make([]float64, n)
	ys := make([]float64, n)
	L := float64(cfg.Stage2)
	for i := range recs {
		xs[i] = float64(recs[i].Key)
		ys[i] = float64(i) / float64(n) * L
	}
	root, err := newRoot(cfg)
	if err != nil {
		return nil, err
	}
	if err := root.Fit(xs, ys); err != nil {
		return nil, fmt.Errorf("rmi: root fit: %w", err)
	}
	ix.root = root

	// Stage 2: assign keys to models by (monotonized) root prediction.
	assign := make([]int, n)
	prev := 0
	for i := range xs {
		m := core.Clamp(int(root.Predict(xs[i])), 0, cfg.Stage2-1)
		if m < prev {
			m = prev // monotonize so model ranges are contiguous
		}
		assign[i] = m
		prev = m
	}
	ix.leaves = make([]leafModel, cfg.Stage2)
	start := 0
	for m := 0; m < cfg.Stage2; m++ {
		end := start
		for end < n && assign[end] == m {
			end++
		}
		lf := &ix.leaves[m]
		lf.startIdx, lf.endIdx = start, end
		if start < end {
			lf.firstKey = ix.keys[start]
			var lin mlmodel.Linear
			if err := lin.Fit(xs[start:end], positions(start, end)); err != nil {
				return nil, fmt.Errorf("rmi: leaf %d fit: %w", m, err)
			}
			if lin.Slope < 0 {
				// Monotone leaf predictions keep the lower-bound window
				// analysis valid; fall back to the endpoint chord.
				_ = lin.FitEndpoints(xs[start:end], positions(start, end))
				if lin.Slope < 0 {
					lin.Slope = 0
					lin.Intercept = float64(start+end-1) / 2
				}
			}
			lf.slope, lf.intercept = lin.Slope, lin.Intercept
			lo, hi := 0, 0
			for i := start; i < end; i++ {
				e := i - int(lf.predict(float64(ix.keys[i])))
				if e < lo {
					lo = e
				}
				if e > hi {
					hi = e
				}
			}
			lf.errLo, lf.errHi = lo, hi
		} else {
			lf.firstKey = math.MaxUint64 // fixed up below
			lf.startIdx, lf.endIdx = start, start
		}
		start = end
	}
	// Empty models inherit the boundary of the next non-empty model so the
	// query-time boundary walk behaves.
	nextKey := core.Key(math.MaxUint64)
	nextStart := n
	for m := cfg.Stage2 - 1; m >= 0; m-- {
		lf := &ix.leaves[m]
		if lf.startIdx == lf.endIdx {
			lf.firstKey = nextKey
			lf.startIdx, lf.endIdx = nextStart, nextStart
		} else {
			nextKey = lf.firstKey
			nextStart = lf.startIdx
		}
	}
	return ix, nil
}

func newRoot(cfg Config) (mlmodel.Trainable, error) {
	switch cfg.Root {
	case RootLinear:
		return &mlmodel.Linear{}, nil
	case RootQuadratic:
		return mlmodel.NewPolynomial(2), nil
	case RootCubic:
		return mlmodel.NewPolynomial(3), nil
	case RootMLP:
		h := cfg.MLPHidden
		if h <= 0 {
			h = 16
		}
		m := mlmodel.NewMLP(h)
		m.Epochs = 300
		return m, nil
	default:
		return nil, fmt.Errorf("rmi: unknown root kind %q", cfg.Root)
	}
}

func positions(start, end int) []float64 {
	ys := make([]float64, end-start)
	for i := range ys {
		ys[i] = float64(start + i)
	}
	return ys
}

func (lf *leafModel) predict(x float64) float64 {
	return lf.slope*x + lf.intercept
}

// locate returns the stage-2 model index for key k: the root prediction
// corrected by walking model boundaries until firstKey[m] <= k <
// firstKey[m+1].
func (ix *Index) locate(k core.Key) int {
	m := core.Clamp(int(ix.root.Predict(float64(k))), 0, len(ix.leaves)-1)
	// Trailing empty models carry the sentinel firstKey MaxUint64 with
	// startIdx == n; a stored key equal to MaxUint64 must not walk into
	// them, so the walk checks startIdx too.
	for m+1 < len(ix.leaves) && k >= ix.leaves[m+1].firstKey && ix.leaves[m+1].startIdx < ix.n {
		m++
	}
	for m > 0 && (k < ix.leaves[m].firstKey || ix.leaves[m].startIdx >= ix.n) {
		m--
	}
	return m
}

// LowerBound returns the smallest position i with keys[i] >= k.
func (ix *Index) LowerBound(k core.Key) int {
	if ix.n == 0 {
		return 0
	}
	lf := &ix.leaves[ix.locate(k)]
	if lf.startIdx == lf.endIdx {
		return lf.startIdx
	}
	pred := int(lf.predict(float64(k)))
	lo := core.Clamp(pred+lf.errLo, lf.startIdx, lf.endIdx)
	hi := core.Clamp(pred+lf.errHi+1, lo, lf.endIdx)
	return core.SearchRange(ix.keys, k, lo, hi)
}

// Get returns the value stored for k.
func (ix *Index) Get(k core.Key) (core.Value, bool) {
	i := ix.LowerBound(k)
	if i < ix.n && ix.keys[i] == k {
		return ix.recs[i].Value, true
	}
	return 0, false
}

// Range calls fn for records with lo <= key <= hi ascending; fn returning
// false stops. Returns records visited.
func (ix *Index) Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	i := ix.LowerBound(lo)
	count := 0
	for ; i < ix.n && ix.keys[i] <= hi; i++ {
		count++
		if !fn(ix.keys[i], ix.recs[i].Value) {
			break
		}
	}
	return count
}

// Len returns the number of records.
func (ix *Index) Len() int { return ix.n }

// MaxAbsError returns the largest recorded per-model absolute error.
func (ix *Index) MaxAbsError() int {
	worst := 0
	for i := range ix.leaves {
		if -ix.leaves[i].errLo > worst {
			worst = -ix.leaves[i].errLo
		}
		if ix.leaves[i].errHi > worst {
			worst = ix.leaves[i].errHi
		}
	}
	return worst
}

// AvgWindow returns the mean last-mile search window width over models,
// weighted by keys covered.
func (ix *Index) AvgWindow() float64 {
	if ix.n == 0 {
		return 0
	}
	var sum float64
	for i := range ix.leaves {
		lf := &ix.leaves[i]
		sum += float64(lf.endIdx-lf.startIdx) * float64(lf.errHi-lf.errLo+1)
	}
	return sum / float64(ix.n)
}

// Stats reports structure statistics. IndexBytes counts models only; the
// sorted record array is DataBytes.
func (ix *Index) Stats() core.Stats {
	return core.Stats{
		Name:       "rmi",
		Count:      ix.n,
		IndexBytes: ix.root.Bytes() + len(ix.leaves)*(8*4+8+8),
		DataBytes:  16 * ix.n,
		Height:     2,
		Models:     1 + len(ix.leaves),
	}
}

// ---------------------------------------------------------------------------
// Hybrid-RMI
// ---------------------------------------------------------------------------

// Hybrid is the paper's hybrid variant: stage-2 models whose error window
// exceeds a threshold are replaced by B-trees over their partition
// (taxonomy: immutable / hybrid (B-tree)).
type Hybrid struct {
	ix       *Index
	fallback map[int]*btree.Tree // model index -> B-tree
	maxErr   int
}

// BuildHybrid builds an RMI and replaces every stage-2 model whose error
// window exceeds maxErr with a B-tree.
func BuildHybrid(recs []core.KV, cfg Config, maxErr int) (*Hybrid, error) {
	ix, err := Build(recs, cfg)
	if err != nil {
		return nil, err
	}
	if maxErr < 1 {
		maxErr = 1
	}
	h := &Hybrid{ix: ix, fallback: map[int]*btree.Tree{}, maxErr: maxErr}
	for m := range ix.leaves {
		lf := &ix.leaves[m]
		if lf.endIdx-lf.startIdx == 0 {
			continue
		}
		if lf.errHi-lf.errLo > maxErr {
			bt, err := btree.Bulk(btree.DefaultOrder, recs[lf.startIdx:lf.endIdx])
			if err != nil {
				return nil, err
			}
			h.fallback[m] = bt
		}
	}
	return h, nil
}

// Get returns the value stored for k.
func (h *Hybrid) Get(k core.Key) (core.Value, bool) {
	if h.ix.n == 0 {
		return 0, false
	}
	m := h.ix.locate(k)
	if bt, ok := h.fallback[m]; ok {
		return bt.Get(k)
	}
	lf := &h.ix.leaves[m]
	if lf.startIdx == lf.endIdx {
		return 0, false
	}
	pred := int(lf.predict(float64(k)))
	lo := core.Clamp(pred+lf.errLo, lf.startIdx, lf.endIdx)
	hi := core.Clamp(pred+lf.errHi+1, lo, lf.endIdx)
	i := core.SearchRange(h.ix.keys, k, lo, hi)
	if i < h.ix.n && h.ix.keys[i] == k {
		return h.ix.recs[i].Value, true
	}
	return 0, false
}

// Range calls fn for records with lo <= key <= hi ascending; the scan runs
// over the shared sorted array, so it is exact regardless of which
// partitions fell back to B-trees.
func (h *Hybrid) Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	return h.ix.Range(lo, hi, fn)
}

// FallbackCount returns how many stage-2 slots are B-trees.
func (h *Hybrid) FallbackCount() int { return len(h.fallback) }

// Len returns the number of records.
func (h *Hybrid) Len() int { return h.ix.n }

// Stats reports structure statistics including fallback B-trees.
func (h *Hybrid) Stats() core.Stats {
	st := h.ix.Stats()
	st.Name = "hybrid-rmi"
	for _, bt := range h.fallback {
		bst := bt.Stats()
		st.IndexBytes += bst.IndexBytes
		st.Models += bst.Models
	}
	return st
}
