package rmi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

func buildOn(t *testing.T, kind dataset.Kind, n int, cfg Config) (*Index, []core.Key) {
	t.Helper()
	keys, err := dataset.Keys(kind, n, 101)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(dataset.KV(keys), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ix, keys
}

func checkAllLookups(t *testing.T, ix *Index, keys []core.Key, label string) {
	t.Helper()
	for i, k := range keys {
		v, ok := ix.Get(k)
		if !ok || v != dataset.PayloadFor(k) {
			t.Fatalf("%s: Get(%d) = %d,%v at i=%d", label, k, v, ok, i)
		}
		if lb := ix.LowerBound(k); lb != i {
			t.Fatalf("%s: LowerBound(%d) = %d, want %d", label, k, lb, i)
		}
	}
}

func TestAllDistributionsAllRoots(t *testing.T) {
	for _, kind := range dataset.Kinds() {
		for _, root := range []RootKind{RootLinear, RootQuadratic, RootCubic} {
			ix, keys := buildOn(t, kind, 5000, Config{Stage2: 128, Root: root})
			checkAllLookups(t, ix, keys, string(kind)+"/"+string(root))
		}
	}
}

func TestMLPRoot(t *testing.T) {
	ix, keys := buildOn(t, dataset.Lognormal, 3000, Config{Stage2: 64, Root: RootMLP, MLPHidden: 8})
	checkAllLookups(t, ix, keys, "mlp")
}

func TestMissingKeys(t *testing.T) {
	ix, keys := buildOn(t, dataset.Clustered, 8000, Config{Stage2: 256})
	r := rand.New(rand.NewSource(3))
	for i := 0; i+1 < len(keys); i += 13 {
		if keys[i]+1 >= keys[i+1] {
			continue
		}
		gap := keys[i] + 1 + core.Key(r.Int63n(int64(keys[i+1]-keys[i]-1)))
		if _, ok := ix.Get(gap); ok {
			t.Fatalf("phantom key %d found", gap)
		}
		if lb := ix.LowerBound(gap); lb != i+1 {
			t.Fatalf("LowerBound(miss %d) = %d, want %d", gap, lb, i+1)
		}
	}
	// Keys below/above the whole range.
	if lb := ix.LowerBound(keys[0] - 1); lb != 0 {
		t.Fatalf("LowerBound(below) = %d", lb)
	}
	if lb := ix.LowerBound(keys[len(keys)-1] + 1); lb != len(keys) {
		t.Fatalf("LowerBound(above) = %d", lb)
	}
}

func TestRange(t *testing.T) {
	ix, keys := buildOn(t, dataset.Uniform, 5000, Config{})
	for _, q := range dataset.Ranges(keys, 50, 0.005, 7) {
		want := core.UpperBound(keys, q.Hi) - core.LowerBound(keys, q.Lo)
		var got []core.Key
		n := ix.Range(q.Lo, q.Hi, func(k core.Key, v core.Value) bool {
			got = append(got, k)
			return true
		})
		if n != want {
			t.Fatalf("Range(%d,%d) = %d records, want %d", q.Lo, q.Hi, n, want)
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatal("range out of order")
			}
		}
	}
	// Early stop.
	count := 0
	ix.Range(0, ^core.Key(0), func(core.Key, core.Value) bool { count++; return count < 9 })
	if count != 9 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestEmptyAndTiny(t *testing.T) {
	ix, err := Build(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Get(5); ok {
		t.Fatal("Get on empty")
	}
	if ix.LowerBound(5) != 0 || ix.Len() != 0 {
		t.Fatal("empty index misbehaves")
	}
	ix, err = Build([]core.KV{{Key: 42, Value: 1}}, Config{Stage2: 4})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := ix.Get(42); !ok || v != 1 {
		t.Fatal("single-record Get")
	}
	if ix.LowerBound(41) != 0 || ix.LowerBound(43) != 1 {
		t.Fatal("single-record LowerBound")
	}
}

func TestUnsortedRejected(t *testing.T) {
	if _, err := Build([]core.KV{{Key: 5}, {Key: 3}}, Config{}); err == nil {
		t.Fatal("unsorted input accepted")
	}
	if _, err := Build([]core.KV{{Key: 1}}, Config{Root: "bogus"}); err == nil {
		t.Fatal("bogus root accepted")
	}
}

func TestDuplicateKeys(t *testing.T) {
	// Duplicates are legal input; LowerBound must return the first.
	var recs []core.KV
	for i := 0; i < 1000; i++ {
		recs = append(recs, core.KV{Key: core.Key(i / 4 * 10), Value: core.Value(i)})
	}
	ix, err := Build(recs, Config{Stage2: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 250; i++ {
		k := core.Key(i * 10)
		if lb := ix.LowerBound(k); lb != i*4 {
			t.Fatalf("LowerBound(dup %d) = %d, want %d", k, lb, i*4)
		}
	}
}

// Property: RMI agrees with core.LowerBound on arbitrary probes.
func TestLowerBoundProperty(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Lognormal, 4000, 11)
	ix, err := Build(dataset.KV(keys), Config{Stage2: 200})
	if err != nil {
		t.Fatal(err)
	}
	f := func(probe core.Key) bool {
		return ix.LowerBound(probe) == core.LowerBound(keys, probe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Also probe around every 50th key explicitly.
	for i := 0; i < len(keys); i += 50 {
		for _, d := range []int64{-1, 0, 1} {
			probe := core.Key(int64(keys[i]) + d)
			if ix.LowerBound(probe) != core.LowerBound(keys, probe) {
				t.Fatalf("LowerBound(%d) mismatch", probe)
			}
		}
	}
}

func TestErrorMetricsAndStats(t *testing.T) {
	ix, _ := buildOn(t, dataset.Clustered, 5000, Config{Stage2: 64})
	if ix.MaxAbsError() < 0 {
		t.Fatal("negative max error")
	}
	if ix.AvgWindow() <= 0 {
		t.Fatal("avg window should be positive")
	}
	st := ix.Stats()
	if st.Count != 5000 || st.IndexBytes <= 0 || st.Models != 65 {
		t.Fatalf("stats = %+v", st)
	}
	// More stage-2 models should shrink the average window.
	big, _ := buildOn(t, dataset.Clustered, 5000, Config{Stage2: 1024})
	if big.AvgWindow() > ix.AvgWindow() {
		t.Fatalf("window grew with fanout: %g -> %g", ix.AvgWindow(), big.AvgWindow())
	}
}

func TestHybrid(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Adversarial, 6000, 13)
	recs := dataset.KV(keys)
	h, err := BuildHybrid(recs, Config{Stage2: 64}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 6000 {
		t.Fatalf("len = %d", h.Len())
	}
	// On adversarial data some models should have been replaced.
	if h.FallbackCount() == 0 {
		t.Fatal("expected B-tree fallbacks on adversarial data")
	}
	for i, k := range keys {
		v, ok := h.Get(k)
		if !ok || v != recs[i].Value {
			t.Fatalf("hybrid Get(%d) = %d,%v", k, v, ok)
		}
	}
	// Misses.
	if _, ok := h.Get(keys[0] - 1); ok {
		t.Fatal("hybrid phantom")
	}
	st := h.Stats()
	if st.Name != "hybrid-rmi" || st.Models <= 65 {
		t.Fatalf("hybrid stats = %+v", st)
	}
	// Empty hybrid.
	he, err := BuildHybrid(nil, Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := he.Get(1); ok {
		t.Fatal("empty hybrid Get")
	}
}

func TestLargeBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ix, keys := buildOn(t, dataset.Lognormal, 200000, Config{})
	for i := 0; i < len(keys); i += 997 {
		if _, ok := ix.Get(keys[i]); !ok {
			t.Fatalf("lost key %d", keys[i])
		}
	}
}
