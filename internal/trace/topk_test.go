package trace

import (
	"math/rand"
	"sync"
	"testing"
)

// TestTopKExactUnderCapacity: while the tracked key set fits, counts are
// exact and err is 0.
func TestTopKExactUnderCapacity(t *testing.T) {
	tk := NewTopK(16)
	for k := uint64(1); k <= 10; k++ {
		for i := uint64(0); i < k; i++ {
			tk.Touch(k)
		}
	}
	top := tk.Top(100)
	if len(top) != 10 {
		t.Fatalf("Top returned %d entries, want 10", len(top))
	}
	for i, e := range top {
		wantKey := uint64(10 - i)
		if e.Key != wantKey || e.Count != wantKey || e.Err != 0 {
			t.Fatalf("top[%d] = %+v, want key=count=%d err=0", i, e, wantKey)
		}
	}
	if got := tk.Top(3); len(got) != 3 || got[0].Key != 10 {
		t.Fatalf("Top(3) = %+v", got)
	}
	if tk.Top(0) != nil || tk.Top(-1) != nil {
		t.Fatal("Top(<=0) must return nil")
	}
}

// TestTopKHeavyHitter: under eviction pressure from a long tail, the
// heavy hitters must survive with their SpaceSaving error bound intact:
// count-err <= true <= count.
func TestTopKHeavyHitter(t *testing.T) {
	tk := NewTopK(8) // 8 per shard, 64 tracked total, against 100k distinct tail keys
	rng := rand.New(rand.NewSource(1))
	truth := map[uint64]uint64{}
	const heavyA, heavyB = 3, 11
	for i := 0; i < 200000; i++ {
		var k uint64
		switch {
		case rng.Intn(10) < 3:
			k = heavyA
		case rng.Intn(10) < 2:
			k = heavyB
		default:
			k = 1000 + uint64(rng.Intn(100000))
		}
		truth[k]++
		tk.Touch(k)
	}
	top := tk.Top(4)
	found := map[uint64]KeyCount{}
	for _, e := range top {
		found[e.Key] = e
	}
	for _, hk := range []uint64{heavyA, heavyB} {
		e, ok := found[hk]
		if !ok {
			t.Fatalf("heavy hitter %d missing from top-4 %+v", hk, top)
		}
		if e.Count < truth[hk] || e.Count-e.Err > truth[hk] {
			t.Fatalf("key %d: bound violated: count=%d err=%d true=%d", hk, e.Count, e.Err, truth[hk])
		}
	}
}

// TestTopKBoundsAllEntries checks the count-err <= true <= count
// invariant for every reported entry, not just heavy hitters.
func TestTopKBoundsAllEntries(t *testing.T) {
	tk := NewTopK(4)
	rng := rand.New(rand.NewSource(7))
	truth := map[uint64]uint64{}
	for i := 0; i < 50000; i++ {
		k := uint64(rng.Intn(500))
		truth[k]++
		tk.Touch(k)
	}
	for _, e := range tk.Top(1000) {
		if e.Count < truth[e.Key] {
			t.Fatalf("key %d: count %d < true %d (undercount impossible in SpaceSaving)",
				e.Key, e.Count, truth[e.Key])
		}
		if e.Count-e.Err > truth[e.Key] {
			t.Fatalf("key %d: count-err %d > true %d (guaranteed mass overstated)",
				e.Key, e.Count-e.Err, truth[e.Key])
		}
	}
}

func TestTopKCapacityClamp(t *testing.T) {
	tk := NewTopK(0)
	tk.Touch(1)
	tk.Touch(1)
	tk.Touch(2)
	top := tk.Top(10)
	if len(top) == 0 {
		t.Fatal("clamped sketch tracked nothing")
	}
}

func TestTopKConcurrent(t *testing.T) {
	tk := NewTopK(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 20000; i++ {
				if rng.Intn(4) == 0 {
					tk.Touch(77)
				} else {
					tk.Touch(uint64(rng.Intn(10000)))
				}
			}
			_ = tk.Top(8)
		}(g)
	}
	wg.Wait()
	top := tk.Top(1)
	if len(top) != 1 || top[0].Key != 77 {
		t.Fatalf("hot key 77 not on top after concurrent load: %+v", top)
	}
	// 8 goroutines × ~5000 touches of 77; counts can only overestimate.
	if top[0].Count < 30000 {
		t.Fatalf("hot key count %d implausibly low", top[0].Count)
	}
}
