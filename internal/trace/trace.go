// Package trace is the request-tracing layer of the lix engine: it follows
// one serving request group from frame decode (internal/wire) through
// dispatch (internal/serve), in-memory index work (internal/shard or the
// bare backend) and WAL append/fsync (internal/store), and turns what it
// sees into three live signals:
//
//   - per-stage latency histograms (decode_ns, dispatch_ns, shard_ns,
//     wal_ns; fsync_ns is fed by the store directly), sampled at a
//     configurable probabilistic rate, so a metrics scrape shows *where*
//     the tail lives rather than one end-to-end number;
//   - a slow-request log: any sampled request group slower than the
//     configured threshold publishes an EvSlowRequest event carrying its
//     full span timeline into the bounded obs.EventLog;
//   - hot-key telemetry: a SpaceSaving top-K sketch (topk.go) updated on
//     the read path, the sensor for hot-key caching and
//     imbalance-triggered re-sharding.
//
// The cost model follows the obs.Hook contract: with no Tracer attached,
// or with sampling disabled (rate 0), the serving hot path pays one
// atomic load and a branch per request group. Spans themselves are pooled
// and only exist for sampled groups.
//
// Stage durations are recorded with atomic adds, so layers that fan work
// out across goroutines (the sharded router, per-segment WAL group
// commits) can record concurrently into one span; a stage value is the
// summed duration across that parallel work, which can exceed the group's
// wall time. Stages are also hierarchical, not additive: dispatch covers
// the store calls, which in turn cover shard/wal/fsync work.
package trace

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
)

// Stage identifies one timed section of a serving request's path through
// the engine.
type Stage uint8

// Span stages, in pipeline order.
const (
	// StageDecode is wire-frame parse time (io wait excluded).
	StageDecode Stage = iota
	// StageDispatch is the serving layer's group dispatch: run slicing,
	// batch assembly and reply encoding, covering the store calls.
	StageDispatch
	// StageShard is in-memory index work: the shard fan-out or the bare
	// backend's batch application.
	StageShard
	// StageWAL is WAL frame encoding + append write time.
	StageWAL
	// StageFsync is group-commit fsync wait time.
	StageFsync
	// NumStages bounds the stage set.
	NumStages
)

// String returns the stable snake_case metric-family stem of the stage.
func (s Stage) String() string {
	switch s {
	case StageDecode:
		return "decode"
	case StageDispatch:
		return "dispatch"
	case StageShard:
		return "shard"
	case StageWAL:
		return "wal"
	case StageFsync:
		return "fsync"
	default:
		return fmt.Sprintf("stage_%d", uint8(s))
	}
}

// Span is the timeline of one sampled request group. Stage durations are
// accumulated with atomic adds so parallel fan-out goroutines can record
// into one span. The zero value is usable; spans handed out by
// Tracer.Start are pooled and must be returned through Tracer.Finish.
// All methods are safe on a nil receiver (no-ops / zero values), which
// keeps call sites on the unsampled path branch-free.
type Span struct {
	start  time.Time
	ops    int
	stages [NumStages]atomic.Int64
}

// Add accumulates d into stage st. Safe for concurrent use and on a nil
// receiver.
func (sp *Span) Add(st Stage, d time.Duration) {
	if sp == nil || st >= NumStages || d <= 0 {
		return
	}
	sp.stages[st].Add(int64(d))
}

// Stage returns the accumulated duration of st (0 on a nil span).
func (sp *Span) Stage(st Stage) time.Duration {
	if sp == nil || st >= NumStages {
		return 0
	}
	return time.Duration(sp.stages[st].Load())
}

// Ops returns the number of requests in the traced group.
func (sp *Span) Ops() int {
	if sp == nil {
		return 0
	}
	return sp.ops
}

// Total returns the group's end-to-end duration: wall time since the span
// started plus the decode stage, which the wire layer accumulates before
// the span exists (frames are parsed while the group is drained).
func (sp *Span) Total() time.Duration {
	if sp == nil {
		return 0
	}
	return time.Since(sp.start) + sp.Stage(StageDecode)
}

// Timeline renders the span as one line, stages in pipeline order with
// zero stages elided: "ops=3 decode=1.2µs dispatch=80µs shard=75µs".
func (sp *Span) Timeline() string {
	if sp == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "ops=%d", sp.ops)
	for st := Stage(0); st < NumStages; st++ {
		if d := sp.Stage(st); d > 0 {
			fmt.Fprintf(&b, " %s=%s", st, d)
		}
	}
	return b.String()
}

func (sp *Span) reset(ops int) {
	sp.start = time.Now()
	sp.ops = ops
	for i := range sp.stages {
		sp.stages[i].Store(0)
	}
}

// Config tunes a Tracer.
type Config struct {
	// SampleRate is the fraction of request groups traced, in [0, 1].
	// 0 disables span sampling entirely (the disabled cost of Start is
	// one atomic load and a branch).
	SampleRate float64
	// SlowThreshold, when positive, publishes an EvSlowRequest event
	// (carrying the span timeline) for every sampled group whose total
	// time reaches it. Only sampled groups are inspected: at rate r a
	// slow request appears in the log with probability r.
	SlowThreshold time.Duration
	// TopK, when positive, enables hot-key telemetry: a SpaceSaving
	// sketch of this capacity (per hash shard) updated with every key on
	// the read path, independent of span sampling.
	TopK int
	// Metrics receives the per-stage histograms and slow-request events.
	// Required when SampleRate > 0.
	Metrics *obs.Metrics
}

// Tracer makes the sampling decision, owns the span pool and the hot-key
// sketch, and routes finished spans into an obs.Metrics bundle. All
// methods are safe for concurrent use and on a nil receiver (no-ops), so
// callers can hold an optional *Tracer without guarding every call.
type Tracer struct {
	met  *obs.Metrics
	topk *TopK

	// thresh is the sampling cut: a group is traced iff the next PRNG
	// draw is <= thresh. 0 disables, ^0 traces everything.
	thresh atomic.Uint64
	slowNS atomic.Int64
	rng    atomic.Uint64

	sampled obs.Counter
	slow    obs.Counter

	pool sync.Pool
}

// New returns a Tracer for cfg. It panics if cfg.SampleRate is positive
// without a Metrics bundle to record into (a misconfiguration, not a
// runtime condition).
func New(cfg Config) *Tracer {
	if cfg.SampleRate > 0 && cfg.Metrics == nil {
		panic("trace: Config.SampleRate > 0 requires Config.Metrics")
	}
	t := &Tracer{met: cfg.Metrics}
	t.pool.New = func() interface{} { return new(Span) }
	if cfg.TopK > 0 {
		t.topk = NewTopK(cfg.TopK)
	}
	t.SetSampleRate(cfg.SampleRate)
	t.SetSlowThreshold(cfg.SlowThreshold)
	return t
}

// SetSampleRate replaces the sampling rate (clamped to [0, 1]) at
// runtime.
func (t *Tracer) SetSampleRate(rate float64) {
	if t == nil {
		return
	}
	switch {
	case rate <= 0:
		t.thresh.Store(0)
	case rate >= 1:
		t.thresh.Store(^uint64(0))
	default:
		t.thresh.Store(uint64(rate * float64(math.MaxUint64)))
	}
}

// SetSlowThreshold replaces the slow-request threshold at runtime
// (0 or negative disables the slow log).
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	t.slowNS.Store(int64(d))
}

// Enabled reports whether span sampling can currently select a group —
// the one-atomic-load fast check serving layers use to skip all span
// bookkeeping.
func (t *Tracer) Enabled() bool {
	return t != nil && t.thresh.Load() != 0
}

// HotKeys reports whether hot-key telemetry is on.
func (t *Tracer) HotKeys() bool { return t != nil && t.topk != nil }

// splitmix64 is the sampling PRNG step: cheap, stateless beyond one
// counter, and well distributed even on sequential inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Start makes the sampling decision for one request group of ops
// requests: it returns a pooled, reset span when the group is sampled and
// nil otherwise (also on a nil tracer or rate 0). A non-nil span must be
// handed back through Finish.
func (t *Tracer) Start(ops int) *Span {
	if t == nil {
		return nil
	}
	th := t.thresh.Load()
	if th == 0 {
		return nil
	}
	if splitmix64(t.rng.Add(1)) > th {
		return nil
	}
	sp := t.pool.Get().(*Span)
	sp.reset(ops)
	return sp
}

// Finish completes a sampled span: stage durations feed the per-stage
// histograms, the slow threshold is checked (publishing EvSlowRequest
// with the span's timeline when crossed), and the span returns to the
// pool. Nil tracer or span is a no-op.
func (t *Tracer) Finish(sp *Span) {
	if t == nil || sp == nil {
		return
	}
	total := sp.Total()
	t.sampled.Inc()
	if m := t.met; m != nil {
		observeStage := func(h *obs.Histogram, st Stage) {
			if d := sp.Stage(st); d > 0 {
				h.Observe(uint64(d))
			}
		}
		observeStage(&m.DecodeNS, StageDecode)
		observeStage(&m.DispatchNS, StageDispatch)
		observeStage(&m.ShardNS, StageShard)
		observeStage(&m.WalNS, StageWAL)
		// StageFsync deliberately does not feed m.FsyncNS: the store
		// records every group commit there already; a span's fsync time
		// is per-request attribution, visible in the timeline.
		if slow := t.slowNS.Load(); slow > 0 && int64(total) >= slow {
			t.slow.Inc()
			m.Event(obs.Event{
				Type:   obs.EvSlowRequest,
				N:      int(total),
				Detail: sp.Timeline() + " total=" + total.String(),
			})
		}
	}
	t.pool.Put(sp)
}

// Sampled returns the number of groups sampled so far.
func (t *Tracer) Sampled() uint64 {
	if t == nil {
		return 0
	}
	return t.sampled.Load()
}

// Slow returns the number of slow-request events published so far.
func (t *Tracer) Slow() uint64 {
	if t == nil {
		return 0
	}
	return t.slow.Load()
}

// TouchKey feeds one read-path key into the hot-key sketch (no-op when
// hot-key telemetry is off).
func (t *Tracer) TouchKey(k core.Key) {
	if t == nil || t.topk == nil {
		return
	}
	t.topk.Touch(uint64(k))
}

// TouchKeys feeds a batch of read-path keys into the hot-key sketch.
func (t *Tracer) TouchKeys(keys []core.Key) {
	if t == nil || t.topk == nil {
		return
	}
	for _, k := range keys {
		t.topk.Touch(uint64(k))
	}
}

// TopKeys returns the current top-n hot keys, hottest first (nil when
// hot-key telemetry is off).
func (t *Tracer) TopKeys(n int) []KeyCount {
	if t == nil || t.topk == nil {
		return nil
	}
	return t.topk.Top(n)
}

// ---------------------------------------------------------------------------
// Span-aware batch dispatch
// ---------------------------------------------------------------------------

// SpanLookuper is the span-aware batched-read capability: engine layers
// that can attribute their internal stage timings (shard fan-out, WAL,
// fsync) implement it alongside core.BatchLookuper.
type SpanLookuper interface {
	LookupBatchSpan(keys []core.Key, sp *Span) ([]core.Value, []bool)
}

// SpanInserter is the span-aware batched-write capability.
type SpanInserter interface {
	InsertBatchSpan(recs []core.KV, sp *Span)
}

// SpanDeleter is the span-aware batched-delete capability.
type SpanDeleter interface {
	DeleteBatchSpan(keys []core.Key, sp *Span) []bool
}

// LookupBatch resolves keys through ix, routing the span to the layer's
// span-aware path when it has one; otherwise the whole call is timed as
// the shard stage. With a nil span it is exactly core.LookupBatch.
func LookupBatch(ix core.Getter, keys []core.Key, sp *Span) ([]core.Value, []bool) {
	if sp == nil {
		return core.LookupBatch(ix, keys)
	}
	if sl, ok := ix.(SpanLookuper); ok {
		return sl.LookupBatchSpan(keys, sp)
	}
	t0 := time.Now()
	vals, oks := core.LookupBatch(ix, keys)
	sp.Add(StageShard, time.Since(t0))
	return vals, oks
}

// InsertBatch applies recs through ix with span routing; see LookupBatch.
func InsertBatch(ix core.Inserter, recs []core.KV, sp *Span) {
	if sp == nil {
		core.InsertBatch(ix, recs)
		return
	}
	if si, ok := ix.(SpanInserter); ok {
		si.InsertBatchSpan(recs, sp)
		return
	}
	t0 := time.Now()
	core.InsertBatch(ix, recs)
	sp.Add(StageShard, time.Since(t0))
}

// DeleteBatch removes keys through ix with span routing; see LookupBatch.
func DeleteBatch(ix core.Deleter, keys []core.Key, sp *Span) []bool {
	if sp == nil {
		return core.DeleteBatch(ix, keys)
	}
	if sd, ok := ix.(SpanDeleter); ok {
		return sd.DeleteBatchSpan(keys, sp)
	}
	t0 := time.Now()
	oks := core.DeleteBatch(ix, keys)
	sp.Add(StageShard, time.Since(t0))
	return oks
}
