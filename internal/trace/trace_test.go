package trace

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() || tr.HotKeys() {
		t.Fatal("nil tracer reports enabled")
	}
	if sp := tr.Start(3); sp != nil {
		t.Fatal("nil tracer sampled a span")
	}
	tr.Finish(nil)
	tr.SetSampleRate(1)
	tr.SetSlowThreshold(time.Second)
	tr.TouchKey(1)
	tr.TouchKeys([]core.Key{1, 2})
	if tr.TopKeys(4) != nil || tr.Sampled() != 0 || tr.Slow() != 0 {
		t.Fatal("nil tracer returned non-zero state")
	}

	var sp *Span
	sp.Add(StageWAL, time.Second)
	if sp.Stage(StageWAL) != 0 || sp.Total() != 0 || sp.Ops() != 0 || sp.Timeline() != "" {
		t.Fatal("nil span returned non-zero state")
	}
}

func TestSamplingRates(t *testing.T) {
	m := obs.NewMetrics("s")

	off := New(Config{SampleRate: 0, Metrics: m})
	if off.Enabled() {
		t.Fatal("rate 0 reports enabled")
	}
	for i := 0; i < 1000; i++ {
		if off.Start(1) != nil {
			t.Fatal("rate 0 sampled a span")
		}
	}

	all := New(Config{SampleRate: 1, Metrics: m})
	for i := 0; i < 1000; i++ {
		sp := all.Start(1)
		if sp == nil {
			t.Fatal("rate 1 skipped a span")
		}
		all.Finish(sp)
	}
	if got := all.Sampled(); got != 1000 {
		t.Fatalf("Sampled() = %d, want 1000", got)
	}

	// A fractional rate should land near its expectation: 10% over 20k
	// draws has σ≈21, so ±10σ bounds make a flake essentially impossible
	// while still catching an off-by-10x threshold bug.
	frac := New(Config{SampleRate: 0.1, Metrics: m})
	hits := 0
	for i := 0; i < 20000; i++ {
		if sp := frac.Start(1); sp != nil {
			hits++
			frac.Finish(sp)
		}
	}
	if hits < 1500 || hits > 2500 {
		t.Fatalf("rate 0.1 sampled %d/20000, want ~2000", hits)
	}

	// Runtime rate changes must take effect without a new tracer.
	frac.SetSampleRate(0)
	if frac.Enabled() || frac.Start(1) != nil {
		t.Fatal("SetSampleRate(0) did not disable sampling")
	}
}

func TestSpanStagesAndHistograms(t *testing.T) {
	m := obs.NewMetrics("st")
	tr := New(Config{SampleRate: 1, Metrics: m})

	sp := tr.Start(5)
	if sp == nil {
		t.Fatal("rate 1 returned nil span")
	}
	if sp.Ops() != 5 {
		t.Fatalf("Ops() = %d, want 5", sp.Ops())
	}
	sp.Add(StageDecode, 100)
	sp.Add(StageDispatch, 2000)
	sp.Add(StageShard, 1500)
	sp.Add(StageWAL, 300)
	sp.Add(StageWAL, 200) // accumulates
	sp.Add(StageFsync, 50)
	sp.Add(StageShard, -5) // non-positive ignored
	if got := sp.Stage(StageWAL); got != 500 {
		t.Fatalf("Stage(WAL) = %d, want 500", got)
	}
	tl := sp.Timeline()
	for _, want := range []string{"ops=5", "decode=100ns", "dispatch=2µs", "shard=1.5µs", "wal=500ns", "fsync=50ns"} {
		if !strings.Contains(tl, want) {
			t.Fatalf("timeline %q missing %q", tl, want)
		}
	}
	tr.Finish(sp)

	for name, h := range map[string]*obs.Histogram{
		"decode_ns":   &m.DecodeNS,
		"dispatch_ns": &m.DispatchNS,
		"shard_ns":    &m.ShardNS,
		"wal_ns":      &m.WalNS,
	} {
		if got := h.Snapshot().Count; got != 1 {
			t.Fatalf("%s count = %d, want 1", name, got)
		}
	}
	// Fsync stays the store's histogram; Finish must not double-feed it.
	if got := m.FsyncNS.Snapshot().Count; got != 0 {
		t.Fatalf("fsync_ns count = %d, want 0 (store-owned)", got)
	}
	if got := m.WalNS.Snapshot().Sum; got != 500 {
		t.Fatalf("wal_ns sum = %d, want 500", got)
	}

	// Pool reuse must hand back a clean span.
	sp2 := tr.Start(1)
	if sp2.Stage(StageWAL) != 0 || sp2.Stage(StageDecode) != 0 {
		t.Fatal("pooled span not reset")
	}
	tr.Finish(sp2)
}

func TestSlowRequestEvent(t *testing.T) {
	m := obs.NewMetrics("slow")
	tr := New(Config{SampleRate: 1, SlowThreshold: time.Microsecond, Metrics: m})

	sp := tr.Start(2)
	sp.Add(StageShard, 3*time.Millisecond) // stage time alone doesn't make it slow...
	time.Sleep(2 * time.Millisecond)       // ...wall time does
	tr.Finish(sp)

	if got := m.Events.Count(obs.EvSlowRequest); got != 1 {
		t.Fatalf("slow_request events = %d, want 1", got)
	}
	if got := tr.Slow(); got != 1 {
		t.Fatalf("Slow() = %d, want 1", got)
	}
	evs := m.Events.Recent(1)
	if len(evs) != 1 {
		t.Fatal("no recent event")
	}
	e := evs[0]
	for _, want := range []string{"ops=2", "shard=3ms", "total="} {
		if !strings.Contains(e.Detail, want) {
			t.Fatalf("slow event detail %q missing %q", e.Detail, want)
		}
	}
	if e.N < int(2*time.Millisecond) {
		t.Fatalf("slow event N = %d, want >= 2ms of nanoseconds", e.N)
	}

	// Under the threshold: no event.
	fast := New(Config{SampleRate: 1, SlowThreshold: time.Hour, Metrics: m})
	sp = fast.Start(1)
	fast.Finish(sp)
	if got := m.Events.Count(obs.EvSlowRequest); got != 1 {
		t.Fatalf("fast request published a slow event (count %d)", got)
	}

	// Threshold 0 disables the slow log even for glacial requests.
	off := New(Config{SampleRate: 1, Metrics: m})
	sp = off.Start(1)
	sp.Add(StageShard, time.Hour)
	off.Finish(sp)
	if got := m.Events.Count(obs.EvSlowRequest); got != 1 {
		t.Fatalf("threshold 0 published a slow event (count %d)", got)
	}
}

func TestConcurrentSpanAdds(t *testing.T) {
	m := obs.NewMetrics("conc")
	tr := New(Config{SampleRate: 1, Metrics: m})
	sp := tr.Start(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				sp.Add(StageWAL, 1)
				sp.Add(StageFsync, 2)
			}
		}()
	}
	wg.Wait()
	if got := sp.Stage(StageWAL); got != 8000 {
		t.Fatalf("concurrent WAL stage = %d, want 8000", got)
	}
	if got := sp.Stage(StageFsync); got != 16000 {
		t.Fatalf("concurrent fsync stage = %d, want 16000", got)
	}
	tr.Finish(sp)
}

func TestNewPanicsWithoutMetrics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(SampleRate>0, Metrics=nil) did not panic")
		}
	}()
	New(Config{SampleRate: 0.5})
}

// fakeIndex implements core.Getter/Inserter/Deleter without any span or
// batch capability, to exercise the helper fallback timing.
type fakeIndex struct {
	m map[core.Key]core.Value
}

func (f *fakeIndex) Get(k core.Key) (core.Value, bool) { v, ok := f.m[k]; return v, ok }
func (f *fakeIndex) Insert(k core.Key, v core.Value)   { f.m[k] = v }
func (f *fakeIndex) Delete(k core.Key) bool {
	_, ok := f.m[k]
	delete(f.m, k)
	return ok
}

// spanIndex additionally implements the Span* capabilities and records
// which path was taken.
type spanIndex struct {
	fakeIndex
	spanCalls int
}

func (s *spanIndex) LookupBatchSpan(keys []core.Key, sp *Span) ([]core.Value, []bool) {
	s.spanCalls++
	sp.Add(StageShard, 7)
	return core.LookupBatch(&s.fakeIndex, keys)
}

func (s *spanIndex) InsertBatchSpan(recs []core.KV, sp *Span) {
	s.spanCalls++
	sp.Add(StageWAL, 9)
	core.InsertBatch(&s.fakeIndex, recs)
}

func (s *spanIndex) DeleteBatchSpan(keys []core.Key, sp *Span) []bool {
	s.spanCalls++
	sp.Add(StageWAL, 11)
	return core.DeleteBatch(&s.fakeIndex, keys)
}

func TestSpanBatchHelpers(t *testing.T) {
	m := obs.NewMetrics("h")
	tr := New(Config{SampleRate: 1, Metrics: m})

	// Nil span: plain core dispatch, no timing.
	plain := &fakeIndex{m: map[core.Key]core.Value{1: 10}}
	vals, oks := LookupBatch(plain, []core.Key{1, 2}, nil)
	if len(vals) != 2 || !oks[0] || oks[1] || vals[0] != 10 {
		t.Fatalf("nil-span LookupBatch = %v %v", vals, oks)
	}
	InsertBatch(plain, []core.KV{{Key: 3, Value: 30}}, nil)
	if v, ok := plain.Get(3); !ok || v != 30 {
		t.Fatal("nil-span InsertBatch lost the record")
	}
	if oks := DeleteBatch(plain, []core.Key{3}, nil); !oks[0] {
		t.Fatal("nil-span DeleteBatch missed")
	}

	// Plain index + live span: whole call timed as the shard stage.
	sp := tr.Start(1)
	LookupBatch(plain, []core.Key{1}, sp)
	InsertBatch(plain, []core.KV{{Key: 4, Value: 40}}, sp)
	DeleteBatch(plain, []core.Key{4}, sp)
	if sp.Stage(StageShard) <= 0 {
		t.Fatal("fallback path recorded no shard time")
	}
	if sp.Stage(StageWAL) != 0 {
		t.Fatal("fallback path invented WAL time")
	}
	tr.Finish(sp)

	// Span-capable index: helper must route to the span path.
	si := &spanIndex{fakeIndex: fakeIndex{m: map[core.Key]core.Value{1: 10}}}
	sp = tr.Start(3)
	LookupBatch(si, []core.Key{1}, sp)
	InsertBatch(si, []core.KV{{Key: 2, Value: 20}}, sp)
	DeleteBatch(si, []core.Key{2}, sp)
	if si.spanCalls != 3 {
		t.Fatalf("span-capable index got %d span calls, want 3", si.spanCalls)
	}
	if got := sp.Stage(StageWAL); got != 20 {
		t.Fatalf("span WAL stage = %d, want 20 (9+11)", got)
	}
	if got := sp.Stage(StageShard); got != 7 {
		t.Fatalf("span shard stage = %d, want 7", got)
	}
	tr.Finish(sp)
}

func TestStageStrings(t *testing.T) {
	want := []string{"decode", "dispatch", "shard", "wal", "fsync"}
	for st := Stage(0); st < NumStages; st++ {
		if st.String() != want[st] {
			t.Errorf("Stage(%d).String() = %q, want %q", st, st, want[st])
		}
	}
	if s := Stage(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown stage renders %q", s)
	}
}

func TestTracerHotKeys(t *testing.T) {
	m := obs.NewMetrics("hk")
	tr := New(Config{SampleRate: 0, TopK: 8, Metrics: m})
	if !tr.HotKeys() {
		t.Fatal("TopK > 0 did not enable hot keys")
	}
	if tr.Enabled() {
		t.Fatal("hot keys alone must not enable span sampling")
	}
	for i := 0; i < 100; i++ {
		tr.TouchKey(42)
	}
	tr.TouchKeys([]core.Key{7, 7, 9})
	top := tr.TopKeys(2)
	if len(top) != 2 || top[0].Key != 42 || top[0].Count != 100 || top[1].Key != 7 {
		t.Fatalf("TopKeys = %+v", top)
	}
}
