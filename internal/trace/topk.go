package trace

import (
	"sort"
	"sync"
)

// TopK is a sharded SpaceSaving heavy-hitter sketch (Metwally et al.,
// "Efficient Computation of Frequent and Top-k Elements in Data
// Streams"): bounded memory, one map probe per update, and for every
// tracked key the guarantee
//
//	count - err <= true frequency <= count
//
// so callers can tell a certain heavy hitter (count-err high) from a
// recent arrival riding an evicted slot's inherited count. The sketch is
// sharded by key hash to keep the read-path update from serializing: each
// shard is an independent SpaceSaving instance of the configured
// capacity, and Top merges across shards. Per-shard capacity means a key
// set smaller than capacity per shard is counted exactly (err 0).
type TopK struct {
	shards [topkShards]tkShard
}

const topkShards = 8

type tkShard struct {
	mu   sync.Mutex
	cap  int
	idx  map[uint64]int // key -> position in ents
	ents []tkEnt
}

type tkEnt struct {
	key   uint64
	count uint64
	err   uint64
}

// KeyCount is one hot-key estimate: Count-Err <= true count <= Count.
type KeyCount struct {
	Key   uint64 `json:"key"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err"`
}

// NewTopK returns a sketch that tracks up to capacity keys per hash
// shard (capacity is clamped to at least 1).
func NewTopK(capacity int) *TopK {
	if capacity < 1 {
		capacity = 1
	}
	t := &TopK{}
	for i := range t.shards {
		t.shards[i].cap = capacity
		t.shards[i].idx = make(map[uint64]int, capacity)
	}
	return t
}

// Touch records one occurrence of key.
func (t *TopK) Touch(key uint64) {
	// Fibonacci hashing spreads dense sequential key ranges — the common
	// case for this codebase's uint64 keys — evenly across shards.
	s := &t.shards[(key*0x9E3779B97F4A7C15)>>61]
	s.mu.Lock()
	if i, ok := s.idx[key]; ok {
		s.ents[i].count++
		s.mu.Unlock()
		return
	}
	if len(s.ents) < s.cap {
		s.idx[key] = len(s.ents)
		s.ents = append(s.ents, tkEnt{key: key, count: 1})
		s.mu.Unlock()
		return
	}
	// Evict the minimum-count entry; the newcomer inherits its count (it
	// could have occurred up to min times while untracked), with the
	// inherited amount recorded as the estimate's error bound.
	min := 0
	for i := 1; i < len(s.ents); i++ {
		if s.ents[i].count < s.ents[min].count {
			min = i
		}
	}
	old := s.ents[min]
	delete(s.idx, old.key)
	s.ents[min] = tkEnt{key: key, count: old.count + 1, err: old.count}
	s.idx[key] = min
	s.mu.Unlock()
}

// Top returns up to n entries across all shards, ordered by estimated
// count descending (ties broken by key for determinism).
func (t *TopK) Top(n int) []KeyCount {
	if n <= 0 {
		return nil
	}
	var out []KeyCount
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, e := range s.ents {
			out = append(out, KeyCount{Key: e.key, Count: e.count, Err: e.err})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Key < out[b].Key
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}
