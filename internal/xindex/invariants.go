package xindex

import "fmt"

// CheckInvariants verifies the structural invariants of the concurrent
// index under a consistent snapshot: root pivots ascending, every group's
// base keys strictly ascending and within its pivot range, per-group error
// bounds that really cover every base key, sorted delta buffers, no sealed
// group reachable from the current root, and a live count that matches the
// size counter. It takes each group's read lock (and is therefore safe to
// call concurrently with readers and writers, though the size comparison is
// only meaningful on a quiesced index, which is when the conform suite
// calls it). It is O(n) and intended for tests.
func (ix *Index) CheckInvariants() error {
	r := ix.root.Load()
	if r == nil {
		return fmt.Errorf("xindex: nil root")
	}
	if len(r.pivots) != len(r.groups) {
		return fmt.Errorf("xindex: %d pivots for %d groups", len(r.pivots), len(r.groups))
	}
	if len(r.groups) == 0 {
		return fmt.Errorf("xindex: root with no groups")
	}
	for i := 1; i < len(r.pivots); i++ {
		if r.pivots[i] <= r.pivots[i-1] {
			return fmt.Errorf("xindex: pivots not strictly ascending at %d", i)
		}
	}
	live := 0
	for gi, g := range r.groups {
		g.mu.RLock()
		err := func() error {
			if g.sealed {
				return fmt.Errorf("xindex: sealed group %d reachable from the root", gi)
			}
			for i := range g.keys {
				if i > 0 && g.keys[i] <= g.keys[i-1] {
					return fmt.Errorf("xindex: group %d base keys not strictly ascending at %d", gi, i)
				}
				if gi > 0 && g.keys[i] < r.pivots[gi] {
					return fmt.Errorf("xindex: group %d key %d below pivot %d", gi, g.keys[i], r.pivots[gi])
				}
				if gi+1 < len(r.pivots) && g.keys[i] >= r.pivots[gi+1] {
					return fmt.Errorf("xindex: group %d key %d at or above next pivot %d", gi, g.keys[i], r.pivots[gi+1])
				}
				// The error bounds must cover the true position, or
				// lowerIdx's windowed search would miss base records.
				if e := i - g.predict(g.keys[i]); e < g.errLo || e > g.errHi {
					return fmt.Errorf("xindex: group %d key %d prediction error %d outside [%d,%d]", gi, g.keys[i], e, g.errLo, g.errHi)
				}
			}
			if len(g.vals) != len(g.keys) {
				return fmt.Errorf("xindex: group %d keys/vals mismatch %d != %d", gi, len(g.keys), len(g.vals))
			}
			for j := range g.delta {
				if j > 0 && g.delta[j].key <= g.delta[j-1].key {
					return fmt.Errorf("xindex: group %d delta not strictly ascending at %d", gi, j)
				}
				if gi > 0 && g.delta[j].key < r.pivots[gi] {
					return fmt.Errorf("xindex: group %d delta key %d below pivot %d", gi, g.delta[j].key, r.pivots[gi])
				}
				if gi+1 < len(r.pivots) && g.delta[j].key >= r.pivots[gi+1] {
					return fmt.Errorf("xindex: group %d delta key %d at or above next pivot %d", gi, g.delta[j].key, r.pivots[gi+1])
				}
			}
			// Count live records: base records not shadowed by a delta entry,
			// plus non-dead delta entries.
			for _, k := range g.keys {
				if _, shadowed := g.deltaFind(k); !shadowed {
					live++
				}
			}
			for _, d := range g.delta {
				if !d.dead {
					live++
				}
			}
			return nil
		}()
		g.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	if int64(live) != ix.size.Load() {
		return fmt.Errorf("xindex: size=%d but groups hold %d live records", ix.size.Load(), live)
	}
	return nil
}
