package xindex

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

func TestBulkGet(t *testing.T) {
	for _, kind := range dataset.Kinds() {
		keys, _ := dataset.Keys(kind, 8000, 901)
		ix, err := Bulk(dataset.KV(keys), 512, 64)
		if err != nil {
			t.Fatal(err)
		}
		if ix.Len() != 8000 {
			t.Fatalf("%s: len = %d", kind, ix.Len())
		}
		for _, k := range keys {
			v, ok := ix.Get(k)
			if !ok || v != dataset.PayloadFor(k) {
				t.Fatalf("%s: Get(%d) = %d,%v", kind, k, v, ok)
			}
		}
	}
}

func TestSequentialInsertSplits(t *testing.T) {
	ix := New(256, 32)
	const n = 20000
	for i := 0; i < n; i++ {
		ix.Insert(core.Key(i*2), core.Value(i))
	}
	if ix.Len() != n {
		t.Fatalf("len = %d", ix.Len())
	}
	if ix.Compactions.Load() == 0 {
		t.Fatal("expected compactions")
	}
	r := ix.root.Load()
	if len(r.groups) < 10 {
		t.Fatalf("expected many groups, got %d", len(r.groups))
	}
	for i := 0; i < n; i++ {
		v, ok := ix.Get(core.Key(i * 2))
		if !ok || v != core.Value(i) {
			t.Fatalf("Get(%d) = %d,%v", i*2, v, ok)
		}
		if _, ok := ix.Get(core.Key(i*2 + 1)); ok {
			t.Fatal("phantom")
		}
	}
}

func TestDeleteAndCompact(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Uniform, 5000, 902)
	ix, _ := Bulk(dataset.KV(keys), 512, 64)
	for i := 0; i < len(keys); i += 2 {
		if !ix.Delete(keys[i]) {
			t.Fatalf("Delete(%d) missed", keys[i])
		}
	}
	if ix.Delete(keys[0]) {
		t.Fatal("double delete")
	}
	if ix.Len() != len(keys)/2 {
		t.Fatalf("len = %d", ix.Len())
	}
	ix.Compact()
	if ix.Len() != len(keys)/2 {
		t.Fatalf("len after compact = %d", ix.Len())
	}
	for i, k := range keys {
		_, ok := ix.Get(k)
		if ok != (i%2 == 1) {
			t.Fatalf("Get(%d) = %v after compact", k, ok)
		}
	}
}

func TestRange(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Clustered, 10000, 903)
	ix, _ := Bulk(dataset.KV(keys), 1024, 128)
	// Buffered extra inserts.
	r := rand.New(rand.NewSource(904))
	extra := map[core.Key]bool{}
	for len(extra) < 1000 {
		i := r.Intn(len(keys) - 1)
		if keys[i]+1 >= keys[i+1] {
			continue
		}
		k := keys[i] + 1 + core.Key(r.Int63n(int64(keys[i+1]-keys[i]-1)))
		if !extra[k] {
			ix.Insert(k, 5)
			extra[k] = true
		}
	}
	all := append([]core.Key(nil), keys...)
	for k := range extra {
		all = append(all, k)
	}
	sortKeys(all)
	for _, q := range dataset.Ranges(all, 25, 0.01, 905) {
		want := core.UpperBound(all, q.Hi) - core.LowerBound(all, q.Lo)
		var got []core.Key
		n := ix.Range(q.Lo, q.Hi, func(k core.Key, v core.Value) bool {
			got = append(got, k)
			return true
		})
		if n != want {
			t.Fatalf("Range = %d, want %d", n, want)
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatal("range out of order")
			}
		}
	}
}

func sortKeys(ks []core.Key) {
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && ks[j] < ks[j-1]; j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
}

// TestConcurrentReadersWriters hammers the index from many goroutines; run
// with -race to validate the synchronization.
func TestConcurrentReadersWriters(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Uniform, 20000, 906)
	ix, _ := Bulk(dataset.KV(keys), 512, 64)
	const writers, readers = 4, 4
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(id int) {
			defer writerWG.Done()
			r := rand.New(rand.NewSource(int64(907 + id)))
			for i := 0; i < 20000; i++ {
				k := core.Key(r.Uint64() >> 8)
				switch r.Intn(3) {
				case 0, 1:
					ix.Insert(k, core.Value(id))
				case 2:
					ix.Delete(keys[r.Intn(len(keys))])
				}
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		readerWG.Add(1)
		go func(id int) {
			defer readerWG.Done()
			r := rand.New(rand.NewSource(int64(917 + id)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < 100; i++ {
					ix.Get(keys[r.Intn(len(keys))])
				}
				ix.Range(keys[0], keys[100], func(core.Key, core.Value) bool { return true })
			}
		}(rd)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
}

func TestConcurrentInsertsAllVisible(t *testing.T) {
	ix := New(256, 32)
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := core.Key(i*goroutines + id)
				ix.Insert(k, core.Value(id))
			}
		}(g)
	}
	wg.Wait()
	if ix.Len() != goroutines*perG {
		t.Fatalf("len = %d, want %d", ix.Len(), goroutines*perG)
	}
	for i := 0; i < goroutines*perG; i++ {
		if _, ok := ix.Get(core.Key(i)); !ok {
			t.Fatalf("key %d lost", i)
		}
	}
}

func TestErrorsAndStats(t *testing.T) {
	if _, err := Bulk([]core.KV{{Key: 5}, {Key: 1}}, 0, 0); err == nil {
		t.Fatal("unsorted accepted")
	}
	ix, err := Bulk(nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Get(1); ok {
		t.Fatal("empty get")
	}
	ix.Insert(1, 2)
	if v, ok := ix.Get(1); !ok || v != 2 {
		t.Fatal("insert on empty")
	}
	keys, _ := dataset.Keys(dataset.Uniform, 10000, 908)
	big, _ := Bulk(dataset.KV(keys), 0, 0)
	st := big.Stats()
	if st.Count != 10000 || st.Models < 2 || st.DataBytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}
