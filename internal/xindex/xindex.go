// Package xindex implements XIndex-lite, a concurrent learned index
// following the architecture of XIndex (Tang et al., PPoPP 2020): a root
// model routes to groups; each group holds an immutable learned-model base
// array plus a small mutable delta buffer protected by a readers-writer
// lock; compaction merges a group's delta into its base and retrains the
// model, splitting oversized groups by swapping in a new root RCU-style
// (readers holding the old root keep a consistent pre-split snapshot).
//
// Taxonomy: mutable / pure / delta-buffer / fixed layout / concurrent (*).
// The original uses lock-free reads over two-phase compaction; this
// reproduction uses per-group RWMutex and an atomic root pointer, which
// preserves the scalability architecture (no global lock on the data path)
// without instruction-level lock-freedom.
package xindex

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
)

// DefaultGroupSize is the target number of base records per group.
const DefaultGroupSize = 4096

// DefaultDeltaCap is the delta-buffer size that triggers compaction.
const DefaultDeltaCap = 256

type deltaRec struct {
	key  core.Key
	val  core.Value
	dead bool
}

type group struct {
	mu     sync.RWMutex
	keys   []core.Key
	vals   []core.Value
	slope  float64
	base   float64
	errLo  int
	errHi  int
	delta  []deltaRec // sorted by key
	sealed bool       // set when the group was replaced by a split
}

type root struct {
	pivots []core.Key // pivots[i] = smallest key routed to groups[i]
	groups []*group
	slope  float64
	base   float64
}

// Index is a concurrent learned index. The zero value is not usable; call
// New or Bulk.
type Index struct {
	root      atomic.Pointer[root]
	structMu  sync.Mutex // serializes root swaps (splits)
	size      atomic.Int64
	groupSize int
	deltaCap  int
	// Compactions counts group compactions (diagnostics).
	Compactions atomic.Int64

	hook obs.Hook
}

// SetObserver installs r to receive structural events: group retrains
// (EvRetrain), compactions (EvCompaction) and RCU root swaps (EvRCUSwap);
// nil detaches. Hook is an atomic pointer, so attaching is safe while
// concurrent readers and writers are on the data path.
func (ix *Index) SetObserver(r obs.Recorder) { ix.hook.SetRecorder(r) }

// New returns an empty index with the given group size and delta capacity
// (0 selects the defaults).
func New(groupSize, deltaCap int) *Index {
	if groupSize <= 0 {
		groupSize = DefaultGroupSize
	}
	if deltaCap <= 0 {
		deltaCap = DefaultDeltaCap
	}
	ix := &Index{groupSize: groupSize, deltaCap: deltaCap}
	g := newGroup(nil, nil)
	r := buildRoot([]*group{g}, []core.Key{0})
	ix.root.Store(r)
	return ix
}

// Bulk builds an index from records sorted ascending by key (duplicates:
// last wins).
func Bulk(recs []core.KV, groupSize, deltaCap int) (*Index, error) {
	for i := 1; i < len(recs); i++ {
		if recs[i].Key < recs[i-1].Key {
			return nil, fmt.Errorf("xindex: bulk input not sorted at %d", i)
		}
	}
	ix := New(groupSize, deltaCap)
	keys := make([]core.Key, 0, len(recs))
	vals := make([]core.Value, 0, len(recs))
	for i := range recs {
		if len(keys) > 0 && keys[len(keys)-1] == recs[i].Key {
			vals[len(vals)-1] = recs[i].Value
			continue
		}
		keys = append(keys, recs[i].Key)
		vals = append(vals, recs[i].Value)
	}
	if len(keys) == 0 {
		return ix, nil
	}
	var groups []*group
	var pivots []core.Key
	for i := 0; i < len(keys); i += ix.groupSize {
		end := i + ix.groupSize
		if end > len(keys) {
			end = len(keys)
		}
		groups = append(groups, newGroup(keys[i:end], vals[i:end]))
		pivots = append(pivots, keys[i])
	}
	pivots[0] = 0 // the first group owns everything below its first key
	ix.root.Store(buildRoot(groups, pivots))
	ix.size.Store(int64(len(keys)))
	return ix, nil
}

func newGroup(keys []core.Key, vals []core.Value) *group {
	g := &group{
		keys: append([]core.Key(nil), keys...),
		vals: append([]core.Value(nil), vals...),
	}
	g.retrain()
	return g
}

// retrain fits the group's linear model and measures its error bounds.
func (g *group) retrain() {
	n := len(g.keys)
	if n == 0 {
		g.slope, g.base, g.errLo, g.errHi = 0, 0, 0, 0
		return
	}
	lo, hi := float64(g.keys[0]), float64(g.keys[n-1])
	g.base = lo
	if hi > lo {
		g.slope = float64(n-1) / (hi - lo)
	} else {
		g.slope = 0
	}
	g.errLo, g.errHi = 0, 0
	for i, k := range g.keys {
		e := i - g.predict(k)
		if e < g.errLo {
			g.errLo = e
		}
		if e > g.errHi {
			g.errHi = e
		}
	}
}

func (g *group) predict(k core.Key) int {
	return int(math.Round(g.slope * (float64(k) - g.base)))
}

// lowerIdx returns the first base index with key >= k.
func (g *group) lowerIdx(k core.Key) int {
	n := len(g.keys)
	if n == 0 {
		return 0
	}
	if k > g.keys[n-1] {
		return n
	}
	p := g.predict(k)
	lo := core.Clamp(p+g.errLo-1, 0, n)
	hi := core.Clamp(p+g.errHi+2, lo, n)
	return core.SearchRange(g.keys, k, lo, hi)
}

// deltaFind returns the delta index of k and whether it is present.
func (g *group) deltaFind(k core.Key) (int, bool) {
	lo, hi := 0, len(g.delta)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if g.delta[mid].key < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(g.delta) && g.delta[lo].key == k
}

func buildRoot(groups []*group, pivots []core.Key) *root {
	r := &root{pivots: pivots, groups: groups}
	n := len(pivots)
	if n > 1 {
		lo, hi := float64(pivots[1]), float64(pivots[n-1])
		r.base = lo
		if hi > lo {
			r.slope = float64(n-2) / (hi - lo)
		}
	}
	return r
}

// route returns the group index owning k.
func (r *root) route(k core.Key) int {
	i := core.Clamp(int(r.slope*(float64(k)-r.base))+1, 0, len(r.groups)-1)
	for i+1 < len(r.groups) && k >= r.pivots[i+1] {
		i++
	}
	for i > 0 && k < r.pivots[i] {
		i--
	}
	return i
}

// Len returns the number of live records.
func (ix *Index) Len() int { return int(ix.size.Load()) }

// Get returns the value stored for k. Safe for concurrent use.
func (ix *Index) Get(k core.Key) (core.Value, bool) {
	r := ix.root.Load()
	g := r.groups[r.route(k)]
	g.mu.RLock()
	defer g.mu.RUnlock()
	if i, ok := g.deltaFind(k); ok {
		if g.delta[i].dead {
			return 0, false
		}
		return g.delta[i].val, true
	}
	if i := g.lowerIdx(k); i < len(g.keys) && g.keys[i] == k {
		return g.vals[i], true
	}
	return 0, false
}

// Insert upserts (k, v). Safe for concurrent use.
func (ix *Index) Insert(k core.Key, v core.Value) {
	ix.put(deltaRec{key: k, val: v})
}

// Delete removes k, returning true if it was live. Safe for concurrent use.
func (ix *Index) Delete(k core.Key) bool {
	_, live := ix.Get(k)
	if !live {
		return false
	}
	ix.put(deltaRec{key: k, dead: true})
	return true
}

func (ix *Index) put(rec deltaRec) {
	for {
		r := ix.root.Load()
		g := r.groups[r.route(rec.key)]
		g.mu.Lock()
		if g.sealed {
			g.mu.Unlock()
			continue // a split replaced this group; retry on the new root
		}
		wasLive := g.liveLocked(rec.key)
		if i, ok := g.deltaFind(rec.key); ok {
			g.delta[i] = rec
		} else {
			g.delta = append(g.delta, deltaRec{})
			copy(g.delta[i+1:], g.delta[i:])
			g.delta[i] = rec
		}
		switch {
		case wasLive && rec.dead:
			ix.size.Add(-1)
		case !wasLive && !rec.dead:
			ix.size.Add(1)
		}
		needCompact := len(g.delta) >= ix.deltaCap
		g.mu.Unlock()
		if needCompact {
			ix.compact(g)
		}
		return
	}
}

// liveLocked reports whether k is live in g (caller holds the lock).
func (g *group) liveLocked(k core.Key) bool {
	if i, ok := g.deltaFind(k); ok {
		return !g.delta[i].dead
	}
	i := g.lowerIdx(k)
	return i < len(g.keys) && g.keys[i] == k
}

// compact merges g's delta into its base, retrains, and splits the group
// if it grew beyond 2x the target size.
func (ix *Index) compact(g *group) {
	ix.structMu.Lock()
	defer ix.structMu.Unlock()
	g.mu.Lock()
	if g.sealed || len(g.delta) == 0 {
		g.mu.Unlock()
		return
	}
	keys, vals := mergeBaseDelta(g.keys, g.vals, g.delta)
	if len(keys) <= 2*ix.groupSize {
		g.keys, g.vals = keys, vals
		g.delta = nil
		g.retrain()
		g.mu.Unlock()
		ix.Compactions.Add(1)
		ix.hook.Emit(obs.EvCompaction, len(keys), "in-place")
		ix.hook.Emit(obs.EvRetrain, len(keys), "group")
		return
	}
	// Split into chunks of groupSize under the structure lock.
	g.sealed = true
	g.mu.Unlock()
	ix.Compactions.Add(1)
	ix.hook.Emit(obs.EvCompaction, len(keys), "split")
	old := ix.root.Load()
	var newGroups []*group
	var newPivots []core.Key
	gi := -1 // index of g in the old root, by identity
	for i, og := range old.groups {
		if og == g {
			gi = i
			break
		}
	}
	for i, og := range old.groups {
		if i == gi {
			for s := 0; s < len(keys); s += ix.groupSize {
				e := s + ix.groupSize
				if e > len(keys) {
					e = len(keys)
				}
				ng := newGroup(keys[s:e], vals[s:e])
				piv := keys[s]
				if s == 0 {
					piv = old.pivots[i]
				}
				newGroups = append(newGroups, ng)
				newPivots = append(newPivots, piv)
			}
			continue
		}
		newGroups = append(newGroups, og)
		newPivots = append(newPivots, old.pivots[i])
	}
	ix.root.Store(buildRoot(newGroups, newPivots))
	ix.hook.Emit(obs.EvRCUSwap, len(newGroups), "split")
}

// mergeBaseDelta merges a sorted base with a sorted delta, dropping dead
// records; delta wins on duplicates.
func mergeBaseDelta(keys []core.Key, vals []core.Value, delta []deltaRec) ([]core.Key, []core.Value) {
	outK := make([]core.Key, 0, len(keys)+len(delta))
	outV := make([]core.Value, 0, len(keys)+len(delta))
	i, j := 0, 0
	for i < len(keys) || j < len(delta) {
		var useDelta bool
		switch {
		case i >= len(keys):
			useDelta = true
		case j >= len(delta):
			useDelta = false
		case delta[j].key < keys[i]:
			useDelta = true
		case delta[j].key > keys[i]:
			useDelta = false
		default:
			i++ // shadowed base record
			useDelta = true
		}
		if useDelta {
			if !delta[j].dead {
				outK = append(outK, delta[j].key)
				outV = append(outV, delta[j].val)
			}
			j++
		} else {
			outK = append(outK, keys[i])
			outV = append(outV, vals[i])
			i++
		}
	}
	return outK, outV
}

// Range calls fn for live records with lo <= key <= hi ascending; fn
// returning false stops. The scan takes a consistent per-group snapshot
// (group lock held while that group is scanned). Returns records visited.
func (ix *Index) Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	r := ix.root.Load()
	count := 0
	for gi := r.route(lo); gi < len(r.groups); gi++ {
		g := r.groups[gi]
		g.mu.RLock()
		i := g.lowerIdx(lo)
		j, _ := g.deltaFind(lo)
		stop := false
		for i < len(g.keys) || j < len(g.delta) {
			var k core.Key
			var v core.Value
			var dead bool
			switch {
			case i >= len(g.keys):
				k, v, dead = g.delta[j].key, g.delta[j].val, g.delta[j].dead
				j++
			case j >= len(g.delta):
				k, v = g.keys[i], g.vals[i]
				i++
			case g.delta[j].key <= g.keys[i]:
				k, v, dead = g.delta[j].key, g.delta[j].val, g.delta[j].dead
				if g.delta[j].key == g.keys[i] {
					i++
				}
				j++
			default:
				k, v = g.keys[i], g.vals[i]
				i++
			}
			if k > hi {
				stop = true
				break
			}
			if dead {
				continue
			}
			count++
			if !fn(k, v) {
				stop = true
				break
			}
		}
		g.mu.RUnlock()
		if stop {
			break
		}
	}
	return count
}

// Compact forces compaction of every group (test/maintenance hook; the
// production trigger is the delta capacity).
func (ix *Index) Compact() {
	r := ix.root.Load()
	for _, g := range r.groups {
		ix.compact(g)
	}
}

// Stats reports structure statistics.
func (ix *Index) Stats() core.Stats {
	r := ix.root.Load()
	var baseRecs, deltaRecs int
	for _, g := range r.groups {
		g.mu.RLock()
		baseRecs += len(g.keys)
		deltaRecs += len(g.delta)
		g.mu.RUnlock()
	}
	return core.Stats{
		Name:       "xindex",
		Count:      ix.Len(),
		IndexBytes: len(r.groups)*64 + deltaRecs*17,
		DataBytes:  baseRecs * 16,
		Height:     2,
		Models:     len(r.groups) + 1,
	}
}
