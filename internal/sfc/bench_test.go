package sfc

import "testing"

func BenchmarkMortonEncode2D(b *testing.B) {
	m, _ := NewMorton(2, 20)
	coords := []uint32{123456, 654321}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += m.Encode(coords)
	}
	_ = sink
}

func BenchmarkHilbertEncode(b *testing.B) {
	h, _ := NewHilbert2D(20)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += h.Encode(123456, 654321)
	}
	_ = sink
}

func BenchmarkMortonRanges(b *testing.B) {
	m, _ := NewMorton(2, 20)
	min := []uint32{10000, 20000}
	max := []uint32{30000, 25000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ivs := m.Ranges(min, max, 128); len(ivs) == 0 {
			b.Fatal("no intervals")
		}
	}
}
