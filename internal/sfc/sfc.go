// Package sfc implements space-filling curves — Z-order (Morton) for any
// dimensionality and the Hilbert curve for two dimensions — together with
// the quantization and range-decomposition machinery that projection-based
// learned multi-dimensional indexes (Approach 2 in the paper: ZM-index,
// LISA-style mappings) are built on.
//
// A curve maps a d-dimensional grid cell to a one-dimensional code; range
// queries decompose a query rectangle into a small set of code intervals
// that together cover exactly the cells intersecting the rectangle.
package sfc

import (
	"fmt"

	"github.com/lix-go/lix/internal/core"
)

// Quantizer maps float64 coordinates in a bounding box to grid cells of
// 2^bits cells per dimension.
type Quantizer struct {
	Min, Max []float64
	Bits     uint // bits per dimension
}

// NewQuantizer builds a quantizer over the given bounds. bits*dims must not
// exceed 63 so codes fit in a uint64 with a sign bit to spare.
func NewQuantizer(min, max []float64, bits uint) (*Quantizer, error) {
	if len(min) != len(max) || len(min) == 0 {
		return nil, fmt.Errorf("sfc: bad bounds dims %d/%d", len(min), len(max))
	}
	if bits == 0 || bits*uint(len(min)) > 63 {
		return nil, fmt.Errorf("sfc: bits=%d dims=%d exceeds 63 code bits", bits, len(min))
	}
	for i := range min {
		if !(min[i] < max[i]) {
			return nil, fmt.Errorf("sfc: empty bound in dim %d", i)
		}
	}
	return &Quantizer{Min: append([]float64(nil), min...), Max: append([]float64(nil), max...), Bits: bits}, nil
}

// Cells returns the number of cells per dimension.
func (q *Quantizer) Cells() uint64 { return 1 << q.Bits }

// Cell quantizes one coordinate in dimension d, clamping out-of-bounds
// values to the edge cells.
func (q *Quantizer) Cell(d int, v float64) uint32 {
	frac := (v - q.Min[d]) / (q.Max[d] - q.Min[d])
	c := int64(frac * float64(q.Cells()))
	if c < 0 {
		c = 0
	}
	if c >= int64(q.Cells()) {
		c = int64(q.Cells()) - 1
	}
	return uint32(c)
}

// CellPoint quantizes a full point.
func (q *Quantizer) CellPoint(p core.Point) []uint32 {
	out := make([]uint32, len(p))
	for d := range p {
		out[d] = q.Cell(d, p[d])
	}
	return out
}

// CellLo returns the lowest coordinate value mapping into cell c of dim d.
func (q *Quantizer) CellLo(d int, c uint32) float64 {
	return q.Min[d] + float64(c)/float64(q.Cells())*(q.Max[d]-q.Min[d])
}

// ---------------------------------------------------------------------------
// Morton (Z-order) curve
// ---------------------------------------------------------------------------

// Morton interleaves the bits of d coordinates, bits per dimension, into a
// single code. Dimension 0 contributes the highest bit of each group.
type Morton struct {
	Dims int
	Bits uint
}

// NewMorton validates and returns a Morton curve.
func NewMorton(dims int, bits uint) (*Morton, error) {
	if dims < 1 || bits == 0 || bits*uint(dims) > 63 {
		return nil, fmt.Errorf("sfc: invalid morton dims=%d bits=%d", dims, bits)
	}
	return &Morton{Dims: dims, Bits: bits}, nil
}

// Encode interleaves coords (one per dimension, each < 2^Bits) into a code.
func (m *Morton) Encode(coords []uint32) uint64 {
	var z uint64
	for b := int(m.Bits) - 1; b >= 0; b-- {
		for d := 0; d < m.Dims; d++ {
			z = (z << 1) | uint64((coords[d]>>uint(b))&1)
		}
	}
	return z
}

// Decode splits code z back into coordinates.
func (m *Morton) Decode(z uint64) []uint32 {
	coords := make([]uint32, m.Dims)
	m.DecodeInto(z, coords)
	return coords
}

// DecodeInto splits code z into the provided slice.
func (m *Morton) DecodeInto(z uint64, coords []uint32) {
	for d := range coords {
		coords[d] = 0
	}
	shift := int(m.Bits)*m.Dims - 1
	for b := int(m.Bits) - 1; b >= 0; b-- {
		for d := 0; d < m.Dims; d++ {
			coords[d] |= uint32((z>>uint(shift))&1) << uint(b)
			shift--
		}
	}
}

// MaxCode returns the largest representable code.
func (m *Morton) MaxCode() uint64 {
	return (uint64(1) << (m.Bits * uint(m.Dims))) - 1
}

// Interval is an inclusive range of curve codes.
type Interval struct {
	Lo, Hi uint64
}

// Ranges decomposes the cell-space rectangle [min[d], max[d]] (inclusive
// cell coordinates per dimension) into at most maxRanges code intervals
// whose union covers every cell in the rectangle. Intervals may
// over-approximate (cover cells outside the rectangle) when the budget is
// too small for an exact decomposition; callers filter by decoding.
func (m *Morton) Ranges(min, max []uint32, maxRanges int) []Interval {
	if maxRanges < 1 {
		maxRanges = 1
	}
	var out []Interval
	// Recursive octant walk over the implicit 2^d-ary partition of code
	// space. Each node is the code prefix interval [lo, hi] of an aligned
	// hypercube with side 2^level cells, whose corner cell coords are c.
	var walk func(lo uint64, level uint, c []uint32, budget *int)
	walk = func(lo uint64, level uint, c []uint32, budget *int) {
		size := uint64(1) << (level * uint(m.Dims)) // codes in this cube
		hi := lo + size - 1
		side := uint32(1)<<level - 1
		// Disjoint?
		for d := 0; d < m.Dims; d++ {
			if c[d] > max[d] || c[d]+side < min[d] {
				return
			}
		}
		// Fully contained?
		contained := true
		for d := 0; d < m.Dims; d++ {
			if c[d] < min[d] || c[d]+side > max[d] {
				contained = false
				break
			}
		}
		if contained || level == 0 || *budget <= 1 {
			// Emit, merging with the previous interval when adjacent.
			if n := len(out); n > 0 && out[n-1].Hi+1 == lo {
				out[n-1].Hi = hi
			} else {
				out = append(out, Interval{lo, hi})
				*budget--
			}
			return
		}
		// Recurse into 2^d children in Z-order.
		childSize := size >> uint(m.Dims)
		half := uint32(1) << (level - 1)
		child := make([]uint32, m.Dims)
		for i := uint64(0); i < 1<<uint(m.Dims); i++ {
			for d := 0; d < m.Dims; d++ {
				child[d] = c[d]
				// Bit (Dims-1-d) of i selects the upper half of dim d so
				// that dimension 0 owns the most significant bit, matching
				// Encode.
				if i>>(uint(m.Dims)-1-uint(d))&1 == 1 {
					child[d] += half
				}
			}
			walk(lo+i*childSize, level-1, child, budget)
		}
	}
	budget := maxRanges
	corner := make([]uint32, m.Dims)
	walk(0, m.Bits, corner, &budget)
	return coalesce(out, maxRanges)
}

// coalesce merges intervals across the smallest code gaps until at most
// maxRanges remain. The result covers a superset of the input, so callers
// that filter decoded cells stay exact.
func coalesce(ivs []Interval, maxRanges int) []Interval {
	for len(ivs) > maxRanges {
		// Find the adjacent pair with the smallest gap and merge it.
		best := 1
		bestGap := ivs[1].Lo - ivs[0].Hi
		for i := 2; i < len(ivs); i++ {
			if g := ivs[i].Lo - ivs[i-1].Hi; g < bestGap {
				best, bestGap = i, g
			}
		}
		ivs[best-1].Hi = ivs[best].Hi
		ivs = append(ivs[:best], ivs[best+1:]...)
	}
	return ivs
}

// ContainsCell reports whether decoded cell coords lie in [min, max].
func ContainsCell(coords, min, max []uint32) bool {
	for d := range coords {
		if coords[d] < min[d] || coords[d] > max[d] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Hilbert curve (2-D)
// ---------------------------------------------------------------------------

// Hilbert2D maps 2-D grid cells to Hilbert curve positions. Unlike Z-order,
// consecutive codes are always adjacent cells, which reduces the number of
// intervals a range query decomposes into.
type Hilbert2D struct {
	Bits uint
}

// NewHilbert2D validates and returns a Hilbert curve with bits per
// dimension (2*bits <= 62).
func NewHilbert2D(bits uint) (*Hilbert2D, error) {
	if bits == 0 || bits > 31 {
		return nil, fmt.Errorf("sfc: invalid hilbert bits=%d", bits)
	}
	return &Hilbert2D{Bits: bits}, nil
}

// Encode maps cell (x, y) to its Hilbert index.
func (h *Hilbert2D) Encode(x, y uint32) uint64 {
	var rx, ry uint32
	var d uint64
	n := uint32(1) << h.Bits
	for s := n / 2; s > 0; s /= 2 {
		if x&s > 0 {
			rx = 1
		} else {
			rx = 0
		}
		if y&s > 0 {
			ry = 1
		} else {
			ry = 0
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}

// Decode maps a Hilbert index back to cell (x, y).
func (h *Hilbert2D) Decode(d uint64) (x, y uint32) {
	var rx, ry uint32
	t := d
	n := uint64(1) << h.Bits
	for s := uint64(1); s < n; s *= 2 {
		rx = uint32(1 & (t / 2))
		ry = uint32(1 & (t ^ uint64(rx)))
		// Rotate.
		if ry == 0 {
			if rx == 1 {
				x = uint32(s) - 1 - x
				y = uint32(s) - 1 - y
			}
			x, y = y, x
		}
		x += uint32(s) * rx
		y += uint32(s) * ry
		t /= 4
	}
	return x, y
}

// MaxCode returns the largest representable Hilbert index.
func (h *Hilbert2D) MaxCode() uint64 { return (uint64(1) << (2 * h.Bits)) - 1 }

// Ranges decomposes the rectangle [min, max] (inclusive cell coords) into
// at most maxRanges Hilbert index intervals covering it, by the same
// quadrant recursion as Morton.Ranges.
func (h *Hilbert2D) Ranges(min, max [2]uint32, maxRanges int) []Interval {
	if maxRanges < 1 {
		maxRanges = 1
	}
	type cube struct {
		x, y  uint32
		level uint
	}
	var out []Interval
	var walk func(c cube, budget *int)
	walk = func(c cube, budget *int) {
		side := uint32(1)<<c.level - 1
		if c.x > max[0] || c.x+side < min[0] || c.y > max[1] || c.y+side < min[1] {
			return
		}
		contained := c.x >= min[0] && c.x+side <= max[0] && c.y >= min[1] && c.y+side <= max[1]
		if contained || c.level == 0 || *budget <= 1 {
			// Hilbert codes of an aligned quadrant form a contiguous
			// interval; compute it from the corner cells' codes: the min
			// and max code in the cube are attained at some corner-ordered
			// positions, but since the cube is a single Hilbert subtree,
			// codes span exactly size^2 consecutive values starting at the
			// minimum corner code among cells. Compute via entry cell.
			lo := h.cubeStart(c.x, c.y, c.level)
			size := uint64(1) << (2 * c.level)
			hi := lo + size - 1
			if n := len(out); n > 0 && out[n-1].Hi+1 == lo {
				out[n-1].Hi = hi
			} else {
				out = append(out, Interval{lo, hi})
				*budget--
			}
			return
		}
		half := uint32(1) << (c.level - 1)
		children := [4]cube{
			{c.x, c.y, c.level - 1},
			{c.x + half, c.y, c.level - 1},
			{c.x, c.y + half, c.level - 1},
			{c.x + half, c.y + half, c.level - 1},
		}
		// Visit children in Hilbert code order so adjacent intervals merge.
		starts := make([]uint64, 4)
		for i, ch := range children {
			starts[i] = h.cubeStart(ch.x, ch.y, ch.level)
		}
		order := [4]int{0, 1, 2, 3}
		for i := 1; i < 4; i++ {
			for j := i; j > 0 && starts[order[j]] < starts[order[j-1]]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		for _, i := range order {
			walk(children[i], budget)
		}
	}
	budget := maxRanges
	walk(cube{0, 0, h.Bits}, &budget)
	// The recursion emits in code order already.
	return coalesce(out, maxRanges)
}

// cubeStart returns the smallest Hilbert code inside the aligned cube with
// corner (x, y) and side 2^level. Because an aligned cube is a complete
// subtree of the Hilbert recursion, its codes are the 4^level consecutive
// values starting at floor(code(any corner cell) / 4^level) * 4^level.
func (h *Hilbert2D) cubeStart(x, y uint32, level uint) uint64 {
	code := h.Encode(x, y)
	size := uint64(1) << (2 * level)
	return code / size * size
}

// ---------------------------------------------------------------------------
// Convenience: project float points through quantizer + curve
// ---------------------------------------------------------------------------

// Curve is a space-filling curve over quantized cells.
type Curve interface {
	// Code maps quantized cell coordinates to a 1-D code.
	Code(coords []uint32) uint64
	// Cell inverts Code.
	Cell(code uint64) []uint32
	// Max returns the largest representable code.
	Max() uint64
}

// MortonCurve adapts Morton to the Curve interface.
type MortonCurve struct{ *Morton }

// Code implements Curve.
func (c MortonCurve) Code(coords []uint32) uint64 { return c.Encode(coords) }

// Cell implements Curve.
func (c MortonCurve) Cell(code uint64) []uint32 { return c.Decode(code) }

// Max implements Curve.
func (c MortonCurve) Max() uint64 { return c.MaxCode() }

// HilbertCurve adapts Hilbert2D to the Curve interface.
type HilbertCurve struct{ *Hilbert2D }

// Code implements Curve.
func (c HilbertCurve) Code(coords []uint32) uint64 { return c.Encode(coords[0], coords[1]) }

// Cell implements Curve.
func (c HilbertCurve) Cell(code uint64) []uint32 {
	x, y := c.Decode(code)
	return []uint32{x, y}
}

// Max implements Curve.
func (c HilbertCurve) Max() uint64 { return c.MaxCode() }

// CodePoint quantizes p and encodes it on the curve.
func CodePoint(q *Quantizer, c Curve, p core.Point) uint64 {
	return c.Code(q.CellPoint(p))
}

// Dist2D is a helper for tests: Chebyshev distance between two cells.
func Dist2D(a, b []uint32) uint32 {
	var m uint32
	for d := range a {
		var diff uint32
		if a[d] > b[d] {
			diff = a[d] - b[d]
		} else {
			diff = b[d] - a[d]
		}
		if diff > m {
			m = diff
		}
	}
	return m
}
