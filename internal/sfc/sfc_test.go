package sfc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lix-go/lix/internal/core"
)

func TestQuantizer(t *testing.T) {
	q, err := NewQuantizer([]float64{0, 0}, []float64{100, 10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if q.Cells() != 16 {
		t.Fatalf("cells = %d", q.Cells())
	}
	if c := q.Cell(0, 0); c != 0 {
		t.Fatalf("Cell(0,0) = %d", c)
	}
	if c := q.Cell(0, 99.999); c != 15 {
		t.Fatalf("Cell(0,99.999) = %d", c)
	}
	// Clamping.
	if c := q.Cell(0, -5); c != 0 {
		t.Fatalf("clamp low = %d", c)
	}
	if c := q.Cell(0, 500); c != 15 {
		t.Fatalf("clamp high = %d", c)
	}
	cp := q.CellPoint(core.Point{50, 5})
	if cp[0] != 8 || cp[1] != 8 {
		t.Fatalf("CellPoint = %v", cp)
	}
	if lo := q.CellLo(0, 8); lo != 50 {
		t.Fatalf("CellLo = %g", lo)
	}
}

func TestQuantizerErrors(t *testing.T) {
	if _, err := NewQuantizer([]float64{0}, []float64{1, 2}, 4); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := NewQuantizer(nil, nil, 4); err == nil {
		t.Fatal("empty bounds accepted")
	}
	if _, err := NewQuantizer([]float64{0, 0}, []float64{1, 1}, 32); err == nil {
		t.Fatal("64-bit code accepted")
	}
	if _, err := NewQuantizer([]float64{1}, []float64{1}, 4); err == nil {
		t.Fatal("empty interval accepted")
	}
}

func TestMortonRoundTrip(t *testing.T) {
	for _, cfg := range []struct {
		dims int
		bits uint
	}{{2, 16}, {3, 10}, {4, 8}, {2, 31}} {
		m, err := NewMorton(cfg.dims, cfg.bits)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(int64(cfg.dims)))
		for i := 0; i < 500; i++ {
			coords := make([]uint32, cfg.dims)
			for d := range coords {
				coords[d] = uint32(r.Int63n(1 << cfg.bits))
			}
			z := m.Encode(coords)
			if z > m.MaxCode() {
				t.Fatalf("code %d exceeds max %d", z, m.MaxCode())
			}
			back := m.Decode(z)
			for d := range coords {
				if back[d] != coords[d] {
					t.Fatalf("roundtrip %v -> %d -> %v", coords, z, back)
				}
			}
		}
	}
	if _, err := NewMorton(0, 8); err == nil {
		t.Fatal("0 dims accepted")
	}
	if _, err := NewMorton(2, 32); err == nil {
		t.Fatal("oversized accepted")
	}
}

func TestMortonOrderIsZOrder(t *testing.T) {
	// Classic 2x2 Z shape with dim0 as most significant:
	// (0,0)=0 (0,1)=1 (1,0)=2 (1,1)=3.
	m, _ := NewMorton(2, 1)
	got := []uint64{
		m.Encode([]uint32{0, 0}), m.Encode([]uint32{0, 1}),
		m.Encode([]uint32{1, 0}), m.Encode([]uint32{1, 1}),
	}
	for i, want := range []uint64{0, 1, 2, 3} {
		if got[i] != want {
			t.Fatalf("z order = %v", got)
		}
	}
}

func TestMortonMonotoneInPrefix(t *testing.T) {
	// Increasing one coordinate with the other at 0 increases the code.
	m, _ := NewMorton(2, 8)
	prev := uint64(0)
	for x := uint32(1); x < 256; x++ {
		z := m.Encode([]uint32{x, 0})
		if z <= prev {
			t.Fatalf("not monotone at x=%d", x)
		}
		prev = z
	}
}

// rangesCoverExactly checks that the decomposition covers every cell in the
// rect and, when exact, no cell outside.
func checkRanges(t *testing.T, m *Morton, min, max []uint32, ivs []Interval, exact bool) {
	t.Helper()
	// Intervals must be sorted and non-overlapping.
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Lo <= ivs[i-1].Hi {
			t.Fatalf("intervals overlap or unsorted: %v", ivs)
		}
	}
	inIv := func(z uint64) bool {
		for _, iv := range ivs {
			if z >= iv.Lo && z <= iv.Hi {
				return true
			}
		}
		return false
	}
	// Every cell in the rect must be covered.
	coords := make([]uint32, m.Dims)
	var rec func(d int)
	var missing int
	rec = func(d int) {
		if d == m.Dims {
			if !inIv(m.Encode(coords)) {
				missing++
			}
			return
		}
		for c := min[d]; c <= max[d]; c++ {
			coords[d] = c
			rec(d + 1)
		}
	}
	rec(0)
	if missing > 0 {
		t.Fatalf("%d cells uncovered", missing)
	}
	if exact {
		// No interval point decodes outside the rect.
		for _, iv := range ivs {
			for z := iv.Lo; z <= iv.Hi; z++ {
				if !ContainsCell(m.Decode(z), min, max) {
					t.Fatalf("code %d decodes outside rect", z)
				}
			}
		}
	}
}

func TestMortonRangesExact(t *testing.T) {
	m, _ := NewMorton(2, 5) // 32x32 grid
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		x0, y0 := uint32(r.Intn(32)), uint32(r.Intn(32))
		x1, y1 := x0+uint32(r.Intn(int(32-x0))), y0+uint32(r.Intn(int(32-y0)))
		min := []uint32{x0, y0}
		max := []uint32{x1, y1}
		ivs := m.Ranges(min, max, 1<<20) // effectively unlimited budget
		checkRanges(t, m, min, max, ivs, true)
	}
}

func TestMortonRangesBudget(t *testing.T) {
	m, _ := NewMorton(2, 6)
	min := []uint32{3, 5}
	max := []uint32{40, 33}
	for _, budget := range []int{1, 2, 4, 8} {
		ivs := m.Ranges(min, max, budget)
		if len(ivs) > budget {
			t.Fatalf("budget %d produced %d intervals", budget, len(ivs))
		}
		checkRanges(t, m, min, max, ivs, false)
	}
}

func TestMortonRanges3D(t *testing.T) {
	m, _ := NewMorton(3, 4)
	min := []uint32{1, 2, 3}
	max := []uint32{9, 11, 7}
	ivs := m.Ranges(min, max, 1<<20)
	checkRanges(t, m, min, max, ivs, true)
}

func TestHilbertRoundTrip(t *testing.T) {
	h, err := NewHilbert2D(8)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for x := uint32(0); x < 256; x += 3 {
		for y := uint32(0); y < 256; y += 3 {
			d := h.Encode(x, y)
			if d > h.MaxCode() {
				t.Fatalf("code %d > max", d)
			}
			if seen[d] {
				t.Fatalf("duplicate code %d", d)
			}
			seen[d] = true
			bx, by := h.Decode(d)
			if bx != x || by != y {
				t.Fatalf("roundtrip (%d,%d) -> %d -> (%d,%d)", x, y, d, bx, by)
			}
		}
	}
	if _, err := NewHilbert2D(0); err == nil {
		t.Fatal("0 bits accepted")
	}
	if _, err := NewHilbert2D(32); err == nil {
		t.Fatal("32 bits accepted")
	}
}

func TestHilbertAdjacency(t *testing.T) {
	// The defining property: consecutive codes are adjacent cells
	// (Chebyshev distance 1 in 4-neighborhood -> Manhattan distance 1).
	h, _ := NewHilbert2D(5)
	px, py := h.Decode(0)
	for d := uint64(1); d <= h.MaxCode(); d++ {
		x, y := h.Decode(d)
		manhattan := abs32(x, px) + abs32(y, py)
		if manhattan != 1 {
			t.Fatalf("codes %d,%d map to non-adjacent cells (%d,%d)-(%d,%d)", d-1, d, px, py, x, y)
		}
		px, py = x, y
	}
}

func abs32(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestHilbertRanges(t *testing.T) {
	h, _ := NewHilbert2D(5)
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 30; i++ {
		x0, y0 := uint32(r.Intn(32)), uint32(r.Intn(32))
		x1, y1 := x0+uint32(r.Intn(int(32-x0))), y0+uint32(r.Intn(int(32-y0)))
		ivs := h.Ranges([2]uint32{x0, y0}, [2]uint32{x1, y1}, 1<<20)
		for j := 1; j < len(ivs); j++ {
			if ivs[j].Lo <= ivs[j-1].Hi {
				t.Fatalf("hilbert intervals overlap: %v", ivs)
			}
		}
		inIv := func(d uint64) bool {
			for _, iv := range ivs {
				if d >= iv.Lo && d <= iv.Hi {
					return true
				}
			}
			return false
		}
		for x := x0; x <= x1; x++ {
			for y := y0; y <= y1; y++ {
				if !inIv(h.Encode(x, y)) {
					t.Fatalf("cell (%d,%d) uncovered", x, y)
				}
			}
		}
		// Exactness.
		for _, iv := range ivs {
			for d := iv.Lo; d <= iv.Hi; d++ {
				x, y := h.Decode(d)
				if x < x0 || x > x1 || y < y0 || y > y1 {
					t.Fatalf("code %d decodes outside rect", d)
				}
			}
		}
	}
}

func TestHilbertFewerRangesThanMorton(t *testing.T) {
	// Hilbert's locality should give no more intervals than Z-order for
	// typical window queries; verify on a batch.
	h, _ := NewHilbert2D(6)
	m, _ := NewMorton(2, 6)
	r := rand.New(rand.NewSource(8))
	hTotal, mTotal := 0, 0
	for i := 0; i < 40; i++ {
		x0, y0 := uint32(r.Intn(48)), uint32(r.Intn(48))
		x1, y1 := x0+uint32(r.Intn(16)), y0+uint32(r.Intn(16))
		hTotal += len(h.Ranges([2]uint32{x0, y0}, [2]uint32{x1, y1}, 1<<20))
		mTotal += len(m.Ranges([]uint32{x0, y0}, []uint32{x1, y1}, 1<<20))
	}
	if hTotal > mTotal {
		t.Fatalf("hilbert intervals %d > morton %d in aggregate", hTotal, mTotal)
	}
}

func TestCurveAdapters(t *testing.T) {
	m, _ := NewMorton(2, 8)
	h, _ := NewHilbert2D(8)
	q, _ := NewQuantizer([]float64{0, 0}, []float64{1, 1}, 8)
	for _, c := range []Curve{MortonCurve{m}, HilbertCurve{h}} {
		p := core.Point{0.3, 0.7}
		code := CodePoint(q, c, p)
		if code > c.Max() {
			t.Fatalf("code out of range")
		}
		cell := c.Cell(code)
		want := q.CellPoint(p)
		if cell[0] != want[0] || cell[1] != want[1] {
			t.Fatalf("adapter cell %v != %v", cell, want)
		}
	}
}

// Property: Morton encode/decode are inverse for random input.
func TestMortonProperty(t *testing.T) {
	m, _ := NewMorton(3, 12)
	f := func(a, b, c uint32) bool {
		coords := []uint32{a & 0xfff, b & 0xfff, c & 0xfff}
		back := m.Decode(m.Encode(coords))
		return back[0] == coords[0] && back[1] == coords[1] && back[2] == coords[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDist2D(t *testing.T) {
	if Dist2D([]uint32{3, 9}, []uint32{5, 4}) != 5 {
		t.Fatal("Dist2D wrong")
	}
}
