// Package btree implements an in-memory B+-tree over uint64 keys. It is the
// traditional baseline that the learned one-dimensional indexes in this
// library are measured against (the role the B-tree plays in the RMI paper),
// and the traditional component of the hybrid learned indexes.
//
// The tree stores records in sorted leaves linked for range scans; interior
// nodes hold separator keys. Inserts are upserts; deletes rebalance by
// borrowing or merging. Bulk loading from sorted input builds packed leaves
// bottom-up.
package btree

import (
	"fmt"

	"github.com/lix-go/lix/internal/core"
)

// DefaultOrder is the default maximum number of keys per node. 64-key nodes
// fill two cache lines of keys, the conventional in-memory sweet spot.
const DefaultOrder = 64

// Tree is an in-memory B+-tree. The zero value is not usable; call New.
type Tree struct {
	order  int
	root   node
	size   int
	first  *leaf // leftmost leaf, for full scans
	interp bool  // interpolation search inside nodes (IFB-tree style)
}

// SetInterpolation toggles interpolation search inside nodes, the
// "interpolation-friendly B-tree" idea (Hadian & Heinis, 2019): instead of
// binary search, each node guesses the slot from the key's relative
// position between the node's first and last key and corrects with an
// exponential search. On smooth key distributions this makes the
// traditional B-tree competitive with learned indexes at zero model cost.
func (t *Tree) SetInterpolation(on bool) { t.interp = on }

type node interface {
	isNode()
}

type inner struct {
	keys     []core.Key // keys[i] is the smallest key in children[i+1]
	children []node
}

type leaf struct {
	keys []core.Key
	vals []core.Value
	next *leaf
}

func (*inner) isNode() {}
func (*leaf) isNode()  {}

// New returns an empty tree with the given order (maximum keys per node);
// order < 4 is raised to 4.
func New(order int) *Tree {
	if order < 4 {
		order = 4
	}
	lf := &leaf{}
	return &Tree{order: order, root: lf, first: lf}
}

// NewDefault returns an empty tree with DefaultOrder.
func NewDefault() *Tree { return New(DefaultOrder) }

// Bulk builds a tree from records sorted ascending by key (duplicate keys:
// the last one wins). It is O(n) and produces ~90% full leaves.
func Bulk(order int, recs []core.KV) (*Tree, error) {
	t := New(order)
	if len(recs) == 0 {
		return t, nil
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Key < recs[i-1].Key {
			return nil, fmt.Errorf("btree: bulk input not sorted at %d", i)
		}
	}
	fill := t.order * 9 / 10
	if fill < 2 {
		fill = 2
	}
	// Build leaves.
	var leaves []*leaf
	var firstKeys []core.Key
	i := 0
	for i < len(recs) {
		lf := &leaf{}
		for i < len(recs) && len(lf.keys) < fill {
			k := recs[i].Key
			if len(lf.keys) > 0 && lf.keys[len(lf.keys)-1] == k {
				lf.vals[len(lf.vals)-1] = recs[i].Value // duplicate: last wins
			} else {
				lf.keys = append(lf.keys, k)
				lf.vals = append(lf.vals, recs[i].Value)
				t.size++
			}
			i++
		}
		if len(leaves) > 0 {
			leaves[len(leaves)-1].next = lf
		}
		leaves = append(leaves, lf)
		firstKeys = append(firstKeys, lf.keys[0])
	}
	t.first = leaves[0]
	// Build interior levels bottom-up.
	level := make([]node, len(leaves))
	for j, lf := range leaves {
		level[j] = lf
	}
	keys := firstKeys
	for len(level) > 1 {
		var nextLevel []node
		var nextKeys []core.Key
		j := 0
		for j < len(level) {
			end := j + fill + 1
			if end > len(level) {
				end = len(level)
			}
			// Avoid a dangling 1-child node at the end by shrinking this
			// group so the final group has at least two children.
			if len(level)-end == 1 && end-j > 2 {
				end--
			}
			in := &inner{
				children: append([]node(nil), level[j:end]...),
				keys:     append([]core.Key(nil), keys[j+1:end]...),
			}
			nextLevel = append(nextLevel, in)
			nextKeys = append(nextKeys, keys[j])
			j = end
		}
		level = nextLevel
		keys = nextKeys
	}
	t.root = level[0]
	return t, nil
}

// Len returns the number of records.
func (t *Tree) Len() int { return t.size }

// Get returns the value for key k.
func (t *Tree) Get(k core.Key) (core.Value, bool) {
	lf := t.findLeaf(k)
	i := t.lowerBound(lf.keys, k)
	if i < len(lf.keys) && lf.keys[i] == k {
		return lf.vals[i], true
	}
	return 0, false
}

// lowerBound dispatches between binary and interpolation search.
func (t *Tree) lowerBound(keys []core.Key, k core.Key) int {
	if !t.interp || len(keys) < 8 {
		return core.LowerBound(keys, k)
	}
	return interpolationLowerBound(keys, k)
}

// interpolationLowerBound guesses the slot from the key's relative position
// in the node's key range, then corrects with an exponential search.
func interpolationLowerBound(keys []core.Key, k core.Key) int {
	n := len(keys)
	lo, hi := keys[0], keys[n-1]
	if k <= lo {
		return 0
	}
	if k > hi {
		return n
	}
	frac := float64(k-lo) / float64(hi-lo)
	guess := int(frac * float64(n-1))
	return core.ExponentialSearch(keys, k, guess)
}

func (t *Tree) findLeaf(k core.Key) *leaf {
	n := t.root
	for {
		switch v := n.(type) {
		case *leaf:
			return v
		case *inner:
			i := t.upperBound(v.keys, k)
			n = v.children[i]
		}
	}
}

// upperBound dispatches between binary and interpolation search for inner
// node routing (first child index whose subtree may contain k).
func (t *Tree) upperBound(keys []core.Key, k core.Key) int {
	if !t.interp || len(keys) < 8 {
		return core.UpperBound(keys, k)
	}
	i := interpolationLowerBound(keys, k)
	// Convert lower bound to upper bound: skip keys equal to k.
	for i < len(keys) && keys[i] == k {
		i++
	}
	return i
}

// Insert upserts (k, val). It returns true if a new key was added, false if
// an existing key was overwritten.
func (t *Tree) Insert(k core.Key, val core.Value) bool {
	added, splitKey, right := t.insert(t.root, k, val)
	if right != nil {
		t.root = &inner{keys: []core.Key{splitKey}, children: []node{t.root, right}}
	}
	if added {
		t.size++
	}
	return added
}

func (t *Tree) insert(n node, k core.Key, val core.Value) (added bool, splitKey core.Key, right node) {
	switch v := n.(type) {
	case *leaf:
		i := core.LowerBound(v.keys, k)
		if i < len(v.keys) && v.keys[i] == k {
			v.vals[i] = val
			return false, 0, nil
		}
		v.keys = append(v.keys, 0)
		copy(v.keys[i+1:], v.keys[i:])
		v.keys[i] = k
		v.vals = append(v.vals, 0)
		copy(v.vals[i+1:], v.vals[i:])
		v.vals[i] = val
		if len(v.keys) <= t.order {
			return true, 0, nil
		}
		// Split.
		mid := len(v.keys) / 2
		r := &leaf{
			keys: append([]core.Key(nil), v.keys[mid:]...),
			vals: append([]core.Value(nil), v.vals[mid:]...),
			next: v.next,
		}
		v.keys = v.keys[:mid:mid]
		v.vals = v.vals[:mid:mid]
		v.next = r
		return true, r.keys[0], r
	case *inner:
		i := core.UpperBound(v.keys, k)
		added, sk, rn := t.insert(v.children[i], k, val)
		if rn == nil {
			return added, 0, nil
		}
		v.keys = append(v.keys, 0)
		copy(v.keys[i+1:], v.keys[i:])
		v.keys[i] = sk
		v.children = append(v.children, nil)
		copy(v.children[i+2:], v.children[i+1:])
		v.children[i+1] = rn
		if len(v.keys) <= t.order {
			return added, 0, nil
		}
		mid := len(v.keys) / 2
		r := &inner{
			keys:     append([]core.Key(nil), v.keys[mid+1:]...),
			children: append([]node(nil), v.children[mid+1:]...),
		}
		sk = v.keys[mid]
		v.keys = v.keys[:mid:mid]
		v.children = v.children[: mid+1 : mid+1]
		return added, sk, r
	}
	panic("btree: unknown node type")
}

// Delete removes key k, returning true if it was present.
func (t *Tree) Delete(k core.Key) bool {
	deleted := t.delete(t.root, k)
	if deleted {
		t.size--
	}
	// Collapse a root inner node with a single child.
	if in, ok := t.root.(*inner); ok && len(in.children) == 1 {
		t.root = in.children[0]
	}
	return deleted
}

func (t *Tree) minKeys() int { return t.order / 2 }

// delete removes k from the subtree rooted at n; rebalancing of n's
// children is handled here so n can borrow/merge among them.
func (t *Tree) delete(n node, k core.Key) bool {
	switch v := n.(type) {
	case *leaf:
		i := core.LowerBound(v.keys, k)
		if i >= len(v.keys) || v.keys[i] != k {
			return false
		}
		v.keys = append(v.keys[:i], v.keys[i+1:]...)
		v.vals = append(v.vals[:i], v.vals[i+1:]...)
		return true
	case *inner:
		ci := core.UpperBound(v.keys, k)
		deleted := t.delete(v.children[ci], k)
		if !deleted {
			return false
		}
		t.rebalance(v, ci)
		return true
	}
	panic("btree: unknown node type")
}

// rebalance fixes child ci of parent p if it underflowed.
func (t *Tree) rebalance(p *inner, ci int) {
	min := t.minKeys()
	switch c := p.children[ci].(type) {
	case *leaf:
		if len(c.keys) >= min || len(p.children) == 1 {
			return
		}
		// Try borrowing from left sibling.
		if ci > 0 {
			l := p.children[ci-1].(*leaf)
			if len(l.keys) > min {
				last := len(l.keys) - 1
				c.keys = append([]core.Key{l.keys[last]}, c.keys...)
				c.vals = append([]core.Value{l.vals[last]}, c.vals...)
				l.keys = l.keys[:last]
				l.vals = l.vals[:last]
				p.keys[ci-1] = c.keys[0]
				return
			}
		}
		// Try borrowing from right sibling.
		if ci < len(p.children)-1 {
			r := p.children[ci+1].(*leaf)
			if len(r.keys) > min {
				c.keys = append(c.keys, r.keys[0])
				c.vals = append(c.vals, r.vals[0])
				r.keys = r.keys[1:]
				r.vals = r.vals[1:]
				p.keys[ci] = r.keys[0]
				return
			}
		}
		// Merge with a sibling.
		if ci > 0 {
			l := p.children[ci-1].(*leaf)
			l.keys = append(l.keys, c.keys...)
			l.vals = append(l.vals, c.vals...)
			l.next = c.next
			p.keys = append(p.keys[:ci-1], p.keys[ci:]...)
			p.children = append(p.children[:ci], p.children[ci+1:]...)
		} else {
			r := p.children[ci+1].(*leaf)
			c.keys = append(c.keys, r.keys...)
			c.vals = append(c.vals, r.vals...)
			c.next = r.next
			p.keys = append(p.keys[:ci], p.keys[ci+1:]...)
			p.children = append(p.children[:ci+1], p.children[ci+2:]...)
		}
	case *inner:
		if len(c.keys) >= min || len(p.children) == 1 {
			return
		}
		if ci > 0 {
			l := p.children[ci-1].(*inner)
			if len(l.keys) > min {
				last := len(l.keys) - 1
				c.keys = append([]core.Key{p.keys[ci-1]}, c.keys...)
				c.children = append([]node{l.children[last+1]}, c.children...)
				p.keys[ci-1] = l.keys[last]
				l.keys = l.keys[:last]
				l.children = l.children[:last+1]
				return
			}
		}
		if ci < len(p.children)-1 {
			r := p.children[ci+1].(*inner)
			if len(r.keys) > min {
				c.keys = append(c.keys, p.keys[ci])
				c.children = append(c.children, r.children[0])
				p.keys[ci] = r.keys[0]
				r.keys = r.keys[1:]
				r.children = r.children[1:]
				return
			}
		}
		if ci > 0 {
			l := p.children[ci-1].(*inner)
			l.keys = append(append(l.keys, p.keys[ci-1]), c.keys...)
			l.children = append(l.children, c.children...)
			p.keys = append(p.keys[:ci-1], p.keys[ci:]...)
			p.children = append(p.children[:ci], p.children[ci+1:]...)
		} else {
			r := p.children[ci+1].(*inner)
			c.keys = append(append(c.keys, p.keys[ci]), r.keys...)
			c.children = append(c.children, r.children...)
			p.keys = append(p.keys[:ci], p.keys[ci+1:]...)
			p.children = append(p.children[:ci+1], p.children[ci+2:]...)
		}
	}
}

// Range calls fn for every record with lo <= key <= hi in ascending order;
// fn returning false stops the scan. It returns the number of records
// visited.
func (t *Tree) Range(lo, hi core.Key, fn func(k core.Key, v core.Value) bool) int {
	lf := t.findLeaf(lo)
	count := 0
	for lf != nil {
		i := core.LowerBound(lf.keys, lo)
		for ; i < len(lf.keys); i++ {
			if lf.keys[i] > hi {
				return count
			}
			count++
			if !fn(lf.keys[i], lf.vals[i]) {
				return count
			}
		}
		lf = lf.next
	}
	return count
}

// Scan calls fn over all records in ascending key order.
func (t *Tree) Scan(fn func(k core.Key, v core.Value) bool) {
	for lf := t.first; lf != nil; lf = lf.next {
		for i := range lf.keys {
			if !fn(lf.keys[i], lf.vals[i]) {
				return
			}
		}
	}
}

// Height returns the number of levels (1 for a single leaf).
func (t *Tree) Height() int {
	h := 1
	n := t.root
	for {
		in, ok := n.(*inner)
		if !ok {
			return h
		}
		h++
		n = in.children[0]
	}
}

// Stats reports structure statistics.
func (t *Tree) Stats() core.Stats {
	var idxBytes, dataBytes, nodes int
	var walk func(n node)
	walk = func(n node) {
		nodes++
		switch v := n.(type) {
		case *leaf:
			dataBytes += 16 * len(v.keys)
			idxBytes += 24 // slice headers + next pointer, amortized
		case *inner:
			idxBytes += 8*len(v.keys) + 8*len(v.children) + 24
			for _, c := range v.children {
				walk(c)
			}
		}
	}
	walk(t.root)
	return core.Stats{
		Name:       "btree",
		Count:      t.size,
		IndexBytes: idxBytes,
		DataBytes:  dataBytes,
		Height:     t.Height(),
		Models:     nodes,
	}
}
