package btree

import (
	"fmt"

	"github.com/lix-go/lix/internal/core"
)

// CheckInvariants verifies the structural invariants of the B+-tree:
// separator keys route correctly (every key in children[i] is < keys[i] and
// every key in children[i+1] is >= keys[i] — deletes may leave a separator
// above the child minimum, so exact equality is not required), every node
// respects the order bound, leaves are strictly sorted and at uniform
// depth, the leaf chain starting at t.first enumerates exactly the tree's
// leaves in order with globally ascending keys, and size matches the record
// count. It is O(n) and intended for tests.
func (t *Tree) CheckInvariants() error {
	var chain []*leaf
	leafDepth := -1
	total := 0

	// walk validates the subtree at n, returning its key range (ok=false for
	// an empty subtree, only legal when the root is an empty leaf).
	var walk func(n node, depth int) (min, max core.Key, ok bool, err error)
	walk = func(n node, depth int) (core.Key, core.Key, bool, error) {
		switch v := n.(type) {
		case *leaf:
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				return 0, 0, false, fmt.Errorf("btree: leaf at depth %d, expected %d", depth, leafDepth)
			}
			if len(v.keys) != len(v.vals) {
				return 0, 0, false, fmt.Errorf("btree: leaf keys/vals mismatch %d != %d", len(v.keys), len(v.vals))
			}
			if len(v.keys) > t.order {
				return 0, 0, false, fmt.Errorf("btree: leaf holds %d keys > order %d", len(v.keys), t.order)
			}
			if depth > 0 && len(v.keys) == 0 {
				return 0, 0, false, fmt.Errorf("btree: empty non-root leaf")
			}
			for i := 1; i < len(v.keys); i++ {
				if v.keys[i] <= v.keys[i-1] {
					return 0, 0, false, fmt.Errorf("btree: leaf keys not strictly ascending at %d", i)
				}
			}
			chain = append(chain, v)
			total += len(v.keys)
			if len(v.keys) == 0 {
				return 0, 0, false, nil
			}
			return v.keys[0], v.keys[len(v.keys)-1], true, nil
		case *inner:
			if len(v.children) != len(v.keys)+1 {
				return 0, 0, false, fmt.Errorf("btree: inner has %d children for %d keys", len(v.children), len(v.keys))
			}
			if len(v.keys) == 0 {
				return 0, 0, false, fmt.Errorf("btree: inner node with no separator keys")
			}
			if len(v.keys) > t.order {
				return 0, 0, false, fmt.Errorf("btree: inner holds %d keys > order %d", len(v.keys), t.order)
			}
			for i := 1; i < len(v.keys); i++ {
				if v.keys[i] <= v.keys[i-1] {
					return 0, 0, false, fmt.Errorf("btree: inner keys not strictly ascending at %d", i)
				}
			}
			var lo, hi core.Key
			for ci, child := range v.children {
				cMin, cMax, ok, err := walk(child, depth+1)
				if err != nil {
					return 0, 0, false, err
				}
				if !ok {
					return 0, 0, false, fmt.Errorf("btree: empty subtree under inner node")
				}
				if ci > 0 && cMin < v.keys[ci-1] {
					return 0, 0, false, fmt.Errorf("btree: child %d min %d below separator %d", ci, cMin, v.keys[ci-1])
				}
				if ci < len(v.keys) && cMax >= v.keys[ci] {
					return 0, 0, false, fmt.Errorf("btree: child %d max %d not below separator %d", ci, cMax, v.keys[ci])
				}
				if ci == 0 {
					lo = cMin
				}
				hi = cMax
			}
			return lo, hi, true, nil
		}
		return 0, 0, false, fmt.Errorf("btree: unknown node type %T", n)
	}
	if _, _, _, err := walk(t.root, 0); err != nil {
		return err
	}
	if total != t.size {
		return fmt.Errorf("btree: size=%d but tree holds %d records", t.size, total)
	}
	// The next-pointer chain from t.first must visit exactly the leaves the
	// tree walk found, left to right, with globally ascending keys.
	lf := t.first
	var last core.Key
	seen := false
	for i := 0; ; i++ {
		if lf == nil {
			if i != len(chain) {
				return fmt.Errorf("btree: leaf chain has %d leaves, tree has %d", i, len(chain))
			}
			break
		}
		if i >= len(chain) || lf != chain[i] {
			return fmt.Errorf("btree: leaf chain diverges from tree order at leaf %d", i)
		}
		for _, k := range lf.keys {
			if seen && k <= last {
				return fmt.Errorf("btree: leaf chain keys not globally ascending at %d", k)
			}
			seen, last = true, k
		}
		lf = lf.next
	}
	return nil
}
