package btree

import (
	"testing"

	"github.com/lix-go/lix/internal/dataset"
)

func BenchmarkGet(b *testing.B) {
	keys, _ := dataset.Keys(dataset.Lognormal, 1<<20, 1)
	t, err := Bulk(DefaultOrder, dataset.KV(keys))
	if err != nil {
		b.Fatal(err)
	}
	probes := dataset.LookupMix(keys, 1<<16, 0.9, 2)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		v, _ := t.Get(probes[i&(1<<16-1)])
		sink += v
	}
	_ = sink
}

func BenchmarkGetInterpolated(b *testing.B) {
	keys, _ := dataset.Keys(dataset.Uniform, 1<<20, 1)
	t, err := Bulk(DefaultOrder, dataset.KV(keys))
	if err != nil {
		b.Fatal(err)
	}
	t.SetInterpolation(true)
	probes := dataset.LookupMix(keys, 1<<16, 0.9, 2)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		v, _ := t.Get(probes[i&(1<<16-1)])
		sink += v
	}
	_ = sink
}

func BenchmarkInsert(b *testing.B) {
	keys, _ := dataset.Keys(dataset.Uniform, 1<<18, 3)
	t := NewDefault()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(keys[i&(1<<18-1)], 1)
	}
}
