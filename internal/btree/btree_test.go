package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

func TestEmpty(t *testing.T) {
	tr := NewDefault()
	if tr.Len() != 0 {
		t.Fatal("empty len")
	}
	if _, ok := tr.Get(5); ok {
		t.Fatal("Get on empty")
	}
	if tr.Delete(5) {
		t.Fatal("Delete on empty")
	}
	if n := tr.Range(0, 100, func(core.Key, core.Value) bool { return true }); n != 0 {
		t.Fatal("Range on empty")
	}
	if tr.Height() != 1 {
		t.Fatalf("empty height %d", tr.Height())
	}
}

func TestInsertGetSmallOrder(t *testing.T) {
	tr := New(4) // force deep tree
	const n = 2000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		if !tr.Insert(core.Key(i*2), core.Value(i)) {
			t.Fatalf("Insert(%d) reported existing", i*2)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Get(core.Key(i * 2))
		if !ok || v != core.Value(i) {
			t.Fatalf("Get(%d) = %d,%v", i*2, v, ok)
		}
		if _, ok := tr.Get(core.Key(i*2 + 1)); ok {
			t.Fatalf("Get(%d) found phantom", i*2+1)
		}
	}
	if tr.Height() < 3 {
		t.Fatalf("height %d too small for order-4 with %d keys", tr.Height(), n)
	}
}

func TestUpsert(t *testing.T) {
	tr := NewDefault()
	tr.Insert(7, 1)
	if tr.Insert(7, 2) {
		t.Fatal("second insert of same key reported added")
	}
	if v, _ := tr.Get(7); v != 2 {
		t.Fatalf("upsert value = %d", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestBulkMatchesInserts(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Clustered, 20000, 2)
	recs := dataset.KV(keys)
	bt, err := Bulk(32, recs)
	if err != nil {
		t.Fatal(err)
	}
	if bt.Len() != len(recs) {
		t.Fatalf("bulk len = %d", bt.Len())
	}
	for i := 0; i < len(keys); i += 37 {
		v, ok := bt.Get(keys[i])
		if !ok || v != recs[i].Value {
			t.Fatalf("bulk Get(%d) = %d,%v", keys[i], v, ok)
		}
	}
	// Misses.
	for i := 0; i+1 < len(keys); i += 97 {
		if keys[i]+1 < keys[i+1] {
			if _, ok := bt.Get(keys[i] + 1); ok {
				t.Fatalf("bulk found phantom key")
			}
		}
	}
	// Scan returns everything in order.
	var got []core.Key
	bt.Scan(func(k core.Key, v core.Value) bool {
		got = append(got, k)
		return true
	})
	if len(got) != len(keys) {
		t.Fatalf("scan len = %d", len(got))
	}
	for i := range got {
		if got[i] != keys[i] {
			t.Fatalf("scan order broken at %d", i)
		}
	}
}

func TestBulkErrors(t *testing.T) {
	if _, err := Bulk(8, []core.KV{{Key: 5}, {Key: 3}}); err == nil {
		t.Fatal("unsorted bulk accepted")
	}
	bt, err := Bulk(8, nil)
	if err != nil || bt.Len() != 0 {
		t.Fatal("empty bulk failed")
	}
	// Duplicates: last wins.
	bt, err = Bulk(8, []core.KV{{Key: 1, Value: 10}, {Key: 1, Value: 20}, {Key: 2, Value: 30}})
	if err != nil {
		t.Fatal(err)
	}
	if bt.Len() != 2 {
		t.Fatalf("dup bulk len = %d", bt.Len())
	}
	if v, _ := bt.Get(1); v != 20 {
		t.Fatalf("dup bulk Get(1) = %d", v)
	}
}

func TestRange(t *testing.T) {
	tr := New(8)
	for i := 0; i < 1000; i++ {
		tr.Insert(core.Key(i*10), core.Value(i))
	}
	var got []core.Key
	n := tr.Range(95, 255, func(k core.Key, v core.Value) bool {
		got = append(got, k)
		return true
	})
	want := []core.Key{100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200, 210, 220, 230, 240, 250}
	if n != len(want) || len(got) != len(want) {
		t.Fatalf("range returned %d records: %v", n, got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Early stop.
	count := 0
	tr.Range(0, 1<<62, func(core.Key, core.Value) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
	// Inclusive single key.
	if n := tr.Range(500, 500, func(core.Key, core.Value) bool { return true }); n != 1 {
		t.Fatalf("point range = %d", n)
	}
}

func TestDelete(t *testing.T) {
	tr := New(4)
	const n = 3000
	r := rand.New(rand.NewSource(9))
	perm := r.Perm(n)
	for _, i := range perm {
		tr.Insert(core.Key(i), core.Value(i))
	}
	// Delete a random half.
	deleted := map[int]bool{}
	for _, i := range r.Perm(n)[:n/2] {
		if !tr.Delete(core.Key(i)) {
			t.Fatalf("Delete(%d) missed", i)
		}
		deleted[i] = true
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len after deletes = %d", tr.Len())
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Get(core.Key(i))
		if ok == deleted[i] {
			t.Fatalf("Get(%d) = %v, deleted = %v", i, ok, deleted[i])
		}
	}
	// Scan order still correct and linked leaves intact.
	prev := core.Key(0)
	first := true
	tr.Scan(func(k core.Key, v core.Value) bool {
		if !first && k <= prev {
			t.Fatalf("scan out of order: %d after %d", k, prev)
		}
		prev, first = k, false
		return true
	})
	// Delete everything else.
	for i := 0; i < n; i++ {
		if !deleted[i] {
			if !tr.Delete(core.Key(i)) {
				t.Fatalf("final Delete(%d) missed", i)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len after all deletes = %d", tr.Len())
	}
	if tr.Delete(0) {
		t.Fatal("Delete on drained tree succeeded")
	}
}

// Property: the tree agrees with a reference map under a random operation
// sequence.
func TestTreeMatchesMapProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(77))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New(4 + r.Intn(12))
		ref := map[core.Key]core.Value{}
		for op := 0; op < 3000; op++ {
			k := core.Key(r.Intn(500))
			switch r.Intn(3) {
			case 0:
				v := core.Value(r.Uint64())
				tr.Insert(k, v)
				ref[k] = v
			case 1:
				got := tr.Delete(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			case 2:
				v, ok := tr.Get(k)
				wv, wok := ref[k]
				if ok != wok || (ok && v != wv) {
					return false
				}
			}
			if tr.Len() != len(ref) {
				return false
			}
		}
		// Final full comparison via scan.
		keys := make([]core.Key, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		i := 0
		okAll := true
		tr.Scan(func(k core.Key, v core.Value) bool {
			if i >= len(keys) || keys[i] != k || ref[k] != v {
				okAll = false
				return false
			}
			i++
			return true
		})
		return okAll && i == len(keys)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Uniform, 10000, 3)
	bt, _ := Bulk(64, dataset.KV(keys))
	st := bt.Stats()
	if st.Count != 10000 || st.IndexBytes <= 0 || st.DataBytes <= 0 || st.Height < 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOrderClamp(t *testing.T) {
	tr := New(1)
	for i := 0; i < 100; i++ {
		tr.Insert(core.Key(i), 0)
	}
	if tr.Len() != 100 {
		t.Fatal("clamped order tree broken")
	}
}

func TestInterpolationSearchAgrees(t *testing.T) {
	for _, kind := range []dataset.Kind{dataset.Uniform, dataset.Lognormal, dataset.Adversarial} {
		keys, _ := dataset.Keys(kind, 20000, 91)
		recs := dataset.KV(keys)
		plain, err := Bulk(64, recs)
		if err != nil {
			t.Fatal(err)
		}
		interp, err := Bulk(64, recs)
		if err != nil {
			t.Fatal(err)
		}
		interp.SetInterpolation(true)
		probes, _ := dataset.Keys(dataset.Uniform, 5000, 92)
		for _, p := range append(probes, keys[:2000]...) {
			v1, ok1 := plain.Get(p)
			v2, ok2 := interp.Get(p)
			if ok1 != ok2 || v1 != v2 {
				t.Fatalf("%s: interpolation Get(%d) = %d,%v, binary %d,%v", kind, p, v2, ok2, v1, ok1)
			}
		}
		// Range agreement.
		for _, q := range dataset.Ranges(keys, 20, 0.005, 93) {
			n1 := plain.Range(q.Lo, q.Hi, func(core.Key, core.Value) bool { return true })
			n2 := interp.Range(q.Lo, q.Hi, func(core.Key, core.Value) bool { return true })
			if n1 != n2 {
				t.Fatalf("%s: range mismatch %d vs %d", kind, n1, n2)
			}
		}
	}
}

func TestInterpolationWithInserts(t *testing.T) {
	tr := New(32)
	tr.SetInterpolation(true)
	for i := 0; i < 10000; i++ {
		tr.Insert(core.Key(i*i), core.Value(i))
	}
	for i := 0; i < 10000; i++ {
		if v, ok := tr.Get(core.Key(i * i)); !ok || v != core.Value(i) {
			t.Fatalf("Get(%d) = %d,%v", i*i, v, ok)
		}
	}
}
