package serve_test

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	lix "github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/conform"
	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/serve"
	"github.com/lix-go/lix/internal/wire"
)

// startServer boots a server over store on an ephemeral port.
func startServer(t *testing.T, store serve.Store, cfg serve.Config) *serve.Server {
	t.Helper()
	if cfg.ErrorLog == nil {
		cfg.ErrorLog = io.Discard
	}
	s := serve.New(store, cfg)
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return s
}

// ---------------------------------------------------------------------------
// conform-backed differential e2e: the server IS an index
// ---------------------------------------------------------------------------

// netIndex adapts a live lixserve into conform.MutableIndex +
// conform.BatchIndex: every operation is a wire round-trip, concurrent
// goroutines draw connections from a pool, and Close drains the server.
// Running conform.CheckStress over it reuses the whole history-vs-oracle
// machinery — randomized concurrent writers with disjoint key sets,
// point/batch/range readers, sequential-oracle quiesce comparison and
// greedy shrinking — against the real network path.
type netIndex struct {
	addr string
	srv  *serve.Server

	mu   sync.Mutex
	free []*wire.Client
	all  []*wire.Client
}

func newNetIndex(srv *serve.Server) *netIndex {
	return &netIndex{addr: srv.Addr().String(), srv: srv}
}

func (n *netIndex) client() *wire.Client {
	n.mu.Lock()
	if k := len(n.free); k > 0 {
		c := n.free[k-1]
		n.free = n.free[:k-1]
		n.mu.Unlock()
		return c
	}
	n.mu.Unlock()
	c, err := wire.DialTimeout(n.addr, 10*time.Second)
	if err != nil {
		panic(fmt.Sprintf("e2e: dial %s: %v", n.addr, err))
	}
	n.mu.Lock()
	n.all = append(n.all, c)
	n.mu.Unlock()
	return c
}

func (n *netIndex) put(c *wire.Client) {
	n.mu.Lock()
	n.free = append(n.free, c)
	n.mu.Unlock()
}

func (n *netIndex) Get(k core.Key) (core.Value, bool) {
	c := n.client()
	defer n.put(c)
	v, ok, err := c.Get(k)
	if err != nil {
		panic(fmt.Sprintf("e2e: GET: %v", err))
	}
	return v, ok
}

func (n *netIndex) Insert(k core.Key, v core.Value) {
	c := n.client()
	defer n.put(c)
	if err := c.Set(k, v); err != nil {
		panic(fmt.Sprintf("e2e: SET: %v", err))
	}
}

func (n *netIndex) Delete(k core.Key) bool {
	c := n.client()
	defer n.put(c)
	ok, err := c.Del(k)
	if err != nil {
		panic(fmt.Sprintf("e2e: DEL: %v", err))
	}
	return ok
}

func (n *netIndex) LookupBatch(keys []core.Key) ([]core.Value, []bool) {
	c := n.client()
	defer n.put(c)
	vals, oks, err := c.MGet(keys)
	if err != nil {
		panic(fmt.Sprintf("e2e: MGET: %v", err))
	}
	return vals, oks
}

func (n *netIndex) InsertBatch(recs []core.KV) {
	c := n.client()
	defer n.put(c)
	if err := c.MSet(recs); err != nil {
		panic(fmt.Sprintf("e2e: MSET: %v", err))
	}
}

func (n *netIndex) Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	c := n.client()
	defer n.put(c)
	recs, err := c.Scan(lo, hi, 0)
	if err != nil {
		panic(fmt.Sprintf("e2e: SCAN: %v", err))
	}
	n.put(c) // release before user fn; double-put is fine, pool is a stack
	visited := 0
	for _, r := range recs {
		visited++
		if !fn(r.Key, r.Value) {
			break
		}
	}
	return visited
}

func (n *netIndex) Len() int {
	c := n.client()
	defer n.put(c)
	recs, err := c.Scan(0, ^core.Key(0), 0)
	if err != nil {
		panic(fmt.Sprintf("e2e: SCAN(len): %v", err))
	}
	return len(recs)
}

func (n *netIndex) Stats() core.Stats {
	return core.Stats{Name: "lixserve-client", Count: n.Len()}
}

func (n *netIndex) Close() error {
	n.mu.Lock()
	for _, c := range n.all {
		c.Close()
	}
	n.all, n.free = nil, nil
	n.mu.Unlock()
	return n.srv.Shutdown()
}

// TestE2EConformStress runs the conformance suite's concurrent stress
// tier — randomized disjoint-writer histories, concurrent point/batch/
// range readers, quiesced state differentially compared against the
// sequential oracle — where every operation crosses the wire into a
// sharded stack. Run under -race in CI's server job.
func TestE2EConformStress(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e stress skipped in -short")
	}
	cfg := conform.DefaultStressConfig()
	cfg.KeysPerWriter = 48
	cfg.OpsPerWriter = 150
	cfg.ShrinkBudget = 8 // each candidate boots a fresh server; keep shrinking cheap
	err := conform.CheckStress(func(init []core.KV) (conform.MutableIndex, error) {
		stack, err := lix.NewStack(init, lix.StackConfig{Shards: 4})
		if err != nil {
			return nil, err
		}
		srv := serve.New(stack, serve.Config{ErrorLog: io.Discard, CloseStore: true})
		if err := srv.Start(); err != nil {
			return nil, err
		}
		return newNetIndex(srv), nil
	}, cfg)
	if err != nil {
		t.Fatalf("conform stress over the wire: %v", err)
	}
}

// ---------------------------------------------------------------------------
// Pipelined mixed ops vs a sequential model
// ---------------------------------------------------------------------------

// TestE2EPipelinedMixedOps drives N concurrent connections, each issuing
// pipelined groups of mixed GET/SET/DEL/MGET/MSET/SCAN over its own key
// range, and checks every reply against a sequential in-process model:
// within a pipeline, each request must observe all earlier ones.
func TestE2EPipelinedMixedOps(t *testing.T) {
	stack, err := lix.NewStack(nil, lix.StackConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, stack, serve.Config{CloseStore: true})
	defer srv.Shutdown()

	const (
		conns  = 6
		groups = 40
		depth  = 24
		span   = 200 // keys per connection
	)
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for cid := 0; cid < conns; cid++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			if err := runPipelinedConn(srv.Addr().String(), cid, groups, depth, span); err != nil {
				errs <- fmt.Errorf("conn %d: %w", cid, err)
			}
		}(cid)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func runPipelinedConn(addr string, cid, groups, depth, span int) error {
	c, err := wire.DialTimeout(addr, 10*time.Second)
	if err != nil {
		return err
	}
	defer c.Close()
	base := core.Key(cid+1) * 1_000_000
	key := func(i int) core.Key { return base + core.Key(i) }
	model := map[core.Key]core.Value{}
	r := rand.New(rand.NewSource(int64(cid) * 7))

	reqs := make([]wire.Msg, 0, depth)
	expected := make([]wire.Msg, 0, depth)
	var reps []wire.Msg
	for g := 0; g < groups; g++ {
		reqs, expected = reqs[:0], expected[:0]
		// Build one pipelined group, computing each expected reply from
		// the model state *at that point in the pipeline*.
		for d := 0; d < depth; d++ {
			switch r.Intn(10) {
			case 0, 1, 2: // SET
				k, v := key(r.Intn(span)), core.Value(g*depth+d)
				model[k] = v
				reqs = append(reqs, wire.Msg{Op: wire.OpSet, Key: k, Val: v})
				expected = append(expected, wire.Msg{Op: wire.ROK})
			case 3: // DEL
				k := key(r.Intn(span))
				_, had := model[k]
				delete(model, k)
				reqs = append(reqs, wire.Msg{Op: wire.OpDel, Key: k})
				expected = append(expected, wire.Msg{Op: wire.RBool, Ok: had})
			case 4, 5, 6: // GET
				k := key(r.Intn(span))
				v, ok := model[k]
				reqs = append(reqs, wire.Msg{Op: wire.OpGet, Key: k})
				if ok {
					expected = append(expected, wire.Msg{Op: wire.RValue, Val: v})
				} else {
					expected = append(expected, wire.Msg{Op: wire.RNil})
				}
			case 7: // MGET
				n := 1 + r.Intn(8)
				keys := make([]core.Key, n)
				vals := make([]core.Value, n)
				oks := make([]bool, n)
				for i := range keys {
					keys[i] = key(r.Intn(span))
					vals[i], oks[i] = model[keys[i]], false
					_, oks[i] = model[keys[i]]
				}
				reqs = append(reqs, wire.Msg{Op: wire.OpMGet, Keys: keys})
				expected = append(expected, wire.Msg{Op: wire.RValues, Vals: vals, Oks: oks})
			case 8: // MSET
				n := 1 + r.Intn(8)
				recs := make([]core.KV, n)
				for i := range recs {
					recs[i] = core.KV{Key: key(r.Intn(span)), Value: core.Value(1000*g + i)}
					model[recs[i].Key] = recs[i].Value
				}
				reqs = append(reqs, wire.Msg{Op: wire.OpMSet, Recs: recs})
				expected = append(expected, wire.Msg{Op: wire.ROK})
			default: // SCAN over a sub-interval of this connection's range
				loI := r.Intn(span)
				hiI := loI + r.Intn(span-loI)
				lo, hi := key(loI), key(hiI)
				var want []core.KV
				for k, v := range model {
					if k >= lo && k <= hi {
						want = append(want, core.KV{Key: k, Value: v})
					}
				}
				sort.Slice(want, func(i, j int) bool { return want[i].Key < want[j].Key })
				reqs = append(reqs, wire.Msg{Op: wire.OpScan, Lo: lo, Hi: hi})
				expected = append(expected, wire.Msg{Op: wire.RKVs, Recs: want})
			}
		}
		reps, err = c.Pipeline(reqs, reps)
		if err != nil {
			return fmt.Errorf("group %d: %w", g, err)
		}
		for i := range reps {
			if err := replyMatches(reps[i], expected[i]); err != nil {
				return fmt.Errorf("group %d frame %d (%s): %w", g, i, reqs[i].Op, err)
			}
		}
	}

	// Final full-range scan against the model.
	recs, err := c.Scan(base, base+core.Key(span), 0)
	if err != nil {
		return err
	}
	if len(recs) != len(model) {
		return fmt.Errorf("final scan: %d records, model has %d", len(recs), len(model))
	}
	for _, rec := range recs {
		if v, ok := model[rec.Key]; !ok || v != rec.Value {
			return fmt.Errorf("final scan: (%d,%d) not in model", rec.Key, rec.Value)
		}
	}
	return nil
}

func replyMatches(got, want wire.Msg) error {
	if got.Op != want.Op {
		if got.Op == wire.RErr {
			return fmt.Errorf("server error %q (want %s)", got.Err, want.Op)
		}
		return fmt.Errorf("reply %s, want %s", got.Op, want.Op)
	}
	switch want.Op {
	case wire.RValue:
		if got.Val != want.Val {
			return fmt.Errorf("value %d, want %d", got.Val, want.Val)
		}
	case wire.RBool:
		if got.Ok != want.Ok {
			return fmt.Errorf("bool %v, want %v", got.Ok, want.Ok)
		}
	case wire.RValues:
		if len(got.Vals) != len(want.Vals) {
			return fmt.Errorf("%d values, want %d", len(got.Vals), len(want.Vals))
		}
		for i := range want.Vals {
			if got.Oks[i] != want.Oks[i] || (want.Oks[i] && got.Vals[i] != want.Vals[i]) {
				return fmt.Errorf("entry %d: (%d,%v), want (%d,%v)",
					i, got.Vals[i], got.Oks[i], want.Vals[i], want.Oks[i])
			}
		}
	case wire.RKVs:
		if len(got.Recs) != len(want.Recs) {
			return fmt.Errorf("%d records, want %d", len(got.Recs), len(want.Recs))
		}
		for i := range want.Recs {
			if got.Recs[i] != want.Recs[i] {
				return fmt.Errorf("record %d: %+v, want %+v", i, got.Recs[i], want.Recs[i])
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Graceful drain
// ---------------------------------------------------------------------------

// gateStore wraps a Store so the test can hold a request group in flight:
// the first Get blocks until the gate is released.
type gateStore struct {
	serve.Store
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gateStore) Get(k core.Key) (core.Value, bool) {
	g.once.Do(func() {
		close(g.entered)
		<-g.release
	})
	return g.Store.Get(k)
}

// TestGracefulDrain pins the drain state machine: Shutdown stops
// accepting (late dials are refused), in-flight pipelined groups complete
// and their replies reach the client, idle connections are woken and
// closed, and the metrics record the EvDrain events.
func TestGracefulDrain(t *testing.T) {
	stack, err := lix.NewStack([]lix.KV{{Key: 1, Value: 11}, {Key: 2, Value: 22}}, lix.StackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	gate := &gateStore{Store: stack, entered: make(chan struct{}), release: make(chan struct{})}
	m := lix.NewMetrics("drain-test")
	srv := startServer(t, gate, serve.Config{Metrics: m, DrainTimeout: 10 * time.Second})
	addr := srv.Addr().String()

	// An idle connection that must be woken and closed by the drain.
	idle, err := wire.DialTimeout(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	if err := idle.Ping(); err != nil {
		t.Fatal(err)
	}

	// The in-flight group: SET(3) then GET(1); the GET parks inside the
	// store until released, holding the whole group in flight.
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := wire.NewWriter(conn, 0)
	w.Write(&wire.Msg{Op: wire.OpSet, Key: 3, Val: 33})
	w.Write(&wire.Msg{Op: wire.OpGet, Key: 1})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	<-gate.entered

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown() }()

	// Late dial: the listener is already closed, so new connections are
	// refused while the in-flight group is still being served.
	lateRefused := false
	for i := 0; i < 50; i++ {
		c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err != nil {
			lateRefused = true
			break
		}
		// A connection that sneaks into the accept backlog before the
		// listener closes must still be refused or dropped, not served.
		cl := wire.NewClient(c, time.Second)
		if err := cl.Ping(); err != nil {
			lateRefused = true
			cl.Close()
			break
		}
		cl.Close()
		time.Sleep(10 * time.Millisecond)
	}
	if !lateRefused {
		t.Error("late dials kept being served throughout the drain")
	}

	// Release the gate: the in-flight group must complete and both
	// replies must arrive even though the server is draining.
	close(gate.release)
	r := wire.NewReader(conn, 0)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	rep1, err := r.Read()
	if err != nil || rep1.Op != wire.ROK {
		t.Fatalf("in-flight SET reply: %+v, %v", rep1, err)
	}
	rep2, err := r.Read()
	if err != nil || rep2.Op != wire.RValue || rep2.Val != 11 {
		t.Fatalf("in-flight GET reply: %+v, %v", rep2, err)
	}
	// The connection is closed once the group is flushed.
	if _, err := r.Read(); err == nil {
		t.Fatal("connection still open after drain")
	}

	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := m.Conns.Load(); got != 0 {
		t.Errorf("conns gauge after drain = %d, want 0", got)
	}
	if got := m.Events.Count(lix.EvDrain); got != 2 {
		t.Errorf("drain events = %d, want 2 (begin+complete)", got)
	}
	// Shutdown is idempotent.
	if err := srv.Shutdown(); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

// ---------------------------------------------------------------------------
// Protocol edges over the real transport
// ---------------------------------------------------------------------------

// TestMalformedFrameCutsGroup pins the group-splitting rule: a pipelined
// group never spans a malformed frame. The valid prefix is served and
// answered, the malformed frame draws a final ERR, and the connection
// closes.
func TestMalformedFrameCutsGroup(t *testing.T) {
	stack, err := lix.NewStack(nil, lix.StackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, stack, serve.Config{CloseStore: true})
	defer srv.Shutdown()

	conn, err := net.DialTimeout("tcp", srv.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var stream []byte
	stream, _ = wire.AppendFrame(stream, &wire.Msg{Op: wire.OpSet, Key: 9, Val: 90}, 0)
	stream, _ = wire.AppendFrame(stream, &wire.Msg{Op: wire.OpGet, Key: 9}, 0)
	// A complete frame whose payload is garbage: length 2, unknown opcode.
	stream = append(stream, 0, 0, 0, 2, 0x7f, 0x00)
	// A valid frame AFTER the malformed one: must never be served.
	stream, _ = wire.AppendFrame(stream, &wire.Msg{Op: wire.OpSet, Key: 10, Val: 100}, 0)
	if _, err := conn.Write(stream); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	r := wire.NewReader(conn, 0)
	if rep, err := r.Read(); err != nil || rep.Op != wire.ROK {
		t.Fatalf("SET before malformed frame: %+v, %v", rep, err)
	}
	if rep, err := r.Read(); err != nil || rep.Op != wire.RValue || rep.Val != 90 {
		t.Fatalf("GET before malformed frame: %+v, %v", rep, err)
	}
	rep, err := r.Read()
	if err != nil || rep.Op != wire.RErr {
		t.Fatalf("malformed frame reply: %+v, %v", rep, err)
	}
	if _, err := r.Read(); err == nil {
		t.Fatal("connection survived a malformed frame")
	}
	// The frame after the malformed one must not have been applied.
	if _, ok := stack.Get(10); ok {
		t.Fatal("request after a malformed frame was served")
	}
}

// TestOversizedFrameRefused checks the max-frame guard end-to-end.
func TestOversizedFrameRefused(t *testing.T) {
	stack, err := lix.NewStack(nil, lix.StackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, stack, serve.Config{MaxFrame: 256, CloseStore: true})
	defer srv.Shutdown()

	conn, err := net.DialTimeout("tcp", srv.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	big := wire.Msg{Op: wire.OpMSet, Recs: make([]core.KV, 64)} // 1029-byte payload
	frame, err := wire.AppendFrame(nil, &big, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	r := wire.NewReader(conn, 0)
	rep, err := r.Read()
	if err != nil || rep.Op != wire.RErr {
		t.Fatalf("oversized frame reply: %+v, %v", rep, err)
	}
	if _, err := r.Read(); err == nil {
		t.Fatal("connection survived an oversized frame")
	}
}

// TestConnectionLimit checks the MaxConns guard: the excess dial gets an
// ERR frame and is closed, the original connection keeps working.
func TestConnectionLimit(t *testing.T) {
	stack, err := lix.NewStack(nil, lix.StackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m := lix.NewMetrics("limit-test")
	srv := startServer(t, stack, serve.Config{MaxConns: 1, Metrics: m, CloseStore: true})
	defer srv.Shutdown()

	c1, err := wire.DialTimeout(srv.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if err := c1.Ping(); err != nil { // guarantees c1 is tracked
		t.Fatal(err)
	}
	c2, err := wire.DialTimeout(srv.Addr().String(), time.Second)
	if err != nil {
		t.Skip("kernel refused directly, limit untestable here")
	}
	defer c2.Close()
	err = c2.Ping()
	var se *wire.ServerError
	if !errors.As(err, &se) && !errors.Is(err, io.EOF) {
		t.Fatalf("over-limit ping error = %v, want ServerError or EOF", err)
	}
	if err := c1.Ping(); err != nil {
		t.Fatalf("in-limit connection broken by refusal: %v", err)
	}
	if got := m.Conns.Load(); got != 1 {
		t.Errorf("conns gauge = %d, want 1", got)
	}
}

// ---------------------------------------------------------------------------
// Batch dispatch evidence: one fsync per pipelined write group
// ---------------------------------------------------------------------------

// TestPipelinedWritesFsyncAmortization is the acceptance-criteria pin:
// under -fsync=always, a pipelined write group dispatches through
// InsertBatch into ONE WAL frame group with ONE group-committed fsync —
// while the same writes issued unpipelined pay one fsync each.
func TestPipelinedWritesFsyncAmortization(t *testing.T) {
	dir := t.TempDir()
	stack, err := lix.NewStack([]lix.KV{}, lix.StackConfig{
		Dir:             dir,
		Fsync:           lix.FsyncAlways,
		CheckpointEvery: -1, // keep background checkpoints out of the fsync count
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, stack, serve.Config{CloseStore: true})
	defer srv.Shutdown()
	c, err := wire.DialTimeout(srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// One MSET frame of 256 records: necessarily one group, exactly one
	// batched WAL append, one fsync.
	recs := make([]core.KV, 256)
	for i := range recs {
		recs[i] = core.KV{Key: core.Key(i), Value: core.Value(i)}
	}
	before := stack.Durable().Fsyncs()
	if err := c.MSet(recs); err != nil {
		t.Fatal(err)
	}
	if got := stack.Durable().Fsyncs() - before; got != 1 {
		t.Errorf("MSET(256) cost %d fsyncs, want 1", got)
	}

	// 64 SET frames pipelined in one flush: the server coalesces the run
	// into one InsertBatch. TCP may occasionally split the delivery, so
	// allow a small handful of groups — the point is the two orders of
	// magnitude against unpipelined.
	reqs := make([]wire.Msg, 64)
	for i := range reqs {
		reqs[i] = wire.Msg{Op: wire.OpSet, Key: core.Key(1000 + i), Val: core.Value(i)}
	}
	before = stack.Durable().Fsyncs()
	reps, err := c.Pipeline(reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reps {
		if reps[i].Op != wire.ROK {
			t.Fatalf("pipelined SET %d: %+v", i, reps[i])
		}
	}
	pipelined := stack.Durable().Fsyncs() - before
	if pipelined > 4 {
		t.Errorf("64 pipelined SETs cost %d fsyncs, want ~1 (<=4)", pipelined)
	}

	// The same 64 writes unpipelined: one fsync each.
	before = stack.Durable().Fsyncs()
	for i := 0; i < 64; i++ {
		if err := c.Set(core.Key(2000+i), core.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	unpipelined := stack.Durable().Fsyncs() - before
	if unpipelined < 64 {
		t.Errorf("64 unpipelined SETs cost %d fsyncs, want >= 64", unpipelined)
	}
	t.Logf("fsyncs: mset(256)=1, pipelined(64)=%d, unpipelined(64)=%d", pipelined, unpipelined)
}

// ---------------------------------------------------------------------------
// Chunked SCAN replies at the max-frame boundary
// ---------------------------------------------------------------------------

// TestE2EChunkedScan pins the server half of the chunked SCAN contract at
// the exact frame boundary. With MaxFrame 165 a reply frame holds at most
// 10 records (payload 5 + 16·10 = 165), so a 25-record scan must stream
// as RKVsPart(10) RKVsPart(10) RKVs(5) — each frame exactly at or under
// the guard — while a 10-record scan stays a single unchunked RKVs and an
// 11-record one splits as RKVsPart(10) RKVs(1). The raw frames are read
// with a Reader whose guard IS MaxFrame, so any oversized reply fails the
// test by construction; the Client path on the same server then checks
// transparent reassembly, including mid-pipeline.
func TestE2EChunkedScan(t *testing.T) {
	const maxFrame = 165 // chunk capacity: (165-5)/16 = 10 records
	stack, err := lix.NewStack(nil, lix.StackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, stack, serve.Config{MaxFrame: maxFrame, CloseStore: true})
	defer srv.Shutdown()

	const n = 25
	recs := make([]core.KV, n)
	for i := range recs {
		recs[i] = core.KV{Key: core.Key(i + 1), Value: core.Value(100 + i)}
		stack.Insert(recs[i].Key, recs[i].Value)
	}

	// Raw frame level: count the chunks and verify sizes and order.
	conn, err := net.DialTimeout("tcp", srv.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	w := wire.NewWriter(conn, maxFrame)
	r := wire.NewReader(conn, maxFrame) // reply frames must fit the guard
	scan := func(limit uint32) []wire.Msg {
		t.Helper()
		if err := w.Write(&wire.Msg{Op: wire.OpScan, Lo: 0, Hi: ^core.Key(0), Limit: limit}); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		var frames []wire.Msg
		for {
			m, err := r.Read()
			if err != nil {
				t.Fatalf("read reply frame: %v", err)
			}
			frames = append(frames, m)
			if m.Op != wire.RKVsPart {
				return frames
			}
		}
	}

	frames := scan(0) // full 25-record straddle
	if len(frames) != 3 || frames[0].Op != wire.RKVsPart || frames[1].Op != wire.RKVsPart || frames[2].Op != wire.RKVs {
		t.Fatalf("25-record scan framed as %d frames %v, want KVSPART KVSPART KVS", len(frames), frames)
	}
	var got []core.KV
	for _, f := range frames {
		if f.Op == wire.RKVsPart && len(f.Recs) != 10 {
			t.Fatalf("non-final chunk carries %d records, want the full 10", len(f.Recs))
		}
		got = append(got, f.Recs...)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("chunked scan returned %v, want %v", got, recs)
	}

	if frames = scan(10); len(frames) != 1 || frames[0].Op != wire.RKVs || len(frames[0].Recs) != 10 {
		t.Fatalf("exactly-fitting scan framed as %v, want one KVS of 10", frames)
	}
	if frames = scan(11); len(frames) != 2 || frames[0].Op != wire.RKVsPart || len(frames[1].Recs) != 1 {
		t.Fatalf("one-over scan framed as %v, want KVSPART(10) KVS(1)", frames)
	}

	// Client level: reassembly is transparent, even mid-pipeline.
	c, err := wire.DialTimeout(srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	all, err := c.Scan(0, ^core.Key(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all, recs) {
		t.Fatalf("client Scan reassembled %d records, want %d", len(all), n)
	}
	reps, err := c.Pipeline([]wire.Msg{
		{Op: wire.OpGet, Key: 1},
		{Op: wire.OpScan, Lo: 0, Hi: ^core.Key(0), Limit: 0},
		{Op: wire.OpGet, Key: 25},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 || reps[0].Op != wire.RValue || reps[2].Op != wire.RValue {
		t.Fatalf("pipeline around chunked scan: %v", reps)
	}
	if reps[1].Op != wire.RKVs || !reflect.DeepEqual(reps[1].Recs, recs) {
		t.Fatalf("mid-pipeline chunked scan reply: %v", reps[1])
	}
}
