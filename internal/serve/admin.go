package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"

	"github.com/lix-go/lix/internal/obs"
	"github.com/lix-go/lix/internal/trace"
)

// AdminConfig assembles the live admin plane: the out-of-band HTTP
// surface (`lixserve -admin-addr`) that turns a running server from a
// black box into something operable — Prometheus scrapes, readiness for
// load balancers, the event log and hot-key sketch as JSON, and the
// stdlib pprof profilers.
type AdminConfig struct {
	// Metrics are the bundles /metrics renders (Prometheus text format,
	// one index label per bundle; names must be unique).
	Metrics []*obs.Metrics
	// Tracer, when set with hot-key telemetry enabled, feeds /topk and
	// the lix_topk_count family appended to /metrics.
	Tracer *trace.Tracer
	// Ready reports readiness for /readyz; nil means always ready.
	// Wire it to the serving front-end as func() bool { return
	// !srv.Draining() } so a load balancer stops sending traffic the
	// moment Shutdown begins, while in-flight groups still complete.
	Ready func() bool
	// EventLog backs /events. Defaults to the first Metrics bundle's
	// log when nil.
	EventLog *obs.EventLog
}

// NewAdminHandler returns the admin-plane HTTP handler:
//
//	/            endpoint index (text)
//	/metrics     Prometheus text exposition of every bundle + topk
//	/healthz     200 while the process is up (liveness)
//	/readyz      200 ready / 503 draining (readiness)
//	/events      recent event-log tail as JSON (?n=, newest last)
//	/topk        hot-key sketch as JSON (?n=, hottest first)
//	/debug/pprof/*  stdlib profilers (cpu profile, heap, goroutine, ...)
//
// The handler is safe to serve concurrently with traffic; every
// endpoint reads the live atomics/rings the data plane writes.
func NewAdminHandler(cfg AdminConfig) http.Handler {
	events := cfg.EventLog
	if events == nil && len(cfg.Metrics) > 0 {
		events = &cfg.Metrics[0].Events
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "lix admin plane\n\n"+
			"/metrics      Prometheus exposition\n"+
			"/healthz      liveness\n"+
			"/readyz       readiness (503 while draining)\n"+
			"/events?n=64  recent event log (JSON)\n"+
			"/topk?n=32    hot keys (JSON)\n"+
			"/debug/pprof  profilers\n")
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.WritePrometheusAll(w, cfg.Metrics...); err != nil {
			// Headers are gone; all we can do is cut the body so the
			// scraper sees a broken exposition rather than a silent gap.
			fmt.Fprintf(w, "# render error: %v\n", err)
			return
		}
		writeTopKPrometheus(w, cfg.Tracer)
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if cfg.Ready != nil && !cfg.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})

	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		n := queryN(r, 64)
		var evs []obs.Event
		if events != nil {
			evs = events.Recent(n)
		}
		if evs == nil {
			evs = []obs.Event{}
		}
		writeJSON(w, evs)
	})

	mux.HandleFunc("/topk", func(w http.ResponseWriter, r *http.Request) {
		n := queryN(r, 32)
		top := cfg.Tracer.TopKeys(n)
		if top == nil {
			top = []trace.KeyCount{}
		}
		writeJSON(w, top)
	})

	// The stdlib profilers, on this mux rather than http.DefaultServeMux
	// so importing net/http/pprof's side effects is not relied upon.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

// WriteTopKPrometheus renders the tracer's hot-key sketch as a
// lix_topk_count gauge family (one series per tracked key, hottest
// first, with the SpaceSaving error bound as a companion family). No-op
// without hot-key telemetry.
func WriteTopKPrometheus(w interface{ Write([]byte) (int, error) }, tr *trace.Tracer) {
	writeTopKPrometheus(w, tr)
}

func writeTopKPrometheus(w interface{ Write([]byte) (int, error) }, tr *trace.Tracer) {
	if !tr.HotKeys() {
		return
	}
	top := tr.TopKeys(64)
	if len(top) == 0 {
		return
	}
	fmt.Fprintf(w, "# TYPE lix_topk_count gauge\n")
	for _, e := range top {
		fmt.Fprintf(w, "lix_topk_count{key=\"%d\"} %d\n", e.Key, e.Count)
	}
	fmt.Fprintf(w, "# TYPE lix_topk_err gauge\n")
	for _, e := range top {
		fmt.Fprintf(w, "lix_topk_err{key=\"%d\"} %d\n", e.Key, e.Err)
	}
}

func queryN(r *http.Request, def int) int {
	q := r.URL.Query().Get("n")
	if q == "" {
		return def
	}
	n, err := strconv.Atoi(q)
	if err != nil || n < 0 {
		return def
	}
	return n
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
