// Package serve is the networked serving front-end of the lix engine: a
// stdlib-only TCP server speaking the internal/wire protocol over any
// assembled index stack.
//
// The design goal is to make the batch capabilities from the engine layer
// (core.BatchLookuper / BatchInserter / BatchDeleter, forwarded through
// shard, durable and obs wrappers) earn their keep on the network path.
// Each connection is one goroutine that reads *pipelined request groups*:
// one blocking read for the first frame, then a non-blocking drain of
// every complete frame already received (wire.Reader.FrameBuffered). The
// group is then dispatched run-by-run — consecutive reads become one
// LookupBatch, consecutive writes one InsertBatch, consecutive deletes
// one DeleteBatch — so a pipelined MGET of 256 keys is one shard fan-out
// and one WAL frame group, not 256 independent calls. Replies are written
// in request order and flushed once per group; a SCAN whose result set
// exceeds the frame guard streams as wire.RKVsPart chunks closed by a
// final RKVs, still one logical reply in order.
//
// Pipelined semantics are sequential: a request observes every earlier
// request on the same connection. Run grouping preserves this because
// runs are homogeneous — reads cannot observe reads, InsertBatch is
// later-wins and DeleteBatch first-wins, both exactly the sequential
// outcome.
package serve

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
	"github.com/lix-go/lix/internal/trace"
	"github.com/lix-go/lix/internal/wire"
)

// Store is the index surface the server needs: the mutable point/range
// interface. Batch capabilities are optional and detected through the
// core dispatch helpers, so any layer of the engine stack — a bare
// backend, lix.Sharded, lix.Durable, an observed wrapper or the whole
// lix.Stack — serves without adaptation. If the store also implements
// io.Closer and Config.CloseStore is set, Shutdown closes it after the
// drain.
type Store interface {
	Get(k core.Key) (core.Value, bool)
	Insert(k core.Key, v core.Value)
	Delete(k core.Key) bool
	Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int
}

// Config tunes a Server. The zero value listens on ":0" with the
// defaults below.
type Config struct {
	// Addr is the TCP listen address (default ":0", an ephemeral port).
	Addr string
	// MaxConns caps concurrently served connections (default 1024).
	// Excess dials receive an ERR frame and are closed.
	MaxConns int
	// MaxFrame is the frame-size guard in bytes for both directions
	// (default wire.DefaultMaxFrame).
	MaxFrame int
	// MaxGroup caps the frames drained into one pipelined group
	// (default 1024); longer pipelines are served as consecutive groups.
	MaxGroup int
	// MaxScan caps SCAN results per request (default 65536). A result set
	// too large for one frame streams back as RKVsPart chunks closed by a
	// final RKVs, so MaxScan is independent of MaxFrame.
	MaxScan int
	// IdleTimeout is the read deadline while waiting for the first frame
	// of a group (default 5m; negative disables). A connection idle past
	// it is closed.
	IdleTimeout time.Duration
	// WriteTimeout bounds flushing one group's replies (default 30s;
	// negative disables).
	WriteTimeout time.Duration
	// DrainTimeout bounds Shutdown's wait for in-flight groups
	// (default 5s).
	DrainTimeout time.Duration
	// Metrics, when set, receives the serving instrumentation:
	// Conns gauge, Requests/Errors/Groups counters, GroupLen and per-op
	// latency histograms, and the EvDrain event.
	Metrics *obs.Metrics
	// Tracer, when set, samples request groups into per-stage spans
	// (decode → dispatch → shard → wal → fsync), feeds the slow-request
	// event log, and — when its hot-key sketch is enabled — counts every
	// read-path key. Nil disables tracing at zero cost; a tracer with
	// rate 0 costs one atomic load per group.
	Tracer *trace.Tracer
	// CloseStore makes Shutdown close the store (when it implements
	// io.Closer) after the drain completes.
	CloseStore bool
	// ErrorLog receives accept/serve diagnostics (default os.Stderr;
	// use io.Discard to silence).
	ErrorLog io.Writer
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Addr == "" {
		out.Addr = ":0"
	}
	if out.MaxConns <= 0 {
		out.MaxConns = 1024
	}
	if out.MaxFrame <= 0 {
		out.MaxFrame = wire.DefaultMaxFrame
	}
	if out.MaxGroup <= 0 {
		out.MaxGroup = 1024
	}
	if out.MaxScan <= 0 {
		out.MaxScan = 65536
	}
	if out.IdleTimeout == 0 {
		out.IdleTimeout = 5 * time.Minute
	}
	if out.WriteTimeout == 0 {
		out.WriteTimeout = 30 * time.Second
	}
	if out.DrainTimeout <= 0 {
		out.DrainTimeout = 5 * time.Second
	}
	if out.ErrorLog == nil {
		out.ErrorLog = os.Stderr
	}
	return out
}

// Server is a pipelined TCP front-end over a Store. Create with New,
// start with Start, stop with Shutdown.
type Server struct {
	cfg   Config
	store Store

	ln       net.Listener
	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	draining atomic.Bool
	wg       sync.WaitGroup // accept loop + connection handlers
	started  atomic.Bool
}

// New returns an unstarted server over store.
func New(store Store, cfg Config) *Server {
	return &Server{cfg: cfg.withDefaults(), store: store, conns: make(map[net.Conn]struct{})}
}

// Start binds the listen address and begins accepting connections. It
// returns once the listener is live; serving continues on background
// goroutines until Shutdown.
func (s *Server) Start() error {
	if !s.started.CompareAndSwap(false, true) {
		return errors.New("serve: server already started")
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Draining reports whether Shutdown has begun. The admin plane's
// /readyz endpoint keys off it: a draining server still completes
// in-flight pipelined groups but should receive no new traffic.
func (s *Server) Draining() bool { return s.draining.Load() }

// Addr returns the bound listen address (nil before Start).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			// Listener closed (Shutdown) or fatal accept error: stop.
			if !s.draining.Load() {
				fmt.Fprintf(s.cfg.ErrorLog, "lixserve: accept: %v\n", err)
			}
			return
		}
		if !s.track(conn) {
			// Over the connection limit (or draining): refuse politely.
			s.countError()
			refusal := "server at connection limit"
			if s.draining.Load() {
				refusal = "server draining"
			}
			w := wire.NewWriter(conn, s.cfg.MaxFrame)
			conn.SetWriteDeadline(time.Now().Add(time.Second))
			w.Write(&wire.Msg{Op: wire.RErr, Err: refusal})
			w.Flush()
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// track registers conn, enforcing MaxConns and the draining gate.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() || len(s.conns) >= s.cfg.MaxConns {
		return false
	}
	s.conns[conn] = struct{}{}
	if m := s.cfg.Metrics; m != nil {
		m.Conns.Inc()
	}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	if m := s.cfg.Metrics; m != nil {
		m.Conns.Dec()
	}
}

func (s *Server) countError() {
	if m := s.cfg.Metrics; m != nil {
		m.Errors.Inc()
	}
}

// serveConn runs one connection: read a pipelined group, dispatch it
// through the batch capabilities, write replies, flush, repeat.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.untrack(conn)
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	r := wire.NewReader(conn, s.cfg.MaxFrame)
	w := wire.NewWriter(conn, s.cfg.MaxFrame)
	group := make([]wire.Msg, 0, 64)
	tr := s.cfg.Tracer

	for {
		// Deadline first, drain check second: Shutdown sets draining and
		// then stamps an immediate read deadline on every connection, so
		// this order guarantees a handler either sees the flag here or
		// has its blocking read below woken — never a lost wake-up.
		if s.cfg.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		if s.draining.Load() {
			return
		}
		// One atomic load per group decides whether this iteration pays
		// for decode timing; the sampling decision itself waits until the
		// group size is known.
		traceOn := tr.Enabled()
		r.SetTiming(traceOn)
		first, err := r.Read()
		if err != nil {
			// EOF and drain wake-ups end the connection quietly; protocol
			// violations get a final ERR frame (the stream is
			// desynchronized, so the connection must close either way).
			if isProtocolErr(err) && !s.draining.Load() {
				s.replyFatal(conn, w, err)
			}
			return
		}

		// Drain every complete frame already received into this group — a
		// malformed frame cuts the group: everything before it is served,
		// then the connection dies with an ERR frame. It never travels
		// with valid requests into the dispatcher.
		group = append(group[:0], first)
		var groupErr error
		for len(group) < s.cfg.MaxGroup && r.FrameBuffered() {
			m, err := r.Read()
			if err != nil {
				groupErr = err
				break
			}
			group = append(group, m)
		}

		var sp *trace.Span
		if traceOn {
			sp = tr.Start(len(group))
			// The reader accumulated parse time while the group was
			// drained — before the span existed; Total() adds it back.
			// Drained unconditionally so an unsampled group's parse time
			// cannot leak into the next sampled one.
			sp.Add(trace.StageDecode, time.Duration(r.TakeDecodeNS()))
		}

		s.dispatch(group, w, sp)

		if s.cfg.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		if groupErr != nil && isProtocolErr(groupErr) {
			s.countError()
			w.Write(&wire.Msg{Op: wire.RErr, Err: groupErr.Error()})
		}
		ferr := w.Flush()
		// Finish after the flush so the span's total covers reply
		// delivery, where a slow client shows up.
		tr.Finish(sp)
		if ferr != nil || groupErr != nil {
			return
		}
	}
}

// isProtocolErr reports whether err is a client-caused framing error that
// deserves an ERR reply (as opposed to EOF/timeouts/transport failures).
func isProtocolErr(err error) bool {
	return errors.Is(err, wire.ErrMalformed) || errors.Is(err, wire.ErrFrameTooLarge)
}

// replyFatal sends one final ERR frame before the connection closes.
func (s *Server) replyFatal(conn net.Conn, w *wire.Writer, err error) {
	s.countError()
	if s.cfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
	w.Write(&wire.Msg{Op: wire.RErr, Err: err.Error()})
	w.Flush()
}

// runKind classifies opcodes into batchable families.
type runKind uint8

const (
	runNone  runKind = iota
	runRead          // OpGet, OpMGet -> one LookupBatch
	runWrite         // OpSet, OpMSet -> one InsertBatch
	runDel           // OpDel         -> one DeleteBatch
	runSolo          // OpScan, OpPing, anything else
)

func classify(op wire.Op) runKind {
	switch op {
	case wire.OpGet, wire.OpMGet:
		return runRead
	case wire.OpSet, wire.OpMSet:
		return runWrite
	case wire.OpDel:
		return runDel
	default:
		return runSolo
	}
}

// dispatch serves one pipelined group: it slices the group into maximal
// runs of batchable ops, dispatches each run through the store's batch
// capabilities, and writes one reply per request in request order. A
// non-nil span times the whole body as the dispatch stage; the store
// stages (shard/wal/fsync) nest inside it via the trace batch helpers.
func (s *Server) dispatch(group []wire.Msg, w *wire.Writer, sp *trace.Span) {
	m := s.cfg.Metrics
	if m != nil {
		m.Groups.Inc()
		m.GroupLen.Observe(uint64(len(group)))
		m.Requests.Add(uint64(len(group)))
	}
	var dispatchStart time.Time
	if sp != nil {
		dispatchStart = time.Now()
		defer func() { sp.Add(trace.StageDispatch, time.Since(dispatchStart)) }()
	}
	for i := 0; i < len(group); {
		kind := classify(group[i].Op)
		j := i + 1
		for kind != runSolo && j < len(group) && classify(group[j].Op) == kind {
			j++
		}
		run := group[i:j]
		start := time.Now()
		switch kind {
		case runRead:
			s.serveReads(run, w, sp)
		case runWrite:
			s.serveWrites(run, w, sp)
		case runDel:
			s.serveDeletes(run, w, sp)
		default:
			s.serveSolo(&run[0], w, sp)
		}
		if m != nil {
			// Attribute the run's latency to each request in it, into the
			// op-family histogram.
			lat := uint64(time.Since(start)) / uint64(len(run))
			var h *obs.Histogram
			switch kind {
			case runRead:
				h = &m.GetNS
			case runWrite:
				h = &m.InsertNS
			case runDel:
				h = &m.DeleteNS
			default:
				h = &m.RangeNS
			}
			for range run {
				h.Observe(lat)
			}
		}
		i = j
	}
}

// serveReads answers a run of GET/MGET frames with one LookupBatch.
// Hot-key telemetry counts every key here at full rate — the sketch is
// independent of span sampling, since a 1% sample would take ~100×
// longer to surface a hot key.
func (s *Server) serveReads(run []wire.Msg, w *wire.Writer, sp *trace.Span) {
	hot := s.cfg.Tracer.HotKeys()
	if sp == nil && len(run) == 1 && run[0].Op == wire.OpGet {
		// Solo point read: skip batch assembly. (A sampled group takes
		// the batch path below so the store can attribute its stages.)
		if hot {
			s.cfg.Tracer.TouchKey(run[0].Key)
		}
		v, ok := s.store.Get(run[0].Key)
		s.writeGetReply(w, v, ok)
		return
	}
	total := 0
	for i := range run {
		if run[i].Op == wire.OpGet {
			total++
		} else {
			total += len(run[i].Keys)
		}
	}
	keys := make([]core.Key, 0, total)
	for i := range run {
		if run[i].Op == wire.OpGet {
			keys = append(keys, run[i].Key)
		} else {
			keys = append(keys, run[i].Keys...)
		}
	}
	if hot {
		s.cfg.Tracer.TouchKeys(keys)
	}
	vals, oks := trace.LookupBatch(s.store, keys, sp)
	// Split the flat answers back into one reply per request frame.
	off := 0
	for i := range run {
		if run[i].Op == wire.OpGet {
			s.writeGetReply(w, vals[off], oks[off])
			off++
			continue
		}
		n := len(run[i].Keys)
		w.Write(&wire.Msg{Op: wire.RValues, Vals: vals[off : off+n], Oks: oks[off : off+n]})
		off += n
	}
}

func (s *Server) writeGetReply(w *wire.Writer, v core.Value, ok bool) {
	if ok {
		w.Write(&wire.Msg{Op: wire.RValue, Val: v})
	} else {
		w.Write(&wire.Msg{Op: wire.RNil})
	}
}

// serveWrites applies a run of SET/MSET frames with one InsertBatch.
// Flattening in request order makes InsertBatch's later-wins semantics
// exactly the sequential pipelined outcome.
func (s *Server) serveWrites(run []wire.Msg, w *wire.Writer, sp *trace.Span) {
	if sp == nil && len(run) == 1 && run[0].Op == wire.OpSet {
		s.store.Insert(run[0].Key, run[0].Val)
		w.Write(&wire.Msg{Op: wire.ROK})
		return
	}
	total := 0
	for i := range run {
		if run[i].Op == wire.OpSet {
			total++
		} else {
			total += len(run[i].Recs)
		}
	}
	recs := make([]core.KV, 0, total)
	for i := range run {
		if run[i].Op == wire.OpSet {
			recs = append(recs, core.KV{Key: run[i].Key, Value: run[i].Val})
		} else {
			recs = append(recs, run[i].Recs...)
		}
	}
	trace.InsertBatch(s.store, recs, sp)
	for range run {
		w.Write(&wire.Msg{Op: wire.ROK})
	}
}

// serveDeletes applies a run of DEL frames with one DeleteBatch.
// First-wins per-key liveness is exactly the sequential outcome.
func (s *Server) serveDeletes(run []wire.Msg, w *wire.Writer, sp *trace.Span) {
	if sp == nil && len(run) == 1 {
		ok := s.store.Delete(run[0].Key)
		w.Write(&wire.Msg{Op: wire.RBool, Ok: ok})
		return
	}
	keys := make([]core.Key, len(run))
	for i := range run {
		keys[i] = run[i].Key
	}
	oks := trace.DeleteBatch(s.store, keys, sp)
	for _, ok := range oks {
		w.Write(&wire.Msg{Op: wire.RBool, Ok: ok})
	}
}

// serveSolo answers the non-batchable opcodes.
func (s *Server) serveSolo(m *wire.Msg, w *wire.Writer, sp *trace.Span) {
	switch m.Op {
	case wire.OpPing:
		w.Write(&wire.Msg{Op: wire.ROK})
	case wire.OpScan:
		limit := s.cfg.MaxScan
		if m.Limit > 0 && int(m.Limit) < limit {
			limit = int(m.Limit)
		}
		var recs []core.KV
		if m.Lo <= m.Hi {
			var scanStart time.Time
			if sp != nil {
				scanStart = time.Now()
			}
			recs = make([]core.KV, 0, 16)
			s.store.Range(m.Lo, m.Hi, func(k core.Key, v core.Value) bool {
				recs = append(recs, core.KV{Key: k, Value: v})
				return len(recs) < limit
			})
			if sp != nil {
				sp.Add(trace.StageShard, time.Since(scanStart))
			}
		}
		// A reply too large for one frame streams as RKVsPart chunks
		// closed by the final RKVs: payload is 5 header bytes + 16 per
		// record, so chunks of (MaxFrame-5)/16 records always fit.
		chunk := (s.cfg.MaxFrame - 5) / 16
		if chunk < 1 {
			chunk = 1
		}
		for len(recs) > chunk {
			w.Write(&wire.Msg{Op: wire.RKVsPart, Recs: recs[:chunk]})
			recs = recs[chunk:]
		}
		w.Write(&wire.Msg{Op: wire.RKVs, Recs: recs})
	default:
		s.countError()
		w.Write(&wire.Msg{Op: wire.RErr, Err: fmt.Sprintf("unsupported opcode %s", m.Op)})
	}
}

// Shutdown drains the server gracefully: stop accepting (late dials are
// refused), wake connections blocked waiting for a new group, let
// in-flight groups finish and their replies flush, then — after every
// handler returns or DrainTimeout passes — close remaining connections
// and, with Config.CloseStore, the store. It is idempotent; concurrent
// calls share the same drain.
func (s *Server) Shutdown() error {
	if !s.started.Load() {
		return errors.New("serve: server not started")
	}
	first := s.draining.CompareAndSwap(false, true)
	if first {
		s.ln.Close()
		// Wake handlers blocked in the first-frame read: the expired
		// deadline surfaces as a read error, and the draining flag turns
		// it into a quiet exit. A handler mid-group is untouched — it
		// holds no deadline until its next read — so its replies flush.
		s.mu.Lock()
		open := len(s.conns)
		for c := range s.conns {
			c.SetReadDeadline(time.Now())
		}
		s.mu.Unlock()
		if m := s.cfg.Metrics; m != nil {
			m.Event(obs.Event{Type: obs.EvDrain, N: open, Detail: "begin"})
		}
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		err = fmt.Errorf("serve: drain timeout after %v", s.cfg.DrainTimeout)
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}

	if first {
		if m := s.cfg.Metrics; m != nil {
			m.Event(obs.Event{Type: obs.EvDrain, Detail: "complete"})
		}
		if s.cfg.CloseStore {
			if c, ok := s.store.(io.Closer); ok {
				if cerr := c.Close(); err == nil {
					err = cerr
				}
			}
		}
	}
	return err
}
