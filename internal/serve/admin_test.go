package serve_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	lix "github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
	"github.com/lix-go/lix/internal/serve"
	"github.com/lix-go/lix/internal/trace"
	"github.com/lix-go/lix/internal/wire"
)

func adminGet(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestAdminPlaneUnderTraffic serves every admin endpoint group —
// /metrics, /healthz, /readyz, /events, /topk, /debug/pprof/* — while
// wire traffic runs against the same stack, with full span sampling and
// hot-key telemetry on. Run under -race in CI, this is the acceptance
// pin that the admin plane reads the live data-plane state safely.
func TestAdminPlaneUnderTraffic(t *testing.T) {
	m := lix.NewMetrics("admin-e2e")
	stack, err := lix.NewStack(nil, lix.StackConfig{
		Shards:  4,
		Metrics: m,
		Trace:   &lix.TraceOptions{SampleRate: 1, SlowThreshold: time.Nanosecond, TopK: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, stack, serve.Config{
		Metrics:    m,
		Tracer:     stack.Tracer(),
		CloseStore: true,
	})
	defer srv.Shutdown()

	admin := httptest.NewServer(serve.NewAdminHandler(serve.AdminConfig{
		Metrics: []*obs.Metrics{m},
		Tracer:  stack.Tracer(),
		Ready:   func() bool { return !srv.Draining() },
	}))
	defer admin.Close()

	// Background wire traffic: pipelined writes and skewed reads so the
	// hot-key sketch and every histogram family have data while the admin
	// endpoints are scraped concurrently.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := wire.DialTimeout(srv.Addr().String(), 5*time.Second)
			if err != nil {
				t.Errorf("traffic dial: %v", err)
				return
			}
			defer c.Close()
			reqs := make([]wire.Msg, 0, 16)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				reqs = reqs[:0]
				for d := 0; d < 8; d++ {
					k := core.Key(w*1000 + i%50)
					reqs = append(reqs,
						wire.Msg{Op: wire.OpSet, Key: k, Val: core.Value(i)},
						wire.Msg{Op: wire.OpGet, Key: 42}) // everyone hammers key 42
				}
				if _, err := c.Pipeline(reqs, nil); err != nil {
					t.Errorf("traffic pipeline: %v", err)
					return
				}
			}
		}(w)
	}
	// Let some traffic land before scraping.
	time.Sleep(50 * time.Millisecond)

	// Every endpoint group, scraped concurrently with the traffic above.
	var scrape sync.WaitGroup
	scrape.Add(1)
	go func() {
		defer scrape.Done()
		for i := 0; i < 5; i++ {
			adminGet(t, admin.URL, "/metrics")
			adminGet(t, admin.URL, "/topk")
		}
	}()

	if code, body := adminGet(t, admin.URL, "/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index: code=%d body=%q", code, body)
	}
	if code, body := adminGet(t, admin.URL, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz: code=%d body=%q", code, body)
	}
	if code, body := adminGet(t, admin.URL, "/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Errorf("/readyz: code=%d body=%q", code, body)
	}

	code, body := adminGet(t, admin.URL, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics: code=%d", code)
	}
	for _, want := range []string{
		"lix_lookups_total{index=\"admin-e2e\"}",
		"lix_decode_ns", "lix_dispatch_ns", "lix_shard_ns",
		"lix_topk_count{key=\"42\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = adminGet(t, admin.URL, "/events?n=8")
	if code != 200 {
		t.Fatalf("/events: code=%d", code)
	}
	var evs []obs.Event
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Errorf("/events not JSON: %v\n%s", err, body)
	}

	code, body = adminGet(t, admin.URL, "/topk?n=4")
	if code != 200 {
		t.Fatalf("/topk: code=%d", code)
	}
	var top []trace.KeyCount
	if err := json.Unmarshal([]byte(body), &top); err != nil {
		t.Fatalf("/topk not JSON: %v\n%s", err, body)
	}
	if len(top) == 0 || len(top) > 4 {
		t.Fatalf("/topk?n=4 returned %d entries", len(top))
	}
	if top[0].Key != 42 {
		t.Errorf("hottest key = %d, want 42 (counts: %+v)", top[0].Key, top)
	}

	if code, body := adminGet(t, admin.URL, "/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: code=%d", code)
	}
	if code, _ := adminGet(t, admin.URL, "/debug/pprof/goroutine?debug=1"); code != 200 {
		t.Errorf("/debug/pprof/goroutine: code=%d", code)
	}

	if code, _ := adminGet(t, admin.URL, "/nonexistent"); code != 404 {
		t.Errorf("unknown path: code=%d, want 404", code)
	}

	scrape.Wait()
	close(stop)
	wg.Wait()

	// Traffic with SampleRate=1 must have produced sampled spans.
	if got := stack.Tracer().Sampled(); got == 0 {
		t.Error("no spans sampled despite SampleRate=1")
	}
}

// TestAdminReadyzFlipsDuringDrain pins the readiness contract: /readyz
// answers 200 before Shutdown, flips to 503 the moment the drain begins
// (while an in-flight pipelined group is still being served), and the
// in-flight group's replies still reach the client.
func TestAdminReadyzFlipsDuringDrain(t *testing.T) {
	stack, err := lix.NewStack([]lix.KV{{Key: 1, Value: 11}}, lix.StackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	gate := &gateStore{Store: stack, entered: make(chan struct{}), release: make(chan struct{})}
	srv := startServer(t, gate, serve.Config{DrainTimeout: 10 * time.Second})

	admin := httptest.NewServer(serve.NewAdminHandler(serve.AdminConfig{
		Ready: func() bool { return !srv.Draining() },
	}))
	defer admin.Close()

	if code, _ := adminGet(t, admin.URL, "/readyz"); code != 200 {
		t.Fatalf("/readyz before drain: code=%d, want 200", code)
	}

	// Park a pipelined group inside the store.
	conn, err := net.DialTimeout("tcp", srv.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := wire.NewWriter(conn, 0)
	w.Write(&wire.Msg{Op: wire.OpSet, Key: 3, Val: 33})
	w.Write(&wire.Msg{Op: wire.OpGet, Key: 1})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	<-gate.entered

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown() }()

	// Draining flips as Shutdown begins; poll briefly to avoid racing the
	// goroutine's first instruction.
	flipped := false
	for i := 0; i < 100; i++ {
		if code, body := adminGet(t, admin.URL, "/readyz"); code == http.StatusServiceUnavailable {
			if !strings.Contains(body, "draining") {
				t.Errorf("/readyz 503 body = %q, want draining", body)
			}
			flipped = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !flipped {
		t.Error("/readyz never flipped to 503 during drain")
	}
	// Liveness stays green throughout the drain.
	if code, _ := adminGet(t, admin.URL, "/healthz"); code != 200 {
		t.Errorf("/healthz during drain: code=%d, want 200", code)
	}

	// The in-flight group still completes and its replies arrive.
	close(gate.release)
	r := wire.NewReader(conn, 0)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if rep, err := r.Read(); err != nil || rep.Op != wire.ROK {
		t.Fatalf("in-flight SET reply: %+v, %v", rep, err)
	}
	if rep, err := r.Read(); err != nil || rep.Op != wire.RValue || rep.Val != 11 {
		t.Fatalf("in-flight GET reply: %+v, %v", rep, err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Still 503 after the drain completes.
	if code, _ := adminGet(t, admin.URL, "/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz after drain: code=%d, want 503", code)
	}
}

// TestSlowRequestTimelineE2E is the acceptance pin for span visibility:
// a sampled pipelined write group against a durable sharded stack must
// leave an EvSlowRequest event whose detail carries the full stage
// timeline — decode, dispatch, shard, wal and fsync.
func TestSlowRequestTimelineE2E(t *testing.T) {
	m := lix.NewMetrics("slow-e2e")
	stack, err := lix.NewStack([]lix.KV{}, lix.StackConfig{
		Dir:     t.TempDir(),
		Shards:  2,
		Fsync:   lix.FsyncAlways,
		Metrics: m,
		Trace:   &lix.TraceOptions{SampleRate: 1, SlowThreshold: time.Nanosecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, stack, serve.Config{
		Metrics:    m,
		Tracer:     stack.Tracer(),
		CloseStore: true,
	})
	defer srv.Shutdown()

	c, err := wire.DialTimeout(srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// One pipelined write group: decode (parse), dispatch (group), wal +
	// shard apply + fsync (durable insert) all get span time.
	reqs := make([]wire.Msg, 16)
	for i := range reqs {
		reqs[i] = wire.Msg{Op: wire.OpSet, Key: core.Key(i), Val: core.Value(i)}
	}
	reps, err := c.Pipeline(reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reps {
		if reps[i].Op != wire.ROK {
			t.Fatalf("SET %d: %+v", i, reps[i])
		}
	}

	if got := m.Events.Count(lix.EvSlowRequest); got == 0 {
		t.Fatal("no EvSlowRequest events despite 1ns threshold and full sampling")
	}
	var detail string
	for _, ev := range m.Events.Recent(64) {
		if ev.Type == lix.EvSlowRequest && strings.Contains(ev.Detail, "wal=") {
			detail = ev.Detail
		}
	}
	if detail == "" {
		t.Fatalf("no slow-request event with a wal stage; events: %+v", m.Events.Recent(64))
	}
	for _, stage := range []string{"ops=16", "decode=", "dispatch=", "shard=", "wal=", "fsync=", "total="} {
		if !strings.Contains(detail, stage) {
			t.Errorf("slow-request detail missing %q: %s", stage, detail)
		}
	}
	t.Logf("slow-request timeline: %s", detail)
}

// TestWriteTopKPrometheus covers the exported topk renderer directly:
// no-op without telemetry, gauge families with telemetry on.
func TestWriteTopKPrometheus(t *testing.T) {
	var sb strings.Builder
	serve.WriteTopKPrometheus(&sb, nil) // nil tracer: no-op
	if sb.Len() != 0 {
		t.Errorf("nil tracer rendered %q", sb.String())
	}

	tr := trace.New(trace.Config{TopK: 8})
	serve.WriteTopKPrometheus(&sb, tr) // empty sketch: no-op
	if sb.Len() != 0 {
		t.Errorf("empty sketch rendered %q", sb.String())
	}
	for i := 0; i < 10; i++ {
		tr.TouchKey(7)
	}
	tr.TouchKey(9)
	serve.WriteTopKPrometheus(&sb, tr)
	out := sb.String()
	for _, want := range []string{
		"# TYPE lix_topk_count gauge",
		fmt.Sprintf("lix_topk_count{key=\"7\"} %d", 10),
		"# TYPE lix_topk_err gauge",
		"lix_topk_err{key=\"9\"} 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("topk exposition missing %q:\n%s", want, out)
		}
	}
}
