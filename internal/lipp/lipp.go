// Package lipp implements LIPP (Wu et al., "Updatable Learned Index with
// Precise Positions", PVLDB 2021): a learned tree in which every key sits
// at exactly the slot its node's model predicts — lookups never do a
// last-mile search. When two keys collide on a slot, the slot becomes a
// child node trained on the colliding keys; subtrees that accumulate too
// many conflicts are rebuilt (the paper's cost-based adjustment, reduced
// here to a conflict-ratio trigger, documented as a simplification).
//
// Taxonomy: mutable / pure / in-place insert / dynamic data layout.
package lipp

import (
	"fmt"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
)

const (
	minNodeSlots   = 16
	capacityFactor = 2 // slots per key at (re)build
	maxNodeSlots   = 1 << 22
)

// slot states
type slotKind uint8

const (
	slotEmpty slotKind = iota
	slotEntry
	slotChild
	// slotRun holds a small sorted run of records whose keys are
	// indistinguishable at float64 resolution (distinct uint64 keys above
	// 2^53 can round to the same float); no linear model can separate
	// them, so they are searched directly.
	slotRun
)

type slot struct {
	kind  slotKind
	key   core.Key
	val   core.Value
	child *node
	run   []core.KV
}

type node struct {
	slope     float64
	base      float64 // predictions use slope*(key-base) to avoid cancellation
	slots     []slot
	size      int // entries in this subtree
	conflicts int // conflicts since (re)build
	buildSize int // subtree size at (re)build
}

// Index is a LIPP tree. The zero value is not usable; call New or Bulk.
type Index struct {
	root *node
	size int
	// Diagnostics.
	Conflicts int
	Rebuilds  int

	hook obs.Hook
}

// SetObserver installs r to receive structural events (conflict-child
// creation, subtree rebuilds) and per-lookup descent depth; nil detaches.
// LIPP is search-free — positions are precise, so there is no error window —
// which means the core search recorder never fires for it. Instead the
// recorded "probes" are the node hops of the descent, with window 0.
func (ix *Index) SetObserver(r obs.Recorder) { ix.hook.SetRecorder(r) }

// New returns an empty index.
func New() *Index {
	return &Index{root: newNode(nil, nil, minNodeSlots)}
}

// Bulk builds an index from records sorted ascending by key (duplicate
// keys: last wins).
func Bulk(recs []core.KV) (*Index, error) {
	for i := 1; i < len(recs); i++ {
		if recs[i].Key < recs[i-1].Key {
			return nil, fmt.Errorf("lipp: bulk input not sorted at %d", i)
		}
	}
	keys := make([]core.Key, 0, len(recs))
	vals := make([]core.Value, 0, len(recs))
	for i := range recs {
		if len(keys) > 0 && keys[len(keys)-1] == recs[i].Key {
			vals[len(vals)-1] = recs[i].Value
			continue
		}
		keys = append(keys, recs[i].Key)
		vals = append(vals, recs[i].Value)
	}
	ix := &Index{}
	ix.root = newNode(keys, vals, 0)
	ix.size = len(keys)
	return ix, nil
}

// newNode builds a node over sorted distinct keys. capHint of 0 selects
// capacityFactor * len(keys).
func newNode(keys []core.Key, vals []core.Value, capHint int) *node {
	n := len(keys)
	c := capHint
	if c == 0 {
		c = capacityFactor * n
	}
	if c < minNodeSlots {
		c = minNodeSlots
	}
	if c > maxNodeSlots {
		c = maxNodeSlots
	}
	nd := &node{slots: make([]slot, c), size: n, buildSize: n}
	if n == 0 {
		return nd
	}
	lo, hi := float64(keys[0]), float64(keys[n-1])
	nd.base = lo
	if hi > lo {
		nd.slope = float64(c-1) / (hi - lo)
	} else {
		nd.slope = 0
	}
	// Place keys; colliding runs become children.
	i := 0
	for i < n {
		s := nd.predict(keys[i])
		j := i + 1
		for j < n && nd.predict(keys[j]) == s {
			j++
		}
		switch {
		case j-i == 1:
			nd.slots[s] = slot{kind: slotEntry, key: keys[i], val: vals[i]}
		case float64(keys[i]) == float64(keys[j-1]):
			// Float-indistinguishable: store as a searched run.
			run := make([]core.KV, j-i)
			for t := i; t < j; t++ {
				run[t-i] = core.KV{Key: keys[t], Value: vals[t]}
			}
			nd.slots[s] = slot{kind: slotRun, run: run}
		default:
			child := newNode(keys[i:j], vals[i:j], 0)
			nd.slots[s] = slot{kind: slotChild, child: child}
		}
		i = j
	}
	return nd
}

func (nd *node) predict(k core.Key) int {
	// Clamp in float space: for huge keys the product can exceed the int64
	// range, and converting such a float to int is implementation-defined
	// (minInt64 on amd64), which would fold large keys onto slot 0 and
	// break the precise-position ordering invariant.
	p := nd.slope * (float64(k) - nd.base)
	if !(p > 0) { // also catches NaN from 0*Inf degenerate models
		return 0
	}
	if p >= float64(len(nd.slots)) {
		return len(nd.slots) - 1
	}
	return int(p)
}

// Len returns the number of records.
func (ix *Index) Len() int { return ix.size }

// Get returns the value stored for k. Lookup is search-free: it follows
// predicted slots only.
func (ix *Index) Get(k core.Key) (core.Value, bool) {
	if r := ix.hook.Recorder(); r != nil {
		return ix.getRecorded(k, r)
	}
	nd := ix.root
	for {
		s := &nd.slots[nd.predict(k)]
		switch s.kind {
		case slotEmpty:
			return 0, false
		case slotEntry:
			if s.key == k {
				return s.val, true
			}
			return 0, false
		case slotRun:
			i := core.LowerBoundKV(s.run, k)
			if i < len(s.run) && s.run[i].Key == k {
				return s.run[i].Value, true
			}
			return 0, false
		case slotChild:
			nd = s.child
		}
	}
}

// getRecorded is the recording twin of Get: it counts node hops as probes
// (window 0 — precise positions have no error window) and records once.
func (ix *Index) getRecorded(k core.Key, r obs.Recorder) (core.Value, bool) {
	nd := ix.root
	depth := 1
	for {
		s := &nd.slots[nd.predict(k)]
		switch s.kind {
		case slotEmpty:
			r.RecordSearch(depth, 0)
			return 0, false
		case slotEntry:
			r.RecordSearch(depth, 0)
			if s.key == k {
				return s.val, true
			}
			return 0, false
		case slotRun:
			r.RecordSearch(depth, len(s.run))
			i := core.LowerBoundKV(s.run, k)
			if i < len(s.run) && s.run[i].Key == k {
				return s.run[i].Value, true
			}
			return 0, false
		case slotChild:
			depth++
			nd = s.child
		}
	}
}

// Insert upserts (k, v); returns true if the key was new.
func (ix *Index) Insert(k core.Key, v core.Value) bool {
	path := make([]*node, 0, 16)
	nd := ix.root
	var added bool
	for {
		path = append(path, nd)
		s := &nd.slots[nd.predict(k)]
		if s.kind == slotEmpty {
			*s = slot{kind: slotEntry, key: k, val: v}
			added = true
			break
		}
		if s.kind == slotEntry {
			if s.key == k {
				s.val = v
				return false
			}
			// Conflict: push both entries into a fresh child (or a run
			// when the keys collide at float64 resolution).
			ok, ov := s.key, s.val
			var ckeys []core.Key
			var cvals []core.Value
			if ok < k {
				ckeys = []core.Key{ok, k}
				cvals = []core.Value{ov, v}
			} else {
				ckeys = []core.Key{k, ok}
				cvals = []core.Value{v, ov}
			}
			if float64(ckeys[0]) == float64(ckeys[1]) {
				*s = slot{kind: slotRun, run: []core.KV{
					{Key: ckeys[0], Value: cvals[0]},
					{Key: ckeys[1], Value: cvals[1]},
				}}
			} else {
				*s = slot{kind: slotChild, child: newConflictNode(ckeys, cvals)}
			}
			nd.conflicts++
			ix.Conflicts++
			ix.hook.Emit(obs.EvNodeSplit, 2, "conflict")
			added = true
			break
		}
		if s.kind == slotRun {
			i := core.LowerBoundKV(s.run, k)
			if i < len(s.run) && s.run[i].Key == k {
				s.run[i].Value = v
				return false
			}
			s.run = append(s.run, core.KV{})
			copy(s.run[i+1:], s.run[i:])
			s.run[i] = core.KV{Key: k, Value: v}
			added = true
			break
		}
		nd = s.child
	}
	if added {
		ix.size++
		for _, p := range path {
			p.size++
		}
		ix.maybeRebuild(path)
	}
	return added
}

// newConflictNode builds a 2-entry child; the caller guarantees the keys
// are float64-distinguishable, so the endpoint-scaled model separates them
// at any capacity.
func newConflictNode(keys []core.Key, vals []core.Value) *node {
	return newNode(keys, vals, minNodeSlots)
}

// maybeRebuild rebuilds the shallowest subtree that has grown well beyond
// its size at build time: conflict chains accumulated since then are
// flattened into a single fresh node sized for the current contents. The
// geometric trigger makes rebuild cost O(log n) amortized per insert.
func (ix *Index) maybeRebuild(path []*node) {
	for _, nd := range path {
		if nd.size > 4*nd.buildSize+64 {
			keys := make([]core.Key, 0, nd.size)
			vals := make([]core.Value, 0, nd.size)
			collect(nd, &keys, &vals)
			rebuilt := newNode(keys, vals, 0)
			*nd = *rebuilt
			ix.Rebuilds++
			ix.hook.Emit(obs.EvRetrain, len(keys), "rebuild")
			return
		}
	}
}

// collect appends the subtree's entries in key order.
func collect(nd *node, keys *[]core.Key, vals *[]core.Value) {
	for i := range nd.slots {
		s := &nd.slots[i]
		switch s.kind {
		case slotEntry:
			*keys = append(*keys, s.key)
			*vals = append(*vals, s.val)
		case slotRun:
			for _, r := range s.run {
				*keys = append(*keys, r.Key)
				*vals = append(*vals, r.Value)
			}
		case slotChild:
			collect(s.child, keys, vals)
		}
	}
}

// Delete removes k, returning true if present. The slot is emptied; child
// chains are not collapsed (as in the paper, space is reclaimed at the
// next rebuild).
func (ix *Index) Delete(k core.Key) bool {
	nd := ix.root
	var path []*node
	for {
		path = append(path, nd)
		s := &nd.slots[nd.predict(k)]
		switch s.kind {
		case slotEmpty:
			return false
		case slotEntry:
			if s.key != k {
				return false
			}
			*s = slot{}
			ix.size--
			for _, p := range path {
				p.size--
			}
			return true
		case slotRun:
			i := core.LowerBoundKV(s.run, k)
			if i >= len(s.run) || s.run[i].Key != k {
				return false
			}
			s.run = append(s.run[:i], s.run[i+1:]...)
			if len(s.run) == 0 {
				*s = slot{}
			}
			ix.size--
			for _, p := range path {
				p.size--
			}
			return true
		case slotChild:
			nd = s.child
		}
	}
}

// Range calls fn for records with lo <= key <= hi in ascending key order
// (model placement is monotone, so slot order equals key order); fn
// returning false stops. Returns records visited.
func (ix *Index) Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	count := 0
	var rec func(nd *node) bool
	rec = func(nd *node) bool {
		start := 0
		if nd.size > 0 {
			start = nd.predict(lo)
			// Entries strictly left of the predicted slot are < lo... only
			// when lo itself maps there; conservative: start at the slot.
		}
		for i := start; i < len(nd.slots); i++ {
			s := &nd.slots[i]
			switch s.kind {
			case slotEntry:
				if s.key < lo {
					continue
				}
				if s.key > hi {
					return false
				}
				count++
				if !fn(s.key, s.val) {
					return false
				}
			case slotRun:
				for _, r := range s.run {
					if r.Key < lo {
						continue
					}
					if r.Key > hi {
						return false
					}
					count++
					if !fn(r.Key, r.Value) {
						return false
					}
				}
			case slotChild:
				if !rec(s.child) {
					return false
				}
			}
		}
		return true
	}
	rec(ix.root)
	return count
}

// Height returns the maximum node depth.
func (ix *Index) Height() int {
	var rec func(nd *node) int
	rec = func(nd *node) int {
		m := 1
		for i := range nd.slots {
			if nd.slots[i].kind == slotChild {
				if h := rec(nd.slots[i].child) + 1; h > m {
					m = h
				}
			}
		}
		return m
	}
	return rec(ix.root)
}

// Stats reports structure statistics.
func (ix *Index) Stats() core.Stats {
	var nodes, slots int
	var rec func(nd *node)
	rec = func(nd *node) {
		nodes++
		slots += len(nd.slots)
		for i := range nd.slots {
			switch nd.slots[i].kind {
			case slotChild:
				rec(nd.slots[i].child)
			case slotRun:
				slots += len(nd.slots[i].run)
			}
		}
	}
	rec(ix.root)
	return core.Stats{
		Name:       "lipp",
		Count:      ix.size,
		IndexBytes: nodes*40 + slots*8, // models + slot overhead beyond data
		DataBytes:  slots * 17,
		Height:     ix.Height(),
		Models:     nodes,
	}
}
