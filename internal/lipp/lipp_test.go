package lipp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

func TestBulkAllDistributions(t *testing.T) {
	for _, kind := range dataset.Kinds() {
		keys, err := dataset.Keys(kind, 8000, 601)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := Bulk(dataset.KV(keys))
		if err != nil {
			t.Fatal(err)
		}
		if ix.Len() != 8000 {
			t.Fatalf("%s: len = %d", kind, ix.Len())
		}
		for _, k := range keys {
			v, ok := ix.Get(k)
			if !ok || v != dataset.PayloadFor(k) {
				t.Fatalf("%s: Get(%d) = %d,%v", kind, k, v, ok)
			}
		}
		r := rand.New(rand.NewSource(602))
		for i := 0; i+1 < len(keys); i += 23 {
			if keys[i]+1 >= keys[i+1] {
				continue
			}
			probe := keys[i] + 1 + core.Key(r.Int63n(int64(keys[i+1]-keys[i]-1)))
			if _, ok := ix.Get(probe); ok {
				t.Fatalf("%s: phantom %d", kind, probe)
			}
		}
	}
}

func TestInsertFromEmpty(t *testing.T) {
	ix := New()
	const n = 20000
	r := rand.New(rand.NewSource(603))
	perm := r.Perm(n)
	for _, i := range perm {
		if !ix.Insert(core.Key(i*5), core.Value(i)) {
			t.Fatalf("Insert(%d) reported existing", i*5)
		}
	}
	if ix.Len() != n {
		t.Fatalf("len = %d", ix.Len())
	}
	for i := 0; i < n; i++ {
		v, ok := ix.Get(core.Key(i * 5))
		if !ok || v != core.Value(i) {
			t.Fatalf("Get(%d) = %d,%v", i*5, v, ok)
		}
	}
	if ix.Conflicts == 0 {
		t.Fatal("expected conflicts during random inserts")
	}
	if ix.Rebuilds == 0 {
		t.Fatal("expected adjustment rebuilds")
	}
	if h := ix.Height(); h > 40 {
		t.Fatalf("height %d looks unbounded", h)
	}
}

func TestUpsertAndDelete(t *testing.T) {
	ix := New()
	ix.Insert(9, 1)
	if ix.Insert(9, 2) {
		t.Fatal("upsert reported new")
	}
	if v, _ := ix.Get(9); v != 2 {
		t.Fatal("upsert value")
	}
	if !ix.Delete(9) {
		t.Fatal("delete missed")
	}
	if ix.Delete(9) {
		t.Fatal("double delete")
	}
	if _, ok := ix.Get(9); ok {
		t.Fatal("deleted key found")
	}
	if ix.Len() != 0 {
		t.Fatalf("len = %d", ix.Len())
	}
}

func TestRangeOrdered(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Clustered, 10000, 604)
	ix, err := Bulk(dataset.KV(keys))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range dataset.Ranges(keys, 30, 0.005, 605) {
		want := core.UpperBound(keys, q.Hi) - core.LowerBound(keys, q.Lo)
		var got []core.Key
		n := ix.Range(q.Lo, q.Hi, func(k core.Key, v core.Value) bool {
			got = append(got, k)
			return true
		})
		if n != want {
			t.Fatalf("Range(%d,%d) = %d, want %d", q.Lo, q.Hi, n, want)
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatal("range out of order")
			}
		}
	}
	count := 0
	ix.Range(0, ^core.Key(0), func(core.Key, core.Value) bool { count++; return count < 6 })
	if count != 6 {
		t.Fatalf("early stop = %d", count)
	}
}

func TestFloatCollidingKeys(t *testing.T) {
	// Distinct uint64 keys above 2^53 that round to identical float64s.
	base := core.Key(1) << 60
	var recs []core.KV
	for i := 0; i < 64; i++ {
		recs = append(recs, core.KV{Key: base + core.Key(i), Value: core.Value(i)})
	}
	ix, err := Bulk(recs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		v, ok := ix.Get(r.Key)
		if !ok || v != core.Value(i) {
			t.Fatalf("float-colliding Get(%d) = %d,%v", r.Key, v, ok)
		}
	}
	// Insert more colliding keys dynamically.
	ix2 := New()
	for i := 0; i < 64; i++ {
		if !ix2.Insert(base+core.Key(i), core.Value(i)) {
			t.Fatal("insert reported existing")
		}
	}
	if ix2.Len() != 64 {
		t.Fatalf("len = %d", ix2.Len())
	}
	for i := 0; i < 64; i++ {
		if v, ok := ix2.Get(base + core.Key(i)); !ok || v != core.Value(i) {
			t.Fatalf("dynamic float-colliding Get failed at %d", i)
		}
	}
	// Delete half of them.
	for i := 0; i < 64; i += 2 {
		if !ix2.Delete(base + core.Key(i)) {
			t.Fatalf("delete %d missed", i)
		}
	}
	if ix2.Len() != 32 {
		t.Fatalf("len = %d", ix2.Len())
	}
	// Range over them.
	n := ix2.Range(base, base+64, func(core.Key, core.Value) bool { return true })
	if n != 32 {
		t.Fatalf("range over runs = %d", n)
	}
}

func TestMixedWorkloadMatchesMap(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(606))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ix := New()
		ref := map[core.Key]core.Value{}
		for op := 0; op < 5000; op++ {
			k := core.Key(r.Intn(1500))
			switch r.Intn(4) {
			case 0, 1:
				v := core.Value(r.Uint64())
				ix.Insert(k, v)
				ref[k] = v
			case 2:
				got := ix.Delete(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			case 3:
				v, ok := ix.Get(k)
				wv, wok := ref[k]
				if ok != wok || (ok && v != wv) {
					return false
				}
			}
			if ix.Len() != len(ref) {
				return false
			}
		}
		seen := 0
		okAll := true
		ix.Range(0, ^core.Key(0), func(k core.Key, v core.Value) bool {
			wv, wok := ref[k]
			if !wok || wv != v {
				okAll = false
				return false
			}
			seen++
			return true
		})
		return okAll && seen == len(ref)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestErrorsAndStats(t *testing.T) {
	if _, err := Bulk([]core.KV{{Key: 5}, {Key: 1}}); err == nil {
		t.Fatal("unsorted accepted")
	}
	ix, err := Bulk([]core.KV{{Key: 1, Value: 1}, {Key: 1, Value: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 1 {
		t.Fatal("dup bulk len")
	}
	if v, _ := ix.Get(1); v != 2 {
		t.Fatal("dup bulk last-wins")
	}
	empty, _ := Bulk(nil)
	if _, ok := empty.Get(1); ok {
		t.Fatal("empty get")
	}
	keys, _ := dataset.Keys(dataset.Uniform, 20000, 607)
	big, _ := Bulk(dataset.KV(keys))
	st := big.Stats()
	if st.Count != 20000 || st.Models < 1 || st.Height < 1 || st.IndexBytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPreciseLookupNoSearch(t *testing.T) {
	// The defining property: after Bulk, every present key is found by
	// following predictions only — verified implicitly by Get — and the
	// tree is shallow for smooth data.
	keys, _ := dataset.Keys(dataset.Uniform, 50000, 608)
	ix, _ := Bulk(dataset.KV(keys))
	if h := ix.Height(); h > 12 {
		t.Fatalf("height %d too deep for uniform data", h)
	}
}

// TestPredictHugeKeyOverflow is a regression test for a bug found by the
// conform differential suite (shrunk repro: bulk-load {1, 2, MaxUint64}).
// predict used to convert slope*(float64(k)-base) to int before clamping;
// for keys near 2^64 the product exceeds the int64 range and the conversion
// is implementation-defined (minInt64 on amd64), so the huge key was folded
// onto slot 0 and the tree's key ordering broke.
func TestPredictHugeKeyOverflow(t *testing.T) {
	const huge = ^core.Key(0) // math.MaxUint64
	cases := [][]core.KV{
		{{Key: 1, Value: 10}, {Key: 2, Value: 20}, {Key: huge, Value: 30}},
		{{Key: 0, Value: 1}, {Key: huge - 1, Value: 2}, {Key: huge, Value: 3}},
	}
	for ci, recs := range cases {
		// Both construction paths must survive huge keys.
		bulk, err := Bulk(append([]core.KV(nil), recs...))
		if err != nil {
			t.Fatalf("case %d: Bulk: %v", ci, err)
		}
		inc := New()
		for _, kv := range recs {
			inc.Insert(kv.Key, kv.Value)
		}
		for name, ix := range map[string]*Index{"bulk": bulk, "incremental": inc} {
			for _, kv := range recs {
				if v, ok := ix.Get(kv.Key); !ok || v != kv.Value {
					t.Errorf("case %d/%s: Get(%d) = (%d, %v), want (%d, true)",
						ci, name, kv.Key, v, ok, kv.Value)
				}
			}
			prev, seen, n := core.Key(0), false, 0
			ix.Range(0, huge, func(k core.Key, _ core.Value) bool {
				if seen && k <= prev {
					t.Errorf("case %d/%s: Range not strictly ascending: %d after %d",
						ci, name, k, prev)
					return false
				}
				seen, prev = true, k
				n++
				return true
			})
			if n != len(recs) {
				t.Errorf("case %d/%s: Range visited %d records, want %d", ci, name, n, len(recs))
			}
			if err := ix.CheckInvariants(); err != nil {
				t.Errorf("case %d/%s: %v", ci, name, err)
			}
		}
	}
}
