package lipp

import (
	"fmt"

	"github.com/lix-go/lix/internal/core"
)

// CheckInvariants verifies LIPP's defining properties: precise positions
// (every stored entry sits at exactly the slot its owning node's model
// predicts, and every key in a child subtree predicts the child's slot in
// the parent), sorted runs, accurate per-node subtree sizes, a globally
// ascending in-order traversal, and the root size accounting. It is O(n·h)
// and intended for tests.
func (ix *Index) CheckInvariants() error {
	var last core.Key
	seen := false
	inOrder := func(k core.Key) error {
		if seen && k <= last {
			return fmt.Errorf("lipp: in-order traversal not strictly ascending at key %d", k)
		}
		seen, last = true, k
		return nil
	}

	var walk func(nd *node) (int, error)
	walk = func(nd *node) (int, error) {
		if nd == nil {
			return 0, fmt.Errorf("lipp: nil node")
		}
		entries := 0
		for i := range nd.slots {
			s := &nd.slots[i]
			switch s.kind {
			case slotEmpty:
			case slotEntry:
				if p := nd.predict(s.key); p != i {
					return 0, fmt.Errorf("lipp: entry %d sits at slot %d but model predicts %d", s.key, i, p)
				}
				if err := inOrder(s.key); err != nil {
					return 0, err
				}
				entries++
			case slotRun:
				if len(s.run) == 0 {
					return 0, fmt.Errorf("lipp: empty run at slot %d", i)
				}
				for j, r := range s.run {
					if j > 0 && r.Key <= s.run[j-1].Key {
						return 0, fmt.Errorf("lipp: run at slot %d not strictly ascending at %d", i, j)
					}
					if p := nd.predict(r.Key); p != i {
						return 0, fmt.Errorf("lipp: run key %d at slot %d but model predicts %d", r.Key, i, p)
					}
					if err := inOrder(r.Key); err != nil {
						return 0, err
					}
				}
				entries += len(s.run)
			case slotChild:
				if s.child == nil {
					return 0, fmt.Errorf("lipp: nil child at slot %d", i)
				}
				n, err := walk(s.child)
				if err != nil {
					return 0, err
				}
				entries += n
			default:
				return 0, fmt.Errorf("lipp: unknown slot kind %d", s.kind)
			}
		}
		if entries != nd.size {
			return 0, fmt.Errorf("lipp: node size=%d but subtree holds %d entries", nd.size, entries)
		}
		return entries, nil
	}
	total, err := walk(ix.root)
	if err != nil {
		return err
	}
	if total != ix.size {
		return fmt.Errorf("lipp: size=%d but tree holds %d entries", ix.size, total)
	}

	// Child-slot consistency: every key stored under a child must predict
	// that child's slot in the parent, or lookups would miss it.
	var checkChildren func(nd *node) error
	checkChildren = func(nd *node) error {
		for i := range nd.slots {
			s := &nd.slots[i]
			if s.kind != slotChild {
				continue
			}
			var keys []core.Key
			var vals []core.Value
			collect(s.child, &keys, &vals)
			for _, k := range keys {
				if p := nd.predict(k); p != i {
					return fmt.Errorf("lipp: key %d stored under child slot %d but parent predicts %d", k, i, p)
				}
			}
			if err := checkChildren(s.child); err != nil {
				return err
			}
		}
		return nil
	}
	return checkChildren(ix.root)
}
