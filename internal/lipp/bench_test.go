package lipp

import (
	"testing"

	"github.com/lix-go/lix/internal/dataset"
)

func BenchmarkGet(b *testing.B) {
	keys, _ := dataset.Keys(dataset.Lognormal, 1<<20, 1)
	ix, err := Bulk(dataset.KV(keys))
	if err != nil {
		b.Fatal(err)
	}
	probes := dataset.LookupMix(keys, 1<<16, 0.9, 2)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		v, _ := ix.Get(probes[i&(1<<16-1)])
		sink += v
	}
	_ = sink
}
