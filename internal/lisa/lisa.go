// Package lisa implements LISA (Li et al., "LISA: A Learned Index
// Structure for Spatial Data", SIGMOD 2020) in its in-memory form: a
// monotone *mapping function* projects points to one dimension via an
// equal-depth grid (grid cell rank plus a within-cell offset along
// dimension 0), the mapped domain is split into learned shards, and each
// shard holds a sorted run plus a delta buffer for updates. Shards that
// overflow split, keeping the structure balanced under inserts.
//
// Taxonomy: mutable / pure / delta-buffer insert / projected space.
package lisa

import (
	"fmt"
	"math"
	"sort"

	"github.com/lix-go/lix/internal/core"
)

// Config parameterizes a build.
type Config struct {
	// GridCols is the number of equal-depth slices per dimension (0 -> 16).
	GridCols int
	// ShardSize is the target records per shard (0 -> 1024).
	ShardSize int
	// DeltaCap triggers a shard merge (0 -> ShardSize/4).
	DeltaCap int
}

type mappedRec struct {
	m  float64
	pv core.PV
}

type shard struct {
	loM   float64 // smallest mapped value routed here
	recs  []mappedRec
	delta []mappedRec // sorted by m
}

// Index is a LISA index.
type Index struct {
	cfg    Config
	dim    int
	bounds [][]float64 // per dim: sorted column boundaries (len cols+1)
	shards []*shard
	// router: linear model over shard loM -> index, corrected by walk.
	slope, base float64
	size        int
	// Merges and Splits count shard maintenance events (diagnostics).
	Merges int
	Splits int
}

// Build constructs a LISA index over the points.
func Build(pvs []core.PV, cfg Config) (*Index, error) {
	if len(pvs) == 0 {
		return nil, fmt.Errorf("lisa: empty input")
	}
	dim := pvs[0].Point.Dim()
	for i := range pvs {
		if pvs[i].Point.Dim() != dim {
			return nil, fmt.Errorf("lisa: point %d dim %d, want %d", i, pvs[i].Point.Dim(), dim)
		}
	}
	if cfg.GridCols <= 0 {
		cfg.GridCols = 16
	}
	if cfg.ShardSize <= 0 {
		cfg.ShardSize = 1024
	}
	if cfg.DeltaCap <= 0 {
		cfg.DeltaCap = cfg.ShardSize / 4
		if cfg.DeltaCap < 16 {
			cfg.DeltaCap = 16
		}
	}
	ix := &Index{cfg: cfg, dim: dim, size: len(pvs)}
	// Equal-depth boundaries per dimension.
	ix.bounds = make([][]float64, dim)
	coord := make([]float64, len(pvs))
	for d := 0; d < dim; d++ {
		for i, pv := range pvs {
			coord[i] = pv.Point[d]
		}
		sort.Float64s(coord)
		b := make([]float64, cfg.GridCols+1)
		b[0] = math.Inf(-1)
		for c := 1; c < cfg.GridCols; c++ {
			b[c] = coord[c*len(coord)/cfg.GridCols]
		}
		b[cfg.GridCols] = math.Inf(1)
		// Boundaries must be strictly increasing for column search; nudge
		// duplicates (heavy ties collapse columns, which is harmless).
		for c := 1; c <= cfg.GridCols; c++ {
			if b[c] <= b[c-1] {
				b[c] = b[c-1]
			}
		}
		ix.bounds[d] = b
	}
	// Map and sort.
	ms := make([]mappedRec, len(pvs))
	for i, pv := range pvs {
		ms[i] = mappedRec{m: ix.mapPoint(pv.Point), pv: pv}
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].m < ms[j].m })
	// Shard.
	for i := 0; i < len(ms); i += cfg.ShardSize {
		end := i + cfg.ShardSize
		if end > len(ms) {
			end = len(ms)
		}
		sh := &shard{recs: append([]mappedRec(nil), ms[i:end]...)}
		sh.loM = sh.recs[0].m
		ix.shards = append(ix.shards, sh)
	}
	ix.shards[0].loM = math.Inf(-1)
	ix.retrainRouter()
	return ix, nil
}

func (ix *Index) retrainRouter() {
	n := len(ix.shards)
	if n < 2 {
		ix.slope, ix.base = 0, 0
		return
	}
	lo := ix.shards[1].loM
	hi := ix.shards[n-1].loM
	ix.base = lo
	if hi > lo {
		ix.slope = float64(n-2) / (hi - lo)
	} else {
		ix.slope = 0
	}
}

// column returns the grid column of v in dimension d.
func (ix *Index) column(d int, v float64) int {
	b := ix.bounds[d]
	// Last c with b[c] <= v; b[0] = -inf guarantees c >= 0.
	lo, hi := 0, len(b)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if b[mid] <= v {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if lo >= ix.cfg.GridCols {
		lo = ix.cfg.GridCols - 1
	}
	return lo
}

// cellRank flattens per-dimension columns.
func (ix *Index) cellRank(cols []int) float64 {
	r := 0
	for d := 0; d < ix.dim; d++ {
		r = r*ix.cfg.GridCols + cols[d]
	}
	return float64(r)
}

// frac returns the monotone within-cell offset of v along dimension 0
// given its column c, in [0, 1).
func (ix *Index) frac(c int, v float64) float64 {
	b := ix.bounds[0]
	lo, hi := b[c], b[c+1]
	if math.IsInf(lo, -1) || math.IsInf(hi, 1) || hi <= lo {
		// Open-ended edge cells: squash with a bounded sigmoid-ish map.
		return 0.5
	}
	f := (v - lo) / (hi - lo)
	if f < 0 {
		f = 0
	}
	if f >= 1 {
		f = math.Nextafter(1, 0)
	}
	return f
}

// cellM combines a cell rank with a within-cell fraction, guaranteeing the
// result stays strictly below rank+1 (the sum can otherwise round up at
// large ranks, colliding with the next cell's values).
func cellM(rank, f float64) float64 {
	m := rank + f
	if m >= rank+1 {
		m = math.Nextafter(rank+1, 0)
	}
	return m
}

// mapPoint is LISA's monotone mapping function M.
func (ix *Index) mapPoint(p core.Point) float64 {
	cols := make([]int, ix.dim)
	for d := 0; d < ix.dim; d++ {
		cols[d] = ix.column(d, p[d])
	}
	return cellM(ix.cellRank(cols), ix.frac(cols[0], p[0]))
}

// locate returns the shard index owning mapped value m.
func (ix *Index) locate(m float64) int {
	i := core.Clamp(int(ix.slope*(m-ix.base))+1, 0, len(ix.shards)-1)
	for i+1 < len(ix.shards) && m >= ix.shards[i+1].loM {
		i++
	}
	for i > 0 && m < ix.shards[i].loM {
		i--
	}
	return i
}

// Len returns the number of points.
func (ix *Index) Len() int { return ix.size }

// Shards returns the shard count.
func (ix *Index) Shards() int { return len(ix.shards) }

func lowerBoundM(recs []mappedRec, m float64) int {
	lo, hi := 0, len(recs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if recs[mid].m < m {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// firstShardFor returns the index of the first shard that can hold mapped
// value m. Equal mapped values may span several shards after count-based
// splits, so this backtracks from the routing result.
func (ix *Index) firstShardFor(m float64) int {
	si := ix.locate(m)
	for si > 0 && ix.shards[si].loM >= m {
		si--
	}
	return si
}

// forEachEq visits every record with mapped value exactly m.
func (ix *Index) forEachEq(m float64, fn func(rec *mappedRec) bool) {
	for si := ix.firstShardFor(m); si < len(ix.shards); si++ {
		sh := ix.shards[si]
		if sh.loM > m {
			return
		}
		for _, run := range [][]mappedRec{sh.delta, sh.recs} {
			for i := lowerBoundM(run, m); i < len(run) && run[i].m == m; i++ {
				if !fn(&run[i]) {
					return
				}
			}
		}
	}
}

// Lookup returns the value of the point equal to p.
func (ix *Index) Lookup(p core.Point) (core.Value, bool) {
	if p.Dim() != ix.dim {
		return 0, false
	}
	m := ix.mapPoint(p)
	var out core.Value
	found := false
	ix.forEachEq(m, func(rec *mappedRec) bool {
		if rec.pv.Point.Equal(p) {
			out, found = rec.pv.Value, true
			return false
		}
		return true
	})
	return out, found
}

// Insert adds a point.
func (ix *Index) Insert(p core.Point, v core.Value) error {
	if p.Dim() != ix.dim {
		return fmt.Errorf("lisa: point dim %d, want %d", p.Dim(), ix.dim)
	}
	m := ix.mapPoint(p)
	sh := ix.shards[ix.locate(m)]
	i := lowerBoundM(sh.delta, m)
	sh.delta = append(sh.delta, mappedRec{})
	copy(sh.delta[i+1:], sh.delta[i:])
	sh.delta[i] = mappedRec{m: m, pv: core.PV{Point: p.Clone(), Value: v}}
	ix.size++
	if len(sh.delta) >= ix.cfg.DeltaCap {
		ix.mergeShard(sh)
	}
	return nil
}

// Delete removes one point equal to p with matching value.
func (ix *Index) Delete(p core.Point, v core.Value) bool {
	if p.Dim() != ix.dim {
		return false
	}
	m := ix.mapPoint(p)
	for si := ix.firstShardFor(m); si < len(ix.shards); si++ {
		sh := ix.shards[si]
		if sh.loM > m {
			break
		}
		for _, runp := range []*[]mappedRec{&sh.delta, &sh.recs} {
			run := *runp
			for i := lowerBoundM(run, m); i < len(run) && run[i].m == m; i++ {
				if run[i].pv.Value == v && run[i].pv.Point.Equal(p) {
					*runp = append(run[:i], run[i+1:]...)
					ix.size--
					return true
				}
			}
		}
	}
	return false
}

// mergeShard folds the delta into the base run and splits if oversized.
func (ix *Index) mergeShard(sh *shard) {
	merged := make([]mappedRec, 0, len(sh.recs)+len(sh.delta))
	i, j := 0, 0
	for i < len(sh.recs) || j < len(sh.delta) {
		switch {
		case i >= len(sh.recs):
			merged = append(merged, sh.delta[j])
			j++
		case j >= len(sh.delta):
			merged = append(merged, sh.recs[i])
			i++
		case sh.delta[j].m < sh.recs[i].m:
			merged = append(merged, sh.delta[j])
			j++
		default:
			merged = append(merged, sh.recs[i])
			i++
		}
	}
	sh.delta = nil
	ix.Merges++
	if len(merged) <= 2*ix.cfg.ShardSize {
		sh.recs = merged
		return
	}
	// Split into target-size shards.
	pos := ix.shardIndex(sh)
	var repl []*shard
	for s := 0; s < len(merged); s += ix.cfg.ShardSize {
		e := s + ix.cfg.ShardSize
		if e > len(merged) {
			e = len(merged)
		}
		ns := &shard{recs: append([]mappedRec(nil), merged[s:e]...)}
		ns.loM = ns.recs[0].m
		repl = append(repl, ns)
	}
	repl[0].loM = sh.loM
	out := make([]*shard, 0, len(ix.shards)-1+len(repl))
	out = append(out, ix.shards[:pos]...)
	out = append(out, repl...)
	out = append(out, ix.shards[pos+1:]...)
	ix.shards = out
	ix.Splits++
	ix.retrainRouter()
}

func (ix *Index) shardIndex(sh *shard) int {
	for i, s := range ix.shards {
		if s == sh {
			return i
		}
	}
	panic("lisa: shard not found")
}

// Search calls fn for every point in rect; fn returning false stops.
// Returns points visited and candidate records scanned.
func (ix *Index) Search(rect core.Rect, fn func(core.PV) bool) (visited, scanned int) {
	if rect.Dim() != ix.dim {
		return 0, 0
	}
	lo := make([]int, ix.dim)
	hi := make([]int, ix.dim)
	for d := 0; d < ix.dim; d++ {
		lo[d] = ix.column(d, rect.Min[d])
		hi[d] = ix.column(d, rect.Max[d])
	}
	cols := make([]int, ix.dim)
	copy(cols, lo)
	stop := false
	for !stop {
		// Mapped interval of this cell restricted to the rect's dim-0 span.
		rank := ix.cellRank(cols)
		var fLo, fHi float64
		if cols[0] == lo[0] {
			fLo = ix.frac(cols[0], rect.Min[0])
		}
		if cols[0] == hi[0] {
			fHi = ix.frac(cols[0], rect.Max[0])
		} else {
			// Strictly below the next cell's rank so no record is scanned
			// by two adjacent cell intervals.
			fHi = math.Nextafter(1, 0)
		}
		mLo := cellM(rank, fLo)
		mHi := cellM(rank, fHi)
		v, s, cont := ix.scanMapped(mLo, mHi, rect, fn)
		visited += v
		scanned += s
		if !cont {
			return visited, scanned
		}
		// Odometer.
		d := ix.dim - 1
		for d >= 0 {
			cols[d]++
			if cols[d] <= hi[d] {
				break
			}
			cols[d] = lo[d]
			d--
		}
		if d < 0 {
			break
		}
	}
	return visited, scanned
}

// scanMapped scans shards covering [mLo, mHi], filtering by rect.
func (ix *Index) scanMapped(mLo, mHi float64, rect core.Rect, fn func(core.PV) bool) (visited, scanned int, cont bool) {
	for si := ix.firstShardFor(mLo); si < len(ix.shards); si++ {
		sh := ix.shards[si]
		if sh.loM > mHi {
			break
		}
		for _, run := range [][]mappedRec{sh.recs, sh.delta} {
			for i := lowerBoundM(run, mLo); i < len(run) && run[i].m <= mHi; i++ {
				scanned++
				if rect.Contains(run[i].pv.Point) {
					visited++
					if !fn(run[i].pv) {
						return visited, scanned, false
					}
				}
			}
		}
	}
	return visited, scanned, true
}

// KNN returns the k nearest points to q in ascending distance order by
// doubling an axis-aligned window until the k-th candidate is inside the
// window's inscribed ball.
func (ix *Index) KNN(q core.Point, k int) []core.PV {
	if k <= 0 || q.Dim() != ix.dim || ix.size == 0 {
		return nil
	}
	if k > ix.size {
		k = ix.size
	}
	span := 0.0
	for d := 0; d < ix.dim; d++ {
		b := ix.bounds[d]
		// Use the finite interior span.
		if len(b) >= 3 {
			s := b[len(b)-2] - b[1]
			if s > span {
				span = s
			}
		}
	}
	if span <= 0 {
		span = 1
	}
	w := span * 0.02
	for {
		rect := core.Rect{Min: make(core.Point, ix.dim), Max: make(core.Point, ix.dim)}
		for d := 0; d < ix.dim; d++ {
			rect.Min[d] = q[d] - w
			rect.Max[d] = q[d] + w
		}
		var cand []core.PV
		ix.Search(rect, func(pv core.PV) bool {
			cand = append(cand, pv)
			return true
		})
		if len(cand) >= k {
			sort.Slice(cand, func(i, j int) bool {
				return q.DistSq(cand[i].Point) < q.DistSq(cand[j].Point)
			})
			if q.DistSq(cand[k-1].Point) <= w*w {
				return cand[:k]
			}
		}
		// Stop only once the window provably holds every stored point —
		// capping expansion by the data span alone terminated too early
		// when the extent was degenerate (all points equal) or q lay far
		// outside it. Inserts may land in the grid's unbounded edge cells,
		// so the exact count, not geometry, is the completeness test; w
		// doubles until the window swallows every finite point.
		if len(cand) == ix.size {
			sort.Slice(cand, func(i, j int) bool {
				return q.DistSq(cand[i].Point) < q.DistSq(cand[j].Point)
			})
			if len(cand) > k {
				cand = cand[:k]
			}
			return cand
		}
		w *= 2
	}
}

// Stats reports structure statistics.
func (ix *Index) Stats() core.Stats {
	var deltaRecs int
	for _, sh := range ix.shards {
		deltaRecs += len(sh.delta)
	}
	return core.Stats{
		Name:       "lisa",
		Count:      ix.size,
		IndexBytes: len(ix.shards)*32 + ix.dim*(ix.cfg.GridCols+1)*8 + deltaRecs*8,
		DataBytes:  ix.size * (8*ix.dim + 16),
		Height:     2,
		Models:     len(ix.shards) + ix.dim,
	}
}
