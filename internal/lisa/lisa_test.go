package lisa

import (
	"sort"
	"testing"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

func bruteCount(pvs []core.PV, rect core.Rect) int {
	n := 0
	for _, pv := range pvs {
		if rect.Contains(pv.Point) {
			n++
		}
	}
	return n
}

func TestSearchMatchesBrute(t *testing.T) {
	for _, kind := range dataset.SpatialKinds() {
		for _, dim := range []int{2, 3} {
			pts, _ := dataset.Points(kind, 5000, dim, 1301)
			pvs := dataset.PV(pts)
			ix, err := Build(pvs, Config{})
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range dataset.RectQueries(pts, 25, 0.01, 1302) {
				want := bruteCount(pvs, q)
				got, scanned := ix.Search(q, func(core.PV) bool { return true })
				if got != want {
					t.Fatalf("%s dim=%d q%d: got %d, want %d", kind, dim, qi, got, want)
				}
				if scanned < got {
					t.Fatal("scanned < visited")
				}
			}
		}
	}
}

func TestLookup(t *testing.T) {
	pts, _ := dataset.Points(dataset.SOSMLike, 4000, 2, 1303)
	pvs := dataset.PV(pts)
	ix, _ := Build(pvs, Config{})
	for i, pv := range pvs {
		v, ok := ix.Lookup(pv.Point)
		if !ok {
			t.Fatalf("Lookup miss at %d", i)
		}
		if !pvs[v].Point.Equal(pv.Point) {
			t.Fatal("Lookup wrong value")
		}
	}
	if _, ok := ix.Lookup(core.Point{-1, -1}); ok {
		t.Fatal("phantom")
	}
}

func TestInsertAndSplit(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 2000, 2, 1304)
	pvs := dataset.PV(pts)
	ix, _ := Build(pvs, Config{ShardSize: 256, DeltaCap: 32})
	before := ix.Shards()
	extra, _ := dataset.Points(dataset.SUniform, 6000, 2, 1305)
	for i, p := range extra {
		if err := ix.Insert(p, core.Value(100000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 8000 {
		t.Fatalf("len = %d", ix.Len())
	}
	if ix.Splits == 0 || ix.Shards() <= before {
		t.Fatalf("expected shard splits (splits=%d shards %d->%d)", ix.Splits, before, ix.Shards())
	}
	// All inserted points findable.
	for i, p := range extra {
		v, ok := ix.Lookup(p)
		if !ok {
			t.Fatalf("inserted point %d lost", i)
		}
		_ = v
	}
	// Range still exact.
	all := append(append([]core.PV(nil), pvs...), dataset.PV(extra)...)
	for qi, q := range dataset.RectQueries(pts, 15, 0.01, 1306) {
		want := 0
		for _, pv := range all {
			if q.Contains(pv.Point) {
				want++
			}
		}
		got, _ := ix.Search(q, func(core.PV) bool { return true })
		if got != want {
			t.Fatalf("q%d after inserts: got %d, want %d", qi, got, want)
		}
	}
}

func TestDelete(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 3000, 2, 1307)
	pvs := dataset.PV(pts)
	ix, _ := Build(pvs, Config{ShardSize: 512})
	for i := 0; i < len(pvs); i += 2 {
		if !ix.Delete(pvs[i].Point, pvs[i].Value) {
			t.Fatalf("Delete %d missed", i)
		}
	}
	if ix.Delete(pvs[0].Point, pvs[0].Value) {
		t.Fatal("double delete")
	}
	if ix.Len() != 1500 {
		t.Fatalf("len = %d", ix.Len())
	}
	for i, pv := range pvs {
		_, ok := ix.Lookup(pv.Point)
		want := i%2 == 1
		// Duplicate coordinates can make a deleted point still "found" via
		// its twin; only check the definite cases.
		if want && !ok {
			t.Fatalf("surviving point %d lost", i)
		}
	}
}

func TestKNNMatchesBrute(t *testing.T) {
	pts, _ := dataset.Points(dataset.SOSMLike, 3000, 2, 1308)
	pvs := dataset.PV(pts)
	ix, _ := Build(pvs, Config{})
	for _, k := range []int{1, 10, 50} {
		for qi, q := range dataset.KNNQueries(pts, 10, 1309) {
			ds := make([]float64, len(pvs))
			for i, pv := range pvs {
				ds[i] = q.DistSq(pv.Point)
			}
			sort.Float64s(ds)
			got := ix.KNN(q, k)
			if len(got) != k {
				t.Fatalf("q%d k=%d: len %d", qi, k, len(got))
			}
			for i, pv := range got {
				if d := q.DistSq(pv.Point); d != ds[i] {
					t.Fatalf("q%d k=%d i=%d: %g want %g", qi, k, i, d, ds[i])
				}
			}
		}
	}
}

func TestErrorsAndStats(t *testing.T) {
	if _, err := Build(nil, Config{}); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := Build([]core.PV{{Point: core.Point{1}}, {Point: core.Point{1, 2}}}, Config{}); err == nil {
		t.Fatal("mixed dims accepted")
	}
	pts, _ := dataset.Points(dataset.SUniform, 1000, 2, 1310)
	ix, _ := Build(dataset.PV(pts), Config{})
	if err := ix.Insert(core.Point{1}, 0); err == nil {
		t.Fatal("dim mismatch insert accepted")
	}
	if ix.Delete(core.Point{1}, 0) {
		t.Fatal("dim mismatch delete")
	}
	st := ix.Stats()
	if st.Count != 1000 || st.IndexBytes <= 0 || st.Models < 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEarlyStop(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 1000, 2, 1311)
	ix, _ := Build(dataset.PV(pts), Config{})
	all, _ := core.NewRect(core.Point{0, 0}, core.Point{dataset.Extent, dataset.Extent})
	count := 0
	ix.Search(all, func(core.PV) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop = %d", count)
	}
}

func TestDuplicatePoints(t *testing.T) {
	var pvs []core.PV
	for i := 0; i < 500; i++ {
		pvs = append(pvs, core.PV{Point: core.Point{42, 17}, Value: core.Value(i)})
	}
	ix, err := Build(pvs, Config{ShardSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	rect, _ := core.NewRect(core.Point{42, 17}, core.Point{42, 17})
	n, _ := ix.Search(rect, func(core.PV) bool { return true })
	if n != 500 {
		t.Fatalf("duplicate search = %d", n)
	}
}

// TestKNNDegenerateExtent is a regression test for a bug found by the
// conform differential suite (shrunk repro: one point at [100,100], query
// KNN([500,500], 1)). KNN capped its window expansion at a multiple of the
// grid's interior span, so with a degenerate extent (a single distinct
// location) — or a query far outside the extent — the window never reached
// the data and KNN returned no results. The window must grow until it
// provably holds every stored point, including ones inserted into the
// grid's unbounded edge cells after the build.
func TestKNNDegenerateExtent(t *testing.T) {
	single := []core.PV{{Point: core.Point{100, 100}, Value: 1}}
	ix, err := Build(single, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := ix.KNN(core.Point{500, 500}, 1)
	if len(got) != 1 || got[0].Value != 1 {
		t.Fatalf("KNN over single point = %v, want that point", got)
	}

	equal := make([]core.PV, 200)
	for i := range equal {
		equal[i] = core.PV{Point: core.Point{512, 512}, Value: core.Value(i)}
	}
	ix, err = Build(equal, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.KNN(core.Point{500, 500}, 3); len(got) != 3 {
		t.Fatalf("KNN over equal points returned %d results, want 3", len(got))
	}
	// A later insert far outside the original extent must be reachable.
	if err := ix.Insert(core.Point{9000, 9000}, 999); err != nil {
		t.Fatal(err)
	}
	got = ix.KNN(core.Point{9100, 9100}, 1)
	if len(got) != 1 || got[0].Value != 999 {
		t.Fatalf("KNN near out-of-extent insert = %v, want value 999", got)
	}
}
