package grid

import (
	"sort"
	"testing"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

func worldBounds(dim int) core.Rect {
	min := make(core.Point, dim)
	max := make(core.Point, dim)
	for d := range max {
		max[d] = dataset.Extent
	}
	return core.Rect{Min: min, Max: max}
}

func buildGrid(t *testing.T, pts []core.Point, cells int) (*Grid, []core.PV) {
	t.Helper()
	g, err := New(worldBounds(pts[0].Dim()), cells)
	if err != nil {
		t.Fatal(err)
	}
	pvs := dataset.PV(pts)
	for _, pv := range pvs {
		if err := g.Insert(pv.Point, pv.Value); err != nil {
			t.Fatal(err)
		}
	}
	return g, pvs
}

func TestSearchMatchesBrute(t *testing.T) {
	for _, dim := range []int{2, 3} {
		pts, _ := dataset.Points(dataset.SOSMLike, 3000, dim, 71)
		g, pvs := buildGrid(t, pts, 16)
		for qi, q := range dataset.RectQueries(pts, 30, 0.01, 72) {
			want := 0
			for _, pv := range pvs {
				if q.Contains(pv.Point) {
					want++
				}
			}
			n, buckets := g.Search(q, func(core.PV) bool { return true })
			if n != want {
				t.Fatalf("dim=%d q%d: got %d, want %d", dim, qi, n, want)
			}
			if buckets <= 0 {
				t.Fatal("no buckets")
			}
		}
	}
}

func TestKNNMatchesBrute(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 2000, 2, 73)
	g, pvs := buildGrid(t, pts, 20)
	for _, k := range []int{1, 9, 80} {
		for qi, q := range dataset.KNNQueries(pts, 15, 74) {
			ds := make([]float64, len(pvs))
			for i, pv := range pvs {
				ds[i] = q.DistSq(pv.Point)
			}
			sort.Float64s(ds)
			got := g.KNN(q, k)
			if len(got) != k {
				t.Fatalf("q%d k=%d: len %d", qi, k, len(got))
			}
			for i, pv := range got {
				if d := q.DistSq(pv.Point); d != ds[i] {
					t.Fatalf("q%d k=%d i=%d: %g want %g", qi, k, i, d, ds[i])
				}
			}
		}
	}
}

func TestDelete(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 500, 2, 75)
	g, pvs := buildGrid(t, pts, 8)
	for i := 0; i < 250; i++ {
		if !g.Delete(pvs[i].Point, pvs[i].Value) {
			t.Fatalf("delete %d missed", i)
		}
	}
	if g.Len() != 250 {
		t.Fatalf("len = %d", g.Len())
	}
	if g.Delete(pvs[0].Point, pvs[0].Value) {
		t.Fatal("double delete")
	}
	if g.Delete(core.Point{1}, 0) {
		t.Fatal("dim mismatch delete")
	}
}

func TestErrors(t *testing.T) {
	if _, err := New(core.Rect{}, 4); err == nil {
		t.Fatal("empty bounds accepted")
	}
	if _, err := New(worldBounds(2), 0); err == nil {
		t.Fatal("0 cells accepted")
	}
	if _, err := New(worldBounds(4), 1000); err == nil {
		t.Fatal("huge grid accepted")
	}
	g, _ := New(worldBounds(2), 4)
	if err := g.Insert(core.Point{1}, 0); err == nil {
		t.Fatal("dim mismatch insert accepted")
	}
	if got := g.KNN(core.Point{0, 0}, 3); got != nil {
		t.Fatal("kNN on empty")
	}
}

func TestOutOfBoundsClamping(t *testing.T) {
	g, _ := New(worldBounds(2), 4)
	if err := g.Insert(core.Point{-100, 2 * dataset.Extent}, 7); err != nil {
		t.Fatal(err)
	}
	// Searchable via a rect covering the boundary cells.
	rect, _ := core.NewRect(core.Point{-200, 0}, core.Point{0, 3 * dataset.Extent})
	found := false
	g.Search(rect, func(pv core.PV) bool {
		found = pv.Value == 7
		return true
	})
	if !found {
		t.Fatal("clamped point not found")
	}
}

func TestKNNFewerThanK(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 5, 2, 76)
	g, _ := buildGrid(t, pts, 4)
	if got := g.KNN(core.Point{0, 0}, 50); len(got) != 5 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestStats(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 1000, 2, 77)
	g, _ := buildGrid(t, pts, 8)
	st := g.Stats()
	if st.Count != 1000 || st.Models <= 0 || st.IndexBytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEarlyStop(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 300, 2, 78)
	g, _ := buildGrid(t, pts, 8)
	count := 0
	g.Search(worldBounds(2), func(core.PV) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}
