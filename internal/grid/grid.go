// Package grid implements a uniform (fixed) grid index over d-dimensional
// points: every dimension is cut into an equal number of cells and points
// are bucketed by cell. It is the traditional contrast for Flood, whose
// contribution is precisely to *learn* the per-dimension cuts instead of
// fixing them uniformly.
package grid

import (
	"container/heap"
	"fmt"

	"github.com/lix-go/lix/internal/core"
)

// Grid is a uniform grid index. The zero value is not usable; call New.
type Grid struct {
	bounds core.Rect
	cells  int // cells per dimension
	dim    int
	bucket [][]core.PV // flattened row-major cell buckets
	size   int
}

// New returns an empty grid over bounds with cells divisions per dimension.
// cells^dim buckets are allocated eagerly, so keep cells modest for high
// dimensions.
func New(bounds core.Rect, cells int) (*Grid, error) {
	dim := bounds.Dim()
	if dim < 1 {
		return nil, fmt.Errorf("grid: empty bounds")
	}
	if cells < 1 {
		return nil, fmt.Errorf("grid: cells %d", cells)
	}
	total := 1
	for d := 0; d < dim; d++ {
		if total > 1<<26/cells {
			return nil, fmt.Errorf("grid: cells^dim too large (%d^%d)", cells, dim)
		}
		total *= cells
	}
	return &Grid{
		bounds: bounds.Clone(),
		cells:  cells,
		dim:    dim,
		bucket: make([][]core.PV, total),
	}, nil
}

// Len returns the number of points.
func (g *Grid) Len() int { return g.size }

// cellCoord quantizes coordinate v in dimension d, clamping to the grid.
func (g *Grid) cellCoord(d int, v float64) int {
	span := g.bounds.Max[d] - g.bounds.Min[d]
	c := int((v - g.bounds.Min[d]) / span * float64(g.cells))
	if c < 0 {
		c = 0
	}
	if c >= g.cells {
		c = g.cells - 1
	}
	return c
}

// cellIndex returns the bucket index of point p.
func (g *Grid) cellIndex(p core.Point) int {
	idx := 0
	for d := 0; d < g.dim; d++ {
		idx = idx*g.cells + g.cellCoord(d, p[d])
	}
	return idx
}

// Insert adds a point (clamped into the boundary cells if outside bounds).
func (g *Grid) Insert(p core.Point, v core.Value) error {
	if p.Dim() != g.dim {
		return fmt.Errorf("grid: point dim %d, want %d", p.Dim(), g.dim)
	}
	i := g.cellIndex(p)
	g.bucket[i] = append(g.bucket[i], core.PV{Point: p.Clone(), Value: v})
	g.size++
	return nil
}

// Delete removes one point equal to p with matching value.
func (g *Grid) Delete(p core.Point, v core.Value) bool {
	if p.Dim() != g.dim {
		return false
	}
	i := g.cellIndex(p)
	b := g.bucket[i]
	for j := range b {
		if b[j].Value == v && b[j].Point.Equal(p) {
			g.bucket[i] = append(b[:j], b[j+1:]...)
			g.size--
			return true
		}
	}
	return false
}

// Search calls fn for every point inside rect; fn returning false stops.
// Returns points visited and buckets touched.
func (g *Grid) Search(rect core.Rect, fn func(core.PV) bool) (visited, buckets int) {
	lo := make([]int, g.dim)
	hi := make([]int, g.dim)
	for d := 0; d < g.dim; d++ {
		lo[d] = g.cellCoord(d, rect.Min[d])
		hi[d] = g.cellCoord(d, rect.Max[d])
	}
	idx := make([]int, g.dim)
	copy(idx, lo)
	for {
		flat := 0
		for d := 0; d < g.dim; d++ {
			flat = flat*g.cells + idx[d]
		}
		buckets++
		for _, pv := range g.bucket[flat] {
			if rect.Contains(pv.Point) {
				visited++
				if !fn(pv) {
					return visited, buckets
				}
			}
		}
		// Odometer increment.
		d := g.dim - 1
		for d >= 0 {
			idx[d]++
			if idx[d] <= hi[d] {
				break
			}
			idx[d] = lo[d]
			d--
		}
		if d < 0 {
			break
		}
	}
	return visited, buckets
}

type item struct {
	distSq float64
	pv     core.PV
}

type pq []item

func (h pq) Len() int            { return len(h) }
func (h pq) Less(i, j int) bool  { return h[i].distSq > h[j].distSq } // max-heap
func (h pq) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pq) Push(x interface{}) { *h = append(*h, x.(item)) }
func (h *pq) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// KNN returns the k nearest points to q by expanding rings of cells around
// q's cell until the k-th best distance is closer than the next ring.
func (g *Grid) KNN(q core.Point, k int) []core.PV {
	if g.size == 0 || k <= 0 || q.Dim() != g.dim {
		return nil
	}
	cellSpan := make([]float64, g.dim)
	for d := 0; d < g.dim; d++ {
		cellSpan[d] = (g.bounds.Max[d] - g.bounds.Min[d]) / float64(g.cells)
	}
	minSpan := cellSpan[0]
	for _, s := range cellSpan[1:] {
		if s < minSpan {
			minSpan = s
		}
	}
	center := make([]int, g.dim)
	for d := 0; d < g.dim; d++ {
		center[d] = g.cellCoord(d, q[d])
	}
	best := &pq{}
	scanCell := func(coords []int) {
		flat := 0
		for d := 0; d < g.dim; d++ {
			flat = flat*g.cells + coords[d]
		}
		for _, pv := range g.bucket[flat] {
			d2 := q.DistSq(pv.Point)
			if best.Len() < k {
				heap.Push(best, item{d2, pv})
			} else if d2 < (*best)[0].distSq {
				(*best)[0] = item{d2, pv}
				heap.Fix(best, 0)
			}
		}
	}
	// Ring r visits cells with Chebyshev distance exactly r from center.
	for r := 0; r <= g.cells; r++ {
		if best.Len() == k {
			// All cells at Chebyshev ring r are at least (r-1)*minSpan away.
			minPossible := float64(r-1) * minSpan
			if minPossible > 0 && minPossible*minPossible > (*best)[0].distSq {
				break
			}
		}
		g.visitRing(center, r, scanCell)
	}
	out := make([]core.PV, best.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(best).(item).pv
	}
	return out
}

// visitRing enumerates all in-bounds cells at Chebyshev distance exactly r
// from center.
func (g *Grid) visitRing(center []int, r int, fn func([]int)) {
	coords := make([]int, g.dim)
	var rec func(d int, onShell bool)
	rec = func(d int, onShell bool) {
		if d == g.dim {
			if onShell {
				fn(coords)
			}
			return
		}
		lo, hi := center[d]-r, center[d]+r
		for c := lo; c <= hi; c++ {
			if c < 0 || c >= g.cells {
				continue
			}
			coords[d] = c
			rec(d+1, onShell || c == lo || c == hi)
		}
	}
	if r == 0 {
		inb := true
		for d := 0; d < g.dim; d++ {
			coords[d] = center[d]
			if coords[d] < 0 || coords[d] >= g.cells {
				inb = false
			}
		}
		if inb {
			fn(coords)
		}
		return
	}
	rec(0, false)
}

// Stats reports structure statistics.
func (g *Grid) Stats() core.Stats {
	occupied := 0
	for _, b := range g.bucket {
		if len(b) > 0 {
			occupied++
		}
	}
	return core.Stats{
		Name:       "grid",
		Count:      g.size,
		IndexBytes: len(g.bucket) * 24,
		DataBytes:  g.size * (8*g.dim + 8),
		Height:     1,
		Models:     occupied,
	}
}
