package pgm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

func TestStaticAllDistributions(t *testing.T) {
	for _, kind := range dataset.Kinds() {
		for _, eps := range []int{4, 32, 128} {
			keys, err := dataset.Keys(kind, 5000, 201)
			if err != nil {
				t.Fatal(err)
			}
			ix, err := Build(dataset.KV(keys), eps)
			if err != nil {
				t.Fatal(err)
			}
			for i, k := range keys {
				v, ok := ix.Get(k)
				if !ok || v != dataset.PayloadFor(k) {
					t.Fatalf("%s eps=%d: Get(%d) = %d,%v", kind, eps, k, v, ok)
				}
				if lb := ix.LowerBound(k); lb != i {
					t.Fatalf("%s eps=%d: LowerBound(%d) = %d, want %d", kind, eps, k, lb, i)
				}
			}
		}
	}
}

func TestStaticMisses(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Clustered, 8000, 202)
	ix, err := Build(dataset.KV(keys), 16)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	for i := 0; i+1 < len(keys); i += 17 {
		if keys[i]+1 >= keys[i+1] {
			continue
		}
		probe := keys[i] + 1 + core.Key(r.Int63n(int64(keys[i+1]-keys[i]-1)))
		if _, ok := ix.Get(probe); ok {
			t.Fatalf("phantom %d", probe)
		}
		if lb := ix.LowerBound(probe); lb != i+1 {
			t.Fatalf("LowerBound(%d) = %d, want %d", probe, lb, i+1)
		}
	}
	if ix.LowerBound(0) != 0 {
		t.Fatal("LowerBound(0)")
	}
	if ix.LowerBound(^core.Key(0)) != len(keys) {
		t.Fatal("LowerBound(max)")
	}
}

func TestStaticEpsilonTradeoff(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Lognormal, 50000, 203)
	recs := dataset.KV(keys)
	small, _ := Build(recs, 8)
	big, _ := Build(recs, 256)
	if small.SegmentCount() <= big.SegmentCount() {
		t.Fatalf("eps=8 segments %d should exceed eps=256 segments %d",
			small.SegmentCount(), big.SegmentCount())
	}
	if small.ModelBytes() <= big.ModelBytes() {
		t.Fatal("model bytes should shrink with eps")
	}
	if small.Levels() < 1 || big.Levels() < 1 {
		t.Fatal("no levels")
	}
	if small.Epsilon() != 8 {
		t.Fatal("epsilon accessor")
	}
}

func TestStaticRange(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Uniform, 5000, 204)
	ix, _ := Build(dataset.KV(keys), 32)
	for _, q := range dataset.Ranges(keys, 40, 0.01, 205) {
		want := core.UpperBound(keys, q.Hi) - core.LowerBound(keys, q.Lo)
		if got := ix.Range(q.Lo, q.Hi, func(core.Key, core.Value) bool { return true }); got != want {
			t.Fatalf("Range = %d, want %d", got, want)
		}
	}
}

func TestStaticDegenerate(t *testing.T) {
	ix, err := Build(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Get(1); ok || ix.LowerBound(1) != 0 || ix.Len() != 0 {
		t.Fatal("empty index")
	}
	if _, err := Build([]core.KV{{Key: 2}, {Key: 1}}, 8); err == nil {
		t.Fatal("unsorted accepted")
	}
	// Single record and duplicates.
	ix, _ = Build([]core.KV{{Key: 9, Value: 1}}, 4)
	if v, ok := ix.Get(9); !ok || v != 1 {
		t.Fatal("single record")
	}
	var dup []core.KV
	for i := 0; i < 500; i++ {
		dup = append(dup, core.KV{Key: core.Key(i / 5), Value: core.Value(i)})
	}
	ix, _ = Build(dup, 8)
	for i := 0; i < 100; i++ {
		if lb := ix.LowerBound(core.Key(i)); lb != i*5 {
			t.Fatalf("dup LowerBound(%d) = %d, want %d", i, lb, i*5)
		}
	}
}

// Property: static PGM agrees with core.LowerBound on arbitrary probes.
func TestStaticLowerBoundProperty(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Adversarial, 6000, 206)
	ix, err := Build(dataset.KV(keys), 16)
	if err != nil {
		t.Fatal(err)
	}
	f := func(probe core.Key) bool {
		return ix.LowerBound(probe) == core.LowerBound(keys, probe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(keys); i += 31 {
		for _, delta := range []int64{-1, 0, 1} {
			probe := core.Key(int64(keys[i]) + delta)
			if ix.LowerBound(probe) != core.LowerBound(keys, probe) {
				t.Fatalf("probe %d mismatch", probe)
			}
		}
	}
}

func TestStaticStats(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Uniform, 10000, 207)
	ix, _ := Build(dataset.KV(keys), 64)
	st := ix.Stats()
	if st.Count != 10000 || st.IndexBytes <= 0 || st.Models < 1 || st.Height < 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// --------------------------- dynamic --------------------------------------

func TestDynamicInsertGet(t *testing.T) {
	d := NewDynamic(16, 64)
	const n = 5000
	r := rand.New(rand.NewSource(208))
	perm := r.Perm(n)
	for _, i := range perm {
		d.Insert(core.Key(i*2), core.Value(i))
	}
	if d.Len() != n {
		t.Fatalf("len = %d", d.Len())
	}
	for i := 0; i < n; i++ {
		v, ok := d.Get(core.Key(i * 2))
		if !ok || v != core.Value(i) {
			t.Fatalf("Get(%d) = %d,%v", i*2, v, ok)
		}
		if _, ok := d.Get(core.Key(i*2 + 1)); ok {
			t.Fatal("phantom")
		}
	}
	if len(d.LevelSizes()) == 0 {
		t.Fatal("expected occupied levels")
	}
}

func TestDynamicUpsert(t *testing.T) {
	d := NewDynamic(8, 16)
	for i := 0; i < 200; i++ {
		d.Insert(7, core.Value(i)) // same key repeatedly
		d.Insert(core.Key(1000+i), 1)
	}
	if v, ok := d.Get(7); !ok || v != 199 {
		t.Fatalf("upsert Get = %d,%v", v, ok)
	}
	if d.Len() != 201 {
		t.Fatalf("len = %d", d.Len())
	}
}

func TestDynamicDelete(t *testing.T) {
	d := NewDynamic(16, 32)
	const n = 2000
	for i := 0; i < n; i++ {
		d.Insert(core.Key(i), core.Value(i))
	}
	for i := 0; i < n; i += 2 {
		if !d.Delete(core.Key(i)) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if d.Delete(core.Key(0)) {
		t.Fatal("double delete")
	}
	if d.Delete(core.Key(5 * n)) {
		t.Fatal("delete absent")
	}
	if d.Len() != n/2 {
		t.Fatalf("len = %d", d.Len())
	}
	for i := 0; i < n; i++ {
		_, ok := d.Get(core.Key(i))
		if ok != (i%2 == 1) {
			t.Fatalf("Get(%d) = %v", i, ok)
		}
	}
	// Re-insert deleted keys.
	for i := 0; i < n; i += 2 {
		d.Insert(core.Key(i), core.Value(i+7))
	}
	if d.Len() != n {
		t.Fatalf("len after reinsert = %d", d.Len())
	}
	if v, ok := d.Get(0); !ok || v != 7 {
		t.Fatalf("reinserted Get = %d,%v", v, ok)
	}
}

func TestDynamicRange(t *testing.T) {
	d := NewDynamic(16, 32)
	for i := 0; i < 1000; i++ {
		d.Insert(core.Key(i*10), core.Value(i))
	}
	// Delete some inside the range.
	d.Delete(150)
	d.Delete(200)
	var got []core.Key
	n := d.Range(95, 305, func(k core.Key, v core.Value) bool {
		got = append(got, k)
		return true
	})
	want := []core.Key{100, 110, 120, 130, 140, 160, 170, 180, 190, 210, 220, 230, 240, 250, 260, 270, 280, 290, 300}
	if n != len(want) {
		t.Fatalf("range = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Early stop.
	count := 0
	d.Range(0, 1<<62, func(core.Key, core.Value) bool { count++; return count < 4 })
	if count != 4 {
		t.Fatalf("early stop = %d", count)
	}
}

// Property: dynamic PGM agrees with a reference map under random ops.
func TestDynamicMatchesMapProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(209))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := NewDynamic(8, 16+r.Intn(48))
		ref := map[core.Key]core.Value{}
		for op := 0; op < 3000; op++ {
			k := core.Key(r.Intn(400))
			switch r.Intn(3) {
			case 0:
				v := core.Value(r.Uint64())
				d.Insert(k, v)
				ref[k] = v
			case 1:
				got := d.Delete(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			case 2:
				v, ok := d.Get(k)
				wv, wok := ref[k]
				if ok != wok || (ok && v != wv) {
					return false
				}
			}
			if d.Len() != len(ref) {
				return false
			}
		}
		// Full range must equal sorted ref.
		seen := 0
		okAll := true
		prev := core.Key(0)
		first := true
		d.Range(0, ^core.Key(0), func(k core.Key, v core.Value) bool {
			if !first && k <= prev {
				okAll = false
				return false
			}
			prev, first = k, false
			wv, wok := ref[k]
			if !wok || wv != v {
				okAll = false
				return false
			}
			seen++
			return true
		})
		return okAll && seen == len(ref)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicStats(t *testing.T) {
	d := NewDynamic(0, 0) // defaults
	for i := 0; i < 3000; i++ {
		d.Insert(core.Key(i*7), 1)
	}
	st := d.Stats()
	if st.Count != 3000 || st.IndexBytes <= 0 || st.Models < 1 {
		t.Fatalf("stats = %+v", st)
	}
}
