// Package pgm implements the PGM-index of Ferragina and Vinciguerra
// ("The PGM-index: a fully-dynamic compressed learned index with provable
// worst-case bounds", PVLDB 2020): a recursive hierarchy of ε-bounded
// piecewise linear models, plus the fully dynamic variant based on the
// logarithmic method (an LSM of static PGM-indexes with delta buffering —
// taxonomy: mutable / pure / delta buffer / fixed layout).
//
// Unlike the RMI, every level of the PGM carries a provable error bound ε:
// a lookup does O(log_ε n) model evaluations, each followed by a binary
// search over at most 2ε+3 elements — the worst case holds for adversarial
// key sets too (paper §6.7).
package pgm

import (
	"fmt"
	"math"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
	"github.com/lix-go/lix/internal/segment"
)

// DefaultEpsilon is the default per-level error bound.
const DefaultEpsilon = 32

// level is one layer of the recursive PLA hierarchy.
type level struct {
	segs      []segment.Segment
	firstKeys []float64 // FirstKey of each segment, for windowed search
}

// Index is a static PGM-index over a sorted record array.
type Index struct {
	recs []core.KV
	keys []core.Key

	// distinct/firstPos are only materialized when duplicate keys (or
	// distinct keys colliding at float64 resolution) exist; for the common
	// collision-free case the search runs on the key array directly and
	// the index stores nothing but the PLA levels.
	distinct []float64 // deduped key values as floats (nil if collision-free)
	firstPos []int32   // first occurrence of distinct[i] in keys
	nd       int       // number of distinct float values

	levels []level // levels[0] predicts into distinct space; higher predict lower
	eps    int
	n      int
}

// Build constructs a PGM-index over recs (sorted ascending by key) with the
// given error bound (0 selects DefaultEpsilon). recs is retained.
func Build(recs []core.KV, eps int) (*Index, error) {
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	n := len(recs)
	for i := 1; i < n; i++ {
		if recs[i].Key < recs[i-1].Key {
			return nil, fmt.Errorf("pgm: input not sorted at %d", i)
		}
	}
	ix := &Index{recs: recs, eps: eps, n: n}
	ix.keys = make([]core.Key, n)
	for i := range recs {
		ix.keys[i] = recs[i].Key
	}
	if n == 0 {
		return ix, nil
	}
	// Dedup at float64 resolution: duplicate keys, and distinct keys that
	// collide when converted to float64, collapse to their first position.
	distinct := make([]float64, 0, n)
	firstPos := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		x := float64(ix.keys[i])
		if len(distinct) > 0 && x == distinct[len(distinct)-1] {
			continue
		}
		distinct = append(distinct, x)
		firstPos = append(firstPos, int32(i))
	}
	ix.nd = len(distinct)
	if ix.nd < n {
		// Collisions exist: keep the dedup arrays for exact resolution.
		ix.distinct = distinct
		ix.firstPos = firstPos
	}

	// Level 0: PLA over (distinct key -> distinct index).
	ys := segment.Positions(len(distinct))
	segs := segment.BuildOptimal(distinct, ys, float64(eps))
	ix.levels = append(ix.levels, newLevel(segs))
	// Recursive levels over segment first keys until a single segment.
	for len(ix.levels[len(ix.levels)-1].segs) > 1 {
		prev := ix.levels[len(ix.levels)-1]
		xs := prev.firstKeys
		segs := segment.BuildOptimal(xs, segment.Positions(len(xs)), float64(eps))
		ix.levels = append(ix.levels, newLevel(segs))
		if len(segs) >= len(xs) {
			// No compression: stop to guarantee termination (degenerate
			// data); the top level is then searched in full.
			break
		}
	}
	return ix, nil
}

func newLevel(segs []segment.Segment) level {
	fk := make([]float64, len(segs))
	for i := range segs {
		fk[i] = segs[i].FirstKey
	}
	return level{segs: segs, firstKeys: fk}
}

// Epsilon returns the error bound.
func (ix *Index) Epsilon() int { return ix.eps }

// Len returns the number of records.
func (ix *Index) Len() int { return ix.n }

// Levels returns the number of PLA levels.
func (ix *Index) Levels() int { return len(ix.levels) }

// SegmentCount returns the number of level-0 segments.
func (ix *Index) SegmentCount() int {
	if len(ix.levels) == 0 {
		return 0
	}
	return len(ix.levels[0].segs)
}

// segUpperBound returns the last index j in fk[lo:hi) (clamped) with
// fk[j] <= x, or lo if none.
func segUpperBound(fk []float64, x float64, lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if lo > len(fk) {
		lo = len(fk)
	}
	if hi > len(fk) {
		hi = len(fk)
	}
	if hi < lo {
		hi = lo
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if fk[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// locate returns the level-0 segment index covering key x by descending the
// hierarchy with ε-bounded windowed searches.
func (ix *Index) locate(x float64) int {
	top := len(ix.levels) - 1
	// Top level: search among all segments (there is 1, or few in the
	// degenerate no-compression case).
	si := segUpperBound(ix.levels[top].firstKeys, x, 0, len(ix.levels[top].segs))
	for l := top; l > 0; l-- {
		s := &ix.levels[l].segs[si]
		if x > s.LastKey {
			// x lies in the key gap between this segment and the next one
			// at this level, so the answer below is exactly the last entry
			// this segment covers; the model must not extrapolate.
			si = s.EndIdx - 1
			continue
		}
		pred := int(math.Round(s.Predict(x)))
		lo := pred - ix.eps - 1
		hi := pred + ix.eps + 2
		if lo < s.StartIdx {
			lo = s.StartIdx
		}
		if hi > s.EndIdx {
			hi = s.EndIdx
		}
		si = segUpperBound(ix.levels[l-1].firstKeys, x, lo, hi)
	}
	return si
}

// LowerBound returns the smallest position i in the record array with
// keys[i] >= k.
func (ix *Index) LowerBound(k core.Key) int {
	if ix.n == 0 {
		return 0
	}
	x := float64(k)
	si := ix.locate(x)
	s := &ix.levels[0].segs[si]
	var d int
	if x > s.LastKey {
		// In the gap after this segment: the lower bound is the first
		// distinct key of the next segment (or the end of the array).
		d = s.EndIdx
	} else {
		pred := int(math.Round(s.Predict(x)))
		lo := pred - ix.eps - 1
		hi := pred + ix.eps + 2
		if lo < s.StartIdx {
			lo = s.StartIdx
		}
		if hi > s.EndIdx {
			hi = s.EndIdx
		}
		// Binary search over distinct floats for the first >= x. The probe
		// counter costs a register increment; it only escapes into the
		// recorder when one is installed (the ε-bounded window here is the
		// paper's last-mile correction cost for the PGM).
		d = lo
		probes := 0
		for l, h := lo, hi; l < h; {
			probes++
			mid := int(uint(l+h) >> 1)
			if ix.distinctAt(mid) < x {
				l = mid + 1
				d = l
			} else {
				h = mid
				d = h
			}
		}
		if r := core.ActiveSearchRecorder(); r != nil {
			r.RecordSearch(probes, hi-lo)
		}
	}
	if d >= ix.nd {
		return ix.n
	}
	if ix.distinct == nil {
		// Collision-free: distinct space is the key array itself, and the
		// float search already honored the exact integer order except for
		// probe keys that collide with a stored key in float64; one exact
		// comparison fixes that.
		if ix.keys[d] < k {
			return d + 1
		}
		return d
	}
	pos := int(ix.firstPos[d])
	// Float collision may have collapsed a short run of distinct integer
	// keys: resolve exactly on the integer array.
	end := ix.n
	if d+1 < ix.nd {
		end = int(ix.firstPos[d+1])
	}
	return core.SearchRange(ix.keys, k, pos, end)
}

// distinctAt returns the i-th distinct float key.
func (ix *Index) distinctAt(i int) float64 {
	if ix.distinct == nil {
		return float64(ix.keys[i])
	}
	return ix.distinct[i]
}

// Get returns the value stored for k.
func (ix *Index) Get(k core.Key) (core.Value, bool) {
	i := ix.LowerBound(k)
	if i < ix.n && ix.keys[i] == k {
		return ix.recs[i].Value, true
	}
	return 0, false
}

// Range calls fn for records with lo <= key <= hi ascending; fn returning
// false stops. Returns records visited.
func (ix *Index) Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	i := ix.LowerBound(lo)
	count := 0
	for ; i < ix.n && ix.keys[i] <= hi; i++ {
		count++
		if !fn(ix.keys[i], ix.recs[i].Value) {
			break
		}
	}
	return count
}

// Stats reports structure statistics. IndexBytes counts the PLA levels and
// the dedup arrays.
func (ix *Index) Stats() core.Stats {
	segs := 0
	for _, l := range ix.levels {
		segs += len(l.segs)
	}
	return core.Stats{
		Name:       "pgm",
		Count:      ix.n,
		IndexBytes: segs*(segment.SegmentBytes+8) + 12*len(ix.distinct),
		DataBytes:  16 * ix.n,
		Height:     len(ix.levels),
		Models:     segs,
	}
}

// ModelBytes returns the bytes of PLA models only (excluding the dedup
// arrays), the figure comparable to the paper's index-size plots.
func (ix *Index) ModelBytes() int {
	segs := 0
	for _, l := range ix.levels {
		segs += len(l.segs)
	}
	return segs * (segment.SegmentBytes + 8)
}

// ---------------------------------------------------------------------------
// Dynamic PGM (logarithmic method)
// ---------------------------------------------------------------------------

// Dynamic is the fully-dynamic PGM-index: a small sorted insertion buffer
// plus a sequence of static PGM levels of geometrically increasing size,
// merged LSM-style. Deletes insert tombstones that are purged when they
// reach the last occupied level.
type Dynamic struct {
	eps     int
	bufCap  int
	buf     []dynRec // sorted by key; newest wins on duplicate insert
	levels  []*Index // levels[i] holds ~bufCap*2^i records, nil if empty
	tombs   []map[core.Key]bool
	liveCnt int

	hook obs.Hook
}

// SetObserver installs r to receive structural events: every buffer flush
// (EvBufferFlush, N = buffered records) and the logarithmic-method merge it
// triggers (EvBufferMerge, N = merged records, detail = target level); nil
// detaches.
func (d *Dynamic) SetObserver(r obs.Recorder) { d.hook.SetRecorder(r) }

type dynRec struct {
	key  core.Key
	val  core.Value
	dead bool
}

// NewDynamic returns an empty dynamic PGM with the given error bound and
// insertion buffer capacity (0 selects 256).
func NewDynamic(eps, bufCap int) *Dynamic {
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	if bufCap <= 0 {
		bufCap = 256
	}
	return &Dynamic{eps: eps, bufCap: bufCap}
}

// Len returns the number of live records.
func (d *Dynamic) Len() int { return d.liveCnt }

// bufFind returns the buffer index of k and whether it is present.
func (d *Dynamic) bufFind(k core.Key) (int, bool) {
	lo, hi := 0, len(d.buf)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if d.buf[mid].key < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(d.buf) && d.buf[lo].key == k
}

// Insert upserts (k, v).
func (d *Dynamic) Insert(k core.Key, v core.Value) {
	d.put(dynRec{key: k, val: v})
}

// Delete removes k (logically). Returns true if k was live before.
func (d *Dynamic) Delete(k core.Key) bool {
	_, was := d.Get(k)
	if !was {
		return false
	}
	d.put(dynRec{key: k, dead: true})
	return true
}

func (d *Dynamic) put(r dynRec) {
	i, found := d.bufFind(r.key)
	var wasLive bool
	if found {
		wasLive = !d.buf[i].dead
		d.buf[i] = r
	} else {
		_, wasLive = d.getLevels(r.key)
		d.buf = append(d.buf, dynRec{})
		copy(d.buf[i+1:], d.buf[i:])
		d.buf[i] = r
	}
	nowLive := !r.dead
	switch {
	case wasLive && !nowLive:
		d.liveCnt--
	case !wasLive && nowLive:
		d.liveCnt++
	}
	if len(d.buf) >= d.bufCap {
		d.flush()
	}
}

// flush merges the buffer and all levels up to the first empty slot into a
// single static PGM at that slot (the logarithmic method).
func (d *Dynamic) flush() {
	d.hook.Emit(obs.EvBufferFlush, len(d.buf), "")
	runs := [][]dynRec{d.buf}
	slot := 0
	for ; slot < len(d.levels); slot++ {
		if d.levels[slot] == nil {
			break
		}
		runs = append(runs, levelRecs(d.levels[slot], d.tombs[slot]))
		d.levels[slot] = nil
		d.tombs[slot] = nil
	}
	lastOccupied := true
	for s := slot + 1; s < len(d.levels); s++ {
		if d.levels[s] != nil {
			lastOccupied = false
			break
		}
	}
	merged := mergeRuns(runs, lastOccupied)
	recs := make([]core.KV, len(merged))
	for i, r := range merged {
		recs[i] = core.KV{Key: r.key, Value: r.val}
	}
	ix, err := Build(recs, d.eps)
	if err != nil {
		// Inputs are sorted by construction; Build cannot fail.
		panic(err)
	}
	tmb := map[core.Key]bool{}
	for _, r := range merged {
		if r.dead {
			tmb[r.key] = true
		}
	}
	for slot >= len(d.levels) {
		d.levels = append(d.levels, nil)
		d.tombs = append(d.tombs, nil)
	}
	d.levels[slot] = ix
	d.tombs[slot] = tmb
	d.buf = d.buf[:0]
	d.hook.Emit(obs.EvBufferMerge, len(merged), fmt.Sprintf("level%d", slot))
}

// levelRecs extracts a level's records with their tombstone flags.
func levelRecs(ix *Index, tombs map[core.Key]bool) []dynRec {
	out := make([]dynRec, ix.n)
	for i := range ix.recs {
		out[i] = dynRec{key: ix.recs[i].Key, val: ix.recs[i].Value, dead: tombs[ix.recs[i].Key]}
	}
	return out
}

// mergeRuns merges runs (runs[0] newest) into one sorted run; newer
// occurrences shadow older ones. Tombstones are dropped when dropDead.
func mergeRuns(runs [][]dynRec, dropDead bool) []dynRec {
	type cursor struct {
		run []dynRec
		pos int
	}
	cs := make([]cursor, len(runs))
	total := 0
	for i, r := range runs {
		cs[i] = cursor{run: r}
		total += len(r)
	}
	out := make([]dynRec, 0, total)
	for {
		// Find the smallest current key; prefer the newest run on ties.
		best := -1
		var bk core.Key
		for i := range cs {
			if cs[i].pos >= len(cs[i].run) {
				continue
			}
			k := cs[i].run[cs[i].pos].key
			if best == -1 || k < bk {
				best, bk = i, k
			}
		}
		if best == -1 {
			break
		}
		rec := cs[best].run[cs[best].pos]
		// Advance every run past this key (older duplicates are shadowed).
		for i := range cs {
			for cs[i].pos < len(cs[i].run) && cs[i].run[cs[i].pos].key == bk {
				cs[i].pos++
			}
		}
		if rec.dead && dropDead {
			continue
		}
		out = append(out, rec)
	}
	return out
}

// getLevels looks k up in the static levels only (newest first).
func (d *Dynamic) getLevels(k core.Key) (core.Value, bool) {
	for i := 0; i < len(d.levels); i++ {
		ix := d.levels[i]
		if ix == nil {
			continue
		}
		if v, ok := ix.Get(k); ok {
			if d.tombs[i][k] {
				return 0, false
			}
			return v, true
		}
		// A tombstone for k may exist without a live record in this level.
		if d.tombs[i][k] {
			return 0, false
		}
	}
	return 0, false
}

// Get returns the live value for k.
func (d *Dynamic) Get(k core.Key) (core.Value, bool) {
	if i, ok := d.bufFind(k); ok {
		if d.buf[i].dead {
			return 0, false
		}
		return d.buf[i].val, true
	}
	return d.getLevels(k)
}

// Range calls fn for live records with lo <= key <= hi ascending; fn
// returning false stops. Returns records visited.
func (d *Dynamic) Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	// Merge buffer + levels on the fly.
	type src struct {
		recs  []dynRec
		pos   int
		level int // -1 for buffer (newest)
	}
	var srcs []src
	bi, _ := d.bufFind(lo)
	srcs = append(srcs, src{recs: d.buf, pos: bi, level: -1})
	for li, ix := range d.levels {
		if ix == nil {
			continue
		}
		start := ix.LowerBound(lo)
		rs := make([]dynRec, 0)
		for i := start; i < ix.n && ix.keys[i] <= hi; i++ {
			dead := d.tombs[li][ix.keys[i]]
			rs = append(rs, dynRec{key: ix.keys[i], val: ix.recs[i].Value, dead: dead})
		}
		srcs = append(srcs, src{recs: rs, level: li})
	}
	count := 0
	for {
		best := -1
		var bk core.Key
		for i := range srcs {
			s := &srcs[i]
			for s.pos < len(s.recs) && s.recs[s.pos].key < lo {
				s.pos++
			}
			if s.pos >= len(s.recs) || s.recs[s.pos].key > hi {
				continue
			}
			k := s.recs[s.pos].key
			if best == -1 || k < bk {
				best, bk = i, k
			}
		}
		if best == -1 {
			break
		}
		rec := srcs[best].recs[srcs[best].pos]
		for i := range srcs {
			s := &srcs[i]
			for s.pos < len(s.recs) && s.recs[s.pos].key == bk {
				s.pos++
			}
		}
		if rec.dead {
			continue
		}
		count++
		if !fn(rec.key, rec.val) {
			break
		}
	}
	return count
}

// Stats aggregates statistics across levels.
func (d *Dynamic) Stats() core.Stats {
	st := core.Stats{Name: "pgm-dynamic", Count: d.liveCnt}
	st.IndexBytes += 17 * len(d.buf)
	for _, ix := range d.levels {
		if ix == nil {
			continue
		}
		s := ix.Stats()
		st.IndexBytes += s.IndexBytes
		st.DataBytes += s.DataBytes
		st.Models += s.Models
		if s.Height > st.Height {
			st.Height = s.Height
		}
	}
	return st
}

// LevelSizes returns the record count of each occupied level (diagnostics).
func (d *Dynamic) LevelSizes() []int {
	var out []int
	for _, ix := range d.levels {
		if ix == nil {
			out = append(out, 0)
		} else {
			out = append(out, ix.n)
		}
	}
	return out
}
