package pgm

import (
	"fmt"
	"math"

	"github.com/lix-go/lix/internal/core"
)

// CheckInvariants verifies the structural invariants of a static PGM-index:
// sorted keys, consistent dedup arrays, per-level segment tiling with
// ascending first keys, and the ε error bound of every level-0 prediction.
// It is O(n) and intended for tests (the conform suite calls it through the
// public façade).
func (ix *Index) CheckInvariants() error {
	if len(ix.recs) != ix.n || len(ix.keys) != ix.n {
		return fmt.Errorf("pgm: n=%d but len(recs)=%d len(keys)=%d", ix.n, len(ix.recs), len(ix.keys))
	}
	for i := 1; i < ix.n; i++ {
		if ix.keys[i] < ix.keys[i-1] {
			return fmt.Errorf("pgm: keys out of order at %d", i)
		}
		if ix.keys[i] != ix.recs[i].Key {
			return fmt.Errorf("pgm: keys[%d] != recs[%d].Key", i, i)
		}
	}
	if ix.n == 0 {
		return nil
	}
	if ix.distinct != nil {
		if len(ix.distinct) != ix.nd || len(ix.firstPos) != ix.nd {
			return fmt.Errorf("pgm: nd=%d but len(distinct)=%d len(firstPos)=%d", ix.nd, len(ix.distinct), len(ix.firstPos))
		}
		for i := 0; i < ix.nd; i++ {
			if i > 0 && ix.distinct[i] <= ix.distinct[i-1] {
				return fmt.Errorf("pgm: distinct not strictly ascending at %d", i)
			}
			if ix.distinct[i] != float64(ix.keys[ix.firstPos[i]]) {
				return fmt.Errorf("pgm: distinct[%d] does not match keys[firstPos[%d]]", i, i)
			}
		}
	} else if ix.nd != ix.n {
		return fmt.Errorf("pgm: collision-free index has nd=%d != n=%d", ix.nd, ix.n)
	}
	if len(ix.levels) == 0 {
		return fmt.Errorf("pgm: no levels for %d records", ix.n)
	}
	// Per-level: segments tile [0, size-of-level-below) contiguously with
	// ascending first keys.
	for l, lev := range ix.levels {
		below := ix.nd
		if l > 0 {
			below = len(ix.levels[l-1].segs)
		}
		if len(lev.segs) == 0 {
			return fmt.Errorf("pgm: level %d empty", l)
		}
		if len(lev.firstKeys) != len(lev.segs) {
			return fmt.Errorf("pgm: level %d firstKeys/segs mismatch", l)
		}
		next := 0
		for si, s := range lev.segs {
			if s.StartIdx != next {
				return fmt.Errorf("pgm: level %d segment %d starts at %d, want %d", l, si, s.StartIdx, next)
			}
			if s.EndIdx <= s.StartIdx {
				return fmt.Errorf("pgm: level %d segment %d empty [%d,%d)", l, si, s.StartIdx, s.EndIdx)
			}
			if lev.firstKeys[si] != s.FirstKey {
				return fmt.Errorf("pgm: level %d firstKeys[%d] != segment FirstKey", l, si)
			}
			if si > 0 && s.FirstKey <= lev.segs[si-1].FirstKey {
				return fmt.Errorf("pgm: level %d FirstKey not ascending at %d", l, si)
			}
			if s.LastKey < s.FirstKey {
				return fmt.Errorf("pgm: level %d segment %d LastKey < FirstKey", l, si)
			}
			next = s.EndIdx
		}
		if next != below {
			return fmt.Errorf("pgm: level %d tiles [0,%d), want [0,%d)", l, next, below)
		}
	}
	// ε-bound: every level-0 prediction of a distinct key lands within
	// eps+1 of its true position (BuildOptimal guarantees ≤ eps; +1 absorbs
	// the rounding the lookup path also allows for).
	segs := ix.levels[0].segs
	si := 0
	for d := 0; d < ix.nd; d++ {
		for si < len(segs)-1 && d >= segs[si].EndIdx {
			si++
		}
		x := ix.distinctAt(d)
		pred := math.Round(segs[si].Predict(x))
		if diff := math.Abs(pred - float64(d)); diff > float64(ix.eps)+1 {
			return fmt.Errorf("pgm: ε-bound violated at distinct %d: |%g-%d| = %g > eps+1 = %d",
				d, pred, d, diff, ix.eps+1)
		}
	}
	return nil
}

// CheckInvariants verifies the dynamic PGM: sorted insertion buffer, valid
// static levels (each checked recursively), and a live count that matches a
// full merged scan.
func (d *Dynamic) CheckInvariants() error {
	for i := 1; i < len(d.buf); i++ {
		if d.buf[i].key <= d.buf[i-1].key {
			return fmt.Errorf("pgm-dynamic: buffer not strictly ascending at %d", i)
		}
	}
	if len(d.buf) >= d.bufCap {
		return fmt.Errorf("pgm-dynamic: buffer size %d at or above capacity %d (flush missed)", len(d.buf), d.bufCap)
	}
	if len(d.levels) != len(d.tombs) {
		return fmt.Errorf("pgm-dynamic: levels/tombs length mismatch %d != %d", len(d.levels), len(d.tombs))
	}
	for i, ix := range d.levels {
		if ix == nil {
			continue
		}
		if err := ix.CheckInvariants(); err != nil {
			return fmt.Errorf("pgm-dynamic: level %d: %w", i, err)
		}
	}
	live := 0
	prev := core.Key(0)
	first := true
	var scanErr error
	d.Range(0, ^core.Key(0), func(k core.Key, _ core.Value) bool {
		if !first && k <= prev {
			scanErr = fmt.Errorf("pgm-dynamic: merged scan not strictly ascending at key %d", k)
			return false
		}
		first, prev = false, k
		live++
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	if live != d.liveCnt {
		return fmt.Errorf("pgm-dynamic: live scan found %d records, liveCnt=%d", live, d.liveCnt)
	}
	return nil
}
