package pgm

import (
	"testing"

	"github.com/lix-go/lix/internal/dataset"
)

func BenchmarkStaticGet(b *testing.B) {
	keys, _ := dataset.Keys(dataset.Lognormal, 1<<20, 1)
	ix, err := Build(dataset.KV(keys), 0)
	if err != nil {
		b.Fatal(err)
	}
	probes := dataset.LookupMix(keys, 1<<16, 0.9, 2)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		v, _ := ix.Get(probes[i&(1<<16-1)])
		sink += v
	}
	_ = sink
}

func BenchmarkBuild(b *testing.B) {
	keys, _ := dataset.Keys(dataset.Lognormal, 1<<18, 1)
	recs := dataset.KV(keys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(recs, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynamicInsert(b *testing.B) {
	keys, _ := dataset.Keys(dataset.Uniform, 1<<18, 3)
	d := NewDynamic(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Insert(keys[i&(1<<18-1)], 1)
	}
}
