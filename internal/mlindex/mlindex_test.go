package mlindex

import (
	"sort"
	"testing"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

func bruteCount(pvs []core.PV, rect core.Rect) int {
	n := 0
	for _, pv := range pvs {
		if rect.Contains(pv.Point) {
			n++
		}
	}
	return n
}

func TestBuildAndLookup(t *testing.T) {
	for _, kind := range dataset.SpatialKinds() {
		pts, _ := dataset.Points(kind, 4000, 2, 1101)
		pvs := dataset.PV(pts)
		ix, err := Build(pvs, Config{Refs: 8})
		if err != nil {
			t.Fatal(err)
		}
		if ix.Len() != 4000 || len(ix.Refs()) != 8 {
			t.Fatalf("%s: len=%d refs=%d", kind, ix.Len(), len(ix.Refs()))
		}
		for i, pv := range pvs {
			v, ok := ix.Lookup(pv.Point)
			if !ok {
				t.Fatalf("%s: Lookup miss at %d", kind, i)
			}
			if !pvs[v].Point.Equal(pv.Point) {
				t.Fatalf("%s: Lookup wrong value", kind)
			}
		}
		if _, ok := ix.Lookup(core.Point{-1e9, -1e9}); ok {
			t.Fatalf("%s: phantom", kind)
		}
	}
}

func TestSearchMatchesBrute(t *testing.T) {
	for _, dim := range []int{2, 3} {
		pts, _ := dataset.Points(dataset.SOSMLike, 5000, dim, 1102)
		pvs := dataset.PV(pts)
		ix, err := Build(pvs, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range dataset.RectQueries(pts, 25, 0.01, 1103) {
			want := bruteCount(pvs, q)
			got, scanned := ix.Search(q, func(core.PV) bool { return true })
			if got != want {
				t.Fatalf("dim=%d q%d: got %d, want %d", dim, qi, got, want)
			}
			if scanned < got {
				t.Fatal("scanned < visited")
			}
		}
	}
}

func TestKNNMatchesBrute(t *testing.T) {
	pts, _ := dataset.Points(dataset.SSkewed, 3000, 2, 1104)
	pvs := dataset.PV(pts)
	ix, _ := Build(pvs, Config{Refs: 16})
	for _, k := range []int{1, 10, 100} {
		for qi, q := range dataset.KNNQueries(pts, 15, 1105) {
			ds := make([]float64, len(pvs))
			for i, pv := range pvs {
				ds[i] = q.DistSq(pv.Point)
			}
			sort.Float64s(ds)
			got := ix.KNN(q, k)
			if len(got) != k {
				t.Fatalf("q%d k=%d: len %d", qi, k, len(got))
			}
			for i, pv := range got {
				if d := q.DistSq(pv.Point); d != ds[i] {
					t.Fatalf("q%d k=%d i=%d: %g want %g", qi, k, i, d, ds[i])
				}
			}
		}
	}
	if got := ix.KNN(core.Point{0, 0}, 9999); len(got) != 3000 {
		t.Fatalf("kNN beyond size = %d", len(got))
	}
}

func TestErrorsAndDegenerate(t *testing.T) {
	if _, err := Build(nil, Config{}); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := Build([]core.PV{{Point: core.Point{1}}, {Point: core.Point{1, 2}}}, Config{}); err == nil {
		t.Fatal("mixed dims accepted")
	}
	// Fewer points than requested refs.
	ix, err := Build([]core.PV{{Point: core.Point{1, 1}, Value: 7}}, Config{Refs: 16})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := ix.Lookup(core.Point{1, 1}); !ok || v != 7 {
		t.Fatal("single point lookup")
	}
	got := ix.KNN(core.Point{0, 0}, 3)
	if len(got) != 1 {
		t.Fatalf("knn on single = %d", len(got))
	}
}

func TestStats(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 3000, 2, 1106)
	ix, _ := Build(dataset.PV(pts), Config{})
	st := ix.Stats()
	if st.Count != 3000 || st.IndexBytes <= 0 || st.Models < 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEarlyStop(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 1000, 2, 1107)
	ix, _ := Build(dataset.PV(pts), Config{})
	all, _ := core.NewRect(core.Point{0, 0}, core.Point{dataset.Extent, dataset.Extent})
	count := 0
	ix.Search(all, func(core.PV) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop = %d", count)
	}
}

// TestKNNDegenerateExtent is a regression test for a bug found by the
// conform differential suite (shrunk repro: one point at [100,100], query
// KNN([500,500], 1)). The expanding-annulus search capped its radius at a
// multiple of the largest partition radius, so with a degenerate extent
// (a single distinct location, all partition radii 0) — or a query far
// outside the extent — the annuli never reached the data and KNN returned
// no results.
func TestKNNDegenerateExtent(t *testing.T) {
	single := []core.PV{{Point: core.Point{100, 100}, Value: 1}}
	ix, err := Build(single, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := ix.KNN(core.Point{500, 500}, 1)
	if len(got) != 1 || got[0].Value != 1 {
		t.Fatalf("KNN over single point = %v, want that point", got)
	}

	equal := make([]core.PV, 200)
	for i := range equal {
		equal[i] = core.PV{Point: core.Point{512, 512}, Value: core.Value(i)}
	}
	ix, err = Build(equal, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.KNN(core.Point{500, 500}, 3); len(got) != 3 {
		t.Fatalf("KNN over equal points returned %d results, want 3", len(got))
	}
}
