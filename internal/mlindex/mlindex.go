// Package mlindex implements the ML-Index (Davitkova et al., EDBT 2020): an
// iDistance-style projection — points are assigned to their nearest
// reference point and keyed by partition offset plus distance to the
// reference — with a learned one-dimensional index (a PGM-index) over the
// projected keys. Point, range, and kNN queries translate to annulus scans
// over the learned index.
//
// Taxonomy: immutable / pure / projected space (Approach 2).
package mlindex

import (
	"fmt"
	"math"
	"sort"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/pgm"
)

// Config parameterizes a build.
type Config struct {
	// Refs is the number of reference points (0 scales with the data,
	// clamped to [16, 128]).
	Refs int
	// Epsilon for the underlying PGM-index.
	Epsilon int
	// KMeansIters refines reference points with Lloyd iterations (0 -> 8).
	KMeansIters int
}

// Index is an immutable ML-Index.
type Index struct {
	cfg  Config
	dim  int
	refs []core.Point
	keys []core.Key // sorted projected keys, parallel to pts
	pts  []core.PV
	ix   *pgm.Index
	// distScale converts distances to integer key offsets within a
	// partition's 2^32 key band; it is sized to the data's bounding-box
	// diagonal so the full distance range spreads over the band.
	distScale float64
	// per-partition max distance (for pruning)
	maxDist []float64
}

// Build constructs an ML-Index over the points (copied and reordered).
func Build(pvs []core.PV, cfg Config) (*Index, error) {
	if len(pvs) == 0 {
		return nil, fmt.Errorf("mlindex: empty input")
	}
	dim := pvs[0].Point.Dim()
	for i := range pvs {
		if pvs[i].Point.Dim() != dim {
			return nil, fmt.Errorf("mlindex: point %d dim %d, want %d", i, pvs[i].Point.Dim(), dim)
		}
	}
	if cfg.Refs <= 0 {
		// Scale partitions with the data so annulus scans stay short; the
		// ML-Index paper likewise uses dozens of reference points.
		cfg.Refs = len(pvs) / 8192
		if cfg.Refs < 16 {
			cfg.Refs = 16
		}
		if cfg.Refs > 128 {
			cfg.Refs = 128
		}
	}
	if cfg.Refs > len(pvs) {
		cfg.Refs = len(pvs)
	}
	if cfg.KMeansIters == 0 {
		cfg.KMeansIters = 8
	}
	m := &Index{cfg: cfg, dim: dim}
	m.refs = kmeans(pvs, cfg.Refs, cfg.KMeansIters)
	// Scale: spread the largest possible distance (bounding-box diagonal)
	// over the 32-bit offset band.
	var diag float64
	for d := 0; d < dim; d++ {
		lo, hi := pvs[0].Point[d], pvs[0].Point[d]
		for _, pv := range pvs {
			if pv.Point[d] < lo {
				lo = pv.Point[d]
			}
			if pv.Point[d] > hi {
				hi = pv.Point[d]
			}
		}
		diag += (hi - lo) * (hi - lo)
	}
	diag = math.Sqrt(diag)
	if diag <= 0 {
		diag = 1
	}
	m.distScale = float64(uint64(1)<<32-2) / diag
	// Project and sort.
	type proj struct {
		key core.Key
		pv  core.PV
	}
	ps := make([]proj, len(pvs))
	m.maxDist = make([]float64, len(m.refs))
	for i, pv := range pvs {
		r, d := m.nearestRef(pv.Point)
		if d > m.maxDist[r] {
			m.maxDist[r] = d
		}
		ps[i] = proj{key: m.key(r, d), pv: pv}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].key < ps[j].key })
	m.keys = make([]core.Key, len(ps))
	m.pts = make([]core.PV, len(ps))
	recs := make([]core.KV, len(ps))
	for i, p := range ps {
		m.keys[i] = p.key
		m.pts[i] = p.pv
		recs[i] = core.KV{Key: p.key, Value: core.Value(i)}
	}
	var err error
	m.ix, err = pgm.Build(recs, cfg.Epsilon)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// kmeans runs a few Lloyd iterations seeded by evenly spaced data points.
func kmeans(pvs []core.PV, k, iters int) []core.Point {
	refs := make([]core.Point, k)
	for i := range refs {
		refs[i] = pvs[i*len(pvs)/k].Point.Clone()
	}
	dim := pvs[0].Point.Dim()
	for it := 0; it < iters; it++ {
		sums := make([][]float64, k)
		counts := make([]int, k)
		for i := range sums {
			sums[i] = make([]float64, dim)
		}
		for _, pv := range pvs {
			best, bd := 0, math.Inf(1)
			for r := range refs {
				if d := pv.Point.DistSq(refs[r]); d < bd {
					best, bd = r, d
				}
			}
			counts[best]++
			for d := 0; d < dim; d++ {
				sums[best][d] += pv.Point[d]
			}
		}
		for r := range refs {
			if counts[r] == 0 {
				continue
			}
			for d := 0; d < dim; d++ {
				refs[r][d] = sums[r][d] / float64(counts[r])
			}
		}
	}
	return refs
}

func (m *Index) nearestRef(p core.Point) (int, float64) {
	best, bd := 0, math.Inf(1)
	for r := range m.refs {
		if d := p.DistSq(m.refs[r]); d < bd {
			best, bd = r, d
		}
	}
	return best, math.Sqrt(bd)
}

// key maps (partition, distance) to the projected 1-D key.
func (m *Index) key(ref int, dist float64) core.Key {
	off := core.Key(dist * m.distScale)
	if off >= 1<<32 {
		off = 1<<32 - 1
	}
	return core.Key(ref)<<32 | off
}

// Len returns the number of points.
func (m *Index) Len() int { return len(m.pts) }

// Refs returns the reference points (read-only).
func (m *Index) Refs() []core.Point { return m.refs }

// Lookup returns the value of the point equal to p.
func (m *Index) Lookup(p core.Point) (core.Value, bool) {
	if p.Dim() != m.dim {
		return 0, false
	}
	r, d := m.nearestRef(p)
	k := m.key(r, d)
	// distScale quantization: scan the key and its neighbor.
	for _, probe := range []core.Key{k - 1, k, k + 1} {
		i := m.ix.LowerBound(probe)
		for ; i < len(m.keys) && m.keys[i] == probe; i++ {
			if m.pts[i].Point.Equal(p) {
				return m.pts[i].Value, true
			}
		}
	}
	return 0, false
}

// scanAnnulus visits stored points of partition r with distance in
// [dLo, dHi], calling fn; fn returning false stops the scan. Returns false
// if stopped.
func (m *Index) scanAnnulus(r int, dLo, dHi float64, fn func(core.PV) bool) (int, bool) {
	if dLo < 0 {
		dLo = 0
	}
	lo := m.key(r, dLo)
	if lo > core.Key(r)<<32 {
		lo-- // quantization slack, kept within partition r
	}
	hi := m.key(r, dHi)
	if hi < core.Key(r)<<32|(1<<32-1) {
		hi++ // quantization slack, kept within partition r
	}
	i := m.ix.LowerBound(lo)
	visited := 0
	for ; i < len(m.keys) && m.keys[i] <= hi; i++ {
		visited++
		if !fn(m.pts[i]) {
			return visited, false
		}
	}
	return visited, true
}

// Search calls fn for every point in rect; fn returning false stops.
// Returns points visited and candidate points scanned (the I/O proxy).
func (m *Index) Search(rect core.Rect, fn func(core.PV) bool) (visited, scanned int) {
	if rect.Dim() != m.dim {
		return 0, 0
	}
	for r := range m.refs {
		// Distance band of the rect seen from ref r.
		dLo := math.Sqrt(rect.MinDistSq(m.refs[r]))
		dHi := maxDistToRect(m.refs[r], rect)
		if dLo > m.maxDist[r] {
			continue
		}
		if dHi > m.maxDist[r] {
			dHi = m.maxDist[r]
		}
		n, cont := m.scanAnnulus(r, dLo, dHi, func(pv core.PV) bool {
			if rect.Contains(pv.Point) {
				visited++
				return fn(pv)
			}
			return true
		})
		scanned += n
		if !cont {
			return visited, scanned
		}
	}
	return visited, scanned
}

// maxDistToRect returns the maximum distance from p to any corner of rect.
func maxDistToRect(p core.Point, rect core.Rect) float64 {
	var s float64
	for d := range p {
		a := math.Abs(p[d] - rect.Min[d])
		if b := math.Abs(p[d] - rect.Max[d]); b > a {
			a = b
		}
		s += a * a
	}
	return math.Sqrt(s)
}

// KNN returns the k nearest points to q in ascending distance order using
// the iDistance expanding-annulus algorithm.
func (m *Index) KNN(q core.Point, k int) []core.PV {
	if k <= 0 || q.Dim() != m.dim || len(m.pts) == 0 {
		return nil
	}
	if k > len(m.pts) {
		k = len(m.pts)
	}
	// coverRadius is the radius at which every partition's annulus
	// [qDist-radius, qDist+radius] contains its full distance range
	// [0, maxDist], i.e. the search provably scans every stored point.
	// Capping expansion by the data span alone terminated too early when
	// the extent was degenerate (all points equal) or q lay far outside it.
	qDist := make([]float64, len(m.refs))
	coverRadius := 0.0
	for r := range m.refs {
		qDist[r] = q.Dist(m.refs[r])
		if c := qDist[r] + m.maxDist[r]; c > coverRadius {
			coverRadius = c
		}
	}
	// Expanding radius search.
	radius := m.initialRadius()
	var result []core.PV
	for {
		type cand struct {
			pv core.PV
			d2 float64
		}
		var cands []cand
		for r := range m.refs {
			// Points of partition r within radius of q lie in the annulus
			// [qDist-radius, qDist+radius] around ref r.
			dLo := qDist[r] - radius
			dHi := qDist[r] + radius
			if dLo > m.maxDist[r] {
				continue
			}
			m.scanAnnulus(r, dLo, dHi, func(pv core.PV) bool {
				cands = append(cands, cand{pv, q.DistSq(pv.Point)})
				return true
			})
		}
		if len(cands) >= k {
			sort.Slice(cands, func(i, j int) bool { return cands[i].d2 < cands[j].d2 })
			if cands[k-1].d2 <= radius*radius {
				result = make([]core.PV, k)
				for i := 0; i < k; i++ {
					result[i] = cands[i].pv
				}
				return result
			}
		}
		if radius >= coverRadius {
			// Every partition was scanned in full: cands holds all points.
			sort.Slice(cands, func(i, j int) bool { return cands[i].d2 < cands[j].d2 })
			if len(cands) > k {
				cands = cands[:k]
			}
			result = make([]core.PV, len(cands))
			for i := range cands {
				result[i] = cands[i].pv
			}
			return result
		}
		radius *= 2
	}
}

func (m *Index) initialRadius() float64 {
	// A small fraction of the mean partition radius.
	var s float64
	for _, d := range m.maxDist {
		s += d
	}
	r := s / float64(len(m.maxDist)) * 0.05
	if r <= 0 {
		r = 1
	}
	return r
}

// Stats reports structure statistics.
func (m *Index) Stats() core.Stats {
	st := m.ix.Stats()
	return core.Stats{
		Name:       "mlindex",
		Count:      len(m.pts),
		IndexBytes: st.IndexBytes + 8*len(m.keys) + len(m.refs)*8*m.dim,
		DataBytes:  len(m.pts) * (8*m.dim + 8),
		Height:     st.Height,
		Models:     st.Models + len(m.refs),
	}
}
