package bloom

import (
	"testing"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

func TestNoFalseNegatives(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Lognormal, 20000, 1)
	f := New(len(keys), 0.01)
	for _, k := range keys {
		f.Add(k)
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative for %d", k)
		}
	}
}

func TestFPRNearTarget(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Uniform, 50000, 2)
	f := New(len(keys), 0.01)
	for _, k := range keys {
		f.Add(k)
	}
	present := make(map[core.Key]bool, len(keys))
	for _, k := range keys {
		present[k] = true
	}
	neg, _ := dataset.Keys(dataset.Uniform, 50000, 999)
	fp, total := 0, 0
	for _, k := range neg {
		if present[k] {
			continue
		}
		total++
		if f.Contains(k) {
			fp++
		}
	}
	fpr := float64(fp) / float64(total)
	if fpr > 0.03 {
		t.Fatalf("observed FPR %g for target 0.01", fpr)
	}
	if est := f.EstimatedFPR(); est > 0.02 {
		t.Fatalf("estimated FPR %g for target 0.01", est)
	}
}

func TestNewBits(t *testing.T) {
	f := NewBits(1<<16, 5000)
	if f.Bits() < 1<<16 {
		t.Fatalf("bits = %d", f.Bits())
	}
	if f.K() < 1 || f.K() > 30 {
		t.Fatalf("k = %d", f.K())
	}
	f.Add(42)
	if !f.Contains(42) {
		t.Fatal("lost key")
	}
	if f.Count() != 1 {
		t.Fatalf("count = %d", f.Count())
	}
	if f.Bytes() != int(f.Bits()/8) {
		t.Fatalf("bytes = %d bits = %d", f.Bytes(), f.Bits())
	}
}

func TestClamps(t *testing.T) {
	f := New(0, 2.0) // silly params get clamped
	f.Add(1)
	if !f.Contains(1) {
		t.Fatal("clamped filter broken")
	}
	f = New(10, 0) // fpr clamped up from 0
	f.Add(1)
	if !f.Contains(1) {
		t.Fatal("zero-fpr filter broken")
	}
	f = NewBits(1, 0)
	f.Add(7)
	if !f.Contains(7) {
		t.Fatal("tiny filter broken")
	}
	if f.EstimatedFPR() <= 0 {
		t.Fatal("estimated FPR should be positive after Add")
	}
}

func TestEmptyFilter(t *testing.T) {
	f := New(100, 0.01)
	if f.EstimatedFPR() != 0 {
		t.Fatal("empty filter FPR should be 0")
	}
	if f.Contains(1) || f.Contains(0) {
		t.Fatal("empty filter contains something")
	}
}
