// Package bloom implements a standard Bloom filter over uint64 keys, the
// traditional baseline that the learned Bloom filters in package lbf replace
// or embed as their backup filter.
package bloom

import (
	"math"

	"github.com/lix-go/lix/internal/core"
)

// Filter is a standard Bloom filter with k hash functions derived by double
// hashing from two 64-bit mixes of the key.
type Filter struct {
	bits  []uint64
	m     uint64 // number of bits
	k     int    // number of hash functions
	count int
}

// New returns a filter sized for expectedItems at the target false-positive
// rate fpr (clamped to [1e-9, 0.5]).
func New(expectedItems int, fpr float64) *Filter {
	if expectedItems < 1 {
		expectedItems = 1
	}
	if fpr < 1e-9 {
		fpr = 1e-9
	}
	if fpr > 0.5 {
		fpr = 0.5
	}
	ln2 := math.Ln2
	m := uint64(math.Ceil(-float64(expectedItems) * math.Log(fpr) / (ln2 * ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(expectedItems) * ln2))
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &Filter{bits: make([]uint64, (m+63)/64), m: m, k: k}
}

// NewBits returns a filter with exactly totalBits bits (rounded up to 64)
// and the optimal k for expectedItems. This is the constructor used by the
// space-budget experiments (bits-per-key sweeps).
func NewBits(totalBits uint64, expectedItems int) *Filter {
	if totalBits < 64 {
		totalBits = 64
	}
	if expectedItems < 1 {
		expectedItems = 1
	}
	k := int(math.Round(float64(totalBits) / float64(expectedItems) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &Filter{bits: make([]uint64, (totalBits+63)/64), m: totalBits, k: k}
}

func mix1(k core.Key) uint64 {
	x := uint64(k)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func mix2(k core.Key) uint64 {
	x := uint64(k) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts key k.
func (f *Filter) Add(k core.Key) {
	h1, h2 := mix1(k), mix2(k)|1
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		f.bits[pos>>6] |= 1 << (pos & 63)
	}
	f.count++
}

// Contains reports whether k may be in the set (false positives possible,
// false negatives impossible).
func (f *Filter) Contains(k core.Key) bool {
	h1, h2 := mix1(k), mix2(k)|1
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		if f.bits[pos>>6]&(1<<(pos&63)) == 0 {
			return false
		}
	}
	return true
}

// Bits returns the filter size in bits.
func (f *Filter) Bits() uint64 { return f.m }

// Bytes returns the filter size in bytes.
func (f *Filter) Bytes() int { return len(f.bits) * 8 }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.k }

// Count returns the number of added keys.
func (f *Filter) Count() int { return f.count }

// EstimatedFPR returns the theoretical false-positive rate given the number
// of added keys.
func (f *Filter) EstimatedFPR() float64 {
	if f.count == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(f.k)*float64(f.count)/float64(f.m)), float64(f.k))
}
