// Package taxonomy encodes the paper's three figures as data: the spectrum
// of learned indexes (Figure 1), the taxonomy tree classifying one- and
// multi-dimensional learned indexes (Figure 2), and the evolution timeline
// with lineage edges (Figure 3). The catalog lists the surveyed systems
// with their classification coordinates; entries implemented in this
// repository carry the implementing package so the figures can be
// regenerated from code (experiments E1–E3).
package taxonomy

import (
	"fmt"
	"sort"
	"strings"
)

// Dimensionality of the indexed space.
type Dimensionality string

// Dimensionality values.
const (
	OneDim   Dimensionality = "1-D"
	MultiDim Dimensionality = "multi-D"
)

// Mutability per the taxonomy's first split.
type Mutability string

// Mutability values.
const (
	Immutable Mutability = "immutable"
	Mutable   Mutability = "mutable"
)

// Layout per the fixed-vs-dynamic data layout split.
type Layout string

// Layout values (immutable indexes are fixed by definition).
const (
	FixedLayout   Layout = "fixed"
	DynamicLayout Layout = "dynamic"
)

// Kind is the pure-vs-hybrid spectrum position (Figure 1).
type Kind string

// Kind values.
const (
	Pure   Kind = "pure"
	Hybrid Kind = "hybrid"
)

// InsertStrategy for mutable pure indexes.
type InsertStrategy string

// InsertStrategy values.
const (
	NoInserts   InsertStrategy = "-"
	InPlace     InsertStrategy = "in-place"
	DeltaBuffer InsertStrategy = "delta-buffer"
)

// Space handling for multi-dimensional indexes.
type Space string

// Space values.
const (
	NotApplicable Space = "-"
	Projected     Space = "projected"
	Native        Space = "native"
)

// Entry is one surveyed system.
type Entry struct {
	Name       string
	Year       int
	Dim        Dimensionality
	Mutability Mutability
	Layout     Layout
	Kind       Kind
	Insert     InsertStrategy
	Space      Space
	// HybridBase names the traditional component of hybrid indexes.
	HybridBase string
	// Concurrent marks native concurrency support (the * in Figure 2).
	Concurrent bool
	// Package is the implementing package in this repository ("" if the
	// system is catalogued but not implemented here).
	Package string
	// Influences lists earlier entries this system builds on (Figure 3
	// lineage edges).
	Influences []string
}

// Catalog returns the surveyed systems. The list covers every taxonomy
// branch the paper names, with one or more implemented representatives per
// populated branch.
func Catalog() []Entry {
	return []Entry{
		// --- 1-D immutable pure -------------------------------------------
		{Name: "RMI", Year: 2018, Dim: OneDim, Mutability: Immutable, Layout: FixedLayout, Kind: Pure, Insert: NoInserts, Space: NotApplicable, Package: "internal/rmi"},
		{Name: "RadixSpline", Year: 2020, Dim: OneDim, Mutability: Immutable, Layout: FixedLayout, Kind: Pure, Insert: NoInserts, Space: NotApplicable, Package: "internal/radixspline", Influences: []string{"RMI"}},
		{Name: "Hist-Tree", Year: 2021, Dim: OneDim, Mutability: Immutable, Layout: FixedLayout, Kind: Pure, Insert: NoInserts, Space: NotApplicable, Package: "internal/histtree", Influences: []string{"RMI"}},
		{Name: "PLEX", Year: 2021, Dim: OneDim, Mutability: Immutable, Layout: FixedLayout, Kind: Pure, Insert: NoInserts, Space: NotApplicable, Influences: []string{"RadixSpline"}},
		{Name: "Shift-Table", Year: 2021, Dim: OneDim, Mutability: Immutable, Layout: FixedLayout, Kind: Pure, Insert: NoInserts, Space: NotApplicable, Influences: []string{"RMI"}},
		{Name: "CDFShop", Year: 2020, Dim: OneDim, Mutability: Immutable, Layout: FixedLayout, Kind: Pure, Insert: NoInserts, Space: NotApplicable, Influences: []string{"RMI"}},
		{Name: "LSI", Year: 2022, Dim: OneDim, Mutability: Immutable, Layout: FixedLayout, Kind: Pure, Insert: NoInserts, Space: NotApplicable, Influences: []string{"RadixSpline"}},

		// --- 1-D immutable hybrid -----------------------------------------
		{Name: "Hybrid-RMI", Year: 2018, Dim: OneDim, Mutability: Immutable, Layout: FixedLayout, Kind: Hybrid, Insert: NoInserts, Space: NotApplicable, HybridBase: "B-tree", Package: "internal/rmi", Influences: []string{"RMI"}},
		{Name: "Learned-BF", Year: 2018, Dim: OneDim, Mutability: Immutable, Layout: FixedLayout, Kind: Hybrid, Insert: NoInserts, Space: NotApplicable, HybridBase: "Bloom filter", Package: "internal/lbf", Influences: []string{"RMI"}},
		{Name: "Sandwiched-BF", Year: 2018, Dim: OneDim, Mutability: Immutable, Layout: FixedLayout, Kind: Hybrid, Insert: NoInserts, Space: NotApplicable, HybridBase: "Bloom filter", Package: "internal/lbf", Influences: []string{"Learned-BF"}},
		{Name: "IFB-tree", Year: 2019, Dim: OneDim, Mutability: Mutable, Layout: FixedLayout, Kind: Hybrid, Insert: InPlace, Space: NotApplicable, HybridBase: "B-tree", Package: "internal/btree", Influences: []string{"RMI"}},

		// --- 1-D mutable pure, fixed layout, delta buffer ------------------
		{Name: "PGM-index", Year: 2020, Dim: OneDim, Mutability: Mutable, Layout: FixedLayout, Kind: Pure, Insert: DeltaBuffer, Space: NotApplicable, Package: "internal/pgm", Influences: []string{"RMI", "FITing-tree"}},
		{Name: "FITing-tree", Year: 2019, Dim: OneDim, Mutability: Mutable, Layout: FixedLayout, Kind: Pure, Insert: DeltaBuffer, Space: NotApplicable, Package: "internal/fiting", Influences: []string{"RMI"}},
		{Name: "XIndex", Year: 2020, Dim: OneDim, Mutability: Mutable, Layout: FixedLayout, Kind: Pure, Insert: DeltaBuffer, Space: NotApplicable, Concurrent: true, Package: "internal/xindex", Influences: []string{"RMI"}},
		{Name: "SIndex", Year: 2020, Dim: OneDim, Mutability: Mutable, Layout: FixedLayout, Kind: Pure, Insert: DeltaBuffer, Space: NotApplicable, Concurrent: true, Influences: []string{"XIndex"}},
		{Name: "FINEdex", Year: 2021, Dim: OneDim, Mutability: Mutable, Layout: FixedLayout, Kind: Pure, Insert: DeltaBuffer, Space: NotApplicable, Concurrent: true, Influences: []string{"XIndex"}},

		// --- 1-D mutable pure, dynamic layout, in-place --------------------
		{Name: "ALEX", Year: 2020, Dim: OneDim, Mutability: Mutable, Layout: DynamicLayout, Kind: Pure, Insert: InPlace, Space: NotApplicable, Package: "internal/alex", Influences: []string{"RMI"}},
		{Name: "LIPP", Year: 2021, Dim: OneDim, Mutability: Mutable, Layout: DynamicLayout, Kind: Pure, Insert: InPlace, Space: NotApplicable, Package: "internal/lipp", Influences: []string{"ALEX"}},
		{Name: "APEX", Year: 2021, Dim: OneDim, Mutability: Mutable, Layout: DynamicLayout, Kind: Pure, Insert: InPlace, Space: NotApplicable, Concurrent: true, Influences: []string{"ALEX"}},
		{Name: "CARMI", Year: 2022, Dim: OneDim, Mutability: Mutable, Layout: DynamicLayout, Kind: Pure, Insert: InPlace, Space: NotApplicable, Influences: []string{"RMI", "ALEX"}},
		{Name: "SALI", Year: 2023, Dim: OneDim, Mutability: Mutable, Layout: DynamicLayout, Kind: Pure, Insert: InPlace, Space: NotApplicable, Concurrent: true, Influences: []string{"LIPP"}},
		{Name: "NFL", Year: 2022, Dim: OneDim, Mutability: Mutable, Layout: DynamicLayout, Kind: Pure, Insert: InPlace, Space: NotApplicable, Influences: []string{"LIPP"}},

		// --- 1-D mutable hybrid --------------------------------------------
		{Name: "BOURBON", Year: 2020, Dim: OneDim, Mutability: Mutable, Layout: FixedLayout, Kind: Hybrid, Insert: DeltaBuffer, Space: NotApplicable, HybridBase: "LSM-tree", Package: "internal/lsm", Influences: []string{"RMI"}},
		{Name: "S3", Year: 2019, Dim: OneDim, Mutability: Mutable, Layout: FixedLayout, Kind: Hybrid, Insert: InPlace, Space: NotApplicable, HybridBase: "Skip list", Package: "internal/skiplist", Influences: []string{"RMI"}},
		{Name: "Ada-BF", Year: 2019, Dim: OneDim, Mutability: Mutable, Layout: FixedLayout, Kind: Hybrid, Insert: DeltaBuffer, Space: NotApplicable, HybridBase: "Bloom filter", Influences: []string{"Learned-BF"}},
		{Name: "PLBF", Year: 2020, Dim: OneDim, Mutability: Mutable, Layout: FixedLayout, Kind: Hybrid, Insert: DeltaBuffer, Space: NotApplicable, HybridBase: "Bloom filter", Package: "internal/lbf", Influences: []string{"Learned-BF", "Sandwiched-BF"}},
		{Name: "SNARF", Year: 2022, Dim: OneDim, Mutability: Mutable, Layout: FixedLayout, Kind: Hybrid, Insert: DeltaBuffer, Space: NotApplicable, HybridBase: "Range filter", Influences: []string{"PLBF"}},

		// --- multi-D immutable pure ----------------------------------------
		{Name: "ZM-index", Year: 2019, Dim: MultiDim, Mutability: Immutable, Layout: FixedLayout, Kind: Pure, Insert: NoInserts, Space: Projected, Package: "internal/zm", Influences: []string{"RMI"}},
		{Name: "ML-Index", Year: 2020, Dim: MultiDim, Mutability: Immutable, Layout: FixedLayout, Kind: Pure, Insert: NoInserts, Space: Projected, Package: "internal/mlindex", Influences: []string{"ZM-index"}},
		{Name: "Flood", Year: 2020, Dim: MultiDim, Mutability: Immutable, Layout: FixedLayout, Kind: Pure, Insert: NoInserts, Space: Native, Package: "internal/flood", Influences: []string{"RMI"}},
		{Name: "Tsunami", Year: 2020, Dim: MultiDim, Mutability: Immutable, Layout: FixedLayout, Kind: Pure, Insert: NoInserts, Space: Native, Influences: []string{"Flood"}},
		{Name: "Learned-Z (instance-opt)", Year: 2022, Dim: MultiDim, Mutability: Immutable, Layout: FixedLayout, Kind: Pure, Insert: NoInserts, Space: Projected, Influences: []string{"ZM-index"}},

		// --- multi-D immutable hybrid ----------------------------------------
		{Name: "Qd-tree", Year: 2020, Dim: MultiDim, Mutability: Immutable, Layout: FixedLayout, Kind: Hybrid, Insert: NoInserts, Space: Native, HybridBase: "Partition tree", Package: "internal/qdtree", Influences: []string{"Flood"}},
		{Name: "SPRIG", Year: 2021, Dim: MultiDim, Mutability: Immutable, Layout: FixedLayout, Kind: Hybrid, Insert: NoInserts, Space: Native, HybridBase: "Grid", Influences: []string{"ZM-index"}},
		{Name: "CompressLBF", Year: 2021, Dim: MultiDim, Mutability: Immutable, Layout: FixedLayout, Kind: Hybrid, Insert: NoInserts, Space: Projected, HybridBase: "Bloom filter", Influences: []string{"Learned-BF"}},
		{Name: "LMI (metric)", Year: 2021, Dim: MultiDim, Mutability: Immutable, Layout: FixedLayout, Kind: Hybrid, Insert: NoInserts, Space: Native, HybridBase: "Metric tree", Influences: []string{"RMI"}},

		// --- multi-D mutable, fixed layout -----------------------------------
		{Name: "Period-Index", Year: 2019, Dim: MultiDim, Mutability: Mutable, Layout: FixedLayout, Kind: Pure, Insert: InPlace, Space: Native, Influences: []string{"RMI"}},
		{Name: "GLIN", Year: 2022, Dim: MultiDim, Mutability: Mutable, Layout: FixedLayout, Kind: Hybrid, Insert: DeltaBuffer, Space: Projected, HybridBase: "B-tree", Influences: []string{"ZM-index"}},
		{Name: "SLBRIN", Year: 2023, Dim: MultiDim, Mutability: Mutable, Layout: FixedLayout, Kind: Hybrid, Insert: DeltaBuffer, Space: Projected, HybridBase: "BRIN", Influences: []string{"ZM-index"}},

		// --- multi-D mutable, dynamic layout ---------------------------------
		{Name: "LISA", Year: 2020, Dim: MultiDim, Mutability: Mutable, Layout: DynamicLayout, Kind: Pure, Insert: DeltaBuffer, Space: Projected, Package: "internal/lisa", Influences: []string{"ZM-index"}},
		{Name: "AI+R-tree", Year: 2022, Dim: MultiDim, Mutability: Mutable, Layout: DynamicLayout, Kind: Hybrid, Insert: InPlace, Space: Native, HybridBase: "R-tree", Package: "internal/rtree", Influences: []string{"RMI"}},
		{Name: "RW-Tree", Year: 2022, Dim: MultiDim, Mutability: Mutable, Layout: DynamicLayout, Kind: Hybrid, Insert: InPlace, Space: Native, HybridBase: "R-tree", Influences: []string{"AI+R-tree"}},
		{Name: "RLR-Tree", Year: 2023, Dim: MultiDim, Mutability: Mutable, Layout: DynamicLayout, Kind: Hybrid, Insert: InPlace, Space: Native, HybridBase: "R-tree", Influences: []string{"RW-Tree"}},
		{Name: "PLATON", Year: 2023, Dim: MultiDim, Mutability: Mutable, Layout: DynamicLayout, Kind: Hybrid, Insert: InPlace, Space: Native, HybridBase: "R-tree", Influences: []string{"Qd-tree"}},
		{Name: "Waffle", Year: 2022, Dim: MultiDim, Mutability: Mutable, Layout: DynamicLayout, Kind: Pure, Insert: InPlace, Space: Native, Influences: []string{"Flood"}},
		{Name: "LMSFC", Year: 2023, Dim: MultiDim, Mutability: Mutable, Layout: DynamicLayout, Kind: Pure, Insert: DeltaBuffer, Space: Projected, Influences: []string{"ZM-index", "LISA"}},
		{Name: "WISK", Year: 2023, Dim: MultiDim, Mutability: Mutable, Layout: DynamicLayout, Kind: Hybrid, Insert: DeltaBuffer, Space: Native, HybridBase: "Grid", Influences: []string{"Flood", "Qd-tree"}},
	}
}

// Implemented returns the catalog entries implemented in this repository.
func Implemented() []Entry {
	var out []Entry
	for _, e := range Catalog() {
		if e.Package != "" {
			out = append(out, e)
		}
	}
	return out
}

// ByName returns the entry with the given name.
func ByName(name string) (Entry, bool) {
	for _, e := range Catalog() {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// Spectrum renders the Figure 1 reproduction: the pure-vs-hybrid spectrum
// with the catalog's systems placed on it.
func Spectrum() string {
	var pure1, hyb1, pureM, hybM []string
	for _, e := range Catalog() {
		label := e.Name
		if e.Package != "" {
			label += " [impl]"
		}
		switch {
		case e.Dim == OneDim && e.Kind == Pure:
			pure1 = append(pure1, label)
		case e.Dim == OneDim:
			hyb1 = append(hyb1, label+" ("+e.HybridBase+")")
		case e.Kind == Pure:
			pureM = append(pureM, label)
		default:
			hybM = append(hybM, label+" ("+e.HybridBase+")")
		}
	}
	var b strings.Builder
	b.WriteString("Figure 1 — Spectrum of learned index structures\n")
	b.WriteString("  Traditional indexes <──────────────────────────> Pure learned indexes\n\n")
	b.WriteString("  PURE (replace the traditional structure)\n")
	b.WriteString("    1-D:     " + strings.Join(pure1, ", ") + "\n")
	b.WriteString("    multi-D: " + strings.Join(pureM, ", ") + "\n\n")
	b.WriteString("  HYBRID (ML model + traditional structure)\n")
	b.WriteString("    1-D:     " + strings.Join(hyb1, ", ") + "\n")
	b.WriteString("    multi-D: " + strings.Join(hybM, ", ") + "\n")
	return b.String()
}

// Tree renders the Figure 2 reproduction: the taxonomy tree with every
// populated branch and the systems in it ([impl] marks entries implemented
// here, * marks native concurrency, as in the paper).
func Tree() string {
	type branchKey struct {
		dim    Dimensionality
		mut    Mutability
		layout Layout
		kind   Kind
		insert InsertStrategy
		space  Space
	}
	branches := map[branchKey][]string{}
	for _, e := range Catalog() {
		k := branchKey{e.Dim, e.Mutability, e.Layout, e.Kind, e.Insert, e.Space}
		label := e.Name
		if e.Concurrent {
			label += "*"
		}
		if e.Package != "" {
			label += " [impl]"
		}
		if e.Kind == Hybrid && e.HybridBase != "" {
			label += " <" + e.HybridBase + ">"
		}
		branches[k] = append(branches[k], label)
	}
	var b strings.Builder
	b.WriteString("Figure 2 — Taxonomy of learned indexes\n")
	b.WriteString("(* = native concurrency; [impl] = implemented in this repository)\n\n")
	for _, dim := range []Dimensionality{OneDim, MultiDim} {
		b.WriteString(string(dim) + "\n")
		for _, mut := range []Mutability{Immutable, Mutable} {
			b.WriteString("├── " + string(mut) + "\n")
			layouts := []Layout{FixedLayout}
			if mut == Mutable {
				layouts = []Layout{FixedLayout, DynamicLayout}
			}
			for _, lay := range layouts {
				if mut == Mutable {
					b.WriteString("│   ├── " + string(lay) + " data layout\n")
				}
				for _, kind := range []Kind{Pure, Hybrid} {
					var lines []string
					for _, ins := range []InsertStrategy{NoInserts, InPlace, DeltaBuffer} {
						for _, sp := range []Space{NotApplicable, Projected, Native} {
							k := branchKey{dim, mut, lay, kind, ins, sp}
							if names, ok := branches[k]; ok {
								sort.Strings(names)
								tag := ""
								if ins != NoInserts {
									tag = string(ins)
								}
								if sp != NotApplicable {
									if tag != "" {
										tag += ", "
									}
									tag += string(sp) + " space"
								}
								if tag != "" {
									tag = " (" + tag + ")"
								}
								lines = append(lines, fmt.Sprintf("│   │   │   %s: %s", tag, strings.Join(names, ", ")))
							}
						}
					}
					if len(lines) > 0 {
						b.WriteString("│   │   ├── " + string(kind) + "\n")
						for _, l := range lines {
							b.WriteString(l + "\n")
						}
					}
				}
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Timeline renders the Figure 3 reproduction: systems grouped by year with
// lineage edges (A -> B means B builds on A).
func Timeline() string {
	byYear := map[int][]Entry{}
	years := []int{}
	for _, e := range Catalog() {
		if len(byYear[e.Year]) == 0 {
			years = append(years, e.Year)
		}
		byYear[e.Year] = append(byYear[e.Year], e)
	}
	sort.Ints(years)
	var b strings.Builder
	b.WriteString("Figure 3 — Evolution of learned indexes\n")
	b.WriteString("(□ = 1-D, △ = multi-D; '<- X' = builds on X; [impl] = implemented here)\n\n")
	for _, y := range years {
		b.WriteString(fmt.Sprintf("%d:\n", y))
		es := byYear[y]
		sort.Slice(es, func(i, j int) bool { return es[i].Name < es[j].Name })
		for _, e := range es {
			sym := "□"
			if e.Dim == MultiDim {
				sym = "△"
			}
			line := fmt.Sprintf("  %s %s", sym, e.Name)
			if e.Package != "" {
				line += " [impl]"
			}
			if len(e.Influences) > 0 {
				line += "  <- " + strings.Join(e.Influences, ", ")
			}
			b.WriteString(line + "\n")
		}
	}
	return b.String()
}

// CoverageReport summarizes which taxonomy branches have an implemented
// representative (the tutorial's completeness claim, checked in tests).
func CoverageReport() map[string]int {
	cov := map[string]int{}
	for _, e := range Implemented() {
		key := fmt.Sprintf("%s/%s/%s/%s", e.Dim, e.Mutability, e.Layout, e.Kind)
		cov[key]++
	}
	return cov
}
