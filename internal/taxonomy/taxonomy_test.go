package taxonomy

import (
	"strings"
	"testing"
)

func TestCatalogWellFormed(t *testing.T) {
	names := map[string]bool{}
	for _, e := range Catalog() {
		if e.Name == "" || e.Year < 2017 || e.Year > 2026 {
			t.Fatalf("bad entry %+v", e)
		}
		if names[e.Name] {
			t.Fatalf("duplicate name %q", e.Name)
		}
		names[e.Name] = true
		if e.Kind == Hybrid && e.HybridBase == "" {
			t.Fatalf("hybrid %q without base", e.Name)
		}
		if e.Dim == MultiDim && e.Space == NotApplicable {
			t.Fatalf("multi-D %q without space classification", e.Name)
		}
		if e.Mutability == Immutable && e.Insert != NoInserts {
			t.Fatalf("immutable %q with insert strategy", e.Name)
		}
	}
	// Lineage edges must reference existing entries.
	for _, e := range Catalog() {
		for _, inf := range e.Influences {
			if !names[inf] {
				t.Fatalf("%q influences unknown %q", e.Name, inf)
			}
		}
	}
}

func TestInfluencesAreAcyclicAndBackwards(t *testing.T) {
	for _, e := range Catalog() {
		for _, inf := range e.Influences {
			p, ok := ByName(inf)
			if !ok {
				t.Fatal("missing influence")
			}
			if p.Year > e.Year {
				t.Fatalf("%q (%d) influenced by later %q (%d)", e.Name, e.Year, p.Name, p.Year)
			}
		}
	}
}

func TestEveryMajorBranchImplemented(t *testing.T) {
	cov := CoverageReport()
	wanted := []string{
		"1-D/immutable/fixed/pure",
		"1-D/immutable/fixed/hybrid",
		"1-D/mutable/fixed/pure",
		"1-D/mutable/dynamic/pure",
		"multi-D/immutable/fixed/pure",
		"multi-D/immutable/fixed/hybrid",
		"multi-D/mutable/dynamic/pure",
		"multi-D/mutable/dynamic/hybrid",
	}
	for _, w := range wanted {
		if cov[w] == 0 {
			t.Fatalf("taxonomy branch %q has no implemented representative (cov=%v)", w, cov)
		}
	}
}

func TestInsertStrategyCoverage(t *testing.T) {
	// Both insert strategies must have implemented representatives in 1-D.
	var inplace, delta bool
	for _, e := range Implemented() {
		if e.Dim == OneDim && e.Insert == InPlace {
			inplace = true
		}
		if e.Dim == OneDim && e.Insert == DeltaBuffer {
			delta = true
		}
	}
	if !inplace || !delta {
		t.Fatalf("insert strategies not both covered: inplace=%v delta=%v", inplace, delta)
	}
}

func TestSpaceCoverage(t *testing.T) {
	var projected, native bool
	for _, e := range Implemented() {
		if e.Dim == MultiDim && e.Space == Projected {
			projected = true
		}
		if e.Dim == MultiDim && e.Space == Native {
			native = true
		}
	}
	if !projected || !native {
		t.Fatalf("space handling not both covered: projected=%v native=%v", projected, native)
	}
}

func TestConcurrentRepresentative(t *testing.T) {
	found := false
	for _, e := range Implemented() {
		if e.Concurrent {
			found = true
		}
	}
	if !found {
		t.Fatal("no implemented concurrent index")
	}
}

func TestFigureRenderings(t *testing.T) {
	s := Spectrum()
	if !strings.Contains(s, "PURE") || !strings.Contains(s, "HYBRID") || !strings.Contains(s, "RMI") {
		t.Fatalf("spectrum rendering incomplete:\n%s", s)
	}
	tree := Tree()
	for _, want := range []string{"1-D", "multi-D", "immutable", "mutable", "ALEX", "PGM-index", "LISA", "[impl]"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree rendering missing %q", want)
		}
	}
	tl := Timeline()
	for _, want := range []string{"2018", "2020", "RMI", "<- RMI", "△"} {
		if !strings.Contains(tl, want) {
			t.Fatalf("timeline missing %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("RMI"); !ok {
		t.Fatal("RMI missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("phantom entry")
	}
}

func TestImplementedCount(t *testing.T) {
	if n := len(Implemented()); n < 15 {
		t.Fatalf("only %d implemented entries", n)
	}
	if n := len(Catalog()); n < 40 {
		t.Fatalf("catalog has only %d entries", n)
	}
}
