package segment

import (
	"testing"

	"github.com/lix-go/lix/internal/dataset"
)

func benchInput(n int) ([]float64, []float64) {
	keys, _ := dataset.Keys(dataset.Lognormal, n, 1)
	xs := dataset.Floats(keys)
	return xs, Positions(len(xs))
}

func BenchmarkBuildOptimal(b *testing.B) {
	xs, ys := benchInput(1 << 18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if segs := BuildOptimal(xs, ys, 64); len(segs) == 0 {
			b.Fatal("no segments")
		}
	}
}

func BenchmarkBuildAnchored(b *testing.B) {
	xs, ys := benchInput(1 << 18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if segs := BuildAnchored(xs, ys, 64); len(segs) == 0 {
			b.Fatal("no segments")
		}
	}
}
