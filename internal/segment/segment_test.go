package segment

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

type builder func(xs, ys []float64, eps float64) []Segment

func genSorted(r *rand.Rand, n int, mode int) []float64 {
	xs := make([]float64, n)
	switch mode % 4 {
	case 0: // uniform
		for i := range xs {
			xs[i] = r.Float64() * 1e9
		}
	case 1: // lognormal (heavy skew)
		for i := range xs {
			xs[i] = math.Exp(r.NormFloat64() * 4)
		}
	case 2: // clustered
		for i := range xs {
			c := float64(r.Intn(5)) * 1e8
			xs[i] = c + r.Float64()*1e3
		}
	case 3: // with duplicates
		for i := range xs {
			xs[i] = float64(r.Intn(n/4 + 1))
		}
	}
	sort.Float64s(xs)
	return xs
}

// buildOn dedups and builds, returning the dedup arrays too.
func buildOn(b builder, raw []float64, eps float64) (xs, ys []float64, segs []Segment) {
	xs, ys = Dedup(raw)
	return xs, ys, b(xs, ys, eps)
}

func checkTiling(t *testing.T, name string, n int, segs []Segment) {
	t.Helper()
	if len(segs) == 0 {
		t.Fatalf("%s: no segments", name)
	}
	if segs[0].StartIdx != 0 || segs[len(segs)-1].EndIdx != n {
		t.Fatalf("%s: segments do not cover array (first=%d last=%d n=%d)",
			name, segs[0].StartIdx, segs[len(segs)-1].EndIdx, n)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].StartIdx != segs[i-1].EndIdx {
			t.Fatalf("%s: gap between segments %d and %d", name, i-1, i)
		}
	}
}

func testErrorBound(t *testing.T, b builder, name string) {
	t.Helper()
	r := rand.New(rand.NewSource(11))
	for mode := 0; mode < 4; mode++ {
		for _, eps := range []float64{1, 4, 16, 64} {
			raw := genSorted(r, 3000, mode)
			xs, ys, segs := buildOn(b, raw, eps)
			checkTiling(t, name, len(xs), segs)
			if e := MaxError(xs, ys, segs); e > eps+1e-6 {
				t.Fatalf("%s mode=%d eps=%g: max error %g", name, mode, eps, e)
			}
		}
	}
}

func TestAnchoredErrorBound(t *testing.T) { testErrorBound(t, BuildAnchored, "anchored") }
func TestOptimalErrorBound(t *testing.T)  { testErrorBound(t, BuildOptimal, "optimal") }

func TestOptimalNotWorseMuch(t *testing.T) {
	// The polygon method should essentially never produce more segments
	// than the anchored cone (tiny slack for the capped slope box).
	r := rand.New(rand.NewSource(5))
	for mode := 0; mode < 3; mode++ {
		raw := genSorted(r, 5000, mode)
		for _, eps := range []float64{4.0, 32.0} {
			_, _, a := buildOn(BuildAnchored, raw, eps)
			_, _, o := buildOn(BuildOptimal, raw, eps)
			if float64(len(o)) > 1.1*float64(len(a))+2 {
				t.Fatalf("mode=%d eps=%g: optimal %d segments vs anchored %d",
					mode, eps, len(o), len(a))
			}
		}
	}
}

func TestLinearDataOneSegment(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i) * 7
	}
	ys := Positions(len(xs))
	for _, b := range []builder{BuildAnchored, BuildOptimal} {
		segs := b(xs, ys, 1)
		if len(segs) != 1 {
			t.Fatalf("perfectly linear data produced %d segments", len(segs))
		}
		if e := MaxError(xs, ys, segs); e > 1 {
			t.Fatalf("linear data error = %g", e)
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if BuildAnchored(nil, nil, 4) != nil || BuildOptimal(nil, nil, 4) != nil {
		t.Fatal("nil input should produce nil")
	}
	for _, b := range []builder{BuildAnchored, BuildOptimal} {
		segs := b([]float64{42}, []float64{0}, 0)
		if len(segs) != 1 || segs[0].Len() != 1 {
			t.Fatalf("single key: %+v", segs)
		}
		if p := segs[0].Predict(42); math.Abs(p) > 1e-9 {
			t.Fatalf("single key predict = %g", p)
		}
	}
}

func TestDedup(t *testing.T) {
	xs, ys := Dedup([]float64{1, 1, 1, 3, 5, 5, 9})
	wantX := []float64{1, 3, 5, 9}
	wantY := []float64{0, 3, 4, 6}
	if len(xs) != len(wantX) {
		t.Fatalf("Dedup xs = %v", xs)
	}
	for i := range wantX {
		if xs[i] != wantX[i] || ys[i] != wantY[i] {
			t.Fatalf("Dedup = %v %v, want %v %v", xs, ys, wantX, wantY)
		}
	}
	if x, y := Dedup(nil); x != nil || y != nil {
		t.Fatal("Dedup(nil) should be nil")
	}
}

func TestAllDuplicates(t *testing.T) {
	raw := make([]float64, 100)
	for i := range raw {
		raw[i] = 5
	}
	for name, b := range map[string]builder{
		"anchored": BuildAnchored, "optimal": BuildOptimal,
	} {
		xs, ys, segs := buildOn(b, raw, 2)
		checkTiling(t, name, len(xs), segs)
		if e := MaxError(xs, ys, segs); e > 2+1e-6 {
			t.Fatalf("%s: duplicate error %g", name, e)
		}
	}
}

func TestZeroEps(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	raw := genSorted(r, 500, 0)
	xs, ys, segs := buildOn(BuildOptimal, raw, 0)
	if e := MaxError(xs, ys, segs); e > 1e-6 {
		t.Fatalf("eps=0 error = %g", e)
	}
}

func TestLocate(t *testing.T) {
	segs := []Segment{
		{FirstKey: 0, LastKey: 9},
		{FirstKey: 10, LastKey: 19},
		{FirstKey: 20, LastKey: 29},
	}
	cases := []struct {
		k    float64
		want int
	}{{-5, 0}, {0, 0}, {5, 0}, {10, 1}, {15, 1}, {20, 2}, {100, 2}}
	for _, c := range cases {
		if got := Locate(segs, c.k); got != c.want {
			t.Errorf("Locate(%g) = %d, want %d", c.k, got, c.want)
		}
	}
}

// Property: for random sorted inputs and random eps the bound always holds
// and segments tile the (deduped) input, for both builders.
func TestPLAProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(99))}
	f := func(seed int64, epsRaw uint8, mode uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 50 + r.Intn(1000)
		eps := float64(epsRaw%64) + 1
		raw := genSorted(r, n, int(mode))
		for _, b := range []builder{BuildAnchored, BuildOptimal} {
			xs, ys, segs := buildOn(b, raw, eps)
			if segs[0].StartIdx != 0 || segs[len(segs)-1].EndIdx != len(xs) {
				return false
			}
			for i := 1; i < len(segs); i++ {
				if segs[i].StartIdx != segs[i-1].EndIdx {
					return false
				}
			}
			if MaxError(xs, ys, segs) > eps+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalFewerSegmentsOnCurvedData(t *testing.T) {
	// On smoothly curved data (quadratic CDF) the free-intercept optimal
	// method should need no more segments than the anchored cone.
	n := 20000
	xs := make([]float64, n)
	for i := range xs {
		x := float64(i) / float64(n)
		xs[i] = x * x * 1e9
	}
	ys := Positions(n)
	a := len(BuildAnchored(xs, ys, 8))
	o := len(BuildOptimal(xs, ys, 8))
	if o > a {
		t.Fatalf("optimal %d > anchored %d on curved data", o, a)
	}
	if a < 2 {
		t.Fatalf("expected multiple segments, got %d", a)
	}
}

func TestPositions(t *testing.T) {
	p := Positions(3)
	if len(p) != 3 || p[0] != 0 || p[2] != 2 {
		t.Fatalf("Positions(3) = %v", p)
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	for _, b := range []builder{BuildAnchored, BuildOptimal} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on xs/ys mismatch")
				}
			}()
			b([]float64{1, 2}, []float64{0}, 1)
		}()
	}
}

func TestOptimalLinearDataIsFast(t *testing.T) {
	// Regression: on perfectly linear data the feasible polygon used to
	// grow one vertex per point, making the pass quadratic (a 100k-key
	// build took minutes). With pruning it must be linear and still emit
	// very few segments with the error bound intact.
	n := 500000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i) * 17
	}
	ys := Positions(n)
	start := time.Now()
	segs := BuildOptimal(xs, ys, 32)
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("linear-data build took %v", d)
	}
	if len(segs) > 4 {
		t.Fatalf("linear data produced %d segments", len(segs))
	}
	if e := MaxError(xs, ys, segs); e > 32+1e-6 {
		t.Fatalf("error %g", e)
	}
}
