// Package segment implements ε-bounded piecewise linear approximation (PLA)
// of monotone sequences. Given sorted keys x_0 <= ... <= x_{n-1} with
// non-decreasing target positions y_i and an error budget ε, a PLA is a
// sequence of line segments such that for every i the segment covering x_i
// predicts a position p with |p - y_i| <= ε. This is the core building
// block of the PGM-index, FITing-tree and RadixSpline.
//
// Callers indexing data with duplicate keys should first collapse
// duplicates with Dedup, mapping each distinct key to the position of its
// first occurrence — this is what gives learned indexes their lower-bound
// guarantee in the presence of duplicates.
//
// Two builders are provided:
//
//   - BuildAnchored: FITing-tree's "shrinking cone". Segments are lines
//     anchored at the first point of the segment; greedy and maximal among
//     anchored lines. At most 2x the optimal number of segments.
//
//   - BuildOptimal: greedy PLA with a free intercept following O'Rourke
//     (1981), as used by the PGM-index. The feasible set of
//     (slope, intercept) pairs is a convex polygon in dual space, clipped by
//     two half-planes per point; a segment closes when the polygon becomes
//     empty, which yields maximal segments and hence the minimum segment
//     count achievable by any left-to-right segmentation.
package segment

import (
	"math"
)

// Segment is a line segment of a PLA: over keys in [FirstKey, LastKey] it
// predicts position Predict(k) = Slope*(k-FirstKey) + Intercept.
// StartIdx/EndIdx delimit the covered range [StartIdx, EndIdx) in the
// source arrays passed to the builder.
type Segment struct {
	FirstKey  float64
	LastKey   float64
	Slope     float64
	Intercept float64
	StartIdx  int
	EndIdx    int
}

// Predict returns the predicted (float) position of key k.
func (s *Segment) Predict(k float64) float64 {
	return s.Slope*(k-s.FirstKey) + s.Intercept
}

// Len returns the number of points covered by the segment.
func (s *Segment) Len() int { return s.EndIdx - s.StartIdx }

// SegmentBytes is the in-memory footprint of one Segment.
const SegmentBytes = 8*4 + 8*2

// Positions returns the identity position slice [0, 1, ..., n-1], the usual
// target when keys are distinct.
func Positions(n int) []float64 {
	ys := make([]float64, n)
	for i := range ys {
		ys[i] = float64(i)
	}
	return ys
}

// Dedup collapses runs of equal keys, returning the distinct keys and the
// position of the first occurrence of each, which is the lower-bound rank.
func Dedup(xs []float64) (distinct, firstPos []float64) {
	for i := 0; i < len(xs); i++ {
		if i == 0 || xs[i] != xs[i-1] {
			distinct = append(distinct, xs[i])
			firstPos = append(firstPos, float64(i))
		}
	}
	return distinct, firstPos
}

// BuildAnchored builds a PLA over (xs, ys) with maximum prediction error
// eps, using the shrinking-cone algorithm with the segment's first point as
// anchor. xs must be sorted ascending (strictly, if the ε-bound must hold —
// see Dedup); ys non-decreasing; eps >= 0.
func BuildAnchored(xs, ys []float64, eps float64) []Segment {
	n := len(xs)
	if n == 0 {
		return nil
	}
	if len(ys) != n {
		panic("segment: xs/ys length mismatch")
	}
	var segs []Segment
	start := 0
	for start < n {
		x0 := xs[start]
		y0 := ys[start]
		slopeLo := math.Inf(-1)
		slopeHi := math.Inf(1)
		end := start + 1
		for end < n {
			dx := xs[end] - x0
			if dx == 0 {
				// Equal key: prediction is pinned to y0; acceptable only
				// while the target stays within eps.
				if math.Abs(ys[end]-y0) <= eps {
					end++
					continue
				}
				break
			}
			lo := (ys[end] - eps - y0) / dx
			hi := (ys[end] + eps - y0) / dx
			newLo := math.Max(slopeLo, lo)
			newHi := math.Min(slopeHi, hi)
			if newLo > newHi {
				break
			}
			slopeLo, slopeHi = newLo, newHi
			end++
		}
		slope := 0.0
		switch {
		case math.IsInf(slopeLo, -1) && math.IsInf(slopeHi, 1):
			slope = 0
		case math.IsInf(slopeLo, -1):
			slope = slopeHi
		case math.IsInf(slopeHi, 1):
			slope = slopeLo
		default:
			slope = (slopeLo + slopeHi) / 2
		}
		segs = append(segs, Segment{
			FirstKey:  x0,
			LastKey:   xs[end-1],
			Slope:     slope,
			Intercept: y0,
			StartIdx:  start,
			EndIdx:    end,
		})
		start = end
	}
	return segs
}

// point in (slope, intercept) dual space.
type dualPt struct{ a, b float64 }

// BuildOptimal builds a PLA over (xs, ys) with maximum prediction error eps
// using the convex-polygon feasibility method. For each point (x_i, y_i)
// the feasible (slope a, intercept b) pairs satisfy
//
//	y_i - eps <= a*(x_i - x_start) + b <= y_i + eps
//
// which is a slab between two parallel half-planes in dual space. The
// intersection of slabs is a convex polygon; when it empties, the segment
// is closed at the previous point and a new segment begins.
func BuildOptimal(xs, ys []float64, eps float64) []Segment {
	n := len(xs)
	if n == 0 {
		return nil
	}
	if len(ys) != n {
		panic("segment: xs/ys length mismatch")
	}
	var segs []Segment
	start := 0
	for start < n {
		x0 := xs[start]
		// Initial feasible polygon: generous box. Slopes in [0, maxSlope]
		// (ys non-decreasing in xs, so some non-negative slope fits);
		// intercept within [y_start-eps, y_start+eps].
		maxSlope := initialMaxSlope(xs, ys, start)
		poly := []dualPt{
			{0, ys[start] - eps},
			{maxSlope, ys[start] - eps},
			{maxSlope, ys[start] + eps},
			{0, ys[start] + eps},
		}
		end := start
		for end < n {
			dx := xs[end] - x0
			y := ys[end]
			// Clip: a*dx + b <= y + eps   (below upper line)
			//       a*dx + b >= y - eps   (above lower line)
			next := clip(poly, dx, 1, y+eps, true)
			next = clip(next, dx, 1, y-eps, false)
			if len(next) == 0 {
				break
			}
			poly = prune(next)
			end++
		}
		if end == start {
			// Single point could not fit (numeric corner); emit a trivial
			// constant segment to guarantee progress.
			end = start + 1
			segs = append(segs, Segment{
				FirstKey: x0, LastKey: xs[start], Slope: 0,
				Intercept: ys[start], StartIdx: start, EndIdx: end,
			})
			start = end
			continue
		}
		a, b := polygonCenter(poly)
		segs = append(segs, Segment{
			FirstKey:  x0,
			LastKey:   xs[end-1],
			Slope:     a,
			Intercept: b,
			StartIdx:  start,
			EndIdx:    end,
		})
		start = end
	}
	return segs
}

// initialMaxSlope bounds the slope search space: the steepest useful slope
// is governed by the smallest key gap relative to its position gap. Sampling
// a prefix keeps the bound cheap; an under-estimate only closes segments
// early (more segments), never violates the error bound.
func initialMaxSlope(xs, ys []float64, start int) float64 {
	n := len(xs)
	if start+1 >= n {
		return 1
	}
	maxNeed := 0.0
	limit := start + 64
	if limit > n {
		limit = n
	}
	for i := start + 1; i < limit; i++ {
		dx := xs[i] - xs[i-1]
		dy := ys[i] - ys[i-1]
		if dx > 0 && dy/dx > maxNeed {
			maxNeed = dy / dx
		}
	}
	if maxNeed <= 0 {
		return 1e18
	}
	s := maxNeed * 4 // slack factor over steepest sampled requirement
	if s < 1 {
		s = 1
	}
	if s > 1e18 {
		s = 1e18
	}
	return s
}

// clip cuts polygon poly with the half-plane ca*a + cb*b <= rhs (when below
// is true) or >= rhs (when below is false), returning the clipped polygon.
func clip(poly []dualPt, ca, cb, rhs float64, below bool) []dualPt {
	if len(poly) == 0 {
		return nil
	}
	inside := func(p dualPt) bool {
		v := ca*p.a + cb*p.b
		if below {
			return v <= rhs+1e-9
		}
		return v >= rhs-1e-9
	}
	var out []dualPt
	for i := range poly {
		cur := poly[i]
		prev := poly[(i+len(poly)-1)%len(poly)]
		ci, pi := inside(cur), inside(prev)
		if pi != ci {
			// Edge crosses the boundary: add the intersection point.
			den := ca*(cur.a-prev.a) + cb*(cur.b-prev.b)
			if den != 0 {
				t := (rhs - ca*prev.a - cb*prev.b) / den
				out = append(out, dualPt{
					a: prev.a + t*(cur.a-prev.a),
					b: prev.b + t*(cur.b-prev.b),
				})
			}
		}
		if ci {
			out = append(out, cur)
		}
	}
	return out
}

// maxPolyVerts bounds the feasible polygon's complexity. On data a single
// line fits exactly (e.g. equally spaced keys) every clip adds a vertex
// without closing the segment, which would make the pass quadratic; pruning
// keeps it linear. Dropping a vertex of a convex polygon replaces it with
// the chord between its neighbors, which is a subset of the region, so the
// ε-guarantee is unaffected (the segment may only close marginally early).
const maxPolyVerts = 48

// prune halves the vertex count when the polygon grows past maxPolyVerts.
func prune(poly []dualPt) []dualPt {
	if len(poly) <= maxPolyVerts {
		return poly
	}
	out := poly[:0]
	for i := 0; i < len(poly); i += 2 {
		out = append(out, poly[i])
	}
	return out
}

// polygonCenter returns the vertex centroid of the feasible polygon — any
// interior point is a valid (slope, intercept).
func polygonCenter(poly []dualPt) (a, b float64) {
	for _, p := range poly {
		a += p.a
		b += p.b
	}
	n := float64(len(poly))
	return a / n, b / n
}

// MaxError returns the maximum |Predict(xs[i]) - ys[i]| over the points
// covered by the PLA.
func MaxError(xs, ys []float64, segs []Segment) float64 {
	var worst float64
	for si := range segs {
		s := &segs[si]
		for i := s.StartIdx; i < s.EndIdx; i++ {
			d := math.Abs(s.Predict(xs[i]) - ys[i])
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// Locate returns the index of the segment covering key k (the last segment
// whose FirstKey <= k), or 0 if k precedes all segments.
func Locate(segs []Segment, k float64) int {
	lo, hi := 0, len(segs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if segs[mid].FirstKey <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}
