package lbf

import (
	"math/rand"
	"testing"

	"github.com/lix-go/lix/internal/bloom"
	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

// learnableSet returns a key set with strong structure (keys live in a
// compact band of the key space) plus train/test negative samples drawn
// from outside-band and in-band gaps.
func learnableSet(n int, seed int64) (keys, trainNeg, testNeg []core.Key) {
	r := rand.New(rand.NewSource(seed))
	seen := map[core.Key]bool{}
	for len(keys) < n {
		k := core.Key(1<<40 + r.Int63n(1<<30)) // dense band
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	gen := func(m int) []core.Key {
		var out []core.Key
		for len(out) < m {
			var k core.Key
			if r.Intn(2) == 0 {
				k = core.Key(r.Int63n(1 << 40)) // below band
			} else {
				k = core.Key(1<<41 + r.Int63n(1<<45)) // above band
			}
			if !seen[k] {
				out = append(out, k)
			}
		}
		return out
	}
	return keys, gen(n), gen(n)
}

func TestNoFalseNegatives(t *testing.T) {
	keys, trainNeg, _ := learnableSet(5000, 801)
	bits := uint64(8 * len(keys))
	f, err := Train(keys, trainNeg, bits, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative %d", k)
		}
	}
	s, err := TrainSandwich(keys, trainNeg, bits, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !s.Contains(k) {
			t.Fatalf("sandwich false negative %d", k)
		}
	}
	p, err := TrainPartitioned(keys, trainNeg, bits, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !p.Contains(k) {
			t.Fatalf("partitioned false negative %d", k)
		}
	}
}

func TestLearnedBeatsStandardOnLearnableData(t *testing.T) {
	keys, trainNeg, testNeg := learnableSet(8000, 802)
	bits := uint64(6 * len(keys)) // tight budget: 6 bits/key
	std := bloom.NewBits(bits, len(keys))
	for _, k := range keys {
		std.Add(k)
	}
	f, err := Train(keys, trainNeg, bits, 0)
	if err != nil {
		t.Fatal(err)
	}
	stdFPR := MeasureFPR(std, testNeg)
	lbfFPR := MeasureFPR(f, testNeg)
	// On strongly learnable data the LBF should not be much worse, and is
	// typically better. Allow slack for the tiny model.
	if lbfFPR > stdFPR*1.5+0.02 {
		t.Fatalf("learned FPR %.4f vs standard %.4f", lbfFPR, stdFPR)
	}
	if f.BackupKeys() == len(keys) {
		t.Fatal("classifier learned nothing: all keys in backup")
	}
}

func TestFilterBitsAccounting(t *testing.T) {
	keys, trainNeg, _ := learnableSet(2000, 803)
	bits := uint64(16 * len(keys))
	f, _ := Train(keys, trainNeg, bits, 0.2)
	if f.Bits() == 0 || f.Bits() > bits+4096 {
		t.Fatalf("bits = %d budget %d", f.Bits(), bits)
	}
	if f.Count() != len(keys) {
		t.Fatal("count")
	}
	if f.Threshold() <= 0 || f.Threshold() >= 1 {
		t.Fatalf("threshold = %g", f.Threshold())
	}
	s, _ := TrainSandwich(keys, trainNeg, bits, 0.4)
	if s.Bits() == 0 {
		t.Fatal("sandwich bits")
	}
	p, _ := TrainPartitioned(keys, trainNeg, bits, 8)
	if p.Bits() == 0 || p.Regions() != 8 {
		t.Fatalf("partitioned bits %d regions %d", p.Bits(), p.Regions())
	}
}

func TestErrors(t *testing.T) {
	if _, err := Train(nil, []core.Key{1}, 1024, 0); err == nil {
		t.Fatal("no keys accepted")
	}
	if _, err := Train([]core.Key{1}, nil, 1024, 0); err == nil {
		t.Fatal("no negatives accepted")
	}
	if _, err := TrainSandwich(nil, []core.Key{1}, 1024, 0); err == nil {
		t.Fatal("sandwich no keys accepted")
	}
	if _, err := TrainPartitioned(nil, []core.Key{1}, 1024, 0); err == nil {
		t.Fatal("partitioned no keys accepted")
	}
}

func TestUnlearnableDataStillCorrect(t *testing.T) {
	// Uniformly random keys are unlearnable; the LBF must degrade to
	// (roughly) a standard filter but never produce false negatives.
	keys, _ := dataset.Keys(dataset.Uniform, 3000, 804)
	negs, _ := dataset.Keys(dataset.Uniform, 3000, 805)
	present := map[core.Key]bool{}
	for _, k := range keys {
		present[k] = true
	}
	var train []core.Key
	for _, k := range negs {
		if !present[k] {
			train = append(train, k)
		}
	}
	f, err := Train(keys, train, uint64(10*len(keys)), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative %d", k)
		}
	}
}

// TestFPRWithinConfiguredBound pins the filter's measured FPR against
// the bound its configuration promises. The overall false-positive rate
// of the classic LBF decomposes as
//
//	FPR ~= tau + (1-tau) * backupFPR
//
// where tau is the configured classifier budget (the fraction of
// training negatives allowed past the classifier alone) and backupFPR is
// the analytic rate of a Bloom filter with the backup's actual bit count
// and key load. A held-out negative sample must measure within 2x that
// estimate (plus additive slack for sampling noise) — the factor-2
// envelope absorbs train/test distribution shift while still failing if
// the threshold quantile or the backup sizing breaks.
func TestFPRWithinConfiguredBound(t *testing.T) {
	keys, trainNeg, testNeg := learnableSet(8000, 806)
	bits := uint64(10 * len(keys))
	for _, tau := range []float64{0.01, 0.05, 0.1} {
		f, err := Train(keys, trainNeg, bits, tau)
		if err != nil {
			t.Fatal(err)
		}
		// The threshold is set to the (1-tau) quantile of training
		// negative scores, so the classifier-alone pass rate on the
		// training negatives must track tau.
		pass := 0
		for _, k := range trainNeg {
			if f.model.Predict(f.norm.apply(k)) >= f.threshold {
				pass++
			}
		}
		trainTau := float64(pass) / float64(len(trainNeg))
		if trainTau > tau*1.5+0.005 {
			t.Errorf("tau=%.3f: classifier passes %.4f of training negatives", tau, trainTau)
		}
		analytic := tau + (1-tau)*bloomFPREstimate(f.backup.Bits(), f.BackupKeys())
		measured := MeasureFPR(f, testNeg)
		if measured > 2*analytic+0.02 {
			t.Errorf("tau=%.3f: measured FPR %.4f exceeds 2x analytic bound %.4f (backup: %d keys in %d bits)",
				tau, measured, analytic, f.BackupKeys(), f.backup.Bits())
		}
	}
}

// hardSet is learnableSet with half the negatives drawn from the gaps
// INSIDE the key band. A score threshold over smooth key features cannot
// separate interleaved keys from gap negatives, so a large share of the
// keys falls through to the backup filter and the space budget actually
// binds — which is what a memory-vs-FPR sweep needs to measure.
func hardSet(n int, seed int64) (keys, trainNeg, testNeg []core.Key) {
	r := rand.New(rand.NewSource(seed))
	seen := map[core.Key]bool{}
	for len(keys) < n {
		k := core.Key(1<<40 + r.Int63n(1<<30))
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	gen := func(m int) []core.Key {
		var out []core.Key
		for len(out) < m {
			var k core.Key
			if r.Intn(2) == 0 {
				k = core.Key(1<<40 + r.Int63n(1<<30)) // in-band gap
			} else {
				k = core.Key(r.Int63n(1 << 40)) // below band
			}
			if !seen[k] {
				out = append(out, k)
			}
		}
		return out
	}
	return keys, gen(n), gen(n)
}

// TestMemoryVsFPRTradeoff sweeps the space budget and pins the trade-off
// curve the paper's §6.6 compression argument rests on: more bits per
// key must buy a lower (or equal, within noise) false-positive rate, the
// built filter must respect its budget, and the roomiest configuration
// must be strictly better than the tightest.
func TestMemoryVsFPRTradeoff(t *testing.T) {
	keys, trainNeg, testNeg := hardSet(8000, 807)
	budgets := []int{4, 8, 12, 16} // bits per key
	fprs := make([]float64, len(budgets))
	for i, bpk := range budgets {
		bits := uint64(bpk * len(keys))
		f, err := Train(keys, trainNeg, bits, 0)
		if err != nil {
			t.Fatal(err)
		}
		// The model is a fixed overhead on top of the budget; beyond it
		// the filter must not overshoot what it was given.
		modelBits := uint64(f.model.Bytes()) * 8
		if f.Bits() > bits+modelBits {
			t.Errorf("%d bits/key: built %d bits from a %d-bit budget (model %d)",
				bpk, f.Bits(), bits, modelBits)
		}
		fprs[i] = MeasureFPR(f, testNeg)
		t.Logf("%2d bits/key: FPR %.4f, %d/%d keys in backup, %d bits total",
			bpk, fprs[i], f.BackupKeys(), f.Count(), f.Bits())
	}
	for i := 1; i < len(fprs); i++ {
		// Monotone up to sampling noise: a bigger budget may not make the
		// measured rate meaningfully worse.
		if fprs[i] > fprs[i-1]*1.25+0.01 {
			t.Errorf("FPR rose with budget: %d bits/key %.4f -> %d bits/key %.4f",
				budgets[i-1], fprs[i-1], budgets[i], fprs[i])
		}
	}
	if last, first := fprs[len(fprs)-1], fprs[0]; last >= first && first > 0.01 {
		t.Errorf("quadrupling the budget bought nothing: %.4f -> %.4f", first, last)
	}
}

func TestMeasureFPREmpty(t *testing.T) {
	if MeasureFPR(bloom.New(10, 0.1), nil) != 0 {
		t.Fatal("empty probes")
	}
}
