package lbf

import (
	"math/rand"
	"testing"

	"github.com/lix-go/lix/internal/bloom"
	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

// learnableSet returns a key set with strong structure (keys live in a
// compact band of the key space) plus train/test negative samples drawn
// from outside-band and in-band gaps.
func learnableSet(n int, seed int64) (keys, trainNeg, testNeg []core.Key) {
	r := rand.New(rand.NewSource(seed))
	seen := map[core.Key]bool{}
	for len(keys) < n {
		k := core.Key(1<<40 + r.Int63n(1<<30)) // dense band
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	gen := func(m int) []core.Key {
		var out []core.Key
		for len(out) < m {
			var k core.Key
			if r.Intn(2) == 0 {
				k = core.Key(r.Int63n(1 << 40)) // below band
			} else {
				k = core.Key(1<<41 + r.Int63n(1<<45)) // above band
			}
			if !seen[k] {
				out = append(out, k)
			}
		}
		return out
	}
	return keys, gen(n), gen(n)
}

func TestNoFalseNegatives(t *testing.T) {
	keys, trainNeg, _ := learnableSet(5000, 801)
	bits := uint64(8 * len(keys))
	f, err := Train(keys, trainNeg, bits, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative %d", k)
		}
	}
	s, err := TrainSandwich(keys, trainNeg, bits, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !s.Contains(k) {
			t.Fatalf("sandwich false negative %d", k)
		}
	}
	p, err := TrainPartitioned(keys, trainNeg, bits, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !p.Contains(k) {
			t.Fatalf("partitioned false negative %d", k)
		}
	}
}

func TestLearnedBeatsStandardOnLearnableData(t *testing.T) {
	keys, trainNeg, testNeg := learnableSet(8000, 802)
	bits := uint64(6 * len(keys)) // tight budget: 6 bits/key
	std := bloom.NewBits(bits, len(keys))
	for _, k := range keys {
		std.Add(k)
	}
	f, err := Train(keys, trainNeg, bits, 0)
	if err != nil {
		t.Fatal(err)
	}
	stdFPR := MeasureFPR(std, testNeg)
	lbfFPR := MeasureFPR(f, testNeg)
	// On strongly learnable data the LBF should not be much worse, and is
	// typically better. Allow slack for the tiny model.
	if lbfFPR > stdFPR*1.5+0.02 {
		t.Fatalf("learned FPR %.4f vs standard %.4f", lbfFPR, stdFPR)
	}
	if f.BackupKeys() == len(keys) {
		t.Fatal("classifier learned nothing: all keys in backup")
	}
}

func TestFilterBitsAccounting(t *testing.T) {
	keys, trainNeg, _ := learnableSet(2000, 803)
	bits := uint64(16 * len(keys))
	f, _ := Train(keys, trainNeg, bits, 0.2)
	if f.Bits() == 0 || f.Bits() > bits+4096 {
		t.Fatalf("bits = %d budget %d", f.Bits(), bits)
	}
	if f.Count() != len(keys) {
		t.Fatal("count")
	}
	if f.Threshold() <= 0 || f.Threshold() >= 1 {
		t.Fatalf("threshold = %g", f.Threshold())
	}
	s, _ := TrainSandwich(keys, trainNeg, bits, 0.4)
	if s.Bits() == 0 {
		t.Fatal("sandwich bits")
	}
	p, _ := TrainPartitioned(keys, trainNeg, bits, 8)
	if p.Bits() == 0 || p.Regions() != 8 {
		t.Fatalf("partitioned bits %d regions %d", p.Bits(), p.Regions())
	}
}

func TestErrors(t *testing.T) {
	if _, err := Train(nil, []core.Key{1}, 1024, 0); err == nil {
		t.Fatal("no keys accepted")
	}
	if _, err := Train([]core.Key{1}, nil, 1024, 0); err == nil {
		t.Fatal("no negatives accepted")
	}
	if _, err := TrainSandwich(nil, []core.Key{1}, 1024, 0); err == nil {
		t.Fatal("sandwich no keys accepted")
	}
	if _, err := TrainPartitioned(nil, []core.Key{1}, 1024, 0); err == nil {
		t.Fatal("partitioned no keys accepted")
	}
}

func TestUnlearnableDataStillCorrect(t *testing.T) {
	// Uniformly random keys are unlearnable; the LBF must degrade to
	// (roughly) a standard filter but never produce false negatives.
	keys, _ := dataset.Keys(dataset.Uniform, 3000, 804)
	negs, _ := dataset.Keys(dataset.Uniform, 3000, 805)
	present := map[core.Key]bool{}
	for _, k := range keys {
		present[k] = true
	}
	var train []core.Key
	for _, k := range negs {
		if !present[k] {
			train = append(train, k)
		}
	}
	f, err := Train(keys, train, uint64(10*len(keys)), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative %d", k)
		}
	}
}

func TestMeasureFPREmpty(t *testing.T) {
	if MeasureFPR(bloom.New(10, 0.1), nil) != 0 {
		t.Fatal("empty probes")
	}
}
