// Package lbf implements learned Bloom filters: the classifier+backup
// architecture of Kraska et al. (2018), the sandwiched variant of
// Mitzenmacher (NeurIPS 2018), and a partitioned variant in the spirit of
// Vaidya et al. (ICLR 2020). All three guarantee zero false negatives, like
// the standard Bloom filter they replace (taxonomy: hybrid learned index,
// Bloom-filter branch; paper §6.6 index compression).
//
// The classifier is a small logistic-regression model over smooth features
// of the normalized key. Keys the classifier rejects are inserted into a
// standard backup Bloom filter; membership queries consult the classifier
// first and fall back to the backup filter.
package lbf

import (
	"fmt"
	"math"
	"sort"

	"github.com/lix-go/lix/internal/bloom"
	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/mlmodel"
)

// normalizer maps keys into [0, 1] for the classifier features.
type normalizer struct {
	min, span float64
}

func newNormalizer(keys, negs []core.Key) normalizer {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, k := range keys {
		x := float64(k)
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	for _, k := range negs {
		x := float64(k)
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if !(hi > lo) {
		return normalizer{min: lo, span: 1}
	}
	return normalizer{min: lo, span: hi - lo}
}

func (n normalizer) apply(k core.Key) float64 {
	return (float64(k) - n.min) / n.span
}

func trainClassifier(keys, negs []core.Key, norm normalizer) (*mlmodel.Logistic, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("lbf: no positive keys")
	}
	if len(negs) == 0 {
		return nil, fmt.Errorf("lbf: training requires negative samples")
	}
	xs := make([]float64, 0, len(keys)+len(negs))
	labels := make([]bool, 0, len(keys)+len(negs))
	for _, k := range keys {
		xs = append(xs, norm.apply(k))
		labels = append(labels, true)
	}
	for _, k := range negs {
		xs = append(xs, norm.apply(k))
		labels = append(labels, false)
	}
	m := mlmodel.NewLogistic(mlmodel.KeyFeatureDim, mlmodel.KeyFeatures)
	m.Epochs = 12
	if err := m.FitLabels(xs, labels); err != nil {
		return nil, err
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// Classic learned Bloom filter
// ---------------------------------------------------------------------------

// Filter is the classic learned Bloom filter: classifier + backup filter.
type Filter struct {
	model     *mlmodel.Logistic
	norm      normalizer
	threshold float64
	backup    *bloom.Filter
	count     int
}

// Train builds a learned Bloom filter over keys using negs as the negative
// training sample. totalBits is the overall space budget; targetTauFPR is
// the fraction of training negatives allowed to pass the classifier alone
// (the threshold is set to that quantile of negative scores; 0 selects
// 0.02, so the classifier contributes at most ~2% FPR and the backup
// filter the rest).
func Train(keys, negs []core.Key, totalBits uint64, targetTauFPR float64) (*Filter, error) {
	norm := newNormalizer(keys, negs)
	model, err := trainClassifier(keys, negs, norm)
	if err != nil {
		return nil, err
	}
	f := &Filter{model: model, norm: norm, count: len(keys)}
	// Negative and key score distributions.
	negScores := make([]float64, len(negs))
	for i, k := range negs {
		negScores[i] = model.Predict(norm.apply(k))
	}
	sort.Float64s(negScores)
	keyScores := make([]float64, len(keys))
	for i, k := range keys {
		keyScores[i] = model.Predict(norm.apply(k))
	}
	sort.Float64s(keyScores)
	modelBitsEst := uint64(model.Bytes()) * 8
	budget := uint64(64)
	if totalBits > modelBitsEst+64 {
		budget = totalBits - modelBitsEst
	}
	if targetTauFPR <= 0 || targetTauFPR >= 1 {
		// Auto-tune tau: overall FPR ~= tau + (1-tau) * backupFPR(misses),
		// where misses is the number of keys scoring below the threshold.
		// Pick the candidate minimizing the analytic estimate.
		best, bestFPR := 0.02, math.Inf(1)
		for _, tau := range []float64{0.3, 0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.0005} {
			thr := negScores[int(float64(len(negScores)-1)*(1-tau))]
			misses := sort.SearchFloat64s(keyScores, thr)
			est := tau + (1-tau)*bloomFPREstimate(budget, misses)
			if est < bestFPR {
				best, bestFPR = tau, est
			}
		}
		targetTauFPR = best
	}
	// Threshold: the (1 - targetTauFPR) quantile of negative scores.
	f.threshold = negScores[int(float64(len(negScores)-1)*(1-targetTauFPR))]
	if f.threshold >= 1 {
		f.threshold = 0.999999
	}
	// Backup filter for the classifier's false negatives.
	var misses []core.Key
	for _, k := range keys {
		if model.Predict(norm.apply(k)) < f.threshold {
			misses = append(misses, k)
		}
	}
	modelBits := uint64(model.Bytes()) * 8
	backupBits := uint64(64)
	if totalBits > modelBits+64 {
		backupBits = totalBits - modelBits
	}
	nMiss := len(misses)
	if nMiss == 0 {
		nMiss = 1
	}
	f.backup = bloom.NewBits(backupBits, nMiss)
	for _, k := range misses {
		f.backup.Add(k)
	}
	return f, nil
}

// Contains reports whether k may be in the set (no false negatives).
func (f *Filter) Contains(k core.Key) bool {
	if f.model.Predict(f.norm.apply(k)) >= f.threshold {
		return true
	}
	return f.backup.Contains(k)
}

// Bits returns the total size in bits (model + backup).
func (f *Filter) Bits() uint64 {
	return uint64(f.model.Bytes())*8 + f.backup.Bits()
}

// Count returns the number of keys stored.
func (f *Filter) Count() int { return f.count }

// BackupKeys returns how many keys fell through to the backup filter.
func (f *Filter) BackupKeys() int { return f.backup.Count() }

// Threshold returns the learned score threshold.
func (f *Filter) Threshold() float64 { return f.threshold }

// ---------------------------------------------------------------------------
// Sandwiched learned Bloom filter
// ---------------------------------------------------------------------------

// Sandwich is Mitzenmacher's sandwiched LBF: an initial Bloom filter culls
// most negatives before they reach the classifier, and a backup filter
// catches classifier false negatives.
type Sandwich struct {
	pre   *bloom.Filter
	inner *Filter
}

// TrainSandwich builds a sandwiched LBF with the given total bit budget;
// preFrac (0 selects 0.5) of the budget goes to the initial filter.
func TrainSandwich(keys, negs []core.Key, totalBits uint64, preFrac float64) (*Sandwich, error) {
	if preFrac <= 0 || preFrac >= 1 {
		preFrac = 0.5
	}
	preBits := uint64(float64(totalBits) * preFrac)
	if preBits < 64 {
		preBits = 64
	}
	n := len(keys)
	if n == 0 {
		return nil, fmt.Errorf("lbf: no positive keys")
	}
	pre := bloom.NewBits(preBits, n)
	for _, k := range keys {
		pre.Add(k)
	}
	rest := uint64(64)
	if totalBits > preBits+64 {
		rest = totalBits - preBits
	}
	inner, err := Train(keys, negs, rest, 0)
	if err != nil {
		return nil, err
	}
	return &Sandwich{pre: pre, inner: inner}, nil
}

// Contains reports whether k may be in the set (no false negatives).
func (s *Sandwich) Contains(k core.Key) bool {
	return s.pre.Contains(k) && s.inner.Contains(k)
}

// Bits returns the total size in bits.
func (s *Sandwich) Bits() uint64 { return s.pre.Bits() + s.inner.Bits() }

// ---------------------------------------------------------------------------
// Partitioned learned Bloom filter
// ---------------------------------------------------------------------------

// Partitioned divides the classifier score range into regions; regions
// dominated by keys accept directly, the others carry per-region backup
// filters sized by their key counts (a simplified PLBF).
type Partitioned struct {
	model   *mlmodel.Logistic
	norm    normalizer
	cuts    []float64 // region boundaries (ascending); len = regions-1
	accept  []bool
	backups []*bloom.Filter
	count   int
}

// TrainPartitioned builds a partitioned LBF with the given number of score
// regions (0 selects 6) and total bit budget.
func TrainPartitioned(keys, negs []core.Key, totalBits uint64, regions int) (*Partitioned, error) {
	if regions <= 0 {
		regions = 6
	}
	norm := newNormalizer(keys, negs)
	model, err := trainClassifier(keys, negs, norm)
	if err != nil {
		return nil, err
	}
	p := &Partitioned{model: model, norm: norm, count: len(keys)}
	// Equal-count cuts over the combined score distribution.
	all := make([]float64, 0, len(keys)+len(negs))
	for _, k := range keys {
		all = append(all, model.Predict(norm.apply(k)))
	}
	for _, k := range negs {
		all = append(all, model.Predict(norm.apply(k)))
	}
	sort.Float64s(all)
	for r := 1; r < regions; r++ {
		p.cuts = append(p.cuts, all[r*len(all)/regions])
	}
	// Assign keys/negatives to regions.
	keyCnt := make([]int, regions)
	negCnt := make([]int, regions)
	keyRegion := make([]int, len(keys))
	for i, k := range keys {
		r := p.region(model.Predict(norm.apply(k)))
		keyRegion[i] = r
		keyCnt[r]++
	}
	for _, k := range negs {
		negCnt[p.region(model.Predict(norm.apply(k)))]++
	}
	// Regions with overwhelming key majority accept directly.
	p.accept = make([]bool, regions)
	p.backups = make([]*bloom.Filter, regions)
	backupKeys := 0
	for r := 0; r < regions; r++ {
		total := keyCnt[r] + negCnt[r]
		if keyCnt[r] > 0 && total > 0 && float64(keyCnt[r])/float64(total) >= 0.95 {
			p.accept[r] = true
		} else {
			backupKeys += keyCnt[r]
		}
	}
	modelBits := uint64(model.Bytes()) * 8
	budget := uint64(64 * regions)
	if totalBits > modelBits+budget {
		budget = totalBits - modelBits
	}
	for r := 0; r < regions; r++ {
		if p.accept[r] || keyCnt[r] == 0 {
			continue
		}
		bits := uint64(float64(budget) * float64(keyCnt[r]) / float64(max(backupKeys, 1)))
		if bits < 64 {
			bits = 64
		}
		p.backups[r] = bloom.NewBits(bits, keyCnt[r])
	}
	for i, k := range keys {
		r := keyRegion[i]
		if !p.accept[r] && p.backups[r] != nil {
			p.backups[r].Add(k)
		}
	}
	return p, nil
}

func (p *Partitioned) region(score float64) int {
	r := 0
	for r < len(p.cuts) && score >= p.cuts[r] {
		r++
	}
	return r
}

// Contains reports whether k may be in the set (no false negatives).
func (p *Partitioned) Contains(k core.Key) bool {
	r := p.region(p.model.Predict(p.norm.apply(k)))
	if p.accept[r] {
		return true
	}
	if p.backups[r] == nil {
		return false
	}
	return p.backups[r].Contains(k)
}

// Bits returns the total size in bits.
func (p *Partitioned) Bits() uint64 {
	total := uint64(p.model.Bytes()) * 8
	for _, b := range p.backups {
		if b != nil {
			total += b.Bits()
		}
	}
	return total
}

// Regions returns the number of score regions.
func (p *Partitioned) Regions() int { return len(p.cuts) + 1 }

// ---------------------------------------------------------------------------
// Evaluation helper
// ---------------------------------------------------------------------------

// Container is any no-false-negative membership structure.
type Container interface {
	Contains(core.Key) bool
}

// MeasureFPR returns the observed false-positive rate of c over probes,
// which must contain no true members.
func MeasureFPR(c Container, probes []core.Key) float64 {
	if len(probes) == 0 {
		return 0
	}
	fp := 0
	for _, k := range probes {
		if c.Contains(k) {
			fp++
		}
	}
	return float64(fp) / float64(len(probes))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// bloomFPREstimate returns the theoretical FPR of an optimally-configured
// Bloom filter with m bits holding n keys.
func bloomFPREstimate(m uint64, n int) float64 {
	if n <= 0 {
		return 0
	}
	k := math.Round(float64(m) / float64(n) * math.Ln2)
	if k < 1 {
		k = 1
	}
	return math.Pow(1-math.Exp(-k*float64(n)/float64(m)), k)
}
