package obs

import (
	"runtime"
	"sync"
	"testing"
)

// TestConcurrentStress hammers one histogram, one counter, one event log
// and one metrics bundle from many goroutines at once, with a concurrent
// reader taking snapshots. Run by the CI race tier (go test -race -short
// ./internal/obs ...): its value is the interleavings the race detector
// explores, not the assertions.
func TestConcurrentStress(t *testing.T) {
	writers := 4 * runtime.GOMAXPROCS(0)
	perWriter := 20000
	if testing.Short() {
		perWriter = 4000
	}

	m := NewMetrics("stress")
	m.SetDriftDetector(&fixedDetector{left: writers * perWriter / 2}, nil)
	var hook Hook
	hook.SetRecorder(m)

	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent reader: snapshots, quantiles and recent-event reads must
	// be safe against in-flight writers.
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := m.Snapshot()
			_ = s.Histograms["search_probes"].P99
			_ = m.Probes.Quantile(0.5)
			_ = m.Events.Recent(8)
		}
	}()

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				m.Lookups.Inc()
				m.Probes.Observe(uint64(i & 1023))
				m.RecordSearch(i&15, i&255)
				if i%512 == 0 {
					hook.Emit(EvNodeSplit, i, "stress")
				}
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	total := uint64(writers * perWriter)
	if got := m.Lookups.Load(); got != total {
		t.Fatalf("Lookups = %d, want %d (sharded counter lost updates)", got, total)
	}
	// Probes histogram sees one Observe + one RecordSearch per iteration.
	if got := m.Probes.Count(); got != 2*total {
		t.Fatalf("Probes count = %d, want %d", got, 2*total)
	}
	if got := m.Window.Count(); got != total {
		t.Fatalf("Window count = %d, want %d", got, total)
	}
	wantEvents := uint64(writers) * uint64((perWriter+511)/512)
	if got := m.Events.Count(EvNodeSplit); got != wantEvents {
		t.Fatalf("split events = %d, want %d", got, wantEvents)
	}
	if m.Events.Count(EvDriftTrip) != 1 {
		t.Fatalf("drift trips = %d, want exactly 1 (latched)", m.Events.Count(EvDriftTrip))
	}
}
