package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Flusher periodically renders a metrics snapshot to a file so an
// exposition dump exists even if the process dies between scrapes (the
// crash-forensics complement to a live /metrics endpoint). Each flush
// renders to memory, writes a temp file in the target directory, and
// renames it over the destination, so readers never observe a torn
// snapshot. Stop performs one final flush, preserving the old
// write-once-at-drain behavior when no interval is configured.
type Flusher struct {
	path     string
	interval time.Duration
	render   func(*bytes.Buffer) error

	flushes atomic.Uint64
	lastErr atomic.Pointer[error]

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// NewFlusher returns a Flusher writing render's output to path. An
// interval <= 0 disables the ticker: only the Stop-time flush runs.
func NewFlusher(path string, interval time.Duration, render func(*bytes.Buffer) error) *Flusher {
	return &Flusher{path: path, interval: interval, render: render}
}

// Start launches the background ticker goroutine (a no-op when the
// interval is disabled). Calling Start on a running Flusher is a no-op.
func (f *Flusher) Start() {
	if f.interval <= 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stop != nil {
		return
	}
	f.stop = make(chan struct{})
	f.done = make(chan struct{})
	go f.loop(f.stop, f.done)
}

func (f *Flusher) loop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(f.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			f.Flush()
		case <-stop:
			return
		}
	}
}

// Stop halts the ticker (if running) and performs one final flush,
// returning its error. Safe to call without a prior Start and safe to
// call more than once.
func (f *Flusher) Stop() error {
	f.mu.Lock()
	stop, done := f.stop, f.done
	f.stop, f.done = nil, nil
	f.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return f.Flush()
}

// Flush renders and atomically replaces the snapshot file once.
func (f *Flusher) Flush() error {
	err := f.flushOnce()
	if err != nil {
		f.lastErr.Store(&err)
	}
	f.flushes.Add(1)
	return err
}

func (f *Flusher) flushOnce() error {
	var buf bytes.Buffer
	if err := f.render(&buf); err != nil {
		return err
	}
	dir := filepath.Dir(f.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(f.path)+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(buf.Bytes())
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), f.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Flushes returns the number of Flush calls completed (ticker or
// manual), for tests that need to observe the ticker path.
func (f *Flusher) Flushes() uint64 { return f.flushes.Load() }

// LastErr returns the most recent flush error, or nil.
func (f *Flusher) LastErr() error {
	if p := f.lastErr.Load(); p != nil {
		return *p
	}
	return nil
}
