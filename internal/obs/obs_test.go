package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"math/bits"
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatalf("zero counter loads %d", c.Load())
	}
	for i := 0; i < 1000; i++ {
		c.Inc()
	}
	c.Add(24)
	if got := c.Load(); got != 1024 {
		t.Fatalf("Load() = %d, want 1024", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	var h Histogram
	cases := []uint64{0, 1, 2, 3, 4, 7, 8, 1023, 1024, 1 << 40, ^uint64(0)}
	for _, v := range cases {
		h.Observe(v)
	}
	if h.Count() != uint64(len(cases)) {
		t.Fatalf("Count() = %d, want %d", h.Count(), len(cases))
	}
	s := h.Snapshot()
	if s.Max != ^uint64(0) {
		t.Fatalf("Max = %d", s.Max)
	}
	for _, v := range cases {
		b := bits.Len64(v)
		if s.Buckets[b] == 0 {
			t.Errorf("observation %d landed outside bucket %d", v, b)
		}
		if v != 0 && (v < BucketUpper(b-1)+1 || v > BucketUpper(b)) {
			t.Errorf("bucket %d bounds (%d, %d] exclude %d", b, BucketUpper(b-1), BucketUpper(b), v)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 100 observations of 10 and one of 100000.
	for i := 0; i < 100; i++ {
		h.Observe(10)
	}
	h.Observe(100000)
	if q := h.Quantile(0.5); q < 10 || q > 15 {
		t.Errorf("p50 = %d, want ~10 (log2 bucket upper bound 15)", q)
	}
	// The tail quantile must be clamped to the observed max.
	if q := h.Quantile(1); q != 100000 {
		t.Errorf("p100 = %d, want 100000", q)
	}
	var empty Histogram
	if empty.Quantile(0.99) != 0 {
		t.Errorf("empty quantile not 0")
	}
	if empty.Snapshot().Mean() != 0 {
		t.Errorf("empty mean not 0")
	}
}

func TestEventLogRingAndCounts(t *testing.T) {
	var l EventLog
	for i := 0; i < DefaultEventRing+10; i++ {
		l.Publish(Event{Type: EvNodeSplit, N: i})
	}
	l.Publish(Event{Type: EvRetrain, Detail: "final"})
	if got := l.Count(EvNodeSplit); got != DefaultEventRing+10 {
		t.Fatalf("Count(EvNodeSplit) = %d", got)
	}
	if got := l.Count(EvRetrain); got != 1 {
		t.Fatalf("Count(EvRetrain) = %d", got)
	}
	if got := l.Total(); got != DefaultEventRing+11 {
		t.Fatalf("Total() = %d", got)
	}
	rec := l.Recent(3)
	if len(rec) != 3 {
		t.Fatalf("Recent(3) returned %d events", len(rec))
	}
	last := rec[len(rec)-1]
	if last.Type != EvRetrain || last.Detail != "final" || last.TypeName != "retrain" {
		t.Fatalf("last recent event = %+v", last)
	}
	if rec[0].Seq+1 != rec[1].Seq || rec[1].Seq+1 != rec[2].Seq {
		t.Fatalf("recent events out of sequence: %+v", rec)
	}
	// Asking for more than retained yields the ring's worth.
	if n := len(l.Recent(10 * DefaultEventRing)); n != DefaultEventRing {
		t.Fatalf("Recent(huge) returned %d, want %d", n, DefaultEventRing)
	}
}

func TestEventLogHandler(t *testing.T) {
	var l EventLog
	var seen []Event
	l.OnEvent(func(e Event) { seen = append(seen, e) })
	l.Publish(Event{Type: EvCompaction, N: 7})
	l.OnEvent(nil)
	l.Publish(Event{Type: EvCompaction, N: 8})
	if len(seen) != 1 || seen[0].N != 7 {
		t.Fatalf("handler saw %+v", seen)
	}
}

func TestHookDisabledAndEnabled(t *testing.T) {
	var h Hook
	if h.Enabled() {
		t.Fatal("zero Hook reports enabled")
	}
	h.Emit(EvRetrain, 1, "") // must be a no-op, not a panic
	if h.Recorder() != nil {
		t.Fatal("zero Hook returns a recorder")
	}
	m := NewMetrics("idx")
	h.SetRecorder(m)
	if !h.Enabled() {
		t.Fatal("Hook not enabled after SetRecorder")
	}
	h.Emit(EvRetrain, 3, "rebuild")
	if m.Events.Count(EvRetrain) != 1 {
		t.Fatal("emitted event not recorded")
	}
	rec := m.Events.Recent(1)
	if len(rec) != 1 || rec[0].Source != "idx" || rec[0].Detail != "rebuild" || rec[0].N != 3 {
		t.Fatalf("recorded event = %+v", rec)
	}
	h.SetRecorder(nil)
	if h.Enabled() {
		t.Fatal("Hook enabled after detach")
	}
}

func TestMetricsRecordSearchAndSnapshot(t *testing.T) {
	m := NewMetrics("rmi")
	m.RecordSearch(5, 32)
	m.RecordSearch(3, 8)
	m.RecordSearch(-1, -1) // clamped, not panicking
	m.Lookups.Add(3)
	m.Hits.Add(2)
	m.GetNS.Observe(1500)

	s := m.Snapshot()
	if s.Name != "rmi" {
		t.Fatalf("snapshot name %q", s.Name)
	}
	if s.Counters["lookups"] != 3 || s.Counters["hits"] != 2 {
		t.Fatalf("counters %+v", s.Counters)
	}
	if s.Histograms["search_probes"].Count != 3 {
		t.Fatalf("probes count %d", s.Histograms["search_probes"].Count)
	}
	if s.Histograms["search_window"].Max != 32 {
		t.Fatalf("window max %d", s.Histograms["search_window"].Max)
	}
	if s.Histograms["get_ns"].Mean != 1500 {
		t.Fatalf("get_ns mean %g", s.Histograms["get_ns"].Mean)
	}
	// A snapshot must round-trip through JSON (the lixbench -metrics path).
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Counters["lookups"] != 3 {
		t.Fatalf("round-trip lost counters: %+v", back.Counters)
	}
}

// fixedDetector trips after a fixed number of observations.
type fixedDetector struct{ left int }

func (d *fixedDetector) Observe(float64) bool { d.left--; return d.left <= 0 }

func TestDriftLoop(t *testing.T) {
	m := NewMetrics("alex")
	trips := 0
	m.SetDriftDetector(&fixedDetector{left: 3}, func() { trips++ })
	for i := 0; i < 10; i++ {
		m.RecordSearch(4, 100)
	}
	if trips != 1 {
		t.Fatalf("onTrip ran %d times, want 1 (latched)", trips)
	}
	if !m.DriftTripped() {
		t.Fatal("DriftTripped() false after trip")
	}
	if m.Events.Count(EvDriftTrip) != 1 {
		t.Fatalf("EvDriftTrip count %d", m.Events.Count(EvDriftTrip))
	}
	m.SetDriftDetector(&fixedDetector{left: 2}, func() { trips++ })
	m.RecordSearch(4, 100)
	m.RecordSearch(4, 100)
	if trips != 2 || m.Events.Count(EvDriftTrip) != 2 {
		t.Fatalf("second detector: trips=%d events=%d", trips, m.Events.Count(EvDriftTrip))
	}
	m.ReArmDrift()
	if m.DriftTripped() {
		t.Fatal("still tripped after ReArmDrift")
	}
}

func TestPublishExpvar(t *testing.T) {
	m := NewMetrics("expvar-test")
	m.Lookups.Add(9)
	if err := m.PublishExpvar("lix-obs-test"); err != nil {
		t.Fatalf("publish: %v", err)
	}
	if err := m.PublishExpvar("lix-obs-test"); err == nil {
		t.Fatal("duplicate publish did not error")
	}
	v := expvar.Get("lix-obs-test")
	if v == nil {
		t.Fatal("expvar not registered")
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(v.String()), &s); err != nil {
		t.Fatalf("expvar payload not JSON: %v", err)
	}
	if s.Counters["lookups"] != 9 {
		t.Fatalf("expvar snapshot counters %+v", s.Counters)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Load(); got != 1 {
		t.Fatalf("gauge after Inc,Inc,Dec = %d, want 1", got)
	}
	g.Add(-5)
	if got := g.Load(); got != -4 {
		t.Fatalf("gauge after Add(-5) = %d, want -4", got)
	}
	g.Set(7)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge after Set(7) = %d, want 7", got)
	}
	m := NewMetrics("g")
	m.Conns.Inc()
	if s := m.Snapshot(); s.Gauges["conns"] != 1 {
		t.Fatalf("snapshot gauges %+v, want conns=1", s.Gauges)
	}
}

// TestWritePrometheusGolden pins the exposition format byte-for-byte.
func TestWritePrometheusGolden(t *testing.T) {
	m := NewMetrics("t")
	m.Lookups.Add(2)
	m.Hits.Add(1)
	m.GetNS.Observe(1)
	m.GetNS.Observe(3)
	m.FilterProbes.Add(100)
	m.FilterSkips.Add(93)
	m.FilterFPs.Add(2)
	m.LSMRuns.Set(3)
	m.LSMRunBytes.Set(40960)
	m.LSMTombs.Set(5)
	m.FilterBytes.Set(2048)
	m.FilterFPRPpm.Set(7000)
	m.Events.Publish(Event{Type: EvRetrain})

	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	emptyHist := func(name string) string {
		return fmt.Sprintf(`# TYPE %s histogram
%s_bucket{index="t",le="+Inf"} 0
%s_sum{index="t"} 0
%s_count{index="t"} 0
`, name, name, name, name)
	}
	golden := `# TYPE lix_lookups_total counter
lix_lookups_total{index="t"} 2
# TYPE lix_hits_total counter
lix_hits_total{index="t"} 1
# TYPE lix_inserts_total counter
lix_inserts_total{index="t"} 0
# TYPE lix_deletes_total counter
lix_deletes_total{index="t"} 0
# TYPE lix_ranges_total counter
lix_ranges_total{index="t"} 0
# TYPE lix_batches_total counter
lix_batches_total{index="t"} 0
# TYPE lix_requests_total counter
lix_requests_total{index="t"} 0
# TYPE lix_errors_total counter
lix_errors_total{index="t"} 0
# TYPE lix_groups_total counter
lix_groups_total{index="t"} 0
# TYPE lix_page_hits_total counter
lix_page_hits_total{index="t"} 0
# TYPE lix_page_misses_total counter
lix_page_misses_total{index="t"} 0
# TYPE lix_lsm_filter_probes_total counter
lix_lsm_filter_probes_total{index="t"} 100
# TYPE lix_lsm_filter_skips_total counter
lix_lsm_filter_skips_total{index="t"} 93
# TYPE lix_lsm_filter_false_positives_total counter
lix_lsm_filter_false_positives_total{index="t"} 2
# TYPE lix_conns gauge
lix_conns{index="t"} 0
# TYPE lix_lsm_runs gauge
lix_lsm_runs{index="t"} 3
# TYPE lix_lsm_run_bytes gauge
lix_lsm_run_bytes{index="t"} 40960
# TYPE lix_lsm_tombstones gauge
lix_lsm_tombstones{index="t"} 5
# TYPE lix_lbf_filter_bytes gauge
lix_lbf_filter_bytes{index="t"} 2048
# TYPE lix_lbf_filter_fpr_ppm gauge
lix_lbf_filter_fpr_ppm{index="t"} 7000
# TYPE lix_get_ns histogram
lix_get_ns_bucket{index="t",le="0"} 0
lix_get_ns_bucket{index="t",le="1"} 1
lix_get_ns_bucket{index="t",le="3"} 2
lix_get_ns_bucket{index="t",le="+Inf"} 2
lix_get_ns_sum{index="t"} 4
lix_get_ns_count{index="t"} 2
` +
		emptyHist("lix_insert_ns") +
		emptyHist("lix_delete_ns") +
		emptyHist("lix_range_ns") +
		emptyHist("lix_range_len") +
		emptyHist("lix_batch_ns") +
		emptyHist("lix_batch_len") +
		emptyHist("lix_search_probes") +
		emptyHist("lix_search_window") +
		emptyHist("lix_fsync_ns") +
		emptyHist("lix_group_len") +
		emptyHist("lix_decode_ns") +
		emptyHist("lix_dispatch_ns") +
		emptyHist("lix_shard_ns") +
		emptyHist("lix_wal_ns") +
		`# TYPE lix_events_total counter
lix_events_total{index="t",type="retrain"} 1
lix_events_total{index="t",type="node_split"} 0
lix_events_total{index="t",type="buffer_flush"} 0
lix_events_total{index="t",type="buffer_merge"} 0
lix_events_total{index="t",type="compaction"} 0
lix_events_total{index="t",type="rcu_swap"} 0
lix_events_total{index="t",type="drift_trip"} 0
lix_events_total{index="t",type="checkpoint"} 0
lix_events_total{index="t",type="wal_flush"} 0
lix_events_total{index="t",type="recovery"} 0
lix_events_total{index="t",type="drain"} 0
lix_events_total{index="t",type="slow_request"} 0
lix_events_total{index="t",type="page_evict"} 0
lix_events_total{index="t",type="page_flush"} 0
`
	if got := b.String(); got != golden {
		t.Fatalf("prometheus output mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}

func TestWritePrometheusAll(t *testing.T) {
	a, b := NewMetrics("a"), NewMetrics("b")
	var out strings.Builder
	if err := WritePrometheusAll(&out, b, a); err != nil {
		t.Fatalf("WritePrometheusAll: %v", err)
	}
	ai := strings.Index(out.String(), `index="a"`)
	bi := strings.Index(out.String(), `index="b"`)
	if ai == -1 || bi == -1 || ai > bi {
		t.Fatalf("bundles not rendered sorted by name (a@%d b@%d)", ai, bi)
	}
	if err := WritePrometheusAll(&out, a, NewMetrics("a")); err == nil {
		t.Fatal("duplicate names not rejected")
	}
}

func TestEventTypeStrings(t *testing.T) {
	want := []string{"retrain", "node_split", "buffer_flush", "buffer_merge",
		"compaction", "rcu_swap", "drift_trip", "checkpoint", "wal_flush", "recovery",
		"drain", "slow_request", "page_evict", "page_flush"}
	types := EventTypes()
	if len(types) != len(want) {
		t.Fatalf("EventTypes() has %d entries, want %d", len(types), len(want))
	}
	for i, tt := range types {
		if tt.String() != want[i] {
			t.Errorf("EventType(%d).String() = %q, want %q", i, tt.String(), want[i])
		}
	}
	if s := EventType(200).String(); !strings.Contains(s, "200") {
		t.Errorf("unknown event type renders %q", s)
	}
	e := Event{Type: EvNodeSplit, Source: "alex", Detail: "expand", N: 128}
	if got := e.String(); got != "alex/node_split(expand) n=128" {
		t.Errorf("Event.String() = %q", got)
	}
}
