// Package obs is the observability layer of the lix library: low-overhead,
// concurrency-safe primitives that record what a learned index actually
// does under traffic — per-operation latencies, last-mile search probe
// counts and error-window widths, structural maintenance events (retrains,
// node splits, buffer flushes and merges, LSM compactions, RCU root swaps)
// and drift-detector trips.
//
// The design constraints come straight from the paper's cost model
// (predict, then run a bounded last-mile search) and its §6 open
// challenges: the quantities that decide when to retrain, how expensive an
// insert strategy is, and whether concurrency is paying off are all
// per-operation measurements on hot paths, so every primitive here is
// allocation-free on the write path and must cost nothing measurable when
// instrumentation is disabled.
//
//   - Counter is a cache-line-sharded atomic counter: concurrent writers
//     spread across shards instead of bouncing one cache line.
//   - Histogram buckets observations by log₂(value): 65 fixed buckets cover
//     the full uint64 range, so one histogram type serves probe counts
//     (0..64), window widths, result cardinalities and latencies in
//     nanoseconds alike.
//   - EventLog is a typed, bounded event stream with per-type totals.
//   - Metrics bundles the histograms and counters one observed index needs
//     and renders them as a Snapshot, expvar variable, or Prometheus text.
//
// The hot-path hook protocol is the Recorder interface plus the Hook
// holder: an index embeds a Hook (one atomic pointer) and calls
// Hook.Emit / Hook.Recorder on its structural and search paths; when no
// recorder is attached the cost is a single atomic load and branch.
package obs

import (
	"math/bits"
	"sync/atomic"
	"unsafe"
)

// counterShards is the number of cache-line-padded shards per Counter.
// Must be a power of two.
const counterShards = 8

type counterShard struct {
	n atomic.Uint64
	_ [56]byte // pad to a 64-byte cache line
}

// Counter is a sharded atomic counter. The zero value is ready to use.
// Concurrent Add calls from different goroutines usually land on different
// shards (selected by stack address), avoiding the cache-line ping-pong of
// a single atomic word under write-heavy load.
type Counter struct {
	shards [counterShards]counterShard
}

// shardHint derives a cheap goroutine-affine shard index from the address
// of a live stack variable: goroutines have distinct stacks, so concurrent
// writers spread across shards without any runtime support. Bits below the
// page level are dropped because allocations within one frame share them.
func shardHint(p unsafe.Pointer) int {
	return int(uintptr(p)>>12) & (counterShards - 1)
}

// Add adds n to the counter.
func (c *Counter) Add(n uint64) {
	c.shards[shardHint(unsafe.Pointer(&n))].n.Add(n)
}

// Inc adds 1 to the counter.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current total. It is a consistent sum only when no
// writer is concurrently active; under concurrency it is a live snapshot,
// which is the usual contract for monitoring counters.
func (c *Counter) Load() uint64 {
	var total uint64
	for i := range c.shards {
		total += c.shards[i].n.Load()
	}
	return total
}

// Gauge is an atomic up/down level indicator (open connections, in-flight
// groups). The zero value is ready to use. Unlike Counter it is a single
// atomic word: gauges are read as often as written and stay low-frequency,
// so cache-line sharding would only blur the level.
type Gauge struct {
	v atomic.Int64
}

// Inc raises the gauge by 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec lowers the gauge by 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add moves the gauge by n (negative to lower).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the gauge's level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the number of log₂ buckets: bucket i holds observations v
// with bits.Len64(v) == i, i.e. bucket 0 is exactly v==0 and bucket i>=1
// covers [2^(i-1), 2^i). 65 buckets span the whole uint64 range.
const histBuckets = 65

// Histogram is a log₂-bucketed histogram of uint64 observations. The zero
// value is ready to use; Observe is allocation-free and safe for concurrent
// use (one atomic add per bucket plus count/sum).
type Histogram struct {
	count atomic.Uint64
	sum   atomic.Uint64
	max   atomic.Uint64
	bkt   [histBuckets]atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.bkt[bits.Len64(v)].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Snapshot returns a point-in-time copy of the histogram. Under concurrent
// writers the copy is a live snapshot, not an atomic cut.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.bkt {
		s.Buckets[i] = h.bkt[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1); see HistSnapshot.Quantile.
func (h *Histogram) Quantile(q float64) uint64 { return h.Snapshot().Quantile(q) }

// HistSnapshot is a point-in-time copy of a Histogram, suitable for JSON
// encoding and offline quantile estimation.
type HistSnapshot struct {
	Count   uint64              `json:"count"`
	Sum     uint64              `json:"sum"`
	Max     uint64              `json:"max"`
	Buckets [histBuckets]uint64 `json:"buckets"`
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// BucketUpper returns the inclusive upper bound of bucket i.
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Quantile estimates the q-quantile by walking the cumulative bucket
// counts and reporting the matched bucket's upper bound (clamped to the
// observed maximum, which makes the estimate exact for the tail bucket).
// The log₂ bucketing bounds the relative error by 2x, which is the usual
// monitoring trade: cheap enough for a hot path, accurate enough for p50
// vs p99 comparisons.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count-1))
	var cum uint64
	for i := range s.Buckets {
		cum += s.Buckets[i]
		if cum > rank {
			u := BucketUpper(i)
			if u > s.Max {
				u = s.Max
			}
			return u
		}
	}
	return s.Max
}
