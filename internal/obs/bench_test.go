package obs

import (
	"sync/atomic"
	"testing"
)

// The micro-benchmarks quantify the two costs the tentpole cares about:
// the enabled write path (counter add, histogram observe) and the disabled
// hook path (one atomic load + branch), whose measured overhead is
// recorded in DESIGN.md.

func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Load() == 0 {
		b.Fatal("counter lost updates")
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	if c.Load() != uint64(b.N) {
		b.Fatalf("counter holds %d, want %d", c.Load(), b.N)
	}
}

// BenchmarkAtomicAddParallel is the unsharded baseline BenchmarkCounterAddParallel
// is compared against: one atomic word all writers contend on.
func BenchmarkAtomicAddParallel(b *testing.B) {
	var n atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n.Add(1)
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var i uint64
		for pb.Next() {
			i++
			h.Observe(i)
		}
	})
}

// BenchmarkHookEmitDisabled measures the disabled structural-event path:
// the cost an uninstrumented index pays at every would-be event site.
func BenchmarkHookEmitDisabled(b *testing.B) {
	var h Hook
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Emit(EvNodeSplit, i, "")
	}
}

// BenchmarkHookRecorderDisabled measures the disabled per-search check.
func BenchmarkHookRecorderDisabled(b *testing.B) {
	var h Hook
	n := 0
	for i := 0; i < b.N; i++ {
		if r := h.Recorder(); r != nil {
			n++
		}
	}
	if n != 0 {
		b.Fatal("unexpected recorder")
	}
}

func BenchmarkMetricsRecordSearch(b *testing.B) {
	m := NewMetrics("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.RecordSearch(5, 64)
	}
}

func BenchmarkEventPublish(b *testing.B) {
	var l EventLog
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Publish(Event{Type: EvCompaction, N: i})
	}
}
