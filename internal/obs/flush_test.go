package obs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestFlusherTicker exercises the periodic path: with a short interval
// the snapshot file must appear and be rewritten while the process runs
// (the crash-forensics property), and each observed content must be a
// complete render, never a torn prefix.
func TestFlusherTicker(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.prom")
	m := NewMetrics("tick")
	f := NewFlusher(path, 2*time.Millisecond, func(b *bytes.Buffer) error {
		return m.WritePrometheus(b)
	})
	f.Start()
	f.Start() // double Start must be a no-op, not a second goroutine

	deadline := time.Now().Add(5 * time.Second)
	for f.Flushes() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("ticker produced %d flushes in 5s, want >= 3", f.Flushes())
		}
		time.Sleep(time.Millisecond)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("snapshot missing while running: %v", err)
	}
	if !strings.HasPrefix(string(data), "# TYPE lix_lookups_total counter") ||
		!strings.Contains(string(data), `type="slow_request"`) {
		t.Fatalf("snapshot not a complete render:\n%s", data)
	}

	m.Lookups.Add(41)
	if err := f.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatalf("snapshot missing after Stop: %v", err)
	}
	if !strings.Contains(string(data), `lix_lookups_total{index="tick"} 41`) {
		t.Fatalf("final flush stale, missing lookups=41:\n%s", data)
	}
	if err := f.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
	if err := f.LastErr(); err != nil {
		t.Fatalf("LastErr = %v, want nil", err)
	}

	// No ticker goroutine may write after Stop returned.
	after := f.Flushes()
	time.Sleep(20 * time.Millisecond)
	if got := f.Flushes(); got != after {
		t.Fatalf("flushes advanced after Stop: %d -> %d", after, got)
	}
}

// TestFlusherNoInterval pins the legacy behavior: interval 0 means no
// goroutine, no file until Stop, then exactly one write.
func TestFlusherNoInterval(t *testing.T) {
	path := filepath.Join(t.TempDir(), "once.prom")
	m := NewMetrics("once")
	f := NewFlusher(path, 0, func(b *bytes.Buffer) error {
		return m.WritePrometheus(b)
	})
	f.Start()
	time.Sleep(5 * time.Millisecond)
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("file exists before Stop with interval 0 (err=%v)", err)
	}
	if err := f.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("file missing after Stop: %v", err)
	}
	if got := f.Flushes(); got != 1 {
		t.Fatalf("Flushes() = %d, want 1", got)
	}
}

// TestFlusherRenderError propagates renderer failures and leaves no temp
// litter behind.
func TestFlusherRenderError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.prom")
	boom := errors.New("render boom")
	f := NewFlusher(path, 0, func(*bytes.Buffer) error { return boom })
	if err := f.Stop(); !errors.Is(err, boom) {
		t.Fatalf("Stop err = %v, want %v", err, boom)
	}
	if !errors.Is(f.LastErr(), boom) {
		t.Fatalf("LastErr = %v, want %v", f.LastErr(), boom)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("temp litter after failed flush: %v", ents)
	}
}
