package obs

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Metrics bundles the instrumentation one observed index (or a process-wide
// scope such as "all bounded searches") needs: operation counters, latency
// and cardinality histograms, last-mile search histograms, and the typed
// event stream. The zero value is not usable; call NewMetrics.
//
// Metrics implements Recorder, so it can be attached directly to an index
// Hook and to the core search helpers' recorder slot.
type Metrics struct {
	// Name labels snapshots, expvar variables and Prometheus series.
	Name string

	// Operation counters, maintained by the Observe wrappers.
	Lookups Counter // Get calls
	Hits    Counter // Get calls that found the key
	Inserts Counter
	Deletes Counter
	Ranges  Counter

	// Per-operation latency histograms in nanoseconds.
	GetNS    Histogram
	InsertNS Histogram
	DeleteNS Histogram
	RangeNS  Histogram

	// RangeLen is the result-cardinality histogram of Range scans.
	RangeLen Histogram

	// Batches counts batched operations (LookupBatch, InsertBatch,
	// DeleteBatch calls — one increment per batch, not per record; the
	// per-record work also lands in the operation counters above).
	Batches Counter
	// BatchNS is the whole-batch latency histogram in nanoseconds.
	BatchNS Histogram
	// BatchLen is the batch-cardinality histogram (records per batch).
	BatchLen Histogram

	// Probes and Window are the last-mile search histograms: probes per
	// bounded search and error-window width searched.
	Probes Histogram
	Window Histogram

	// FsyncNS is the WAL fsync-latency histogram in nanoseconds, fed by
	// the durable storage layer's group commits.
	FsyncNS Histogram

	// Per-stage request-span histograms in nanoseconds, fed by
	// internal/trace for sampled serving request groups: frame parse
	// time, group dispatch (covers the store calls), in-memory index
	// work, and WAL append. Fsync time appears in FsyncNS above.
	DecodeNS   Histogram
	DispatchNS Histogram
	ShardNS    Histogram
	WalNS      Histogram

	// Buffer-pool traffic from the paged storage tier (internal/page):
	// PageHits/PageMisses count pool lookups served from memory vs disk.
	// Evictions and write-backs are lower-frequency and flow through the
	// event stream (EvPageEvict, EvPageFlush), so they appear under
	// lix_events_total.
	PageHits   Counter
	PageMisses Counter

	// Learned LSM engine instrumentation, maintained by the durable
	// store's LSM engine (internal/store + internal/sst). The counters
	// accumulate per-run learned-filter outcomes (a probe resolves as a
	// skip, a false positive, or a genuine hit inside the run); the gauges
	// describe the current tier state and are refreshed after every
	// memtable flush and compaction. FilterBytes is the summed memory of
	// all per-run learned filters (model + backup); FilterFPRPpm is the
	// measured false-positive rate of the newest run's filter in parts per
	// million (a gauge because FPR is a level, not a flow).
	FilterProbes Counter
	FilterSkips  Counter
	FilterFPs    Counter
	LSMRuns      Gauge
	LSMRunBytes  Gauge
	LSMTombs     Gauge
	FilterBytes  Gauge
	FilterFPRPpm Gauge

	// Serving front-end instrumentation, maintained by internal/serve:
	// Requests counts frames received, Errors counts error replies sent
	// (protocol violations and refused connections included), Groups
	// counts pipelined request groups dispatched, GroupLen is the
	// frames-per-group histogram, and Conns tracks currently open
	// connections.
	Requests Counter
	Errors   Counter
	Groups   Counter
	GroupLen Histogram
	Conns    Gauge

	// Events is the structural event stream.
	Events EventLog

	// Drift closes the §6.3 loop: every recorded search feeds its window
	// width (the correction cost) into the attached detector; a trip
	// publishes EvDriftTrip and latches until ReArmDrift.
	driftMu sync.Mutex
	drift   DriftDetector
	onTrip  func()
	tripped bool
}

// DriftDetector is the detector surface Metrics feeds: both drift.EWMA and
// drift.PageHinkley satisfy it.
type DriftDetector interface {
	// Observe records one cost sample and reports whether drift is
	// signaled.
	Observe(cost float64) bool
}

// NewMetrics returns an empty metrics bundle labeled name.
func NewMetrics(name string) *Metrics {
	return &Metrics{Name: name}
}

// Event implements Recorder: it stamps the bundle's name on unlabeled
// events and publishes to the event stream.
func (m *Metrics) Event(e Event) {
	if e.Source == "" {
		e.Source = m.Name
	}
	m.Events.Publish(e)
}

// RecordPageAccess implements PageRecorder: one buffer-pool lookup, hit
// or miss.
func (m *Metrics) RecordPageAccess(hit bool) {
	if hit {
		m.PageHits.Inc()
	} else {
		m.PageMisses.Inc()
	}
}

// RecordSearch implements Recorder (and, structurally, the core package's
// SearchRecorder): it feeds the probe and window histograms and, when a
// drift detector is attached, the correction-cost stream.
func (m *Metrics) RecordSearch(probes, window int) {
	if probes < 0 {
		probes = 0
	}
	if window < 0 {
		window = 0
	}
	m.Probes.Observe(uint64(probes))
	m.Window.Observe(uint64(window))
	m.feedDrift(float64(window))
}

// SetDriftDetector attaches d to the correction-cost stream: every
// recorded search window is fed to d.Observe; when it signals, an
// EvDriftTrip event is published, onTrip (optional, may be nil) runs
// synchronously, and the feed latches off until ReArmDrift. Passing a nil
// detector detaches.
func (m *Metrics) SetDriftDetector(d DriftDetector, onTrip func()) {
	m.driftMu.Lock()
	m.drift = d
	m.onTrip = onTrip
	m.tripped = false
	m.driftMu.Unlock()
}

// ReArmDrift re-enables the drift feed after a trip (typically after the
// caller retrained the index and Reset the detector).
func (m *Metrics) ReArmDrift() {
	m.driftMu.Lock()
	m.tripped = false
	m.driftMu.Unlock()
}

// DriftTripped reports whether the attached detector has signaled and the
// feed is latched.
func (m *Metrics) DriftTripped() bool {
	m.driftMu.Lock()
	defer m.driftMu.Unlock()
	return m.tripped
}

func (m *Metrics) feedDrift(cost float64) {
	m.driftMu.Lock()
	d, fired := m.drift, false
	if d != nil && !m.tripped && d.Observe(cost) {
		m.tripped = true
		fired = true
	}
	onTrip := m.onTrip
	m.driftMu.Unlock()
	if fired {
		m.Event(Event{Type: EvDriftTrip, N: int(cost)})
		if onTrip != nil {
			onTrip()
		}
	}
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

// HistogramSummary is the exported view of one histogram: totals plus
// quantile estimates.
type HistogramSummary struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
	P999  uint64  `json:"p999"`
	Max   uint64  `json:"max"`

	raw HistSnapshot
}

func summarize(h *Histogram) HistogramSummary {
	s := h.Snapshot()
	return HistogramSummary{
		Count: s.Count,
		Sum:   s.Sum,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
		P999:  s.Quantile(0.999),
		Max:   s.Max,
		raw:   s,
	}
}

// Snapshot is a point-in-time, JSON-encodable view of a Metrics bundle.
type Snapshot struct {
	Name       string                      `json:"name"`
	Counters   map[string]uint64           `json:"counters"`
	Gauges     map[string]int64            `json:"gauges"`
	Histograms map[string]HistogramSummary `json:"histograms"`
	Events     map[string]uint64           `json:"events"`
	Recent     []Event                     `json:"recent_events,omitempty"`
}

// counterNames fixes the rendering order of the counter set.
var counterNames = []string{
	"lookups", "hits", "inserts", "deletes", "ranges", "batches",
	"requests", "errors", "groups", "page_hits", "page_misses",
	"lsm_filter_probes", "lsm_filter_skips", "lsm_filter_false_positives",
}

// histNames fixes the rendering order of the histogram set.
var histNames = []string{
	"get_ns", "insert_ns", "delete_ns", "range_ns",
	"range_len", "batch_ns", "batch_len", "search_probes", "search_window", "fsync_ns",
	"group_len",
	"decode_ns", "dispatch_ns", "shard_ns", "wal_ns",
}

// gaugeNames fixes the rendering order of the gauge set.
var gaugeNames = []string{
	"conns",
	"lsm_runs", "lsm_run_bytes", "lsm_tombstones",
	"lbf_filter_bytes", "lbf_filter_fpr_ppm",
}

func (m *Metrics) counter(name string) *Counter {
	switch name {
	case "lookups":
		return &m.Lookups
	case "hits":
		return &m.Hits
	case "inserts":
		return &m.Inserts
	case "deletes":
		return &m.Deletes
	case "ranges":
		return &m.Ranges
	case "batches":
		return &m.Batches
	case "requests":
		return &m.Requests
	case "errors":
		return &m.Errors
	case "groups":
		return &m.Groups
	case "page_hits":
		return &m.PageHits
	case "page_misses":
		return &m.PageMisses
	case "lsm_filter_probes":
		return &m.FilterProbes
	case "lsm_filter_skips":
		return &m.FilterSkips
	case "lsm_filter_false_positives":
		return &m.FilterFPs
	}
	return nil
}

func (m *Metrics) gauge(name string) *Gauge {
	switch name {
	case "conns":
		return &m.Conns
	case "lsm_runs":
		return &m.LSMRuns
	case "lsm_run_bytes":
		return &m.LSMRunBytes
	case "lsm_tombstones":
		return &m.LSMTombs
	case "lbf_filter_bytes":
		return &m.FilterBytes
	case "lbf_filter_fpr_ppm":
		return &m.FilterFPRPpm
	}
	return nil
}

func (m *Metrics) histogram(name string) *Histogram {
	switch name {
	case "get_ns":
		return &m.GetNS
	case "insert_ns":
		return &m.InsertNS
	case "delete_ns":
		return &m.DeleteNS
	case "range_ns":
		return &m.RangeNS
	case "range_len":
		return &m.RangeLen
	case "batch_ns":
		return &m.BatchNS
	case "batch_len":
		return &m.BatchLen
	case "search_probes":
		return &m.Probes
	case "search_window":
		return &m.Window
	case "fsync_ns":
		return &m.FsyncNS
	case "group_len":
		return &m.GroupLen
	case "decode_ns":
		return &m.DecodeNS
	case "dispatch_ns":
		return &m.DispatchNS
	case "shard_ns":
		return &m.ShardNS
	case "wal_ns":
		return &m.WalNS
	}
	return nil
}

// Snapshot returns a point-in-time view with quantile estimates and the
// most recent events.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Name:       m.Name,
		Counters:   make(map[string]uint64, len(counterNames)),
		Gauges:     make(map[string]int64, len(gaugeNames)),
		Histograms: make(map[string]HistogramSummary, len(histNames)),
		Events:     make(map[string]uint64, int(numEventTypes)),
	}
	for _, n := range counterNames {
		s.Counters[n] = m.counter(n).Load()
	}
	for _, n := range gaugeNames {
		s.Gauges[n] = m.gauge(n).Load()
	}
	for _, n := range histNames {
		s.Histograms[n] = summarize(m.histogram(n))
	}
	for _, t := range EventTypes() {
		s.Events[t.String()] = m.Events.Count(t)
	}
	s.Recent = m.Events.Recent(32)
	return s
}

// PublishExpvar publishes the bundle under the given expvar name; each read
// of the variable takes a fresh snapshot. It returns an error instead of
// panicking when the name is already taken (expvar registration is global
// and permanent).
func (m *Metrics) PublishExpvar(name string) error {
	if expvar.Get(name) != nil {
		return fmt.Errorf("obs: expvar %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() interface{} { return m.Snapshot() }))
	return nil
}

// ---------------------------------------------------------------------------
// Prometheus text rendering (no external dependencies)
// ---------------------------------------------------------------------------

// escapeLabelValue renders s as a quoted Prometheus label value. The
// exposition format defines exactly three escapes inside label values —
// backslash, double quote, and line feed — and every other byte is
// literal. Go's %q is NOT equivalent: it escapes tabs, control bytes and
// non-ASCII runes as \t/\xNN/\uNNNN, sequences the exposition parser
// rejects or misreads, which is why this hand-rolled escaper exists.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return `"` + s + `"`
	}
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// escapeMetricName coerces a bundle-derived metric-name fragment to the
// [a-zA-Z0-9_:] alphabet the exposition format allows in metric names,
// replacing every other byte with '_'.
func escapeMetricName(s string) string {
	ok := func(c byte) bool {
		return c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
	}
	clean := true
	for i := 0; i < len(s); i++ {
		if !ok(s[i]) {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	out := []byte(s)
	for i, c := range out {
		if !ok(c) {
			out[i] = '_'
		}
	}
	return string(out)
}

// WritePrometheus renders the bundle in the Prometheus text exposition
// format: counters as lix_<name>_total, histograms as classic cumulative
// lix_<name>{le=...} series, events as lix_events_total{type=...}. All
// series carry an index="<Name>" label so several bundles can be scraped
// from one endpoint.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	lbl := "index=" + escapeLabelValue(m.Name)
	for _, n := range counterNames {
		en := escapeMetricName(n)
		if _, err := fmt.Fprintf(w, "# TYPE lix_%s_total counter\nlix_%s_total{%s} %d\n",
			en, en, lbl, m.counter(n).Load()); err != nil {
			return err
		}
	}
	for _, n := range gaugeNames {
		en := escapeMetricName(n)
		if _, err := fmt.Fprintf(w, "# TYPE lix_%s gauge\nlix_%s{%s} %d\n",
			en, en, lbl, m.gauge(n).Load()); err != nil {
			return err
		}
	}
	for _, n := range histNames {
		if err := writePromHistogram(w, "lix_"+escapeMetricName(n), lbl, m.histogram(n).Snapshot()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE lix_events_total counter\n"); err != nil {
		return err
	}
	for _, t := range EventTypes() {
		if _, err := fmt.Fprintf(w, "lix_events_total{%s,type=%s} %d\n",
			lbl, escapeLabelValue(t.String()), m.Events.Count(t)); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one histogram as cumulative le-buckets. Empty
// trailing buckets are elided; the mandatory le="+Inf" bucket always
// closes the series.
func writePromHistogram(w io.Writer, name, lbl string, s HistSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	// Highest non-empty bucket bounds the emitted series.
	top := -1
	for i := range s.Buckets {
		if s.Buckets[i] > 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += s.Buckets[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=\"%d\"} %d\n",
			name, lbl, BucketUpper(i), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, lbl, s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum{%s} %d\n%s_count{%s} %d\n",
		name, lbl, s.Sum, name, lbl, s.Count); err != nil {
		return err
	}
	return nil
}

// WritePrometheusAll renders several bundles to one writer, sorted by
// bundle name, deduplicating by name (last registration wins is avoided by
// requiring unique names — duplicates return an error).
func WritePrometheusAll(w io.Writer, ms ...*Metrics) error {
	sorted := append([]*Metrics(nil), ms...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for i, m := range sorted {
		if i > 0 && sorted[i-1].Name == m.Name {
			return fmt.Errorf("obs: duplicate metrics name %q", m.Name)
		}
		if err := m.WritePrometheus(w); err != nil {
			return err
		}
	}
	return nil
}
