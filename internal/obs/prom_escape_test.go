package obs

import (
	"fmt"
	"strings"
	"testing"
)

// TestEscapeLabelValue pins the exposition-format label escaping rules:
// exactly backslash, double quote and line feed are escaped; every other
// byte — tabs, control bytes, UTF-8 — passes through literally (where
// Go's %q would mangle them into \t/\xNN/\uNNNN sequences the Prometheus
// parser rejects).
func TestEscapeLabelValue(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{``, `""`},
		{`plain`, `"plain"`},
		{`has"quote`, `"has\"quote"`},
		{`back\slash`, `"back\\slash"`},
		{"new\nline", `"new\nline"`},
		{`\"`, `"\\\""`},
		{"a\tb", "\"a\tb\""},       // tab stays literal
		{"µs", `"µs"`},             // UTF-8 stays literal
		{"\x01", "\"\x01\""},       // control bytes stay literal
		{"x\\\n\"y", `"x\\\n\"y"`}, // all three escapes adjacent
		{`C:\dir\file`, `"C:\\dir\\file"`},
	}
	for _, c := range cases {
		if got := escapeLabelValue(c.in); got != c.want {
			t.Errorf("escapeLabelValue(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestEscapeMetricName(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"get_ns", "get_ns"},
		{"a:b_C9", "a:b_C9"},
		{"weird name", "weird_name"},
		{"ns/op", "ns_op"},
		{"quote\"back\\nl\n", "quote_back_nl_"},
	}
	for _, c := range cases {
		if got := escapeMetricName(c.in); got != c.want {
			t.Errorf("escapeMetricName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestWritePrometheusEscaping feeds bundle names containing every
// character the format treats specially through the full renderers and
// checks each emitted line is valid exposition format: the index label
// must round-trip as an escaped value, and no raw newline may survive
// inside a label value.
func TestWritePrometheusEscaping(t *testing.T) {
	cases := []struct {
		name     string
		wantOnce string
	}{
		{`idx"quoted`, `index="idx\"quoted"`},
		{`idx\back`, `index="idx\\back"`},
		{"idx\nline", `index="idx\nline"`},
		{"idx\"\\\n", `index="idx\"\\\n"`},
	}
	for _, c := range cases {
		m := NewMetrics(c.name)
		m.Lookups.Inc()
		m.GetNS.Observe(7)
		m.Events.Publish(Event{Type: EvRetrain})
		var b strings.Builder
		if err := m.WritePrometheus(&b); err != nil {
			t.Fatalf("WritePrometheus(%q): %v", c.name, err)
		}
		out := b.String()
		if !strings.Contains(out, c.wantOnce) {
			t.Errorf("output for %q missing escaped label %s", c.name, c.wantOnce)
		}
		for i, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
			if err := checkExpositionLine(line); err != nil {
				t.Errorf("bundle %q line %d %q: %v", c.name, i+1, line, err)
			}
		}
	}
}

// checkExpositionLine is a strict syntax check for one line of the text
// exposition format: comment lines pass through; sample lines must be
// name{labels} value with a [a-zA-Z_:][a-zA-Z0-9_:]* metric name and
// properly quoted/escaped label values.
func checkExpositionLine(line string) error {
	if strings.HasPrefix(line, "#") {
		return nil
	}
	brace := strings.IndexByte(line, '{')
	if brace <= 0 {
		return errf("no label block in %q", line)
	}
	name := line[:brace]
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return errf("bad metric name byte %q", c)
		}
	}
	rest := line[brace+1:]
	// Walk label pairs: name="value" with \\ \" \n escapes, separated by
	// commas, closed by }, then a space and the sample value.
	for {
		eq := strings.IndexByte(rest, '=')
		if eq < 1 || len(rest) < eq+2 || rest[eq+1] != '"' {
			return errf("bad label pair start in %q", rest)
		}
		i := eq + 2
		for {
			if i >= len(rest) {
				return errf("unterminated label value in %q", rest)
			}
			if rest[i] == '\n' {
				return errf("raw newline in label value")
			}
			if rest[i] == '\\' {
				if i+1 >= len(rest) || !strings.ContainsRune(`\"n`, rune(rest[i+1])) {
					return errf("invalid escape in %q", rest)
				}
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		i++ // past closing quote
		if i < len(rest) && rest[i] == ',' {
			rest = rest[i+1:]
			continue
		}
		if i < len(rest) && rest[i] == '}' {
			tail := rest[i+1:]
			if !strings.HasPrefix(tail, " ") || len(strings.TrimSpace(tail)) == 0 {
				return errf("missing sample value after %q", rest)
			}
			return nil
		}
		return errf("expected , or } after label value in %q", rest)
	}
}

func errf(format string, args ...interface{}) error {
	return fmt.Errorf("exposition: "+format, args...)
}
