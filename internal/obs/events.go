package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// EventType classifies the structural maintenance events a learned index
// emits. The set mirrors the maintenance vocabulary of the surveyed
// systems: model retrains (XIndex, LISA), node splits and other structure
// modification operations (ALEX, LIPP, B+-tree), delta-buffer flushes and
// merges (FITing-tree, dynamic PGM), LSM compactions (Bourbon), RCU root
// swaps (XIndex), drift-detector trips (§6.3 retraining triggers), the
// serving lifecycle (durable checkpoints/flushes/recovery, front-end
// drains), and buffer-pool page traffic (CLOCK evictions, dirty
// write-backs) from the paged storage tier.
type EventType uint8

// Event types.
const (
	EvRetrain EventType = iota
	EvNodeSplit
	EvBufferFlush
	EvBufferMerge
	EvCompaction
	EvRCUSwap
	EvDriftTrip
	EvCheckpoint
	EvWALFlush
	EvRecovery
	EvDrain
	EvSlowRequest
	EvPageEvict
	EvPageFlush
	numEventTypes
)

// String returns the stable snake_case name used in snapshots and
// Prometheus labels.
func (t EventType) String() string {
	switch t {
	case EvRetrain:
		return "retrain"
	case EvNodeSplit:
		return "node_split"
	case EvBufferFlush:
		return "buffer_flush"
	case EvBufferMerge:
		return "buffer_merge"
	case EvCompaction:
		return "compaction"
	case EvRCUSwap:
		return "rcu_swap"
	case EvDriftTrip:
		return "drift_trip"
	case EvCheckpoint:
		return "checkpoint"
	case EvWALFlush:
		return "wal_flush"
	case EvRecovery:
		return "recovery"
	case EvDrain:
		return "drain"
	case EvSlowRequest:
		return "slow_request"
	case EvPageEvict:
		return "page_evict"
	case EvPageFlush:
		return "page_flush"
	default:
		return fmt.Sprintf("event_%d", uint8(t))
	}
}

// EventTypes lists all event types in declaration order.
func EventTypes() []EventType {
	out := make([]EventType, numEventTypes)
	for i := range out {
		out[i] = EventType(i)
	}
	return out
}

// Event is one structural maintenance event.
type Event struct {
	// Seq is a per-log sequence number assigned at publish time.
	Seq uint64 `json:"seq"`
	// Type classifies the event.
	Type EventType `json:"-"`
	// TypeName is Type.String(), duplicated for JSON consumers.
	TypeName string `json:"type"`
	// Source names the emitting index or component.
	Source string `json:"source,omitempty"`
	// Detail is an event-specific free-form qualifier ("split", "expand",
	// "slot=2", ...).
	Detail string `json:"detail,omitempty"`
	// N is an event-specific magnitude: records merged, node size, probes.
	N int `json:"n,omitempty"`
}

func (e Event) String() string {
	s := e.Type.String()
	if e.Source != "" {
		s = e.Source + "/" + s
	}
	if e.Detail != "" {
		s += "(" + e.Detail + ")"
	}
	if e.N != 0 {
		s += fmt.Sprintf(" n=%d", e.N)
	}
	return s
}

// DefaultEventRing is the event ring capacity when none is configured.
const DefaultEventRing = 256

// EventLog is a bounded typed event stream: it keeps per-type totals
// (always) and the most recent events in a fixed-size ring. The zero value
// is ready to use with the default ring capacity. Publish is safe for
// concurrent use.
type EventLog struct {
	mu   sync.Mutex
	ring []Event
	next uint64 // total events published == next sequence number

	counts  [numEventTypes]atomic.Uint64
	handler atomic.Pointer[handlerBox]
}

type handlerBox struct{ fn func(Event) }

// Publish appends e to the log, assigning its sequence number. The
// registered handler, if any, runs synchronously on the publishing
// goroutine after the event is recorded.
func (l *EventLog) Publish(e Event) {
	if int(e.Type) < int(numEventTypes) {
		l.counts[e.Type].Add(1)
	}
	e.TypeName = e.Type.String()
	l.mu.Lock()
	if l.ring == nil {
		l.ring = make([]Event, DefaultEventRing)
	}
	e.Seq = l.next
	l.ring[l.next%uint64(len(l.ring))] = e
	l.next++
	l.mu.Unlock()
	if h := l.handler.Load(); h != nil {
		h.fn(e)
	}
}

// OnEvent registers fn to run synchronously after every publish (nil
// unregisters). One handler is supported; the latest registration wins.
func (l *EventLog) OnEvent(fn func(Event)) {
	if fn == nil {
		l.handler.Store(nil)
		return
	}
	l.handler.Store(&handlerBox{fn: fn})
}

// Count returns the number of events of type t published so far.
func (l *EventLog) Count(t EventType) uint64 {
	if int(t) >= int(numEventTypes) {
		return 0
	}
	return l.counts[t].Load()
}

// Total returns the number of events published so far.
func (l *EventLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Recent returns up to n of the most recent events, oldest first.
func (l *EventLog) Recent(n int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ring == nil || n <= 0 {
		return nil
	}
	have := l.next
	if have > uint64(len(l.ring)) {
		have = uint64(len(l.ring))
	}
	if uint64(n) > have {
		n = int(have)
	}
	out := make([]Event, 0, n)
	for i := l.next - uint64(n); i < l.next; i++ {
		out = append(out, l.ring[i%uint64(len(l.ring))])
	}
	return out
}

// ---------------------------------------------------------------------------
// Hot-path hook
// ---------------------------------------------------------------------------

// Recorder is the instrumentation surface an index attaches to: structural
// events plus per-search measurements. *Metrics implements it.
type Recorder interface {
	// Event receives one structural event (Seq/Source may be blank; the
	// implementation fills them).
	Event(e Event)
	// RecordSearch receives one last-mile search: the number of probes
	// (key comparisons or node hops) and the width of the error window
	// searched (0 when the structure is search-free, e.g. LIPP).
	RecordSearch(probes, window int)
}

// PageRecorder is the optional Recorder extension buffer pools feed:
// per-access hit/miss counts, too frequent for the event stream. *Metrics
// implements it.
type PageRecorder interface {
	// RecordPageAccess receives one pool lookup: hit (served from a
	// resident frame) or miss (read from disk).
	RecordPageAccess(hit bool)
}

type recorderBox struct{ r Recorder }

// Hook is the embeddable, concurrency-safe recorder holder used by index
// implementations. Its disabled path — no recorder attached — costs a
// single atomic pointer load and branch, which is what keeps
// instrumentation affordable inside Get/Insert hot loops. The zero value
// is ready to use (disabled).
type Hook struct {
	p atomic.Pointer[recorderBox]
}

// SetRecorder attaches r (nil detaches).
func (h *Hook) SetRecorder(r Recorder) {
	if r == nil {
		h.p.Store(nil)
		return
	}
	h.p.Store(&recorderBox{r: r})
}

// Recorder returns the attached recorder, or nil when disabled.
func (h *Hook) Recorder() Recorder {
	if b := h.p.Load(); b != nil {
		return b.r
	}
	return nil
}

// Enabled reports whether a recorder is attached.
func (h *Hook) Enabled() bool { return h.p.Load() != nil }

// Emit publishes a structural event to the attached recorder, if any.
func (h *Hook) Emit(t EventType, n int, detail string) {
	if b := h.p.Load(); b != nil {
		b.r.Event(Event{Type: t, N: n, Detail: detail})
	}
}
