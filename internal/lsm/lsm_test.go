package lsm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

func TestPutGetAcrossFlushes(t *testing.T) {
	db := New(Config{MemtableCap: 256, L0Runs: 3})
	const n = 20000
	r := rand.New(rand.NewSource(1))
	perm := r.Perm(n)
	for _, i := range perm {
		db.Put(core.Key(i*3), core.Value(i))
	}
	if db.Len() != n {
		t.Fatalf("len = %d", db.Len())
	}
	if db.Flushes == 0 || db.Compactions == 0 {
		t.Fatalf("expected flushes (%d) and compactions (%d)", db.Flushes, db.Compactions)
	}
	for i := 0; i < n; i++ {
		v, ok := db.Get(core.Key(i * 3))
		if !ok || v != core.Value(i) {
			t.Fatalf("Get(%d) = %d,%v", i*3, v, ok)
		}
		if _, ok := db.Get(core.Key(i*3 + 1)); ok {
			t.Fatal("phantom")
		}
	}
	// Level structure: L0 below trigger, deeper levels geometric.
	runs := db.Runs()
	if runs[0] >= db.cfg.L0Runs {
		t.Fatalf("level 0 over trigger: %v", runs)
	}
}

func TestOverwriteNewestWins(t *testing.T) {
	db := New(Config{MemtableCap: 64, L0Runs: 2})
	for round := 0; round < 5; round++ {
		for i := 0; i < 500; i++ {
			db.Put(core.Key(i), core.Value(round*1000+i))
		}
	}
	if db.Len() != 500 {
		t.Fatalf("len = %d", db.Len())
	}
	for i := 0; i < 500; i++ {
		v, ok := db.Get(core.Key(i))
		if !ok || v != core.Value(4000+i) {
			t.Fatalf("Get(%d) = %d,%v want %d", i, v, ok, 4000+i)
		}
	}
}

func TestDeleteTombstones(t *testing.T) {
	db := New(Config{MemtableCap: 128, L0Runs: 2})
	const n = 5000
	for i := 0; i < n; i++ {
		db.Put(core.Key(i), core.Value(i))
	}
	for i := 0; i < n; i += 2 {
		if !db.Delete(core.Key(i)) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if db.Delete(0) {
		t.Fatal("double delete")
	}
	if db.Delete(core.Key(9 * n)) {
		t.Fatal("deleted absent key")
	}
	if db.Len() != n/2 {
		t.Fatalf("len = %d", db.Len())
	}
	for i := 0; i < n; i++ {
		_, ok := db.Get(core.Key(i))
		if ok != (i%2 == 1) {
			t.Fatalf("Get(%d) = %v", i, ok)
		}
	}
	// Re-insert deleted keys.
	for i := 0; i < n; i += 2 {
		db.Put(core.Key(i), core.Value(i+5))
	}
	if db.Len() != n {
		t.Fatalf("len after reinsert = %d", db.Len())
	}
	if v, _ := db.Get(0); v != 5 {
		t.Fatal("reinserted value wrong")
	}
}

func TestRangeMergedView(t *testing.T) {
	db := New(Config{MemtableCap: 100, L0Runs: 3})
	keys, _ := dataset.Keys(dataset.Clustered, 8000, 2)
	for i, k := range keys {
		db.Put(k, dataset.PayloadFor(k))
		if i%7 == 0 {
			db.Delete(k)
		}
	}
	// Expected live set.
	live := map[core.Key]bool{}
	for i, k := range keys {
		live[k] = i%7 != 0
	}
	var prev core.Key
	first := true
	count := db.Range(0, ^core.Key(0), func(k core.Key, v core.Value) bool {
		if !first && k <= prev {
			t.Fatalf("range out of order: %d after %d", k, prev)
		}
		prev, first = k, false
		if !live[k] {
			t.Fatalf("deleted key %d in range", k)
		}
		if v != dataset.PayloadFor(k) {
			t.Fatalf("wrong value for %d", k)
		}
		return true
	})
	want := 0
	for _, ok := range live {
		if ok {
			want++
		}
	}
	if count != want {
		t.Fatalf("range = %d, want %d", count, want)
	}
	// Bounded range with early stop.
	n := 0
	db.Range(keys[100], keys[500], func(core.Key, core.Value) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop = %d", n)
	}
}

func TestMatchesMapProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(3))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := New(Config{MemtableCap: 32, L0Runs: 2, LevelRatio: 4})
		ref := map[core.Key]core.Value{}
		for op := 0; op < 3000; op++ {
			k := core.Key(r.Intn(800))
			switch r.Intn(4) {
			case 0, 1:
				v := core.Value(r.Uint64())
				db.Put(k, v)
				ref[k] = v
			case 2:
				got := db.Delete(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			case 3:
				v, ok := db.Get(k)
				wv, wok := ref[k]
				if ok != wok || (ok && v != wv) {
					return false
				}
			}
			if db.Len() != len(ref) {
				return false
			}
		}
		seen := 0
		okAll := true
		db.Range(0, ^core.Key(0), func(k core.Key, v core.Value) bool {
			wv, wok := ref[k]
			if !wok || wv != v {
				okAll = false
				return false
			}
			seen++
			return true
		})
		return okAll && seen == len(ref)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestModelStatsAndFlushEmpty(t *testing.T) {
	db := New(Config{})
	db.Flush() // no-op on empty memtable
	if db.Flushes != 0 {
		t.Fatal("empty flush counted")
	}
	keys, _ := dataset.Keys(dataset.Lognormal, 20000, 4)
	for _, k := range keys {
		db.Put(k, 1)
	}
	db.Flush()
	runs, segs, modelBytes := db.ModelStats()
	if runs == 0 || segs == 0 || modelBytes == 0 {
		t.Fatalf("model stats = %d,%d,%d", runs, segs, modelBytes)
	}
	st := db.Stats()
	if st.Count != 20000 || st.IndexBytes != modelBytes || st.Height < 2 {
		t.Fatalf("stats = %+v", st)
	}
}
