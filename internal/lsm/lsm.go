// Package lsm implements a BOURBON-style learned LSM-tree (Dai et al.,
// "From WiscKey to Bourbon: A Learned Index for Log-Structured Merge
// Trees", OSDI 2020): a log-structured merge tree whose immutable sorted
// runs carry *learned* (RadixSpline) indexes instead of block indexes —
// Bourbon likewise fits greedy piecewise-linear models per run. Writes go to
// a skip-list memtable; flushes create level-0 runs; leveled compaction
// merges runs downward with geometrically growing level budgets; deletes
// write tombstones that are dropped at the bottom level.
//
// Taxonomy: mutable / hybrid (LSM-tree branch) / delta-buffer — the
// memtable and upper levels are the delta, the learned models index the
// immutable runs, which is exactly the property Bourbon exploits (models
// are only built over data that never changes in place).
package lsm

import (
	"fmt"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
	"github.com/lix-go/lix/internal/radixspline"
	"github.com/lix-go/lix/internal/skiplist"
)

// Config parameterizes the tree.
type Config struct {
	// MemtableCap is the number of entries that triggers a flush (0 -> 4096).
	MemtableCap int
	// L0Runs is the number of level-0 runs that triggers compaction (0 -> 4).
	L0Runs int
	// LevelRatio is the size ratio between adjacent levels (0 -> 10).
	LevelRatio int
	// Epsilon is the learned-index error bound for run models (0 selects
	// the RadixSpline default).
	Epsilon int
	// DisableLearnedIndex replaces the per-run learned indexes with plain
	// binary search — the baseline ("WiscKey") side of the Bourbon
	// comparison, used by the E18 ablation.
	DisableLearnedIndex bool
}

func (c *Config) fill() {
	if c.MemtableCap <= 0 {
		c.MemtableCap = 4096
	}
	if c.L0Runs <= 0 {
		c.L0Runs = 4
	}
	if c.LevelRatio <= 0 {
		c.LevelRatio = 10
	}
}

// tombstone is encoded in a parallel slice; runs never store it in Value.
// The per-run learned index is a RadixSpline, matching Bourbon's choice of
// a flat greedy piecewise-linear model over each immutable run.
type run struct {
	recs []core.KV
	dead []bool
	ix   *radixspline.Index // nil when learned indexes are disabled
	eps  int
}

func newRun(recs []core.KV, dead []bool, eps int, learned bool) *run {
	r := &run{recs: recs, dead: dead, eps: eps}
	if learned {
		ix, err := radixspline.Build(recs, eps, 0)
		if err != nil {
			// recs are sorted by construction.
			panic(err)
		}
		r.ix = ix
	}
	return r
}

// lowerBound locates the first record with key >= k, through the learned
// index when present, by binary search otherwise.
func (r *run) lowerBound(k core.Key) int {
	if r.ix != nil {
		return r.ix.LowerBound(k)
	}
	return core.LowerBoundKV(r.recs, k)
}

// get returns (value, isTombstone, found).
func (r *run) get(k core.Key) (core.Value, bool, bool) {
	i := r.lowerBound(k)
	if i < len(r.recs) && r.recs[i].Key == k {
		return r.recs[i].Value, r.dead[i], true
	}
	return 0, false, false
}

// DB is a learned LSM-tree. The zero value is not usable; call New.
type DB struct {
	cfg Config
	mem *skiplist.List
	// memDead tracks tombstones in the memtable (skiplist stores values).
	memDead map[core.Key]bool
	// levels[0] is a list of possibly-overlapping runs, newest first;
	// levels[i>0] hold exactly one run (or none).
	l0      []*run
	deep    []*run // deep[i] is level i+1; nil slots allowed
	liveCnt int
	// Flushes and Compactions count maintenance events (diagnostics).
	Flushes     int
	Compactions int

	hook obs.Hook
}

// SetObserver installs r to receive structural events (memtable flushes as
// EvBufferFlush, L0 and cascading compactions as EvCompaction with the
// target level in the detail); nil detaches.
func (db *DB) SetObserver(r obs.Recorder) { db.hook.SetRecorder(r) }

// New returns an empty learned LSM-tree.
func New(cfg Config) *DB {
	cfg.fill()
	return &DB{cfg: cfg, mem: skiplist.New(1), memDead: map[core.Key]bool{}}
}

// Len returns the number of live records.
func (db *DB) Len() int { return db.liveCnt }

// Put upserts (k, v).
func (db *DB) Put(k core.Key, v core.Value) {
	wasLive := db.live(k)
	db.mem.Insert(k, v)
	delete(db.memDead, k)
	if !wasLive {
		db.liveCnt++
	}
	db.maybeFlush()
}

// Delete removes k, returning true if it was live.
func (db *DB) Delete(k core.Key) bool {
	if !db.live(k) {
		return false
	}
	db.mem.Insert(k, 0)
	db.memDead[k] = true
	db.liveCnt--
	db.maybeFlush()
	return true
}

// live reports whether k currently resolves to a live record.
func (db *DB) live(k core.Key) bool {
	_, ok := db.Get(k)
	return ok
}

// Get returns the live value for k.
func (db *DB) Get(k core.Key) (core.Value, bool) {
	if v, ok := db.mem.Get(k); ok {
		if db.memDead[k] {
			return 0, false
		}
		return v, true
	}
	for _, r := range db.l0 {
		if v, dead, ok := r.get(k); ok {
			if dead {
				return 0, false
			}
			return v, true
		}
	}
	for _, r := range db.deep {
		if r == nil {
			continue
		}
		if v, dead, ok := r.get(k); ok {
			if dead {
				return 0, false
			}
			return v, true
		}
	}
	return 0, false
}

func (db *DB) maybeFlush() {
	if db.mem.Len() < db.cfg.MemtableCap {
		return
	}
	db.Flush()
}

// Flush persists the memtable as a new level-0 run and compacts if level 0
// is full. Exported so tests and benchmarks can force a stable state.
func (db *DB) Flush() {
	if db.mem.Len() == 0 {
		return
	}
	recs := make([]core.KV, 0, db.mem.Len())
	dead := make([]bool, 0, db.mem.Len())
	db.mem.Range(0, ^core.Key(0), func(k core.Key, v core.Value) bool {
		recs = append(recs, core.KV{Key: k, Value: v})
		dead = append(dead, db.memDead[k])
		return true
	})
	db.l0 = append([]*run{newRun(recs, dead, db.cfg.Epsilon, !db.cfg.DisableLearnedIndex)}, db.l0...)
	db.mem = skiplist.New(1)
	db.memDead = map[core.Key]bool{}
	db.Flushes++
	db.hook.Emit(obs.EvBufferFlush, len(recs), "memtable")
	if len(db.l0) >= db.cfg.L0Runs {
		db.compactL0()
	}
}

// compactL0 merges all level-0 runs into level 1, cascading downward while
// levels exceed their budgets.
func (db *DB) compactL0() {
	runs := append([]*run(nil), db.l0...) // newest first
	if len(db.deep) > 0 && db.deep[0] != nil {
		runs = append(runs, db.deep[0])
	}
	bottom := db.isBottom(0)
	merged := mergeRuns(runs, bottom)
	if len(db.deep) == 0 {
		db.deep = append(db.deep, nil)
	}
	db.deep[0] = merged
	db.l0 = nil
	db.Compactions++
	db.hook.Emit(obs.EvCompaction, len(merged.recs), "l0->l1")
	db.cascade()
}

// cascade pushes oversized deep levels downward.
func (db *DB) cascade() {
	budget := db.cfg.MemtableCap * db.cfg.L0Runs
	for i := 0; i < len(db.deep); i++ {
		budget *= db.cfg.LevelRatio
		r := db.deep[i]
		if r == nil || len(r.recs) <= budget {
			continue
		}
		// Merge level i+1 into level i+2.
		runs := []*run{r}
		if i+1 < len(db.deep) && db.deep[i+1] != nil {
			runs = append(runs, db.deep[i+1])
		}
		bottom := db.isBottom(i + 1)
		merged := mergeRuns(runs, bottom)
		if i+1 >= len(db.deep) {
			db.deep = append(db.deep, nil)
		}
		db.deep[i+1] = merged
		db.deep[i] = nil
		db.Compactions++
		db.hook.Emit(obs.EvCompaction, len(merged.recs), fmt.Sprintf("l%d->l%d", i+1, i+2))
	}
}

// isBottom reports whether no occupied level exists below deep index i.
func (db *DB) isBottom(i int) bool {
	for j := i + 1; j < len(db.deep); j++ {
		if db.deep[j] != nil {
			return false
		}
	}
	return true
}

// mergeRuns merges runs (newest first) into a single run; newer records
// shadow older ones; tombstones are dropped when dropDead.
func mergeRuns(runs []*run, dropDead bool) *run {
	type cursor struct {
		r   *run
		pos int
	}
	cs := make([]cursor, len(runs))
	total := 0
	for i, r := range runs {
		cs[i] = cursor{r: r}
		total += len(r.recs)
	}
	recs := make([]core.KV, 0, total)
	dead := make([]bool, 0, total)
	for {
		best := -1
		var bk core.Key
		for i := range cs {
			if cs[i].pos >= len(cs[i].r.recs) {
				continue
			}
			k := cs[i].r.recs[cs[i].pos].Key
			if best == -1 || k < bk {
				best, bk = i, k
			}
		}
		if best == -1 {
			break
		}
		rec := cs[best].r.recs[cs[best].pos]
		isDead := cs[best].r.dead[cs[best].pos]
		for i := range cs {
			for cs[i].pos < len(cs[i].r.recs) && cs[i].r.recs[cs[i].pos].Key == bk {
				cs[i].pos++
			}
		}
		if isDead && dropDead {
			continue
		}
		recs = append(recs, rec)
		dead = append(dead, isDead)
	}
	eps, learned := 0, true
	if len(runs) > 0 {
		eps = runs[0].eps
		learned = runs[0].ix != nil
	}
	return newRun(recs, dead, eps, learned)
}

// Range calls fn for live records with lo <= key <= hi ascending; fn
// returning false stops. Returns records visited.
func (db *DB) Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	// Sources: memtable (materialized slice) + every run.
	type src struct {
		recs []core.KV
		dead []bool
		pos  int
	}
	var srcs []src
	var memRecs []core.KV
	var memDead []bool
	db.mem.Range(lo, hi, func(k core.Key, v core.Value) bool {
		memRecs = append(memRecs, core.KV{Key: k, Value: v})
		memDead = append(memDead, db.memDead[k])
		return true
	})
	srcs = append(srcs, src{recs: memRecs, dead: memDead})
	addRun := func(r *run) {
		start := r.lowerBound(lo)
		end := start
		for end < len(r.recs) && r.recs[end].Key <= hi {
			end++
		}
		srcs = append(srcs, src{recs: r.recs[start:end], dead: r.dead[start:end]})
	}
	for _, r := range db.l0 {
		addRun(r)
	}
	for _, r := range db.deep {
		if r != nil {
			addRun(r)
		}
	}
	count := 0
	for {
		best := -1
		var bk core.Key
		for i := range srcs {
			if srcs[i].pos >= len(srcs[i].recs) {
				continue
			}
			k := srcs[i].recs[srcs[i].pos].Key
			if best == -1 || k < bk {
				best, bk = i, k
			}
		}
		if best == -1 {
			break
		}
		rec := srcs[best].recs[srcs[best].pos]
		isDead := srcs[best].dead[srcs[best].pos]
		for i := range srcs {
			for srcs[i].pos < len(srcs[i].recs) && srcs[i].recs[srcs[i].pos].Key == bk {
				srcs[i].pos++
			}
		}
		if isDead {
			continue
		}
		count++
		if !fn(rec.Key, rec.Value) {
			break
		}
	}
	return count
}

// Runs returns the number of runs per level (level 0 first), diagnostics.
func (db *DB) Runs() []int {
	out := []int{len(db.l0)}
	for _, r := range db.deep {
		if r == nil {
			out = append(out, 0)
		} else {
			out = append(out, 1)
		}
	}
	return out
}

// ModelStats summarizes the learned-index footprint across runs — the
// Bourbon trade: model bytes replace block-index bytes.
func (db *DB) ModelStats() (runs, segments, modelBytes int) {
	visit := func(r *run) {
		runs++
		if r.ix != nil {
			st := r.ix.Stats()
			segments += st.Models
			modelBytes += st.IndexBytes
		}
	}
	for _, r := range db.l0 {
		visit(r)
	}
	for _, r := range db.deep {
		if r != nil {
			visit(r)
		}
	}
	return runs, segments, modelBytes
}

// Stats reports structure statistics.
func (db *DB) Stats() core.Stats {
	_, segs, modelBytes := db.ModelStats()
	var dataRecs int
	for _, r := range db.l0 {
		dataRecs += len(r.recs)
	}
	for _, r := range db.deep {
		if r != nil {
			dataRecs += len(r.recs)
		}
	}
	return core.Stats{
		Name:       "learned-lsm",
		Count:      db.liveCnt,
		IndexBytes: modelBytes,
		DataBytes:  dataRecs*17 + db.mem.Len()*16,
		Height:     1 + len(db.deep),
		Models:     segs,
	}
}
