// Package histtree implements the Hist-Tree (Crotty, CIDR 2021: "Hist-Tree:
// Those Who Ignore It Are Doomed to Learn"): an immutable index that
// recursively partitions the key *space* into equal-width bins with record
// counts, descending until a bin holds at most a threshold of records. It
// needs no trained model at all — the histogram counts play the role the
// CDF model plays in learned indexes — which makes it the strongest
// "you may not need to learn" baseline in the immutable/pure branch.
package histtree

import (
	"fmt"

	"github.com/lix-go/lix/internal/core"
)

// DefaultFanout is the default number of bins per node (must be a power of
// two).
const DefaultFanout = 16

// DefaultLeafSize is the default maximum records a terminal bin may hold.
const DefaultLeafSize = 32

// Index is an immutable Hist-Tree over a sorted record array.
type Index struct {
	recs     []core.KV
	keys     []core.Key
	fanout   int
	leafSize int
	root     *node
	n        int
	nodes    int
}

type node struct {
	loKey    core.Key // inclusive key-space lower bound
	width    uint64   // bin width (key-space units per bin)
	start    int      // position range [start, end) covered
	end      int
	children []*node // nil for terminal; children[i] may be nil (empty bin)
	starts   []int   // per-bin start positions (len fanout+1), terminal nodes too
}

// Build constructs a Hist-Tree over recs (sorted ascending). recs is
// retained. fanout must be a power of two >= 2 (0 selects DefaultFanout);
// leafSize >= 1 (0 selects DefaultLeafSize).
func Build(recs []core.KV, fanout, leafSize int) (*Index, error) {
	if fanout == 0 {
		fanout = DefaultFanout
	}
	if leafSize == 0 {
		leafSize = DefaultLeafSize
	}
	if fanout < 2 || fanout&(fanout-1) != 0 {
		return nil, fmt.Errorf("histtree: fanout %d not a power of two >= 2", fanout)
	}
	if leafSize < 1 {
		return nil, fmt.Errorf("histtree: leafSize %d", leafSize)
	}
	n := len(recs)
	for i := 1; i < n; i++ {
		if recs[i].Key < recs[i-1].Key {
			return nil, fmt.Errorf("histtree: input not sorted at %d", i)
		}
	}
	ix := &Index{recs: recs, fanout: fanout, leafSize: leafSize, n: n}
	ix.keys = make([]core.Key, n)
	for i := range recs {
		ix.keys[i] = recs[i].Key
	}
	if n == 0 {
		return ix, nil
	}
	lo := ix.keys[0]
	hi := ix.keys[n-1]
	// width*fanout must cover hi-lo+1 without the uint64 overflow that
	// hi-lo+1 itself can hit when the keys span the whole key space.
	width := uint64(hi-lo)/uint64(fanout) + 1
	ix.root = ix.build(lo, width, 0, n)
	return ix, nil
}

// build creates the node over positions [start, end) with bins
// [loKey + i*width, loKey + (i+1)*width).
func (ix *Index) build(loKey core.Key, width uint64, start, end int) *node {
	ix.nodes++
	nd := &node{loKey: loKey, width: width, start: start, end: end}
	f := ix.fanout
	nd.starts = make([]int, f+1)
	pos := start
	for b := 0; b < f; b++ {
		nd.starts[b] = pos
		// Advance pos to the first key >= bin upper bound.
		var binHi uint64
		overflow := false
		binHi = uint64(loKey) + uint64(b+1)*width
		if binHi < uint64(loKey) { // wrapped
			overflow = true
		}
		if overflow {
			pos = end
		} else {
			pos = core.SearchRange(ix.keys, core.Key(binHi), pos, end)
		}
	}
	nd.starts[f] = end
	if end-start <= ix.leafSize || width == 1 {
		return nd // terminal: bins narrow the final binary search
	}
	nd.children = make([]*node, f)
	childWidth := (width + uint64(f) - 1) / uint64(f)
	if childWidth == 0 {
		childWidth = 1
	}
	for b := 0; b < f; b++ {
		s, e := nd.starts[b], nd.starts[b+1]
		if e-s == 0 {
			continue
		}
		if e-s <= ix.leafSize {
			// Small bin: resolved by binary search directly; no child.
			continue
		}
		nd.children[b] = ix.build(loKey+core.Key(uint64(b)*width), childWidth, s, e)
	}
	return nd
}

// LowerBound returns the smallest position i with keys[i] >= k.
func (ix *Index) LowerBound(k core.Key) int {
	if ix.n == 0 {
		return 0
	}
	nd := ix.root
	if k < nd.loKey {
		return 0
	}
	for {
		off := uint64(k-nd.loKey) / nd.width
		if off >= uint64(ix.fanout) {
			// Beyond the node's key space: everything here is smaller.
			return nd.end
		}
		b := int(off)
		if nd.children != nil && nd.children[b] != nil {
			nd = nd.children[b]
			continue
		}
		return core.SearchRange(ix.keys, k, nd.starts[b], nd.starts[b+1])
	}
}

// Get returns the value stored for k.
func (ix *Index) Get(k core.Key) (core.Value, bool) {
	i := ix.LowerBound(k)
	if i < ix.n && ix.keys[i] == k {
		return ix.recs[i].Value, true
	}
	return 0, false
}

// Range calls fn for records with lo <= key <= hi ascending; fn returning
// false stops. Returns records visited.
func (ix *Index) Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	i := ix.LowerBound(lo)
	count := 0
	for ; i < ix.n && ix.keys[i] <= hi; i++ {
		count++
		if !fn(ix.keys[i], ix.recs[i].Value) {
			break
		}
	}
	return count
}

// Len returns the number of records.
func (ix *Index) Len() int { return ix.n }

// Nodes returns the number of histogram nodes.
func (ix *Index) Nodes() int { return ix.nodes }

// Stats reports structure statistics.
func (ix *Index) Stats() core.Stats {
	var height func(nd *node) int
	height = func(nd *node) int {
		if nd == nil || nd.children == nil {
			return 1
		}
		m := 1
		for _, c := range nd.children {
			if h := height(c); h+1 > m {
				m = h + 1
			}
		}
		return m
	}
	h := 0
	if ix.root != nil {
		h = height(ix.root)
	}
	return core.Stats{
		Name:       "histtree",
		Count:      ix.n,
		IndexBytes: ix.nodes * (8*(ix.fanout+1) + 32),
		DataBytes:  16 * ix.n,
		Height:     h,
		Models:     ix.nodes,
	}
}
