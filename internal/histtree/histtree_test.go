package histtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

func TestAllDistributions(t *testing.T) {
	for _, kind := range dataset.Kinds() {
		keys, err := dataset.Keys(kind, 5000, 401)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := Build(dataset.KV(keys), 16, 16)
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range keys {
			v, ok := ix.Get(k)
			if !ok || v != dataset.PayloadFor(k) {
				t.Fatalf("%s: Get(%d) failed at %d", kind, k, i)
			}
			if lb := ix.LowerBound(k); lb != i {
				t.Fatalf("%s: LowerBound(%d) = %d, want %d", kind, k, lb, i)
			}
		}
	}
}

func TestLowerBoundProperty(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Adversarial, 6000, 402)
	ix, err := Build(dataset.KV(keys), 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	f := func(probe core.Key) bool {
		return ix.LowerBound(probe) == core.LowerBound(keys, probe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(403))
	for i := 0; i < 3000; i++ {
		probe := keys[r.Intn(len(keys))] + core.Key(r.Intn(5)) - 2
		if ix.LowerBound(probe) != core.LowerBound(keys, probe) {
			t.Fatalf("probe %d mismatch", probe)
		}
	}
}

func TestExtremeProbes(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Uniform, 1000, 404)
	ix, _ := Build(dataset.KV(keys), 16, 8)
	if ix.LowerBound(0) != 0 {
		t.Fatal("LowerBound(0)")
	}
	if ix.LowerBound(^core.Key(0)) != 1000 {
		t.Fatal("LowerBound(max)")
	}
}

func TestErrorsAndDegenerate(t *testing.T) {
	if _, err := Build(nil, 12, 8); err == nil {
		t.Fatal("non-power-of-two fanout accepted")
	}
	if _, err := Build(nil, 16, -1); err == nil {
		t.Fatal("negative leafSize accepted")
	}
	if _, err := Build([]core.KV{{Key: 2}, {Key: 1}}, 16, 8); err == nil {
		t.Fatal("unsorted accepted")
	}
	ix, err := Build(nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ix.LowerBound(1) != 0 || ix.Len() != 0 {
		t.Fatal("empty index")
	}
	ix, _ = Build([]core.KV{{Key: 5, Value: 3}}, 0, 0)
	if v, ok := ix.Get(5); !ok || v != 3 {
		t.Fatal("single record")
	}
	// Dense duplicates force width-1 terminals.
	var recs []core.KV
	for i := 0; i < 2000; i++ {
		recs = append(recs, core.KV{Key: core.Key(i / 100), Value: core.Value(i)})
	}
	ix, err = Build(recs, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if lb := ix.LowerBound(core.Key(i)); lb != i*100 {
			t.Fatalf("dup LowerBound(%d) = %d", i, lb)
		}
	}
}

func TestRange(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Sequential, 5000, 405)
	ix, _ := Build(dataset.KV(keys), 0, 0)
	for _, q := range dataset.Ranges(keys, 30, 0.01, 406) {
		want := core.UpperBound(keys, q.Hi) - core.LowerBound(keys, q.Lo)
		if got := ix.Range(q.Lo, q.Hi, func(core.Key, core.Value) bool { return true }); got != want {
			t.Fatalf("Range = %d, want %d", got, want)
		}
	}
	count := 0
	ix.Range(0, ^core.Key(0), func(core.Key, core.Value) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatal("early stop")
	}
}

func TestStats(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Clustered, 20000, 407)
	ix, _ := Build(dataset.KV(keys), 16, 32)
	st := ix.Stats()
	if st.Count != 20000 || st.Models != ix.Nodes() || st.Height < 2 || st.IndexBytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}
