package alex

import (
	"fmt"

	"github.com/lix-go/lix/internal/core"
)

// CheckInvariants verifies the structural invariants of the ALEX tree: the
// gapped-array contract of every data node (the full slot array sorted —
// gap slots may carry stale keys after shifts, but never out of order — and
// occupied keys strictly ascending, which together keep exponential search
// exact), routing bounds of inner nodes, occupancy accounting, the leaf
// chain, and the global record count. It is O(n) and intended for tests.
func (ix *Index) CheckInvariants() error {
	var leaves []*dataNode
	totalOcc := 0

	var walk func(n node, lo core.Key, loValid bool, hi core.Key, hiValid bool) error
	walk = func(n node, lo core.Key, loValid bool, hi core.Key, hiValid bool) error {
		switch v := n.(type) {
		case *dataNode:
			leaves = append(leaves, v)
			if len(v.keys) != len(v.vals) || len(v.keys) != len(v.occ) {
				return fmt.Errorf("alex: data node slot arrays disagree: %d/%d/%d", len(v.keys), len(v.vals), len(v.occ))
			}
			if v.numKeys >= len(v.keys) && v.numKeys > 0 {
				return fmt.Errorf("alex: data node full (%d keys in %d slots): no gap for inserts", v.numKeys, len(v.keys))
			}
			occ := 0
			lastOccKey := core.Key(0)
			haveOcc := false
			for i, o := range v.occ {
				if i > 0 && v.keys[i] < v.keys[i-1] {
					return fmt.Errorf("alex: data node slots not sorted at %d", i)
				}
				if o {
					occ++
					if haveOcc && v.keys[i] <= lastOccKey {
						return fmt.Errorf("alex: occupied keys not strictly ascending at slot %d", i)
					}
					haveOcc, lastOccKey = true, v.keys[i]
					if loValid && v.keys[i] < lo {
						return fmt.Errorf("alex: key %d below routing bound %d", v.keys[i], lo)
					}
					if hiValid && v.keys[i] >= hi {
						return fmt.Errorf("alex: key %d at or above routing bound %d", v.keys[i], hi)
					}
				}
			}
			if occ != v.numKeys {
				return fmt.Errorf("alex: numKeys=%d but %d occupied slots", v.numKeys, occ)
			}
			totalOcc += occ
			return nil
		case *inner:
			if len(v.firstKeys) != len(v.children) {
				return fmt.Errorf("alex: inner firstKeys/children mismatch %d != %d", len(v.firstKeys), len(v.children))
			}
			if len(v.children) == 0 {
				return fmt.Errorf("alex: inner node with no children")
			}
			for i := 1; i < len(v.firstKeys); i++ {
				if v.firstKeys[i] <= v.firstKeys[i-1] {
					return fmt.Errorf("alex: inner firstKeys not strictly ascending at %d", i)
				}
			}
			for i, c := range v.children {
				// Child i holds keys in [firstKeys[i], firstKeys[i+1]).
				// firstKeys[0] is not binding: route clamps lower keys to
				// child 0, so child 0 inherits the parent's lower bound.
				cLo, cLoValid := v.firstKeys[i], true
				if i == 0 {
					cLo, cLoValid = lo, loValid
				}
				cHi, cHiValid := hi, hiValid
				if i+1 < len(v.firstKeys) {
					cHi, cHiValid = v.firstKeys[i+1], true
				}
				if err := walk(c, cLo, cLoValid, cHi, cHiValid); err != nil {
					return err
				}
			}
			return nil
		}
		return fmt.Errorf("alex: unknown node type %T", n)
	}
	if err := walk(ix.root, 0, false, 0, false); err != nil {
		return err
	}
	if totalOcc != ix.size {
		return fmt.Errorf("alex: size=%d but tree holds %d records", ix.size, totalOcc)
	}
	// Leaf chain must be exactly the in-order data nodes.
	dn := ix.leftmostLeaf()
	for i := 0; ; i++ {
		if dn == nil {
			if i != len(leaves) {
				return fmt.Errorf("alex: leaf chain has %d nodes, tree has %d", i, len(leaves))
			}
			break
		}
		if i >= len(leaves) || dn != leaves[i] {
			return fmt.Errorf("alex: leaf chain diverges from tree order at node %d", i)
		}
		dn = dn.next
	}
	return nil
}
