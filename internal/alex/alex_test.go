package alex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

func TestBulkAllDistributions(t *testing.T) {
	for _, kind := range dataset.Kinds() {
		keys, err := dataset.Keys(kind, 10000, 501)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := Bulk(dataset.KV(keys))
		if err != nil {
			t.Fatal(err)
		}
		if ix.Len() != 10000 {
			t.Fatalf("%s: len = %d", kind, ix.Len())
		}
		for _, k := range keys {
			v, ok := ix.Get(k)
			if !ok || v != dataset.PayloadFor(k) {
				t.Fatalf("%s: Get(%d) = %d,%v", kind, k, v, ok)
			}
		}
		// Misses.
		r := rand.New(rand.NewSource(502))
		for i := 0; i+1 < len(keys); i += 29 {
			if keys[i]+1 >= keys[i+1] {
				continue
			}
			probe := keys[i] + 1 + core.Key(r.Int63n(int64(keys[i+1]-keys[i]-1)))
			if _, ok := ix.Get(probe); ok {
				t.Fatalf("%s: phantom %d", kind, probe)
			}
		}
	}
}

func TestInsertFromEmpty(t *testing.T) {
	ix := New()
	const n = 20000
	r := rand.New(rand.NewSource(503))
	perm := r.Perm(n)
	for _, i := range perm {
		if !ix.Insert(core.Key(i*3), core.Value(i)) {
			t.Fatalf("Insert(%d) reported existing", i*3)
		}
	}
	if ix.Len() != n {
		t.Fatalf("len = %d", ix.Len())
	}
	for i := 0; i < n; i++ {
		v, ok := ix.Get(core.Key(i * 3))
		if !ok || v != core.Value(i) {
			t.Fatalf("Get(%d) = %d,%v", i*3, v, ok)
		}
		if _, ok := ix.Get(core.Key(i*3 + 1)); ok {
			t.Fatalf("phantom %d", i*3+1)
		}
	}
	if ix.Expands == 0 {
		t.Fatal("expected node expansions")
	}
}

func TestSequentialAppendTriggersSplits(t *testing.T) {
	ix := New()
	const n = 60000
	for i := 0; i < n; i++ {
		ix.Insert(core.Key(i), core.Value(i))
	}
	if ix.Splits == 0 {
		t.Fatal("expected splits after sustained appends")
	}
	if ix.Len() != n {
		t.Fatalf("len = %d", ix.Len())
	}
	for i := 0; i < n; i += 97 {
		if v, ok := ix.Get(core.Key(i)); !ok || v != core.Value(i) {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	// Full ordered scan via Range.
	prev := -1
	count := ix.Range(0, ^core.Key(0), func(k core.Key, v core.Value) bool {
		if int(k) <= prev {
			t.Fatalf("scan out of order at %d", k)
		}
		prev = int(k)
		return true
	})
	if count != n {
		t.Fatalf("scan count = %d", count)
	}
}

func TestUpsert(t *testing.T) {
	ix := New()
	ix.Insert(5, 1)
	if ix.Insert(5, 2) {
		t.Fatal("upsert reported new")
	}
	if v, _ := ix.Get(5); v != 2 {
		t.Fatalf("upsert = %d", v)
	}
	if ix.Len() != 1 {
		t.Fatalf("len = %d", ix.Len())
	}
}

func TestDeleteAndReinsert(t *testing.T) {
	ix := New()
	const n = 5000
	for i := 0; i < n; i++ {
		ix.Insert(core.Key(i*2), core.Value(i))
	}
	for i := 0; i < n; i += 2 {
		if !ix.Delete(core.Key(i * 2)) {
			t.Fatalf("Delete(%d) missed", i*2)
		}
	}
	if ix.Delete(1) {
		t.Fatal("deleted phantom")
	}
	if ix.Len() != n/2 {
		t.Fatalf("len = %d", ix.Len())
	}
	for i := 0; i < n; i++ {
		_, ok := ix.Get(core.Key(i * 2))
		if ok != (i%2 == 1) {
			t.Fatalf("Get(%d) = %v", i*2, ok)
		}
	}
	// Reinsert deleted keys (exercises the claim-deleted-gap fast path).
	for i := 0; i < n; i += 2 {
		if !ix.Insert(core.Key(i*2), core.Value(i+1)) {
			t.Fatalf("reinsert %d reported existing", i*2)
		}
	}
	if ix.Len() != n {
		t.Fatalf("len after reinsert = %d", ix.Len())
	}
	if v, _ := ix.Get(0); v != 1 {
		t.Fatal("reinserted value wrong")
	}
}

func TestRange(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Clustered, 30000, 504)
	ix, err := Bulk(dataset.KV(keys))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range dataset.Ranges(keys, 40, 0.003, 505) {
		want := core.UpperBound(keys, q.Hi) - core.LowerBound(keys, q.Lo)
		var got []core.Key
		n := ix.Range(q.Lo, q.Hi, func(k core.Key, v core.Value) bool {
			got = append(got, k)
			return true
		})
		if n != want {
			t.Fatalf("Range(%d,%d) = %d, want %d", q.Lo, q.Hi, n, want)
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatal("range out of order")
			}
		}
	}
	count := 0
	ix.Range(0, ^core.Key(0), func(core.Key, core.Value) bool { count++; return count < 11 })
	if count != 11 {
		t.Fatalf("early stop = %d", count)
	}
}

func TestMixedWorkloadMatchesMap(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(506))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ix := New()
		ref := map[core.Key]core.Value{}
		for op := 0; op < 6000; op++ {
			k := core.Key(r.Intn(2000))
			switch r.Intn(4) {
			case 0, 1:
				v := core.Value(r.Uint64())
				ix.Insert(k, v)
				ref[k] = v
			case 2:
				got := ix.Delete(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			case 3:
				v, ok := ix.Get(k)
				wv, wok := ref[k]
				if ok != wok || (ok && v != wv) {
					return false
				}
			}
			if ix.Len() != len(ref) {
				return false
			}
		}
		// Ordered scan equals sorted ref.
		seen := 0
		okAll := true
		prev := core.Key(0)
		first := true
		ix.Range(0, ^core.Key(0), func(k core.Key, v core.Value) bool {
			if !first && k <= prev {
				okAll = false
				return false
			}
			prev, first = k, false
			wv, wok := ref[k]
			if !wok || wv != v {
				okAll = false
				return false
			}
			seen++
			return true
		})
		return okAll && seen == len(ref)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBulkThenInsert(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Lognormal, 50000, 507)
	ix, err := Bulk(dataset.KV(keys))
	if err != nil {
		t.Fatal(err)
	}
	// Insert fresh keys between existing ones.
	r := rand.New(rand.NewSource(508))
	inserted := map[core.Key]bool{}
	for len(inserted) < 20000 {
		i := r.Intn(len(keys) - 1)
		if keys[i]+1 >= keys[i+1] {
			continue
		}
		k := keys[i] + 1 + core.Key(r.Int63n(int64(keys[i+1]-keys[i]-1)))
		if inserted[k] {
			continue
		}
		ix.Insert(k, 7)
		inserted[k] = true
	}
	if ix.Len() != len(keys)+len(inserted) {
		t.Fatalf("len = %d, want %d", ix.Len(), len(keys)+len(inserted))
	}
	for k := range inserted {
		if v, ok := ix.Get(k); !ok || v != 7 {
			t.Fatalf("inserted key %d lost", k)
		}
	}
	for i := 0; i < len(keys); i += 131 {
		if _, ok := ix.Get(keys[i]); !ok {
			t.Fatalf("bulk key %d lost", keys[i])
		}
	}
}

func TestErrorsAndStats(t *testing.T) {
	if _, err := Bulk([]core.KV{{Key: 5}, {Key: 1}}); err == nil {
		t.Fatal("unsorted bulk accepted")
	}
	// Duplicates in bulk: last wins.
	ix, err := Bulk([]core.KV{{Key: 1, Value: 1}, {Key: 1, Value: 2}, {Key: 3, Value: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 2 {
		t.Fatalf("dup bulk len = %d", ix.Len())
	}
	if v, _ := ix.Get(1); v != 2 {
		t.Fatal("dup bulk value")
	}
	empty, err := Bulk(nil)
	if err != nil || empty.Len() != 0 {
		t.Fatal("empty bulk")
	}
	if _, ok := empty.Get(1); ok {
		t.Fatal("empty get")
	}
	keys, _ := dataset.Keys(dataset.Uniform, 30000, 509)
	big, _ := Bulk(dataset.KV(keys))
	st := big.Stats()
	if st.Count != 30000 || st.Models < 2 || st.Height < 2 || st.DataBytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}
