// Package alex implements ALEX (Ding et al., "ALEX: An Updatable Adaptive
// Learned Index", SIGMOD 2020): a tree of linear-model nodes whose data
// nodes are *gapped arrays* — sorted arrays with interleaved gaps so that
// model-predicted in-place inserts rarely shift more than a few slots.
//
// Taxonomy: mutable / pure / in-place insert / dynamic data layout. The
// structural adaptation (expand vs split) follows the paper's density
// bounds; the full cost model is simplified to those density triggers,
// which this package documents as the delta from the original system.
//
// Gapped-array invariant: every slot holds a key; (re)builds write each gap
// slot with the key of the nearest occupied slot to its left, and later
// shifts may move those filler keys around but never out of order. The slot
// array is therefore always sorted and exponential search from the model's
// predicted slot is exact (internal/alex/invariants.go checks this).
package alex

import (
	"fmt"
	"math"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/mlmodel"
	"github.com/lix-go/lix/internal/obs"
)

// Tuning constants from the paper (densities) and this implementation
// (node sizes).
const (
	minDensity     = 0.6 // target density after bulk/expand
	maxDensity     = 0.8 // insert density trigger
	maxDataSlots   = 1 << 14
	initDataSlots  = 64
	bulkLeafKeys   = 4096 // bulk build: max keys per data node
	innerFanoutMax = 64   // bulk build: max children per inner node
)

// Index is an ALEX tree. The zero value is not usable; call New or Bulk.
type Index struct {
	root node
	size int
	// adaptation counters (ablation diagnostics)
	Shifts  int
	Expands int
	Splits  int

	hook obs.Hook
}

// SetObserver installs r to receive structural events (node expands, splits
// and inner-model retrains); nil detaches. The disabled path costs one
// atomic load per event site.
func (ix *Index) SetObserver(r obs.Recorder) { ix.hook.SetRecorder(r) }

type node interface{ isNode() }

type inner struct {
	firstKeys []core.Key // firstKeys[i] = smallest key routed to children[i]
	children  []node
	model     mlmodel.Linear
	trainedAt int // len(children) when the model was last trained
}

type dataNode struct {
	keys    []core.Key
	vals    []core.Value
	occ     []bool
	numKeys int
	model   mlmodel.Linear
	next    *dataNode // leaf chain for range scans
}

func (*inner) isNode()    {}
func (*dataNode) isNode() {}

// New returns an empty index.
func New() *Index {
	return &Index{root: newDataNode(nil, nil, initDataSlots)}
}

// Bulk builds an index from records sorted ascending by key (duplicates:
// last wins).
func Bulk(recs []core.KV) (*Index, error) {
	for i := 1; i < len(recs); i++ {
		if recs[i].Key < recs[i-1].Key {
			return nil, fmt.Errorf("alex: bulk input not sorted at %d", i)
		}
	}
	// Collapse duplicates (last wins).
	keys := make([]core.Key, 0, len(recs))
	vals := make([]core.Value, 0, len(recs))
	for i := range recs {
		if len(keys) > 0 && keys[len(keys)-1] == recs[i].Key {
			vals[len(vals)-1] = recs[i].Value
			continue
		}
		keys = append(keys, recs[i].Key)
		vals = append(vals, recs[i].Value)
	}
	ix := &Index{}
	var leaves []*dataNode
	ix.root = buildSubtree(keys, vals, &leaves)
	for i := 0; i+1 < len(leaves); i++ {
		leaves[i].next = leaves[i+1]
	}
	ix.size = len(keys)
	return ix, nil
}

// buildSubtree recursively creates inner nodes over equal-count partitions
// until partitions fit in a data node.
func buildSubtree(keys []core.Key, vals []core.Value, leaves *[]*dataNode) node {
	n := len(keys)
	if n <= bulkLeafKeys {
		capHint := int(float64(n)/minDensity) + 2
		if capHint < initDataSlots {
			capHint = initDataSlots
		}
		if capHint > maxDataSlots {
			capHint = maxDataSlots
		}
		dn := newDataNode(keys, vals, capHint)
		*leaves = append(*leaves, dn)
		return dn
	}
	f := (n + bulkLeafKeys - 1) / bulkLeafKeys
	if f > innerFanoutMax {
		f = innerFanoutMax
	}
	in := &inner{}
	per := (n + f - 1) / f
	for i := 0; i < n; i += per {
		end := i + per
		if end > n {
			end = n
		}
		in.firstKeys = append(in.firstKeys, keys[i])
		in.children = append(in.children, buildSubtree(keys[i:end], vals[i:end], leaves))
	}
	in.retrain()
	return in
}

func (in *inner) retrain() {
	xs := make([]float64, len(in.firstKeys))
	ys := make([]float64, len(in.firstKeys))
	for i, k := range in.firstKeys {
		xs[i] = float64(k)
		ys[i] = float64(i)
	}
	_ = in.model.Fit(xs, ys) // non-empty by construction
	if in.model.Slope < 0 {
		in.model.Slope = 0
		in.model.Intercept = float64(len(in.firstKeys)) / 2
	}
	in.trainedAt = len(in.children)
}

// route returns the child index for key k: the last child with
// firstKeys[i] <= k (clamped to 0).
func (in *inner) route(k core.Key) int {
	i := core.Clamp(int(in.model.Predict(float64(k))), 0, len(in.children)-1)
	for i+1 < len(in.children) && k >= in.firstKeys[i+1] {
		i++
	}
	for i > 0 && k < in.firstKeys[i] {
		i--
	}
	return i
}

// newDataNode builds a gapped data node from sorted keys/vals with the
// given slot capacity (>= len(keys)+1) using model-based placement.
func newDataNode(keys []core.Key, vals []core.Value, capacity int) *dataNode {
	n := len(keys)
	if capacity < n+1 {
		capacity = n + 1
	}
	dn := &dataNode{
		keys: make([]core.Key, capacity),
		vals: make([]core.Value, capacity),
		occ:  make([]bool, capacity),
	}
	if n == 0 {
		return dn
	}
	// Fit model: key -> slot scaled to capacity.
	xs := make([]float64, n)
	ys := make([]float64, n)
	scale := float64(capacity-1) / float64(n)
	for i, k := range keys {
		xs[i] = float64(k)
		ys[i] = float64(i) * scale
	}
	_ = dn.model.Fit(xs, ys)
	if dn.model.Slope < 0 {
		dn.model.Slope = 0
		dn.model.Intercept = float64(capacity) / 2
	}
	// Model-based placement: strictly increasing slots.
	last := -1
	for i := 0; i < n; i++ {
		slot := int(math.Round(dn.model.Predict(xs[i])))
		if slot <= last {
			slot = last + 1
		}
		// Keep room for the remaining keys.
		maxSlot := capacity - (n - i)
		if slot > maxSlot {
			slot = maxSlot
		}
		dn.keys[slot] = keys[i]
		dn.vals[slot] = vals[i]
		dn.occ[slot] = true
		last = slot
	}
	dn.numKeys = n
	dn.fillGaps()
	return dn
}

// fillGaps rewrites gap slots with the nearest occupied key to the left
// (leading gaps take the first occupied key) to restore sortedness.
func (dn *dataNode) fillGaps() {
	// Find first occupied.
	first := -1
	for i, o := range dn.occ {
		if o {
			first = i
			break
		}
	}
	if first == -1 {
		return
	}
	cur := dn.keys[first]
	for i := 0; i < first; i++ {
		dn.keys[i] = cur
	}
	for i := first; i < len(dn.keys); i++ {
		if dn.occ[i] {
			cur = dn.keys[i]
		} else {
			dn.keys[i] = cur
		}
	}
}

// lowerSlot returns the first slot with key >= k, using exponential search
// from the model prediction.
func (dn *dataNode) lowerSlot(k core.Key) int {
	pred := core.Clamp(int(math.Round(dn.model.Predict(float64(k)))), 0, len(dn.keys)-1)
	return core.ExponentialSearch(dn.keys, k, pred)
}

// get returns the value for k.
func (dn *dataNode) get(k core.Key) (core.Value, bool) {
	s := dn.lowerSlot(k)
	for s < len(dn.keys) && dn.keys[s] == k {
		if dn.occ[s] {
			return dn.vals[s], true
		}
		s++
	}
	return 0, false
}

// Len returns the number of records.
func (ix *Index) Len() int { return ix.size }

// findLeaf descends to the data node owning k.
func (ix *Index) findLeaf(k core.Key) *dataNode {
	n := ix.root
	for {
		switch v := n.(type) {
		case *dataNode:
			return v
		case *inner:
			n = v.children[v.route(k)]
		}
	}
}

// Get returns the value stored for k.
func (ix *Index) Get(k core.Key) (core.Value, bool) {
	return ix.findLeaf(k).get(k)
}

// Insert upserts (k, v); returns true if the key was new.
func (ix *Index) Insert(k core.Key, v core.Value) bool {
	// Descend, remembering the path for splits.
	var path []*inner
	n := ix.root
	for {
		in, ok := n.(*inner)
		if !ok {
			break
		}
		path = append(path, in)
		n = in.children[in.route(k)]
	}
	dn := n.(*dataNode)
	added := ix.insertInto(dn, k, v, path)
	if added {
		ix.size++
	}
	return added
}

func (ix *Index) insertInto(dn *dataNode, k core.Key, v core.Value, path []*inner) bool {
	s := dn.lowerSlot(k)
	// Upsert: scan the run of equal keys for an occupied slot.
	for t := s; t < len(dn.keys) && dn.keys[t] == k; t++ {
		if dn.occ[t] {
			dn.vals[t] = v
			return false
		}
	}
	// Structural adaptation before placing, if too dense.
	if float64(dn.numKeys+1) > maxDensity*float64(len(dn.keys)) {
		if 2*len(dn.keys) <= maxDataSlots {
			ix.expand(dn)
		} else {
			ix.split(dn, path)
		}
		return ix.insertInto(ix.relocate(k, path), k, v, path)
	}
	dn.place(k, v, &ix.Shifts)
	return true
}

// relocate re-resolves the data node for k after an expand (same node
// object) or split (parent updated).
func (ix *Index) relocate(k core.Key, path []*inner) *dataNode {
	if len(path) == 0 {
		return ix.findLeaf(k)
	}
	in := path[len(path)-1]
	n := in.children[in.route(k)]
	if dn, ok := n.(*dataNode); ok {
		return dn
	}
	return ix.findLeaf(k)
}

// place inserts (k, v) into the gapped array; the caller guarantees a free
// slot exists and k is not present.
func (dn *dataNode) place(k core.Key, v core.Value, shifts *int) {
	s := dn.lowerSlot(k)
	// Fast path: the lower-bound slot itself is a gap carrying exactly k
	// (a duplicate left over from a deletion): claim it, order unchanged.
	if s < len(dn.keys) && !dn.occ[s] && dn.keys[s] == k {
		dn.keys[s] = k
		dn.vals[s] = v
		dn.occ[s] = true
		dn.numKeys++
		return
	}
	// Find nearest gap right and left of s.
	right := -1
	for t := s; t < len(dn.keys); t++ {
		if !dn.occ[t] {
			right = t
			break
		}
	}
	left := -1
	for t := s - 1; t >= 0; t-- {
		if !dn.occ[t] {
			left = t
			break
		}
	}
	switch {
	case right >= 0 && (left < 0 || right-s <= s-left):
		// Shift [s, right) one slot right, insert at s.
		copy(dn.keys[s+1:right+1], dn.keys[s:right])
		copy(dn.vals[s+1:right+1], dn.vals[s:right])
		copy(dn.occ[s+1:right+1], dn.occ[s:right])
		*shifts += right - s
		dn.keys[s] = k
		dn.vals[s] = v
		dn.occ[s] = true
	case left >= 0:
		// Shift (left, s-1] one slot left, insert at s-1.
		copy(dn.keys[left:s-1], dn.keys[left+1:s])
		copy(dn.vals[left:s-1], dn.vals[left+1:s])
		copy(dn.occ[left:s-1], dn.occ[left+1:s])
		*shifts += s - 1 - left
		dn.keys[s-1] = k
		dn.vals[s-1] = v
		dn.occ[s-1] = true
	default:
		// No gap: caller violated the density invariant.
		panic("alex: place called with no free slot")
	}
	dn.numKeys++
}

// expand doubles the node capacity and re-places all keys model-based.
func (ix *Index) expand(dn *dataNode) {
	keys, vals := dn.extract()
	nn := newDataNode(keys, vals, 2*len(dn.keys))
	dn.keys, dn.vals, dn.occ = nn.keys, nn.vals, nn.occ
	dn.model = nn.model
	dn.numKeys = nn.numKeys
	ix.Expands++
	ix.hook.Emit(obs.EvNodeSplit, dn.numKeys, "expand")
}

// extract returns the node's live records in sorted order.
func (dn *dataNode) extract() ([]core.Key, []core.Value) {
	keys := make([]core.Key, 0, dn.numKeys)
	vals := make([]core.Value, 0, dn.numKeys)
	for i := range dn.keys {
		if dn.occ[i] {
			keys = append(keys, dn.keys[i])
			vals = append(vals, dn.vals[i])
		}
	}
	return keys, vals
}

// split divides dn into two data nodes at the median and installs them in
// the parent (creating a new root inner node if needed).
func (ix *Index) split(dn *dataNode, path []*inner) {
	keys, vals := dn.extract()
	mid := len(keys) / 2
	capL := int(float64(mid)/minDensity) + 2
	capR := int(float64(len(keys)-mid)/minDensity) + 2
	leftN := newDataNode(keys[:mid], vals[:mid], capL)
	rightN := newDataNode(keys[mid:], vals[mid:], capR)
	rightN.next = dn.next
	leftN.next = rightN
	ix.Splits++
	ix.hook.Emit(obs.EvNodeSplit, len(keys), "split")
	if len(path) == 0 {
		// dn was the root.
		rootFirst := core.Key(0)
		if len(keys) > 0 {
			rootFirst = keys[0]
		}
		in := &inner{
			firstKeys: []core.Key{rootFirst, keys[mid]},
			children:  []node{leftN, rightN},
		}
		in.retrain()
		ix.hook.Emit(obs.EvRetrain, len(in.children), "root")
		ix.root = in
		return
	}
	parent := path[len(path)-1]
	ci := parent.route(keys[mid])
	// The child at ci must be dn; replace with left and insert right after.
	parent.children[ci] = leftN
	parent.firstKeys = append(parent.firstKeys, 0)
	parent.children = append(parent.children, nil)
	copy(parent.firstKeys[ci+2:], parent.firstKeys[ci+1:])
	copy(parent.children[ci+2:], parent.children[ci+1:])
	parent.firstKeys[ci+1] = keys[mid]
	parent.children[ci+1] = rightN
	// Fix the leaf chain predecessor link.
	ix.fixPrevLink(dn, leftN)
	if len(parent.children) >= 2*parent.trainedAt {
		parent.retrain()
		ix.hook.Emit(obs.EvRetrain, len(parent.children), "inner")
	}
}

// fixPrevLink repoints the leaf whose next was dn to leftN. The chain walk
// is bounded by the leaf count; splits are rare enough that this linear
// walk is acceptable for an in-memory reproduction.
func (ix *Index) fixPrevLink(old, repl *dataNode) {
	for l := ix.leftmostLeaf(); l != nil; l = l.next {
		if l.next == old {
			l.next = repl
			return
		}
		if l == repl {
			return // repl precedes old's position; nothing pointed at old
		}
	}
}

func (ix *Index) leftmostLeaf() *dataNode {
	n := ix.root
	for {
		switch v := n.(type) {
		case *dataNode:
			return v
		case *inner:
			n = v.children[0]
		}
	}
}

// Delete removes k, returning true if present. Slots are vacated in place
// (no contraction), matching the paper's deletion strategy.
func (ix *Index) Delete(k core.Key) bool {
	dn := ix.findLeaf(k)
	s := dn.lowerSlot(k)
	for ; s < len(dn.keys) && dn.keys[s] == k; s++ {
		if dn.occ[s] {
			// The slot keeps its key value as a gap duplicate, so the
			// array stays sorted with no rewriting.
			dn.occ[s] = false
			dn.numKeys--
			ix.size--
			return true
		}
	}
	return false
}

// Range calls fn for records with lo <= key <= hi ascending; fn returning
// false stops. Returns records visited.
func (ix *Index) Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	dn := ix.findLeaf(lo)
	count := 0
	s := dn.lowerSlot(lo)
	for dn != nil {
		for ; s < len(dn.keys); s++ {
			if !dn.occ[s] {
				continue
			}
			if dn.keys[s] > hi {
				return count
			}
			count++
			if !fn(dn.keys[s], dn.vals[s]) {
				return count
			}
		}
		dn = dn.next
		s = 0
	}
	return count
}

// Height returns the number of levels.
func (ix *Index) Height() int {
	h := 1
	n := ix.root
	for {
		in, ok := n.(*inner)
		if !ok {
			return h
		}
		h++
		n = in.children[0]
	}
}

// Stats reports structure statistics.
func (ix *Index) Stats() core.Stats {
	var dataNodes, innerNodes, slots int
	var walk func(n node)
	walk = func(n node) {
		switch v := n.(type) {
		case *dataNode:
			dataNodes++
			slots += len(v.keys)
		case *inner:
			innerNodes++
			for _, c := range v.children {
				walk(c)
			}
		}
	}
	walk(ix.root)
	return core.Stats{
		Name:       "alex",
		Count:      ix.size,
		IndexBytes: innerNodes*48 + dataNodes*16, // models + headers
		DataBytes:  slots * 17,                   // key+val+occ per slot
		Height:     ix.Height(),
		Models:     dataNodes + innerNodes,
	}
}
