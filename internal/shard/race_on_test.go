//go:build race

package shard

// raceEnabled reports whether the race detector is compiled in. The
// AllocsPerRun pins skip under -race: the detector makes sync.Pool drop
// items at random (to widen race coverage), so pooled paths legitimately
// allocate there. The race build still runs these tests' code paths via
// the conform stress tier.
const raceEnabled = true
